(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation on the simulated GPU.

     dune exec bench/main.exe              - everything (standard mode)
     dune exec bench/main.exe table1       - one experiment
     dune exec bench/main.exe -- --quick   - reduced injection counts

   Experiments:
     table1  - per-benchmark branch divergence (Case Study I)
     fig5    - per-branch divergence histograms, bfs 1M vs UT
     fig7    - PMF of unique cache lines per warp access (Case Study II)
     fig8    - occupancy x divergence matrices, miniFE CSR vs ELL
     table2  - value profiling: const bits & scalar % (Case Study III)
     fig10   - error injection outcomes (Case Study IV)
     table3  - instrumentation overheads (T wall-clock, K kernel cycles)
     analysis - static-analyzer wall time per kernel across the suite
     parallel - domain-pool campaign runner: seq-vs-par wall clock and
                bit-identity check, emits BENCH_parallel.json
     host-overhead - span-tracing cost: traced vs untraced legs of one
                task mix, bit-identity check, emits
                BENCH_host_overhead.json
     bechamel - wall-clock microbenchmarks, one Test.make per table

   Flags: --quick (reduced injection counts), --jobs N (domain-pool
   width for the matrix experiments; 1 = sequential), --seed S,
   --device-domains N (intra-device SM sharding width for the
   `parallel` experiment's device part). *)

(* The typed run configuration, threaded into every experiment: no
   more bare refs consulted ad hoc, and `--quick`/`--jobs`/`--seed`
   behave uniformly across experiments. *)
type runcfg = {
  quick : bool;
  jobs : int;
  seed : int;
  device_domains : int;  (* intra-device sharding width (parallel) *)
  pool : Par.Pool.t;  (* inline executor when jobs = 1 *)
}

let cfg = Gpu.Config.default

let fresh () = Gpu.Device.create ~cfg ()

let wl name = Workloads.Registry.find name

let run_plain w variant =
  let device = fresh () in
  w.Workloads.Workload.run device ~variant

let run_instrumented pairs w variant =
  let device = fresh () in
  Sassi.Runtime.with_instrumentation device (pairs device) (fun _ ->
      w.Workloads.Workload.run device ~variant)

let hline = String.make 78 '-'

let section title =
  Printf.printf "\n%s\n%s\n%s\n%!" hline title hline

(* Combined manifests for the matrix experiments (table1, fig10).
   Deliberately deterministic artifacts: wall time is zeroed (it lives
   in BENCH_parallel.json instead) and --jobs is stripped from argv,
   so `bench table1 --jobs 1` and `--jobs 4` write byte-identical
   files — the determinism contract reduced to a `cmp`. *)
let write_experiment_manifest ~experiment ~rc ~counters ~histograms =
  let dir = "bench-manifests" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir ("bench-" ^ experiment ^ ".json") in
  let rec strip_jobs = function
    | [] -> []
    | "--jobs" :: _ :: rest -> strip_jobs rest
    | a :: rest -> a :: strip_jobs rest
  in
  let m =
    { Telemetry.Manifest.m_workload = "bench/" ^ experiment;
      m_variant = "matrix";
      m_instrument = "bench";
      m_seed = rc.seed;
      m_argv = strip_jobs (Array.to_list Sys.argv);
      m_wall_time_s = 0.0;
      m_build = Telemetry.Build_info.collect ();
      m_config = Gpu.Config.to_assoc cfg;
      m_counters = counters;
      m_metrics = [];
      m_histograms = histograms }
  in
  Telemetry.Manifest.write path m;
  Printf.printf "\nmanifest -> %s\n%!" path

(* --- Table 1: branch divergence ----------------------------------------- *)

let table1_rows =
  [ ("parboil", "bfs", "1M"); ("parboil", "bfs", "NY");
    ("parboil", "bfs", "SF"); ("parboil", "bfs", "UT");
    ("parboil", "sgemm", "small"); ("parboil", "sgemm", "medium");
    ("parboil", "tpacf", "small"); ("rodinia", "bfs", "default");
    ("rodinia", "gaussian", "default"); ("rodinia", "heartwall", "default");
    ("rodinia", "srad_v1", "default"); ("rodinia", "srad_v2", "default");
    ("rodinia", "streamcluster", "default") ]

let branch_summary suite name variant =
  let w = wl (suite ^ "/" ^ name) in
  let collector = ref None in
  let pairs device =
    let bs = Handlers.Branch_stats.create device in
    collector := Some bs;
    Handlers.Branch_stats.pairs bs
  in
  let r = run_instrumented pairs w variant in
  match !collector with
  | Some bs -> (Handlers.Branch_stats.summary bs, bs, r)
  | None -> assert false

(* Each row is one independent instrumented run: fanned out over the
   domain pool, printed (and reduced into the manifest) in row order,
   so the output is byte-identical for any --jobs. *)
let table1 rc =
  section
    "Table 1: average branch divergence statistics (Case Study I handler)";
  Printf.printf "%-10s %-14s %-8s | %8s %9s %6s | %10s %10s %6s\n" "suite"
    "benchmark" "dataset" "static" "divgnt" "%" "dynamic" "divergent" "%";
  let rows = Array.of_list table1_rows in
  let tasks =
    Array.map
      (fun (suite, name, variant) ->
         fun () ->
           let s, _, r = branch_summary suite name variant in
           (s, r.Workloads.Workload.stats))
      rows
  in
  let results =
    Par.Campaign.run_tasks rc.pool tasks ~on_result:(fun i (s, _) ->
        let suite, name, variant = rows.(i) in
        let open Handlers.Branch_stats in
        Printf.printf
          "%-10s %-14s %-8s | %8d %9d %6.0f | %10d %10d %6.1f\n%!" suite name
          variant s.static_branches s.static_divergent
          (100.0 *. float_of_int s.static_divergent
           /. float_of_int (max 1 s.static_branches))
          s.dynamic_branches s.dynamic_divergent
          (100.0 *. float_of_int s.dynamic_divergent
           /. float_of_int (max 1 s.dynamic_branches)))
  in
  let merged = Par.Reduce.stats (Array.map snd results) in
  let sum f =
    Array.fold_left
      (fun acc (s, _) -> acc + f s) 0 results
  in
  let open Handlers.Branch_stats in
  write_experiment_manifest ~experiment:"table1" ~rc
    ~counters:
      (( "rows", Array.length rows )
       :: ("static_branches", sum (fun s -> s.static_branches))
       :: ("static_divergent", sum (fun s -> s.static_divergent))
       :: ("dynamic_branches", sum (fun s -> s.dynamic_branches))
       :: ("dynamic_divergent", sum (fun s -> s.dynamic_divergent))
       :: Gpu.Stats.to_assoc merged)
    ~histograms:[]

(* --- Figure 5: per-branch histograms ------------------------------------- *)

let fig5 (_rc : runcfg) =
  section "Figure 5: per-branch divergence, Parboil bfs (1M) vs (UT)";
  List.iter
    (fun variant ->
       let _, bs, _ = branch_summary "parboil" "bfs" variant in
       Printf.printf "\nParboil bfs (%s) - branches sorted by execution \
                      count\n" variant;
       Printf.printf "%-12s %10s %10s  divergent | non-divergent\n" "branch"
         "execs" "divergent";
       List.iter
         (fun b ->
            let open Handlers.Branch_stats in
            let dbar =
              String.make (min 40 (b.divergent * 40 / max 1 b.total)) '#'
            in
            let nbar =
              String.make
                (min 40 ((b.total - b.divergent) * 40 / max 1 b.total))
                '.'
            in
            Printf.printf "0x%08x %10d %10d  %s%s\n" b.ins_addr b.total
              b.divergent dbar nbar)
         (Handlers.Branch_stats.branches bs))
    [ "1M"; "UT" ]

(* --- Figure 7: memory divergence PMF -------------------------------------- *)

let fig7_rows =
  [ ("parboil/bfs", "NY"); ("parboil/bfs", "SF"); ("parboil/bfs", "UT");
    ("parboil/spmv", "small"); ("parboil/spmv", "medium");
    ("parboil/spmv", "large"); ("rodinia/bfs", "default");
    ("rodinia/heartwall", "default"); ("parboil/mri-gridding", "default");
    ("minife/miniFE", "ELL"); ("minife/miniFE", "CSR") ]

let memdiv_profile name variant =
  let w = wl name in
  let collector = ref None in
  let pairs device =
    let md = Handlers.Mem_divergence.create device in
    collector := Some md;
    Handlers.Mem_divergence.pairs md
  in
  let _ = run_instrumented pairs w variant in
  match !collector with
  | Some md -> md
  | None -> assert false

let fig7 rc =
  section
    "Figure 7: distribution (PMF) of unique 32B cache lines requested per \
     warp memory instruction (Case Study II handler)";
  let rows = Array.of_list fig7_rows in
  let tasks =
    Array.map
      (fun (name, variant) -> fun () -> memdiv_profile name variant)
      rows
  in
  ignore
    (Par.Campaign.run_tasks rc.pool tasks ~on_result:(fun i md ->
         let name, variant = rows.(i) in
         let pmf = Handlers.Mem_divergence.pmf md in
         Printf.printf "\n%s (%s):  [fully diverged: %.2f]\n" name variant
           (Handlers.Mem_divergence.fully_diverged_fraction md);
         Array.iteri
           (fun u f ->
              if f > 0.004 then
                Printf.printf "  %2d unique: %5.1f%% %s\n" (u + 1)
                  (100.0 *. f)
                  (String.make (int_of_float (f *. 56.0)) '#'))
           pmf;
         Printf.printf "%!"))

(* --- Figure 8: miniFE matrices -------------------------------------------- *)

let fig8 (_rc : runcfg) =
  section
    "Figure 8: warp occupancy (rows, active threads) x address divergence \
     (cols, unique lines) for miniFE variants; log10 count glyphs";
  List.iter
    (fun variant ->
       let md = memdiv_profile "minife/miniFE" variant in
       let m = Handlers.Mem_divergence.matrix md in
       Printf.printf "\nminiFE-%s        unique lines 1..32 ->\n" variant;
       let glyph v =
         if v = 0 then '.'
         else if v < 10 then '1'
         else if v < 100 then '2'
         else if v < 1000 then '3'
         else if v < 10000 then '4'
         else '5'
       in
       for a = 31 downto 0 do
         if Array.exists (fun x -> x > 0) m.(a) then begin
           Printf.printf "  occ %2d | " (a + 1);
           for u = 0 to 31 do
             print_char (glyph m.(a).(u))
           done;
           print_newline ()
         end
       done;
       Printf.printf "%!")
    [ "CSR"; "ELL" ]

(* --- Table 2: value profiling ---------------------------------------------- *)

let table2_rows =
  [ "parboil/bfs"; "parboil/cutcp"; "parboil/histo"; "parboil/lbm";
    "parboil/mri-gridding"; "parboil/mri-q"; "parboil/sad"; "parboil/sgemm";
    "parboil/spmv"; "parboil/stencil"; "parboil/tpacf"; "rodinia/b+tree";
    "rodinia/backprop"; "rodinia/bfs"; "rodinia/gaussian";
    "rodinia/heartwall"; "rodinia/hotspot"; "rodinia/kmeans";
    "rodinia/lavaMD"; "rodinia/lud"; "rodinia/mummergpu"; "rodinia/nn";
    "rodinia/nw"; "rodinia/pathfinder"; "rodinia/srad_v1"; "rodinia/srad_v2";
    "rodinia/streamcluster" ]

let table2 rc =
  section
    "Table 2: value profiling - constant bits and scalar writes \
     (Case Study III handler)";
  Printf.printf "%-22s | %12s %10s | %12s %10s\n" "benchmark"
    "dyn const%" "dyn scal%" "st const%" "st scal%";
  let rows = Array.of_list table2_rows in
  let tasks =
    Array.map
      (fun name ->
         fun () ->
           let w = wl name in
           let collector = ref None in
           let pairs device =
             let vp = Handlers.Value_profile.create device in
             collector := Some vp;
             Handlers.Value_profile.pairs vp
           in
           let _ =
             run_instrumented pairs w w.Workloads.Workload.default_variant
           in
           Handlers.Value_profile.summary (Option.get !collector))
      rows
  in
  ignore
    (Par.Campaign.run_tasks rc.pool tasks ~on_result:(fun i s ->
         let open Handlers.Value_profile in
         Printf.printf "%-22s | %12.0f %10.0f | %12.0f %10.0f\n%!" rows.(i)
           s.dynamic_const_bits_pct s.dynamic_scalar_pct
           s.static_const_bits_pct s.static_scalar_pct))

(* --- Figure 10: error injection -------------------------------------------- *)

let fig10_apps =
  [ ("parboil/bfs", "UT"); ("parboil/spmv", "small");
    ("parboil/histo", "default"); ("parboil/sad", "default");
    ("parboil/mri-gridding", "default"); ("rodinia/nn", "default");
    ("rodinia/backprop", "default"); ("rodinia/b+tree", "default");
    ("rodinia/pathfinder", "default"); ("rodinia/gaussian", "default");
    ("rodinia/kmeans", "default"); ("rodinia/mummergpu", "default") ]

(* One app = one campaign = one pool task; the per-app campaign seed
   is split from the bench seed and the app index, so the full figure
   replays identically under any --jobs. *)
let fig10 rc =
  let injections = if rc.quick then 8 else 24 in
  section
    (Printf.sprintf
       "Figure 10: error injection outcomes (%d single-bit register flips \
        per application, Case Study IV flow)"
       injections);
  Printf.printf "%-22s | %7s %7s %6s %8s %8s %8s\n" "benchmark" "masked"
    "crash" "hang" "symptom" "sdc-out" "sdc-std";
  let apps = Array.of_list fig10_apps in
  let tasks =
    Array.mapi
      (fun i (name, variant) ->
         fun () ->
           let w = wl name in
           let seed = Par.Seed.split ~seed:rc.seed ~index:i in
           Workloads.Campaign.run_detailed ~cfg ~seed ~injections w ~variant)
      apps
  in
  let details =
    Par.Campaign.run_tasks rc.pool tasks
      ~on_result:(fun i (d : Workloads.Campaign.detail) ->
          let name, _ = apps.(i) in
          let m, c, h, s, so, sf =
            Workloads.Campaign.fractions d.Workloads.Campaign.d_tally
          in
          Printf.printf
            "%-22s | %6.1f%% %6.1f%% %5.1f%% %7.1f%% %7.1f%% %7.1f%%\n%!"
            name (100. *. m) (100. *. c) (100. *. h) (100. *. s) (100. *. sf)
            (100. *. so))
  in
  let open Workloads.Campaign in
  let tallies = Array.map (fun d -> d.d_tally) details in
  let sum f = Array.fold_left (fun a t -> a + f t) 0 tallies in
  let total = sum (fun t -> t.total) in
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 total) in
  Printf.printf "%-22s | %6.1f%% %6.1f%% %5.1f%% %7.1f%% %7.1f%% %7.1f%%\n"
    "AVERAGE"
    (pct (sum (fun t -> t.masked)))
    (pct (sum (fun t -> t.crashes)))
    (pct (sum (fun t -> t.hangs)))
    (pct (sum (fun t -> t.failure_symptoms)))
    (pct (sum (fun t -> t.sdc_output)))
    (pct (sum (fun t -> t.sdc_stdout)));
  let merged = Par.Reduce.stats (Array.map (fun d -> d.d_stats) details) in
  write_experiment_manifest ~experiment:"fig10" ~rc
    ~counters:
      (("apps", Array.length apps)
       :: ("injections_per_app", injections)
       :: ("masked", sum (fun t -> t.masked))
       :: ("crashes", sum (fun t -> t.crashes))
       :: ("hangs", sum (fun t -> t.hangs))
       :: ("failure_symptoms", sum (fun t -> t.failure_symptoms))
       :: ("sdc_stdout", sum (fun t -> t.sdc_stdout))
       :: ("sdc_output", sum (fun t -> t.sdc_output))
       :: ("injections_total", total)
       :: Gpu.Stats.to_assoc merged)
    ~histograms:[]

(* --- Table 3: instrumentation overheads ------------------------------------ *)

let case_studies =
  [ ("I",
     fun device ->
       Handlers.Branch_stats.pairs (Handlers.Branch_stats.create device));
    ("II",
     fun device ->
       Handlers.Mem_divergence.pairs (Handlers.Mem_divergence.create device));
    ("III",
     fun device ->
       Handlers.Value_profile.pairs (Handlers.Value_profile.create device));
    ("IV",
     fun _device ->
       Handlers.Error_inject.Profile.pairs
         (Handlers.Error_inject.Profile.create ())) ]

let stub_pairs _device =
  [ (Sassi.Select.after
       [ Sassi.Select.Reg_writes; Sassi.Select.Pred_writes ]
       [ Sassi.Select.Reg_info ],
     Sassi.Handler.noop) ]

(* Wall-clock bracketing lives in one place now (Obs.Clock), shared
   with the sassi_run driver. *)
let timed f = Obs.Clock.with_wall_time f

let table3_rows =
  [ "parboil/sgemm"; "parboil/spmv"; "parboil/bfs"; "parboil/mri-q";
    "parboil/mri-gridding"; "parboil/cutcp"; "parboil/histo";
    "parboil/stencil"; "parboil/sad"; "parboil/lbm"; "parboil/tpacf";
    "rodinia/nn"; "rodinia/hotspot"; "rodinia/lud"; "rodinia/b+tree";
    "rodinia/bfs"; "rodinia/pathfinder"; "rodinia/srad_v2";
    "rodinia/mummergpu"; "rodinia/backprop"; "rodinia/kmeans";
    "rodinia/lavaMD"; "rodinia/srad_v1"; "rodinia/nw"; "rodinia/gaussian";
    "rodinia/streamcluster"; "rodinia/heartwall" ]

let table3 (_rc : runcfg) =
  section
    "Table 3: instrumentation overheads. T = whole-program wall-clock \
     ratio, K = kernel (simulated cycles) ratio; stub = empty handler at \
     Case Study III sites";
  Printf.printf "%-22s %7s %10s |" "benchmark" "t(s)" "k(cyc)";
  List.iter (fun (n, _) -> Printf.printf "   CS-%s     |" n) case_studies;
  Printf.printf "  stubK\n";
  let n_cs = List.length case_studies in
  let geo = Array.make (2 * n_cs) 0.0 in
  let rows = ref 0 in
  let stub_log_sum = ref 0.0 in
  let cs3_log_sum = ref 0.0 in
  List.iter
    (fun name ->
       let w = wl name in
       let variant = w.Workloads.Workload.default_variant in
       let base, t_base = timed (fun () -> run_plain w variant) in
       let k_base =
         max 1 base.Workloads.Workload.stats.Gpu.Stats.cycles
       in
       Printf.printf "%-22s %7.2f %10d |" name t_base k_base;
       incr rows;
       List.iteri
         (fun i (cs_name, pairs) ->
            let r, t = timed (fun () -> run_instrumented pairs w variant) in
            let tr = t /. max 1e-6 t_base in
            let kr =
              float_of_int r.Workloads.Workload.stats.Gpu.Stats.cycles
              /. float_of_int k_base
            in
            if cs_name = "III" then cs3_log_sum := !cs3_log_sum +. log kr;
            geo.(2 * i) <- geo.(2 * i) +. log tr;
            geo.((2 * i) + 1) <- geo.((2 * i) + 1) +. log kr;
            Printf.printf " %4.1ft %4.1fk |" tr kr)
         case_studies;
       let stub, _ = timed (fun () -> run_instrumented stub_pairs w variant) in
       let stub_k =
         float_of_int stub.Workloads.Workload.stats.Gpu.Stats.cycles
         /. float_of_int k_base
       in
       stub_log_sum := !stub_log_sum +. log stub_k;
       Printf.printf " %5.1fk\n%!" stub_k)
    table3_rows;
  let fl = float_of_int !rows in
  Printf.printf "\n%-22s %18s |" "GEOMEAN" "";
  List.iteri
    (fun i _ ->
       Printf.printf " %4.1ft %4.1fk |"
         (exp (geo.(2 * i) /. fl))
         (exp (geo.((2 * i) + 1) /. fl)))
    case_studies;
  let stub_geo = exp (!stub_log_sum /. fl) in
  let cs3_geo = exp (!cs3_log_sum /. fl) in
  Printf.printf " %5.1fk\n" stub_geo;
  Printf.printf
    "\nAblation (paper Section 9.1): the empty handler already costs \
     %.1fx kernel cycles vs %.1fx with the full value-profiling handler - \
     ABI call setup and register spills account for %.0f%% of the \
     instrumentation overhead.\n%!"
    stub_geo cs3_geo
    (100.0 *. (stub_geo -. 1.0) /. max 0.001 (cs3_geo -. 1.0))

(* --- Cache design-space exploration (paper Sec. 9.4) ----------------------- *)

let cachesim_rows =
  [ ("minife/miniFE", "CSR"); ("minife/miniFE", "ELL");
    ("parboil/spmv", "small") ]

let cachesim (_rc : runcfg) =
  section
    "Extension (paper Sec. 9.4, 'Driving other simulators'): SASSI memory \
     traces replayed through a standalone cache simulator";
  List.iter
    (fun (name, variant) ->
       let w = wl name in
       let tr = Handlers.Mem_trace.create () in
       let _ =
         run_instrumented (fun _ -> Handlers.Mem_trace.pairs tr) w variant
       in
       let trace = Handlers.Mem_trace.trace tr in
       Printf.printf "\n%s (%s): %d warp accesses traced (%d dropped)\n" name
         variant (Handlers.Mem_trace.length tr) (Handlers.Mem_trace.dropped tr);
       List.iter
         (fun r ->
            Format.printf "  %a@." Handlers.Cache_explorer.pp_result r)
         (Handlers.Cache_explorer.sweep trace
            Handlers.Cache_explorer.default_sweep);
       Printf.printf "%!")
    cachesim_rows

(* --- Architecture design-space exploration ------------------------------- *)

let scaling_rows =
  [ ("parboil/sgemm", "small"); ("parboil/spmv", "medium");
    ("rodinia/streamcluster", "default") ]

let scaling (_rc : runcfg) =
  section
    "Extension: architecture design-space exploration on the simulated \
     device - kernel cycles vs. SM count (the workflow the paper's intro \
     motivates)";
  Printf.printf "%-24s %-9s |" "benchmark" "variant";
  List.iter (fun sms -> Printf.printf " %4d SM |" sms) [ 1; 2; 4; 8 ];
  Printf.printf "  speedup 1->8\n";
  List.iter
    (fun (name, variant) ->
       let w = wl name in
       Printf.printf "%-24s %-9s |" name variant;
       let cycles =
         List.map
           (fun sms ->
              let device =
                Gpu.Device.create ~cfg:{ cfg with Gpu.Config.num_sms = sms } ()
              in
              let r = w.Workloads.Workload.run device ~variant in
              let c = r.Workloads.Workload.stats.Gpu.Stats.cycles in
              Printf.printf " %7d |" c;
              c)
           [ 1; 2; 4; 8 ]
       in
       (match cycles with
        | [ c1; _; _; c8 ] ->
          Printf.printf " %9.2fx\n%!" (float_of_int c1 /. float_of_int c8)
        | _ -> Printf.printf "\n%!"))
    scaling_rows

(* --- Activity tracing overhead --------------------------------------------- *)

let tracing_rows =
  [ ("parboil/spmv", "small"); ("parboil/sgemm", "small");
    ("rodinia/bfs", "default") ]

let tracing (_rc : runcfg) =
  section
    "Extension: activity-tracing overhead (CUPTI-style Activity API) - \
     wall-clock with the collector installed vs. plain, plus record \
     volume and drop accounting";
  Printf.printf "%-24s %-8s | %7s %7s %6s | %9s %9s %9s\n" "benchmark"
    "variant" "t0(s)" "t1(s)" "ratio" "records" "dropped" "stall-cyc";
  List.iter
    (fun (name, variant) ->
       let w = wl name in
       let _, t_plain = timed (fun () -> run_plain w variant) in
       let device = fresh () in
       Cupti.Activity.enable_all ~capacity:(1 lsl 18) device;
       let _, t_traced =
         timed (fun () -> w.Workloads.Workload.run device ~variant)
       in
       let records = Cupti.Activity.records device in
       let dropped = Cupti.Activity.dropped device in
       let tl = Trace.Timeline.build records in
       let stall_cycles =
         List.fold_left (fun a (_, _, c) -> a + c) 0
           (Trace.Timeline.stall_breakdown tl)
       in
       Cupti.Activity.disable device;
       Printf.printf "%-24s %-8s | %7.2f %7.2f %5.1fx | %9d %9d %9d\n%!"
         name variant t_plain t_traced
         (t_traced /. max 1e-6 t_plain)
         (List.length records) dropped stall_cycles)
    tracing_rows

(* --- PC-sampling profiling: overhead and accuracy --------------------------- *)

let profiling_rows =
  [ ("parboil/sgemm", "small"); ("parboil/spmv", "small");
    ("rodinia/bfs", "default") ]

(* Top-5 PCs by count, descending, PC-ascending tie-break. *)
let top5 tbl =
  Hashtbl.fold (fun pc c acc -> (pc, c) :: acc) tbl []
  |> List.sort (fun (pa, ca) (pb, cb) ->
      match compare cb ca with 0 -> compare pa pb | c -> c)
  |> List.filteri (fun i _ -> i < 5)

(* Tie-aware rank overlap: a sampled top-5 PC agrees when its exact
   issue count reaches the 5th-largest exact count. Issue counts are
   heavily tied inside hot loops (every body instruction executes the
   same number of times), so membership in the tie group is what a
   rank comparison can meaningfully check. *)
let top5_overlap ~exact sampled =
  let threshold =
    match List.rev (top5 exact) with (_, c) :: _ -> c | [] -> max_int
  in
  List.length
    (List.filter
       (fun (pc, _) ->
          match Hashtbl.find_opt exact pc with
          | Some c -> c >= threshold
          | None -> false)
       (top5 sampled))

let profiling (_rc : runcfg) =
  section
    "Extension: PC-sampling profiler (nvprof-style) - wall-clock overhead \
     vs. plain, and sampled hotspot ranking validated against exact \
     per-PC issue counts from the Activity API";
  Printf.printf "%-24s %-8s | %7s %7s %6s | %9s %8s | %5s\n" "benchmark"
    "variant" "t0(s)" "t1(s)" "ratio" "samples" "hits" "top5";
  let summaries = ref [] in
  List.iter
    (fun (name, variant) ->
       let w = wl name in
       let _, t_plain = timed (fun () -> run_plain w variant) in
       (* Ground truth: exact per-PC issue counts, streamed out of the
          activity ring through the buffer-completed callback so
          capacity never truncates them. *)
       let exact = Hashtbl.create 512 in
       let bump tbl pc n =
         Hashtbl.replace tbl pc
           (n + Option.value ~default:0 (Hashtbl.find_opt tbl pc))
       in
       let tally_one r =
         match r.Trace.Record.payload with
         | Trace.Record.Warp_issue { pc; _ } -> bump exact pc 1
         | _ -> ()
       in
       let dev_exact = fresh () in
       Cupti.Activity.enable ~capacity:(1 lsl 16)
         ~overflow:(Cupti.Activity.Deliver (Array.iter tally_one))
         dev_exact
         [ Cupti.Activity.Warp ];
       let _ = w.Workloads.Workload.run dev_exact ~variant in
       List.iter tally_one (Cupti.Activity.flush dev_exact);
       Cupti.Activity.disable dev_exact;
       (* Profiled run. *)
       let device = fresh () in
       let s = Cupti.Pc_sampling.enable device in
       let _, t_prof =
         timed (fun () -> w.Workloads.Workload.run device ~variant)
       in
       Cupti.Pc_sampling.disable device;
       let sampled = Hashtbl.create 512 in
       Prof.Pc_sampling.fold_pcs s
         (fun () _kernel pc ~total ~by_reason:_ -> bump sampled pc total)
         ();
       let overlap = top5_overlap ~exact sampled in
       Printf.printf "%-24s %-8s | %7.2f %7.2f %5.1fx | %9d %8d | %d/5\n%!"
         name variant t_plain t_prof
         (t_prof /. max 1e-6 t_plain)
         (Prof.Pc_sampling.total_samples s)
         (Prof.Pc_sampling.hits s) overlap;
       summaries :=
         Trace.Json.Obj
           [ ("benchmark", Trace.Json.Str name);
             ("variant", Trace.Json.Str variant);
             ("t_plain_s", Trace.Json.Float t_plain);
             ("t_profiled_s", Trace.Json.Float t_prof);
             ("samples", Trace.Json.Int (Prof.Pc_sampling.total_samples s));
             ("hits", Trace.Json.Int (Prof.Pc_sampling.hits s));
             ("top5_overlap", Trace.Json.Int overlap) ]
         :: !summaries)
    profiling_rows;
  (* Machine-readable summary through the shared JSON serializer. *)
  Printf.printf "\nprofiling-json: %s\n%!"
    (Trace.Json.to_string (Trace.Json.List (List.rev !summaries)))

(* --- Telemetry: overhead, invariance, and memory-latency histograms ---------- *)

let telemetry_rows =
  [ ("parboil/sgemm", "small"); ("parboil/spmv", "small");
    ("rodinia/bfs", "default"); ("parboil/stencil", "default") ]

(* Coalesced vs divergent access patterns for the histogram study:
   sgemm streams unit-stride tiles, spmv chases sparse columns. *)
let telemetry_hist_rows = [ ("parboil/sgemm", "small"); ("parboil/spmv", "small") ]

let write_bench_manifest name variant (r : Workloads.Workload.result)
    (t : Cupti.Telemetry.t) wall =
  let dir = "bench-manifests" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir
      (String.map (fun c -> if c = '/' then '-' else c) name
       ^ "-" ^ variant ^ ".json")
  in
  let m =
    { Telemetry.Manifest.m_workload = name;
      m_variant = variant;
      m_instrument = "none";
      m_seed = 0;
      m_argv = Array.to_list Sys.argv;
      m_wall_time_s = wall;
      m_build = Telemetry.Build_info.collect ();
      m_config = Gpu.Config.to_assoc cfg;
      m_counters =
        ("launches", r.Workloads.Workload.launches)
        :: Gpu.Stats.to_assoc r.Workloads.Workload.stats
        @ Cupti.Telemetry.counters t;
      m_metrics = [];
      m_histograms = Cupti.Telemetry.histograms t }
  in
  Telemetry.Manifest.write path m;
  path

let telemetry (_rc : runcfg) =
  section
    "Extension: telemetry overhead and invariance - wall-clock with the \
     metrics sink installed vs. plain, Stats equality (the sink must only \
     observe), and run manifests for `sassi_run compare`";
  Printf.printf "%-24s %-8s | %7s %7s %7s | %9s %6s | %s\n" "benchmark"
    "variant" "t0(s)" "t1(s)" "ratio" "series" "stats" "manifest";
  List.iter
    (fun (name, variant) ->
       let w = wl name in
       let base, t_plain = timed (fun () -> run_plain w variant) in
       let device = fresh () in
       let t = Cupti.Telemetry.enable device in
       let r, t_tel =
         timed (fun () -> w.Workloads.Workload.run device ~variant)
       in
       Cupti.Telemetry.disable device;
       let identical =
         Gpu.Stats.to_assoc base.Workloads.Workload.stats
         = Gpu.Stats.to_assoc r.Workloads.Workload.stats
       in
       let manifest = write_bench_manifest name variant r t t_tel in
       Printf.printf "%-24s %-8s | %7.2f %7.2f %6.2fx | %9d %6s | %s\n%!"
         name variant t_plain t_tel
         (t_tel /. max 1e-6 t_plain)
         (Telemetry.Series.length (Cupti.Telemetry.series t))
         (if identical then "same" else "DRIFT")
         manifest)
    telemetry_rows;
  Printf.printf
    "\nMemory-request latency histograms (log2 buckets): coalesced \
     (sgemm) vs divergent (spmv) access patterns\n";
  List.iter
    (fun (name, variant) ->
       let w = wl name in
       let device = fresh () in
       let t = Cupti.Telemetry.enable device in
       let _ = w.Workloads.Workload.run device ~variant in
       Cupti.Telemetry.disable device;
       List.iter
         (fun (hname, h) ->
            match hname with
            | "sassi_mem_request_latency_cycles"
            | "sassi_mem_transactions_per_access" ->
              Printf.printf "\n%s (%s) %s:\n%s" name variant hname
                (Telemetry.Hist.render h)
            | _ -> ())
         (List.filter_map
            (fun (s : Telemetry.Registry.spec) ->
               match s.Telemetry.Registry.sp_instrument with
               | Telemetry.Registry.Histogram h ->
                 Some (s.Telemetry.Registry.sp_name, h)
               | _ -> None)
            (Telemetry.Registry.specs (Cupti.Telemetry.registry t)));
       Printf.printf "%!")
    telemetry_hist_rows

(* --- Bechamel micro-suite ---------------------------------------------------- *)

let bechamel (_rc : runcfg) =
  section
    "Bechamel wall-clock microbenchmarks (one Test.make per experiment; \
     small workloads)";
  let open Bechamel in
  let w = wl "parboil/spmv" in
  let make_test name runner =
    Test.make ~name (Staged.stage (fun () -> ignore (runner ())))
  in
  let tests =
    [ make_test "table1-branch-instr" (fun () ->
          branch_summary "parboil" "spmv" "small");
      make_test "fig5-per-branch" (fun () ->
          branch_summary "parboil" "bfs" "UT");
      make_test "fig7-memdiv-instr" (fun () ->
          memdiv_profile "parboil/spmv" "small");
      make_test "fig8-minife-ell" (fun () ->
          memdiv_profile "minife/miniFE" "ELL");
      make_test "table2-value-instr" (fun () ->
          run_instrumented
            (fun device ->
               Handlers.Value_profile.pairs
                 (Handlers.Value_profile.create device))
            w "small");
      make_test "fig10-one-injection" (fun () ->
          Workloads.Campaign.run ~cfg ~injections:1 w ~variant:"small");
      make_test "table3-baseline" (fun () -> run_plain w "small") ]
  in
  let grouped = Test.make_grouped ~name:"sassi" ~fmt:"%s/%s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:20 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg_b instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure by_test ->
       let rows =
         Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_test []
         |> List.sort (fun (a, _) (b, _) -> String.compare a b)
       in
       List.iter
         (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some (est :: _) ->
              Printf.printf "  %-32s %12.3f ms/run\n" name (est /. 1e6)
            | Some [] | None ->
              Printf.printf "  %-32s (no estimate)\n" name)
         rows)
    merged;
  Printf.printf "%!"

(* --- analysis: static-analyzer wall time per kernel --------------------- *)

(* The verifier is meant to run inside the compiler on every build, so
   its cost must stay O(instructions x dataflow passes). This prints
   the measured per-kernel wall time across the whole workload suite
   alongside the instruction count, so a super-linear regression shows
   up as ns/instr drifting with kernel size. *)
let analysis rc =
  section "analysis: static-analysis wall time per kernel (a compiler-pass budget)";
  let reps = if rc.quick then 5 else 20 in
  Printf.printf "  %-26s %7s %7s %9s %9s %9s\n" "kernel" "instrs" "blocks"
    "findings" "us/run" "ns/instr";
  let total_instrs = ref 0 and total_us = ref 0.0 in
  List.iter
    (fun w ->
       let device = fresh () in
       let kernels = ref [] in
       Gpu.Device.set_transform device
         (Some
            (fun k ->
               if not (List.mem_assoc k.Sass.Program.name !kernels) then
                 kernels := (k.Sass.Program.name, k) :: !kernels;
               k));
       let _ =
         w.Workloads.Workload.run device
           ~variant:w.Workloads.Workload.default_variant
       in
       List.iter
         (fun (kname, k) ->
            let instrs = Array.length k.Sass.Program.instrs in
            let cfg_k = Sass.Cfg.build k.Sass.Program.instrs in
            let nblocks = Array.length cfg_k.Sass.Cfg.blocks in
            let findings = Analysis.Verifier.verify k in
            let (), dt_total =
              timed (fun () ->
                  for _ = 1 to reps do
                    ignore (Analysis.Verifier.verify k)
                  done)
            in
            let dt = dt_total /. float_of_int reps in
            total_instrs := !total_instrs + instrs;
            total_us := !total_us +. (dt *. 1e6);
            Printf.printf "  %-26s %7d %7d %9d %9.1f %9.1f\n" kname instrs
              nblocks
              (List.length findings)
              (dt *. 1e6)
              (dt *. 1e9 /. float_of_int instrs))
         (List.rev !kernels))
    Workloads.Registry.all;
  Printf.printf
    "  total: %d instrs, %.1f us for one verify of every kernel\n%!"
    !total_instrs !total_us

(* --- parallel: seq-vs-par wall clock and bit-identity ---------------------- *)

(* Two representative task mixes: plain instrumented runs (table1
   cells) and full injection campaigns (fig10 apps at reduced
   injection counts). Each mix runs once on a one-domain inline pool
   and once on the --jobs pool; the results must compare structurally
   equal, and both wall clocks land in BENCH_parallel.json. On a
   single-core host the speedup hovers around 1.0x (domains time-slice
   one CPU); the bit-identity columns are the point there. *)
let parallel_run_rows =
  [ ("parboil", "sgemm", "small"); ("parboil", "sgemm", "medium");
    ("parboil", "bfs", "NY"); ("parboil", "tpacf", "small");
    ("rodinia", "gaussian", "default"); ("rodinia", "srad_v1", "default") ]

let parallel_campaign_apps =
  [ ("parboil/sgemm", "small"); ("parboil/spmv", "small");
    ("rodinia/nn", "default") ]

(* Intra-device sharding rows for the `device` part: two shardable
   kernels that spread SMs over domains, and histo, whose cross-block
   atomics exercise the deterministic sequential fallback. *)
let parallel_device_rows =
  [ ("parboil/sgemm", "medium"); ("parboil/spmv", "large");
    ("parboil/histo", "default") ]

(* One run of [name] with the process-wide device-domain default set
   to [d]; observes everything the sharding contract promises to keep
   bit-identical (output digest, summary line, full stats) plus the
   eligibility-fallback count. *)
let device_observe name variant d =
  Gpu.Device.set_default_domains d;
  Fun.protect ~finally:(fun () -> Gpu.Device.set_default_domains 1)
  @@ fun () ->
  let w = wl name in
  let device = Gpu.Device.create ~cfg () in
  let r, dt = timed (fun () -> w.Workloads.Workload.run device ~variant) in
  ( (r.Workloads.Workload.output_digest,
     r.Workloads.Workload.stdout,
     Gpu.Stats.to_assoc r.Workloads.Workload.stats),
    Gpu.Device.sharding_fallbacks device,
    dt )

let parallel rc =
  section
    (Printf.sprintf
       "parallel: campaign-runner determinism and wall clock, sequential \
        (--jobs 1) vs parallel (--jobs %d)"
       rc.jobs);
  let run_part name tasks =
    let rs_seq, t_seq =
      Par.Pool.with_pool ~domains:1 (fun p ->
          timed (fun () ->
              Par.Campaign.run_tasks p tasks ~on_result:(fun _ _ -> ())))
    in
    let rs_par, t_par =
      timed (fun () ->
          Par.Campaign.run_tasks rc.pool tasks ~on_result:(fun _ _ -> ()))
    in
    let identical = rs_seq = rs_par in
    Printf.printf
      "%-10s | %2d tasks | seq %6.2fs  par %6.2fs  speedup %4.2fx  %s\n%!"
      name (Array.length tasks) t_seq t_par
      (t_seq /. max 1e-6 t_par)
      (if identical then "bit-identical" else "MISMATCH");
    (name, Array.length tasks, t_seq, t_par, identical)
  in
  let run_tasks =
    Array.of_list parallel_run_rows
    |> Array.map (fun (suite, bench, variant) ->
        fun () ->
          let s, _, r = branch_summary suite bench variant in
          (s, Gpu.Stats.to_assoc r.Workloads.Workload.stats))
  in
  let injections = if rc.quick then 4 else 8 in
  let campaign_tasks =
    Array.of_list parallel_campaign_apps
    |> Array.mapi (fun i (name, variant) ->
        fun () ->
          let w = wl name in
          let seed = Par.Seed.split ~seed:rc.seed ~index:i in
          let d =
            Workloads.Campaign.run_detailed ~cfg ~seed ~injections w ~variant
          in
          (d.Workloads.Campaign.d_outcomes,
           Gpu.Stats.to_assoc d.Workloads.Campaign.d_stats))
  in
  let parts =
    [ run_part "runs" run_tasks; run_part "campaigns" campaign_tasks ]
  in
  (* Device part: the same single run sequential vs sharded across
     --device-domains OCaml domains. Across-run parallelism above
     cannot shrink one heavy run; this is the knob that can. *)
  let ddomains = max 2 rc.device_domains in
  Printf.printf
    "\nintra-device sharding (--device-domains %d, %d SMs):\n%!" ddomains
    cfg.Gpu.Config.num_sms;
  let device_rows =
    List.map
      (fun (name, variant) ->
        let obs_seq, _, t_seq = device_observe name variant 1 in
        let obs_par, fallbacks, t_par = device_observe name variant ddomains in
        let identical = obs_seq = obs_par in
        Printf.printf
          "%-16s %-8s | seq %6.2fs  sharded %6.2fs  speedup %4.2fx  \
           fallbacks %3d  %s\n%!"
          name variant t_seq t_par
          (t_seq /. max 1e-6 t_par)
          fallbacks
          (if identical then "bit-identical" else "MISMATCH");
        (name, variant, t_seq, t_par, identical, fallbacks))
      parallel_device_rows
  in
  let device_identical =
    List.for_all (fun (_, _, _, _, i, _) -> i) device_rows
  in
  let json =
    Trace.Json.Obj
      [ ("schema", Trace.Json.Str "sassi-bench-parallel/2");
        ("jobs", Trace.Json.Int rc.jobs);
        ("seed", Trace.Json.Int rc.seed);
        ("host_domains",
         Trace.Json.Int (Domain.recommended_domain_count ()));
        ("steals", Trace.Json.Int (Par.Pool.stats rc.pool).Par.Pool.s_steals);
        ("parts",
         Trace.Json.List
           (List.map
              (fun (name, n, t_seq, t_par, identical) ->
                 Trace.Json.Obj
                   [ ("name", Trace.Json.Str name);
                     ("tasks", Trace.Json.Int n);
                     ("t_seq_s", Trace.Json.Float t_seq);
                     ("t_par_s", Trace.Json.Float t_par);
                     ("speedup",
                      Trace.Json.Float (t_seq /. max 1e-6 t_par));
                     ("bit_identical", Trace.Json.Bool identical) ])
              parts));
        ("device",
         Trace.Json.Obj
           [ ("device_domains", Trace.Json.Int ddomains);
             ("num_sms", Trace.Json.Int cfg.Gpu.Config.num_sms);
             ("bit_identical", Trace.Json.Bool device_identical);
             ("rows",
              Trace.Json.List
                (List.map
                   (fun (name, variant, t_seq, t_par, identical, fallbacks) ->
                      Trace.Json.Obj
                        [ ("name", Trace.Json.Str name);
                          ("variant", Trace.Json.Str variant);
                          ("t_seq_s", Trace.Json.Float t_seq);
                          ("t_sharded_s", Trace.Json.Float t_par);
                          ("speedup",
                           Trace.Json.Float (t_seq /. max 1e-6 t_par));
                          ("bit_identical", Trace.Json.Bool identical);
                          ("fallbacks", Trace.Json.Int fallbacks) ])
                   device_rows)) ]) ]
  in
  Trace.Json.write_file "BENCH_parallel.json" json;
  Printf.printf "\nwrote BENCH_parallel.json\n%!";
  if not (List.for_all (fun (_, _, _, _, i) -> i) parts && device_identical)
  then begin
    Printf.eprintf "parallel: determinism violation (see MISMATCH rows)\n";
    exit 1
  end

(* --- host-overhead: span-tracing cost vs an untraced run ------------------- *)

(* One fixed task mix, run three times on the --jobs pool: a warm-up
   leg (so neither measured leg pays first-run costs), an untraced
   leg, and a traced leg with Obs.Tracer live the whole time. The
   traced results must compare structurally equal to the untraced ones
   (spans never touch simulation state), the wall-clock delta is the
   span overhead (<5% budget), and the manifest records only the
   deterministic side — task and per-category span counts — so every
   run of this experiment writes a byte-identical artifact for
   `sassi_run compare`. *)
let host_overhead_rows =
  [ ("parboil", "sgemm", "small"); ("parboil", "bfs", "NY");
    ("parboil", "tpacf", "small"); ("rodinia", "gaussian", "default");
    ("rodinia", "nn", "default"); ("rodinia", "hotspot", "default") ]

let host_overhead rc =
  section
    (Printf.sprintf
       "host-overhead: span tracing cost, traced vs untraced (--jobs %d)"
       rc.jobs);
  let tasks =
    Array.of_list host_overhead_rows
    |> Array.map (fun (suite, bench, variant) ->
        fun () ->
          let s, _, r = branch_summary suite bench variant in
          (s, Gpu.Stats.to_assoc r.Workloads.Workload.stats))
  in
  let run_leg () =
    timed (fun () ->
        Par.Campaign.run_tasks rc.pool tasks ~on_result:(fun _ _ -> ()))
  in
  ignore (run_leg ());
  (* Alternate untraced/traced legs and keep the best wall time per
     mode: single legs of a few seconds are dominated by scheduler
     jitter on small hosts, and min-of-N is the floor the tracer's
     real cost shows up against. Results must match across ALL legs. *)
  let legs = if rc.quick then 2 else 3 in
  let rs_off = ref None and rs_on = ref None and spans = ref [] in
  let t_off = ref infinity and t_on = ref infinity in
  let consistent = ref true in
  let record slot rs = match !slot with
    | None -> slot := Some rs
    | Some prev -> if prev <> rs then consistent := false
  in
  for _ = 1 to legs do
    let rs, t = run_leg () in
    record rs_off rs;
    t_off := min !t_off t;
    Obs.Tracer.enable ();
    let rs, t = run_leg () in
    let drained = Obs.Tracer.drain () in
    if !spans = [] then spans := drained;
    record rs_on rs;
    t_on := min !t_on t
  done;
  let t_off = !t_off and t_on = !t_on and spans = !spans in
  let identical = !consistent && !rs_off = !rs_on in
  let overhead_pct = 100.0 *. (t_on -. t_off) /. max 1e-9 t_off in
  Printf.printf
    "%2d tasks | untraced %6.2fs  traced %6.2fs  overhead %+5.2f%%  \
     (budget <5%%) | %d span(s)  %s\n%!"
    (Array.length tasks) t_off t_on overhead_pct (List.length spans)
    (if identical then "bit-identical" else "MISMATCH");
  (* Per-category span counts are deterministic (fixed task mix, fixed
     compile pipeline and launch sequence); durations are not and stay
     out of the manifest. *)
  let by_cat =
    Obs.Export.summary spans
    |> List.map (fun (cat, n, _dur) -> ("spans_" ^ cat, n))
    |> List.sort compare
  in
  write_experiment_manifest ~experiment:"host-overhead" ~rc
    ~counters:
      ((("tasks", Array.length tasks)
        :: ("spans_total", List.length spans)
        :: by_cat))
    ~histograms:[];
  let json =
    Trace.Json.Obj
      [ ("schema", Trace.Json.Str "sassi-bench-host-overhead/1");
        ("jobs", Trace.Json.Int rc.jobs);
        ("tasks", Trace.Json.Int (Array.length tasks));
        ("t_untraced_s", Trace.Json.Float t_off);
        ("t_traced_s", Trace.Json.Float t_on);
        ("overhead_pct", Trace.Json.Float overhead_pct);
        ("spans_total", Trace.Json.Int (List.length spans));
        ("bit_identical", Trace.Json.Bool identical) ]
  in
  Trace.Json.write_file "BENCH_host_overhead.json" json;
  Printf.printf "\nwrote BENCH_host_overhead.json\n%!";
  if not identical then begin
    Printf.eprintf "host-overhead: traced results diverge from untraced\n";
    exit 1
  end

(* --- analysis-mem: static memory predictions vs the machine ---------------- *)

(* Launch facts captured on a kernel's first launch; the parameter
   reader stays valid after the run (the constant bank is a live heap
   object), so predictions are computed lazily afterwards. *)
type mem_capture = {
  mc_geom : Analysis.Affine.geom;
  mc_param : int -> int option;
  mutable mc_multi : bool;  (* relaunched with a different geometry *)
}

(* Validates the static memory predictors end to end: one plain run
   captures kernels and launch geometry, a Mem_audit-instrumented
   rerun measures per-site bank-conflict degree and coalesced line
   counts from the machine's own lane addresses, and the abstract
   interpreter predicts the same numbers from the SASS alone. Gates:
   gld/gst/shared counters must not move under instrumentation, the
   audit totals must reconcile with the machine's counters exactly,
   every exact prediction must equal the measured min = max, and on
   sgemm (dense, fully affine) every site must be exact. spmv's
   row/column indirection is the designed counterexample: its direct
   sites are exact, its data-dependent sites carry the note. *)
let analysis_mem_rows =
  [ ("parboil", "sgemm", "small", true); ("parboil", "spmv", "small", false) ]

let analysis_mem rc =
  section
    "analysis-mem: static bank-conflict & coalescing predictions vs machine";
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
         incr failures;
         Printf.printf "FAIL %s\n%!" m)
      fmt
  in
  let wl_objs =
    List.map
      (fun (suite, name, variant, all_exact) ->
         let w = wl (suite ^ "/" ^ name) in
         (* Leg 1: plain run, capturing kernels and launch facts. *)
         let device = fresh () in
         let kernels = ref [] in
         let captures = Hashtbl.create 4 in
         Gpu.Device.set_transform device
           (Some
              (fun k ->
                 if not (List.mem_assoc k.Sass.Program.name !kernels) then
                   kernels := (k.Sass.Program.name, k) :: !kernels;
                 k));
         ignore
           (Gpu.Device.on_launch device (fun l ->
                let kname = l.Gpu.State.l_kernel.Sass.Program.name in
                let geom =
                  { Analysis.Affine.g_block_x = l.Gpu.State.l_block_x;
                    g_block_y = l.Gpu.State.l_block_y;
                    g_grid_x = l.Gpu.State.l_grid_x;
                    g_grid_y = l.Gpu.State.l_grid_y }
                in
                match Hashtbl.find_opt captures kname with
                | Some mc -> if mc.mc_geom <> geom then mc.mc_multi <- true
                | None ->
                  let params = l.Gpu.State.l_params in
                  let bytes = l.Gpu.State.l_kernel.Sass.Program.param_bytes in
                  let param off =
                    if off >= 0 && off + 4 <= bytes then
                      Some (Gpu.Memory.read params ~width:Sass.Opcode.W32 off)
                    else None
                  in
                  Hashtbl.add captures kname
                    { mc_geom = geom; mc_param = param; mc_multi = false }));
         let r_plain = w.Workloads.Workload.run device ~variant in
         (* Leg 2: Mem_audit-instrumented rerun on a fresh device. *)
         let device2 = fresh () in
         let audit =
           Handlers.Mem_audit.create ~line_bytes:cfg.Gpu.Config.line_bytes
         in
         let r_audit =
           Sassi.Runtime.with_instrumentation device2
             (Handlers.Mem_audit.pairs audit)
             (fun _ -> w.Workloads.Workload.run device2 ~variant)
         in
         let sp = r_plain.Workloads.Workload.stats
         and sa = r_audit.Workloads.Workload.stats in
         if
           r_plain.Workloads.Workload.output_digest
           <> r_audit.Workloads.Workload.output_digest
         then
           fail "%s/%s: output digest moved under instrumentation" suite name;
         List.iter
           (fun (cname, a, b) ->
              if a <> b then
                fail "%s/%s: %s moved under instrumentation: %d -> %d" suite
                  name cname a b)
           [ ("gld_transactions", sp.Gpu.Stats.gld_transactions,
              sa.Gpu.Stats.gld_transactions);
             ("gst_transactions", sp.Gpu.Stats.gst_transactions,
              sa.Gpu.Stats.gst_transactions);
             ("shared_accesses", sp.Gpu.Stats.shared_accesses,
              sa.Gpu.Stats.shared_accesses);
             ("shared_conflicts", sp.Gpu.Stats.shared_conflicts,
              sa.Gpu.Stats.shared_conflicts) ];
         (* The audit must be redundant with the machine's counters. *)
         let sites = Handlers.Mem_audit.sites audit in
         let sum pred f =
           List.fold_left
             (fun acc (s : Handlers.Mem_audit.site) ->
                if pred s then acc + f s else acc)
             0 sites
         in
         let shared (s : Handlers.Mem_audit.site) =
           s.Handlers.Mem_audit.s_space = Sass.Opcode.Shared
         in
         let global_ld (s : Handlers.Mem_audit.site) =
           s.Handlers.Mem_audit.s_space = Sass.Opcode.Global
           && not s.Handlers.Mem_audit.s_store
         in
         let global_st (s : Handlers.Mem_audit.site) =
           s.Handlers.Mem_audit.s_space = Sass.Opcode.Global
           && s.Handlers.Mem_audit.s_store
         in
         let reconcile what audit_total machine =
           if audit_total <> machine then
             fail "%s/%s: audit %s = %d but machine counted %d" suite name
               what audit_total machine
         in
         reconcile "gld lines"
           (sum global_ld (fun s -> s.Handlers.Mem_audit.s_total))
           sa.Gpu.Stats.gld_transactions;
         reconcile "gst lines"
           (sum global_st (fun s -> s.Handlers.Mem_audit.s_total))
           sa.Gpu.Stats.gst_transactions;
         reconcile "shared accesses"
           (sum shared (fun s -> s.Handlers.Mem_audit.s_execs))
           sa.Gpu.Stats.shared_accesses;
         reconcile "shared conflicts"
           (sum shared (fun s ->
                s.Handlers.Mem_audit.s_total - s.Handlers.Mem_audit.s_execs))
           sa.Gpu.Stats.shared_conflicts;
         (* Static predictions vs the per-site measurements. *)
         Printf.printf
           "%s/%s (%s)\n  %-24s %6s %-6s %2s | %9s %9s %6s  verdict\n" suite
           name variant "kernel" "pc" "space" "rw" "predicted" "measured"
           "execs";
         let n_sites = ref 0 and n_exact = ref 0 and n_matched = ref 0 in
         let site_objs = ref [] in
         List.iter
           (fun (kname, (k : Sass.Program.kernel)) ->
              match Hashtbl.find_opt captures kname with
              | None -> fail "%s/%s: kernel %s never launched" suite name kname
              | Some mc when mc.mc_multi ->
                Printf.printf
                  "  %-24s launched with varying geometry; skipped\n" kname
              | Some mc ->
                let ctx =
                  Analysis.Absdom.concrete_ctx ~param:mc.mc_param mc.mc_geom
                in
                let instrs = k.Sass.Program.instrs in
                let cfgk = Sass.Cfg.build instrs in
                let states = Analysis.Absdom.analyze ctx instrs cfgk in
                let preds =
                  Analysis.Mempredict.predict ~geom:mc.mc_geom
                    ~line_bytes:cfg.Gpu.Config.line_bytes instrs cfgk states
                in
                List.iter
                  (fun (p : Analysis.Mempredict.prediction) ->
                     incr n_sites;
                     if p.Analysis.Mempredict.p_exact then incr n_exact;
                     let measured =
                       List.find_opt
                         (fun (s : Handlers.Mem_audit.site) ->
                            s.Handlers.Mem_audit.s_kernel = kname
                            && s.Handlers.Mem_audit.s_pc
                               = p.Analysis.Mempredict.p_pc)
                         sites
                     in
                     let verdict =
                       match measured with
                       | None -> "unexecuted"
                       | Some s ->
                         if
                           p.Analysis.Mempredict.p_exact
                           && not s.Handlers.Mem_audit.s_partial
                         then
                           if
                             p.Analysis.Mempredict.p_min
                             = p.Analysis.Mempredict.p_max
                             && s.Handlers.Mem_audit.s_min
                                = p.Analysis.Mempredict.p_min
                             && s.Handlers.Mem_audit.s_max
                                = p.Analysis.Mempredict.p_max
                           then begin
                             incr n_matched;
                             "exact"
                           end
                           else begin
                             fail
                               "%s/%s %s pc %d: predicted %d..%d, measured \
                                %d..%d"
                               suite name kname p.Analysis.Mempredict.p_pc
                               p.Analysis.Mempredict.p_min
                               p.Analysis.Mempredict.p_max
                               s.Handlers.Mem_audit.s_min
                               s.Handlers.Mem_audit.s_max;
                             "MISMATCH"
                           end
                         else "~ " ^ p.Analysis.Mempredict.p_note
                     in
                     if
                       all_exact && not p.Analysis.Mempredict.p_exact
                     then
                       fail "%s/%s %s pc %d: expected exact site, got: %s"
                         suite name kname p.Analysis.Mempredict.p_pc
                         p.Analysis.Mempredict.p_note;
                     let m_min, m_max, m_execs =
                       match measured with
                       | None -> (0, 0, 0)
                       | Some s ->
                         (s.Handlers.Mem_audit.s_min,
                          s.Handlers.Mem_audit.s_max,
                          s.Handlers.Mem_audit.s_execs)
                     in
                     Printf.printf
                       "  %-24s %6d %-6s %2s | %4d..%-4d %4d..%-4d %6d  %s\n"
                       kname p.Analysis.Mempredict.p_pc
                       (Format.asprintf "%a" Sass.Opcode.pp_space
                          p.Analysis.Mempredict.p_space)
                       (if p.Analysis.Mempredict.p_store then "ST" else "LD")
                       p.Analysis.Mempredict.p_min
                       p.Analysis.Mempredict.p_max m_min m_max m_execs
                       verdict;
                     site_objs :=
                       Trace.Json.Obj
                         [ ("kernel", Trace.Json.Str kname);
                           ("pc",
                            Trace.Json.Int p.Analysis.Mempredict.p_pc);
                           ("space",
                            Trace.Json.Str
                              (Format.asprintf "%a" Sass.Opcode.pp_space
                                 p.Analysis.Mempredict.p_space));
                           ("store",
                            Trace.Json.Bool p.Analysis.Mempredict.p_store);
                           ("predicted_min",
                            Trace.Json.Int p.Analysis.Mempredict.p_min);
                           ("predicted_max",
                            Trace.Json.Int p.Analysis.Mempredict.p_max);
                           ("measured_min", Trace.Json.Int m_min);
                           ("measured_max", Trace.Json.Int m_max);
                           ("execs", Trace.Json.Int m_execs);
                           ("exact",
                            Trace.Json.Bool p.Analysis.Mempredict.p_exact);
                           ("note",
                            Trace.Json.Str p.Analysis.Mempredict.p_note) ]
                       :: !site_objs)
                  preds)
           (List.rev !kernels);
         if !n_matched = 0 then
           fail "%s/%s: no exact prediction was validated (vacuous run)"
             suite name;
         Printf.printf
           "  %d site(s): %d exact, %d validated against the machine\n%!"
           !n_sites !n_exact !n_matched;
         ( Printf.sprintf "%s/%s" suite name,
           Trace.Json.Obj
             [ ("workload", Trace.Json.Str (suite ^ "/" ^ name));
               ("variant", Trace.Json.Str variant);
               ("sites", Trace.Json.Int !n_sites);
               ("exact", Trace.Json.Int !n_exact);
               ("validated", Trace.Json.Int !n_matched);
               ("gld_transactions",
                Trace.Json.Int sa.Gpu.Stats.gld_transactions);
               ("gst_transactions",
                Trace.Json.Int sa.Gpu.Stats.gst_transactions);
               ("shared_accesses",
                Trace.Json.Int sa.Gpu.Stats.shared_accesses);
               ("shared_conflicts",
                Trace.Json.Int sa.Gpu.Stats.shared_conflicts);
               ("per_site", Trace.Json.List (List.rev !site_objs)) ],
           (!n_sites, !n_exact, !n_matched) ))
      analysis_mem_rows
  in
  let counters =
    List.concat_map
      (fun (key, _, (n, e, m)) ->
         [ (key ^ "/sites", n); (key ^ "/exact", e); (key ^ "/validated", m) ])
      wl_objs
  in
  write_experiment_manifest ~experiment:"analysis-mem" ~rc ~counters
    ~histograms:[];
  let json =
    Trace.Json.Obj
      [ ("schema", Trace.Json.Str "sassi-bench-analysis-mem/1");
        ("failures", Trace.Json.Int !failures);
        ("workloads",
         Trace.Json.List (List.map (fun (_, o, _) -> o) wl_objs)) ]
  in
  Trace.Json.write_file "BENCH_analysis_mem.json" json;
  Printf.printf "\nwrote BENCH_analysis_mem.json\n%!";
  if !failures > 0 then begin
    Printf.eprintf
      "analysis-mem: %d prediction/reconciliation failure(s)\n" !failures;
    exit 1
  end

(* --- Serve: daemon round-trip + compile-cache cold/warm ------------------------ *)

(* The serving story, measured: (a) the content-addressed compile
   cache, cold start (full typecheck/lower/optimize/regalloc/emit)
   against a content hit (digest + verify only), per-compile latency
   percentiles over many reps with the emitted SASS compared
   bit-for-bit; (b) one in-process daemon serving the same campaign
   twice over real sockets, where the second job rides the warm cache
   and both served manifests must be byte-identical. *)

let serve_kernels =
  let open Kernel.Dsl in
  [ kernel "bench_vadd" ~params:[ ptr "a"; ptr "b"; ptr "out"; int "n" ]
      (fun p ->
         [ let_ "gid" (global_tid_x ());
           exit_if (v "gid" >=! p 3);
           let_ "off" (v "gid" <<! int_ 2);
           st_global (p 2 +! v "off") (ldg (p 0 +! v "off") +! ldg (p 1 +! v "off")) ]);
    kernel "bench_scale" ~params:[ ptr "a"; ptr "out"; int "n" ]
      (fun p ->
         [ let_ "gid" (global_tid_x ());
           exit_if (v "gid" >=! p 2);
           let_ "off" (v "gid" <<! int_ 2);
           let_ "x" (ldg (p 0 +! v "off"));
           st_global (p 1 +! v "off")
             ((v "x" *! int_ 3) +! (v "x" <<! int_ 1) +! int_ 7) ]);
    kernel "bench_mask" ~params:[ ptr "out"; int "n" ]
      (fun p ->
         [ let_ "gid" (global_tid_x ());
           exit_if (v "gid" >=! p 1);
           st_global (p 0 +! (v "gid" <<! int_ 2))
             ((v "gid" &! int_ 255) ^! (v "gid" >>! int_ 3)) ]) ]

let http_request ?(body = "") ~meth ~path port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  Printf.fprintf oc
    "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    meth path (String.length body) body;
  flush oc;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  (try
     let rec go () =
       let n = input ic chunk 0 4096 in
       if n > 0 then begin Buffer.add_subbytes buf chunk 0 n; go () end
     in
     go ()
   with End_of_file -> ());
  (try close_in ic with _ -> ());
  let raw = Buffer.contents buf in
  let i =
    let rec find j =
      if j + 3 >= String.length raw then String.length raw
      else if String.sub raw j 4 = "\r\n\r\n" then j + 4
      else find (j + 1)
    in
    find 0
  in
  String.sub raw i (String.length raw - i)

let serve rc =
  section
    (Printf.sprintf
       "serve: compile-cache cold/warm + daemon round-trip (--jobs %d)" rc.jobs);
  (* Leg A: per-compile latency, cold vs content-hit. *)
  let reps = if rc.quick then 15 else 40 in
  let cold_us = Telemetry.Hist.create () in
  let warm_us = Telemetry.Hist.create () in
  let identical = ref true in
  Kernel.Cache.enable ();
  List.iter
    (fun k ->
       for _ = 1 to reps do
         Kernel.Cache.clear ();
         let cold, t_cold = timed (fun () -> Kernel.Compile.compile k) in
         let warm, t_warm = timed (fun () -> Kernel.Compile.compile k) in
         Telemetry.Hist.observe cold_us (int_of_float (t_cold *. 1e6));
         Telemetry.Hist.observe warm_us (int_of_float (t_warm *. 1e6));
         if cold.Sass.Program.instrs <> warm.Sass.Program.instrs then
           identical := false
       done)
    serve_kernels;
  let cs = Telemetry.Hist.summarize cold_us in
  let ws = Telemetry.Hist.summarize warm_us in
  let cache_stats = Kernel.Cache.stats () in
  Kernel.Cache.disable ();
  Printf.printf
    "compile   | cold p50 %8.1fus  p99 %8.1fus | hit p50 %8.1fus  p99 %8.1fus | x%.1f at p50  %s\n%!"
    cs.Telemetry.Hist.s_p50 cs.Telemetry.Hist.s_p99 ws.Telemetry.Hist.s_p50
    ws.Telemetry.Hist.s_p99
    (cs.Telemetry.Hist.s_p50 /. Float.max 1.0 ws.Telemetry.Hist.s_p50)
    (if !identical then "bit-identical" else "MISMATCH");
  (* Leg B: the same campaign served twice by one daemon; job 2 rides
     the cache job 1 just filled. *)
  let campaign =
    Par.Campaign.make ~name:"bench-serve" ~seed:rc.seed
      [ Par.Campaign.job ~variant:"small" ~kind:Par.Campaign.Run "parboil/spmv";
        Par.Campaign.job ~variant:"small" ~kind:Par.Campaign.Inject
          ~injections:2 "parboil/spmv" ]
  in
  let d =
    Serve.Daemon.create
      { Serve.Daemon.default_config with
        Serve.Daemon.cfg_port = 0;
        cfg_pool_jobs = rc.jobs;
        cfg_access_log = None }
  in
  let th = Serve.Daemon.start d in
  let port = Serve.Daemon.port d in
  let body = Trace.Json.to_string (Par.Campaign.to_json campaign) in
  let wall id =
    let rec poll n =
      if n = 0 then failwith ("bench serve: " ^ id ^ " never finished");
      let s = http_request ~meth:"GET" ~path:("/jobs/" ^ id) port in
      match Trace.Json.of_string s with
      | Ok doc when Trace.Json.member "state" doc = Some (Trace.Json.Str "done")
        ->
        (match Trace.Json.member "wall_time_s" doc with
         | Some (Trace.Json.Float w) -> w
         | _ -> failwith "bench serve: done job without wall time")
      | Ok doc
        when (match Trace.Json.member "state" doc with
              | Some (Trace.Json.Str "failed") -> true
              | _ -> false) ->
        failwith ("bench serve: job failed: " ^ s)
      | _ ->
        Thread.delay 0.05;
        poll (n - 1)
    in
    poll 2400
  in
  ignore (http_request ~meth:"POST" ~path:"/jobs" ~body port);
  let cold_wall = wall "job-1" in
  ignore (http_request ~meth:"POST" ~path:"/jobs" ~body port);
  let warm_wall = wall "job-2" in
  let m1 = http_request ~meth:"GET" ~path:"/jobs/job-1/manifest" port in
  let m2 = http_request ~meth:"GET" ~path:"/jobs/job-2/manifest" port in
  let served_identical = m1 = m2 && String.length m1 > 0 in
  let metrics = http_request ~meth:"GET" ~path:"/metrics" port in
  let daemon_hits =
    String.split_on_char '\n' metrics
    |> List.find_map (fun l ->
        let p = "sassi_cache_hits_total " in
        if String.length l > String.length p
           && String.sub l 0 (String.length p) = p
        then
          int_of_string_opt
            (String.sub l (String.length p)
               (String.length l - String.length p))
        else None)
    |> Option.value ~default:0
  in
  Serve.Daemon.shutdown d;
  Thread.join th;
  Printf.printf
    "served    | cold job %6.2fs  warm job %6.2fs | %d cache hit(s) | manifests %s\n%!"
    cold_wall warm_wall daemon_hits
    (if served_identical then "byte-identical" else "MISMATCH");
  write_experiment_manifest ~experiment:"serve" ~rc
    ~counters:
      [ ("kernels", List.length serve_kernels); ("reps", reps);
        ("compiles", Telemetry.Hist.count cold_us);
        ("cache_hits", cache_stats.Kernel.Cache.c_hits);
        ("cache_misses", cache_stats.Kernel.Cache.c_misses) ]
    ~histograms:[ ("compile_cold_us", cs); ("compile_hit_us", ws) ];
  let q (s : Telemetry.Hist.summary) =
    Trace.Json.Obj
      [ ("p50", Trace.Json.Float s.Telemetry.Hist.s_p50);
        ("p90", Trace.Json.Float s.Telemetry.Hist.s_p90);
        ("p99", Trace.Json.Float s.Telemetry.Hist.s_p99);
        ("mean", Trace.Json.Float s.Telemetry.Hist.s_mean) ]
  in
  let json =
    Trace.Json.Obj
      [ ("schema", Trace.Json.Str "sassi-bench-serve/1");
        ("jobs", Trace.Json.Int rc.jobs);
        ("kernels", Trace.Json.Int (List.length serve_kernels));
        ("reps", Trace.Json.Int reps);
        ("compile_cold_us", q cs);
        ("compile_hit_us", q ws);
        ("hit_speedup_p50",
         Trace.Json.Float
           (cs.Telemetry.Hist.s_p50 /. Float.max 1.0 ws.Telemetry.Hist.s_p50));
        ("compile_bit_identical", Trace.Json.Bool !identical);
        ("served_cold_wall_s", Trace.Json.Float cold_wall);
        ("served_warm_wall_s", Trace.Json.Float warm_wall);
        ("served_cache_hits", Trace.Json.Int daemon_hits);
        ("served_manifests_identical", Trace.Json.Bool served_identical) ]
  in
  Trace.Json.write_file "BENCH_serve.json" json;
  Printf.printf "\nwrote BENCH_serve.json\n%!";
  if not !identical then begin
    Printf.eprintf "serve: cache hit returned different SASS\n";
    exit 1
  end;
  if not served_identical then begin
    Printf.eprintf "serve: served manifests diverge between jobs\n";
    exit 1
  end;
  if ws.Telemetry.Hist.s_p50 >= cs.Telemetry.Hist.s_p50 then begin
    Printf.eprintf "serve: cache hit is not faster than cold compile\n";
    exit 1
  end

(* --- Driver -------------------------------------------------------------------- *)

let all rc =
  table1 rc;
  fig5 rc;
  fig7 rc;
  fig8 rc;
  table2 rc;
  fig10 rc;
  table3 rc;
  cachesim rc;
  scaling rc;
  tracing rc;
  profiling rc;
  telemetry rc;
  analysis rc;
  analysis_mem rc;
  bechamel rc

let usage =
  "table1|fig5|fig7|fig8|table2|fig10|table3|cachesim|scaling|tracing|\
   profiling|telemetry|analysis|analysis-mem|parallel|host-overhead|serve|\
   bechamel|all"

let () =
  let quick = ref false and jobs = ref 1 and seed = ref 2025 in
  let device_domains = ref 4 in
  let bad fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 && n <= Par.Pool.max_domains ->
          jobs := n;
          parse acc rest
        | _ -> bad "bench: --jobs expects an integer in 1..%d"
                 Par.Pool.max_domains)
    | [ "--jobs" ] -> bad "bench: --jobs expects an argument"
    | "--seed" :: s :: rest -> (
        match int_of_string_opt s with
        | Some s ->
          seed := s;
          parse acc rest
        | None -> bad "bench: --seed expects an integer")
    | [ "--seed" ] -> bad "bench: --seed expects an argument"
    | "--device-domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
          device_domains := n;
          parse acc rest
        | _ -> bad "bench: --device-domains expects a positive integer")
    | [ "--device-domains" ] -> bad "bench: --device-domains expects an argument"
    | "--" :: rest -> parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let cmds = parse [] (List.tl (Array.to_list Sys.argv)) in
  let pool = Par.Pool.create ~domains:!jobs () in
  let rc =
    { quick = !quick; jobs = !jobs; seed = !seed;
      device_domains = !device_domains; pool }
  in
  let t0 = Unix.gettimeofday () in
  (match cmds with
   | [] -> all rc
   | cmds ->
     List.iter
       (function
         | "table1" -> table1 rc
         | "fig5" -> fig5 rc
         | "fig7" -> fig7 rc
         | "fig8" -> fig8 rc
         | "table2" -> table2 rc
         | "fig10" -> fig10 rc
         | "table3" -> table3 rc
         | "cachesim" -> cachesim rc
         | "scaling" -> scaling rc
         | "tracing" -> tracing rc
         | "profiling" -> profiling rc
         | "telemetry" -> telemetry rc
         | "analysis" -> analysis rc
         | "analysis-mem" -> analysis_mem rc
         | "parallel" -> parallel rc
         | "host-overhead" -> host_overhead rc
         | "serve" -> serve rc
         | "bechamel" -> bechamel rc
         | "all" -> all rc
         | other ->
           Printf.eprintf "unknown experiment %s (%s)\n" other usage;
           exit 1)
       cmds);
  Par.Pool.shutdown pool;
  Printf.printf "\n[bench completed in %.1f s]\n" (Unix.gettimeofday () -. t0)
