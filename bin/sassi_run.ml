(* sassi_run: command-line driver for the simulated-GPU SASSI stack.

   Subcommands:
     list                     - list registered workloads and variants
     run WORKLOAD             - run a workload, optionally instrumented
     disasm WORKLOAD          - print the SASS of a workload's kernels
                                (before and, optionally, after injection)
     lint WORKLOAD|all        - static analysis over compiled kernels
     analyze WORKLOAD         - per-site instrumentation cost model
     campaign WORKLOAD|FILE   - fault-injection campaign, or a whole
                                job matrix on a --jobs N domain pool
     compare A.json B.json    - diff two run manifests
     trace-summary FILE       - validate + summarize a host-trace file *)

open Cmdliner

let instruments =
  [ "none"; "opcode"; "branch"; "memdiv"; "value"; "blocks"; "trace"; "stub" ]

(* "kernel,mem,warp" -> activity kinds; [Error] names the bad kind. *)
let parse_trace_filter = function
  | None -> Ok Cupti.Activity.all_kinds
  | Some spec ->
    let parts =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    List.fold_left
      (fun acc p ->
         match (acc, Cupti.Activity.kind_of_string p) with
         | Error e, _ -> Error e
         | Ok _, None -> Error p
         | Ok ks, Some k -> Ok (k :: ks))
      (Ok []) parts
    |> Result.map List.rev

let dump_trace device path =
  let records = Cupti.Activity.records device in
  let dropped = Cupti.Activity.dropped device in
  (try
     if Filename.check_suffix path ".ndjson" then
       Trace.Ndjson.write_file path records
     else Trace.Chrome.write_file path records
   with Sys_error m ->
     Format.eprintf "cannot write trace: %s@." m;
     exit 1);
  Format.printf "trace: %d activity records (%d dropped) -> %s@."
    (List.length records) dropped path;
  let tl = Trace.Timeline.build records in
  Format.printf "%a" Trace.Timeline.pp_summary tl

(* Numeric flags are validated up front, before any simulation or
   file I/O, so a bad value always dies with the same one-line error
   regardless of which features are enabled. *)
let check_positive name v =
  if v <= 0 then begin
    Format.eprintf "%s must be positive (got %d)@." name v;
    exit 1
  end

(* Drain the ambient tracer and write the Chrome trace_event file.
   Shared tail of `run --host-trace` and `campaign --host-trace`;
   call only after every traced task has been joined. *)
let dump_host_trace path =
  let spans = Obs.Tracer.drain () in
  (try Obs.Export.write_file path spans
   with Sys_error m ->
     Format.eprintf "cannot write host trace: %s@." m;
     exit 1);
  Format.printf "host trace: %d span(s) -> %s@." (List.length spans) path;
  Format.printf "%a" Obs.Export.pp_summary spans

(* "ipc,l1_hit_rate" -> metrics from the registry; exits on unknown
   names before any simulation runs. *)
let parse_metrics = function
  | None -> None
  | Some spec ->
    let names =
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    (match Prof.Metrics.resolve names with
     | Ok ms -> Some ms
     | Error e ->
       Format.eprintf "%s@." e;
       exit 1)

let run_workload name variant instrument show_stats trace_out trace_filter
    trace_capacity profile pc_sampling_period metrics_spec profile_out
    stats_json telemetry telemetry_interval telemetry_out manifest_out seed
    l1_bytes host_trace device_domains =
  check_positive "--trace-capacity" trace_capacity;
  check_positive "--pc-sampling-period" pc_sampling_period;
  check_positive "--telemetry-interval" telemetry_interval;
  check_positive "--device-domains" device_domains;
  Gpu.Device.set_default_domains device_domains;
  (match l1_bytes with
   | Some b -> check_positive "--l1-bytes" b
   | None -> ());
  match Workloads.Registry.find_opt name with
  | None ->
    Format.eprintf "unknown workload %s; try `sassi_run list`@." name;
    1
  | Some w ->
    let variant =
      match variant with
      | Some v -> v
      | None -> w.Workloads.Workload.default_variant
    in
    let metric_list = parse_metrics metrics_spec in
    let profiling = profile || profile_out <> None || metric_list <> None in
    let cfg =
      match l1_bytes with
      | None -> Gpu.Config.default
      | Some b -> { Gpu.Config.default with Gpu.Config.l1_bytes = b }
    in
    let device = Gpu.Device.create ~cfg () in
    let sampling =
      if profiling then
        Some (Cupti.Pc_sampling.enable ~period:pc_sampling_period device)
      else None
    in
    let telemetry_on =
      telemetry || telemetry_out <> None || manifest_out <> None
    in
    let tele =
      if telemetry_on then
        Some (Cupti.Telemetry.enable ~interval:telemetry_interval device)
      else None
    in
    (match (trace_out, parse_trace_filter trace_filter) with
     | _, Error bad ->
       Format.eprintf
         "unknown trace kind %s (expected kernel, block, warp, mem, cache, \
          handler, fault)@."
         bad;
       exit 1
     | None, Ok _ -> ()
     | Some path, Ok kinds ->
       (* Fail on an unwritable output before simulating, not after. *)
       (try close_out (open_out path)
        with Sys_error m ->
          Format.eprintf "cannot write trace: %s@." m;
          exit 1);
       Cupti.Activity.enable ~capacity:trace_capacity device kinds);
    if host_trace <> None then Obs.Tracer.enable ();
    let last_result = ref None in
    let finish (r : Workloads.Workload.result) =
      last_result := Some r;
      Format.printf "%s/%s (%s): %s@." w.Workloads.Workload.suite
        w.Workloads.Workload.name variant r.Workloads.Workload.stdout;
      Format.printf "output digest: %s@." r.Workloads.Workload.output_digest;
      if show_stats then
        Format.printf "stats: %a@.launches: %d@." Gpu.Stats.pp
          r.Workloads.Workload.stats r.Workloads.Workload.launches
    in
    let (), wall_time_s =
      Obs.Clock.with_wall_time @@ fun () ->
      Obs.Tracer.with_span ~cat:"run"
        ~attrs:
          [ ("workload", Obs.Span.Str name);
            ("variant", Obs.Span.Str variant);
            ("instrument", Obs.Span.Str instrument) ]
        ("run:" ^ name)
      @@ fun () ->
      (match instrument with
     | "none" -> finish (w.Workloads.Workload.run device ~variant)
     | "stub" ->
       let r =
         Sassi.Runtime.with_instrumentation device
           [ (Sassi.Select.before [ Sassi.Select.All ] [],
              Sassi.Handler.noop) ]
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r
     | "opcode" ->
       let h = Handlers.Opcode_hist.create device in
       let r =
         Sassi.Runtime.with_instrumentation device
           (Handlers.Opcode_hist.pairs h)
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r;
       let c = Handlers.Opcode_hist.read h in
       Format.printf
         "opcode histogram: mem=%d ext=%d ctrl=%d sync=%d numeric=%d tex=%d \
          total=%d@."
         c.Handlers.Opcode_hist.memory c.Handlers.Opcode_hist.extended_memory
         c.Handlers.Opcode_hist.control c.Handlers.Opcode_hist.sync
         c.Handlers.Opcode_hist.numeric c.Handlers.Opcode_hist.texture
         c.Handlers.Opcode_hist.total
     | "branch" ->
       let h = Handlers.Branch_stats.create device in
       let r =
         Sassi.Runtime.with_instrumentation device
           (Handlers.Branch_stats.pairs h)
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r;
       let s = Handlers.Branch_stats.summary h in
       Format.printf
         "branches: static %d (%d divergent), dynamic %d (%d divergent)@."
         s.Handlers.Branch_stats.static_branches
         s.Handlers.Branch_stats.static_divergent
         s.Handlers.Branch_stats.dynamic_branches
         s.Handlers.Branch_stats.dynamic_divergent
     | "memdiv" ->
       let h = Handlers.Mem_divergence.create device in
       let r =
         Sassi.Runtime.with_instrumentation device
           (Handlers.Mem_divergence.pairs h)
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r;
       let pmf = Handlers.Mem_divergence.pmf h in
       Format.printf "unique-lines PMF:";
       Array.iteri
         (fun u f -> if f > 0.005 then Format.printf " %d:%.1f%%" (u + 1) (100. *. f))
         pmf;
       Format.printf "@."
     | "value" ->
       let h = Handlers.Value_profile.create device in
       let r =
         Sassi.Runtime.with_instrumentation device
           (Handlers.Value_profile.pairs h)
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r;
       let s = Handlers.Value_profile.summary h in
       Format.printf
         "value profile: dyn const bits %.0f%%, dyn scalar %.0f%%, static \
          const bits %.0f%%, static scalar %.0f%%@."
         s.Handlers.Value_profile.dynamic_const_bits_pct
         s.Handlers.Value_profile.dynamic_scalar_pct
         s.Handlers.Value_profile.static_const_bits_pct
         s.Handlers.Value_profile.static_scalar_pct
     | "blocks" ->
       let h = Handlers.Block_profile.create device in
       let r =
         Sassi.Runtime.with_instrumentation device
           (Handlers.Block_profile.pairs h)
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r;
       Format.printf "kernel entries %d, exits %d; hottest blocks:@."
         (Handlers.Block_profile.entries h)
         (Handlers.Block_profile.exits h);
       List.iteri
         (fun i b ->
            if i < 8 then
              Format.printf "  0x%08x: %d warp execs, %d thread execs@."
                b.Handlers.Block_profile.ins_addr
                b.Handlers.Block_profile.warp_execs
                b.Handlers.Block_profile.thread_execs)
         (Handlers.Block_profile.blocks h)
     | "trace" ->
       let tr = Handlers.Mem_trace.create () in
       let r =
         Sassi.Runtime.with_instrumentation device
           (Handlers.Mem_trace.pairs tr)
           (fun _ -> w.Workloads.Workload.run device ~variant)
       in
       finish r;
       Format.printf "traced %d global warp accesses; cache sweep:@."
         (Handlers.Mem_trace.length tr);
       List.iter
         (fun res -> Format.printf "  %a@." Handlers.Cache_explorer.pp_result res)
         (Handlers.Cache_explorer.sweep (Handlers.Mem_trace.trace tr)
            Handlers.Cache_explorer.default_sweep)
     | other ->
       Format.eprintf "unknown instrumentation %s@." other)
    in
    (match trace_out with
     | Some path -> dump_trace device path
     | None -> ());
    (match (sampling, !last_result) with
     | Some s, Some r ->
       Cupti.Pc_sampling.disable device;
       let report =
         Cupti.Pc_sampling.report ?metrics:metric_list
           ~stats:r.Workloads.Workload.stats device s
       in
       (match profile_out with
        | None -> print_string (Prof.Report.to_text report)
        | Some path ->
          (try Prof.Report.write_file path report
           with Sys_error m ->
             Format.eprintf "cannot write profile: %s@." m;
             exit 1);
          Format.printf "profile: %d warp samples (%d sampler hits) -> %s@."
            (Prof.Pc_sampling.total_samples s)
            (Prof.Pc_sampling.hits s)
            path)
     | _ -> ());
    (match tele with
     | None -> ()
     | Some t ->
       (match telemetry_out with
        | Some path ->
          (try Telemetry.Export.write_file path (Cupti.Telemetry.registry t)
           with Sys_error m ->
             Format.eprintf "cannot write telemetry: %s@." m;
             exit 1);
          Format.printf "telemetry: %d instruments -> %s@."
            (List.length
               (Telemetry.Registry.specs (Cupti.Telemetry.registry t)))
            path
        | None -> ());
       if telemetry then begin
         Format.printf "telemetry histograms:@.";
         List.iter
           (fun (hname, s) ->
              if s.Telemetry.Hist.s_count > 0 then
                Format.printf
                  "  %-36s n=%-9d p50=%-9.1f p99=%-9.1f max=%d@." hname
                  s.Telemetry.Hist.s_count s.Telemetry.Hist.s_p50
                  s.Telemetry.Hist.s_p99 s.Telemetry.Hist.s_max)
           (Cupti.Telemetry.histograms t);
         Format.printf "telemetry series: %d rows (%d dropped)@."
           (Telemetry.Series.length (Cupti.Telemetry.series t))
           (Telemetry.Series.dropped (Cupti.Telemetry.series t))
       end);
    (match (manifest_out, !last_result) with
     | Some path, Some r ->
       let env =
         { Prof.Metrics.stats = r.Workloads.Workload.stats; cfg; sampling }
       in
       let metrics =
         List.concat_map
           (fun m ->
              match Prof.Metrics.compute env m with
              | Some (Prof.Metrics.Scalar v) -> [ (Prof.Metrics.name m, v) ]
              | Some (Prof.Metrics.Breakdown kvs) ->
                List.map
                  (fun (k, v) -> (Prof.Metrics.name m ^ "/" ^ k, v))
                  kvs
              | None -> [])
           Prof.Metrics.registry
       in
       let counters =
         (("launches", r.Workloads.Workload.launches)
          :: Gpu.Stats.to_assoc r.Workloads.Workload.stats)
         @ (match tele with
            | Some t -> Cupti.Telemetry.counters t
            | None -> [])
       in
       let m =
         { Telemetry.Manifest.m_workload = name;
           m_variant = variant;
           m_instrument = instrument;
           m_seed = seed;
           m_argv = Array.to_list Sys.argv;
           m_wall_time_s = wall_time_s;
           m_build = Telemetry.Build_info.collect ();
           m_config = Gpu.Config.to_assoc cfg;
           m_counters = counters;
           m_metrics = metrics;
           m_histograms =
             (match tele with
              | Some t -> Cupti.Telemetry.histograms t
              | None -> []) }
       in
       (try Telemetry.Manifest.write path m
        with Sys_error msg ->
          Format.eprintf "cannot write manifest: %s@." msg;
          exit 1);
       Format.printf "manifest -> %s@." path
     | _ -> ());
    (match !last_result with
     | Some r when stats_json ->
       let fields =
         ("launches", Trace.Json.Int r.Workloads.Workload.launches)
         :: List.map
              (fun (n, v) -> (n, Trace.Json.Int v))
              (Gpu.Stats.to_assoc r.Workloads.Workload.stats)
       in
       print_endline (Trace.Json.to_string (Trace.Json.Obj fields))
     | _ -> ());
    (match host_trace with
     | Some path -> dump_host_trace path
     | None -> ());
    0

(* Diff two run manifests; exit 0 when clean, 1 on regressions past
   threshold, 2 when a manifest cannot be read. *)
let compare_manifests path_a path_b threshold all =
  if threshold < 0.0 then begin
    Format.eprintf "--threshold must be non-negative (got %g)@." threshold;
    exit 1
  end;
  let read path =
    match Telemetry.Manifest.read path with
    | Ok m -> m
    | Error e ->
      Format.eprintf "%s@." e;
      exit 2
    | exception Sys_error m ->
      Format.eprintf "%s@." m;
      exit 2
  in
  let a = read path_a in
  let b = read path_b in
  let r = Telemetry.Compare.diff ~threshold a b in
  print_string (Telemetry.Compare.render ~all r);
  if Telemetry.Compare.regressions r <> [] then 1 else 0

let campaign target variant injections seed jobs manifest_out host_trace
    host_metrics progress device_domains =
  check_positive "--injections" injections;
  check_positive "--device-domains" device_domains;
  (* Campaign devices are created inside pool tasks on worker domains;
     the process-wide default is how the setting reaches them. *)
  Gpu.Device.set_default_domains device_domains;
  if jobs < 1 || jobs > Par.Pool.max_domains then begin
    Format.eprintf "--jobs must be in 1..%d (got %d)@." Par.Pool.max_domains
      jobs;
    exit 1
  end;
  (* The positional argument is either a campaign job-manifest file
     (sassi-campaign/1 JSON, see Par.Campaign) or a registry workload
     name; a lone workload becomes a one-job Inject campaign with the
     CLI's --variant/--injections/--seed, preserving the old CLI. *)
  let camp =
    if Sys.file_exists target && not (Sys.is_directory target) then
      match Par.Campaign.read target with
      | Ok c -> c
      | Error e ->
        Format.eprintf "%s@." e;
        exit 2
    else if Workloads.Registry.find_opt target <> None then
      Par.Campaign.make ~name:target ~seed
        [ Par.Campaign.job ?variant ~kind:Par.Campaign.Inject ~injections
            target ]
    else begin
      Format.eprintf
        "unknown workload or campaign file %s; try `sassi_run list`@." target;
      exit 1
    end
  in
  let njobs = List.length camp.Par.Campaign.c_jobs in
  Format.printf "campaign %s: %d job(s), seed %d, jobs %d@."
    camp.Par.Campaign.c_name njobs camp.Par.Campaign.c_seed jobs;
  if host_trace <> None then Obs.Tracer.enable ();
  (* Execution lives in Serve.Runner — the exact code the daemon's job
     API runs — so a served job's manifest is byte-identical to this
     subcommand's by construction. *)
  let code =
    Par.Pool.with_pool ~domains:jobs @@ fun pool ->
    let meter = Obs.Progress.create ~enabled:progress ~total:njobs () in
    let on_result i r =
      let s = Par.Pool.stats pool in
      (* Counter samples ride the trace timeline (one point per joined
         job), never the manifest: queue depth and steal counts are
         scheduling-dependent. *)
      Obs.Tracer.counter ~cat:"pool" "pool"
        [ ("queued", float_of_int s.Par.Pool.s_queued);
          ("steals", float_of_int s.Par.Pool.s_steals) ];
      if Obs.Progress.active meter then
        Obs.Progress.step
          ~tail:(Printf.sprintf "%d steal(s)" s.Par.Pool.s_steals)
          meter
      else begin
        let j = List.nth camp.Par.Campaign.c_jobs i in
        match r with
        | Serve.Runner.R_run res ->
          Format.printf "[%d/%d] run    %-24s (%s): %s@." (i + 1) njobs
            j.Par.Campaign.j_workload
            (Serve.Runner.variant_of camp i)
            res.Workloads.Workload.stdout
        | Serve.Runner.R_inject d ->
          Format.printf "[%d/%d] inject %-24s (%s): %a@." (i + 1) njobs
            j.Par.Campaign.j_workload
            (Serve.Runner.variant_of camp i)
            Workloads.Campaign.pp d.Workloads.Campaign.d_tally
      end
    in
    match Serve.Runner.run ~pool ~on_result camp with
    | Error e ->
      Obs.Progress.finish meter;
      Format.eprintf "%s@." e;
      1
    | Ok outcome ->
      Obs.Progress.finish meter;
      (match host_metrics with
       | None -> ()
       | Some path ->
         let reg = Telemetry.Registry.create () in
         Par.Pool.register_telemetry pool reg;
         (try Telemetry.Export.write_file path reg
          with Sys_error m ->
            Format.eprintf "cannot write pool metrics: %s@." m;
            exit 1);
         Format.printf "pool metrics -> %s@." path);
      let inject_count =
        Array.fold_left
          (fun n r ->
             match r with Serve.Runner.R_inject _ -> n + 1 | _ -> n)
          0 outcome.Serve.Runner.o_results
      in
      let t = outcome.Serve.Runner.o_tally in
      let open Workloads.Campaign in
      if inject_count > 1 then
        Format.printf "aggregate: masked %d  crash %d  hang %d  symptom %d  \
                       sdc-stdout %d  sdc-output %d  (n=%d)@."
          t.masked t.crashes t.hangs t.failure_symptoms t.sdc_stdout
          t.sdc_output t.total;
      Format.printf "campaign wall time: %.2f s@."
        outcome.Serve.Runner.o_wall_time_s;
      let pool_stats = Par.Pool.stats pool in
      if jobs > 1 then
        Format.printf "pool: %d task(s), %d steal(s) on %d domain(s)@."
          pool_stats.Par.Pool.s_tasks pool_stats.Par.Pool.s_steals
          pool_stats.Par.Pool.s_size;
      (match manifest_out with
       | None -> ()
       | Some path ->
         (* The runner's manifest is canonical (argv, wall time, and
            counters all deterministic), so manifests from any --jobs
            setting — or from the daemon — diff byte-identical. *)
         (try Telemetry.Manifest.write path outcome.Serve.Runner.o_manifest
          with Sys_error msg ->
            Format.eprintf "cannot write manifest: %s@." msg;
            exit 1);
         Format.printf "manifest -> %s@." path);
      0
  in
  (match host_trace with
   | Some path -> dump_host_trace path
   | None -> ());
  code

(* Profiling-as-a-service: boot the HTTP daemon and serve until a
   POST /shutdown (or SIGINT) arrives. The listening line is printed
   first and flushed so scripts that need the resolved ephemeral port
   can scrape it from stdout. *)
let serve port host jobs feed_capacity no_cache cache_bytes device_domains =
  check_positive "--device-domains" device_domains;
  Gpu.Device.set_default_domains device_domains;
  if jobs < 1 || jobs > Par.Pool.max_domains then begin
    Format.eprintf "--jobs must be in 1..%d (got %d)@." Par.Pool.max_domains
      jobs;
    exit 1
  end;
  check_positive "--feed-capacity" feed_capacity;
  check_positive "--cache-bytes" cache_bytes;
  let cfg =
    { Serve.Daemon.cfg_host = host;
      cfg_port = port;
      cfg_pool_jobs = jobs;
      cfg_feed_capacity = feed_capacity;
      cfg_cache = not no_cache;
      cfg_cache_bytes = cache_bytes;
      cfg_access_log = Some stdout }
  in
  match Serve.Daemon.create cfg with
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf "cannot listen on %s:%d: %s@." host port
      (Unix.error_message e);
    exit 1
  | d ->
    Format.printf "sassi serve listening on http://%s:%d@." host
      (Serve.Daemon.port d);
    Serve.Daemon.run d;
    Format.printf "sassi serve: shut down@.";
    0

(* Validate a --host-trace (or any Chrome trace_event) file: parse it
   with the same JSON reader the sinks use, check the trace shape, and
   summarize events per phase and track. Exit 2 on a parse failure,
   1 on a shape problem, 0 when the file is a loadable trace — CI's
   host-trace gate keys off exactly these codes. *)
let trace_summary path =
  match Trace.Json.parse_file path with
  | exception Sys_error m ->
    Format.eprintf "%s@." m;
    2
  | Error e ->
    Format.eprintf "%s: parse error: %s@." path e;
    2
  | Ok doc ->
    (match Trace.Json.member "traceEvents" doc with
     | Some (Trace.Json.List events) ->
       let phs = Hashtbl.create 8 in
       let tracks = Hashtbl.create 8 in
       let bad = ref 0 in
       List.iter
         (fun ev ->
            match (Trace.Json.member "ph" ev, Trace.Json.member "tid" ev) with
            | Some (Trace.Json.Str ph), Some (Trace.Json.Int tid) ->
              Hashtbl.replace phs ph
                (1 + Option.value ~default:0 (Hashtbl.find_opt phs ph));
              if ph <> "M" then Hashtbl.replace tracks tid ()
            | _ -> incr bad)
         events;
       if !bad > 0 then begin
         Format.eprintf "%s: %d event(s) missing ph/tid@." path !bad;
         1
       end
       else begin
         Format.printf "%s: %d event(s), %d track(s)@." path
           (List.length events) (Hashtbl.length tracks);
         Hashtbl.fold (fun ph n acc -> (ph, n) :: acc) phs []
         |> List.sort compare
         |> List.iter (fun (ph, n) ->
             Format.printf "  ph %-2s %6d event(s)@." ph n);
         0
       end
     | _ ->
       Format.eprintf "%s: not a Chrome trace (no traceEvents list)@." path;
       1)

let list_workloads () =
  List.iter
    (fun w ->
       Format.printf "%-10s %-14s variants: %s@." w.Workloads.Workload.suite
         w.Workloads.Workload.name
         (String.concat ", " w.Workloads.Workload.variants))
    Workloads.Registry.all;
  0

(* Disassembles one small demo kernel both clean and instrumented. *)
let disasm name instrumented =
  match Workloads.Registry.find_opt name with
  | None ->
    Format.eprintf "unknown workload %s@." name;
    1
  | Some w ->
    let device = Gpu.Device.create () in
    let shown = ref [] in
    let print_kernel k =
      if not (List.mem k.Sass.Program.name !shown) then begin
        shown := k.Sass.Program.name :: !shown;
        Format.printf "%a@." Sass.Program.pp k
      end
    in
    if instrumented then begin
      let rt = Sassi.Runtime.create () in
      Sassi.Runtime.attach rt device
        [ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
             [ Sassi.Select.Mem_info ],
           Sassi.Handler.noop) ];
      (* Piggyback on the transform cache: wrap the transform to print. *)
      Gpu.Device.set_hcall device (Some (fun _ -> ()));
      let previous = device.Gpu.State.d_transform in
      Gpu.Device.set_transform device
        (Some
           (fun k ->
              let k' =
                match previous with
                | Some t -> t k
                | None -> k
              in
              print_kernel k';
              k'))
    end
    else
      Gpu.Device.set_transform device
        (Some
           (fun k ->
              print_kernel k;
              k));
    let _ =
      w.Workloads.Workload.run device
        ~variant:w.Workloads.Workload.default_variant
    in
    0

(* Concrete launch facts recorded per kernel name on its first
   launch: the grid/block geometry, a reader over the parameter bank,
   and the allocation watermark at launch time — everything needed to
   build a concrete abstract-interpretation context
   ({!Analysis.Absdom.concrete_ctx}). *)
type launch_info = {
  li_geom : Analysis.Affine.geom;
  li_param : int -> int option;
  li_heap : int;
  mutable li_multi : bool;  (* relaunched with a different geometry *)
}

(* Runs a workload once uninstrumented, capturing every kernel the
   device compiles (in launch order), the per-kernel launch facts, and
   the run result — the shared front half of `lint` and `analyze`. *)
let capture_kernels w variant =
  let device = Gpu.Device.create () in
  let kernels = ref [] in
  let launches = Hashtbl.create 8 in
  Gpu.Device.set_transform device
    (Some
       (fun k ->
          if not (List.mem_assoc k.Sass.Program.name !kernels) then
            kernels := (k.Sass.Program.name, k) :: !kernels;
          k));
  ignore
    (Gpu.Device.on_launch device (fun l ->
         let name = l.Gpu.State.l_kernel.Sass.Program.name in
         let geom =
           { Analysis.Affine.g_block_x = l.Gpu.State.l_block_x;
             g_block_y = l.Gpu.State.l_block_y;
             g_grid_x = l.Gpu.State.l_grid_x;
             g_grid_y = l.Gpu.State.l_grid_y }
         in
         match Hashtbl.find_opt launches name with
         | Some li -> if li.li_geom <> geom then li.li_multi <- true
         | None ->
           let params = l.Gpu.State.l_params in
           let param_bytes = l.Gpu.State.l_kernel.Sass.Program.param_bytes in
           let param off =
             if off >= 0 && off + 4 <= param_bytes then
               Some (Gpu.Memory.read params ~width:Sass.Opcode.W32 off)
             else None
           in
           Hashtbl.add launches name
             { li_geom = geom; li_param = param;
               li_heap = Gpu.Device.heap_used device; li_multi = false }));
  let r = w.Workloads.Workload.run device ~variant in
  (List.rev !kernels, launches, r)

(* Context for analyzing one captured kernel: concrete when every
   observed launch used a single geometry. A kernel relaunched with
   differing geometries falls back to the static context — proving a
   claim under the first geometry only would silently miss races and
   OOB that appear under a later launch shape. *)
type ctx_kind =
  | Ctx_concrete of launch_info
  | Ctx_static  (* never launched *)
  | Ctx_multi  (* multiple geometries observed: static fallback *)

let ctx_for launches kname (k : Sass.Program.kernel) =
  match Hashtbl.find_opt launches kname with
  | Some li when not li.li_multi ->
    (Analysis.Absdom.concrete_ctx ~param:li.li_param li.li_geom,
     Ctx_concrete li)
  | Some _ -> (Analysis.Absdom.static_for k.Sass.Program.instrs, Ctx_multi)
  | None -> (Analysis.Absdom.static_for k.Sass.Program.instrs, Ctx_static)

(* Per-kernel race classification counts: (sites, safe, race, unknown). *)
let race_counts sites =
  List.fold_left
    (fun (n, s, r, u) (site : Analysis.Race_check.site) ->
       match site.Analysis.Race_check.s_class with
       | Analysis.Race_check.Proven_safe -> (n + 1, s + 1, r, u)
       | Analysis.Race_check.Proven_race -> (n + 1, s, r + 1, u)
       | Analysis.Race_check.Unknown -> (n + 1, s, r, u + 1))
    (0, 0, 0, 0) sites

let race_baseline_schema = "sassi.race-baseline.v1"

(* Baseline file: {"schema": ..., "kernels": {"suite/wl:kernel":
   {"sites": n, "safe": n, "race": n, "unknown": n}}}. *)
let read_race_baseline path =
  match Trace.Json.parse_file path with
  | exception Sys_error msg -> Error msg
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok j ->
    (match Trace.Json.member "kernels" j with
     | Some (Trace.Json.Obj ks) ->
       let get field o =
         match Trace.Json.member field o with
         | Some (Trace.Json.Int n) -> n
         | _ -> 0
       in
       Ok
         (List.map
            (fun (key, o) ->
               (key, (get "sites" o, get "safe" o, get "race" o,
                      get "unknown" o)))
            ks)
     | _ -> Error (path ^ ": missing `kernels' object"))

let write_race_baseline path counts =
  let kernels =
    List.map
      (fun (key, (n, s, r, u)) ->
         ( key,
           Trace.Json.Obj
             [ ("sites", Trace.Json.Int n); ("safe", Trace.Json.Int s);
               ("race", Trace.Json.Int r); ("unknown", Trace.Json.Int u) ] ))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) counts)
  in
  Trace.Json.write_file path
    (Trace.Json.Obj
       [ ("schema", Trace.Json.Str race_baseline_schema);
         ("kernels", Trace.Json.Obj kernels) ])

(* Waiver file: one kernel per line (either the qualified
   "suite/wl:kernel" key or the bare kernel name), #-comments. *)
let read_waivers path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let acc = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then acc := line :: !acc
       done
     with End_of_file -> ());
    close_in ic;
    Ok !acc

let lint name variant json prove_races mem_report baseline_file
    write_baseline_file waivers_file =
  (* A baseline read or write only makes sense over classified sites. *)
  let prove_races =
    prove_races || baseline_file <> None || write_baseline_file <> None
  in
  let targets =
    if name = "all" then
      Some (List.map (fun w -> (w, None)) Workloads.Registry.all)
    else
      match Workloads.Registry.find_opt name with
      | None -> None
      | Some w -> Some [ (w, variant) ]
  in
  let inputs =
    let waivers =
      match waivers_file with None -> Ok [] | Some p -> read_waivers p
    in
    let baseline =
      match baseline_file with
      | None -> Ok []
      | Some p -> read_race_baseline p
    in
    match (waivers, baseline) with
    | Error msg, _ | _, Error msg -> Error msg
    | Ok w, Ok b -> Ok (w, b)
  in
  match (targets, inputs) with
  | None, _ ->
    Format.eprintf "unknown workload %s; try `sassi_run list` or `all`@." name;
    2
  | _, Error msg ->
    Format.eprintf "lint: %s@." msg;
    2
  | Some targets, Ok (waivers, baseline) ->
    let total_err = ref 0 and total_warn = ref 0 in
    let counts = ref [] in
    let wl_json = ref [] in
    List.iter
      (fun (w, variant) ->
         let variant =
           match variant with
           | Some v -> v
           | None -> w.Workloads.Workload.default_variant
         in
         let qualified =
           w.Workloads.Workload.suite ^ "/" ^ w.Workloads.Workload.name
         in
         let kernels, launches, _ = capture_kernels w variant in
         let kernel_objs =
           List.map
             (fun (kname, k) ->
                let findings = Analysis.Verifier.verify k in
                let e, wn, _ = Analysis.Verifier.summary findings in
                total_err := !total_err + e;
                total_warn := !total_warn + wn;
                if not json then begin
                  Format.printf "%s/%s (%s) kernel %s: %d error(s), %d \
                                 warning(s)@."
                    w.Workloads.Workload.suite w.Workloads.Workload.name
                    variant kname e wn;
                  List.iter
                    (fun f -> Format.printf "  %a@." Analysis.Finding.pp f)
                    findings
                end;
                let fields =
                  ref
                    [ ( "findings",
                        Trace.Json.List
                          (List.map Analysis.Finding.to_json findings) ) ]
                in
                if prove_races then begin
                  let ctx, kind = ctx_for launches kname k in
                  let concrete =
                    match kind with Ctx_concrete _ -> true | _ -> false
                  in
                  let sites =
                    Analysis.Verifier.race_sites ~ctx ~concrete k
                  in
                  let n, s, r, u = race_counts sites in
                  counts :=
                    (qualified ^ ":" ^ kname, (n, s, r, u)) :: !counts;
                  total_err := !total_err + r;
                  if not json then begin
                    Format.printf
                      "  races: %d site(s): %d proven-safe, %d proven-race, \
                       %d unknown [%s]@."
                      n s r u
                      (match kind with
                       | Ctx_concrete _ -> "concrete launch"
                       | Ctx_multi ->
                         "multiple geometries observed; static"
                       | Ctx_static -> "static");
                    List.iter
                      (fun (site : Analysis.Race_check.site) ->
                         if site.Analysis.Race_check.s_class
                            <> Analysis.Race_check.Proven_safe
                         then
                           Format.printf "    pc %d %s: %s%s@."
                             site.Analysis.Race_check.s_pc
                             (if site.Analysis.Race_check.s_store then "ST"
                              else "LD")
                             (Analysis.Race_check.classification_name
                                site.Analysis.Race_check.s_class)
                             (if site.Analysis.Race_check.s_note = "" then ""
                              else " (" ^ site.Analysis.Race_check.s_note
                                   ^ ")"))
                      sites
                  end;
                  fields :=
                    ( "races",
                      Trace.Json.Obj
                        [ ("sites", Trace.Json.Int n);
                          ("safe", Trace.Json.Int s);
                          ("race", Trace.Json.Int r);
                          ("unknown", Trace.Json.Int u);
                          ("concrete", Trace.Json.Bool concrete);
                          ( "multi_geometry",
                            Trace.Json.Bool
                              (match kind with
                               | Ctx_multi -> true
                               | _ -> false) ) ] )
                    :: !fields
                end;
                if mem_report then begin
                  let ctx, kind = ctx_for launches kname k in
                  match kind with
                  | Ctx_static ->
                    if not json then
                      Format.printf
                        "  mem: kernel never launched; no geometry to \
                         predict against@."
                  | Ctx_multi ->
                    (* Predictions are per-geometry; against several
                       observed shapes there is no single concrete
                       answer to validate. *)
                    if not json then
                      Format.printf
                        "  mem: multiple launch geometries observed; \
                         skipping concrete predictions@."
                  | Ctx_concrete li ->
                    let instrs = k.Sass.Program.instrs in
                    let cfg = Sass.Cfg.build instrs in
                    let states = Analysis.Absdom.analyze ctx instrs cfg in
                    let preds =
                      Analysis.Mempredict.predict ~geom:li.li_geom
                        ~line_bytes:Gpu.Config.default.Gpu.Config.line_bytes
                        instrs cfg states
                    in
                    if not json then
                      List.iter
                        (fun (p : Analysis.Mempredict.prediction) ->
                           Format.printf
                             "  mem: pc %d %s %s %dB: %s %d..%d%s@."
                             p.Analysis.Mempredict.p_pc
                             (Format.asprintf "%a" Sass.Opcode.pp_space
                                p.Analysis.Mempredict.p_space)
                             (if p.Analysis.Mempredict.p_store then "ST"
                              else "LD")
                             p.Analysis.Mempredict.p_bytes
                             (if p.Analysis.Mempredict.p_space
                                 = Sass.Opcode.Shared
                              then "degree" else "transactions")
                             p.Analysis.Mempredict.p_min
                             p.Analysis.Mempredict.p_max
                             (if p.Analysis.Mempredict.p_exact then " exact"
                              else " ~ " ^ p.Analysis.Mempredict.p_note))
                        preds;
                    fields :=
                      ( "mem",
                        Trace.Json.List
                          (List.map
                             (fun (p : Analysis.Mempredict.prediction) ->
                                Trace.Json.Obj
                                  [ ("pc",
                                     Trace.Json.Int
                                       p.Analysis.Mempredict.p_pc);
                                    ("space",
                                     Trace.Json.Str
                                       (Format.asprintf "%a"
                                          Sass.Opcode.pp_space
                                          p.Analysis.Mempredict.p_space));
                                    ("store",
                                     Trace.Json.Bool
                                       p.Analysis.Mempredict.p_store);
                                    ("min",
                                     Trace.Json.Int
                                       p.Analysis.Mempredict.p_min);
                                    ("max",
                                     Trace.Json.Int
                                       p.Analysis.Mempredict.p_max);
                                    ("exact",
                                     Trace.Json.Bool
                                       p.Analysis.Mempredict.p_exact);
                                    ("note",
                                     Trace.Json.Str
                                       p.Analysis.Mempredict.p_note) ])
                             preds) )
                      :: !fields
                end;
                (kname, Trace.Json.Obj (List.rev !fields)))
             kernels
         in
         wl_json :=
           Trace.Json.Obj
             [ ("workload", Trace.Json.Str w.Workloads.Workload.name);
               ("variant", Trace.Json.Str variant);
               ("kernels", Trace.Json.Obj kernel_objs) ]
           :: !wl_json)
      targets;
    (* Registry ratchet: against a baseline, no kernel may lose a
       proven-safe site or gain an unknown one without a waiver. *)
    let waived key =
      List.mem key waivers
      || (match String.index_opt key ':' with
          | Some i ->
            List.mem
              (String.sub key (i + 1) (String.length key - i - 1))
              waivers
          | None -> false)
    in
    let regressions =
      List.filter_map
        (fun (key, (_, safe, _, unknown)) ->
           match List.assoc_opt key baseline with
           | Some (_, bsafe, _, bunknown)
             when (safe < bsafe || unknown > bunknown) && not (waived key) ->
             Some
               (Printf.sprintf
                  "%s: proven-safe %d -> %d, unknown %d -> %d" key bsafe
                  safe bunknown unknown)
           | _ -> None)
        !counts
    in
    if not json then
      List.iter (Format.printf "lint: race regression: %s@.") regressions;
    (match write_baseline_file with
     | None -> ()
     | Some path ->
       write_race_baseline path !counts;
       if not json then Format.printf "lint: wrote %s@." path);
    if json then
      print_endline
        (Trace.Json.to_string
           (Trace.Json.Obj
              [ ("workloads", Trace.Json.List (List.rev !wl_json));
                ("errors", Trace.Json.Int !total_err);
                ("warnings", Trace.Json.Int !total_warn);
                ("regressions",
                 Trace.Json.List
                   (List.map (fun r -> Trace.Json.Str r) regressions)) ]))
    else
      Format.printf "lint: %d error(s), %d warning(s)@." !total_err
        !total_warn;
    if !total_err > 0 || regressions <> [] then 1 else 0

(* Handler pairs for an instrumentation kind; the specs drive the
   static cost model, the handlers the validation run. *)
let pairs_for device = function
  | "none" | "stub" ->
    [ (Sassi.Select.before [ Sassi.Select.All ] [], Sassi.Handler.noop) ]
  | "opcode" -> Handlers.Opcode_hist.pairs (Handlers.Opcode_hist.create device)
  | "branch" ->
    Handlers.Branch_stats.pairs (Handlers.Branch_stats.create device)
  | "memdiv" ->
    Handlers.Mem_divergence.pairs (Handlers.Mem_divergence.create device)
  | "value" ->
    Handlers.Value_profile.pairs (Handlers.Value_profile.create device)
  | "blocks" ->
    Handlers.Block_profile.pairs (Handlers.Block_profile.create device)
  | "trace" -> Handlers.Mem_trace.pairs (Handlers.Mem_trace.create ())
  | other ->
    Format.eprintf "unknown instrumentation %s@." other;
    exit 1

let analyze name variant instrument json dump_cfg dump_live validate =
  match Workloads.Registry.find_opt name with
  | None ->
    Format.eprintf "unknown workload %s; try `sassi_run list`@." name;
    1
  | Some w ->
    let variant =
      match variant with
      | Some v -> v
      | None -> w.Workloads.Workload.default_variant
    in
    let kernels, _, baseline = capture_kernels w variant in
    let specs = List.map fst (pairs_for (Gpu.Device.create ()) instrument) in
    let costs =
      List.map
        (fun (kname, k) -> (kname, k, Analysis.Cost.analyze ~specs k))
        kernels
    in
    (match dump_cfg with
     | None -> ()
     | Some path ->
       let doc =
         String.concat "\n"
           (List.map
              (fun (kname, k) ->
                 let instrs = k.Sass.Program.instrs in
                 let live =
                   if dump_live then Some (Sass.Liveness.analyze instrs)
                   else None
                 in
                 Analysis.Dot.render ?live ~name:kname instrs
                   (Sass.Cfg.build instrs))
              kernels)
       in
       if path = "-" then print_string doc
       else begin
         (try
            let oc = open_out path in
            output_string oc doc;
            close_out oc
          with Sys_error m ->
            Format.eprintf "cannot write cfg dump: %s@." m;
            exit 1);
         Format.printf "cfg dot (%d kernel(s)%s) -> %s@."
           (List.length kernels)
           (if dump_live then ", live sets" else "")
           path
       end);
    if not json then begin
      Format.printf
        "static instrumentation cost (%s) for %s/%s (%s):@." instrument
        w.Workloads.Workload.suite w.Workloads.Workload.name variant;
      Format.printf "  %-24s %6s %6s %10s %10s %6s@." "kernel" "instrs"
        "sites" "avg-spill" "inj-instrs" "frame";
      List.iter
        (fun (kname, k, (c : Analysis.Cost.t)) ->
           let nsites = List.length c.Analysis.Cost.c_sites in
           let avg_spill =
             if nsites = 0 then 0.0
             else
               float_of_int
                 (List.fold_left
                    (fun a s -> a + s.Analysis.Cost.c_spills)
                    0 c.Analysis.Cost.c_sites)
               /. float_of_int nsites
           in
           Format.printf "  %-24s %6d %6d %10.2f %10d %6d@." kname
             (Array.length k.Sass.Program.instrs)
             nsites avg_spill c.Analysis.Cost.c_static_instrs
             c.Analysis.Cost.c_frame_bytes)
        costs
    end;
    let validation =
      if not validate then None
      else begin
        let device = Gpu.Device.create () in
        let tele = Cupti.Telemetry.enable device in
        let pairs = pairs_for device instrument in
        let r2, per_kernel =
          Sassi.Runtime.with_instrumentation device pairs (fun rt ->
              let r = w.Workloads.Workload.run device ~variant in
              ( r,
                List.map
                  (fun (kname, k) ->
                     (kname, k, Sassi.Runtime.sites_for_kernel rt kname))
                  kernels ))
        in
        let counts = Cupti.Telemetry.handler_sites tele in
        let predicted =
          List.fold_left
            (fun acc (_, k, sites) ->
               acc
               + Analysis.Cost.predict_extra_instrs
                   (Analysis.Cost.of_sites k sites)
                   ~counts)
            0 per_kernel
        in
        let measured =
          r2.Workloads.Workload.stats.Gpu.Stats.warp_instrs
          - baseline.Workloads.Workload.stats.Gpu.Stats.warp_instrs
        in
        let err_pct =
          if measured = 0 then 0.0
          else
            100.0
            *. float_of_int (abs (predicted - measured))
            /. float_of_int measured
        in
        if not json then
          Format.printf
            "validation: predicted %d extra warp instrs, measured %d \
             (%.2f%% error)@."
            predicted measured err_pct;
        Some (predicted, measured, err_pct)
      end
    in
    if json then begin
      let fields =
        [ ("workload", Trace.Json.Str w.Workloads.Workload.name);
          ("variant", Trace.Json.Str variant);
          ("instrument", Trace.Json.Str instrument);
          ( "kernels",
            Trace.Json.List
              (List.map (fun (_, _, c) -> Analysis.Cost.to_json c) costs) ) ]
        @
        match validation with
        | None -> []
        | Some (p, m, e) ->
          [ ( "validation",
              Trace.Json.Obj
                [ ("predicted_extra_instrs", Trace.Json.Int p);
                  ("measured_extra_instrs", Trace.Json.Int m);
                  ("error_pct", Trace.Json.Float e) ] ) ]
      in
      print_endline (Trace.Json.to_string (Trace.Json.Obj fields))
    end;
    0

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let variant_arg =
  Arg.(value & opt (some string) None
       & info [ "v"; "variant" ] ~docv:"VARIANT" ~doc:"Dataset variant.")

let instrument_arg =
  Arg.(value & opt (enum (List.map (fun s -> (s, s)) instruments)) "none"
       & info [ "i"; "instrument" ] ~docv:"KIND"
           ~doc:"Instrumentation: none, opcode, branch, memdiv, value, blocks, trace, stub.")

let stats_arg =
  Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print machine statistics.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Collect activity records and write them to $(docv): \
                 Chrome trace_event JSON (load in chrome://tracing or \
                 Perfetto), or NDJSON when $(docv) ends in .ndjson.")

let trace_filter_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-filter" ] ~docv:"KINDS"
           ~doc:"Comma-separated activity kinds to record: kernel, block, \
                 warp, mem, cache, handler, fault (default: all).")

let trace_capacity_arg =
  Arg.(value & opt int 262144
       & info [ "trace-capacity" ] ~docv:"N"
           ~doc:"Ring-buffer capacity in records; the oldest records are \
                 dropped (and counted) on overflow.")

let instrumented_arg =
  Arg.(value & flag
       & info [ "instrumented" ] ~doc:"Show SASS after SASSI injection.")

let profile_arg =
  Arg.(value & flag
       & info [ "p"; "profile" ]
           ~doc:"Enable PC sampling and print an nvprof-style report \
                 (metrics, stall breakdown, hotspot tables) after the run.")

let pc_sampling_period_arg =
  Arg.(value & opt int Cupti.Pc_sampling.default_period
       & info [ "pc-sampling-period" ] ~docv:"N"
           ~doc:"Issue slots between PC samples (smaller = denser).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "m"; "metrics" ] ~docv:"NAMES"
           ~doc:"Comma-separated metrics to report (implies --profile); \
                 see --query-metrics for the list.")

let profile_out_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Write the profile report to $(docv) (implies --profile); \
                 format by extension: .json, .csv, else text.")

let stats_json_arg =
  Arg.(value & flag
       & info [ "stats-json" ]
           ~doc:"Print the launch statistics as one JSON object.")

let telemetry_arg =
  Arg.(value & flag
       & info [ "t"; "telemetry" ]
           ~doc:"Collect histogram metrics and time-series gauges and \
                 print a summary after the run.")

let telemetry_interval_arg =
  Arg.(value & opt int Cupti.Telemetry.default_interval
       & info [ "telemetry-interval" ] ~docv:"N"
           ~doc:"Cycles between time-series samples.")

let telemetry_out_arg =
  Arg.(value & opt (some string) None
       & info [ "telemetry-out" ] ~docv:"FILE"
           ~doc:"Write the metric registry to $(docv) (implies \
                 --telemetry): JSON when $(docv) ends in .json, \
                 Prometheus text exposition otherwise.")

let manifest_arg =
  Arg.(value & opt (some string) None
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write a run manifest (workload, config, seed, argv, \
                 wall time, build info, counters, metrics, histogram \
                 summaries) to $(docv); implies --telemetry. Feed two \
                 manifests to $(b,sassi_run compare).")

let run_seed_arg =
  Arg.(value & opt int 0
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Run seed recorded in the manifest.")

let l1_bytes_arg =
  Arg.(value & opt (some int) None
       & info [ "l1-bytes" ] ~docv:"BYTES"
           ~doc:"Override the per-SM L1 size (default \
                 $(b,Gpu.Config.default)); used by CI to seed a known \
                 perf regression.")

let device_domains_arg =
  Arg.(value & opt int 1
       & info [ "device-domains" ] ~docv:"N"
           ~doc:"Shard each kernel launch's SMs across $(docv) OCaml \
                 domains (1 = sequential, today's behavior). Statistics, \
                 manifests, and telemetry exports are bit-identical for \
                 every $(docv); kernels with cross-block atomics or SASSI \
                 handlers deterministically fall back to the sequential \
                 path, counted by $(b,sassi_device_fallback_total).")

let host_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "host-trace" ] ~docv:"FILE"
           ~doc:"Record host-side spans (campaign, jobs, compile \
                 phases, kernel launches) and write them to $(docv) as \
                 Chrome trace_event JSON — one track per domain; load \
                 in chrome://tracing or Perfetto, or inspect with \
                 $(b,sassi_run trace-summary). Simulation results are \
                 bit-identical with or without this flag.")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Run a workload on the simulated GPU")
    Term.(const run_workload $ workload_arg $ variant_arg $ instrument_arg
          $ stats_arg $ trace_arg $ trace_filter_arg $ trace_capacity_arg
          $ profile_arg $ pc_sampling_period_arg $ metrics_arg
          $ profile_out_arg $ stats_json_arg $ telemetry_arg
          $ telemetry_interval_arg $ telemetry_out_arg $ manifest_arg
          $ run_seed_arg $ l1_bytes_arg $ host_trace_arg
          $ device_domains_arg)

let manifest_a_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE.json")

let manifest_b_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE.json")

let threshold_arg =
  Arg.(value & opt float 2.0
       & info [ "threshold" ] ~docv:"PCT"
           ~doc:"Relative moves within $(docv) percent count as \
                 unchanged.")

let compare_all_arg =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Also list rows that did not move past the \
                              threshold.")

let compare_cmd =
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two run manifests and rank regressions"
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 on no regressions past threshold; 1 when at least one \
               regression is found; 2 when a manifest cannot be read." ])
    Term.(const compare_manifests $ manifest_a_arg $ manifest_b_arg
          $ threshold_arg $ compare_all_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List workloads")
    Term.(const list_workloads $ const ())

let injections_arg =
  Arg.(value & opt int 50
       & info [ "n"; "injections" ] ~docv:"N" ~doc:"Number of injections.")

let seed_arg =
  Arg.(value & opt int 2025 & info [ "seed" ] ~docv:"SEED")

let campaign_target_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"WORKLOAD|CAMPAIGN.json")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the campaign pool (1 = run inline \
                 on the calling domain). Results are joined in job \
                 order, so any $(docv) produces bit-identical output.")

let campaign_manifest_arg =
  Arg.(value & opt (some string) None
       & info [ "manifest" ] ~docv:"FILE"
           ~doc:"Write a campaign result manifest (aggregate tally and \
                 merged device statistics) to $(docv); feed two to \
                 $(b,sassi_run compare) — CI diffs a --jobs 2 run \
                 against --jobs 1 this way.")

let host_metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "host-metrics" ] ~docv:"FILE"
           ~doc:"Write the domain pool's introspection metrics (task, \
                 steal and idle-wake counters, queue depths; aggregate \
                 and per-worker) to $(docv): JSON when $(docv) ends in \
                 .json, Prometheus text exposition otherwise. These \
                 values are scheduling-dependent, so they live here, \
                 never in the $(b,--manifest) counters.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Redraw a live one-line meter on stderr as jobs finish: \
                 done/total, throughput, ETA, steal count. Auto-disabled \
                 when stderr is not a terminal, so redirected runs stay \
                 byte-identical.")

let campaign_cmd =
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a fault-injection campaign or a campaign job matrix"
       ~man:
         [ `S Manpage.s_description;
           `P "With a workload name, runs the Case Study IV flow: one \
               fault-injection campaign with $(b,--injections) single-bit \
               flips. With a sassi-campaign/1 JSON file, runs the whole \
               job matrix (plain runs and injection campaigns) on a \
               domain pool of $(b,--jobs) workers; per-job seeds are \
               split from the campaign seed and the job index, so every \
               $(b,--jobs) setting replays the same results." ])
    Term.(const campaign $ campaign_target_arg $ variant_arg $ injections_arg
          $ seed_arg $ jobs_arg $ campaign_manifest_arg $ host_trace_arg
          $ host_metrics_arg $ progress_arg $ device_domains_arg)

let trace_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.json")

let trace_summary_cmd =
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Validate and summarize a Chrome trace_event file"
       ~man:
         [ `S Manpage.s_description;
           `P "Parses a $(b,--host-trace) (or $(b,--trace)) output file \
               and reports event counts per phase type and the number of \
               tracks. CI uses this as the loadability gate for host \
               traces.";
           `S Manpage.s_exit_status;
           `P "0 when the file parses and has trace_event shape; 1 on a \
               shape problem; 2 when the file cannot be parsed." ])
    Term.(const trace_summary $ trace_file_arg)

let port_arg =
  Arg.(value & opt int 0
       & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on; 0 (the default) picks an \
                 ephemeral port, printed on the listening line.")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let feed_capacity_arg =
  Arg.(value & opt int 65536
       & info [ "feed-capacity" ] ~docv:"N"
           ~doc:"Activity-feed ring capacity in records; the ring drops \
                 its oldest records under overflow, so a slow /trace \
                 follower bounds memory, not correctness.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the content-addressed compile cache (enabled \
                 by default when serving).")

let cache_bytes_arg =
  Arg.(value & opt int Kernel.Cache.default_max_bytes
       & info [ "cache-bytes" ] ~docv:"BYTES"
           ~doc:"Compile-cache LRU byte budget.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve profiling jobs and live metrics over HTTP"
       ~man:
         [ `S Manpage.s_description;
           `P "Boots the profiling daemon: campaigns POSTed to /jobs \
               run on a $(b,--jobs)-wide domain pool (one at a time, in \
               submission order, exactly like the CLI), GET /metrics \
               serves a live Prometheus scrape of every registered \
               series, GET /trace streams activity records as NDJSON, \
               and /healthz and /readyz answer liveness and readiness \
               probes. A manifest fetched from /jobs/ID/manifest is \
               byte-identical to the file $(b,sassi_run campaign \
               --manifest) writes for the same campaign. POST \
               /shutdown stops the daemon cleanly." ])
    Term.(const serve $ port_arg $ host_arg $ jobs_arg $ feed_capacity_arg
          $ no_cache_arg $ cache_bytes_arg $ device_domains_arg)

let disasm_cmd =
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a workload's kernels")
    Term.(const disasm $ workload_arg $ instrumented_arg)

let json_arg =
  Arg.(value & flag
       & info [ "json" ] ~doc:"Emit the report as one JSON document.")

let prove_races_arg =
  Arg.(value & flag
       & info [ "prove-races" ]
           ~doc:"Classify every shared-memory access as proven-safe, \
                 proven-race, or unknown using the abstract \
                 interpreter seeded with the captured launch geometry \
                 and kernel parameters. Proven races count as errors.")

let mem_report_arg =
  Arg.(value & flag
       & info [ "mem-report" ]
           ~doc:"Print the static per-site bank-conflict degree and \
                 coalesced-transaction predictions for each kernel's \
                 shared and global accesses (requires a captured \
                 launch for the geometry).")

let race_baseline_arg =
  Arg.(value & opt (some string) None
       & info [ "race-baseline" ] ~docv:"FILE"
           ~doc:"Compare race classifications against a baseline \
                 written by $(b,--write-race-baseline); any kernel \
                 that loses a proven-safe site or gains an unknown \
                 one is a regression (exit 1) unless waived.")

let write_race_baseline_arg =
  Arg.(value & opt (some string) None
       & info [ "write-race-baseline" ] ~docv:"FILE"
           ~doc:"Write the per-kernel race classification counts as a \
                 baseline file.")

let race_waivers_arg =
  Arg.(value & opt (some string) None
       & info [ "race-waivers" ] ~docv:"FILE"
           ~doc:"Kernels exempt from the baseline ratchet, one per \
                 line (qualified $(i,suite/workload:kernel) or bare \
                 kernel name; # starts a comment).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify a workload's kernels (or `all')"
       ~man:
         [ `S Manpage.s_description;
           `P "Compiles the workload's kernels (by running the workload \
               once, uninstrumented) and runs the static analyzers over \
               each: uninitialized-register reads, barriers under \
               divergent control flow, shared-memory races, static \
               out-of-bounds accesses, unreachable code and dead \
               stores. The run also captures each kernel's launch \
               geometry, parameters and allocation watermark, which \
               seed the abstract interpreter behind \
               $(b,--prove-races) and $(b,--mem-report).";
           `S Manpage.s_exit_status;
           `P "0 when no error-severity finding is reported and no \
               baseline regression is detected; 1 when findings or \
               regressions exist; 2 on usage or parse errors (unknown \
               workload, unreadable or malformed baseline/waiver \
               files). Warnings never change the exit status." ])
    Term.(const lint $ workload_arg $ variant_arg $ json_arg
          $ prove_races_arg $ mem_report_arg $ race_baseline_arg
          $ write_race_baseline_arg $ race_waivers_arg)

let dump_cfg_arg =
  Arg.(value & opt (some string) None
       & info [ "dump-cfg" ] ~docv:"FILE"
           ~doc:"Write the kernels' control-flow graphs as Graphviz dot \
                 to $(docv) ($(b,-) for stdout).")

let dump_live_arg =
  Arg.(value & flag
       & info [ "dump-live" ]
           ~doc:"Annotate --dump-cfg blocks with live-in/live-out \
                 register sets.")

let validate_arg =
  Arg.(value & flag
       & info [ "validate" ]
           ~doc:"Re-run the workload instrumented and compare the cost \
                 model's predicted extra warp instructions against the \
                 measured delta (per-site invocation counts come from \
                 the telemetry handler-overhead counters).")

let analyze_instrument_arg =
  Arg.(value & opt (enum (List.map (fun s -> (s, s)) instruments)) "stub"
       & info [ "i"; "instrument" ] ~docv:"KIND"
           ~doc:"Instrumentation whose cost to model (default stub: a \
                 no-op handler before every instruction).")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static per-site instrumentation cost model for a workload"
       ~man:
         [ `S Manpage.s_description;
           `P "Predicts, per instrumentation site, the injected sequence \
               length and register spills a SASSI instrumentation would \
               incur — from liveness analysis alone, without running the \
               instrumented kernel. With $(b,--validate) the prediction \
               is checked against a measured instrumented run." ])
    Term.(const analyze $ workload_arg $ variant_arg
          $ analyze_instrument_arg $ json_arg $ dump_cfg_arg $ dump_live_arg
          $ validate_arg)

(* `sassi_run --query-metrics` works at top level, like nvprof. *)
let query_metrics_arg =
  Arg.(value & flag
       & info [ "query-metrics" ]
           ~doc:"List the derived metrics available to $(b,run --metrics).")

let build_info_arg =
  Arg.(value & flag
       & info [ "build-info" ]
           ~doc:"Print version, dune profile, compiler, and host, then \
                 exit. The same fields are embedded in run manifests.")

let default_term =
  Term.(ret
          (const (fun query build_info ->
               if build_info then begin
                 Format.printf "%a@." Telemetry.Build_info.pp
                   (Telemetry.Build_info.collect ());
                 `Ok 0
               end
               else if query then begin
                 List.iter
                   (fun (name, unit_, desc) ->
                      Format.printf "%-28s %-12s %s@." name unit_ desc)
                   (Cupti.Metrics.query ());
                 `Ok 0
               end
               else `Help (`Pager, None))
           $ query_metrics_arg $ build_info_arg))

let main =
  Cmd.group ~default:default_term
    (Cmd.info "sassi_run" ~version:"1.0"
       ~doc:"SASSI on a simulated GPU: selective instrumentation driver")
    [ run_cmd; list_cmd; disasm_cmd; campaign_cmd; compare_cmd; lint_cmd;
      analyze_cmd; trace_summary_cmd; serve_cmd ]

let () = exit (Cmd.eval' main)
