(* Tests for the parallel execution engine: the work-stealing deque,
   splittable seeds, the domain pool (ordered joins, exception
   propagation, stealing, shutdown), deterministic reduction, campaign
   job manifests, and the headline contract — parallel campaign
   results bit-identical to sequential ones. *)

let check = Alcotest.check

(* --- Deque ----------------------------------------------------------------- *)

let test_deque_lifo_fifo () =
  let d = Par.Deque.create () in
  check Alcotest.bool "fresh deque empty" true (Par.Deque.is_empty d);
  List.iter (Par.Deque.push_bottom d) [ 1; 2; 3 ];
  check Alcotest.int "length" 3 (Par.Deque.length d);
  (* Owner end pops newest first... *)
  check Alcotest.(option int) "pop is LIFO" (Some 3) (Par.Deque.pop_bottom d);
  (* ...thieves take the oldest. *)
  check Alcotest.(option int) "steal is FIFO" (Some 1) (Par.Deque.steal d);
  check Alcotest.(option int) "last element" (Some 2) (Par.Deque.pop_bottom d);
  check Alcotest.(option int) "pop on empty" None (Par.Deque.pop_bottom d);
  check Alcotest.(option int) "steal on empty" None (Par.Deque.steal d)

let test_deque_grows () =
  let d = Par.Deque.create ~capacity:2 () in
  for i = 1 to 100 do
    Par.Deque.push_bottom d i
  done;
  check Alcotest.int "all 100 queued" 100 (Par.Deque.length d);
  let stolen = ref [] in
  let rec drain () =
    match Par.Deque.steal d with
    | Some v ->
      stolen := v :: !stolen;
      drain ()
    | None -> ()
  in
  drain ();
  check
    Alcotest.(list int)
    "steals drain in push order"
    (List.init 100 (fun i -> i + 1))
    (List.rev !stolen)

let test_deque_bad_capacity () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Deque.create: capacity must be positive") (fun () ->
        ignore (Par.Deque.create ~capacity:0 ()))

(* --- Seed ------------------------------------------------------------------ *)

let test_seed_split () =
  (* Pure function of (seed, index). *)
  check Alcotest.int "stable" (Par.Seed.split ~seed:2025 ~index:7)
    (Par.Seed.split ~seed:2025 ~index:7);
  let seeds = List.init 64 (fun i -> Par.Seed.split ~seed:2025 ~index:i) in
  let distinct = List.sort_uniq compare seeds in
  check Alcotest.int "64 indices give 64 distinct seeds" 64
    (List.length distinct);
  List.iter
    (fun s -> check Alcotest.bool "non-negative" true (s >= 0))
    seeds;
  check Alcotest.bool "different parents diverge" true
    (Par.Seed.split ~seed:1 ~index:0 <> Par.Seed.split ~seed:2 ~index:0);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Seed.split: negative index") (fun () ->
        ignore (Par.Seed.split ~seed:1 ~index:(-1)))

(* --- Pool ------------------------------------------------------------------ *)

let test_pool_map_ordered () =
  List.iter
    (fun domains ->
       Par.Pool.with_pool ~domains (fun p ->
           let xs = Array.init 50 (fun i -> i) in
           let ys = Par.Pool.map_ordered p (fun i -> i * i) xs in
           check
             Alcotest.(array int)
             (Printf.sprintf "squares in order (domains=%d)" domains)
             (Array.init 50 (fun i -> i * i))
             ys))
    [ 1; 2; 4 ]

let test_pool_iter_ordered_streams_in_order () =
  Par.Pool.with_pool ~domains:3 (fun p ->
      let seen = ref [] in
      let tasks = Array.init 20 (fun i -> fun () -> i) in
      Par.Pool.iter_ordered p tasks ~on_result:(fun i v ->
          check Alcotest.int "index matches value" i v;
          seen := i :: !seen);
      check
        Alcotest.(list int)
        "delivered 0..19 in order"
        (List.init 20 (fun i -> i))
        (List.rev !seen))

exception Boom of int

let test_pool_exception_propagates () =
  Par.Pool.with_pool ~domains:2 (fun p ->
      let f = Par.Pool.submit p (fun () -> raise (Boom 42)) in
      (match Par.Pool.await f with
       | exception Boom 42 -> ()
       | exception e ->
         Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
       | _ -> Alcotest.fail "expected Boom");
      (* The failed task must not wedge the workers: the pool still
         runs new tasks afterwards. *)
      let g = Par.Pool.submit p (fun () -> 7) in
      check Alcotest.int "pool alive after task failure" 7 (Par.Pool.await g))

let test_pool_work_stealing_drains () =
  let p = Par.Pool.create ~domains:4 () in
  (* A two-task handshake pushed onto one deque: each task blocks until
     the other has started, so they must run on two different workers —
     and since one worker can pop at most one of them before blocking
     in it, finishing both requires at least one steal. Deterministic
     even on a single CPU (the OS preempts the blocked spinner). *)
  let a_started = Atomic.make false and b_started = Atomic.make false in
  let handshake mine other () =
    Atomic.set mine true;
    while not (Atomic.get other) do
      Domain.cpu_relax ()
    done
  in
  let fa = Par.Pool.submit_on p ~worker:0 (handshake a_started b_started) in
  let fb = Par.Pool.submit_on p ~worker:0 (handshake b_started a_started) in
  Par.Pool.await fa;
  Par.Pool.await fb;
  (* Drain check: a pile of tasks on one deque all run, exactly once. *)
  let futures =
    List.init 64 (fun i -> Par.Pool.submit_on p ~worker:0 (fun () -> i))
  in
  let total = List.fold_left (fun a f -> a + Par.Pool.await f) 0 futures in
  check Alcotest.int "every queued task ran exactly once" (64 * 63 / 2) total;
  Par.Pool.shutdown p;
  check Alcotest.bool "completing the handshake required a steal" true
    ((Par.Pool.stats p).Par.Pool.s_steals >= 1)

let test_pool_shutdown () =
  let p = Par.Pool.create ~domains:2 () in
  let f = Par.Pool.submit p (fun () -> 3) in
  Par.Pool.shutdown p;
  (* Queued work still completes... *)
  check Alcotest.int "queued task ran" 3 (Par.Pool.await f);
  (* ...shutdown is idempotent... *)
  Par.Pool.shutdown p;
  (* ...and new submissions are refused. *)
  (match Par.Pool.submit p (fun () -> 0) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "submit after shutdown must raise")

let test_pool_bad_domains () =
  (match Par.Pool.create ~domains:0 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "domains=0 must raise");
  match Par.Pool.create ~domains:(Par.Pool.max_domains + 1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "domains>max must raise"

(* --- Reduce ---------------------------------------------------------------- *)

let test_reduce_counters () =
  let merged =
    Par.Reduce.counters
      [| [ ("a", 1); ("b", 2) ]; [ ("b", 3); ("c", 4) ]; [ ("a", 5) ] |]
  in
  check
    Alcotest.(list (pair string int))
    "name-wise sums, first-appearance order"
    [ ("a", 6); ("b", 5); ("c", 4) ]
    merged

let test_reduce_stats () =
  let s1 = Gpu.Stats.create () in
  let s2 = Gpu.Stats.create () in
  s1.Gpu.Stats.cycles <- 10;
  s2.Gpu.Stats.cycles <- 32;
  let m = Par.Reduce.stats [| s1; s2 |] in
  check Alcotest.int "cycles summed" 42 m.Gpu.Stats.cycles;
  (* The merge must not alias its inputs. *)
  s1.Gpu.Stats.cycles <- 110;
  check Alcotest.int "merge unaffected by later input mutation" 42
    m.Gpu.Stats.cycles

(* --- Campaign manifests ---------------------------------------------------- *)

let test_campaign_roundtrip () =
  let c =
    Par.Campaign.make ~name:"rt" ~seed:7
      [ Par.Campaign.job ~variant:"small" ~kind:Par.Campaign.Inject
          ~injections:9 "parboil/sgemm";
        Par.Campaign.job ~seed:123 "rodinia/nn" ]
  in
  (match Par.Campaign.of_json (Par.Campaign.to_json c) with
   | Error e -> Alcotest.failf "round-trip failed: %s" e
   | Ok c' ->
     check Alcotest.bool "round-trips structurally" true (c = c'));
  (* Pinned seeds win; unpinned ones split from (campaign seed, index). *)
  check Alcotest.int "split seed for job 0"
    (Par.Seed.split ~seed:7 ~index:0)
    (Par.Campaign.job_seed c ~index:0);
  check Alcotest.int "pinned seed for job 1" 123
    (Par.Campaign.job_seed c ~index:1);
  match Par.Campaign.of_string "{\"schema\":\"bogus/9\",\"jobs\":[]}" with
  | Ok _ -> Alcotest.fail "bad schema accepted"
  | Error _ -> ()

(* --- Parallel-vs-sequential determinism ------------------------------------ *)

(* The headline contract: an instrumented workload run fanned out over
   any pool width yields bit-identical stats to the sequential run. *)
let test_parallel_run_determinism () =
  let run w variant () =
    let device = Gpu.Device.create () in
    let r = w.Workloads.Workload.run device ~variant in
    Gpu.Stats.to_assoc r.Workloads.Workload.stats
  in
  let tasks =
    [| run (Workloads.Registry.find "parboil/sgemm") "small";
       run (Workloads.Registry.find "parboil/spmv") "small";
       run (Workloads.Registry.find "parboil/sgemm") "small" |]
  in
  let baseline = Array.map (fun t -> t ()) tasks in
  List.iter
    (fun domains ->
       Par.Pool.with_pool ~domains (fun p ->
           let par = Par.Pool.map_ordered p (fun t -> t ()) tasks in
           check Alcotest.bool
             (Printf.sprintf "stats bit-identical at domains=%d" domains)
             true (baseline = par)))
    [ 1; 2; 4 ]

(* And the same for a full injection campaign: outcomes, tally, and
   merged stats must not depend on the pool width. *)
let test_parallel_campaign_determinism () =
  let w = Workloads.Registry.find "parboil/spmv" in
  let detail pool =
    Workloads.Campaign.run_detailed ?pool ~seed:2025 ~injections:6 w
      ~variant:"small"
  in
  let seq = detail None in
  List.iter
    (fun domains ->
       Par.Pool.with_pool ~domains (fun p ->
           let par = detail (Some p) in
           check Alcotest.bool
             (Printf.sprintf "outcomes identical at domains=%d" domains)
             true
             (seq.Workloads.Campaign.d_outcomes
              = par.Workloads.Campaign.d_outcomes);
           check Alcotest.bool
             (Printf.sprintf "merged stats identical at domains=%d" domains)
             true
             (Gpu.Stats.to_assoc seq.Workloads.Campaign.d_stats
              = Gpu.Stats.to_assoc par.Workloads.Campaign.d_stats)))
    [ 2; 3 ]

(* A whole telemetry manifest — counters, metrics, histogram summaries
   — serialized from runs fanned out over a pool must be byte-identical
   to the sequential serialization (the `bench table1 --jobs N` and CI
   campaign checks, reduced to a unit test). *)
let test_parallel_manifest_bit_identical () =
  let task name variant () =
    let device = Gpu.Device.create () in
    let t = Cupti.Telemetry.enable device in
    let w = Workloads.Registry.find name in
    let r = w.Workloads.Workload.run device ~variant in
    Cupti.Telemetry.disable device;
    (r.Workloads.Workload.stats, Cupti.Telemetry.counters t,
     Cupti.Telemetry.histograms t)
  in
  let tasks =
    [| task "parboil/sgemm" "small"; task "parboil/spmv" "small" |]
  in
  let manifest results =
    let stats = Par.Reduce.stats (Array.map (fun (s, _, _) -> s) results) in
    let counters =
      Par.Reduce.counters (Array.map (fun (_, c, _) -> c) results)
    in
    let histograms = Array.to_list results |> List.concat_map (fun (_, _, h) -> h) in
    Trace.Json.to_string
      (Telemetry.Manifest.to_json
         { Telemetry.Manifest.m_workload = "test/par";
           m_variant = "matrix";
           m_instrument = "none";
           m_seed = 2025;
           m_argv = [];
           m_wall_time_s = 0.0;
           m_build = Telemetry.Build_info.collect ();
           m_config = Gpu.Config.to_assoc Gpu.Config.default;
           m_counters = Gpu.Stats.to_assoc stats @ counters;
           m_metrics = [];
           m_histograms = histograms })
  in
  let baseline =
    Par.Pool.with_pool ~domains:1 (fun p ->
        manifest (Par.Pool.map_ordered p (fun t -> t ()) tasks))
  in
  List.iter
    (fun domains ->
       Par.Pool.with_pool ~domains (fun p ->
           let m =
             manifest (Par.Pool.map_ordered p (fun t -> t ()) tasks)
           in
           check Alcotest.string
             (Printf.sprintf "manifest bytes at domains=%d" domains)
             baseline m))
    [ 2; 4 ]

let test_rng_split_matches_seed_split () =
  (* Workloads.Rng.split is the seed-splitting entry point for dataset
     generation: same (seed, index) -> same stream. *)
  let a = Workloads.Rng.split ~seed:11 ~index:4 in
  let b = Workloads.Rng.split ~seed:11 ~index:4 in
  let xs r = List.init 16 (fun _ -> Workloads.Rng.int r 1000) in
  check Alcotest.(list int) "identical streams" (xs a) (xs b);
  let c = Workloads.Rng.split ~seed:11 ~index:5 in
  check Alcotest.bool "neighbour index differs" true (xs a <> xs c)

let suite =
  [ ( "par",
      [ Alcotest.test_case "deque LIFO owner / FIFO thief" `Quick
          test_deque_lifo_fifo;
        Alcotest.test_case "deque grows past capacity" `Quick
          test_deque_grows;
        Alcotest.test_case "deque rejects bad capacity" `Quick
          test_deque_bad_capacity;
        Alcotest.test_case "seed split: stable, distinct, guarded" `Quick
          test_seed_split;
        Alcotest.test_case "pool map_ordered at 1/2/4 domains" `Quick
          test_pool_map_ordered;
        Alcotest.test_case "pool iter_ordered streams in order" `Quick
          test_pool_iter_ordered_streams_in_order;
        Alcotest.test_case "pool exception propagates, pool survives" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "work stealing drains a hot deque" `Quick
          test_pool_work_stealing_drains;
        Alcotest.test_case "shutdown: drains, idempotent, refuses" `Quick
          test_pool_shutdown;
        Alcotest.test_case "pool rejects bad domain counts" `Quick
          test_pool_bad_domains;
        Alcotest.test_case "reduce counters name-wise" `Quick
          test_reduce_counters;
        Alcotest.test_case "reduce stats sums without aliasing" `Quick
          test_reduce_stats;
        Alcotest.test_case "campaign manifest round-trip" `Quick
          test_campaign_roundtrip;
        Alcotest.test_case "parallel runs bit-identical to sequential"
          `Quick test_parallel_run_determinism;
        Alcotest.test_case "parallel injection campaign deterministic"
          `Slow test_parallel_campaign_determinism;
        Alcotest.test_case "parallel telemetry manifest byte-identical"
          `Quick test_parallel_manifest_bit_identical;
        Alcotest.test_case "rng split: reproducible per-index streams"
          `Quick test_rng_split_matches_seed_split ] ) ]
