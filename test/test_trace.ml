(* Tests for the activity-tracing subsystem: ring-buffer overflow
   policies, the Activity API, sink validity (Chrome trace_event and
   NDJSON, checked with a small JSON parser), timeline aggregation,
   and the zero-perturbation guarantee (tracing must not change
   simulation results). *)

open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

(* --- A tiny strict JSON parser, enough to validate sink output ------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let next () =
      if !pos >= n then raise (Bad "eof");
      let c = s.[!pos] in
      incr pos;
      c
    in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      let g = next () in
      if g <> c then raise (Bad (Printf.sprintf "expected %c got %c" c g))
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents b
        | '\\' ->
          (match next () with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
             let h = String.init 4 (fun _ -> next ()) in
             Buffer.add_string b (Printf.sprintf "\\u%s" h)
           | c -> raise (Bad (Printf.sprintf "bad escape %c" c)));
          go ()
        | c ->
          Buffer.add_char b c;
          go ()
      in
      go ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then begin
          expect '}';
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object sep %c" c))
          in
          members []
        end
      | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then begin
          expect ']';
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> elements (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array sep %c" c))
          in
          elements []
        end
      | Some 't' ->
        pos := !pos + 4;
        Bool true
      | Some 'f' ->
        pos := !pos + 5;
        Bool false
      | Some 'n' ->
        pos := !pos + 4;
        Null
      | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then raise (Bad "bad value");
        Num (float_of_string (String.sub s start (!pos - start)))
      | None -> raise (Bad "eof")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v

  let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let num k o =
    match mem k o with Some (Num f) -> Some f | _ -> None

  let str k o =
    match mem k o with Some (Str s) -> Some s | _ -> None
end

(* --- Ring buffer --------------------------------------------------------- *)

let test_ring_drop_oldest () =
  let r = Trace.Ring.create ~capacity:4 () in
  for i = 0 to 5 do
    Trace.Ring.push r i
  done;
  check (Alcotest.list Alcotest.int) "oldest evicted" [ 2; 3; 4; 5 ]
    (Trace.Ring.to_list r);
  check Alcotest.int "length" 4 (Trace.Ring.length r);
  check Alcotest.int "dropped" 2 (Trace.Ring.dropped r);
  check Alcotest.int "pushed" 6 (Trace.Ring.pushed r);
  check Alcotest.int "accounting" (Trace.Ring.pushed r)
    (Trace.Ring.length r + Trace.Ring.dropped r + Trace.Ring.flushed r)

let test_ring_drop_newest () =
  let r = Trace.Ring.create ~policy:Trace.Ring.Drop_newest ~capacity:4 () in
  for i = 0 to 5 do
    Trace.Ring.push r i
  done;
  check (Alcotest.list Alcotest.int) "newest refused" [ 0; 1; 2; 3 ]
    (Trace.Ring.to_list r);
  check Alcotest.int "dropped" 2 (Trace.Ring.dropped r);
  check Alcotest.int "accounting" (Trace.Ring.pushed r)
    (Trace.Ring.length r + Trace.Ring.dropped r + Trace.Ring.flushed r)

let test_ring_flush_callback () =
  let batches = ref [] in
  let r =
    Trace.Ring.create
      ~policy:(Trace.Ring.Flush_callback (fun b -> batches := b :: !batches))
      ~capacity:4 ()
  in
  for i = 0 to 5 do
    Trace.Ring.push r i
  done;
  check Alcotest.int "one batch delivered" 1 (List.length !batches);
  check (Alcotest.array Alcotest.int) "batch oldest-first" [| 0; 1; 2; 3 |]
    (List.hd !batches);
  check (Alcotest.list Alcotest.int) "resident tail" [ 4; 5 ]
    (Trace.Ring.to_list r);
  check Alcotest.int "flushed" 4 (Trace.Ring.flushed r);
  check Alcotest.int "dropped" 0 (Trace.Ring.dropped r);
  check Alcotest.int "accounting" (Trace.Ring.pushed r)
    (Trace.Ring.length r + Trace.Ring.dropped r + Trace.Ring.flushed r)

let test_ring_flush_and_clear () =
  let r = Trace.Ring.create ~capacity:3 () in
  for i = 0 to 4 do
    Trace.Ring.push r i
  done;
  let drained = Trace.Ring.flush r in
  check (Alcotest.list Alcotest.int) "flush returns resident" [ 2; 3; 4 ]
    drained;
  check Alcotest.int "empty after flush" 0 (Trace.Ring.length r);
  check Alcotest.int "counters survive flush" 2 (Trace.Ring.dropped r);
  Trace.Ring.push r 9;
  Trace.Ring.clear r;
  check Alcotest.int "clear resets pushed" 0 (Trace.Ring.pushed r);
  check Alcotest.int "clear resets dropped" 0 (Trace.Ring.dropped r);
  check
    (Alcotest.testable
       (fun ppf _ -> Format.fprintf ppf "<exn>")
       (fun a b -> a = b))
    "capacity must be positive" true
    (try
       ignore (Trace.Ring.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

(* --- A traced kernel run -------------------------------------------------- *)

let saxpy =
  kernel "t_saxpy" ~params:[ ptr "x"; ptr "y"; flt "a"; int "n" ] (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 3);
        let_ "off" (v "i" <<! int_ 2);
        st_global_f (p 1 +! v "off")
          (ffma (p 2) (ldg_f (p 0 +! v "off")) (ldg_f (p 1 +! v "off"))) ])

let run_saxpy dev n =
  let x = Workloads.Workload.upload_f32 dev (Array.init n float_of_int) in
  let y = Workloads.Workload.upload_f32 dev (Array.make n 1.0) in
  let grid, block = Workloads.Workload.grid_1d ~threads:n ~block:64 in
  Gpu.Device.launch dev ~kernel:(Kernel.Compile.compile saxpy) ~grid ~block
    ~args:
      [ Gpu.Device.Ptr x; Gpu.Device.Ptr y; Gpu.Device.F32 2.0;
        Gpu.Device.I32 n ]

let traced_records ?(kinds = Cupti.Activity.all_kinds) ?(n = 256) () =
  let dev = device () in
  Cupti.Activity.enable dev kinds;
  let stats = run_saxpy dev n in
  let records = Cupti.Activity.records dev in
  Cupti.Activity.disable dev;
  (stats, records)

(* --- Activity API --------------------------------------------------------- *)

let test_activity_lifecycle () =
  let dev = device () in
  check Alcotest.bool "disabled initially" false (Cupti.Activity.enabled dev);
  Cupti.Activity.enable_all dev;
  check Alcotest.bool "enabled" true (Cupti.Activity.enabled dev);
  let _ = run_saxpy dev 256 in
  check Alcotest.bool "records collected" true
    (Cupti.Activity.records dev <> []);
  let drained = Cupti.Activity.flush dev in
  check Alcotest.bool "flush drains" true (drained <> []);
  check Alcotest.int "empty after flush" 0
    (List.length (Cupti.Activity.records dev));
  Cupti.Activity.disable dev;
  check Alcotest.bool "disabled again" false (Cupti.Activity.enabled dev);
  let _ = run_saxpy dev 256 in
  check Alcotest.int "no collection when disabled" 0
    (List.length (Cupti.Activity.records dev))

let test_activity_filter () =
  let _, records =
    traced_records ~kinds:[ Cupti.Activity.Kernel; Cupti.Activity.Mem ] ()
  in
  check Alcotest.bool "nonempty" true (records <> []);
  check Alcotest.bool "only requested kinds" true
    (List.for_all
       (fun r ->
          match Trace.Record.category r with
          | Trace.Record.Kernel | Trace.Record.Mem -> true
          | _ -> false)
       records);
  let has cat = List.exists (fun r -> Trace.Record.category r = cat) records in
  check Alcotest.bool "kernel records present" true (has Trace.Record.Kernel);
  check Alcotest.bool "mem records present" true (has Trace.Record.Mem)

let test_activity_deliver () =
  let batches = ref 0 in
  let delivered = ref 0 in
  let dev = device () in
  Cupti.Activity.enable ~capacity:512
    ~overflow:
      (Cupti.Activity.Deliver
         (fun b ->
            incr batches;
            delivered := !delivered + Array.length b))
    dev Cupti.Activity.all_kinds;
  let _ = run_saxpy dev 1024 in
  check Alcotest.bool "callback fired" true (!batches > 0);
  check Alcotest.int "delivered counter matches" !delivered
    (Cupti.Activity.delivered dev);
  check Alcotest.int "nothing dropped under Deliver" 0
    (Cupti.Activity.dropped dev);
  Cupti.Activity.disable dev

(* --- Zero perturbation ---------------------------------------------------- *)

let test_tracing_preserves_stats () =
  let plain = run_saxpy (device ()) 512 in
  let traced, _ = traced_records ~n:512 () in
  check Alcotest.string "identical Gpu.Stats"
    (Format.asprintf "%a" Gpu.Stats.pp plain)
    (Format.asprintf "%a" Gpu.Stats.pp traced)

(* --- Sinks ---------------------------------------------------------------- *)

let test_chrome_json_valid () =
  let _, records = traced_records () in
  check Alcotest.bool "trace nonempty" true (records <> []);
  let json =
    match Json.parse (Trace.Chrome.to_string records) with
    | j -> j
    | exception Json.Bad m -> Alcotest.failf "unparseable Chrome JSON: %s" m
  in
  let events =
    match Json.mem "traceEvents" json with
    | Some (Json.Arr es) -> es
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  check Alcotest.bool "has events" true (events <> []);
  (* Every event carries the mandatory trace_event fields. *)
  List.iter
    (fun e ->
       if Json.str "ph" e = None then Alcotest.fail "event without ph";
       if Json.str "name" e = None then Alcotest.fail "event without name";
       match Json.str "ph" e with
       | Some "M" -> ()
       | _ ->
         if Json.num "ts" e = None then Alcotest.fail "event without ts";
         if Json.num "pid" e = None || Json.num "tid" e = None then
           Alcotest.fail "event without pid/tid")
    events;
  (* Timestamps are monotone within each (pid, tid) track. *)
  let last = Hashtbl.create 64 in
  let regressions = ref 0 in
  List.iter
    (fun e ->
       match (Json.str "ph" e, Json.num "ts" e) with
       | Some "M", _ | _, None -> ()
       | _, Some ts ->
         let key = (Json.num "pid" e, Json.num "tid" e) in
         (match Hashtbl.find_opt last key with
          | Some prev when ts < prev -> incr regressions
          | _ -> ());
         Hashtbl.replace last key ts)
    events;
  check Alcotest.int "monotone ts per track" 0 !regressions;
  (* The taxonomy's load-bearing event names made it through. *)
  let names = List.filter_map (fun e -> Json.str "name" e) events in
  let has_prefix p =
    List.exists
      (fun n -> String.length n >= String.length p && String.sub n 0 (String.length p) = p)
      names
  in
  List.iter
    (fun prefix ->
       check Alcotest.bool (prefix ^ " event present") true (has_prefix prefix))
    [ "kernel:t_saxpy"; "warp_issue:"; "mem_ld:" ]

let test_ndjson_valid () =
  let _, records = traced_records () in
  let lines = List.map Trace.Ndjson.record_to_string records in
  check Alcotest.int "one line per record" (List.length records)
    (List.length lines);
  List.iter
    (fun line ->
       match Json.parse line with
       | Json.Obj _ as o ->
         if Json.str "kind" o = None then Alcotest.fail "line without kind";
         if Json.num "cycle" o = None then Alcotest.fail "line without cycle"
       | _ -> Alcotest.fail "NDJSON line is not an object"
       | exception Json.Bad m -> Alcotest.failf "unparseable line: %s" m)
    lines

(* --- Timeline aggregation -------------------------------------------------- *)

let test_timeline_build () =
  let stats, records = traced_records () in
  let tl = Trace.Timeline.build records in
  check Alcotest.int "one kernel" 1 (List.length tl.Trace.Timeline.kernels);
  let name, _, cycles = List.hd tl.Trace.Timeline.kernels in
  check Alcotest.string "kernel name" "t_saxpy" name;
  check Alcotest.int "kernel cycles match stats" stats.Gpu.Stats.cycles cycles;
  check Alcotest.bool "issues counted" true
    (tl.Trace.Timeline.total.Trace.Timeline.issues > 0);
  check Alcotest.bool "mem accesses counted" true
    (tl.Trace.Timeline.total.Trace.Timeline.mem_accesses > 0);
  let breakdown = Trace.Timeline.stall_breakdown tl in
  check Alcotest.int "every stall reason present"
    (Array.length Trace.Timeline.reasons)
    (List.length breakdown);
  List.iter
    (fun (_, events, cycles) ->
       check Alcotest.bool "non-negative stalls" true
         (events >= 0 && cycles >= 0))
    breakdown;
  let art = Trace.Timeline.render_warps ~width:32 records in
  check Alcotest.bool "ascii render nonempty" true
    (String.length art > 0 && String.contains art '#')

(* --- Mem_trace on the ring backend ---------------------------------------- *)

let test_mem_trace_capacity () =
  let dev = device () in
  let mt = Handlers.Mem_trace.create ~capacity:8 () in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Mem_trace.pairs mt)
      (fun _ -> run_saxpy dev 512)
  in
  check Alcotest.int "capped at capacity" 8 (Handlers.Mem_trace.length mt);
  check Alcotest.bool "overflow counted" true
    (Handlers.Mem_trace.dropped mt > 0);
  (* Drop_newest: the stored prefix is the first accesses, in order. *)
  let tr = Handlers.Mem_trace.trace mt in
  check Alcotest.int "trace length" 8 (List.length tr);
  Handlers.Mem_trace.clear mt;
  check Alcotest.int "cleared" 0 (Handlers.Mem_trace.length mt);
  check Alcotest.int "cleared dropped" 0 (Handlers.Mem_trace.dropped mt)

(* --- \uXXXX decoding in the shared JSON reader ----------------------------- *)

let parse_str input =
  match Trace.Json.of_string input with
  | Ok (Trace.Json.Str s) -> Ok s
  | Ok _ -> Error "parsed, but not as a string"
  | Error e -> Error e

let test_json_unicode_escapes () =
  (match parse_str {|"A\u00e9"|} with
   | Ok s -> check Alcotest.string "1- and 2-byte code points" "A\xc3\xa9" s
   | Error e -> Alcotest.failf "BMP escape rejected: %s" e);
  (match parse_str {|"\u2028"|} with
   | Ok s -> check Alcotest.string "3-byte code point" "\xe2\x80\xa8" s
   | Error e -> Alcotest.failf "U+2028 rejected: %s" e);
  (* U+1F600 as a \uD83D\uDE00 pair re-encodes as 4-byte UTF-8. *)
  match parse_str {|"\ud83d\ude00"|} with
  | Ok s -> check Alcotest.string "surrogate pair" "\xf0\x9f\x98\x80" s
  | Error e -> Alcotest.failf "surrogate pair rejected: %s" e

let test_json_lone_surrogates () =
  let reject label input =
    match parse_str input with
    | Ok s -> Alcotest.failf "%s accepted as %S" label s
    | Error _ -> ()
  in
  reject "high surrogate + non-low" {|"\ud800A"|};
  reject "high surrogate at end of string" {|"\ud83d"|};
  reject "high surrogate at end of input" {|"\ud83d|};
  reject "lone low surrogate" {|"\udc00"|};
  reject "two high surrogates" {|"\ud800\ud800"|}

let test_json_escape_roundtrip () =
  List.iter
    (fun s ->
       match parse_str (Trace.Json.to_string (Trace.Json.Str s)) with
       | Ok s' -> check Alcotest.string "escape/parse round-trip" s s'
       | Error e -> Alcotest.failf "round-trip of %S failed: %s" s e)
    [ ""; "plain"; "quote \" backslash \\ slash /";
      "controls \x01\x1f\n\t\r\b\x0c";
      "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80" ]

let suite =
  [ ( "trace.ring",
      [ Alcotest.test_case "drop-oldest" `Quick test_ring_drop_oldest;
        Alcotest.test_case "drop-newest" `Quick test_ring_drop_newest;
        Alcotest.test_case "flush-callback" `Quick test_ring_flush_callback;
        Alcotest.test_case "flush-and-clear" `Quick test_ring_flush_and_clear
      ] );
    ( "trace.activity",
      [ Alcotest.test_case "lifecycle" `Quick test_activity_lifecycle;
        Alcotest.test_case "kind filter" `Quick test_activity_filter;
        Alcotest.test_case "deliver callback" `Quick test_activity_deliver;
        Alcotest.test_case "stats unperturbed" `Quick
          test_tracing_preserves_stats
      ] );
    ( "trace.sinks",
      [ Alcotest.test_case "chrome json" `Quick test_chrome_json_valid;
        Alcotest.test_case "ndjson" `Quick test_ndjson_valid
      ] );
    ( "trace.json",
      [ Alcotest.test_case "unicode escapes" `Quick
          test_json_unicode_escapes;
        Alcotest.test_case "lone surrogates rejected" `Quick
          test_json_lone_surrogates;
        Alcotest.test_case "escape round-trip" `Quick
          test_json_escape_roundtrip
      ] );
    ( "trace.analysis",
      [ Alcotest.test_case "timeline" `Quick test_timeline_build;
        Alcotest.test_case "mem_trace ring backend" `Quick
          test_mem_trace_capacity
      ] )
  ]
