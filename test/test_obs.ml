(* Tests for the host-side observability layer: the shared wall-clock
   helper, the ambient span tracer (lifecycle, nesting, per-domain
   buffers, deterministic merge), the Chrome trace_event exporter, the
   progress meter's tty gating, and the pool introspection that feeds
   it all. *)

let check = Alcotest.check

let span_names spans = List.map (fun s -> s.Obs.Span.sp_name) spans

(* Every test drains on exit so a failing test never leaks an enabled
   tracer into the next one. *)
let with_tracer f =
  Obs.Tracer.enable ();
  Fun.protect ~finally:(fun () -> ignore (Obs.Tracer.drain ())) f

(* --- Clock ----------------------------------------------------------------- *)

let test_clock_wall_time () =
  let r, dt = Obs.Clock.with_wall_time (fun () -> 6 * 7) in
  check Alcotest.int "result passed through" 42 r;
  check Alcotest.bool "non-negative duration" true (dt >= 0.0);
  let (), dt2 = Obs.Clock.with_wall_time (fun () -> Unix.sleepf 0.01) in
  check Alcotest.bool "sleep measured" true (dt2 >= 0.005)

(* --- Tracer lifecycle ------------------------------------------------------ *)

let test_tracer_disabled () =
  check Alcotest.bool "off by default" false (Obs.Tracer.is_enabled ());
  let r = Obs.Tracer.with_span ~cat:"x" "s" (fun () -> 17) in
  check Alcotest.int "thunk still runs" 17 r;
  Obs.Tracer.instant ~cat:"x" "i";
  Obs.Tracer.counter ~cat:"x" "c" [ ("v", 1.0) ];
  check Alcotest.int "nothing recorded" 0 (List.length (Obs.Tracer.drain ()))

let test_tracer_nesting () =
  with_tracer (fun () ->
      Obs.Tracer.with_span ~cat:"outer" "a" (fun () ->
          Obs.Tracer.with_span ~cat:"inner" "b" (fun () -> ());
          Obs.Tracer.with_span ~cat:"inner" "c" (fun () -> ()));
      let spans = Obs.Tracer.drain () in
      check (Alcotest.list Alcotest.string) "all three spans, begin order"
        [ "a"; "b"; "c" ] (span_names spans);
      let by_name n = List.find (fun s -> s.Obs.Span.sp_name = n) spans in
      check Alcotest.int "outer depth" 0 (by_name "a").Obs.Span.sp_depth;
      check Alcotest.int "inner depth" 1 (by_name "b").Obs.Span.sp_depth;
      check Alcotest.int "sibling depth" 1 (by_name "c").Obs.Span.sp_depth;
      List.iter
        (fun s ->
           match s.Obs.Span.sp_kind with
           | Obs.Span.Complete d ->
             check Alcotest.bool "closed with duration" true (d >= 0)
           | _ -> Alcotest.fail "expected a complete span")
        spans)

let test_tracer_attrs_and_kinds () =
  with_tracer (fun () ->
      Obs.Tracer.begin_span ~cat:"work"
        ~attrs:[ ("k", Obs.Span.Str "v") ] "job";
      Obs.Tracer.end_span ~attrs:[ ("outcome", Obs.Span.Bool true) ] ();
      Obs.Tracer.instant ~cat:"mark" "tick";
      Obs.Tracer.counter ~cat:"pool" "pool" [ ("queued", 3.0) ];
      let spans = Obs.Tracer.drain () in
      check Alcotest.int "three records" 3 (List.length spans);
      let job = List.find (fun s -> s.Obs.Span.sp_name = "job") spans in
      check Alcotest.bool "begin attr kept" true
        (List.mem_assoc "k" job.Obs.Span.sp_attrs);
      check Alcotest.bool "end attr appended" true
        (List.mem_assoc "outcome" job.Obs.Span.sp_attrs);
      let tick = List.find (fun s -> s.Obs.Span.sp_name = "tick") spans in
      check Alcotest.bool "instant kind" true
        (tick.Obs.Span.sp_kind = Obs.Span.Instant);
      let pool = List.find (fun s -> s.Obs.Span.sp_name = "pool") spans in
      match pool.Obs.Span.sp_kind with
      | Obs.Span.Counter [ ("queued", v) ] ->
        check (Alcotest.float 0.0) "counter value" 3.0 v
      | _ -> Alcotest.fail "expected a counter record")

let test_tracer_unfinished_span () =
  with_tracer (fun () ->
      Obs.Tracer.begin_span ~cat:"work" "left-open";
      let spans = Obs.Tracer.drain () in
      check Alcotest.int "force-closed at drain" 1 (List.length spans);
      let s = List.hd spans in
      check Alcotest.bool "tagged unfinished" true
        (List.assoc_opt "unfinished" s.Obs.Span.sp_attrs
         = Some (Obs.Span.Bool true)))

let test_tracer_reenable_resets () =
  with_tracer (fun () ->
      Obs.Tracer.with_span ~cat:"old" "stale" (fun () -> ());
      Obs.Tracer.enable ();
      Obs.Tracer.with_span ~cat:"new" "fresh" (fun () -> ());
      let spans = Obs.Tracer.drain () in
      check (Alcotest.list Alcotest.string) "only the new trace survives"
        [ "fresh" ] (span_names spans);
      check Alcotest.bool "drain disables" false (Obs.Tracer.is_enabled ());
      check Alcotest.int "second drain empty" 0
        (List.length (Obs.Tracer.drain ())))

let test_tracer_multi_domain_tracks () =
  with_tracer (fun () ->
      Obs.Tracer.set_track 0;
      Obs.Tracer.with_span ~cat:"main" "m0" (fun () -> ());
      let worker track =
        Domain.spawn (fun () ->
            Obs.Tracer.set_track track;
            Obs.Tracer.with_span ~cat:"worker"
              (Printf.sprintf "w%d-a" track)
              (fun () ->
                 Obs.Tracer.with_span ~cat:"worker"
                   (Printf.sprintf "w%d-b" track)
                   (fun () -> ())))
      in
      let d1 = worker 1 in
      let d2 = worker 2 in
      Domain.join d1;
      Domain.join d2;
      let spans = Obs.Tracer.drain () in
      check (Alcotest.list Alcotest.string)
        "merged by (track, seq), not completion order"
        [ "m0"; "w1-a"; "w1-b"; "w2-a"; "w2-b" ]
        (span_names spans);
      List.iter
        (fun s ->
           let expect =
             if s.Obs.Span.sp_name = "m0" then 0
             else int_of_char s.Obs.Span.sp_name.[1] - int_of_char '0'
           in
           check Alcotest.int "span on its pinned track" expect
             s.Obs.Span.sp_track)
        spans)

(* --- Zero perturbation ----------------------------------------------------- *)

let test_tracing_preserves_results () =
  let run () =
    let device = Gpu.Device.create () in
    let w = Workloads.Registry.find "rodinia/nn" in
    w.Workloads.Workload.run device
      ~variant:w.Workloads.Workload.default_variant
  in
  let plain = run () in
  let traced, spans =
    with_tracer (fun () ->
        let r = run () in
        (r, Obs.Tracer.drain ()))
  in
  check Alcotest.string "same output digest"
    plain.Workloads.Workload.output_digest
    traced.Workloads.Workload.output_digest;
  check Alcotest.bool "same stats" true
    (plain.Workloads.Workload.stats = traced.Workloads.Workload.stats);
  let cats =
    List.sort_uniq compare (List.map (fun s -> s.Obs.Span.sp_cat) spans)
  in
  check Alcotest.bool "compile phases traced" true (List.mem "compile" cats);
  check Alcotest.bool "launches traced" true (List.mem "launch" cats)

(* --- Chrome export --------------------------------------------------------- *)

let test_export_chrome_shape () =
  let spans =
    with_tracer (fun () ->
        Obs.Tracer.with_span ~cat:"campaign" "campaign:t"
          ~attrs:[ ("jobs", Obs.Span.Int 2) ]
          (fun () ->
             Obs.Tracer.instant ~cat:"mark" "tick";
             Obs.Tracer.counter ~cat:"pool" "pool" [ ("queued", 1.0) ]);
        Obs.Tracer.drain ())
  in
  let doc =
    match Trace.Json.of_string (Obs.Export.to_string spans) with
    | Ok doc -> doc
    | Error e -> Alcotest.failf "export does not re-parse: %s" e
  in
  let events =
    match Trace.Json.member "traceEvents" doc with
    | Some (Trace.Json.List es) -> es
    | _ -> Alcotest.fail "no traceEvents list"
  in
  let ph e =
    match Trace.Json.member "ph" e with
    | Some (Trace.Json.Str p) -> p
    | _ -> Alcotest.fail "event without ph"
  in
  let count p = List.length (List.filter (fun e -> ph e = p) events) in
  check Alcotest.int "one complete event" 1 (count "X");
  check Alcotest.int "one instant event" 1 (count "i");
  check Alcotest.int "one counter event" 1 (count "C");
  check Alcotest.bool "metadata track names present" true (count "M" >= 2);
  List.iter
    (fun e ->
       if ph e = "X" then begin
         (match Trace.Json.member "dur" e with
          | Some (Trace.Json.Int d) ->
            check Alcotest.bool "dur at least 1us" true (d >= 1)
          | _ -> Alcotest.fail "X event without dur");
         match Trace.Json.member "args" e with
         | Some (Trace.Json.Obj kvs) ->
           check Alcotest.bool "attrs exported as args" true
             (List.mem_assoc "jobs" kvs)
         | _ -> Alcotest.fail "X event lost its args"
       end)
    events;
  match Obs.Export.summary spans with
  | [ ("campaign", 1, _); ("mark", 1, _); ("pool", 1, _) ] -> ()
  | other ->
    Alcotest.failf "unexpected summary (%d categories)" (List.length other)

(* --- Progress meter -------------------------------------------------------- *)

let meter_output ~tty steps =
  let path = Filename.temp_file "obs_progress" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let m = Obs.Progress.create ~out:oc ~tty ~enabled:true ~total:4 () in
  for _ = 1 to steps do
    Obs.Progress.step ~tail:"tail" m
  done;
  Obs.Progress.finish m;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (Obs.Progress.active m, s)

let test_progress_tty_gating () =
  let active, out = meter_output ~tty:false 3 in
  check Alcotest.bool "inactive off a tty" false active;
  check Alcotest.string "not a single byte written" "" out;
  let active, out = meter_output ~tty:true 2 in
  check Alcotest.bool "active on a tty" true active;
  check Alcotest.bool "draws with carriage returns" true
    (String.contains out '\r' && not (String.contains out '\n'));
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "progress fraction drawn" true (contains out "[2/4]");
  check Alcotest.bool "tail drawn" true (contains out "tail")

(* --- Pool introspection ----------------------------------------------------- *)

let test_pool_stats () =
  (* Inline pool: everything runs on the caller, one counter block. *)
  Par.Pool.with_pool ~domains:1 (fun p ->
      let futs = List.init 5 (fun i -> Par.Pool.submit p (fun () -> i)) in
      List.iteri (fun i f -> check Alcotest.int "result" i (Par.Pool.await f))
        futs;
      let s = Par.Pool.stats p in
      check Alcotest.int "inline size" 1 s.Par.Pool.s_size;
      check Alcotest.int "inline tasks counted" 5 s.Par.Pool.s_tasks;
      check Alcotest.int "inline never steals" 0 s.Par.Pool.s_steals;
      check Alcotest.int "nothing queued" 0 s.Par.Pool.s_queued;
      check Alcotest.int "one worker row" 1 (Array.length s.Par.Pool.s_workers));
  (* Real pool: per-worker counters sum to the aggregate. *)
  Par.Pool.with_pool ~domains:3 (fun p ->
      let futs = List.init 12 (fun i -> Par.Pool.submit p (fun () -> i * i)) in
      List.iteri
        (fun i f -> check Alcotest.int "result" (i * i) (Par.Pool.await f))
        futs;
      let s = Par.Pool.stats p in
      check Alcotest.int "pool size" 3 s.Par.Pool.s_size;
      check Alcotest.int "all tasks counted" 12 s.Par.Pool.s_tasks;
      check Alcotest.int "worker rows" 3 (Array.length s.Par.Pool.s_workers);
      check Alcotest.int "rows sum to aggregate tasks" s.Par.Pool.s_tasks
        (Array.fold_left (fun a w -> a + w.Par.Pool.ws_tasks) 0
           s.Par.Pool.s_workers);
      check Alcotest.int "rows sum to aggregate steals" s.Par.Pool.s_steals
        (Array.fold_left (fun a w -> a + w.Par.Pool.ws_steals) 0
           s.Par.Pool.s_workers))

let test_pool_register_telemetry () =
  Par.Pool.with_pool ~domains:2 (fun p ->
      let futs = List.init 4 (fun i -> Par.Pool.submit p (fun () -> i)) in
      List.iter (fun f -> ignore (Par.Pool.await f)) futs;
      let reg = Telemetry.Registry.create () in
      Par.Pool.register_telemetry p reg;
      let text = Telemetry.Export.prometheus reg in
      let contains needle =
        let nh = String.length text and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool "aggregate task counter exported" true
        (contains "sassi_pool_tasks_total 4");
      check Alcotest.bool "steal counter exported" true
        (contains "sassi_pool_steals_total");
      check Alcotest.bool "queue-depth gauge exported" true
        (contains "sassi_pool_queue_depth");
      check Alcotest.bool "per-worker series labeled" true
        (contains "sassi_pool_worker_tasks_total{worker=\"0\"}");
      check Alcotest.bool "second worker labeled" true
        (contains "{worker=\"1\"}"))

let suite =
  [ ( "obs.clock",
      [ Alcotest.test_case "with_wall_time" `Quick test_clock_wall_time ] );
    ( "obs.tracer",
      [ Alcotest.test_case "disabled is inert" `Quick test_tracer_disabled;
        Alcotest.test_case "nesting and order" `Quick test_tracer_nesting;
        Alcotest.test_case "attrs and kinds" `Quick
          test_tracer_attrs_and_kinds;
        Alcotest.test_case "unfinished close" `Quick
          test_tracer_unfinished_span;
        Alcotest.test_case "re-enable resets" `Quick
          test_tracer_reenable_resets;
        Alcotest.test_case "multi-domain merge" `Quick
          test_tracer_multi_domain_tracks;
        Alcotest.test_case "zero perturbation" `Quick
          test_tracing_preserves_results
      ] );
    ( "obs.export",
      [ Alcotest.test_case "chrome trace shape" `Quick
          test_export_chrome_shape ] );
    ( "obs.progress",
      [ Alcotest.test_case "tty gating" `Quick test_progress_tty_gating ] );
    ( "obs.pool",
      [ Alcotest.test_case "stats snapshot" `Quick test_pool_stats;
        Alcotest.test_case "telemetry registration" `Quick
          test_pool_register_telemetry
      ] )
  ]
