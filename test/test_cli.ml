(* Pins the exit-code contract of `sassi_run trace-summary`: 0 for a
   loadable Chrome trace, 1 for a shape problem (valid JSON that is
   not a trace), 2 for a parse failure. The Makefile's host-trace gate
   and external wrappers key off exactly these codes, so a renumbering
   must fail loudly here. *)

let check = Alcotest.check

(* The test binary runs from _build/default/test; the driver is a
   declared dep one directory over. *)
let exe = Filename.concat ".." (Filename.concat "bin" "sassi_run.exe")

let with_file contents f =
  let path = Filename.temp_file "sassi_cli_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out path in
       output_string oc contents;
       close_out oc;
       f path)

let summary_exit path =
  Sys.command
    (Filename.quote_command exe ~stdout:Filename.null ~stderr:Filename.null
       [ "trace-summary"; path ])

let test_exit_0_loadable_trace () =
  with_file
    "{\"traceEvents\":[{\"ph\":\"B\",\"tid\":1,\"name\":\"a\",\"ts\":0},\
     {\"ph\":\"E\",\"tid\":1,\"ts\":5},{\"ph\":\"M\",\"tid\":0}]}"
    (fun path -> check Alcotest.int "loadable trace" 0 (summary_exit path))

let test_exit_1_shape_problem () =
  with_file "{\"events\": []}" (fun path ->
      check Alcotest.int "no traceEvents list" 1 (summary_exit path));
  with_file "{\"traceEvents\":[{\"name\":\"missing ph and tid\"}]}"
    (fun path ->
       check Alcotest.int "events missing ph/tid" 1 (summary_exit path))

let test_exit_2_parse_failure () =
  with_file "this is not JSON {" (fun path ->
      check Alcotest.int "unparseable file" 2 (summary_exit path));
  check Alcotest.int "missing file" 2
    (summary_exit "/nonexistent/sassi-trace.json")

(* The same contract for `sassi_run lint`: 0 when clean, 1 on
   findings or a race-baseline regression, 2 on usage/parse errors.
   The regression leg round-trips the baseline format: write it, bump
   a count, require exit 1, then waive the kernel and require 0. *)

let lint_exit args =
  Sys.command
    (Filename.quote_command exe ~stdout:Filename.null ~stderr:Filename.null
       ("lint" :: args))

let test_lint_exit_0_clean () =
  check Alcotest.int "clean workload" 0 (lint_exit [ "parboil/sgemm" ])

let test_lint_exit_1_regression () =
  let tmp = Filename.temp_file "sassi_cli_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
       check Alcotest.int "baseline write" 0
         (lint_exit [ "parboil/sgemm"; "--write-race-baseline"; tmp ]);
       (* Inflate every proven-safe count: the rerun now "lost" a
          proven-safe site per kernel and must exit 1. *)
       (match Trace.Json.parse_file tmp with
        | Ok (Trace.Json.Obj fields) ->
          let bump = function
            | ("safe", Trace.Json.Int n) -> ("safe", Trace.Json.Int (n + 1))
            | f -> f
          in
          let patched =
            List.map
              (function
                | ("kernels", Trace.Json.Obj ks) ->
                  ( "kernels",
                    Trace.Json.Obj
                      (List.map
                         (function
                           | key, Trace.Json.Obj o ->
                             (key, Trace.Json.Obj (List.map bump o))
                           | kv -> kv)
                         ks) )
                | kv -> kv)
              fields
          in
          Trace.Json.write_file tmp (Trace.Json.Obj patched)
        | _ -> Alcotest.fail "baseline did not parse back");
       check Alcotest.int "regression detected" 1
         (lint_exit [ "parboil/sgemm"; "--race-baseline"; tmp ]);
       let waive = Filename.temp_file "sassi_cli_waive" ".txt" in
       Fun.protect
         ~finally:(fun () -> try Sys.remove waive with Sys_error _ -> ())
         (fun () ->
            let oc = open_out waive in
            output_string oc "# deliberate, for the exit-code test\nsgemm\n";
            close_out oc;
            check Alcotest.int "waiver suppresses the regression" 0
              (lint_exit
                 [ "parboil/sgemm"; "--race-baseline"; tmp; "--race-waivers";
                   waive ])))

let test_lint_exit_2_usage () =
  check Alcotest.int "unknown workload" 2 (lint_exit [ "no-such-workload" ]);
  with_file "this is not JSON {" (fun path ->
      check Alcotest.int "malformed baseline" 2
        (lint_exit [ "parboil/sgemm"; "--race-baseline"; path ]));
  check Alcotest.int "missing baseline file" 2
    (lint_exit [ "parboil/sgemm"; "--race-baseline"; "/nonexistent/b.json" ])

let suite =
  [ ("cli.trace-summary",
     [ Alcotest.test_case "exit 0 on loadable trace" `Quick
         test_exit_0_loadable_trace;
       Alcotest.test_case "exit 1 on shape problem" `Quick
         test_exit_1_shape_problem;
       Alcotest.test_case "exit 2 on parse failure" `Quick
         test_exit_2_parse_failure ]);
    ("cli.lint",
     [ Alcotest.test_case "exit 0 on clean workload" `Quick
         test_lint_exit_0_clean;
       Alcotest.test_case "exit 1 on baseline regression" `Slow
         test_lint_exit_1_regression;
       Alcotest.test_case "exit 2 on usage errors" `Quick
         test_lint_exit_2_usage ]) ]
