(* Pins the exit-code contract of `sassi_run trace-summary`: 0 for a
   loadable Chrome trace, 1 for a shape problem (valid JSON that is
   not a trace), 2 for a parse failure. The Makefile's host-trace gate
   and external wrappers key off exactly these codes, so a renumbering
   must fail loudly here. *)

let check = Alcotest.check

(* The test binary runs from _build/default/test; the driver is a
   declared dep one directory over. *)
let exe = Filename.concat ".." (Filename.concat "bin" "sassi_run.exe")

let with_file contents f =
  let path = Filename.temp_file "sassi_cli_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let oc = open_out path in
       output_string oc contents;
       close_out oc;
       f path)

let summary_exit path =
  Sys.command
    (Filename.quote_command exe ~stdout:Filename.null ~stderr:Filename.null
       [ "trace-summary"; path ])

let test_exit_0_loadable_trace () =
  with_file
    "{\"traceEvents\":[{\"ph\":\"B\",\"tid\":1,\"name\":\"a\",\"ts\":0},\
     {\"ph\":\"E\",\"tid\":1,\"ts\":5},{\"ph\":\"M\",\"tid\":0}]}"
    (fun path -> check Alcotest.int "loadable trace" 0 (summary_exit path))

let test_exit_1_shape_problem () =
  with_file "{\"events\": []}" (fun path ->
      check Alcotest.int "no traceEvents list" 1 (summary_exit path));
  with_file "{\"traceEvents\":[{\"name\":\"missing ph and tid\"}]}"
    (fun path ->
       check Alcotest.int "events missing ph/tid" 1 (summary_exit path))

let test_exit_2_parse_failure () =
  with_file "this is not JSON {" (fun path ->
      check Alcotest.int "unparseable file" 2 (summary_exit path));
  check Alcotest.int "missing file" 2
    (summary_exit "/nonexistent/sassi-trace.json")

let suite =
  [ ("cli.trace-summary",
     [ Alcotest.test_case "exit 0 on loadable trace" `Quick
         test_exit_0_loadable_trace;
       Alcotest.test_case "exit 1 on shape problem" `Quick
         test_exit_1_shape_problem;
       Alcotest.test_case "exit 2 on parse failure" `Quick
         test_exit_2_parse_failure ]) ]
