(* Aggregates all suites into one alcotest runner. *)

let () = Alcotest.run "sassi-repro" (Test_sass.suite @ Test_gpu.suite @ Test_kernel.suite @ Test_sassi.suite @ Test_handlers.suite @ Test_workloads.suite @ Test_structural.suite @ Test_properties.suite @ Test_misc.suite @ Test_trace.suite @ Test_workload_refs.suite @ Test_prof.suite @ Test_telemetry.suite @ Test_analysis.suite @ Test_par.suite @ Test_device_sharding.suite @ Test_obs.suite @ Test_serve.suite @ Test_cli.suite)
