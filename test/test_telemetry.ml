(* Tests for the telemetry subsystem: log2 histograms, the instrument
   registry and its exporters, the time series, the Trace.Json parser
   edge cases (NaN/infinity, control characters, non-ASCII escapes),
   run-manifest round-trips, regression diffing, and the
   zero-perturbation invariant of the device-side sink. *)

let check = Alcotest.check

let feq = Alcotest.float 1e-9

(* --- Hist ------------------------------------------------------------------ *)

let test_hist_buckets () =
  check Alcotest.(pair int int) "bucket 0 holds {0}" (0, 0)
    (Telemetry.Hist.bucket_bounds 0);
  check Alcotest.(pair int int) "bucket 1 holds {1}" (1, 1)
    (Telemetry.Hist.bucket_bounds 1);
  check Alcotest.(pair int int) "bucket 3 = [4,7]" (4, 7)
    (Telemetry.Hist.bucket_bounds 3);
  let h = Telemetry.Hist.create () in
  List.iter (Telemetry.Hist.observe h) [ 0; 1; 5; 5; 1000 ];
  check Alcotest.int "count" 5 (Telemetry.Hist.count h);
  check Alcotest.int "sum" 1011 (Telemetry.Hist.sum h);
  check Alcotest.int "min" 0 (Telemetry.Hist.min_value h);
  check Alcotest.int "max" 1000 (Telemetry.Hist.max_value h);
  let b = Telemetry.Hist.buckets h in
  check Alcotest.int "zero bucket" 1 b.(0);
  check Alcotest.int "ones bucket" 1 b.(1);
  check Alcotest.int "4..7 bucket" 2 b.(3);
  (* 1000 lands in [512, 1023] = bucket 10. *)
  check Alcotest.int "1000 bucket" 1 b.(10)

let test_hist_quantiles () =
  let h = Telemetry.Hist.create () in
  check feq "empty quantile" 0.0 (Telemetry.Hist.quantile h 0.5);
  for v = 1 to 1000 do
    Telemetry.Hist.observe h v
  done;
  let p50 = Telemetry.Hist.quantile h 0.5 in
  let p90 = Telemetry.Hist.quantile h 0.9 in
  let p99 = Telemetry.Hist.quantile h 0.99 in
  check Alcotest.bool "p50 near the median" true (p50 > 350.0 && p50 < 700.0);
  check Alcotest.bool "quantiles monotone" true (p50 <= p90 && p90 <= p99);
  check Alcotest.bool "p99 clamped to max" true (p99 <= 1000.0);
  (* The extremes reproduce exactly thanks to the min/max clamp. *)
  check feq "q0 is min" 1.0 (Telemetry.Hist.quantile h 0.0);
  check feq "q1 is max" 1000.0 (Telemetry.Hist.quantile h 1.0);
  let s = Telemetry.Hist.summarize h in
  check Alcotest.int "summary count" 1000 s.Telemetry.Hist.s_count;
  check feq "summary mean" 500.5 s.Telemetry.Hist.s_mean

let test_hist_edge () =
  let h = Telemetry.Hist.create () in
  Telemetry.Hist.observe h (-5);
  check Alcotest.int "negative clamps to 0" 0 (Telemetry.Hist.max_value h);
  check Alcotest.int "negative counted" 1 (Telemetry.Hist.count h);
  let h2 = Telemetry.Hist.create () in
  Telemetry.Hist.observe h2 7;
  Telemetry.Hist.merge ~into:h2 h;
  check Alcotest.int "merge count" 2 (Telemetry.Hist.count h2);
  check Alcotest.int "merge min" 0 (Telemetry.Hist.min_value h2);
  check Alcotest.int "merge max" 7 (Telemetry.Hist.max_value h2);
  Telemetry.Hist.clear h2;
  check Alcotest.int "clear" 0 (Telemetry.Hist.count h2)

(* --- Registry & Prometheus exporter ---------------------------------------- *)

let test_registry () =
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r ~help:"a counter" "reqs_total" in
  c := 41;
  incr c;
  Telemetry.Registry.gauge r ~help:"a gauge" "depth" (fun () -> 2.5);
  let h = Telemetry.Registry.histogram r ~help:"a hist" "lat" in
  Telemetry.Hist.observe h 3;
  (* Same name with different labels is a distinct series... *)
  Telemetry.Registry.gauge r
    ~labels:[ ("sm", "0") ]
    ~help:"a gauge" "depth"
    (fun () -> 1.0);
  (* ...but an exact (name, labels) duplicate is a registration bug. *)
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Telemetry.Registry: duplicate instrument depth")
    (fun () ->
      Telemetry.Registry.gauge r ~help:"again" "depth" (fun () -> 0.0));
  check
    Alcotest.(list string)
    "specs in registration order"
    [ "reqs_total"; "depth"; "lat"; "depth" ]
    (List.map
       (fun (s : Telemetry.Registry.spec) -> s.Telemetry.Registry.sp_name)
       (Telemetry.Registry.specs r));
  check Alcotest.int "counter readback" 42
    (match Telemetry.Registry.specs r with
     | { Telemetry.Registry.sp_instrument = Telemetry.Registry.Counter f; _ }
       :: _ ->
       f ()
     | _ -> -1)

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

let test_prometheus () =
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r ~help:"total requests" "reqs_total" in
  c := 7;
  Telemetry.Registry.gauge r ~help:"bad float" "weird-gauge" (fun () ->
      Float.nan);
  Telemetry.Registry.gauge r
    ~labels:[ ("path", "a\"b\nc\\d") ]
    ~help:"labeled" "labeled_gauge"
    (fun () -> 4.0);
  let h = Telemetry.Registry.histogram r ~help:"latency" "lat" in
  List.iter (Telemetry.Hist.observe h) [ 1; 2; 6 ];
  let text = Telemetry.Export.prometheus r in
  List.iter
    (fun line -> check Alcotest.bool ("has " ^ line) true (contains text line))
    [ "# HELP reqs_total total requests";
      "# TYPE reqs_total counter";
      "reqs_total 7";
      (* name sanitized to the Prometheus alphabet *)
      "weird_gauge NaN";
      (* label values escape quotes, newlines, backslashes *)
      "labeled_gauge{path=\"a\\\"b\\nc\\\\d\"} 4";
      "# TYPE lat histogram";
      (* cumulative power-of-two buckets *)
      "lat_bucket{le=\"1\"} 1";
      "lat_bucket{le=\"3\"} 2";
      "lat_bucket{le=\"7\"} 3";
      "lat_bucket{le=\"+Inf\"} 3";
      "lat_sum 9";
      "lat_count 3" ];
  check Alcotest.bool "no empty tail buckets" false
    (contains text "le=\"15\"")

(* --- Series ---------------------------------------------------------------- *)

let test_series () =
  Alcotest.check_raises "non-positive interval"
    (Invalid_argument "Telemetry.Series: interval must be positive")
    (fun () -> ignore (Telemetry.Series.create ~interval:0 [| "x" |]));
  let s = Telemetry.Series.create ~capacity:3 ~interval:10 [| "a"; "b" |] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Telemetry.Series.sample: column arity mismatch")
    (fun () -> Telemetry.Series.sample s ~cycle:0 ~sm:0 [| 1.0 |]);
  for i = 1 to 5 do
    Telemetry.Series.sample s ~cycle:(i * 10) ~sm:0
      [| float_of_int i; 0.0 |]
  done;
  check Alcotest.int "bounded" 3 (Telemetry.Series.length s);
  check Alcotest.int "dropped counted" 2 (Telemetry.Series.dropped s);
  (match Telemetry.Series.rows s with
   | first :: _ ->
     check Alcotest.int "oldest-first after drop" 30
       first.Telemetry.Series.r_cycle
   | [] -> Alcotest.fail "empty series")

(* --- Trace.Json parser edge cases ------------------------------------------ *)

let parse_ok s =
  match Trace.Json.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "parse %S: %s" s e)

let parse_err s =
  match Trace.Json.of_string s with
  | Ok _ -> Alcotest.fail (Printf.sprintf "parse %S: expected error" s)
  | Error _ -> ()

let test_json_non_finite () =
  (* JSON has no NaN/inf literals; the serializer maps them to null,
     and the round trip must stay parseable. *)
  check Alcotest.string "nan serializes as null" "null"
    (Trace.Json.to_string (Trace.Json.Float Float.nan));
  check Alcotest.string "inf serializes as null" "null"
    (Trace.Json.to_string (Trace.Json.Float Float.infinity));
  (match parse_ok (Trace.Json.to_string (Trace.Json.Float Float.nan)) with
   | Trace.Json.Null -> ()
   | _ -> Alcotest.fail "nan round trip not null");
  (* Number literal discrimination. *)
  (match parse_ok "3" with
   | Trace.Json.Int 3 -> ()
   | _ -> Alcotest.fail "3 should parse as Int");
  (match parse_ok "-2.5e2" with
   | Trace.Json.Float f -> check feq "float literal" (-250.0) f
   | _ -> Alcotest.fail "-2.5e2 should parse as Float")

let test_json_strings () =
  (* Control characters must leave as \u escapes and come back. *)
  let s = "a\x01b\tc\"d\\e" in
  let encoded = Trace.Json.to_string (Trace.Json.Str s) in
  check Alcotest.bool "control char escaped" true
    (contains encoded "\\u0001");
  (match parse_ok encoded with
   | Trace.Json.Str s' -> check Alcotest.string "round trip" s s'
   | _ -> Alcotest.fail "expected string");
  (* Raw (unescaped) control characters are invalid JSON. *)
  parse_err "\"a\x01b\"";
  (* Non-ASCII escapes decode to UTF-8, including surrogate pairs. *)
  (match parse_ok "\"caf\\u00e9\"" with
   | Trace.Json.Str s -> check Alcotest.string "BMP escape" "caf\xc3\xa9" s
   | _ -> Alcotest.fail "expected string");
  (match parse_ok "\"\\ud83d\\ude00\"" with
   | Trace.Json.Str s ->
     check Alcotest.string "surrogate pair" "\xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "expected string");
  (* UTF-8 passes through the serializer byte-for-byte. *)
  (match parse_ok (Trace.Json.to_string (Trace.Json.Str "caf\xc3\xa9")) with
   | Trace.Json.Str s -> check Alcotest.string "utf8 unharmed" "caf\xc3\xa9" s
   | _ -> Alcotest.fail "expected string")

let test_json_errors () =
  parse_err "";
  parse_err "{";
  parse_err "[1,]";
  parse_err "{\"a\":}";
  parse_err "tru";
  parse_err "1 2";
  (* trailing garbage *)
  parse_err "\"unterminated";
  (match parse_ok "{\"a\": [1, {\"b\": null}], \"c\": true}" with
   | Trace.Json.Obj kvs ->
     check Alcotest.int "object arity" 2 (List.length kvs)
   | _ -> Alcotest.fail "expected object")

(* --- Manifest round trip ---------------------------------------------------- *)

let sample_manifest () =
  let h = Telemetry.Hist.create () in
  List.iter (Telemetry.Hist.observe h) [ 2; 4; 9 ];
  { Telemetry.Manifest.m_workload = "sgemm";
    m_variant = "small";
    m_instrument = "none";
    m_seed = 42;
    m_argv = [ "sassi_run"; "run"; "sgemm, with commas \xc3\xa9" ];
    m_wall_time_s = 1.25;
    m_build = Telemetry.Build_info.collect ();
    m_config = [ ("num_sms", 8); ("l1_bytes", 16384) ];
    m_counters = [ ("cycles", 1000); ("l1_hits", 7) ];
    m_metrics = [ ("ipc", 3.5); ("undefined_metric", Float.nan) ];
    m_histograms = [ ("lat", Telemetry.Hist.summarize h) ] }

let test_manifest_roundtrip () =
  let m = sample_manifest () in
  let path = Filename.temp_file "manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.Manifest.write path m;
      match Telemetry.Manifest.read path with
      | Error e -> Alcotest.fail e
      | Ok m' ->
        check Alcotest.string "workload" m.Telemetry.Manifest.m_workload
          m'.Telemetry.Manifest.m_workload;
        check Alcotest.int "seed" 42 m'.Telemetry.Manifest.m_seed;
        check
          Alcotest.(list string)
          "argv with commas and utf8" m.Telemetry.Manifest.m_argv
          m'.Telemetry.Manifest.m_argv;
        check feq "wall time" 1.25 m'.Telemetry.Manifest.m_wall_time_s;
        check
          Alcotest.(list (pair string int))
          "config" m.Telemetry.Manifest.m_config
          m'.Telemetry.Manifest.m_config;
        check
          Alcotest.(list (pair string int))
          "counters" m.Telemetry.Manifest.m_counters
          m'.Telemetry.Manifest.m_counters;
        check feq "ipc metric" 3.5
          (List.assoc "ipc" m'.Telemetry.Manifest.m_metrics);
        (* NaN writes as null and reads back as NaN. *)
        check Alcotest.bool "nan metric survives" true
          (Float.is_nan
             (List.assoc "undefined_metric"
                m'.Telemetry.Manifest.m_metrics));
        (match m'.Telemetry.Manifest.m_histograms with
         | [ (n, s) ] ->
           check Alcotest.string "hist name" "lat" n;
           check Alcotest.int "hist count" 3 s.Telemetry.Hist.s_count;
           check Alcotest.int "hist sum" 15 s.Telemetry.Hist.s_sum
         | _ -> Alcotest.fail "expected one histogram");
        check Alcotest.string "build profile round trip"
          m.Telemetry.Manifest.m_build.Telemetry.Build_info.bi_profile
          m'.Telemetry.Manifest.m_build.Telemetry.Build_info.bi_profile)

let test_manifest_rejects () =
  (match Telemetry.Manifest.of_string "{\"schema\": \"bogus/9\"}" with
   | Error e ->
     check Alcotest.bool "mentions schema" true (contains e "schema")
   | Ok _ -> Alcotest.fail "bogus schema accepted");
  (match Telemetry.Manifest.of_string "[1,2]" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "non-object accepted");
  match Telemetry.Manifest.of_string "{nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid json accepted"

(* --- Compare ---------------------------------------------------------------- *)

let test_compare_direction () =
  check Alcotest.bool "cycles lower better" true
    (Telemetry.Compare.direction "cycles" = Telemetry.Compare.Lower_better);
  check Alcotest.bool "ipc higher better" true
    (Telemetry.Compare.direction "ipc" = Telemetry.Compare.Higher_better);
  check Alcotest.bool "wall time neutral" true
    (Telemetry.Compare.direction "wall_time_s" = Telemetry.Compare.Neutral)

let test_compare_identical () =
  let m = sample_manifest () in
  let r = Telemetry.Compare.diff m m in
  check Alcotest.int "no regressions" 0
    (List.length (Telemetry.Compare.regressions r));
  check Alcotest.int "no improvements" 0
    (List.length (Telemetry.Compare.improvements r))

let test_compare_regression () =
  let a = sample_manifest () in
  let b =
    { a with
      Telemetry.Manifest.m_counters = [ ("cycles", 1100); ("l1_hits", 7) ];
      m_metrics = [ ("ipc", 3.0); ("undefined_metric", Float.nan) ];
      (* wall time moves a lot but must never gate *)
      m_wall_time_s = 10.0 }
  in
  let r = Telemetry.Compare.diff ~threshold:5.0 a b in
  let regs = Telemetry.Compare.regressions r in
  let names = List.map (fun c -> c.Telemetry.Compare.c_name) regs in
  check Alcotest.bool "cycles regressed" true (List.mem "cycles" names);
  check Alcotest.bool "ipc regressed" true (List.mem "ipc" names);
  check Alcotest.bool "wall time never a regression" false
    (List.mem "wall_time_s" names);
  (* Within threshold: a 10% cycle bump is invisible at 15%. *)
  let r2 = Telemetry.Compare.diff ~threshold:15.0 a b in
  check Alcotest.bool "threshold respected" false
    (List.mem "cycles"
       (List.map
          (fun c -> c.Telemetry.Compare.c_name)
          (Telemetry.Compare.regressions r2)));
  let rendered = Telemetry.Compare.render r in
  check Alcotest.bool "render lists regression" true
    (contains rendered "REGRESSION");
  check Alcotest.bool "render shows provenance" true
    (contains rendered "sgemm/small")

(* --- Device integration ------------------------------------------------------ *)

let run_workload ?telemetry name variant =
  let w = Workloads.Registry.find name in
  let device = Gpu.Device.create () in
  let t =
    match telemetry with
    | Some interval -> Some (Cupti.Telemetry.enable ~interval device)
    | None -> None
  in
  let r = w.Workloads.Workload.run device ~variant in
  (match t with Some _ -> Cupti.Telemetry.disable device | None -> ());
  (r, t)

let test_stats_bit_identical () =
  let base, _ = run_workload "parboil/spmv" "small" in
  let telem, t = run_workload ~telemetry:500 "parboil/spmv" "small" in
  check
    Alcotest.(list (pair string int))
    "stats identical with telemetry installed"
    (Gpu.Stats.to_assoc base.Workloads.Workload.stats)
    (Gpu.Stats.to_assoc telem.Workloads.Workload.stats);
  check Alcotest.string "output identical"
    base.Workloads.Workload.output_digest
    telem.Workloads.Workload.output_digest;
  let t = Option.get t in
  let hists = Cupti.Telemetry.histograms t in
  let count name = (List.assoc name hists).Telemetry.Hist.s_count in
  check Alcotest.bool "memory latencies observed" true
    (count "sassi_mem_request_latency_cycles" > 0);
  check Alcotest.int "one transaction count per access"
    (count "sassi_mem_request_latency_cycles")
    (count "sassi_mem_transactions_per_access");
  check Alcotest.bool "branch lanes observed" true
    (count "sassi_branch_active_lanes" > 0);
  check Alcotest.bool "series sampled" true
    (Telemetry.Series.length (Cupti.Telemetry.series t) > 0);
  (* Gauges land in sane ranges. *)
  List.iter
    (fun (row : Telemetry.Series.row) ->
       let occ = row.Telemetry.Series.r_values.(0) in
       let l1 = row.Telemetry.Series.r_values.(2) in
       check Alcotest.bool "occupancy in [0,1]" true (occ >= 0.0 && occ <= 1.0);
       check Alcotest.bool "l1 hit rate in [0,1]" true (l1 >= 0.0 && l1 <= 1.0))
    (Telemetry.Series.rows (Cupti.Telemetry.series t))

let test_handler_sites () =
  let w = Workloads.Registry.find "parboil/sgemm" in
  let device = Gpu.Device.create () in
  let t = Cupti.Telemetry.enable device in
  let r =
    Sassi.Runtime.with_instrumentation device
      [ (Sassi.Select.before [ Sassi.Select.Memory_ops ] [], Sassi.Handler.noop) ]
      (fun _ -> w.Workloads.Workload.run device ~variant:"small")
  in
  Cupti.Telemetry.disable device;
  let sites = Cupti.Telemetry.handler_sites t in
  check Alcotest.bool "at least one site" true (List.length sites > 0);
  let total = List.fold_left (fun a (_, c) -> a + c) 0 sites in
  check Alcotest.int "site counts sum to hcalls"
    r.Workloads.Workload.stats.Gpu.Stats.hcalls total;
  check Alcotest.int "overhead histogram count matches"
    r.Workloads.Workload.stats.Gpu.Stats.hcalls
    (List.assoc "sassi_handler_overhead_cycles"
       (Cupti.Telemetry.histograms t)).Telemetry.Hist.s_count;
  check Alcotest.int "registry counter agrees" total
    (List.assoc "sassi_handler_invocations_total"
       (Cupti.Telemetry.counters t))

let test_enable_guards () =
  let device = Gpu.Device.create () in
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Telemetry.enable: interval must be positive")
    (fun () -> ignore (Cupti.Telemetry.enable ~interval:0 device));
  let _ = Cupti.Telemetry.enable device in
  Alcotest.check_raises "double enable"
    (Invalid_argument "Telemetry.enable: telemetry already enabled")
    (fun () -> ignore (Cupti.Telemetry.enable device));
  Cupti.Telemetry.disable device;
  check Alcotest.bool "disabled" false (Cupti.Telemetry.enabled device)

(* --- Snapshot consistency under concurrent observation ------------------ *)

(* Hist.copy / Registry.snapshot must freeze one point in time: a copy
   taken while another thread observes never moves, and every rendered
   exposition is internally consistent (the +Inf bucket, _count, and
   the bucket sum all agree) no matter how hot the writers are. The
   old exporter read buckets, +Inf, sum, and count at four different
   instants — this is the regression test for that race. *)
let test_snapshot_consistent_under_writes () =
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg ~help:"c" "snap_counter" in
  let h = Telemetry.Registry.histogram reg ~help:"h" "snap_hist" in
  let stop = ref false in
  let writer =
    Thread.create
      (fun () ->
         let i = ref 0 in
         while not !stop do
           incr c;
           Telemetry.Hist.observe h (!i mod 4096);
           incr i;
           if !i mod 64 = 0 then Thread.yield ()
         done)
      ()
  in
  let parse_exposition body =
    (* (value of snap_hist_count, value of the +Inf bucket,
       sum of all finite bucket increments as read from the text) *)
    let lines = String.split_on_char '\n' body in
    let value line =
      match String.rindex_opt line ' ' with
      | Some i ->
        float_of_string (String.sub line (i + 1) (String.length line - i - 1))
      | None -> nan
    in
    let find prefix =
      List.find
        (fun l ->
           String.length l >= String.length prefix
           && String.sub l 0 (String.length prefix) = prefix)
        lines
    in
    (value (find "snap_hist_count"),
     value (find "snap_hist_bucket{le=\"+Inf\"}"))
  in
  for _ = 1 to 50 do
    let count, inf = parse_exposition (Telemetry.Export.prometheus reg) in
    Alcotest.(check (float 0.0))
      "+Inf bucket equals _count in every exposition" count inf
  done;
  (* A snapshot is frozen: later observes never move it. *)
  let snap = Telemetry.Registry.snapshot reg in
  let rendered_before = Telemetry.Export.prometheus snap in
  Thread.delay 0.01;
  let rendered_after = Telemetry.Export.prometheus snap in
  Alcotest.(check string) "snapshot does not move" rendered_before
    rendered_after;
  stop := true;
  Thread.join writer;
  (* Hist.copy is independent in both directions. *)
  let live = Telemetry.Hist.create () in
  Telemetry.Hist.observe live 5;
  let frozen = Telemetry.Hist.copy live in
  Telemetry.Hist.observe live 6;
  Alcotest.(check int) "copy unaffected by later observes" 1
    (Telemetry.Hist.count frozen);
  Alcotest.(check int) "original keeps counting" 2
    (Telemetry.Hist.count live)

let suite =
  [ ( "telemetry",
      [ Alcotest.test_case "hist buckets" `Quick test_hist_buckets;
        Alcotest.test_case "hist quantiles" `Quick test_hist_quantiles;
        Alcotest.test_case "hist edge cases" `Quick test_hist_edge;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "prometheus exposition" `Quick test_prometheus;
        Alcotest.test_case "series" `Quick test_series;
        Alcotest.test_case "json non-finite" `Quick test_json_non_finite;
        Alcotest.test_case "json strings" `Quick test_json_strings;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        Alcotest.test_case "manifest round trip" `Quick
          test_manifest_roundtrip;
        Alcotest.test_case "manifest rejects" `Quick test_manifest_rejects;
        Alcotest.test_case "compare direction" `Quick test_compare_direction;
        Alcotest.test_case "compare identical" `Quick test_compare_identical;
        Alcotest.test_case "compare regression" `Quick
          test_compare_regression;
        Alcotest.test_case "stats bit-identical" `Quick
          test_stats_bit_identical;
        Alcotest.test_case "handler sites" `Quick test_handler_sites;
        Alcotest.test_case "enable guards" `Quick test_enable_guards;
        Alcotest.test_case "snapshot consistent under concurrent writes"
          `Quick test_snapshot_consistent_under_writes ] ) ]
