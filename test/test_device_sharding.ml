(* Intra-device parallelism: Stats.merge algebra and the headline
   contract — sharding a launch's SMs across OCaml domains is
   bit-identical to the sequential path for stats, workload outputs,
   telemetry and PC sampling, with race-prone kernels deterministically
   forced sequential (and counted) by the eligibility scan. *)

let check = Alcotest.check

let assoc = Alcotest.(list (pair string int))

let with_domains d f =
  Gpu.Device.set_default_domains d;
  Fun.protect ~finally:(fun () -> Gpu.Device.set_default_domains 1) f

let run_wl ?(domains = 1) name =
  with_domains domains @@ fun () ->
  let w = Workloads.Registry.find name in
  let device = Gpu.Device.create ~cfg:Gpu.Config.default () in
  let r = w.Workloads.Workload.run device ~variant:w.Workloads.Workload.default_variant in
  (r, Gpu.Device.sharding_fallbacks device)

(* Real, fully populated counter sets for the algebra tests. *)
let stats_of name = (fst (run_wl name)).Workloads.Workload.stats

let copy_stats s =
  let c = Gpu.Stats.create () in
  Gpu.Stats.merge ~into:c s;
  c

(* --- Stats.merge ----------------------------------------------------------- *)

let test_merge_zero_identity () =
  let s = stats_of "parboil/sgemm" in
  (* 0 merge s = s: every counter sums with 0 and cycles is max 0 c. *)
  check assoc "zero is a left identity"
    (Gpu.Stats.to_assoc s)
    (Gpu.Stats.to_assoc (copy_stats s));
  (* s merge 0 = s likewise. *)
  let s' = copy_stats s in
  Gpu.Stats.merge ~into:s' (Gpu.Stats.create ());
  check assoc "zero is a right identity"
    (Gpu.Stats.to_assoc s) (Gpu.Stats.to_assoc s');
  (* 0 merge 0 exercises the setter/to_assoc completeness check on
     both sides without any workload noise. *)
  let z = Gpu.Stats.create () in
  Gpu.Stats.merge ~into:z (Gpu.Stats.create ());
  List.iter
    (fun (name, v) -> check Alcotest.int ("zero " ^ name) 0 v)
    (Gpu.Stats.to_assoc z)

let test_merge_associativity () =
  let a = stats_of "parboil/sgemm"
  and b = stats_of "parboil/spmv"
  and c = stats_of "rodinia/nn" in
  let left =
    let ab = copy_stats a in
    Gpu.Stats.merge ~into:ab b;
    Gpu.Stats.merge ~into:ab c;
    ab
  in
  let right =
    let bc = copy_stats b in
    Gpu.Stats.merge ~into:bc c;
    let abc = copy_stats a in
    Gpu.Stats.merge ~into:abc bc;
    abc
  in
  check assoc "(a+b)+c = a+(b+c)"
    (Gpu.Stats.to_assoc left) (Gpu.Stats.to_assoc right)

let test_merge_covers_every_counter () =
  (* Doubling a populated stats object must double every counter
     except cycles (a max). A counter added to to_assoc without a
     merge rule raises inside merge; one added with a bogus rule
     shows up as a wrong sum here. *)
  let s = stats_of "parboil/sgemm" in
  let d = copy_stats s in
  Gpu.Stats.merge ~into:d s;
  List.iter2
    (fun (name, v) (name', v2) ->
      check Alcotest.string "counter order stable" name name';
      if String.equal name "cycles" then
        check Alcotest.int "cycles merges as max" v v2
      else check Alcotest.int (name ^ " merges as sum") (2 * v) v2)
    (Gpu.Stats.to_assoc s) (Gpu.Stats.to_assoc d)

(* --- Sequential vs sharded ------------------------------------------------- *)

let observed (r : Workloads.Workload.result) =
  ( r.Workloads.Workload.output_digest,
    r.Workloads.Workload.stdout,
    r.Workloads.Workload.launches,
    Gpu.Stats.to_assoc r.Workloads.Workload.stats )

let test_registry_bit_identity () =
  (* Every registered workload, default variant, domains 1 vs 2 vs 4:
     output digest, summary, launch count and the full counter set
     must match bit for bit — whether the kernels shard or fall back. *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let name = w.Workloads.Workload.suite ^ "/" ^ w.Workloads.Workload.name in
      let base, _ = run_wl name in
      List.iter
        (fun d ->
          let r, _ = run_wl ~domains:d name in
          check
            Alcotest.(pair (pair string string) (pair int assoc))
            (Printf.sprintf "%s: domains %d == sequential" name d)
            (let dg, out, l, st = observed base in ((dg, out), (l, st)))
            (let dg, out, l, st = observed r in ((dg, out), (l, st))))
        [ 2; 4 ])
    Workloads.Registry.all

let test_atomic_kernel_falls_back () =
  (* histo's cross-block atomic increments make every launch
     ineligible; the fallback is counted and the results still match
     the sequential path exactly. *)
  let seq, fb_seq = run_wl "parboil/histo" in
  let sh, fb_sh = run_wl ~domains:4 "parboil/histo" in
  check Alcotest.bool "fallbacks counted" true (fb_sh > 0);
  check Alcotest.int "fallback count matches sequential mode" fb_seq fb_sh;
  check assoc "stats identical across the fallback"
    (Gpu.Stats.to_assoc seq.Workloads.Workload.stats)
    (Gpu.Stats.to_assoc sh.Workloads.Workload.stats);
  check Alcotest.string "output identical across the fallback"
    seq.Workloads.Workload.output_digest sh.Workloads.Workload.output_digest

let test_plain_store_hazard_falls_back () =
  (* lud updates its matrix in place: one block reads cells another
     block wrote through the *same* pointer, with no atomics in
     sight. The alias scan must force it sequential. *)
  let _, fb = run_wl ~domains:4 "rodinia/lud" in
  check Alcotest.bool "in-place kernel forced sequential" true (fb > 0)

let test_disjoint_kernel_stays_eligible () =
  (* sgemm reads a/b and writes c — disjoint parameters — so the scan
     must NOT fall back, or sharding would never engage. The shared
     integer parameter n flows into both load and store addresses
     through scaling ops; this guards the scan's precision. *)
  let _, fb = run_wl ~domains:4 "parboil/sgemm" in
  check Alcotest.int "sgemm shards (no fallback)" 0 fb

let test_observation_sinks_bit_identical () =
  (* Telemetry histograms/counters and PC-sampling stall totals under
     sharding vs sequential, on a kernel that actually shards. *)
  let observe domains =
    with_domains domains @@ fun () ->
    let w = Workloads.Registry.find "parboil/sgemm" in
    let device = Gpu.Device.create ~cfg:Gpu.Config.default () in
    let tele = Cupti.Telemetry.enable device in
    let sampler = Cupti.Pc_sampling.enable device in
    let r =
      w.Workloads.Workload.run device
        ~variant:w.Workloads.Workload.default_variant
    in
    ( Gpu.Stats.to_assoc r.Workloads.Workload.stats,
      Cupti.Telemetry.counters tele,
      Cupti.Telemetry.histograms tele,
      Array.to_list (Prof.Pc_sampling.stall_totals sampler),
      Prof.Pc_sampling.total_samples sampler )
  in
  let st1, c1, h1, p1, n1 = observe 1 in
  let st4, c4, h4, p4, n4 = observe 4 in
  check assoc "stats" st1 st4;
  check assoc "telemetry counters" c1 c4;
  check Alcotest.bool "telemetry histograms" true (h1 = h4);
  check Alcotest.(list int) "pc-sampling stall totals" p1 p4;
  check Alcotest.int "pc-sampling total samples" n1 n4

let test_domain_validation () =
  Alcotest.check_raises "set_default_domains rejects 0"
    (Invalid_argument "Device.set_default_domains: must be >= 1")
    (fun () -> Gpu.Device.set_default_domains 0);
  Alcotest.check_raises "create rejects domains 0"
    (Invalid_argument "Device.create: domains must be >= 1")
    (fun () -> ignore (Gpu.Device.create ~domains:0 ()))

let suite =
  [ ( "device-sharding",
      [ Alcotest.test_case "Stats.merge: zero identity" `Quick
          test_merge_zero_identity;
        Alcotest.test_case "Stats.merge: associativity" `Quick
          test_merge_associativity;
        Alcotest.test_case "Stats.merge: covers every counter" `Quick
          test_merge_covers_every_counter;
        Alcotest.test_case "registry bit-identity at domains 1/2/4" `Slow
          test_registry_bit_identity;
        Alcotest.test_case "atomic kernel falls back, counted" `Quick
          test_atomic_kernel_falls_back;
        Alcotest.test_case "plain-store hazard falls back" `Quick
          test_plain_store_hazard_falls_back;
        Alcotest.test_case "disjoint-pointer kernel stays eligible" `Quick
          test_disjoint_kernel_stays_eligible;
        Alcotest.test_case "telemetry and sampling sinks identical" `Quick
          test_observation_sinks_bit_identical;
        Alcotest.test_case "domain count validation" `Quick
          test_domain_validation ] ) ]
