(* Tests for the kernel language and backend compiler: typechecking,
   lowering, optimization, register allocation (with forced spills),
   and end-to-end execution equivalence across compiler configurations. *)

open Kernel
open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

let run_kernel ?options dev k ~grid ~block ~args =
  let compiled = Compile.compile ?options k in
  Gpu.Device.launch dev ~kernel:compiled ~grid ~block ~args

(* --- Typecheck ---------------------------------------------------------- *)

let test_typecheck_ok () =
  let k =
    kernel "tc_ok" ~params:[ ptr "out"; int "n" ] (fun p ->
        [ let_ "gid" (global_tid_x ());
          exit_if (v "gid" >=! p 1);
          st_global (p 0 +! (v "gid" <<! int_ 2)) (v "gid") ])
  in
  check Alcotest.bool "ok" true (Result.is_ok (Typecheck.check k))

let expect_type_error k =
  match Typecheck.check k with
  | Ok () -> Alcotest.fail "expected a type error"
  | Error _ -> ()

let test_typecheck_errors () =
  expect_type_error
    (kernel "unbound" ~params:[] (fun _ -> [ st_global (v "nope") (int_ 0) ]));
  expect_type_error
    (kernel "badparam" ~params:[ ptr "a" ] (fun _ ->
         [ st_global (Ast.Param 3) (int_ 0) ]));
  expect_type_error
    (kernel "booll" ~params:[] (fun _ ->
         [ Ast.Let ("b", Ast.Bool, int_ 0 <! int_ 1) ]));
  expect_type_error
    (kernel "mixed" ~params:[] (fun _ ->
         [ let_ "x" (int_ 1 +! f32 2.0) ]));
  expect_type_error
    (kernel "storeparam" ~params:[ ptr "a" ] (fun p ->
         [ Ast.Store (Sass.Opcode.Param, p 0, int_ 0) ]));
  expect_type_error
    (kernel "setunbound" ~params:[] (fun _ -> [ set "q" (int_ 1) ]));
  expect_type_error
    (kernel "dup" ~params:[] (fun _ ->
         [ let_ "x" (int_ 0); let_ "x" (int_ 1) ]));
  expect_type_error
    (kernel "ifcond" ~params:[] (fun _ -> [ when_ (Ast.Int 1) [] ]))

(* --- End-to-end compilation + execution -------------------------------- *)

let vadd =
  kernel "dsl_vadd" ~params:[ ptr "a"; ptr "b"; ptr "out"; int "n" ] (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 3);
        let_ "off" (v "gid" <<! int_ 2);
        let_ "s" (ldg (p 0 +! v "off") +! ldg (p 1 +! v "off"));
        st_global (p 2 +! v "off") (v "s") ])

let test_compiled_vadd () =
  let dev = device () in
  let n = 500 in
  let a = Gpu.Device.malloc dev (4 * n) in
  let b = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i));
  Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> 1000 + i));
  let _ =
    run_kernel dev vadd
      ~grid:((n + 63) / 64, 1)
      ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr out;
              Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  for idx = 0 to n - 1 do
    if result.(idx) <> 1000 + (2 * idx) then
      Alcotest.failf "out[%d] = %d" idx result.(idx)
  done

let test_control_flow () =
  (* out[i] = if i mod 3 = 0 then sum(0..i) else i*i, with a while loop *)
  let k =
    kernel "ctl" ~params:[ ptr "out"; int "n" ] (fun p ->
        [ let_ "gid" (global_tid_x ());
          exit_if (v "gid" >=! p 1);
          let_ "r" (int_ 0);
          if_ (v "gid" %! int_ 3 ==! int_ 0)
            [ let_ "i" (int_ 0);
              while_ (v "i" <=! v "gid")
                [ set "r" (v "r" +! v "i");
                  set "i" (v "i" +! int_ 1) ] ]
            [ set "r" (v "gid" *! v "gid") ];
          st_global (p 0 +! (v "gid" <<! int_ 2)) (v "r") ])
  in
  let dev = device () in
  let n = 200 in
  let out = Gpu.Device.malloc dev (4 * n) in
  let _ =
    run_kernel dev k ~grid:(4, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr out; Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  for i = 0 to n - 1 do
    let expected = if i mod 3 = 0 then i * (i + 1) / 2 else i * i in
    if result.(i) <> expected then
      Alcotest.failf "ctl out[%d] = %d, want %d" i result.(i) expected
  done

let test_for_loop_and_floats () =
  (* out[i] = sum_{j<8} (i + j) * 0.5 *)
  let k =
    kernel "floats" ~params:[ ptr "out"; int "n" ] (fun p ->
        [ let_ "gid" (global_tid_x ());
          exit_if (v "gid" >=! p 1);
          let_f "acc" (f32 0.0);
          for_ "j" (int_ 0) (int_ 8)
            [ set "acc" (v "acc" +.. (i2f (v "gid" +! v "j") *.. f32 0.5)) ];
          st_global_f (p 0 +! (v "gid" <<! int_ 2)) (v "acc") ])
  in
  let dev = device () in
  let n = 64 in
  let out = Gpu.Device.malloc dev (4 * n) in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr out; Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_f32s dev ~addr:out ~n in
  for i = 0 to n - 1 do
    let expected = ref 0.0 in
    for j = 0 to 7 do
      expected := !expected +. (float_of_int (i + j) *. 0.5)
    done;
    check (Alcotest.float 1e-4) (Printf.sprintf "f[%d]" i) !expected result.(i)
  done

let test_shared_and_atomics () =
  (* Block-wide reduction into a global counter via shared memory. *)
  let k =
    kernel "reduce" ~params:[ ptr "data"; ptr "total"; int "n" ]
      ~shared:[ ("acc", 4) ]
      (fun p ->
        [ let_ "gid" (global_tid_x ());
          when_ (tid_x ==! int_ 0) [ st_shared (shared_base "acc") (int_ 0) ];
          sync;
          when_ (v "gid" <! p 2)
            [ atomic_add_shared (shared_base "acc")
                (ldg (p 0 +! (v "gid" <<! int_ 2))) ];
          sync;
          when_ (tid_x ==! int_ 0)
            [ atomic_add (p 1) (lds (shared_base "acc")) ] ])
  in
  let dev = device () in
  let n = 256 in
  let data = Gpu.Device.malloc dev (4 * n) in
  let total = Gpu.Device.malloc dev 4 in
  Gpu.Device.write_i32s dev ~addr:data (Array.init n (fun i -> i + 1));
  let _ =
    run_kernel dev k ~grid:(4, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr data; Gpu.Device.Ptr total; Gpu.Device.I32 n ]
  in
  check Alcotest.int "sum 1..256" (n * (n + 1) / 2)
    (Gpu.Device.read_i32 dev total)

(* Force spilling with a register-pressure kernel and check that the
   result matches the unconstrained compilation. *)
let pressure_kernel =
  kernel "pressure" ~params:[ ptr "out"; int "n" ] (fun p ->
      let decls =
        List.init 24 (fun i ->
            let_ (Printf.sprintf "x%d" i)
              ((v "gid" *! int_ (i + 1)) +! int_ (i * i)))
      in
      let total =
        List.fold_left
          (fun acc i -> acc +! v (Printf.sprintf "x%d" i))
          (int_ 0)
          (List.init 24 (fun i -> i))
      in
      [ let_ "gid" (global_tid_x ()); exit_if (v "gid" >=! p 1) ]
      @ decls
      @ [ st_global (p 0 +! (v "gid" <<! int_ 2)) total ])

let run_pressure ?options () =
  let dev = device () in
  let n = 128 in
  let out = Gpu.Device.malloc dev (4 * n) in
  let _ =
    run_kernel ?options dev pressure_kernel ~grid:(2, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr out; Gpu.Device.I32 n ]
  in
  Gpu.Device.read_i32s dev ~addr:out ~n

let test_spilling_correct () =
  let unconstrained = run_pressure () in
  let constrained =
    run_pressure ~options:{ Compile.max_regs = 12; Compile.opt_level = 1 } ()
  in
  check (Alcotest.array Alcotest.int) "spilled = unspilled" unconstrained
    constrained;
  (* Verify the constrained compile really spills. *)
  let k =
    Compile.compile ~options:{ Compile.max_regs = 12; Compile.opt_level = 1 }
      pressure_kernel
  in
  check Alcotest.bool "has frame" true (k.Sass.Program.frame_bytes > 0);
  let has_spill =
    Array.exists
      (fun i -> Sass.Opcode.is_spill_or_fill i.Sass.Instr.op)
      k.Sass.Program.instrs
  in
  check Alcotest.bool "emits STL/LDL" true has_spill

let test_opt_levels_equivalent () =
  let o0 = run_pressure ~options:{ Compile.max_regs = 63; opt_level = 0 } () in
  let o1 = run_pressure ~options:{ Compile.max_regs = 63; opt_level = 1 } () in
  check (Alcotest.array Alcotest.int) "O0 = O1" o0 o1

let test_opt_reduces_instructions () =
  let k0 = Compile.compile ~options:{ Compile.max_regs = 63; opt_level = 0 } vadd in
  let k1 = Compile.compile ~options:{ Compile.max_regs = 63; opt_level = 1 } vadd in
  check Alcotest.bool "O1 smaller" true
    (Sass.Program.instruction_count k1 < Sass.Program.instruction_count k0)

let test_constant_folding () =
  let items =
    [| Vir.ins Sass.Opcode.IADD ~dsts:[ 0 ] ~srcs:[ Vir.VImm 2; Vir.VImm 3 ];
       Vir.ins (Sass.Opcode.ST (Sass.Opcode.Global, Sass.Opcode.W32))
         ~srcs:[ Vir.VImm 0; Vir.VImm 0; Vir.VReg 0 ];
       Vir.ins Sass.Opcode.EXIT |]
  in
  let folded = Opt.constant_fold items in
  (match folded.(0) with
   | Vir.Ins { Vir.vop = Sass.Opcode.MOV; vsrcs = [ Vir.VImm 5 ]; _ } -> ()
   | _ -> Alcotest.fail "IADD 2 3 not folded to MOV 5")

let test_dce_removes_dead () =
  let items =
    [| Vir.ins Sass.Opcode.MOV ~dsts:[ 0 ] ~srcs:[ Vir.VImm 1 ];
       Vir.ins Sass.Opcode.MOV ~dsts:[ 1 ] ~srcs:[ Vir.VImm 2 ];
       Vir.ins (Sass.Opcode.ST (Sass.Opcode.Global, Sass.Opcode.W32))
         ~srcs:[ Vir.VImm 0; Vir.VImm 0; Vir.VReg 0 ];
       Vir.ins Sass.Opcode.EXIT |]
  in
  let after = Opt.dead_code_eliminate items in
  check Alcotest.int "dead MOV removed" 3 (Array.length after)

let test_ffs_sequence () =
  (* __ffs via BREV/FLO lowering, against the reference. *)
  let k =
    kernel "ffsk" ~params:[ ptr "inp"; ptr "out"; int "n" ] (fun p ->
        [ let_ "gid" (global_tid_x ());
          exit_if (v "gid" >=! p 2);
          let_ "off" (v "gid" <<! int_ 2);
          st_global (p 1 +! v "off") (ffs (ldg (p 0 +! v "off"))) ])
  in
  let dev = device () in
  let inputs = [| 0; 1; 2; 0x80000000; 0xFFFFFFFF; 0x20; 0x30; 12345 |] in
  let n = Array.length inputs in
  let inp = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:inp inputs;
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr inp; Gpu.Device.Ptr out; Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  Array.iteri
    (fun i x ->
       check Alcotest.int (Printf.sprintf "ffs(0x%x)" x) (Gpu.Value.ffs x)
         result.(i))
    inputs

let test_select_and_compare () =
  let k =
    kernel "sel" ~params:[ ptr "out"; int "n" ] (fun p ->
        [ let_ "gid" (global_tid_x ());
          exit_if (v "gid" >=! p 1);
          let_ "r"
            (select
               ((v "gid" %! int_ 2 ==! int_ 0) &&? (v "gid" <! int_ 20))
               (v "gid" *! int_ 10)
               (int_ 0 -! v "gid"));
          st_global (p 0 +! (v "gid" <<! int_ 2)) (v "r") ])
  in
  let dev = device () in
  let n = 40 in
  let out = Gpu.Device.malloc dev (4 * n) in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr out; Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  for i = 0 to n - 1 do
    let expected =
      if i mod 2 = 0 && i < 20 then i * 10 else Gpu.Value.of_signed (-i)
    in
    check Alcotest.int (Printf.sprintf "sel[%d]" i) expected result.(i)
  done

(* --- QCheck: random arithmetic expressions compile and evaluate
   to the same value as a host-side reference interpreter. ------------- *)

let rec host_eval gid e =
  match e with
  | Ast.Int n -> n land Gpu.Value.mask
  | Ast.Var "gid" -> gid
  | Ast.Ibin (op, a, b) ->
    let va = host_eval gid a and vb = host_eval gid b in
    (match op with
     | Ast.Add -> Gpu.Value.add va vb
     | Ast.Sub -> Gpu.Value.sub va vb
     | Ast.Mul -> Gpu.Value.mul va vb
     | Ast.Min -> Gpu.Value.min_max ~cmp:Sass.Opcode.Lt va vb
     | Ast.Max -> Gpu.Value.min_max ~cmp:Sass.Opcode.Gt va vb
     | Ast.And -> va land vb
     | Ast.Or -> va lor vb
     | Ast.Xor -> va lxor vb
     | Ast.Shl -> Gpu.Value.shl va (vb land 7)
     | _ -> assert false)
  | _ -> assert false

let gen_arith_exp =
  let open QCheck.Gen in
  let leaf =
    oneof [ map (fun n -> Ast.Int n) (int_bound 1000); return (Ast.Var "gid") ]
  in
  let op =
    oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Min; Ast.Max; Ast.And; Ast.Or;
             Ast.Xor ]
  in
  fix
    (fun self depth ->
       if depth = 0 then leaf
       else
         frequency
           [ (1, leaf);
             (3,
              map3
                (fun o a b -> Ast.Ibin (o, a, b))
                op (self (depth - 1)) (self (depth - 1))) ])
    3

let prop_compiled_arith_matches_reference =
  QCheck.Test.make ~name:"compiled arithmetic matches host reference"
    ~count:60
    (QCheck.make gen_arith_exp)
    (fun e ->
       let k =
         kernel "qarith" ~params:[ ptr "out" ] (fun p ->
             [ let_ "gid" (global_tid_x ());
               st_global (p 0 +! (v "gid" <<! int_ 2)) e ])
       in
       let dev = device () in
       let out = Gpu.Device.malloc dev (4 * 32) in
       let _ =
         run_kernel dev k ~grid:(1, 1) ~block:(32, 1)
           ~args:[ Gpu.Device.Ptr out ]
       in
       let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
       let ok = ref true in
       for gid = 0 to 31 do
         if result.(gid) <> host_eval gid e then ok := false
       done;
       !ok)

let prop_opt_equivalence =
  QCheck.Test.make ~name:"opt levels agree on random arithmetic" ~count:40
    (QCheck.make gen_arith_exp)
    (fun e ->
       let k =
         kernel "qopt" ~params:[ ptr "out" ] (fun p ->
             [ let_ "gid" (global_tid_x ());
               st_global (p 0 +! (v "gid" <<! int_ 2)) e ])
       in
       let run lvl =
         let dev = device () in
         let out = Gpu.Device.malloc dev (4 * 32) in
         let _ =
           run_kernel
             ~options:{ Compile.max_regs = 63; opt_level = lvl }
             dev k ~grid:(1, 1) ~block:(32, 1)
             ~args:[ Gpu.Device.Ptr out ]
         in
         Gpu.Device.read_i32s dev ~addr:out ~n:32
       in
       run 0 = run 1)

(* --- CSE ---------------------------------------------------------------- *)

let test_cse_collapses_s2r () =
  (* Lowering emits one S2R per Special use; CSE must collapse them. *)
  let k =
    kernel "cse_s2r" ~params:[ ptr "out" ] (fun p ->
        [ st_global (p 0 +! (tid_x <<! int_ 2)) (tid_x +! tid_x) ])
  in
  let count_s2r items =
    Array.fold_left
      (fun a it ->
         match it with
         | Kernel.Vir.Ins { Kernel.Vir.vop = Sass.Opcode.S2R _; _ } -> a + 1
         | _ -> a)
      0 items
  in
  let o0 = Compile.compile_vir ~options:{ Compile.max_regs = 63; opt_level = 0 } k in
  let o1 = Compile.compile_vir k in
  check Alcotest.bool "O0 has several S2R" true (count_s2r o0 >= 3);
  check Alcotest.int "O1 has one S2R" 1 (count_s2r o1)

let test_cse_respects_redefinition () =
  (* x + 1 computed, x changed, x + 1 again: must NOT be merged. *)
  let k =
    kernel "cse_redef" ~params:[ ptr "out" ] (fun p ->
        [ let_ "x" tid_x;
          let_ "a" (v "x" +! int_ 1);
          set "x" (v "x" *! int_ 3);
          let_ "b" (v "x" +! int_ 1);
          st_global (p 0 +! (tid_x <<! int_ 2)) (v "a" *! int_ 1000 +! v "b") ])
  in
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(32, 1) ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    let expected = ((t + 1) * 1000) + ((t * 3) + 1) in
    check Alcotest.int (Printf.sprintf "cse[%d]" t) expected result.(t)
  done

let cse_suite =
  ("kernel.cse",
   [ Alcotest.test_case "collapses S2R" `Quick test_cse_collapses_s2r;
     Alcotest.test_case "respects redefinition" `Quick
       test_cse_respects_redefinition ])

(* --- Remaining DSL surface: bytes, unsigned ops, shuffles, MUFU -------- *)

let test_byte_loads_stores () =
  let dev = device () in
  let inp = Gpu.Device.malloc dev 64 in
  let out = Gpu.Device.malloc dev (4 * 32) in
  (* Bytes 0..31 hold tid*5 land 0xFF via Store8, then Load8 them back
     into words. *)
  let k =
    kernel "bytes" ~params:[ ptr "buf"; ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          st_global8 (p 0 +! v "t") ((v "t" *! int_ 5) &! int_ 0xFF);
          sync;
          st_global (p 1 +! (v "t" <<! int_ 2)) (ldg8 (p 0 +! v "t")) ])
  in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr inp; Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    check Alcotest.int (Printf.sprintf "byte %d" t) (t * 5 land 0xFF)
      result.(t)
  done

let test_unsigned_div_rem () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  (* 0xFFFFFFF0 udiv 3 differs from signed division. *)
  let k =
    kernel "udivk" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          let_ "x" (int_ 0xFFFFFFF0 +! v "t");
          st_global (p 0 +! (v "t" <<! int_ 2))
            (udiv (v "x") (int_ 3) +! urem (v "x") (int_ 7)) ])
  in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(8, 1) ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:8 in
  for t = 0 to 7 do
    let x = (0xFFFFFFF0 + t) land 0xFFFFFFFF in
    check Alcotest.int (Printf.sprintf "u %d" t) ((x / 3) + (x mod 7))
      result.(t)
  done

let test_shfl_variants () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 96) in
  let k =
    kernel "shflv" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          st_global (p 0 +! (v "t" <<! int_ 2)) (shfl_up (v "t") (int_ 1));
          st_global (p 0 +! int_ 128 +! (v "t" <<! int_ 2))
            (shfl_down (v "t") (int_ 2));
          st_global (p 0 +! int_ 256 +! (v "t" <<! int_ 2))
            (shfl_bfly (v "t") (int_ 1)) ])
  in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(32, 1) ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:96 in
  for t = 0 to 31 do
    let up = if t - 1 < 0 then t else t - 1 in
    let down = if t + 2 > 31 then t else t + 2 in
    check Alcotest.int (Printf.sprintf "up %d" t) up result.(t);
    check Alcotest.int (Printf.sprintf "down %d" t) down result.(32 + t);
    check Alcotest.int (Printf.sprintf "bfly %d" t) (t lxor 1) result.(64 + t)
  done

let test_mufu_vs_host () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "mufuk" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          let_f "x" (i2f (v "t" +! int_ 1) *.. f32 0.25);
          st_global_f (p 0 +! (v "t" <<! int_ 2))
            (sqrt_ (v "x") +.. exp2 (v "x" *.. f32 0.5)
             +.. log2 (v "x" +.. f32 1.0)) ])
  in
  let _ =
    run_kernel dev k ~grid:(1, 1) ~block:(32, 1) ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_f32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    let f32 x = Gpu.Value.f32_of_bits (Gpu.Value.bits_of_f32 x) in
    let x = f32 (float_of_int (t + 1) *. 0.25) in
    let expected =
      f32 (f32 (f32 (sqrt x) +. f32 (Float.exp2 (f32 (x *. 0.5))))
           +. f32 (Float.log2 (f32 (x +. 1.0))))
    in
    check (Alcotest.float 1e-4) (Printf.sprintf "mufu %d" t) expected
      result.(t)
  done

let surface_suite =
  ("kernel.surface",
   [ Alcotest.test_case "byte load/store" `Quick test_byte_loads_stores;
     Alcotest.test_case "unsigned div/rem" `Quick test_unsigned_div_rem;
     Alcotest.test_case "shfl variants" `Quick test_shfl_variants;
     Alcotest.test_case "mufu vs host" `Quick test_mufu_vs_host ])

(* --- Content-addressed compile cache ------------------------------------ *)

(* Every cache test brackets with disable so the global cache never
   leaks into the other suites (compile consults it unconditionally). *)
let with_cache ?max_bytes f =
  Cache.enable ?max_bytes ();
  Fun.protect ~finally:Cache.disable f

let test_cache_hit_bit_identical () =
  with_cache (fun () ->
      let cold = Compile.compile vadd in
      let warm = Compile.compile vadd in
      let s = Cache.stats () in
      check Alcotest.int "one miss (cold)" 1 s.Cache.c_misses;
      check Alcotest.int "one hit (warm)" 1 s.Cache.c_hits;
      (* Bit-identical emitted SASS, and identical execution. *)
      check Alcotest.bool "instruction streams identical" true
        (cold.Sass.Program.instrs = warm.Sass.Program.instrs);
      check Alcotest.bool "fresh array spine on every hit" true
        (not (cold.Sass.Program.instrs == warm.Sass.Program.instrs));
      let run compiled =
        let dev = device () in
        let n = 8 in
        let a = Gpu.Device.malloc dev (4 * n) in
        let b = Gpu.Device.malloc dev (4 * n) in
        let out = Gpu.Device.malloc dev (4 * n) in
        Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i));
        Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> 100 + i));
        let _ =
          Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(n, 1)
            ~args:
              [ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr out;
                Gpu.Device.I32 n ]
        in
        Gpu.Device.read_i32s dev ~addr:out ~n
      in
      check Alcotest.(array int) "cached kernel computes the same result"
        (run cold) (run warm))

let test_cache_distinguishes_options () =
  with_cache (fun () ->
      let o0 = { Compile.max_regs = 63; opt_level = 0 } in
      let o1 = { Compile.max_regs = 63; opt_level = 1 } in
      check Alcotest.bool "options are part of the key" true
        (Cache.key ~max_regs:63 ~opt_level:0 vadd
         <> Cache.key ~max_regs:63 ~opt_level:1 vadd);
      ignore (Compile.compile ~options:o0 vadd);
      ignore (Compile.compile ~options:o1 vadd);
      let s = Cache.stats () in
      check Alcotest.int "different options never collide" 2 s.Cache.c_misses;
      check Alcotest.int "no false hit" 0 s.Cache.c_hits)

let test_cache_caller_mutation_safe () =
  with_cache (fun () ->
      let first = Compile.compile vadd in
      (* A caller scribbling over its copy (instruction rewriters do
         this) must never reach the cached entry. *)
      first.Sass.Program.instrs.(0) <-
        first.Sass.Program.instrs.(Array.length first.Sass.Program.instrs - 1);
      let second = Compile.compile vadd in
      check Alcotest.bool "cached entry unaffected by caller mutation" true
        (second.Sass.Program.instrs.(0) <> first.Sass.Program.instrs.(0)))

let test_cache_lru_eviction () =
  (* Budget sized for roughly one kernel: storing a second must evict
     the least recently used first. *)
  let probe = Compile.compile vadd in
  ignore probe;
  with_cache (fun () ->
      ignore (Compile.compile vadd);
      let one = Cache.stats () in
      check Alcotest.int "one resident entry" 1 one.Cache.c_entries;
      let budget = one.Cache.c_bytes + one.Cache.c_bytes / 2 in
      Cache.enable ~max_bytes:budget ();
      ignore (Compile.compile vadd);
      ignore (Compile.compile ~options:{ Compile.max_regs = 63; opt_level = 0 }
                vadd);
      let s = Cache.stats () in
      check Alcotest.bool "eviction happened" true (s.Cache.c_evictions >= 1);
      check Alcotest.bool "bytes stay under budget" true
        (s.Cache.c_bytes <= budget);
      (* The evicted (older) variant misses again; the resident hits. *)
      ignore (Compile.compile ~options:{ Compile.max_regs = 63; opt_level = 0 }
                vadd);
      let s2 = Cache.stats () in
      check Alcotest.int "survivor still hits" (s.Cache.c_hits + 1)
        s2.Cache.c_hits)

let test_cache_disabled_is_invisible () =
  Cache.disable ();
  let before = Cache.stats () in
  ignore (Compile.compile vadd);
  ignore (Compile.compile vadd);
  let after = Cache.stats () in
  check Alcotest.int "no misses counted while disabled" before.Cache.c_misses
    after.Cache.c_misses;
  check Alcotest.int "no hits while disabled" before.Cache.c_hits
    after.Cache.c_hits;
  check Alcotest.int "nothing resident" 0 after.Cache.c_entries

let test_cache_telemetry_series () =
  with_cache (fun () ->
      ignore (Compile.compile vadd);
      ignore (Compile.compile vadd);
      let reg = Telemetry.Registry.create () in
      Cache.register_telemetry reg;
      let text = Telemetry.Export.prometheus reg in
      List.iter
        (fun needle ->
           check Alcotest.bool (needle ^ " exposed") true
             (let n = String.length needle and h = String.length text in
              let rec go i =
                i + n <= h && (String.sub text i n = needle || go (i + 1))
              in
              go 0))
        [ "sassi_cache_hits_total 1"; "sassi_cache_misses_total 1";
          "sassi_cache_evictions_total 0"; "sassi_cache_entries 1" ])

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [ ("kernel.typecheck",
     [ Alcotest.test_case "accepts valid" `Quick test_typecheck_ok;
       Alcotest.test_case "rejects invalid" `Quick test_typecheck_errors ]);
    ("kernel.compile",
     [ Alcotest.test_case "vadd end-to-end" `Quick test_compiled_vadd;
       Alcotest.test_case "control flow" `Quick test_control_flow;
       Alcotest.test_case "for + floats" `Quick test_for_loop_and_floats;
       Alcotest.test_case "shared + atomics" `Quick test_shared_and_atomics;
       Alcotest.test_case "ffs lowering" `Quick test_ffs_sequence;
       Alcotest.test_case "select + logic" `Quick test_select_and_compare;
       qt prop_compiled_arith_matches_reference ]);
    ("kernel.regalloc",
     [ Alcotest.test_case "spilling correct" `Quick test_spilling_correct ]);
    ("kernel.opt",
     [ Alcotest.test_case "levels equivalent" `Quick test_opt_levels_equivalent;
       Alcotest.test_case "O1 reduces size" `Quick test_opt_reduces_instructions;
       Alcotest.test_case "constant folding" `Quick test_constant_folding;
       Alcotest.test_case "dce" `Quick test_dce_removes_dead;
       qt prop_opt_equivalence ]);
    ("kernel.cache",
     [ Alcotest.test_case "hit is bit-identical" `Quick
         test_cache_hit_bit_identical;
       Alcotest.test_case "options are part of the key" `Quick
         test_cache_distinguishes_options;
       Alcotest.test_case "caller mutation cannot corrupt" `Quick
         test_cache_caller_mutation_safe;
       Alcotest.test_case "LRU eviction under byte budget" `Quick
         test_cache_lru_eviction;
       Alcotest.test_case "disabled cache is invisible" `Quick
         test_cache_disabled_is_invisible;
       Alcotest.test_case "telemetry series" `Quick
         test_cache_telemetry_series ]);
    cse_suite;
    surface_suite ]
