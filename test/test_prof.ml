(* Tests for the profiling layer: Stats.to_assoc, the derived-metrics
   engine (formulas on hand-built counters, registry completeness),
   PC-sampling lifecycle and zero-perturbation, the sampled-vs-exact
   hotspot acceptance criterion, report formats (text/CSV/JSON
   through the shared serializer), and Counters.zero_on_launch. *)

open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

let feq = Alcotest.float 1e-9

let contains hay needle =
  try
    ignore (Str.search_forward (Str.regexp_string needle) hay 0);
    true
  with Not_found -> false

(* --- Stats.to_assoc -------------------------------------------------------- *)

let test_stats_to_assoc () =
  let s = Gpu.Stats.create () in
  s.Gpu.Stats.cycles <- 7;
  s.Gpu.Stats.gld_requested_bytes <- 11;
  s.Gpu.Stats.resident_warp_cycles <- 13;
  let assoc = Gpu.Stats.to_assoc s in
  let names = List.map fst assoc in
  check Alcotest.int "one entry per counter"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  check Alcotest.int "cycles" 7 (List.assoc "cycles" assoc);
  check Alcotest.int "gld_requested_bytes" 11
    (List.assoc "gld_requested_bytes" assoc);
  check Alcotest.int "resident_warp_cycles" 13
    (List.assoc "resident_warp_cycles" assoc);
  check Alcotest.int "untouched counters zero" 0
    (List.assoc "l2_misses" assoc);
  (* pp is derived from to_assoc, so every counter name appears. *)
  let pp = Format.asprintf "%a" Gpu.Stats.pp s in
  List.iter
    (fun (n, _) ->
       check Alcotest.bool ("pp mentions " ^ n) true (contains pp (n ^ "=")))
    assoc

(* --- Metric formulas -------------------------------------------------------- *)

let env_of ?sampling stats =
  { Prof.Metrics.stats; cfg = Gpu.Config.default; sampling }

let compute_scalar name env =
  match Prof.Metrics.find name with
  | None -> Alcotest.fail ("metric not in registry: " ^ name)
  | Some m ->
    (match Prof.Metrics.compute env m with
     | Some (Prof.Metrics.Scalar v) -> v
     | Some (Prof.Metrics.Breakdown _) ->
       Alcotest.fail (name ^ ": expected scalar")
     | None -> Alcotest.fail (name ^ ": expected a value"))

let test_metric_formulas () =
  let s = Gpu.Stats.create () in
  let open Gpu.Stats in
  s.cycles <- 100;
  s.warp_instrs <- 50;
  s.thread_instrs <- 50 * 16;
  s.branches <- 10;
  s.divergent_branches <- 2;
  s.gld_requested_bytes <- 512;
  s.gld_transactions <- 32;
  s.gst_requested_bytes <- 64;
  s.gst_transactions <- 4;
  s.l1_hits <- 3;
  s.l1_misses <- 1;
  s.l2_hits <- 1;
  s.l2_misses <- 3;
  s.resident_warp_cycles <- 48 * 200;
  s.sm_active_cycles <- 200;
  let env = env_of s in
  check feq "ipc" 0.5 (compute_scalar "ipc" env);
  check feq "branch_efficiency" 80.0 (compute_scalar "branch_efficiency" env);
  (* 16 active lanes of 32 -> 50% *)
  check feq "warp_execution_efficiency" 50.0
    (compute_scalar "warp_execution_efficiency" env);
  (* 512 requested / (32 x 32B lines) -> 50% *)
  check feq "gld_efficiency" 50.0 (compute_scalar "gld_efficiency" env);
  check feq "gst_efficiency" 50.0 (compute_scalar "gst_efficiency" env);
  check feq "l1_hit_rate" 75.0 (compute_scalar "l1_hit_rate" env);
  check feq "l2_hit_rate" 25.0 (compute_scalar "l2_hit_rate" env);
  (* 48 resident warps every cycle = the full SM capacity *)
  check feq "achieved_occupancy" 1.0
    (compute_scalar "achieved_occupancy" env);
  (* 3 misses x 32B / 100 cycles *)
  check feq "dram_throughput" 0.96 (compute_scalar "dram_throughput" env)

let test_metric_zero_denominators () =
  let env = env_of (Gpu.Stats.create ()) in
  List.iter
    (fun name ->
       match Prof.Metrics.find name with
       | None -> Alcotest.fail ("metric not in registry: " ^ name)
       | Some m ->
         check Alcotest.bool (name ^ " undefined on empty stats") true
           (Prof.Metrics.compute env m = None))
    [ "ipc"; "branch_efficiency"; "gld_efficiency"; "l1_hit_rate";
      "achieved_occupancy"; "stall_breakdown" ]

let test_metric_registry () =
  let names = Cupti.Metrics.names () in
  List.iter
    (fun required ->
       check Alcotest.bool ("registry has " ^ required) true
         (List.mem required names))
    [ "ipc"; "achieved_occupancy"; "branch_efficiency";
      "warp_execution_efficiency"; "gld_efficiency"; "gst_efficiency";
      "l1_hit_rate"; "l2_hit_rate"; "dram_throughput"; "stall_breakdown" ];
  List.iter
    (fun (name, unit_, desc) ->
       check Alcotest.bool (name ^ " described") true
         (String.length desc > 0 && String.length unit_ > 0))
    (Cupti.Metrics.query ());
  (match Prof.Metrics.resolve [ "ipc"; "no_such_metric" ] with
   | Ok _ -> Alcotest.fail "resolve accepted an unknown metric"
   | Error e ->
     check Alcotest.bool "error names the bad metric" true
       (contains e "no_such_metric"));
  match Prof.Metrics.resolve [ "l2_hit_rate"; "ipc" ] with
  | Ok ms ->
    check
      (Alcotest.list Alcotest.string)
      "resolve keeps order" [ "l2_hit_rate"; "ipc" ]
      (List.map Prof.Metrics.name ms)
  | Error e -> Alcotest.fail e

(* --- PC sampling ------------------------------------------------------------ *)

let test_sampling_lifecycle () =
  let dev = device () in
  check Alcotest.bool "disabled initially" false
    (Cupti.Pc_sampling.enabled dev);
  let s = Cupti.Pc_sampling.enable ~period:16 dev in
  check Alcotest.bool "enabled" true (Cupti.Pc_sampling.enabled dev);
  check Alcotest.bool "double enable rejected" true
    (try
       ignore (Cupti.Pc_sampling.enable dev);
       false
     with Invalid_argument _ -> true);
  let _ = Test_trace.run_saxpy dev 1024 in
  check Alcotest.bool "samples accumulated" true
    (Prof.Pc_sampling.total_samples s > 0);
  check Alcotest.bool "hits accumulated" true (Prof.Pc_sampling.hits s > 0);
  (* every sampled PC maps to a real instruction of its kernel *)
  Prof.Pc_sampling.fold_pcs s
    (fun () kernel pc ~total ~by_reason ->
       check Alcotest.bool "pc in range" true
         (pc >= 0 && pc < Array.length kernel.Sass.Program.instrs);
       check Alcotest.int "reasons sum to total" total
         (Array.fold_left ( + ) 0 by_reason))
    ();
  Cupti.Pc_sampling.disable dev;
  check Alcotest.bool "disabled" false (Cupti.Pc_sampling.enabled dev);
  let frozen = Prof.Pc_sampling.total_samples s in
  let _ = Test_trace.run_saxpy dev 1024 in
  check Alcotest.int "histograms frozen after disable" frozen
    (Prof.Pc_sampling.total_samples s);
  check Alcotest.bool "bad period rejected" true
    (try
       ignore (Prof.Pc_sampling.create ~period:0 ());
       false
     with Invalid_argument _ -> true)

let test_sampling_preserves_stats () =
  let plain = Test_trace.run_saxpy (device ()) 512 in
  let dev = device () in
  let _ = Cupti.Pc_sampling.enable ~period:8 dev in
  let profiled = Test_trace.run_saxpy dev 512 in
  Cupti.Pc_sampling.disable dev;
  check Alcotest.string "profiled stats bit-identical"
    (Format.asprintf "%a" Gpu.Stats.pp plain)
    (Format.asprintf "%a" Gpu.Stats.pp profiled)

let test_stall_breakdown_sums () =
  let dev = device () in
  let s = Cupti.Pc_sampling.enable ~period:8 dev in
  let stats = Test_trace.run_saxpy dev 2048 in
  Cupti.Pc_sampling.disable dev;
  let env =
    { Prof.Metrics.stats; cfg = Gpu.Config.small; sampling = Some s }
  in
  match Prof.Metrics.compute env (Option.get (Prof.Metrics.find "stall_breakdown")) with
  | Some (Prof.Metrics.Breakdown parts) ->
    let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 parts in
    check (Alcotest.float 1e-6) "percentages sum to 100" 100.0 total;
    check Alcotest.int "one part per stall reason" Prof.Stall.count
      (List.length parts)
  | _ -> Alcotest.fail "expected a stall breakdown"

(* --- Acceptance: sampled hotspots vs exact issue counts --------------------- *)

let bump tbl pc n =
  Hashtbl.replace tbl pc
    (n + Option.value ~default:0 (Hashtbl.find_opt tbl pc))

let top5 tbl =
  Hashtbl.fold (fun pc c acc -> (pc, c) :: acc) tbl []
  |> List.sort (fun (pa, ca) (pb, cb) ->
      match compare cb ca with 0 -> compare pa pb | c -> c)
  |> List.filteri (fun i _ -> i < 5)

(* Tie-aware rank overlap (see bench/main.ml): issue counts tie across
   a hot loop's body, so a sampled top-5 PC agrees when its exact
   count reaches the 5th-largest exact count. *)
let sampled_vs_exact name variant =
  let w = Workloads.Registry.find name in
  let exact = Hashtbl.create 512 in
  let tally_one r =
    match r.Trace.Record.payload with
    | Trace.Record.Warp_issue { pc; _ } -> bump exact pc 1
    | _ -> ()
  in
  let dev = Gpu.Device.create () in
  Cupti.Activity.enable ~capacity:(1 lsl 16)
    ~overflow:(Cupti.Activity.Deliver (Array.iter tally_one))
    dev
    [ Cupti.Activity.Warp ];
  let _ = w.Workloads.Workload.run dev ~variant in
  List.iter tally_one (Cupti.Activity.flush dev);
  Cupti.Activity.disable dev;
  let dev2 = Gpu.Device.create () in
  let s = Cupti.Pc_sampling.enable dev2 in  (* default period *)
  let _ = w.Workloads.Workload.run dev2 ~variant in
  Cupti.Pc_sampling.disable dev2;
  let sampled = Hashtbl.create 512 in
  Prof.Pc_sampling.fold_pcs s
    (fun () _k pc ~total ~by_reason:_ -> bump sampled pc total)
    ();
  let threshold =
    match List.rev (top5 exact) with (_, c) :: _ -> c | [] -> max_int
  in
  List.length
    (List.filter
       (fun (pc, _) ->
          match Hashtbl.find_opt exact pc with
          | Some c -> c >= threshold
          | None -> false)
       (top5 sampled))

let test_hotspots_match_exact () =
  List.iter
    (fun (name, variant) ->
       let overlap = sampled_vs_exact name variant in
       check Alcotest.bool
         (Printf.sprintf "%s (%s) top-5 overlap %d/5 >= 4/5" name variant
            overlap)
         true (overlap >= 4))
    [ ("parboil/sgemm", "small"); ("parboil/spmv", "small") ]

(* --- Reports ----------------------------------------------------------------- *)

let profiled_report () =
  let dev = device () in
  let s = Cupti.Pc_sampling.enable ~period:8 dev in
  let stats = Test_trace.run_saxpy dev 2048 in
  Cupti.Pc_sampling.disable dev;
  Cupti.Pc_sampling.report ~top:5 ~stats dev s

let test_report_text () =
  let r = profiled_report () in
  let text = Prof.Report.to_text r in
  List.iter
    (fun section ->
       check Alcotest.bool ("text has " ^ section) true
         (contains text section))
    [ "== PC sampling =="; "== Metrics =="; "== Stall breakdown ==";
      "== Hotspot instructions"; "== Hot basic blocks ==" ];
  check Alcotest.bool "hotspots nonempty" true (List.length r.Prof.Report.r_instrs > 0);
  check Alcotest.bool "top bound respected" true
    (List.length r.Prof.Report.r_instrs <= 5)

(* Minimal RFC 4180 field parser: the test reads rows back the way a
   spreadsheet would, so quoting bugs fail loudly. *)
let csv_fields line =
  let b = Buffer.create 16 in
  let fields = ref [] in
  let n = String.length line in
  let rec go i inq =
    if i >= n then fields := Buffer.contents b :: !fields
    else
      let c = line.[i] in
      if inq then
        if c = '"' then
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char b '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char b c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = ',' then begin
        fields := Buffer.contents b :: !fields;
        Buffer.clear b;
        go (i + 1) false
      end
      else begin
        Buffer.add_char b c;
        go (i + 1) false
      end
  in
  go 0 false;
  List.rev !fields

let test_report_csv () =
  let r = profiled_report () in
  let csv = Prof.Report.to_csv r in
  (* The blank line separates the hotspot section from the metrics
     section. *)
  let rec split_sections acc = function
    | [] -> (List.rev acc, [])
    | "" :: rest -> (List.rev acc, List.filter (fun l -> l <> "") rest)
    | l :: rest -> split_sections (l :: acc) rest
  in
  let hotspot_lines, metric_lines =
    split_sections [] (String.split_on_char '\n' csv)
  in
  (match hotspot_lines with
   | header :: rows ->
     check Alcotest.string "csv header"
       "kernel,pc,block,samples,selected,exec_dependency,memory_dependency,\
        sync,disasm"
       header;
     check Alcotest.int "one row per hotspot"
       (List.length r.Prof.Report.r_instrs)
       (List.length rows);
     List.iter
       (fun row ->
          check Alcotest.int "hotspot row has 9 fields" 9
            (List.length (csv_fields row));
          check Alcotest.bool "disasm quoted" true
            (String.length row > 0 && row.[String.length row - 1] = '"'))
       rows
   | [] -> Alcotest.fail "empty csv");
  (match metric_lines with
   | header :: rows ->
     check Alcotest.string "metrics header" "metric,value,unit,description"
       header;
     check Alcotest.int "one row per metric"
       (List.length r.Prof.Report.r_metrics)
       (List.length rows);
     List.iter
       (fun row ->
          check Alcotest.int "metric row has 4 fields" 4
            (List.length (csv_fields row)))
       rows;
     (* stall_breakdown's value is comma-separated, so naive splitting
        over-counts unless the field was quoted (RFC 4180). *)
     (match
        List.find_opt
          (fun row -> List.hd (csv_fields row) = "stall_breakdown")
          rows
      with
      | None -> Alcotest.fail "no stall_breakdown metric row"
      | Some row ->
        let v = List.nth (csv_fields row) 1 in
        check Alcotest.bool "breakdown value contains commas" true
          (String.contains v ','))
   | [] -> Alcotest.fail "no metrics section in csv")

let test_report_json () =
  let r = profiled_report () in
  let json = Prof.Report.to_json_string r in
  match Test_trace.Json.parse json with
  | Test_trace.Json.Obj fields ->
    List.iter
      (fun key ->
         check Alcotest.bool ("json has " ^ key) true
           (List.mem_assoc key fields))
      [ "period"; "hits"; "total_samples"; "metrics"; "stalls"; "hotspots";
        "blocks" ];
    (match List.assoc "hotspots" fields with
     | Test_trace.Json.Arr (first :: _) ->
       (match first with
        | Test_trace.Json.Obj hf ->
          check Alcotest.bool "hotspot has disasm" true
            (List.mem_assoc "disasm" hf)
        | _ -> Alcotest.fail "hotspot not an object")
     | _ -> Alcotest.fail "hotspots not a nonempty array")
  | _ -> Alcotest.fail "report JSON is not an object"

(* --- Shared JSON serializer --------------------------------------------------- *)

let test_json_escaping () =
  let tricky = "a\"b\\c\nd\te\rf" in
  let json =
    Trace.Json.to_string
      (Trace.Json.Obj
         [ ("s", Trace.Json.Str tricky);
           ("nan", Trace.Json.Float nan);
           ("i", Trace.Json.Int (-3)) ])
  in
  (match Test_trace.Json.parse json with
   | Test_trace.Json.Obj fields ->
     (match List.assoc "s" fields with
      | Test_trace.Json.Str s ->
        check Alcotest.string "string round-trips" tricky s
      | _ -> Alcotest.fail "s not a string");
     check Alcotest.bool "nan serialized as null" true
       (List.assoc "nan" fields = Test_trace.Json.Null);
     (match List.assoc "i" fields with
      | Test_trace.Json.Num v -> check feq "int round-trips" (-3.0) v
      | _ -> Alcotest.fail "i not a number")
   | _ -> Alcotest.fail "not an object");
  check Alcotest.string "control chars use \\u escapes" "\\u0001"
    (Trace.Json.escape "\001")

(* --- Counters.zero_on_launch --------------------------------------------------- *)

let zk name value =
  kernel name ~params:[ ptr "out" ] (fun p ->
      [ st_global (p 0) (int_ value) ])

let launch dev k =
  let out = Gpu.Device.malloc dev 64 in
  ignore
    (Gpu.Device.launch dev ~kernel:(Kernel.Compile.compile k) ~grid:(1, 1)
       ~block:(32, 1)
       ~args:[ Gpu.Device.Ptr out ])

let test_zero_on_launch () =
  let dev = device () in
  let k1 = zk "t_zk1" 1 and k2 = zk "t_zk2" 2 in
  let c = Cupti.Counters.alloc dev ~slots:2 in
  let set v =
    Gpu.Device.write_u64 dev (Cupti.Counters.addr ~slot:0 c) v;
    Gpu.Device.write_u64 dev (Cupti.Counters.addr ~slot:1 c) (v + 1)
  in
  let slot0 () = (Cupti.Counters.read c).(0) in
  (* wildcard: zeroed on every kernel's launch *)
  let sub = Cupti.Counters.zero_on_launch c dev ~kernel:"*" in
  set 41;
  launch dev k1;
  check Alcotest.int "wildcard zeroes on k1" 0 (slot0 ());
  set 42;
  launch dev k2;
  check Alcotest.int "wildcard zeroes on k2" 0 (slot0 ());
  Cupti.Callback.unsubscribe dev sub;
  set 43;
  launch dev k1;
  check Alcotest.int "unsubscribed: value survives" 43 (slot0 ());
  (* named filter: only the matching kernel zeroes *)
  let sub2 = Cupti.Counters.zero_on_launch c dev ~kernel:"t_zk1" in
  set 44;
  launch dev k2;
  check Alcotest.int "other kernel leaves counters" 44 (slot0 ());
  launch dev k1;
  check Alcotest.int "named kernel zeroes" 0 (slot0 ());
  Cupti.Callback.unsubscribe dev sub2;
  (* read_and_zero both reads and clears *)
  set 45;
  let vals = Cupti.Counters.read_and_zero c in
  check Alcotest.int "read_and_zero returns value" 45 vals.(0);
  check Alcotest.int "read_and_zero returns slot 1" 46 vals.(1);
  check Alcotest.int "read_and_zero clears" 0 (slot0 ())

let suite =
  [ ( "prof",
      [ Alcotest.test_case "stats to_assoc" `Quick test_stats_to_assoc;
        Alcotest.test_case "metric formulas" `Quick test_metric_formulas;
        Alcotest.test_case "metric zero denominators" `Quick
          test_metric_zero_denominators;
        Alcotest.test_case "metric registry" `Quick test_metric_registry;
        Alcotest.test_case "sampling lifecycle" `Quick
          test_sampling_lifecycle;
        Alcotest.test_case "sampling preserves stats" `Quick
          test_sampling_preserves_stats;
        Alcotest.test_case "stall breakdown sums" `Quick
          test_stall_breakdown_sums;
        Alcotest.test_case "hotspots match exact issue counts" `Slow
          test_hotspots_match_exact;
        Alcotest.test_case "report text" `Quick test_report_text;
        Alcotest.test_case "report csv" `Quick test_report_csv;
        Alcotest.test_case "report json" `Quick test_report_json;
        Alcotest.test_case "shared json escaping" `Quick test_json_escaping;
        Alcotest.test_case "counters zero_on_launch" `Quick
          test_zero_on_launch ] ) ]
