(* Tests for the static-analysis subsystem: the dataflow solver, the
   uniformity analysis, each verifier checker against a deliberately
   broken kernel, the compile-time verifier gate, and the
   instrumentation cost model (static exactness + dynamic validation
   against telemetry handler counters). *)

open Sass
module F = Analysis.Finding
module Uniformity = Analysis.Uniformity

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let has_finding fs kind sev pc =
  List.exists
    (fun f ->
       f.F.f_kind = kind && f.F.f_severity = sev && f.F.f_pc = pc)
    fs

let count_kind fs kind =
  List.length (List.filter (fun f -> f.F.f_kind = kind) fs)

(* --- Regset --- *)

let test_regset () =
  let open Analysis.Regset in
  check bool "empty mem" false (mem 0 empty);
  check bool "full mem" true (mem 255 full);
  check int "full card" 256 (cardinal full);
  let s = of_list [ 0; 51; 52; 200; 255 ] in
  check int "card" 5 (cardinal s);
  check (Alcotest.list int) "elements sorted" [ 0; 51; 52; 200; 255 ]
    (elements s);
  check bool "mem 52" true (mem 52 s);
  check bool "mem 53" false (mem 53 s);
  let t = remove 52 s in
  check bool "removed" false (mem 52 t);
  check bool "remove kept others" true (mem 51 t);
  check bool "union" true (equal (union s t) s);
  check bool "inter" true (equal (inter s t) t);
  check bool "inter empty" true (equal (inter s (of_list [ 7 ])) empty)

(* --- Dataflow solver: a gen/kill liveness domain must agree with the
       dedicated Sass.Liveness implementation. --- *)

module LiveDom = struct
  type t = Analysis.Regset.t

  let equal = Analysis.Regset.equal
  let join = Analysis.Regset.union

  let transfer ~pc:_ (i : Instr.t) out =
    let open Analysis.Regset in
    let killed =
      if Pred.is_always i.Instr.guard then
        List.fold_left (fun s r -> remove (Reg.index r) s) out (Instr.defs i)
      else out
    in
    List.fold_left (fun s r -> add (Reg.index r) s) killed (Instr.uses i)
end

module LiveSolver = Analysis.Dataflow.Make (LiveDom)

let diamond_instrs () =
  [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
       ~pdsts:[ Pred.p 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 10 ];
     Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:4;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
     Instr.make Opcode.BRA ~target:5;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 2 ];
     Instr.make Opcode.EXIT |]

let loop_instrs () =
  (* R2 accumulates over a loop with a guarded def inside. *)
  [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 0 ];
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 0 ];
     Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
       ~pdsts:[ Pred.p 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 8 ];
     Instr.make Opcode.IADD ~guard:(Pred.on (Pred.p 0)) ~dsts:[ Reg.r 2 ]
       ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 3 ];
     Instr.make Opcode.IADD ~dsts:[ Reg.r 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 1 ];
     Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:2;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 4 ] ~srcs:[ Instr.SReg (Reg.r 2) ];
     Instr.make Opcode.EXIT |]

let solver_agrees_with_liveness instrs =
  let cfg = Cfg.build instrs in
  let live = Liveness.analyze instrs in
  let r =
    LiveSolver.solve ~direction:Analysis.Dataflow.Backward
      ~boundary:Analysis.Regset.empty ~init:Analysis.Regset.empty instrs cfg
  in
  Array.iteri
    (fun pc _ ->
       let expected =
         Liveness.live_gprs_before live pc
         |> List.map Reg.index |> List.sort Int.compare
       in
       let got = Analysis.Regset.elements r.LiveSolver.before.(pc) in
       check (Alcotest.list int)
         (Printf.sprintf "live-before pc %d" pc)
         expected got)
    instrs

let test_solver_diamond () = solver_agrees_with_liveness (diamond_instrs ())
let test_solver_loop () = solver_agrees_with_liveness (loop_instrs ())

(* --- Uniformity --- *)

let test_uniformity () =
  let instrs =
    [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 7 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SReg (Reg.r 2) ];
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 16 ];
       Instr.make (Opcode.VOTE Opcode.V_any) ~dsts:[ Reg.r 5 ]
         ~srcs:[ Instr.SPred (Pred.p 0) ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:6;
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  let uni = Uniformity.analyze instrs cfg in
  ignore (Uniformity.passes uni);
  check bool "tid variant" true (Uniformity.variant_gpr_before uni 2 (Reg.r 0));
  check bool "imm uniform" false
    (Uniformity.variant_gpr_before uni 2 (Reg.r 2));
  check bool "propagated" true
    (Uniformity.variant_gpr_before uni 3 (Reg.r 3));
  check bool "pred variant" true
    (Uniformity.variant_pred_before uni 5 (Pred.p 0));
  (* VOTE result is warp-uniform even though its input predicate is
     variant (the unguarded vote writes the same ballot to all lanes). *)
  check bool "vote uniform" false
    (Uniformity.variant_gpr_before uni 5 (Reg.r 5));
  check bool "divergent branch" true (Uniformity.divergent_branch uni 5);
  check bool "non-branch" false (Uniformity.divergent_branch uni 2)

(* --- Checker: uninitialized reads --- *)

let findings_of instrs =
  Analysis.Verifier.verify (Program.make ~name:"broken" instrs)

let test_uninit_read () =
  (* R5 is never written anywhere: definite error at the read. *)
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 5) ];
         Instr.make Opcode.EXIT |]
  in
  check bool "uninit error" true (has_finding fs F.Uninit_read F.Error 0)

let test_maybe_uninit_read () =
  (* R5 is defined on only one arm of the diamond: warning at the
     post-join read, and no definite error. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
         Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:3;
         Instr.make Opcode.MOV ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.IADD ~dsts:[ Reg.r 6 ]
           ~srcs:[ Instr.SReg (Reg.r 5); Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "maybe-uninit warning" true
    (has_finding fs F.Maybe_uninit_read F.Warning 3);
  check int "no definite error" 0 (count_kind fs F.Uninit_read)

let test_guarded_def_use_ok () =
  (* @P0 def followed by @P0 use is the compiler's standard pattern
     and must not warn; complementary @P0/@!P0 defs fully initialize. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
         Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 0))
           ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.MOV ~guard:(Pred.on_not (Pred.p 0))
           ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 2 ];
         Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 0))
           ~dsts:[ Reg.r 6 ] ~srcs:[ Instr.SImm 3 ];
         Instr.make Opcode.IADD ~guard:(Pred.on (Pred.p 0))
           ~dsts:[ Reg.r 7 ]
           ~srcs:[ Instr.SReg (Reg.r 6); Instr.SImm 1 ];
         Instr.make Opcode.IADD ~dsts:[ Reg.r 8 ]
           ~srcs:[ Instr.SReg (Reg.r 5); Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check int "no uninit findings" 0
    (count_kind fs F.Uninit_read + count_kind fs F.Maybe_uninit_read)

let test_uninit_pred () =
  (* Guarding on a predicate nobody ever set. *)
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 3))
           ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "uninit pred error" true (has_finding fs F.Uninit_read F.Error 0)

(* --- Checker: barrier divergence --- *)

let test_divergent_barrier () =
  (* BAR on one arm of a tid-dependent branch: classic deadlock. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 16 ];
         Instr.make Opcode.BRA ~guard:(Pred.on_not (Pred.p 0)) ~target:4;
         Instr.make Opcode.BAR;
         Instr.make Opcode.EXIT |]
  in
  check bool "divergent barrier error" true
    (has_finding fs F.Divergent_barrier F.Error 3)

let test_loop_barrier () =
  (* BAR inside a loop whose trip count is tid-dependent: threads
     execute different barrier counts — warning, not definite error. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 0 ];
         Instr.make Opcode.BAR;
         Instr.make Opcode.IADD ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 1 ];
         Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:2;
         Instr.make Opcode.EXIT |]
  in
  check bool "loop barrier warning" true
    (has_finding fs F.Loop_barrier F.Warning 2);
  check int "not a definite error" 0 (count_kind fs F.Divergent_barrier)

let test_uniform_barrier_ok () =
  (* Branch guard derived from an immediate: uniform, BAR is fine. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
         Instr.make Opcode.BRA ~guard:(Pred.on_not (Pred.p 0)) ~target:3;
         Instr.make Opcode.BAR;
         Instr.make Opcode.EXIT |]
  in
  check int "no barrier findings" 0
    (count_kind fs F.Divergent_barrier + count_kind fs F.Loop_barrier)

(* --- Checker: shared-memory race hints --- *)

let test_shared_race () =
  (* Write own slot, read the neighbour's slot, no BAR in between. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
         Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
           ~srcs:
             [ Instr.SReg (Reg.r 2); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 4 ];
         Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
           ~dsts:[ Reg.r 4 ]
           ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 0 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "race warning at the load" true
    (has_finding fs F.Shared_race F.Warning 4)

let test_shared_race_suppressed () =
  (* Same kernel with a BAR between store and load: no hint. Also:
     write-your-slot / read-your-slot (identical address) is clean. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
         Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
           ~srcs:
             [ Instr.SReg (Reg.r 2); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.BAR;
         Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 4 ];
         Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
           ~dsts:[ Reg.r 4 ]
           ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 0 ];
         (* read-back of the own slot, after the barrier *)
         Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
           ~dsts:[ Reg.r 5 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 0 ];
         Instr.make Opcode.EXIT |]
  in
  check int "no race hints" 0 (count_kind fs F.Shared_race)

let test_shared_disjoint_tiles () =
  (* Two stores through the same index register into disjoint
     immediate regions (the sgemm A-tile/B-tile pattern) are clean. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
         Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
           ~srcs:
             [ Instr.SImm 0; Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 0) ];
         Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
           ~srcs:
             [ Instr.SImm 0x400; Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.EXIT |]
  in
  check int "disjoint tiles clean" 0 (count_kind fs F.Shared_race)

(* --- Checker: unreachable code and dead stores --- *)

let test_unreachable_code () =
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT;
         Instr.make Opcode.MOV ~dsts:[ Reg.r 3 ] ~srcs:[ Instr.SImm 2 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "unreachable warning" true
    (has_finding fs F.Unreachable_code F.Warning 2)

let test_dead_store () =
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "dead store warning" true
    (has_finding fs F.Dead_store F.Warning 0)

(* --- Verifier gate --- *)

let test_gate () =
  let bad =
    Program.make ~name:"bad"
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 5) ];
         Instr.make Opcode.EXIT |]
  in
  (match Analysis.Verifier.gate bad with
   | Ok () -> Alcotest.fail "gate accepted an uninitialized read"
   | Error _ -> ());
  (* Warnings alone must not fail the gate. *)
  let warn_only =
    Program.make ~name:"warn"
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  match Analysis.Verifier.gate warn_only with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("gate failed on warnings only: " ^ m)

let test_compile_gate_seeded_fault () =
  (* The compiler's post-regalloc verifier must reject a miscompiled
     kernel: take a real compiled kernel (captured from a workload),
     check it passes, then corrupt it by NOP-ing out an initializing
     definition so a later read becomes uninitialized. *)
  let w = Workloads.Registry.find "sgemm" in
  let device = Gpu.Device.create () in
  let captured = ref None in
  Gpu.Device.set_transform device
    (Some
       (fun k ->
          if !captured = None then captured := Some k;
          k));
  ignore (w.Workloads.Workload.run device ~variant:"small");
  let k =
    match !captured with
    | Some k -> k
    | None -> Alcotest.fail "workload compiled no kernel"
  in
  (match Kernel.Compile.verify k with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("clean kernel rejected: " ^ m));
  let instrs = k.Program.instrs in
  let rejected = ref false in
  Array.iteri
    (fun pc (i : Instr.t) ->
       if
         (not !rejected)
         && Pred.is_always i.Instr.guard
         && Instr.defs i <> []
         && not (Opcode.is_mem i.Instr.op)
       then begin
         let instrs' = Array.copy instrs in
         instrs'.(pc) <- Instr.make Opcode.NOP;
         let k' = Program.make ~name:k.Program.name instrs' in
         match Kernel.Compile.verify k' with
         | Error _ -> rejected := true
         | Ok () -> ()
       end)
    instrs;
  check bool "some seeded fault is rejected" true !rejected

(* --- Cost model --- *)

let test_cost_static_exact () =
  (* The static site table must agree exactly with what the injector
     emits: site count, per-site sequence length (= instruction-count
     delta) and frame growth. *)
  let k = Program.make ~name:"k" (loop_instrs ()) in
  List.iter
    (fun spec ->
       let c = Analysis.Cost.analyze ~specs:[ spec ] k in
       let next_id = ref 0 in
       let r = Sassi.Inject.instrument ~next_id ~specs:[ (spec, 0) ] k in
       check int "site count"
         (List.length r.Sassi.Inject.sites)
         (List.length c.Analysis.Cost.c_sites);
       check int "instruction delta"
         (Array.length r.Sassi.Inject.kernel.Program.instrs
          - Array.length k.Program.instrs)
         c.Analysis.Cost.c_static_instrs;
       check int "frame delta"
         (r.Sassi.Inject.kernel.Program.frame_bytes - k.Program.frame_bytes)
         c.Analysis.Cost.c_frame_bytes)
    [ Sassi.Select.before [ Sassi.Select.All ] [];
      Sassi.Select.after [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ];
      Sassi.Select.before [ Sassi.Select.Cond_control ]
        [ Sassi.Select.Branch_info ];
      Sassi.Select.before [ Sassi.Select.Basic_block ] [] ]

let validate_workload wname variant pairs =
  (* Dynamic validation: predicted extra warp instructions (static
     per-site cost x measured invocation counts) vs the measured
     warp_instrs delta between instrumented and plain runs. *)
  let w = Workloads.Registry.find wname in
  let baseline_device = Gpu.Device.create () in
  let kernels = ref [] in
  Gpu.Device.set_transform baseline_device
    (Some
       (fun k ->
          if not (List.mem_assoc k.Program.name !kernels) then
            kernels := (k.Program.name, k) :: !kernels;
          k));
  let baseline = w.Workloads.Workload.run baseline_device ~variant in
  let device = Gpu.Device.create () in
  let tele = Cupti.Telemetry.enable device in
  let r2, per_kernel =
    Sassi.Runtime.with_instrumentation device pairs (fun rt ->
        let r = w.Workloads.Workload.run device ~variant in
        ( r,
          List.map
            (fun (kname, k) ->
               (k, Sassi.Runtime.sites_for_kernel rt kname))
            !kernels ))
  in
  let counts = Cupti.Telemetry.handler_sites tele in
  let predicted =
    List.fold_left
      (fun acc (k, sites) ->
         acc
         + Analysis.Cost.predict_extra_instrs
             (Analysis.Cost.of_sites k sites)
             ~counts)
      0 per_kernel
  in
  let measured =
    r2.Workloads.Workload.stats.Gpu.Stats.warp_instrs
    - baseline.Workloads.Workload.stats.Gpu.Stats.warp_instrs
  in
  check bool
    (Printf.sprintf "%s: measured overhead positive (%d)" wname measured)
    true (measured > 0);
  let err =
    float_of_int (abs (predicted - measured)) /. float_of_int measured
  in
  if err > 0.05 then
    Alcotest.fail
      (Printf.sprintf "%s: predicted %d vs measured %d (%.1f%% error)"
         wname predicted measured (100.0 *. err))

let test_cost_validation_sgemm () =
  validate_workload "sgemm" "small"
    [ (Sassi.Select.before [ Sassi.Select.All ] [], Sassi.Handler.noop) ]

let test_cost_validation_spmv () =
  validate_workload "spmv" "small"
    [ ( Sassi.Select.after [ Sassi.Select.Memory_ops ]
          [ Sassi.Select.Mem_info ],
        Sassi.Handler.noop ) ]

let suite =
  [ ("analysis.regset", [ Alcotest.test_case "ops" `Quick test_regset ]);
    ("analysis.dataflow",
     [ Alcotest.test_case "diamond matches liveness" `Quick
         test_solver_diamond;
       Alcotest.test_case "loop matches liveness" `Quick test_solver_loop ]);
    ("analysis.uniformity",
     [ Alcotest.test_case "variance propagation" `Quick test_uniformity ]);
    ("analysis.init",
     [ Alcotest.test_case "uninit read" `Quick test_uninit_read;
       Alcotest.test_case "maybe uninit" `Quick test_maybe_uninit_read;
       Alcotest.test_case "guarded def/use" `Quick test_guarded_def_use_ok;
       Alcotest.test_case "uninit pred" `Quick test_uninit_pred ]);
    ("analysis.barrier",
     [ Alcotest.test_case "divergent barrier" `Quick test_divergent_barrier;
       Alcotest.test_case "loop barrier" `Quick test_loop_barrier;
       Alcotest.test_case "uniform ok" `Quick test_uniform_barrier_ok ]);
    ("analysis.race",
     [ Alcotest.test_case "neighbour read" `Quick test_shared_race;
       Alcotest.test_case "barrier suppresses" `Quick
         test_shared_race_suppressed;
       Alcotest.test_case "disjoint tiles" `Quick test_shared_disjoint_tiles ]);
    ("analysis.dead",
     [ Alcotest.test_case "unreachable code" `Quick test_unreachable_code;
       Alcotest.test_case "dead store" `Quick test_dead_store ]);
    ("analysis.verifier",
     [ Alcotest.test_case "gate" `Quick test_gate;
       Alcotest.test_case "compile gate seeded fault" `Quick
         test_compile_gate_seeded_fault ]);
    ("analysis.cost",
     [ Alcotest.test_case "static exactness" `Quick test_cost_static_exact;
       Alcotest.test_case "validation sgemm" `Slow test_cost_validation_sgemm;
       Alcotest.test_case "validation spmv" `Slow test_cost_validation_spmv ])
  ]
