(* Tests for the static-analysis subsystem: the dataflow solver, the
   uniformity analysis, each verifier checker against a deliberately
   broken kernel, the compile-time verifier gate, and the
   instrumentation cost model (static exactness + dynamic validation
   against telemetry handler counters). *)

open Sass
module F = Analysis.Finding
module Uniformity = Analysis.Uniformity

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let has_finding fs kind sev pc =
  List.exists
    (fun f ->
       f.F.f_kind = kind && f.F.f_severity = sev && f.F.f_pc = pc)
    fs

let count_kind fs kind =
  List.length (List.filter (fun f -> f.F.f_kind = kind) fs)

(* --- Regset --- *)

let test_regset () =
  let open Analysis.Regset in
  check bool "empty mem" false (mem 0 empty);
  check bool "full mem" true (mem 255 full);
  check int "full card" 256 (cardinal full);
  let s = of_list [ 0; 51; 52; 200; 255 ] in
  check int "card" 5 (cardinal s);
  check (Alcotest.list int) "elements sorted" [ 0; 51; 52; 200; 255 ]
    (elements s);
  check bool "mem 52" true (mem 52 s);
  check bool "mem 53" false (mem 53 s);
  let t = remove 52 s in
  check bool "removed" false (mem 52 t);
  check bool "remove kept others" true (mem 51 t);
  check bool "union" true (equal (union s t) s);
  check bool "inter" true (equal (inter s t) t);
  check bool "inter empty" true (equal (inter s (of_list [ 7 ])) empty)

(* --- Dataflow solver: a gen/kill liveness domain must agree with the
       dedicated Sass.Liveness implementation. --- *)

module LiveDom = struct
  type t = Analysis.Regset.t

  let equal = Analysis.Regset.equal
  let join = Analysis.Regset.union

  let widen = join

  let transfer ~pc:_ (i : Instr.t) out =
    let open Analysis.Regset in
    let killed =
      if Pred.is_always i.Instr.guard then
        List.fold_left (fun s r -> remove (Reg.index r) s) out (Instr.defs i)
      else out
    in
    List.fold_left (fun s r -> add (Reg.index r) s) killed (Instr.uses i)
end

module LiveSolver = Analysis.Dataflow.Make (LiveDom)

let diamond_instrs () =
  [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
       ~pdsts:[ Pred.p 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 10 ];
     Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:4;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
     Instr.make Opcode.BRA ~target:5;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 2 ];
     Instr.make Opcode.EXIT |]

let loop_instrs () =
  (* R2 accumulates over a loop with a guarded def inside. *)
  [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 0 ];
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 0 ];
     Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
       ~pdsts:[ Pred.p 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 8 ];
     Instr.make Opcode.IADD ~guard:(Pred.on (Pred.p 0)) ~dsts:[ Reg.r 2 ]
       ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 3 ];
     Instr.make Opcode.IADD ~dsts:[ Reg.r 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 1 ];
     Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:2;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 4 ] ~srcs:[ Instr.SReg (Reg.r 2) ];
     Instr.make Opcode.EXIT |]

let solver_agrees_with_liveness instrs =
  let cfg = Cfg.build instrs in
  let live = Liveness.analyze instrs in
  let r =
    LiveSolver.solve ~direction:Analysis.Dataflow.Backward
      ~boundary:Analysis.Regset.empty ~init:Analysis.Regset.empty instrs cfg
  in
  Array.iteri
    (fun pc _ ->
       let expected =
         Liveness.live_gprs_before live pc
         |> List.map Reg.index |> List.sort Int.compare
       in
       let got = Analysis.Regset.elements r.LiveSolver.before.(pc) in
       check (Alcotest.list int)
         (Printf.sprintf "live-before pc %d" pc)
         expected got)
    instrs

let test_solver_diamond () = solver_agrees_with_liveness (diamond_instrs ())
let test_solver_loop () = solver_agrees_with_liveness (loop_instrs ())

(* --- Uniformity --- *)

let test_uniformity () =
  let instrs =
    [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 7 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SReg (Reg.r 2) ];
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 16 ];
       Instr.make (Opcode.VOTE Opcode.V_any) ~dsts:[ Reg.r 5 ]
         ~srcs:[ Instr.SPred (Pred.p 0) ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:6;
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  let uni = Uniformity.analyze instrs cfg in
  ignore (Uniformity.passes uni);
  check bool "tid variant" true (Uniformity.variant_gpr_before uni 2 (Reg.r 0));
  check bool "imm uniform" false
    (Uniformity.variant_gpr_before uni 2 (Reg.r 2));
  check bool "propagated" true
    (Uniformity.variant_gpr_before uni 3 (Reg.r 3));
  check bool "pred variant" true
    (Uniformity.variant_pred_before uni 5 (Pred.p 0));
  (* VOTE result is warp-uniform even though its input predicate is
     variant (the unguarded vote writes the same ballot to all lanes). *)
  check bool "vote uniform" false
    (Uniformity.variant_gpr_before uni 5 (Reg.r 5));
  check bool "divergent branch" true (Uniformity.divergent_branch uni 5);
  check bool "non-branch" false (Uniformity.divergent_branch uni 2)

(* --- Checker: uninitialized reads --- *)

let findings_of instrs =
  Analysis.Verifier.verify (Program.make ~name:"broken" instrs)

let test_uninit_read () =
  (* R5 is never written anywhere: definite error at the read. *)
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 5) ];
         Instr.make Opcode.EXIT |]
  in
  check bool "uninit error" true (has_finding fs F.Uninit_read F.Error 0)

let test_maybe_uninit_read () =
  (* R5 is defined on only one arm of the diamond: warning at the
     post-join read, and no definite error. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
         Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:3;
         Instr.make Opcode.MOV ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.IADD ~dsts:[ Reg.r 6 ]
           ~srcs:[ Instr.SReg (Reg.r 5); Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "maybe-uninit warning" true
    (has_finding fs F.Maybe_uninit_read F.Warning 3);
  check int "no definite error" 0 (count_kind fs F.Uninit_read)

let test_guarded_def_use_ok () =
  (* @P0 def followed by @P0 use is the compiler's standard pattern
     and must not warn; complementary @P0/@!P0 defs fully initialize. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
         Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 0))
           ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.MOV ~guard:(Pred.on_not (Pred.p 0))
           ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 2 ];
         Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 0))
           ~dsts:[ Reg.r 6 ] ~srcs:[ Instr.SImm 3 ];
         Instr.make Opcode.IADD ~guard:(Pred.on (Pred.p 0))
           ~dsts:[ Reg.r 7 ]
           ~srcs:[ Instr.SReg (Reg.r 6); Instr.SImm 1 ];
         Instr.make Opcode.IADD ~dsts:[ Reg.r 8 ]
           ~srcs:[ Instr.SReg (Reg.r 5); Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check int "no uninit findings" 0
    (count_kind fs F.Uninit_read + count_kind fs F.Maybe_uninit_read)

let test_uninit_pred () =
  (* Guarding on a predicate nobody ever set. *)
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 3))
           ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "uninit pred error" true (has_finding fs F.Uninit_read F.Error 0)

(* --- Checker: barrier divergence --- *)

let test_divergent_barrier () =
  (* BAR on one arm of a tid-dependent branch: classic deadlock. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 16 ];
         Instr.make Opcode.BRA ~guard:(Pred.on_not (Pred.p 0)) ~target:4;
         Instr.make Opcode.BAR;
         Instr.make Opcode.EXIT |]
  in
  check bool "divergent barrier error" true
    (has_finding fs F.Divergent_barrier F.Error 3)

let test_loop_barrier () =
  (* BAR inside a loop whose trip count is tid-dependent: threads
     execute different barrier counts — warning, not definite error. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 0 ];
         Instr.make Opcode.BAR;
         Instr.make Opcode.IADD ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 1 ];
         Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:2;
         Instr.make Opcode.EXIT |]
  in
  check bool "loop barrier warning" true
    (has_finding fs F.Loop_barrier F.Warning 2);
  check int "not a definite error" 0 (count_kind fs F.Divergent_barrier)

let test_uniform_barrier_ok () =
  (* Branch guard derived from an immediate: uniform, BAR is fine. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
           ~pdsts:[ Pred.p 0 ]
           ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
         Instr.make Opcode.BRA ~guard:(Pred.on_not (Pred.p 0)) ~target:3;
         Instr.make Opcode.BAR;
         Instr.make Opcode.EXIT |]
  in
  check int "no barrier findings" 0
    (count_kind fs F.Divergent_barrier + count_kind fs F.Loop_barrier)

(* --- Checker: shared-memory race hints --- *)

let test_shared_race () =
  (* Write own slot, read the neighbour's slot, no BAR in between. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
         Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
           ~srcs:
             [ Instr.SReg (Reg.r 2); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 4 ];
         Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
           ~dsts:[ Reg.r 4 ]
           ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 0 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "race warning at the load" true
    (has_finding fs F.Shared_race F.Warning 4)

let test_shared_race_suppressed () =
  (* Same kernel with a BAR between store and load: no hint. Also:
     write-your-slot / read-your-slot (identical address) is clean. *)
  let fs =
    findings_of
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
         Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
           ~srcs:
             [ Instr.SReg (Reg.r 2); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
         Instr.make Opcode.BAR;
         Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 4 ];
         Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
           ~dsts:[ Reg.r 4 ]
           ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 0 ];
         (* read-back of the own slot, after the barrier *)
         Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
           ~dsts:[ Reg.r 5 ]
           ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 0 ];
         Instr.make Opcode.EXIT |]
  in
  check int "no race hints" 0 (count_kind fs F.Shared_race)

let test_shared_disjoint_tiles () =
  (* Two stores through the same index register into disjoint
     immediate regions (the sgemm A-tile/B-tile pattern). Under the
     launch that matches the tiles (256 threads, 0x400 bytes apart at
     stride 4) the affine prover shows every cross-thread pair
     disjoint: all sites proven safe, no findings. *)
  let instrs =
    [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
       Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
       Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
         ~srcs:
           [ Instr.SImm 0; Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 0) ];
       Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
         ~srcs:
           [ Instr.SImm 0x400; Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 0) ];
       Instr.make Opcode.EXIT |]
  in
  let k = Program.make ~name:"tiles" ~shared_bytes:0x800 instrs in
  let geom =
    { Analysis.Affine.g_block_x = 256; g_block_y = 1; g_grid_x = 4;
      g_grid_y = 1 }
  in
  let ctx = Analysis.Absdom.concrete_ctx geom in
  let fs = Analysis.Verifier.verify_ctx ~ctx ~concrete:true k in
  check int "disjoint tiles clean" 0 (count_kind fs F.Shared_race);
  let sites = Analysis.Verifier.race_sites ~ctx ~concrete:true k in
  check int "two classified sites" 2 (List.length sites);
  check bool "all proven safe" true
    (List.for_all
       (fun s -> s.Analysis.Race_check.s_class = Analysis.Race_check.Proven_safe)
       sites);
  (* Statically (unknown launch width) the same pair is honestly
     "unknown": threads 256 apart would collide in a wider block. *)
  let fs_static = findings_of instrs in
  check int "static verdict is a hint" 1
    (count_kind fs_static F.Shared_race);
  check bool "static hint is a warning, not an error" true
    (List.for_all
       (fun f ->
          f.F.f_kind <> F.Shared_race || f.F.f_severity = F.Warning)
       fs_static)

(* A read/read pair is never a race, even when the addresses provably
   overlap across threads (every thread reading slot 0 is the
   canonical broadcast idiom). Pinned because the first version of
   the checker reported these. *)
let test_shared_read_read () =
  let instrs =
    [| Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
         ~dsts:[ Reg.r 1 ]
         ~srcs:[ Instr.SImm 0; Instr.SImm 0 ];
       Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
         ~dsts:[ Reg.r 2 ]
         ~srcs:[ Instr.SImm 0; Instr.SImm 0 ];
       Instr.make Opcode.EXIT |]
  in
  check int "read/read never races" 0
    (count_kind (findings_of instrs) F.Shared_race);
  let k = Program.make ~name:"readers" ~shared_bytes:16 instrs in
  let geom =
    { Analysis.Affine.g_block_x = 64; g_block_y = 1; g_grid_x = 1;
      g_grid_y = 1 }
  in
  let sites =
    Analysis.Verifier.race_sites
      ~ctx:(Analysis.Absdom.concrete_ctx geom) ~concrete:true k
  in
  check bool "loads proven safe" true
    (sites <> []
     && List.for_all
          (fun s ->
             s.Analysis.Race_check.s_class = Analysis.Race_check.Proven_safe)
          sites)

(* --- Race proofs: the proven-safe / proven-race / unknown triptych --- *)

let race_geom =
  { Analysis.Affine.g_block_x = 64; g_block_y = 1; g_grid_x = 1; g_grid_y = 1 }

(* One shared store per kernel; only the address expression differs. *)
let triptych_kernel addr_instrs store_srcs =
  Program.make ~name:"triptych" ~shared_bytes:0x400
    (Array.append addr_instrs
       [| Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
            ~srcs:store_srcs;
          Instr.make Opcode.EXIT |])

let race_classes k =
  let ctx = Analysis.Absdom.concrete_ctx race_geom in
  ( Analysis.Verifier.race_sites ~ctx ~concrete:true k,
    Analysis.Verifier.verify_ctx ~ctx ~concrete:true k )

let test_race_proven_safe () =
  (* st.shared [4*tid] <- tid: disjoint slots, proven safe. *)
  let k =
    triptych_kernel
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make Opcode.SHL ~dsts:[ Reg.r 1 ]
           ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ] |]
      [ Instr.SReg (Reg.r 1); Instr.SImm 0; Instr.SReg (Reg.r 0) ]
  in
  let sites, fs = race_classes k in
  check int "one site" 1 (List.length sites);
  check bool "proven safe" true
    ((List.hd sites).Analysis.Race_check.s_class
     = Analysis.Race_check.Proven_safe);
  check int "no findings" 0 (count_kind fs F.Shared_race)

let test_race_proven_race () =
  (* st.shared [0] <- tid: every thread hits the same word, and the
     store is unconditional — a proven write/write race, reported as
     an error under the concrete launch. *)
  let k =
    triptych_kernel
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ] |]
      [ Instr.SImm 0; Instr.SImm 0; Instr.SReg (Reg.r 0) ]
  in
  let sites, fs = race_classes k in
  check bool "proven race" true
    (List.exists
       (fun s ->
          s.Analysis.Race_check.s_class = Analysis.Race_check.Proven_race)
       sites);
  check bool "reported as error" true
    (List.exists
       (fun f -> f.F.f_kind = F.Shared_race && f.F.f_severity = F.Error)
       fs)

let test_race_unknown () =
  (* st.shared [loaded value]: the address is data-dependent, so the
     checker must answer "unknown" — a warning, never an error. *)
  let k =
    triptych_kernel
      [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
         Instr.make (Opcode.LD (Opcode.Global, Opcode.W32))
           ~dsts:[ Reg.r 1 ]
           ~srcs:[ Instr.SImm 0; Instr.SImm 0 ] |]
      [ Instr.SReg (Reg.r 1); Instr.SImm 0; Instr.SReg (Reg.r 0) ]
  in
  let sites, fs = race_classes k in
  check bool "unknown" true
    (List.exists
       (fun s -> s.Analysis.Race_check.s_class = Analysis.Race_check.Unknown)
       sites);
  check bool "warning, not error" true
    (List.for_all
       (fun f -> f.F.f_kind <> F.Shared_race || f.F.f_severity = F.Warning)
       fs);
  check bool "some warning emitted" true (count_kind fs F.Shared_race > 0)

(* --- Interval and affine domains --- *)

let test_interval_ops () =
  let open Analysis.Interval in
  check bool "join" true (equal (join (point 1) (point 5)) (make 1 5));
  check bool "widen keeps stable bounds" true
    (equal (widen (make 0 4) (make 0 4)) (make 0 4));
  check bool "widen jumps moving hi" true
    ((widen (make 0 4) (make 0 8)).hi = max_int);
  check bool "widen jumps moving lo" true
    ((widen (make 0 4) (make (-1) 4)).lo = min_int);
  check bool "saturating add" true ((add (above 0) (point 1)).hi = max_int);
  check bool "disjoint" true (disjoint (make 0 3) (make 4 7));
  check bool "not disjoint" false (disjoint (make 0 4) (make 4 7))

let geom32 =
  { Analysis.Affine.g_block_x = 32; g_block_y = 1; g_grid_x = 1; g_grid_y = 1 }

let test_affine_ops () =
  let open Analysis.Affine in
  let a = mul_const 4 tid_x in
  check int "mul_const scales the coefficient" 4 a.a_tx;
  check int "add shifts the base" 8 (add a (const 8)).a_base;
  (* join of two constants keeps their distance as the stride *)
  let j = join ~geom:geom32 (const 0) (const 64) in
  check int "join stride" 64 j.a_mod;
  check bool "join residue" true
    (Analysis.Interval.equal j.a_res (Analysis.Interval.make 0 64));
  (* widening jumps the unstable bound but keeps the stride, which is
     what keeps loop-carried tile addresses provable *)
  let w = widen ~geom:geom32 j (join ~geom:geom32 j (const 128)) in
  check bool "widened hi unbounded" true
    (w.a_res.Analysis.Interval.hi = max_int);
  check int "stride survives widening" 64 w.a_mod

let test_affine_overlap () =
  let open Analysis.Affine in
  let stride4 = mul_const 4 tid_x in
  check bool "stride-4 words disjoint" true
    (cross_thread_overlap ~geom:geom32 stride4 ~bytes1:4 stride4 ~bytes2:4
     = `Disjoint);
  check bool "broadcast overlaps" true
    (cross_thread_overlap ~geom:geom32 (const 0) ~bytes1:4 (const 0)
       ~bytes2:4
     = `Overlap);
  let stride2 = mul_const 2 tid_x in
  check bool "stride-2 word accesses collide" true
    (cross_thread_overlap ~geom:geom32 stride2 ~bytes1:4 stride2 ~bytes2:4
     = `Overlap);
  check bool "data-dependent is may" true
    (cross_thread_overlap ~geom:geom32 stride4 ~bytes1:4 (unknown ~var:true)
       ~bytes2:4
     = `May);
  (* 128-byte-apart windows cannot collide inside a 32-thread block *)
  check bool "offset tiles disjoint" true
    (cross_thread_overlap ~geom:geom32 stride4 ~bytes1:4
       (add stride4 (const 128)) ~bytes2:4
     = `Disjoint);
  (* Half-bounded residues (what loop widening produces) make the hit
     window magnitude-dependent: here threads 25 apart collide
     (4*dx = -100 cancels a residue value of -100), far outside the
     one-congruence-period band, so `Disjoint would be unsound. *)
  let widened_lo =
    add stride4 (mul_const 4 (of_interval (Analysis.Interval.below (-25))))
  in
  check bool "half-bounded residue collision is not disjoint" true
    (cross_thread_overlap ~geom:geom32 stride4 ~bytes1:4 widened_lo
       ~bytes2:4
     <> `Disjoint);
  (* ... but a stride that keeps the difference off the window stays
     provably disjoint even with a half-bounded residue: the byte
     distance is always congruent to 4 mod 8. *)
  let stride8 = mul_const 8 tid_x in
  let widened8 =
    add stride8 (mul_const 8 (of_interval (Analysis.Interval.below 0)))
  in
  check bool "half-bounded but misaligned stays disjoint" true
    (cross_thread_overlap ~geom:geom32 (add stride8 (const 4)) ~bytes1:4
       widened8 ~bytes2:4
     = `Disjoint)

(* --- Absdom: transfer, join, and loop widening --- *)

let absdom_states instrs =
  let cfg = Cfg.build instrs in
  ( Analysis.Absdom.analyze
      (Analysis.Absdom.concrete_ctx geom32) instrs cfg,
    cfg )

let test_absdom_transfer () =
  let instrs =
    [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
       Instr.make Opcode.SHL ~dsts:[ Reg.r 1 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 2 ]
         ~srcs:[ Instr.SReg (Reg.r 1); Instr.SImm 0x40 ];
       Instr.make Opcode.EXIT |]
  in
  let states, _ = absdom_states instrs in
  let a = Analysis.Absdom.reg states.(3) (Reg.r 2) in
  check int "tid coefficient through shl+add" 4 a.Analysis.Affine.a_tx;
  check int "base through shl+add" 0x40 a.Analysis.Affine.a_base;
  check bool "exact" true (Analysis.Affine.is_exact a)

let test_absdom_join () =
  (* The diamond writes 1 or 2 into R2; at the merge the value is the
     strided interval [1,2], not top. *)
  let states, _ = absdom_states (diamond_instrs ()) in
  let a = Analysis.Absdom.reg states.(5) (Reg.r 2) in
  check bool "merge is exactly [1,2]" true
    (Analysis.Interval.equal
       (Analysis.Affine.to_interval ~geom:geom32 a)
       (Analysis.Interval.make 1 2));
  check bool "thread-invariant" true (not a.Analysis.Affine.a_var)

let test_absdom_widen () =
  (* R1 steps by 64 per iteration: widening must terminate with an
     unbounded residue that keeps the 64-byte stride. *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 0 ];
       Instr.make Opcode.MOV ~dsts:[ Reg.r 1 ] ~srcs:[ Instr.SImm 0 ];
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 8 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 1 ]
         ~srcs:[ Instr.SReg (Reg.r 1); Instr.SImm 64 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 1 ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:2;
       Instr.make Opcode.EXIT |]
  in
  let states, _ = absdom_states instrs in
  let a = Analysis.Absdom.reg states.(6) (Reg.r 1) in
  check bool "widened to unbounded" true
    (a.Analysis.Affine.a_res.Analysis.Interval.hi = max_int);
  check int "stride survives the loop" 64 a.Analysis.Affine.a_mod;
  check bool "still thread-invariant" true (not a.Analysis.Affine.a_var)

let test_absdom_sel () =
  (* The predicate picks per-thread which operand SEL reads, so a
     select between two distinct uniform constants is still a
     per-thread value (predicates are untracked, hence conservatively
     variant)... *)
  let sel a b =
    [| Instr.make Opcode.SEL ~dsts:[ Reg.r 1 ]
         ~srcs:[ Instr.SImm a; Instr.SImm b; Instr.SPred (Pred.p 0) ];
       Instr.make Opcode.EXIT |]
  in
  let states, _ = absdom_states (sel 4 8) in
  let a = Analysis.Absdom.reg states.(1) (Reg.r 1) in
  check bool "predicated select of distinct constants is variant" true
    a.Analysis.Affine.a_var;
  (* ... while equal operands are immune to the predicate. *)
  let states, _ = absdom_states (sel 4 4) in
  let b = Analysis.Absdom.reg states.(1) (Reg.r 1) in
  check bool "select of equal operands stays invariant" true
    (not b.Analysis.Affine.a_var)

(* --- Mempredict: static bank/coalescing counts on hand-built kernels --- *)

let test_mempredict () =
  let instrs =
    [| Instr.make (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ Reg.r 0 ];
       Instr.make Opcode.SHL ~dsts:[ Reg.r 1 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 2 ];
       (* 4*tid: one word per bank, degree 1 *)
       Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
         ~srcs:[ Instr.SReg (Reg.r 1); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
       Instr.make Opcode.SHL ~dsts:[ Reg.r 2 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 3 ];
       (* 8*tid: two words per bank, degree 2 *)
       Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
         ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
       (* broadcast: one word total, degree 1 *)
       Instr.make (Opcode.LD (Opcode.Shared, Opcode.W32))
         ~dsts:[ Reg.r 3 ]
         ~srcs:[ Instr.SImm 0; Instr.SImm 0 ];
       (* global 4*tid: 128 contiguous bytes = 4 lines of 32 *)
       Instr.make (Opcode.LD (Opcode.Global, Opcode.W32))
         ~dsts:[ Reg.r 4 ]
         ~srcs:[ Instr.SReg (Reg.r 1); Instr.SImm 0 ];
       (* guarded: correct counts but not exact *)
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 16 ];
       Instr.make (Opcode.ST (Opcode.Shared, Opcode.W32))
         ~guard:(Pred.on (Pred.p 0))
         ~srcs:[ Instr.SReg (Reg.r 1); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  let states =
    Analysis.Absdom.analyze (Analysis.Absdom.concrete_ctx geom32) instrs cfg
  in
  let preds =
    Analysis.Mempredict.predict ~geom:geom32 ~line_bytes:32 instrs cfg states
  in
  let at pc =
    List.find (fun p -> p.Analysis.Mempredict.p_pc = pc) preds
  in
  check int "five predicted sites" 5 (List.length preds);
  let p = at 2 in
  check bool "stride-4 store conflict-free and exact" true
    (p.Analysis.Mempredict.p_min = 1 && p.Analysis.Mempredict.p_max = 1
     && p.Analysis.Mempredict.p_exact);
  let p = at 4 in
  check bool "stride-8 store degree 2" true
    (p.Analysis.Mempredict.p_min = 2 && p.Analysis.Mempredict.p_max = 2
     && p.Analysis.Mempredict.p_exact);
  let p = at 5 in
  check bool "broadcast degree 1" true
    (p.Analysis.Mempredict.p_min = 1 && p.Analysis.Mempredict.p_exact);
  let p = at 6 in
  check bool "coalesced global = 4 lines" true
    (p.Analysis.Mempredict.p_min = 4 && p.Analysis.Mempredict.p_max = 4
     && p.Analysis.Mempredict.p_exact);
  let p = at 8 in
  check bool "guarded site is not exact" true
    (not p.Analysis.Mempredict.p_exact
     && p.Analysis.Mempredict.p_note = "guarded access (partial warp)")

(* --- Checker: unreachable code and dead stores --- *)

let test_unreachable_code () =
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT;
         Instr.make Opcode.MOV ~dsts:[ Reg.r 3 ] ~srcs:[ Instr.SImm 2 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "unreachable warning" true
    (has_finding fs F.Unreachable_code F.Warning 2)

let test_dead_store () =
  let fs =
    findings_of
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  check bool "dead store warning" true
    (has_finding fs F.Dead_store F.Warning 0)

(* --- Verifier gate --- *)

let test_gate () =
  let bad =
    Program.make ~name:"bad"
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ]
           ~srcs:[ Instr.SReg (Reg.r 5) ];
         Instr.make Opcode.EXIT |]
  in
  (match Analysis.Verifier.gate bad with
   | Ok () -> Alcotest.fail "gate accepted an uninitialized read"
   | Error _ -> ());
  (* Warnings alone must not fail the gate. *)
  let warn_only =
    Program.make ~name:"warn"
      [| Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
         Instr.make Opcode.EXIT |]
  in
  match Analysis.Verifier.gate warn_only with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("gate failed on warnings only: " ^ m)

let test_compile_gate_seeded_fault () =
  (* The compiler's post-regalloc verifier must reject a miscompiled
     kernel: take a real compiled kernel (captured from a workload),
     check it passes, then corrupt it by NOP-ing out an initializing
     definition so a later read becomes uninitialized. *)
  let w = Workloads.Registry.find "sgemm" in
  let device = Gpu.Device.create () in
  let captured = ref None in
  Gpu.Device.set_transform device
    (Some
       (fun k ->
          if !captured = None then captured := Some k;
          k));
  ignore (w.Workloads.Workload.run device ~variant:"small");
  let k =
    match !captured with
    | Some k -> k
    | None -> Alcotest.fail "workload compiled no kernel"
  in
  (match Kernel.Compile.verify k with
   | Ok () -> ()
   | Error m -> Alcotest.fail ("clean kernel rejected: " ^ m));
  let instrs = k.Program.instrs in
  let rejected = ref false in
  Array.iteri
    (fun pc (i : Instr.t) ->
       if
         (not !rejected)
         && Pred.is_always i.Instr.guard
         && Instr.defs i <> []
         && not (Opcode.is_mem i.Instr.op)
       then begin
         let instrs' = Array.copy instrs in
         instrs'.(pc) <- Instr.make Opcode.NOP;
         let k' = Program.make ~name:k.Program.name instrs' in
         match Kernel.Compile.verify k' with
         | Error _ -> rejected := true
         | Ok () -> ()
       end)
    instrs;
  check bool "some seeded fault is rejected" true !rejected

(* --- Cost model --- *)

let test_cost_static_exact () =
  (* The static site table must agree exactly with what the injector
     emits: site count, per-site sequence length (= instruction-count
     delta) and frame growth. *)
  let k = Program.make ~name:"k" (loop_instrs ()) in
  List.iter
    (fun spec ->
       let c = Analysis.Cost.analyze ~specs:[ spec ] k in
       let next_id = ref 0 in
       let r = Sassi.Inject.instrument ~next_id ~specs:[ (spec, 0) ] k in
       check int "site count"
         (List.length r.Sassi.Inject.sites)
         (List.length c.Analysis.Cost.c_sites);
       check int "instruction delta"
         (Array.length r.Sassi.Inject.kernel.Program.instrs
          - Array.length k.Program.instrs)
         c.Analysis.Cost.c_static_instrs;
       check int "frame delta"
         (r.Sassi.Inject.kernel.Program.frame_bytes - k.Program.frame_bytes)
         c.Analysis.Cost.c_frame_bytes)
    [ Sassi.Select.before [ Sassi.Select.All ] [];
      Sassi.Select.after [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ];
      Sassi.Select.before [ Sassi.Select.Cond_control ]
        [ Sassi.Select.Branch_info ];
      Sassi.Select.before [ Sassi.Select.Basic_block ] [] ]

let validate_workload wname variant pairs =
  (* Dynamic validation: predicted extra warp instructions (static
     per-site cost x measured invocation counts) vs the measured
     warp_instrs delta between instrumented and plain runs. *)
  let w = Workloads.Registry.find wname in
  let baseline_device = Gpu.Device.create () in
  let kernels = ref [] in
  Gpu.Device.set_transform baseline_device
    (Some
       (fun k ->
          if not (List.mem_assoc k.Program.name !kernels) then
            kernels := (k.Program.name, k) :: !kernels;
          k));
  let baseline = w.Workloads.Workload.run baseline_device ~variant in
  let device = Gpu.Device.create () in
  let tele = Cupti.Telemetry.enable device in
  let r2, per_kernel =
    Sassi.Runtime.with_instrumentation device pairs (fun rt ->
        let r = w.Workloads.Workload.run device ~variant in
        ( r,
          List.map
            (fun (kname, k) ->
               (k, Sassi.Runtime.sites_for_kernel rt kname))
            !kernels ))
  in
  let counts = Cupti.Telemetry.handler_sites tele in
  let predicted =
    List.fold_left
      (fun acc (k, sites) ->
         acc
         + Analysis.Cost.predict_extra_instrs
             (Analysis.Cost.of_sites k sites)
             ~counts)
      0 per_kernel
  in
  let measured =
    r2.Workloads.Workload.stats.Gpu.Stats.warp_instrs
    - baseline.Workloads.Workload.stats.Gpu.Stats.warp_instrs
  in
  check bool
    (Printf.sprintf "%s: measured overhead positive (%d)" wname measured)
    true (measured > 0);
  let err =
    float_of_int (abs (predicted - measured)) /. float_of_int measured
  in
  if err > 0.05 then
    Alcotest.fail
      (Printf.sprintf "%s: predicted %d vs measured %d (%.1f%% error)"
         wname predicted measured (100.0 *. err))

let test_cost_validation_sgemm () =
  validate_workload "sgemm" "small"
    [ (Sassi.Select.before [ Sassi.Select.All ] [], Sassi.Handler.noop) ]

let test_cost_validation_spmv () =
  validate_workload "spmv" "small"
    [ ( Sassi.Select.after [ Sassi.Select.Memory_ops ]
          [ Sassi.Select.Mem_info ],
        Sassi.Handler.noop ) ]

let suite =
  [ ("analysis.regset", [ Alcotest.test_case "ops" `Quick test_regset ]);
    ("analysis.dataflow",
     [ Alcotest.test_case "diamond matches liveness" `Quick
         test_solver_diamond;
       Alcotest.test_case "loop matches liveness" `Quick test_solver_loop ]);
    ("analysis.uniformity",
     [ Alcotest.test_case "variance propagation" `Quick test_uniformity ]);
    ("analysis.init",
     [ Alcotest.test_case "uninit read" `Quick test_uninit_read;
       Alcotest.test_case "maybe uninit" `Quick test_maybe_uninit_read;
       Alcotest.test_case "guarded def/use" `Quick test_guarded_def_use_ok;
       Alcotest.test_case "uninit pred" `Quick test_uninit_pred ]);
    ("analysis.barrier",
     [ Alcotest.test_case "divergent barrier" `Quick test_divergent_barrier;
       Alcotest.test_case "loop barrier" `Quick test_loop_barrier;
       Alcotest.test_case "uniform ok" `Quick test_uniform_barrier_ok ]);
    ("analysis.race",
     [ Alcotest.test_case "neighbour read" `Quick test_shared_race;
       Alcotest.test_case "barrier suppresses" `Quick
         test_shared_race_suppressed;
       Alcotest.test_case "disjoint tiles" `Quick test_shared_disjoint_tiles;
       Alcotest.test_case "read/read never races" `Quick
         test_shared_read_read ]);
    ("analysis.race-proofs",
     [ Alcotest.test_case "proven safe" `Quick test_race_proven_safe;
       Alcotest.test_case "proven race" `Quick test_race_proven_race;
       Alcotest.test_case "unknown" `Quick test_race_unknown ]);
    ("analysis.interval",
     [ Alcotest.test_case "ops" `Quick test_interval_ops ]);
    ("analysis.affine",
     [ Alcotest.test_case "ops, join, widen" `Quick test_affine_ops;
       Alcotest.test_case "overlap prover" `Quick test_affine_overlap ]);
    ("analysis.absdom",
     [ Alcotest.test_case "transfer" `Quick test_absdom_transfer;
       Alcotest.test_case "diamond join" `Quick test_absdom_join;
       Alcotest.test_case "loop widening" `Quick test_absdom_widen;
       Alcotest.test_case "predicated select variance" `Quick
         test_absdom_sel ]);
    ("analysis.mempredict",
     [ Alcotest.test_case "hand-built kernel" `Quick test_mempredict ]);
    ("analysis.dead",
     [ Alcotest.test_case "unreachable code" `Quick test_unreachable_code;
       Alcotest.test_case "dead store" `Quick test_dead_store ]);
    ("analysis.verifier",
     [ Alcotest.test_case "gate" `Quick test_gate;
       Alcotest.test_case "compile gate seeded fault" `Quick
         test_compile_gate_seeded_fault ]);
    ("analysis.cost",
     [ Alcotest.test_case "static exactness" `Quick test_cost_static_exact;
       Alcotest.test_case "validation sgemm" `Slow test_cost_validation_sgemm;
       Alcotest.test_case "validation spmv" `Slow test_cost_validation_spmv ])
  ]
