(* Unit and property tests for the SASS ISA library. *)

open Sass

let check = Alcotest.check

(* --- Reg / Pred ------------------------------------------------------ *)

let test_reg_roundtrip () =
  for i = 0 to 254 do
    check Alcotest.int "index/of_index" i (Reg.index (Reg.of_index i))
  done;
  check Alcotest.bool "RZ is zero" true (Reg.is_zero Reg.RZ);
  check Alcotest.bool "R0 not zero" false (Reg.is_zero (Reg.r 0));
  check Alcotest.string "RZ name" "RZ" (Reg.to_string Reg.RZ);
  check Alcotest.string "R7 name" "R7" (Reg.to_string (Reg.r 7))

let test_reg_bounds () =
  Alcotest.check_raises "R255 invalid" (Invalid_argument "Reg.r: register out of range")
    (fun () -> ignore (Reg.r 255));
  Alcotest.check_raises "negative invalid" (Invalid_argument "Reg.r: register out of range")
    (fun () -> ignore (Reg.r (-1)))

let test_pred_guard () =
  check Alcotest.bool "always" true (Pred.is_always Pred.always);
  check Alcotest.bool "@P0 not always" false (Pred.is_always (Pred.on (Pred.p 0)));
  check Alcotest.bool "@!PT not always" false (Pred.is_always (Pred.on_not Pred.PT));
  check Alcotest.int "PT index" 7 (Pred.index Pred.PT)

(* --- Opcode classification ------------------------------------------- *)

let test_opcode_classes () =
  let open Opcode in
  check Alcotest.bool "LD is mem" true (is_mem (LD (Global, W32)));
  check Alcotest.bool "LD is read" true (is_mem_read (LD (Global, W32)));
  check Alcotest.bool "LD not write" false (is_mem_write (LD (Global, W32)));
  check Alcotest.bool "ST is write" true (is_mem_write (ST (Global, W32)));
  check Alcotest.bool "ATOM read+write" true
    (is_mem_read (ATOM (Global, A_add, W32))
     && is_mem_write (ATOM (Global, A_add, W32)));
  check Alcotest.bool "STL spill" true (is_spill_or_fill (ST (Local, W32)));
  check Alcotest.bool "LD global not spill" false (is_spill_or_fill (LD (Global, W32)));
  check Alcotest.bool "BRA control" true (is_control BRA);
  check Alcotest.bool "BAR sync" true (is_sync BAR);
  check Alcotest.bool "IADD numeric" true (is_numeric IADD);
  check Alcotest.bool "MOV not numeric" false (is_numeric MOV);
  check Alcotest.bool "TLD texture" true (is_texture (TLD W32));
  check Alcotest.bool "VOTE warp wide" true (is_warp_wide (VOTE V_ballot));
  check Alcotest.bool "HCALL control" true (is_control (HCALL 3))

let test_opcode_encode_classes () =
  (* insEncoding carries the class bits so handlers can decode them. *)
  let open Opcode in
  let enc = encode (ST (Global, W32)) in
  check Alcotest.bool "encode mem bit" true (enc land 0x100 <> 0);
  check Alcotest.bool "encode write bit" true (enc land 0x4000 <> 0);
  check Alcotest.bool "encode read bit clear" true (enc land 0x2000 = 0);
  let enc_bra = encode BRA in
  check Alcotest.bool "BRA control bit" true (enc_bra land 0x200 <> 0)

let test_opcode_encode_distinct () =
  let open Opcode in
  let ops =
    [ IADD; ISUB; IMUL; IMAD; SHL; MOV; SEL; P2R; R2P; BREV; POPC; FLO;
      FADD; FSUB; FMUL; FFMA; BRA; CAL; RET; EXIT; BAR; NOP; MEMBAR ]
  in
  let encs = List.map encode ops in
  let sorted = List.sort_uniq Int.compare encs in
  check Alcotest.int "distinct encodings" (List.length ops) (List.length sorted)

let test_width_bytes () =
  let open Opcode in
  check Alcotest.int "W8" 1 (bytes_of_width W8);
  check Alcotest.int "W16" 2 (bytes_of_width W16);
  check Alcotest.int "W32" 4 (bytes_of_width W32);
  check Alcotest.int "W64" 8 (bytes_of_width W64)

(* --- Instr def/use ---------------------------------------------------- *)

let test_instr_defs_uses () =
  let i =
    Instr.make Opcode.IADD ~dsts:[ Reg.r 3 ]
      ~srcs:[ Instr.SReg (Reg.r 4); Instr.SImm 1 ]
  in
  check Alcotest.int "one def" 1 (List.length (Instr.defs i));
  check Alcotest.int "one use" 1 (List.length (Instr.uses i));
  let z = Instr.make Opcode.IADD ~dsts:[ Reg.RZ ] ~srcs:[ Instr.SReg Reg.RZ ] in
  check Alcotest.int "RZ not def" 0 (List.length (Instr.defs z));
  check Alcotest.int "RZ not use" 0 (List.length (Instr.uses z))

let test_instr_pred_defs_uses () =
  let i =
    Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
      ~pdsts:[ Pred.p 0 ]
      ~srcs:[ Instr.SReg (Reg.r 2); Instr.SReg (Reg.r 3) ]
  in
  check Alcotest.int "pdef" 1 (List.length (Instr.pdefs i));
  let guarded =
    Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 2)) ~dsts:[ Reg.r 0 ]
      ~srcs:[ Instr.SImm 5 ]
  in
  check Alcotest.bool "guard is use" true
    (List.exists (Pred.equal (Pred.p 2)) (Instr.puses guarded));
  let p2r = Instr.make Opcode.P2R ~dsts:[ Reg.r 8 ] in
  check Alcotest.int "P2R uses all preds" 7 (List.length (Instr.puses p2r));
  let r2p = Instr.make Opcode.R2P ~srcs:[ Instr.SReg (Reg.r 8) ] in
  check Alcotest.int "R2P defines all preds" 7 (List.length (Instr.pdefs r2p))

let test_cond_branch () =
  let b = Instr.make Opcode.BRA ~target:4 in
  check Alcotest.bool "unconditional" false (Instr.is_cond_branch b);
  let cb = Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:4 in
  check Alcotest.bool "conditional" true (Instr.is_cond_branch cb)

(* --- CFG --------------------------------------------------------------- *)

(* A diamond:
     0: ISETP P0 = ...
     1: @P0 BRA 4
     2: MOV R2, 1
     3: BRA 5
     4: MOV R2, 2
     5: EXIT *)
let diamond () =
  [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
       ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 10 ];
     Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:4;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
     Instr.make Opcode.BRA ~target:5;
     Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 2 ];
     Instr.make Opcode.EXIT |]

let test_cfg_diamond () =
  let cfg = Cfg.build (diamond ()) in
  check Alcotest.int "4 blocks" 4 (Array.length cfg.Cfg.blocks);
  let b0 = Cfg.block_at cfg 0 in
  check Alcotest.int "b0 spans branch" 1 b0.Cfg.last;
  check Alcotest.int "b0 two succs" 2 (List.length b0.Cfg.succs);
  let bexit = Cfg.block_at cfg 5 in
  check Alcotest.int "exit no succs" 0 (List.length bexit.Cfg.succs);
  check Alcotest.int "exit two preds" 2 (List.length bexit.Cfg.preds);
  check (Alcotest.list Alcotest.int) "exit blocks" [ bexit.Cfg.id ]
    (Cfg.exit_blocks cfg)

let test_cfg_loop () =
  (* 0: MOV R0,0 / 1: IADD R0,R0,1 / 2: ISETP P0 / 3: @P0 BRA 1 / 4: EXIT *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 0 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 1 ];
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 10 ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:1;
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  check Alcotest.int "3 blocks" 3 (Array.length cfg.Cfg.blocks);
  let loop = Cfg.block_at cfg 1 in
  check Alcotest.bool "loop self edge" true
    (List.mem loop.Cfg.id loop.Cfg.succs)

(* --- Post-dominators / reconvergence --------------------------------- *)

let test_pdom_diamond () =
  let instrs = diamond () in
  let cfg = Cfg.build instrs in
  let pdom = Domtree.post_dominators cfg in
  let rc = Domtree.reconvergence_pc cfg pdom 1 in
  check (Alcotest.option Alcotest.int) "diamond reconverges at EXIT" (Some 5) rc

let test_pdom_if_then () =
  (* 0: @P0 BRA 3 / 1: MOV / 2: MOV / 3: EXIT — reconv at 3 *)
  let instrs =
    [| Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:3;
       Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 1 ];
       Instr.make Opcode.MOV ~dsts:[ Reg.r 1 ] ~srcs:[ Instr.SImm 2 ];
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  let pdom = Domtree.post_dominators cfg in
  check (Alcotest.option Alcotest.int) "if-then reconv" (Some 3)
    (Domtree.reconvergence_pc cfg pdom 0)

let test_annotate_reconvergence () =
  let k = Program.make ~name:"diamond" (diamond ()) in
  let k = Program.annotate_reconvergence k in
  check (Alcotest.option Alcotest.int) "annotated" (Some 5)
    k.Program.instrs.(1).Instr.reconv;
  check (Alcotest.option Alcotest.int) "uncond branch not annotated" None
    k.Program.instrs.(3).Instr.reconv

let test_program_validate () =
  let k = Program.make ~name:"ok" (diamond ()) in
  check Alcotest.bool "valid" true (Result.is_ok (Program.validate k));
  let bad =
    Program.make ~name:"bad"
      [| Instr.make Opcode.BRA ~target:99; Instr.make Opcode.EXIT |]
  in
  check Alcotest.bool "bad target" true (Result.is_error (Program.validate bad));
  let noexit =
    Program.make ~name:"noexit" [| Instr.make Opcode.NOP |]
  in
  check Alcotest.bool "no exit" true (Result.is_error (Program.validate noexit))

let test_program_regs_used () =
  let k = Program.make ~name:"r" (diamond ()) in
  check Alcotest.int "regs_used" 3 k.Program.regs_used

(* --- Liveness ---------------------------------------------------------- *)

let test_liveness_straightline () =
  (* 0: MOV R0, 7 / 1: IADD R2, R0, 1 / 2: ST [R3], R2 / 3: EXIT *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 7 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 2 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 1 ];
       Instr.make (Opcode.ST (Opcode.Global, Opcode.W32))
         ~srcs:[ Instr.SReg (Reg.r 3); Instr.SImm 0; Instr.SReg (Reg.r 2) ];
       Instr.make Opcode.EXIT |]
  in
  let lv = Liveness.analyze instrs in
  let live1 = Liveness.live_gprs_before lv 1 in
  check Alcotest.bool "R0 live before 1" true
    (List.exists (Reg.equal (Reg.r 0)) live1);
  check Alcotest.bool "R3 live before 0" true
    (List.exists (Reg.equal (Reg.r 3)) (Liveness.live_gprs_before lv 0));
  check Alcotest.bool "R0 dead after 1" false
    (List.exists (Reg.equal (Reg.r 0)) (Liveness.live_gprs_after lv 1));
  check Alcotest.bool "nothing live after EXIT" true
    (Liveness.live_gprs_after lv 3 = [])

let test_liveness_loop () =
  (* R5 live around the loop. *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 5 ] ~srcs:[ Instr.SImm 0 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 5 ]
         ~srcs:[ Instr.SReg (Reg.r 5); Instr.SImm 1 ];
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 5); Instr.SImm 10 ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:1;
       Instr.make (Opcode.ST (Opcode.Global, Opcode.W32))
         ~srcs:[ Instr.SReg (Reg.r 6); Instr.SImm 0; Instr.SReg (Reg.r 5) ];
       Instr.make Opcode.EXIT |]
  in
  let lv = Liveness.analyze instrs in
  check Alcotest.bool "R5 live at loop head" true
    (List.exists (Reg.equal (Reg.r 5)) (Liveness.live_gprs_before lv 1));
  check Alcotest.bool "P0 live before branch" true
    (List.exists (Pred.equal (Pred.p 0)) (Liveness.live_preds_before lv 3));
  check Alcotest.bool "P0 dead before setp" false
    (List.exists (Pred.equal (Pred.p 0)) (Liveness.live_preds_before lv 2))

let test_liveness_guarded_def_not_kill () =
  (* @P1 MOV R0, 1 must not kill R0: the lane may be masked. *)
  let instrs =
    [| Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 1)) ~dsts:[ Reg.r 0 ]
         ~srcs:[ Instr.SImm 1 ];
       Instr.make (Opcode.ST (Opcode.Global, Opcode.W32))
         ~srcs:[ Instr.SReg (Reg.r 2); Instr.SImm 0; Instr.SReg (Reg.r 0) ];
       Instr.make Opcode.EXIT |]
  in
  let lv = Liveness.analyze instrs in
  check Alcotest.bool "R0 live before guarded def" true
    (List.exists (Reg.equal (Reg.r 0)) (Liveness.live_gprs_before lv 0))

(* --- QCheck properties -------------------------------------------------- *)

(* Random structured programs: sequences of arithmetic with occasional
   forward conditional branches, terminated by EXIT. Properties: CFG
   partitions the program; every instruction belongs to exactly one
   block; ipdom of a cond branch block, when present, post-dominates it. *)

let gen_program =
  let open QCheck.Gen in
  let body_len = int_range 4 24 in
  body_len >>= fun n ->
  let gen_instr pc =
    frequency
      [ (6,
         map2
           (fun d s ->
              Instr.make Opcode.IADD ~dsts:[ Reg.r d ]
                ~srcs:[ Instr.SReg (Reg.r s); Instr.SImm 1 ])
           (int_range 0 7) (int_range 0 7));
        (2,
         map
           (fun s ->
              Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
                ~pdsts:[ Pred.p 0 ]
                ~srcs:[ Instr.SReg (Reg.r s); Instr.SImm 5 ])
           (int_range 0 7));
        (2,
         (* forward conditional branch to a random later pc *)
         map
           (fun off ->
              let t = min (pc + 1 + off) n in
              Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:t)
           (int_range 1 6)) ]
  in
  let rec gen_list pc acc =
    if pc >= n then return (List.rev (Instr.make Opcode.EXIT :: acc))
    else gen_instr pc >>= fun i -> gen_list (pc + 1) (i :: acc)
  in
  gen_list 0 [] >|= Array.of_list

let arb_program =
  QCheck.make gen_program
    ~print:(fun instrs ->
      Program.pp Format.str_formatter (Program.make ~name:"q" instrs);
      Format.flush_str_formatter ())

let prop_cfg_partitions =
  QCheck.Test.make ~name:"cfg partitions instructions" ~count:200 arb_program
    (fun instrs ->
       let cfg = Cfg.build instrs in
       let n = Array.length instrs in
       let covered = Array.make n 0 in
       Array.iter
         (fun b ->
            for pc = b.Cfg.first to b.Cfg.last do
              covered.(pc) <- covered.(pc) + 1
            done)
         cfg.Cfg.blocks;
       Array.for_all (fun c -> c = 1) covered)

let prop_cfg_edges_valid =
  QCheck.Test.make ~name:"cfg successor edges match instruction successors"
    ~count:200 arb_program (fun instrs ->
      let cfg = Cfg.build instrs in
      Array.for_all
        (fun b ->
           let expected =
             Cfg.instr_successors instrs b.Cfg.last
             |> List.map (fun pc -> cfg.Cfg.block_of_pc.(pc))
             |> List.sort_uniq Int.compare
           in
           List.sort_uniq Int.compare b.Cfg.succs = expected)
        cfg.Cfg.blocks)

let prop_ipdom_post_dominates =
  QCheck.Test.make ~name:"ipdom post-dominates its block" ~count:200
    arb_program (fun instrs ->
      let cfg = Cfg.build instrs in
      let pdom = Domtree.post_dominators cfg in
      Array.for_all
        (fun b ->
           match Domtree.ipdom pdom b.Cfg.id with
           | None -> true
           | Some d -> Domtree.post_dominates pdom d b.Cfg.id && d <> b.Cfg.id)
        cfg.Cfg.blocks)

let prop_reconv_annotation_stable =
  QCheck.Test.make ~name:"annotate_reconvergence is idempotent" ~count:100
    arb_program (fun instrs ->
      let k = Program.make ~name:"q" instrs in
      let k1 = Program.annotate_reconvergence k in
      let k2 = Program.annotate_reconvergence k1 in
      k1.Program.instrs = k2.Program.instrs)

let prop_liveness_uses_live =
  QCheck.Test.make ~name:"used registers are live before their use" ~count:200
    arb_program (fun instrs ->
      let lv = Liveness.analyze instrs in
      let ok = ref true in
      Array.iteri
        (fun pc i ->
           let live = Liveness.live_gprs_before lv pc in
           List.iter
             (fun u ->
                if not (List.exists (Reg.equal u) live) then ok := false)
             (Instr.uses i))
        instrs;
      !ok)

(* --- Edge cases: unreachable blocks, multi-exit kernels, guarded
       EXIT fallthrough, CAL/HCALL fallthrough, forward dominators,
       predicated defs in loops --- *)

let test_cfg_unreachable_blocks () =
  (* pc 2..3 form a self-looping block no path from the entry reaches. *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 1 ];
       Instr.make Opcode.EXIT;
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 5 ];
       Instr.make Opcode.BRA ~target:2 |]
  in
  let cfg = Cfg.build instrs in
  (* block_of_pc stays total over unreachable code. *)
  Array.iteri
    (fun pc _ ->
       check Alcotest.bool "pc mapped" true (cfg.Cfg.block_of_pc.(pc) >= 0))
    instrs;
  check Alcotest.bool "entry reachable" true
    (Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(0));
  check Alcotest.bool "orphan unreachable" false
    (Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(2));
  (* Invariant from cfg.mli: a reachable block never has an
     unreachable predecessor. *)
  Array.iter
    (fun b ->
       if Cfg.reachable_block cfg b.Cfg.id then
         List.iter
           (fun p ->
              check Alcotest.bool "pred of reachable is reachable" true
                (Cfg.reachable_block cfg p))
           b.Cfg.preds)
    cfg.Cfg.blocks;
  (* Liveness still converges and is sound on the unreachable loop:
     R2 is written and never read, so it is not live-in there. *)
  let live = Liveness.analyze instrs in
  check Alcotest.bool "R2 dead in unreachable loop" false
    (List.exists (Reg.equal (Reg.r 2)) (Liveness.live_gprs_before live 2))

let prop_cfg_reachable_closed =
  QCheck.Test.make
    ~name:"reachable blocks never have unreachable preds" ~count:200
    arb_program (fun instrs ->
      let cfg = Cfg.build instrs in
      Array.for_all
        (fun b ->
           (not (Cfg.reachable_block cfg b.Cfg.id))
           || List.for_all (Cfg.reachable_block cfg) b.Cfg.preds)
        cfg.Cfg.blocks)

let test_domtree_forward () =
  let instrs = diamond () in
  let cfg = Cfg.build instrs in
  let dom = Domtree.dominators cfg in
  let b = Array.map (fun pc -> cfg.Cfg.block_of_pc.(pc)) [| 0; 2; 4; 5 |] in
  check (Alcotest.option Alcotest.int) "entry has no idom" None
    (Domtree.idom dom b.(0));
  check (Alcotest.option Alcotest.int) "then-arm idom" (Some b.(0))
    (Domtree.idom dom b.(1));
  check (Alcotest.option Alcotest.int) "else-arm idom" (Some b.(0))
    (Domtree.idom dom b.(2));
  check (Alcotest.option Alcotest.int) "join idom" (Some b.(0))
    (Domtree.idom dom b.(3));
  check Alcotest.bool "entry dominates join" true
    (Domtree.dominates dom b.(0) b.(3));
  check Alcotest.bool "arm does not dominate join" false
    (Domtree.dominates dom b.(1) b.(3))

let test_domtree_unreachable () =
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 1 ];
       Instr.make Opcode.EXIT;
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 5 ];
       Instr.make Opcode.BRA ~target:2 |]
  in
  let cfg = Cfg.build instrs in
  let dom = Domtree.dominators cfg in
  let entry = cfg.Cfg.block_of_pc.(0) and orphan = cfg.Cfg.block_of_pc.(2) in
  check (Alcotest.option Alcotest.int) "unreachable has no idom" None
    (Domtree.idom dom orphan);
  check Alcotest.bool "entry does not dominate unreachable" false
    (Domtree.dominates dom entry orphan);
  check Alcotest.bool "unreachable dominates itself" true
    (Domtree.dominates dom orphan orphan)

let test_multi_exit () =
  (* Two arms that each EXIT: no reconvergence point before the
     virtual exit, so ipdom of the branch block is [None]. *)
  let instrs =
    [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:4;
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
       Instr.make Opcode.EXIT;
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 2 ];
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  let pdom = Domtree.post_dominators cfg in
  let b0 = cfg.Cfg.block_of_pc.(0) in
  check (Alcotest.option Alcotest.int) "no reconvergence block" None
    (Domtree.ipdom pdom b0);
  check (Alcotest.option Alcotest.int) "no reconvergence pc" None
    (Domtree.reconvergence_pc cfg pdom 1);
  check Alcotest.bool "exit arm does not post-dominate entry" false
    (Domtree.post_dominates pdom cfg.Cfg.block_of_pc.(2) b0)

let test_guarded_exit_fallthrough () =
  (* A guarded EXIT retires some lanes and falls through for the rest:
     the block must keep its fallthrough edge. *)
  let instrs =
    [| Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SImm 1; Instr.SImm 10 ];
       Instr.make Opcode.EXIT ~guard:(Pred.on (Pred.p 0));
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 1 ];
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  let b0 = cfg.Cfg.block_of_pc.(0) and b1 = cfg.Cfg.block_of_pc.(2) in
  check (Alcotest.list Alcotest.int) "fallthrough edge" [ b1 ]
    cfg.Cfg.blocks.(b0).Cfg.succs;
  check Alcotest.bool "tail reachable" true (Cfg.reachable_block cfg b1)

let test_cal_hcall_fallthrough () =
  (* CAL and HCALL fall through without ending the block, and liveness
     must flow across them (the HCALL's uses keep R4 live). *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 4 ] ~srcs:[ Instr.SImm 1 ];
       Instr.make Opcode.CAL ~target:3;
       Instr.make (Opcode.HCALL 0) ~srcs:[ Instr.SReg (Reg.r 4) ];
       Instr.make Opcode.EXIT |]
  in
  let cfg = Cfg.build instrs in
  check Alcotest.int "single block" 1 (Array.length cfg.Cfg.blocks);
  let live = Liveness.analyze instrs in
  check Alcotest.bool "R4 live across CAL" true
    (List.exists (Reg.equal (Reg.r 4)) (Liveness.live_gprs_before live 1))

let test_liveness_pred_def_in_loop () =
  (* A predicated def inside a loop must not kill: the incoming value
     survives into later iterations and past the loop exit. *)
  let instrs =
    [| Instr.make Opcode.MOV ~dsts:[ Reg.r 0 ] ~srcs:[ Instr.SImm 0 ];
       Instr.make Opcode.MOV ~dsts:[ Reg.r 2 ] ~srcs:[ Instr.SImm 0 ];
       Instr.make (Opcode.ISETP (Opcode.Lt, Opcode.Signed))
         ~pdsts:[ Pred.p 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 8 ];
       Instr.make Opcode.MOV ~guard:(Pred.on (Pred.p 0)) ~dsts:[ Reg.r 2 ]
         ~srcs:[ Instr.SImm 3 ];
       Instr.make Opcode.IADD ~dsts:[ Reg.r 0 ]
         ~srcs:[ Instr.SReg (Reg.r 0); Instr.SImm 1 ];
       Instr.make Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:2;
       Instr.make Opcode.MOV ~dsts:[ Reg.r 4 ] ~srcs:[ Instr.SReg (Reg.r 2) ];
       Instr.make Opcode.EXIT |]
  in
  let live = Liveness.analyze instrs in
  let live_r2 pc =
    List.exists (Reg.equal (Reg.r 2)) (Liveness.live_gprs_before live pc)
  in
  check Alcotest.bool "R2 live into guarded def" true (live_r2 3);
  check Alcotest.bool "R2 live at loop header" true (live_r2 2);
  check Alcotest.bool "R2 live around back edge" true (live_r2 5)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [ ("sass.reg",
     [ Alcotest.test_case "roundtrip" `Quick test_reg_roundtrip;
       Alcotest.test_case "bounds" `Quick test_reg_bounds;
       Alcotest.test_case "guards" `Quick test_pred_guard ]);
    ("sass.opcode",
     [ Alcotest.test_case "classes" `Quick test_opcode_classes;
       Alcotest.test_case "encode classes" `Quick test_opcode_encode_classes;
       Alcotest.test_case "encode distinct" `Quick test_opcode_encode_distinct;
       Alcotest.test_case "width bytes" `Quick test_width_bytes ]);
    ("sass.instr",
     [ Alcotest.test_case "defs/uses" `Quick test_instr_defs_uses;
       Alcotest.test_case "pred defs/uses" `Quick test_instr_pred_defs_uses;
       Alcotest.test_case "cond branch" `Quick test_cond_branch ]);
    ("sass.cfg",
     [ Alcotest.test_case "diamond" `Quick test_cfg_diamond;
       Alcotest.test_case "loop" `Quick test_cfg_loop;
       Alcotest.test_case "unreachable blocks" `Quick
         test_cfg_unreachable_blocks;
       Alcotest.test_case "guarded exit fallthrough" `Quick
         test_guarded_exit_fallthrough;
       Alcotest.test_case "cal/hcall fallthrough" `Quick
         test_cal_hcall_fallthrough;
       qt prop_cfg_partitions;
       qt prop_cfg_edges_valid;
       qt prop_cfg_reachable_closed ]);
    ("sass.pdom",
     [ Alcotest.test_case "diamond" `Quick test_pdom_diamond;
       Alcotest.test_case "if-then" `Quick test_pdom_if_then;
       Alcotest.test_case "annotate" `Quick test_annotate_reconvergence;
       Alcotest.test_case "forward dominators" `Quick test_domtree_forward;
       Alcotest.test_case "unreachable dominators" `Quick
         test_domtree_unreachable;
       Alcotest.test_case "multi-exit" `Quick test_multi_exit;
       qt prop_ipdom_post_dominates;
       qt prop_reconv_annotation_stable ]);
    ("sass.program",
     [ Alcotest.test_case "validate" `Quick test_program_validate;
       Alcotest.test_case "regs used" `Quick test_program_regs_used ]);
    ("sass.liveness",
     [ Alcotest.test_case "straightline" `Quick test_liveness_straightline;
       Alcotest.test_case "loop" `Quick test_liveness_loop;
       Alcotest.test_case "guarded def" `Quick test_liveness_guarded_def_not_kill;
       Alcotest.test_case "pred def in loop" `Quick
         test_liveness_pred_def_in_loop;
       qt prop_liveness_uses_live ]) ]
