(* Tests for the serving stack: the HTTP message layer, the activity
   feed, the shared campaign runner (manifest identity across entry
   points and pool widths), the job table, and a full in-process
   daemon exercised over real sockets. *)

let check = Alcotest.check

(* --- helpers ------------------------------------------------------------ *)

(* A tiny campaign that runs in well under a second: one plain run and
   one 2-injection campaign of the cheapest workload. *)
let tiny_campaign =
  Par.Campaign.make ~name:"serve-test" ~seed:7
    [ Par.Campaign.job ~variant:"small" ~kind:Par.Campaign.Run "parboil/spmv";
      Par.Campaign.job ~variant:"small" ~kind:Par.Campaign.Inject
        ~injections:2 "parboil/spmv" ]

let manifest_bytes m =
  Trace.Json.to_string (Telemetry.Manifest.to_json m) ^ "\n"

(* Feed a raw request through a pipe so Http.read_request sees exactly
   the bytes a socket would deliver. *)
let parse_raw raw =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc raw;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      Serve.Http.read_request ic)

(* Minimal HTTP client for the daemon tests: one request, read to EOF
   (every daemon response is Connection: close). *)
let http_request ?(body = "") ~meth ~path port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  Printf.fprintf oc
    "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\
     Connection: close\r\n\r\n%s"
    meth path (String.length body) body;
  flush oc;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  (try
     let rec go () =
       let n = input ic chunk 0 4096 in
       if n > 0 then begin
         Buffer.add_subbytes buf chunk 0 n;
         go ()
       end
     in
     go ()
   with End_of_file -> ());
  (try close_in ic with _ -> ());
  let raw = Buffer.contents buf in
  let code =
    try int_of_string (String.sub raw (String.index raw ' ' + 1) 3)
    with _ -> 0
  in
  let body =
    let rec find i =
      if i + 3 >= String.length raw then String.length raw
      else if String.sub raw i 4 = "\r\n\r\n" then i + 4
      else find (i + 1)
    in
    let i = find 0 in
    String.sub raw i (String.length raw - i)
  in
  (code, body)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Value of a Prometheus series line, e.g. (series_value "sassi_x" body). *)
let series_value name body =
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
      if String.length line > String.length name
         && String.sub line 0 (String.length name) = name
      then
        match String.rindex_opt line ' ' with
        | Some i ->
          float_of_string_opt
            (String.sub line (i + 1) (String.length line - i - 1))
        | None -> None
      else None)

(* --- Http --------------------------------------------------------------- *)

let test_http_parse_get () =
  match parse_raw "GET /jobs/job-3?follow=1&max=10 HTTP/1.1\r\nHost: x\r\nX-Th: v\r\n\r\n" with
  | None -> Alcotest.fail "no request parsed"
  | Some rq ->
    check Alcotest.string "method" "GET" rq.Serve.Http.rq_method;
    check Alcotest.string "path" "/jobs/job-3" rq.Serve.Http.rq_path;
    check Alcotest.(option string) "query follow" (Some "1")
      (Serve.Http.query rq "follow");
    check Alcotest.(option string) "query max" (Some "10")
      (Serve.Http.query rq "max");
    check Alcotest.(option string) "header case-insensitive" (Some "v")
      (Serve.Http.header rq "x-th")

let test_http_parse_post_body () =
  let body = "{\"a\": 1}" in
  let raw =
    Printf.sprintf "POST /jobs HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  match parse_raw raw with
  | None -> Alcotest.fail "no request parsed"
  | Some rq ->
    check Alcotest.string "method" "POST" rq.Serve.Http.rq_method;
    check Alcotest.string "body" body rq.Serve.Http.rq_body

let test_http_rejects_garbage () =
  (match parse_raw "NOT A REQUEST\r\n\r\n" with
   | exception Serve.Http.Bad_request _ -> ()
   | _ -> Alcotest.fail "garbage request line accepted");
  (match parse_raw "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n" with
   | exception Serve.Http.Bad_request _ -> ()
   | _ -> Alcotest.fail "bad content-length accepted");
  check Alcotest.bool "eof before request is None" true
    (parse_raw "" = None)

let test_http_respond_roundtrip () =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  let n =
    Serve.Http.respond_json ~code:200 oc
      (Trace.Json.Obj [ ("ok", Trace.Json.Bool true) ])
  in
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  close_in ic;
  let raw = Buffer.contents buf in
  check Alcotest.bool "status line" true
    (contains ~needle:"HTTP/1.1 200 OK\r\n" raw);
  check Alcotest.bool "content-length header" true
    (contains ~needle:(Printf.sprintf "Content-Length: %d\r\n" n) raw);
  check Alcotest.bool "body with trailing newline" true
    (contains ~needle:"{\"ok\":true}\n" raw)

(* --- Feed --------------------------------------------------------------- *)

let record i =
  Trace.Record.make ~cycle:i ~sm:0 ~warp:0
    (Trace.Record.Kernel_exit { name = "k"; launch_id = i; cycles = i })

let test_feed_sequencing () =
  let f = Serve.Feed.create ~capacity:8 () in
  Serve.Feed.push_batch f [ record 1; record 2; record 3 ];
  let seqs = List.map fst (Serve.Feed.snapshot f) in
  check Alcotest.(list int) "dense sequence" [ 1; 2; 3 ] seqs;
  let fresh = Serve.Feed.wait_beyond f ~seq:2 ~timeout_s:0.0 in
  check Alcotest.(list int) "beyond 2" [ 3 ] (List.map fst fresh);
  check Alcotest.int "pushed" 3 (Serve.Feed.pushed f)

let test_feed_overflow_gap () =
  let f = Serve.Feed.create ~capacity:4 () in
  Serve.Feed.push_batch f (List.init 10 record);
  let seqs = List.map fst (Serve.Feed.snapshot f) in
  (* Ring keeps the newest 4; the gap 1..6 is visible as dropped. *)
  check Alcotest.(list int) "newest survive" [ 7; 8; 9; 10 ] seqs;
  check Alcotest.int "dropped" 6 (Serve.Feed.dropped f)

let test_feed_close_wakes () =
  let f = Serve.Feed.create () in
  let woke = ref false in
  let th =
    Thread.create
      (fun () ->
         let fresh = Serve.Feed.wait_beyond f ~seq:0 ~timeout_s:10.0 in
         woke := fresh = [])
      ()
  in
  Thread.delay 0.05;
  Serve.Feed.close f;
  Thread.join th;
  check Alcotest.bool "follower woke empty on close" true !woke;
  Serve.Feed.push_batch f [ record 1 ];
  check Alcotest.int "push after close is a no-op" 0 (Serve.Feed.pushed f)

(* --- Runner ------------------------------------------------------------- *)

let test_runner_manifest_identity_across_widths () =
  let run domains =
    Par.Pool.with_pool ~domains (fun pool ->
        match Serve.Runner.run ~pool tiny_campaign with
        | Ok o -> o
        | Error e -> Alcotest.fail e)
  in
  let a = run 1 in
  let b = run 2 in
  check Alcotest.string "manifest bytes identical at widths 1 and 2"
    (manifest_bytes a.Serve.Runner.o_manifest)
    (manifest_bytes b.Serve.Runner.o_manifest);
  check Alcotest.bool "wall time is never in the manifest" true
    (a.Serve.Runner.o_manifest.Telemetry.Manifest.m_wall_time_s = 0.0);
  check Alcotest.(list string) "argv is canonical"
    [ "campaign"; "serve-test" ]
    a.Serve.Runner.o_manifest.Telemetry.Manifest.m_argv

let test_runner_streams_activity_in_order () =
  let batches = ref [] in
  Par.Pool.with_pool ~domains:2 (fun pool ->
      match
        Serve.Runner.run ~pool
          ~activity:(fun i records -> batches := (i, List.length records) :: !batches)
          tiny_campaign
      with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e);
  (* Only job 0 is a Run job; Inject jobs never emit activity. *)
  match List.rev !batches with
  | [ (0, n) ] -> check Alcotest.bool "run job emitted records" true (n > 0)
  | other ->
    Alcotest.failf "unexpected activity batches: %s"
      (String.concat ";"
         (List.map (fun (i, n) -> Printf.sprintf "(%d,%d)" i n) other))

let test_runner_errors_returned () =
  Par.Pool.with_pool ~domains:1 (fun pool ->
      (match
         Serve.Runner.run ~pool
           (Par.Campaign.make ~name:"bad" ~seed:1
              [ Par.Campaign.job "no/such-workload" ])
       with
       | Error e ->
         check Alcotest.bool "names the workload" true
           (contains ~needle:"no/such-workload" e)
       | Ok _ -> Alcotest.fail "unknown workload accepted");
      match
        Serve.Runner.run ~pool (Par.Campaign.make ~name:"empty" ~seed:1 [])
      with
      | Error e ->
        check Alcotest.bool "empty campaign rejected" true
          (contains ~needle:"no jobs" e)
      | Ok _ -> Alcotest.fail "empty campaign accepted")

(* --- Jobs --------------------------------------------------------------- *)

let test_jobs_lifecycle () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let done_ids = ref [] in
      let jobs =
        Serve.Jobs.create ~pool
          ~on_done:(fun j -> done_ids := j.Serve.Jobs.jb_id :: !done_ids)
          ()
      in
      Serve.Jobs.start jobs;
      let j1 = Serve.Jobs.submit jobs tiny_campaign in
      let j2 =
        Serve.Jobs.submit jobs
          (Par.Campaign.make ~name:"bad" ~seed:1
             [ Par.Campaign.job "no/such-workload" ])
      in
      check Alcotest.string "dense ids" "job-1" j1.Serve.Jobs.jb_id;
      check Alcotest.string "dense ids" "job-2" j2.Serve.Jobs.jb_id;
      let rec wait id n =
        if n = 0 then Alcotest.fail "job never finished";
        match Serve.Jobs.find jobs id with
        | Some ({ Serve.Jobs.jb_state = Serve.Jobs.Done; _ } as j)
        | Some ({ Serve.Jobs.jb_state = Serve.Jobs.Failed _; _ } as j) -> j
        | _ ->
          Thread.delay 0.05;
          wait id (n - 1)
      in
      let d1 = wait "job-1" 1200 in
      let d2 = wait "job-2" 1200 in
      (match d1.Serve.Jobs.jb_state with
       | Serve.Jobs.Done ->
         check Alcotest.bool "manifest recorded" true
           (d1.Serve.Jobs.jb_manifest <> None);
         check Alcotest.bool "stats recorded" true
           (d1.Serve.Jobs.jb_stats <> None)
       | s ->
         Alcotest.failf "job-1 ended %s" (Serve.Jobs.state_to_string s));
      (match d2.Serve.Jobs.jb_state with
       | Serve.Jobs.Failed e ->
         check Alcotest.bool "failure names workload" true
           (contains ~needle:"no/such-workload" e)
       | s -> Alcotest.failf "job-2 ended %s" (Serve.Jobs.state_to_string s));
      check Alcotest.bool "drained once both terminal" true
        (Serve.Jobs.drained jobs);
      let q, r, d, f = Serve.Jobs.counts jobs in
      check Alcotest.(list int) "counts" [ 0; 0; 1; 1 ] [ q; r; d; f ];
      check Alcotest.(list string) "on_done fired in order"
        [ "job-1"; "job-2" ] (List.rev !done_ids);
      check Alcotest.(list string) "list is oldest-first"
        [ "job-1"; "job-2" ]
        (List.map (fun j -> j.Serve.Jobs.jb_id) (Serve.Jobs.list jobs));
      Serve.Jobs.stop jobs;
      Serve.Jobs.stop jobs;  (* idempotent *)
      match Serve.Jobs.submit jobs tiny_campaign with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "submit after stop accepted")

let test_jobs_manifest_matches_runner () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      let direct =
        match Serve.Runner.run ~pool tiny_campaign with
        | Ok o -> o.Serve.Runner.o_manifest
        | Error e -> Alcotest.fail e
      in
      let jobs = Serve.Jobs.create ~pool () in
      Serve.Jobs.start jobs;
      let j = Serve.Jobs.submit jobs tiny_campaign in
      let rec wait n =
        if n = 0 then Alcotest.fail "job never finished";
        match Serve.Jobs.find jobs j.Serve.Jobs.jb_id with
        | Some { Serve.Jobs.jb_state = Serve.Jobs.Done; jb_manifest = Some m; _ }
          -> m
        | Some { Serve.Jobs.jb_state = Serve.Jobs.Failed e; _ } ->
          Alcotest.fail e
        | _ ->
          Thread.delay 0.05;
          wait (n - 1)
      in
      let served = wait 1200 in
      Serve.Jobs.stop jobs;
      check Alcotest.string "scheduled job manifest == direct runner manifest"
        (manifest_bytes direct) (manifest_bytes served))

(* --- Daemon (in-process, over real sockets) ----------------------------- *)

let with_daemon f =
  let d =
    Serve.Daemon.create
      { Serve.Daemon.default_config with
        Serve.Daemon.cfg_port = 0;
        cfg_pool_jobs = 2;
        cfg_access_log = None }
  in
  let th = Serve.Daemon.start d in
  Fun.protect
    ~finally:(fun () ->
        Serve.Daemon.shutdown d;
        Thread.join th)
    (fun () -> f d (Serve.Daemon.port d))

let test_daemon_probes_and_routing () =
  with_daemon (fun _d port ->
      let code, body = http_request ~meth:"GET" ~path:"/healthz" port in
      check Alcotest.int "healthz code" 200 code;
      check Alcotest.string "healthz body" "{\"status\":\"ok\"}\n" body;
      let code, _ = http_request ~meth:"GET" ~path:"/readyz" port in
      check Alcotest.int "readyz idle" 200 code;
      let code, _ = http_request ~meth:"GET" ~path:"/nope" port in
      check Alcotest.int "unknown path" 404 code;
      let code, _ = http_request ~meth:"POST" ~path:"/jobs" ~body:"}{" port in
      check Alcotest.int "bad campaign json" 400 code;
      let code, _ = http_request ~meth:"GET" ~path:"/jobs/job-99" port in
      check Alcotest.int "unknown job" 404 code)

let poll_job_done port id =
  let rec go n =
    if n = 0 then Alcotest.fail "served job never finished";
    let _, body = http_request ~meth:"GET" ~path:("/jobs/" ^ id) port in
    if contains ~needle:"\"state\":\"done\"" body then body
    else if contains ~needle:"\"state\":\"failed\"" body then
      Alcotest.failf "served job failed: %s" body
    else begin
      Thread.delay 0.05;
      go (n - 1)
    end
  in
  go 1200

let test_daemon_job_flow_and_manifest_identity () =
  (* What the daemon must serve: the canonical runner manifest, to the
     byte, plus a trace stream carrying the run job's records. *)
  let expected =
    Par.Pool.with_pool ~domains:2 (fun pool ->
        match Serve.Runner.run ~pool tiny_campaign with
        | Ok o -> manifest_bytes o.Serve.Runner.o_manifest
        | Error e -> Alcotest.fail e)
  in
  with_daemon (fun _d port ->
      let body = Trace.Json.to_string (Par.Campaign.to_json tiny_campaign) in
      let code, resp = http_request ~meth:"POST" ~path:"/jobs" ~body port in
      check Alcotest.int "submit accepted" 202 code;
      check Alcotest.bool "job id returned" true
        (contains ~needle:"job-1" resp);
      (* Premature manifest fetch conflicts rather than 404s. *)
      let code, _ =
        http_request ~meth:"GET" ~path:"/jobs/job-1/manifest" port
      in
      check Alcotest.bool "manifest before done is 409 (or just done)" true
        (code = 409 || code = 200);
      let status = poll_job_done port "job-1" in
      check Alcotest.bool "status carries tally" true
        (contains ~needle:"\"tally\"" status);
      let code, manifest =
        http_request ~meth:"GET" ~path:"/jobs/job-1/manifest" port
      in
      check Alcotest.int "manifest served" 200 code;
      check Alcotest.string "served manifest byte-identical to CLI runner"
        expected manifest;
      let code, listing = http_request ~meth:"GET" ~path:"/jobs" port in
      check Alcotest.int "job listing" 200 code;
      check Alcotest.bool "listing contains the job" true
        (contains ~needle:"job-1" listing);
      let _, trace = http_request ~meth:"GET" ~path:"/trace" port in
      check Alcotest.bool "trace carries the run job's records" true
        (contains ~needle:"kernel_launch" trace);
      let _, follow =
        http_request ~meth:"GET" ~path:"/trace?follow=1&timeout=0.2" port
      in
      check Alcotest.bool "follow stream replays resident records" true
        (contains ~needle:"kernel_launch" follow))

let test_daemon_metrics_scrape_monotonic () =
  with_daemon (fun _d port ->
      let _ = http_request ~meth:"GET" ~path:"/healthz" port in
      let _, s1 = http_request ~meth:"GET" ~path:"/metrics" port in
      List.iter
        (fun series ->
           check Alcotest.bool (series ^ " present") true
             (contains ~needle:series s1))
        [ "sassi_build_info"; "sassi_uptime_seconds";
          "sassi_serve_requests_total"; "sassi_serve_request_duration_us";
          "sassi_serve_in_flight"; "sassi_pool_tasks_total";
          "sassi_cache_hits_total"; "sassi_serve_jobs_submitted_total" ];
      let _, s2 = http_request ~meth:"GET" ~path:"/metrics" port in
      let v body name =
        match series_value name body with
        | Some v -> v
        | None -> Alcotest.failf "series %s missing" name
      in
      let n1 = v s1 "sassi_serve_requests_total{endpoint=\"metrics\"}" in
      let n2 = v s2 "sassi_serve_requests_total{endpoint=\"metrics\"}" in
      check Alcotest.bool "request counter strictly monotonic across scrapes"
        true (n2 > n1);
      check Alcotest.bool "healthz counted" true
        (v s1 "sassi_serve_requests_total{endpoint=\"healthz\"}" >= 1.0);
      (* The histogram snapshot must be internally consistent: the
         +Inf bucket carries exactly _count observations. *)
      let count = v s2 "sassi_serve_request_duration_us_count" in
      let inf =
        v s2 "sassi_serve_request_duration_us_bucket{le=\"+Inf\"}"
      in
      check (Alcotest.float 0.0) "+Inf bucket equals count" count inf)

let test_daemon_shutdown_via_http () =
  let d =
    Serve.Daemon.create
      { Serve.Daemon.default_config with
        Serve.Daemon.cfg_port = 0;
        cfg_pool_jobs = 1;
        cfg_access_log = None }
  in
  let th = Serve.Daemon.start d in
  let port = Serve.Daemon.port d in
  let code, _ = http_request ~meth:"POST" ~path:"/shutdown" port in
  check Alcotest.int "shutdown acknowledged" 200 code;
  Thread.join th;
  (match http_request ~meth:"GET" ~path:"/healthz" port with
   | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
   | code, _ -> Alcotest.failf "daemon still answering after shutdown: %d" code);
  (* Idempotent from any thread. *)
  Serve.Daemon.shutdown d

let suite =
  [ ("serve.http",
     [ Alcotest.test_case "parse GET with query" `Quick test_http_parse_get;
       Alcotest.test_case "parse POST body" `Quick test_http_parse_post_body;
       Alcotest.test_case "reject malformed input" `Quick
         test_http_rejects_garbage;
       Alcotest.test_case "respond round-trip" `Quick
         test_http_respond_roundtrip ]);
    ("serve.feed",
     [ Alcotest.test_case "sequence numbers" `Quick test_feed_sequencing;
       Alcotest.test_case "overflow keeps newest, counts dropped" `Quick
         test_feed_overflow_gap;
       Alcotest.test_case "close wakes followers" `Quick
         test_feed_close_wakes ]);
    ("serve.runner",
     [ Alcotest.test_case "manifest identical across pool widths" `Slow
         test_runner_manifest_identity_across_widths;
       Alcotest.test_case "activity streams in job order" `Slow
         test_runner_streams_activity_in_order;
       Alcotest.test_case "errors returned, not raised" `Quick
         test_runner_errors_returned ]);
    ("serve.jobs",
     [ Alcotest.test_case "lifecycle, counts, stop" `Slow test_jobs_lifecycle;
       Alcotest.test_case "scheduled manifest equals direct runner" `Slow
         test_jobs_manifest_matches_runner ]);
    ("serve.daemon",
     [ Alcotest.test_case "probes and routing" `Quick
         test_daemon_probes_and_routing;
       Alcotest.test_case "job flow, manifest identity, trace stream" `Slow
         test_daemon_job_flow_and_manifest_identity;
       Alcotest.test_case "metrics scrape monotonic and consistent" `Quick
         test_daemon_metrics_scrape_monotonic;
       Alcotest.test_case "HTTP shutdown" `Quick test_daemon_shutdown_via_http
     ]) ]
