(* Execution tests for the GPU simulator, using hand-assembled SASS
   kernels. These validate exactly the patterns the backend compiler
   emits: guarded exits, divergent branches with PDOM reconvergence,
   loops, atomics, shared memory with barriers, and local spills. *)

open Sass

let check = Alcotest.check

(* Assembly helpers *)
let r = Reg.r
let sreg x = Instr.SReg (r x)
let imm x = Instr.SImm x
let param x = Instr.SParam x
let i ?guard ?dsts ?pdsts ?srcs ?target op =
  Instr.make ?guard ?dsts ?pdsts ?srcs ?target op

let kernel ?(frame = 0) ?(shared = 0) ?(params = 32) name instrs =
  Program.annotate_reconvergence
    (Program.make ~name ~param_bytes:params ~frame_bytes:frame
       ~shared_bytes:shared (Array.of_list instrs))

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

(* gid = ctaid.x * ntid.x + tid.x in R0 *)
let compute_gid =
  [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
    i (Opcode.S2R Opcode.Sr_ctaid_x) ~dsts:[ r 2 ];
    i (Opcode.S2R Opcode.Sr_ntid_x) ~dsts:[ r 3 ];
    i Opcode.IMAD ~dsts:[ r 0 ] ~srcs:[ sreg 2; sreg 3; sreg 0 ] ]

(* out[gid] = a[gid] + b[gid] for gid < n; params: a, b, out, n *)
let vadd_kernel =
  kernel "vadd"
    (compute_gid
     @ [ (* if gid >= n then exit *)
         i (Opcode.ISETP (Opcode.Ge, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
           ~srcs:[ sreg 0; param 12 ];
         i Opcode.EXIT ~guard:(Pred.on (Pred.p 0));
         i Opcode.SHL ~dsts:[ r 4 ] ~srcs:[ sreg 0; imm 2 ];
         i Opcode.MOV ~dsts:[ r 5 ] ~srcs:[ param 0 ];
         i (Opcode.LD (Opcode.Global, Opcode.W32)) ~dsts:[ r 6 ]
           ~srcs:[ sreg 5; sreg 4 ];
         i Opcode.MOV ~dsts:[ r 7 ] ~srcs:[ param 4 ];
         i (Opcode.LD (Opcode.Global, Opcode.W32)) ~dsts:[ r 8 ]
           ~srcs:[ sreg 7; sreg 4 ];
         i Opcode.IADD ~dsts:[ r 9 ] ~srcs:[ sreg 6; sreg 8 ];
         i Opcode.MOV ~dsts:[ r 10 ] ~srcs:[ param 8 ];
         i (Opcode.ST (Opcode.Global, Opcode.W32))
           ~srcs:[ sreg 10; sreg 4; sreg 9 ];
         i Opcode.EXIT ])

let test_vadd () =
  let dev = device () in
  let n = 1000 in
  let a = Gpu.Device.malloc dev (4 * n) in
  let b = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i));
  Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> 2 * i));
  let stats =
    Gpu.Device.launch dev ~kernel:vadd_kernel
      ~grid:((n + 127) / 128, 1)
      ~block:(128, 1)
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr out;
              Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  Array.iteri
    (fun idx v ->
       if v <> 3 * idx then
         Alcotest.failf "out[%d] = %d, expected %d" idx v (3 * idx))
    result;
  check Alcotest.bool "executed instructions" true
    (stats.Gpu.Stats.warp_instrs > 0);
  check Alcotest.bool "cycles counted" true (stats.Gpu.Stats.cycles > 0);
  check Alcotest.bool "memory transactions" true
    (stats.Gpu.Stats.global_transactions > 0)

(* Divergence: out[gid] = tid < 16 ? 111 : 222 via a branch. *)
let branch_kernel =
  kernel "branchy"
    [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
      i (Opcode.ISETP (Opcode.Lt, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
        ~srcs:[ sreg 0; imm 16 ];
      (* @P0 BRA then-block *)
      i Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:5;
      i Opcode.MOV ~dsts:[ r 2 ] ~srcs:[ imm 222 ];
      i Opcode.BRA ~target:6;
      i Opcode.MOV ~dsts:[ r 2 ] ~srcs:[ imm 111 ];
      (* join: store *)
      i Opcode.SHL ~dsts:[ r 4 ] ~srcs:[ sreg 0; imm 2 ];
      i (Opcode.ST (Opcode.Global, Opcode.W32))
        ~srcs:[ param 0; sreg 4; sreg 2 ];
      i Opcode.EXIT ]

let test_divergence_reconvergence () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let stats =
    Gpu.Device.launch dev ~kernel:branch_kernel ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for lane = 0 to 31 do
    let expected = if lane < 16 then 111 else 222 in
    check Alcotest.int (Printf.sprintf "lane %d" lane) expected result.(lane)
  done;
  check Alcotest.int "one divergent branch" 1
    stats.Gpu.Stats.divergent_branches;
  check Alcotest.int "one conditional branch warp-instr" 1
    stats.Gpu.Stats.branches

let test_uniform_branch_not_divergent () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  (* All 32 threads take the branch: tid < 32. *)
  let k =
    kernel "uniform"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i (Opcode.ISETP (Opcode.Lt, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
          ~srcs:[ sreg 0; imm 32 ];
        i Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:5;
        i Opcode.MOV ~dsts:[ r 2 ] ~srcs:[ imm 222 ];
        i Opcode.BRA ~target:6;
        i Opcode.MOV ~dsts:[ r 2 ] ~srcs:[ imm 111 ];
        i Opcode.SHL ~dsts:[ r 4 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 4; sreg 2 ];
        i Opcode.EXIT ]
  in
  let stats =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  check Alcotest.int "no divergence" 0 stats.Gpu.Stats.divergent_branches;
  check Alcotest.int "uniform result" 111
    (Gpu.Device.read_i32s dev ~addr:out ~n:1).(0)

(* Data-dependent loop: out[gid] = sum 1..(tid mod 7). *)
let loop_kernel =
  kernel "loopy"
    [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
      i (Opcode.IMOD Opcode.Signed) ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm 7 ];
      i Opcode.MOV ~dsts:[ r 3 ] ~srcs:[ imm 0 ];  (* acc *)
      i Opcode.MOV ~dsts:[ r 4 ] ~srcs:[ imm 0 ];  (* i *)
      (* loop head: if i >= bound skip *)
      i (Opcode.ISETP (Opcode.Ge, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
        ~srcs:[ sreg 4; sreg 2 ];
      i Opcode.BRA ~guard:(Pred.on (Pred.p 0)) ~target:9;
      i Opcode.IADD ~dsts:[ r 4 ] ~srcs:[ sreg 4; imm 1 ];
      i Opcode.IADD ~dsts:[ r 3 ] ~srcs:[ sreg 3; sreg 4 ];
      i Opcode.BRA ~target:4;
      (* store *)
      i Opcode.SHL ~dsts:[ r 5 ] ~srcs:[ sreg 0; imm 2 ];
      i (Opcode.ST (Opcode.Global, Opcode.W32))
        ~srcs:[ param 0; sreg 5; sreg 3 ];
      i Opcode.EXIT ]

let test_divergent_loop () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 64) in
  let stats =
    Gpu.Device.launch dev ~kernel:loop_kernel ~grid:(1, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:64 in
  for t = 0 to 63 do
    let b = t mod 7 in
    let expected = b * (b + 1) / 2 in
    check Alcotest.int (Printf.sprintf "thread %d" t) expected result.(t)
  done;
  check Alcotest.bool "loop diverges" true
    (stats.Gpu.Stats.divergent_branches > 0)

let test_atomics () =
  let dev = device () in
  let counter = Gpu.Device.malloc dev 4 in
  let k =
    kernel "atomic_count"
      [ i (Opcode.ATOM (Opcode.Global, Opcode.A_add, Opcode.W32))
          ~dsts:[ r 2 ] ~srcs:[ param 0; imm 0; imm 1 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(4, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr counter ]
  in
  check Alcotest.int "atomic sum" 256 (Gpu.Device.read_i32 dev counter)

let test_atomic_max_and_cas () =
  let dev = device () in
  let cell = Gpu.Device.malloc dev 8 in
  Gpu.Device.write_i32 dev cell 5;
  (* Each thread atomicMax(cell, tid). *)
  let k =
    kernel "atomic_max"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i (Opcode.RED (Opcode.Global, Opcode.A_max, Opcode.W32))
          ~srcs:[ param 0; imm 0; sreg 0 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr cell ]
  in
  check Alcotest.int "atomic max" 63 (Gpu.Device.read_i32 dev cell)

(* Shared-memory block reverse with a barrier. *)
let reverse_kernel =
  kernel "reverse" ~shared:(4 * 64)
    [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
      i Opcode.SHL ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm 2 ];
      (* load in[tid] -> shared[tid] *)
      i (Opcode.LD (Opcode.Global, Opcode.W32)) ~dsts:[ r 3 ]
        ~srcs:[ param 0; sreg 2 ];
      i (Opcode.ST (Opcode.Shared, Opcode.W32)) ~srcs:[ sreg 2; imm 0; sreg 3 ];
      i Opcode.BAR;
      (* out[tid] = shared[63 - tid] *)
      i Opcode.MOV ~dsts:[ r 4 ] ~srcs:[ imm 63 ];
      i Opcode.ISUB ~dsts:[ r 4 ] ~srcs:[ sreg 4; sreg 0 ];
      i Opcode.SHL ~dsts:[ r 4 ] ~srcs:[ sreg 4; imm 2 ];
      i (Opcode.LD (Opcode.Shared, Opcode.W32)) ~dsts:[ r 5 ]
        ~srcs:[ sreg 4; imm 0 ];
      i (Opcode.ST (Opcode.Global, Opcode.W32))
        ~srcs:[ param 4; sreg 2; sreg 5 ];
      i Opcode.EXIT ]

let test_shared_barrier () =
  let dev = device () in
  let input = Gpu.Device.malloc dev (4 * 64) in
  let out = Gpu.Device.malloc dev (4 * 64) in
  Gpu.Device.write_i32s dev ~addr:input (Array.init 64 (fun i -> i * 10));
  let _ =
    Gpu.Device.launch dev ~kernel:reverse_kernel ~grid:(1, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr input; Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:64 in
  for t = 0 to 63 do
    check Alcotest.int (Printf.sprintf "rev %d" t) ((63 - t) * 10) result.(t)
  done

(* Local memory spill/fill roundtrip. *)
let test_local_spill () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "spill" ~frame:16
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        (* push frame *)
        i Opcode.IADD ~dsts:[ r 1 ] ~srcs:[ sreg 1; imm (-16) ];
        i (Opcode.ST (Opcode.Local, Opcode.W32)) ~srcs:[ sreg 1; imm 4; sreg 0 ];
        i Opcode.MOV ~dsts:[ r 0 ] ~srcs:[ imm 0 ];
        i (Opcode.LD (Opcode.Local, Opcode.W32)) ~dsts:[ r 2 ]
          ~srcs:[ sreg 1; imm 4 ];
        i Opcode.IADD ~dsts:[ r 1 ] ~srcs:[ sreg 1; imm 16 ];
        i Opcode.SHL ~dsts:[ r 3 ] ~srcs:[ sreg 2; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 3; sreg 2 ];
        i Opcode.EXIT ]
  in
  let stats =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    check Alcotest.int (Printf.sprintf "spill %d" t) t result.(t)
  done;
  check Alcotest.bool "spill instrs counted" true
    (stats.Gpu.Stats.spill_instrs > 0)

(* Warp intrinsics: ballot/popc. out[tid] = popc(ballot(tid mod 2 = 0)). *)
let test_vote_ballot () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "ballot"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i (Opcode.LOP Opcode.L_and) ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm 1 ];
        i (Opcode.ISETP (Opcode.Eq, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
          ~srcs:[ sreg 2; imm 0 ];
        i (Opcode.VOTE Opcode.V_ballot) ~dsts:[ r 3 ]
          ~srcs:[ Instr.SPred (Pred.p 0) ];
        i Opcode.POPC ~dsts:[ r 4 ] ~srcs:[ sreg 3 ];
        i Opcode.SHL ~dsts:[ r 5 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 5; sreg 4 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  Array.iter (fun v -> check Alcotest.int "16 even lanes" 16 v) result

(* Shuffle: rotate values by 1 lane. *)
let test_shfl () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "shfl"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i Opcode.IADD ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm 1 ];
        i (Opcode.LOP Opcode.L_and) ~dsts:[ r 2 ] ~srcs:[ sreg 2; imm 31 ];
        i (Opcode.SHFL Opcode.S_idx) ~dsts:[ r 3 ] ~srcs:[ sreg 0; sreg 2 ];
        i Opcode.SHL ~dsts:[ r 4 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 4; sreg 3 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    check Alcotest.int (Printf.sprintf "shfl %d" t) ((t + 1) mod 32) result.(t)
  done

let test_float_ops () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  (* out[tid] = tid * 0.5 + 1.0 via I2F/FFMA *)
  let k =
    kernel "fops"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i (Opcode.I2F Opcode.Signed) ~dsts:[ r 2 ] ~srcs:[ sreg 0 ];
        i Opcode.MOV ~dsts:[ r 3 ] ~srcs:[ imm (Gpu.Value.bits_of_f32 0.5) ];
        i Opcode.MOV ~dsts:[ r 4 ] ~srcs:[ imm (Gpu.Value.bits_of_f32 1.0) ];
        i Opcode.FFMA ~dsts:[ r 5 ] ~srcs:[ sreg 2; sreg 3; sreg 4 ];
        i Opcode.SHL ~dsts:[ r 6 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 6; sreg 5 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_f32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    check (Alcotest.float 1e-6) (Printf.sprintf "f %d" t)
      ((float_of_int t *. 0.5) +. 1.0)
      result.(t)
  done

let test_memory_fault () =
  let dev = device () in
  let k =
    kernel "oob"
      [ i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ imm 0x7FFFFFF0; imm 0; imm 1 ];
        i Opcode.EXIT ]
  in
  (match
     Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1) ~args:[]
   with
   | _ -> Alcotest.fail "expected a memory fault"
   | exception Gpu.Trap.Memory_fault _ -> ())

let test_hang_watchdog () =
  let dev =
    Gpu.Device.create
      ~cfg:{ Gpu.Config.small with Gpu.Config.max_cycles = 10_000 }
      ()
  in
  let k =
    kernel "spin"
      [ i Opcode.NOP; i Opcode.BRA ~target:0; i Opcode.EXIT ]
  in
  (match Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1) ~args:[] with
   | _ -> Alcotest.fail "expected a hang"
   | exception Gpu.Trap.Hang _ -> ())

(* Memory coalescing shapes: unit-stride warp -> few transactions;
   stride-32 -> one transaction per lane. *)
let stride_kernel name stride =
  kernel name
    (compute_gid
     @ [ i Opcode.IMUL ~dsts:[ r 4 ] ~srcs:[ sreg 0; imm (4 * stride) ];
         i (Opcode.LD (Opcode.Global, Opcode.W32)) ~dsts:[ r 5 ]
           ~srcs:[ param 0; sreg 4 ];
         i Opcode.EXIT ])

let test_coalescing () =
  let dev = device () in
  let buf = Gpu.Device.malloc dev (4 * 32 * 32) in
  let s1 =
    Gpu.Device.launch dev ~kernel:(stride_kernel "stride1" 1) ~grid:(1, 1)
      ~block:(32, 1) ~args:[ Gpu.Device.Ptr buf ]
  in
  let s32 =
    Gpu.Device.launch dev ~kernel:(stride_kernel "stride32" 32) ~grid:(1, 1)
      ~block:(32, 1) ~args:[ Gpu.Device.Ptr buf ]
  in
  check Alcotest.int "unit stride: 4 transactions (128B / 32B lines)" 4
    s1.Gpu.Stats.global_transactions;
  check Alcotest.int "stride 32: 32 transactions" 32
    s32.Gpu.Stats.global_transactions

let test_coalesce_function () =
  let lines = Gpu.Memsys.coalesce ~line_bytes:32 [ (0, 4); (4, 4); (28, 8) ] in
  check (Alcotest.list Alcotest.int) "straddle" [ 0; 1 ] lines;
  let lines2 =
    Gpu.Memsys.coalesce ~line_bytes:32
      (List.init 32 (fun i -> (i * 4, 4)))
  in
  check Alcotest.int "full warp unit stride" 4 (List.length lines2)

(* Ragged block: only 40 threads in a 64-thread block shape. *)
let test_ragged_block () =
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 64) in
  Gpu.Device.memset dev ~addr:out ~len:(4 * 64) '\255';
  let k =
    kernel "ragged"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i Opcode.SHL ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 2; sreg 0 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(40, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:64 in
  for t = 0 to 39 do
    check Alcotest.int (Printf.sprintf "t%d" t) t result.(t)
  done;
  for t = 40 to 63 do
    check Alcotest.int (Printf.sprintf "untouched %d" t) 0xFFFFFFFF result.(t)
  done

(* Multi-block, multi-SM grids produce correct results. *)
let test_many_blocks () =
  let dev = device () in
  let n = 4096 in
  let a = Gpu.Device.malloc dev (4 * n) in
  let b = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i));
  Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> i * i land 0xFF));
  let _ =
    Gpu.Device.launch dev ~kernel:vadd_kernel ~grid:(n / 64, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr out;
              Gpu.Device.I32 n ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  for idx = 0 to n - 1 do
    if result.(idx) <> idx + (idx * idx land 0xFF) then
      Alcotest.failf "out[%d] wrong" idx
  done

(* --- Value unit + property tests -------------------------------------- *)

let test_value_wrap () =
  check Alcotest.int "add wraps" 0 (Gpu.Value.add 0xFFFFFFFF 1);
  check Alcotest.int "sub wraps" 0xFFFFFFFF (Gpu.Value.sub 0 1);
  check Alcotest.int "signed" (-1) (Gpu.Value.signed 0xFFFFFFFF);
  check Alcotest.int "of_signed" 0xFFFFFFFF (Gpu.Value.of_signed (-1));
  check Alcotest.int "div signed" (Gpu.Value.of_signed (-3))
    (Gpu.Value.div ~sign:Opcode.Signed (Gpu.Value.of_signed (-7)) 2);
  check Alcotest.int "div by zero" 0xFFFFFFFF
    (Gpu.Value.div ~sign:Opcode.Unsigned 5 0);
  check Alcotest.int "shr arith" 0xFFFFFFFF
    (Gpu.Value.shr ~sign:Opcode.Signed 0x80000000 31);
  check Alcotest.int "shl big" 0 (Gpu.Value.shl 1 32)

let test_value_bits () =
  check Alcotest.int "popc" 8 (Gpu.Value.popc 0xFF);
  check Alcotest.int "flo" 7 (Gpu.Value.flo 0xFF);
  check Alcotest.int "flo 0" 0xFFFFFFFF (Gpu.Value.flo 0);
  check Alcotest.int "ffs" 1 (Gpu.Value.ffs 0xFF);
  check Alcotest.int "ffs 0" 0 (Gpu.Value.ffs 0);
  check Alcotest.int "ffs bit5" 6 (Gpu.Value.ffs 0x20);
  check Alcotest.int "brev" 0x80000000 (Gpu.Value.brev 1);
  check Alcotest.int "brev sym" 1 (Gpu.Value.brev 0x80000000)

let test_value_floats () =
  let f = 3.25 in
  check (Alcotest.float 0.0) "f32 roundtrip" f
    (Gpu.Value.f32_of_bits (Gpu.Value.bits_of_f32 f));
  check Alcotest.int "fadd" (Gpu.Value.bits_of_f32 5.5)
    (Gpu.Value.fadd (Gpu.Value.bits_of_f32 2.25) (Gpu.Value.bits_of_f32 3.25));
  check Alcotest.int "i2f" (Gpu.Value.bits_of_f32 42.0)
    (Gpu.Value.i2f ~sign:Opcode.Signed 42);
  check Alcotest.int "f2i trunc" 3
    (Gpu.Value.f2i ~sign:Opcode.Signed (Gpu.Value.bits_of_f32 3.9));
  check Alcotest.int "f2i neg" (Gpu.Value.of_signed (-3))
    (Gpu.Value.f2i ~sign:Opcode.Signed (Gpu.Value.bits_of_f32 (-3.9)))

let prop_value_u32 =
  let open QCheck in
  Test.make ~name:"u32 ops stay in range" ~count:500
    (pair (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (a, b) ->
       let in_range v = v >= 0 && v <= 0xFFFFFFFF in
       in_range (Gpu.Value.add a b)
       && in_range (Gpu.Value.sub a b)
       && in_range (Gpu.Value.mul a b)
       && in_range (Gpu.Value.shl a (b land 63))
       && in_range (Gpu.Value.shr ~sign:Opcode.Signed a (b land 63))
       && in_range (Gpu.Value.brev a))

let prop_signed_roundtrip =
  let open QCheck in
  Test.make ~name:"signed/of_signed roundtrip" ~count:500
    (int_range (-0x80000000) 0x7FFFFFFF)
    (fun x -> Gpu.Value.signed (Gpu.Value.of_signed x) = x)

let prop_popc_brev =
  let open QCheck in
  Test.make ~name:"popc invariant under brev" ~count:500
    (int_bound 0xFFFFFFF)
    (fun x -> Gpu.Value.popc x = Gpu.Value.popc (Gpu.Value.brev x))

(* --- Cache / memory unit tests ----------------------------------------- *)

let test_cache_lru () =
  let c = Cache_testable.make_cache () in
  (* 2 sets x 2 ways, 32B lines: addresses 0, 64, 128 map to set 0. *)
  check Alcotest.bool "miss 0" true (Cache_testable.miss c 0);
  check Alcotest.bool "miss 64" true (Cache_testable.miss c 64);
  check Alcotest.bool "hit 0" false (Cache_testable.miss c 0);
  check Alcotest.bool "miss 128 evicts 64" true (Cache_testable.miss c 128);
  check Alcotest.bool "hit 0 still" false (Cache_testable.miss c 0);
  check Alcotest.bool "64 was evicted" true (Cache_testable.miss c 64)

let test_memory_bounds () =
  let m = Gpu.Memory.create ~space:Opcode.Global 64 in
  Gpu.Memory.write m ~width:Opcode.W32 60 42;
  check Alcotest.int "read back" 42 (Gpu.Memory.read m ~width:Opcode.W32 60);
  (match Gpu.Memory.read m ~width:Opcode.W32 62 with
   | _ -> Alcotest.fail "expected fault"
   | exception Gpu.Trap.Memory_fault _ -> ());
  (match Gpu.Memory.read m ~width:Opcode.W8 (-1) with
   | _ -> Alcotest.fail "expected fault"
   | exception Gpu.Trap.Memory_fault _ -> ())

let test_memory_widths () =
  let m = Gpu.Memory.create ~space:Opcode.Global 64 in
  Gpu.Memory.write m ~width:Opcode.W8 0 0xAB;
  Gpu.Memory.write m ~width:Opcode.W8 1 0xCD;
  check Alcotest.int "w16 le" 0xCDAB (Gpu.Memory.read m ~width:Opcode.W16 0);
  Gpu.Memory.write_u64 m 8 0x123456789AB;
  check Alcotest.int "u64" 0x123456789AB (Gpu.Memory.read_u64 m 8);
  Gpu.Memory.write m ~width:Opcode.W32 16 0xFFFFFFFF;
  check Alcotest.int "u32 max" 0xFFFFFFFF (Gpu.Memory.read m ~width:Opcode.W32 16)

(* --- CAL/RET, VOTE.ANY/ALL with predicate dsts, MEMBAR, TLD ------------ *)

let test_cal_ret () =
  (* main: CAL f; store R2; EXIT.  f: R2 = tid * 3; RET. *)
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "calret"
      [ i Opcode.CAL ~target:4;
        i Opcode.SHL ~dsts:[ r 3 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 3; sreg 2 ];
        i Opcode.EXIT;
        (* subroutine *)
        i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i Opcode.IMUL ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm 3 ];
        i Opcode.RET ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    check Alcotest.int (Printf.sprintf "cal %d" t) (t * 3) result.(t)
  done

let test_vote_any_all_pdst () =
  (* P1 = VOTE.ANY(tid == 5); P2 = VOTE.ALL(tid < 32); store (P1,P2). *)
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "voteaa"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        i (Opcode.ISETP (Opcode.Eq, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
          ~srcs:[ sreg 0; imm 5 ];
        i (Opcode.VOTE Opcode.V_any) ~pdsts:[ Pred.p 1 ]
          ~srcs:[ Instr.SPred (Pred.p 0) ];
        i (Opcode.ISETP (Opcode.Lt, Opcode.Signed)) ~pdsts:[ Pred.p 0 ]
          ~srcs:[ sreg 0; imm 32 ];
        i (Opcode.VOTE Opcode.V_all) ~pdsts:[ Pred.p 2 ]
          ~srcs:[ Instr.SPred (Pred.p 0) ];
        i Opcode.MEMBAR;
        i Opcode.IADD ~dsts:[ r 2 ]
          ~srcs:[ Instr.SPred (Pred.p 1); Instr.SPred (Pred.p 2) ];
        i Opcode.SHL ~dsts:[ r 3 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 3; sreg 2 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  Array.iter (fun v -> check Alcotest.int "any+all = 2" 2 v) result

let test_tld_clamping () =
  (* Texture fetches clamp out-of-range indices instead of faulting. *)
  let dev = device () in
  let tex = Gpu.Device.malloc dev (4 * 8) in
  Gpu.Device.write_i32s dev ~addr:tex (Array.init 8 (fun i -> 100 + i));
  Gpu.Device.bind_texture dev ~addr:tex ~bytes:(4 * 8);
  let out = Gpu.Device.malloc dev (4 * 32) in
  let k =
    kernel "tldclamp"
      [ i (Opcode.S2R Opcode.Sr_tid_x) ~dsts:[ r 0 ];
        (* index = tid - 4: negative for tid<4, >7 for tid>11 *)
        i Opcode.IADD ~dsts:[ r 2 ] ~srcs:[ sreg 0; imm (-4) ];
        i (Opcode.TLD Opcode.W32) ~dsts:[ r 3 ] ~srcs:[ sreg 2 ];
        i Opcode.SHL ~dsts:[ r 4 ] ~srcs:[ sreg 0; imm 2 ];
        i (Opcode.ST (Opcode.Global, Opcode.W32))
          ~srcs:[ param 0; sreg 4; sreg 3 ];
        i Opcode.EXIT ]
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  check Alcotest.int "clamped low" 100 result.(0);
  check Alcotest.int "in range" 101 result.(5);
  check Alcotest.int "clamped high" 107 result.(20)

let extra_suite =
  ("gpu.isa-extra",
   [ Alcotest.test_case "CAL/RET" `Quick test_cal_ret;
     Alcotest.test_case "VOTE any/all pdst" `Quick test_vote_any_all_pdst;
     Alcotest.test_case "TLD clamping" `Quick test_tld_clamping ])

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [ ("gpu.value",
     [ Alcotest.test_case "wrap" `Quick test_value_wrap;
       Alcotest.test_case "bits" `Quick test_value_bits;
       Alcotest.test_case "floats" `Quick test_value_floats;
       qt prop_value_u32;
       qt prop_signed_roundtrip;
       qt prop_popc_brev ]);
    ("gpu.memory",
     [ Alcotest.test_case "bounds" `Quick test_memory_bounds;
       Alcotest.test_case "widths" `Quick test_memory_widths;
       Alcotest.test_case "cache lru" `Quick test_cache_lru;
       Alcotest.test_case "coalesce fn" `Quick test_coalesce_function ]);
    ("gpu.exec",
     [ Alcotest.test_case "vadd" `Quick test_vadd;
       Alcotest.test_case "divergence" `Quick test_divergence_reconvergence;
       Alcotest.test_case "uniform branch" `Quick test_uniform_branch_not_divergent;
       Alcotest.test_case "divergent loop" `Quick test_divergent_loop;
       Alcotest.test_case "atomics" `Quick test_atomics;
       Alcotest.test_case "atomic max/red" `Quick test_atomic_max_and_cas;
       Alcotest.test_case "shared+barrier" `Quick test_shared_barrier;
       Alcotest.test_case "local spill" `Quick test_local_spill;
       Alcotest.test_case "ballot" `Quick test_vote_ballot;
       Alcotest.test_case "shfl" `Quick test_shfl;
       Alcotest.test_case "floats" `Quick test_float_ops;
       Alcotest.test_case "memory fault" `Quick test_memory_fault;
       Alcotest.test_case "hang watchdog" `Quick test_hang_watchdog;
       Alcotest.test_case "coalescing" `Quick test_coalescing;
       Alcotest.test_case "ragged block" `Quick test_ragged_block;
       Alcotest.test_case "many blocks" `Quick test_many_blocks ]);
    extra_suite ]
