test/datasets_access.ml: Workloads
