test/test_workload_refs.ml: Alcotest Array Gpu Kernel Printf Workloads
