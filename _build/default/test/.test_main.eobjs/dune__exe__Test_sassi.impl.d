test/test_sassi.ml: Alcotest Array Gpu Kernel List Printf Sass Sassi
