test/test_gpu.ml: Alcotest Array Cache_testable Gpu Instr List Opcode Pred Printf Program QCheck QCheck_alcotest Reg Sass Test
