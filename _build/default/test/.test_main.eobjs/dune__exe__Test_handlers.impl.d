test/test_handlers.ml: Alcotest Array Cupti Digest Gpu Handlers Kernel List Sassi String
