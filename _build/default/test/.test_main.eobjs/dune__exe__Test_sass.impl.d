test/test_sass.ml: Alcotest Array Cfg Domtree Format Instr Int List Liveness Opcode Pred Program QCheck QCheck_alcotest Reg Result Sass
