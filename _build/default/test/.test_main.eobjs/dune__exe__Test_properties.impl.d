test/test_properties.ml: Array Format Gpu Kernel List QCheck QCheck_alcotest Result Sass Sassi
