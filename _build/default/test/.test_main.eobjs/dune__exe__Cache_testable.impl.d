test/cache_testable.ml: Gpu
