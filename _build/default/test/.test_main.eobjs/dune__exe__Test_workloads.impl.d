test/test_workloads.ml: Alcotest Array Datasets_access Gpu List Printf Queue Scanf Workloads
