test/test_kernel.ml: Alcotest Array Ast Compile Float Gpu Kernel List Opt Printf QCheck QCheck_alcotest Result Sass Typecheck Vir
