test/test_structural.ml: Alcotest Array Gpu Handlers Int Kernel List Sass Sassi
