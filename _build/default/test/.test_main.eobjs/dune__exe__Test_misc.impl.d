test/test_misc.ml: Alcotest Array Float Format Gen Gpu Handlers Kernel List QCheck QCheck_alcotest Sass Sassi Str String Test Workloads
