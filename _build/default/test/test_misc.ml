(* Broader unit coverage: device API edge cases, shared-memory bank
   conflicts, multi-wave scheduling, runtime site table, disassembly
   output, and workload helpers. *)

open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

(* --- Device API ---------------------------------------------------------- *)

let test_malloc_alignment () =
  let dev = device () in
  let a = Gpu.Device.malloc dev 10 in
  let b = Gpu.Device.malloc dev 10 in
  check Alcotest.int "256-aligned a" 0 (a mod 256);
  check Alcotest.int "256-aligned b" 0 (b mod 256);
  check Alcotest.bool "disjoint" true (b >= a + 10)

let test_malloc_oom () =
  let dev = device () in
  match Gpu.Device.malloc dev (1 lsl 30) with
  | _ -> Alcotest.fail "expected Out_of_memory"
  | exception Out_of_memory -> ()

let test_f32_u64_roundtrips () =
  let dev = device () in
  let a = Gpu.Device.malloc dev 64 in
  Gpu.Device.write_f32s dev ~addr:a [| 1.5; -2.25; 0.0; 1e20 |];
  let back = Gpu.Device.read_f32s dev ~addr:a ~n:4 in
  check (Alcotest.float 0.0) "f32 1.5" 1.5 back.(0);
  check (Alcotest.float 0.0) "f32 -2.25" (-2.25) back.(1);
  Gpu.Device.write_u64s dev ~addr:a [| 0x1_2345_6789; 42 |];
  let u = Gpu.Device.read_u64s dev ~addr:a ~n:2 in
  check Alcotest.int "u64 big" 0x1_2345_6789 u.(0);
  check Alcotest.int "u64 small" 42 u.(1)

let test_invocation_counts () =
  let dev = device () in
  let k =
    Kernel.Compile.compile
      (kernel "inv_k" ~params:[ ptr "out" ] (fun p ->
           [ st_global (p 0) (int_ 1) ]))
  in
  let out = Gpu.Device.malloc dev 4 in
  check Alcotest.int "0 before" 0 (Gpu.Device.invocation_count dev "inv_k");
  for _ = 1 to 3 do
    ignore
      (Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
         ~args:[ Gpu.Device.Ptr out ])
  done;
  check Alcotest.int "3 after" 3 (Gpu.Device.invocation_count dev "inv_k")

let test_launch_validation () =
  let dev = device () in
  let k =
    Kernel.Compile.compile
      (kernel "val_k" ~params:[] (fun _ -> [ nop_mark 1 ]))
  in
  (match Gpu.Device.launch dev ~kernel:k ~grid:(0, 1) ~block:(32, 1) ~args:[] with
   | _ -> Alcotest.fail "empty grid accepted"
   | exception Invalid_argument _ -> ());
  (match Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(2048, 1) ~args:[] with
   | _ -> Alcotest.fail "oversized block accepted"
   | exception Invalid_argument _ -> ())

let test_transform_cache_generation () =
  (* Changing the transform must invalidate the kernel cache. *)
  let dev = device () in
  let calls = ref 0 in
  let transform tag k =
    incr calls;
    ignore tag;
    k
  in
  let k =
    Kernel.Compile.compile
      (kernel "cache_k" ~params:[ ptr "out" ] (fun p ->
           [ st_global (p 0) (int_ 3) ]))
  in
  let out = Gpu.Device.malloc dev 4 in
  let launch () =
    ignore
      (Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
         ~args:[ Gpu.Device.Ptr out ])
  in
  Gpu.Device.set_transform dev (Some (transform 1));
  launch ();
  launch ();
  check Alcotest.int "cached after first" 1 !calls;
  Gpu.Device.set_transform dev (Some (transform 2));
  launch ();
  check Alcotest.int "new generation recompiles" 2 !calls

(* --- Shared-memory bank conflicts ----------------------------------------- *)

let test_bank_conflicts () =
  let dev = device () in
  (* stride-32 word accesses: all 32 lanes hit bank 0 -> 31 extra. *)
  let k stride name =
    Kernel.Compile.compile
      (kernel name ~params:[ ptr "out" ] ~shared:[ ("buf", 4 * 32 * 32) ]
         (fun p ->
           [ let_ "t" tid_x;
             st_shared (shared_base "buf" +! (v "t" *! int_ (4 * stride)))
               (v "t");
             st_global (p 0 +! (v "t" <<! int_ 2)) (v "t") ]))
  in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let run kern =
    Gpu.Device.launch dev ~kernel:kern ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let s1 = run (k 1 "bank1") in
  let s32 = run (k 32 "bank32") in
  check Alcotest.int "unit stride: no conflicts" 0
    s1.Gpu.Stats.shared_conflicts;
  check Alcotest.int "stride 32: fully serialized" 31
    s32.Gpu.Stats.shared_conflicts

(* --- Multi-wave scheduling -------------------------------------------------- *)

let test_many_blocks_waves () =
  (* More blocks than fit at once: residency limit 16 warps/SM in the
     small config, so 64 blocks x 2 warps = 4 waves per SM. *)
  let dev = device () in
  let n = 64 * 64 in
  let out = Gpu.Device.malloc dev (4 * n) in
  let k =
    Kernel.Compile.compile
      (kernel "waves" ~params:[ ptr "out" ] (fun p ->
           [ let_ "gid" (global_tid_x ());
             st_global (p 0 +! (v "gid" <<! int_ 2)) (v "gid" *! int_ 7) ]))
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(64, 1) ~block:(64, 1)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n in
  for i = 0 to n - 1 do
    if result.(i) <> i * 7 then Alcotest.failf "waves out[%d]" i
  done

let test_2d_grid_and_block () =
  let dev = device () in
  let w = 16 and h = 8 in
  let out = Gpu.Device.malloc dev (4 * w * h * 4) in
  let k =
    Kernel.Compile.compile
      (kernel "grid2d" ~params:[ ptr "out" ] (fun p ->
           [ let_ "x" ((ctaid_x *! ntid_x) +! tid_x);
             let_ "y" ((ctaid_y *! ntid_y) +! tid_y);
             let_ "i" ((v "y" *! int_ (w * 2)) +! v "x");
             st_global (p 0 +! (v "i" <<! int_ 2))
               ((v "x" *! int_ 1000) +! v "y") ]))
  in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(2, 2) ~block:(w, h)
      ~args:[ Gpu.Device.Ptr out ]
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:(w * h * 4) in
  for y = 0 to (h * 2) - 1 do
    for x = 0 to (w * 2) - 1 do
      let got = result.((y * w * 2) + x) in
      if got <> (x * 1000) + y then
        Alcotest.failf "2d (%d,%d) = %d" x y got
    done
  done

(* --- Runtime site table ------------------------------------------------------ *)

let test_runtime_site_table () =
  let dev = device () in
  let rt = Sassi.Runtime.create () in
  Sassi.Runtime.attach rt dev
    [ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
         [ Sassi.Select.Mem_info ],
       Sassi.Handler.noop) ];
  let k =
    Kernel.Compile.compile
      (kernel "sites_k" ~params:[ ptr "a"; ptr "out" ] (fun p ->
           [ let_ "t" tid_x;
             let_ "x" (ldg (p 0 +! (v "t" <<! int_ 2)));
             st_global (p 1 +! (v "t" <<! int_ 2)) (v "x") ]))
  in
  let a = Gpu.Device.malloc dev (4 * 32) in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let _ =
    Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr out ]
  in
  let sites = Sassi.Runtime.sites_for_kernel rt "sites_k" in
  check Alcotest.int "2 memory sites" 2 (List.length sites);
  List.iter
    (fun s ->
       check Alcotest.bool "site is memory" true
         (Sass.Opcode.is_mem s.Sassi.Select.s_instr.Sass.Instr.op);
       let s' = Sassi.Runtime.site rt s.Sassi.Select.s_id in
       check Alcotest.int "lookup by id" s.Sassi.Select.s_old_pc
         s'.Sassi.Select.s_old_pc)
    sites;
  Sassi.Runtime.detach dev

(* --- Disassembly --------------------------------------------------------------- *)

let test_disassembly_landmarks () =
  let k =
    Kernel.Compile.compile
      (kernel "dis_k" ~params:[ ptr "a"; ptr "out" ] (fun p ->
           [ let_ "t" tid_x;
             when_ (v "t" <! int_ 8)
               [ st_global (p 1 +! (v "t" <<! int_ 2))
                   (ldg (p 0 +! (v "t" <<! int_ 2))) ] ]))
  in
  let text = Format.asprintf "%a" Sass.Program.pp k in
  List.iter
    (fun needle ->
       if not
            (String.length text >= String.length needle
             && (let re = Str.regexp_string needle in
                 try
                   ignore (Str.search_forward re text 0);
                   true
                 with Not_found -> false))
       then Alcotest.failf "disassembly missing %S in:\n%s" needle text)
    [ "S2R.SR_TID.X"; "ISETP"; "@!P0 BRA"; "LDE"; "STE"; "EXIT";
      "(reconv" ]

let test_instrumented_disassembly_landmarks () =
  let k =
    Kernel.Compile.compile
      (kernel "dis_i" ~params:[ ptr "out" ] (fun p ->
           [ st_global (p 0) (int_ 1) ]))
  in
  let r =
    Sassi.Inject.instrument ~next_id:(ref 0)
      ~specs:[ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
                  [ Sassi.Select.Mem_info ], 0) ]
      k
  in
  let text = Format.asprintf "%a" Sass.Program.pp r.Sassi.Inject.kernel in
  List.iter
    (fun needle ->
       let re = Str.regexp_string needle in
       (try ignore (Str.search_forward re text 0) with
        | Not_found -> Alcotest.failf "injected code missing %S:\n%s" needle text))
    [ "IADD R1, R1, 0xffffff80";  (* frame push *)
      "P2R R3"; "R2P"; "JCAL sassi_handler_0";
      "IADD R1, R1, 0x80"  (* frame pop *) ]

(* --- Workload helpers ------------------------------------------------------------ *)

let test_digest_stability () =
  let dev = device () in
  let a = Gpu.Device.malloc dev 64 in
  Gpu.Device.write_i32s dev ~addr:a (Array.init 16 (fun i -> i));
  let d1 = Workloads.Workload.digest_i32 dev ~addr:a ~n:16 in
  let d2 = Workloads.Workload.digest_i32 dev ~addr:a ~n:16 in
  check Alcotest.string "stable" d1 d2;
  Gpu.Device.write_i32 dev a 999;
  let d3 = Workloads.Workload.digest_i32 dev ~addr:a ~n:16 in
  check Alcotest.bool "sensitive" true (d1 <> d3);
  check Alcotest.bool "combine differs" true
    (Workloads.Workload.combine_digests [ d1; d3 ]
     <> Workloads.Workload.combine_digests [ d3; d1 ])

let test_grid_1d () =
  check (Alcotest.pair (Alcotest.pair Alcotest.int Alcotest.int)
           (Alcotest.pair Alcotest.int Alcotest.int))
    "exact" ((2, 1), (64, 1))
    (Workloads.Workload.grid_1d ~threads:128 ~block:64);
  let (gx, _), _ = Workloads.Workload.grid_1d ~threads:129 ~block:64 in
  check Alcotest.int "round up" 3 gx

(* --- Model-based cache check: LRU against a naive reference ----------- *)

let prop_cache_matches_reference =
  let open QCheck in
  Test.make ~name:"cache behaves as reference LRU" ~count:200
    (list_of_size (Gen.int_range 10 200) (int_bound 1023))
    (fun addrs ->
       let sets = 4 and assoc = 2 and line = 32 in
       let cache =
         Gpu.Cache.create ~name:"mbt" ~size_bytes:(sets * assoc * line)
           ~assoc ~line_bytes:line
       in
       (* Reference: per set, a most-recent-first list of tags. *)
       let reference = Array.make sets [] in
       let ok = ref true in
       List.iter
         (fun addr ->
            let tag = addr / line in
            let s = tag mod sets in
            let hit_model = List.mem tag reference.(s) in
            let outcome = Gpu.Cache.access cache addr in
            let hit_real = outcome = Gpu.Cache.Hit in
            if hit_model <> hit_real then ok := false;
            let without = List.filter (fun t -> t <> tag) reference.(s) in
            let rec take n = function
              | [] -> []
              | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
            in
            reference.(s) <- tag :: take (assoc - 1) without)
         addrs;
       !ok)

let model_suite =
  ("misc.cache-model",
   [ QCheck_alcotest.to_alcotest prop_cache_matches_reference ])

(* --- Value edge cases + campaign tally -------------------------------- *)

let test_value_edges () =
  (* rcp(0) -> +inf bits; f2i(NaN) -> 0; f2i saturates. *)
  let inf_bits = Gpu.Value.mufu Sass.Opcode.Rcp (Gpu.Value.bits_of_f32 0.0) in
  check Alcotest.bool "rcp 0 is inf" true
    (Float.is_integer (Gpu.Value.f32_of_bits inf_bits) = false
     || Float.is_nan (Gpu.Value.f32_of_bits inf_bits)
     || Gpu.Value.f32_of_bits inf_bits = Float.infinity);
  check Alcotest.int "f2i nan" 0
    (Gpu.Value.f2i ~sign:Sass.Opcode.Signed
       (Gpu.Value.bits_of_f32 Float.nan));
  check Alcotest.int "f2i saturate hi" 0x7FFFFFFF
    (Gpu.Value.f2i ~sign:Sass.Opcode.Signed (Gpu.Value.bits_of_f32 1e20));
  check Alcotest.int "f2i unsigned clamp" 0
    (Gpu.Value.f2i ~sign:Sass.Opcode.Unsigned
       (Gpu.Value.bits_of_f32 (-5.0)));
  check Alcotest.int "u2f big" (Gpu.Value.bits_of_f32 4294967040.0)
    (Gpu.Value.i2f ~sign:Sass.Opcode.Unsigned 0xFFFFFF00);
  check Alcotest.int "i2f negative"
    (Gpu.Value.bits_of_f32 (-1.0))
    (Gpu.Value.i2f ~sign:Sass.Opcode.Signed (Gpu.Value.of_signed (-1)))

let test_campaign_tally () =
  let open Handlers.Error_inject in
  let t =
    Workloads.Campaign.tally_of_outcomes
      [ Masked; Masked; Crash "x"; Hang; Failure_symptom "y"; Sdc_stdout;
        Sdc_output; Sdc_output ]
  in
  check Alcotest.int "masked" 2 t.Workloads.Campaign.masked;
  check Alcotest.int "crash" 1 t.Workloads.Campaign.crashes;
  check Alcotest.int "hang" 1 t.Workloads.Campaign.hangs;
  check Alcotest.int "symptom" 1 t.Workloads.Campaign.failure_symptoms;
  check Alcotest.int "sdc stdout" 1 t.Workloads.Campaign.sdc_stdout;
  check Alcotest.int "sdc output" 2 t.Workloads.Campaign.sdc_output;
  check Alcotest.int "total" 8 t.Workloads.Campaign.total;
  let m, c, _, _, _, so = Workloads.Campaign.fractions t in
  check (Alcotest.float 1e-9) "masked frac" 0.25 m;
  check (Alcotest.float 1e-9) "crash frac" 0.125 c;
  check (Alcotest.float 1e-9) "sdc frac" 0.25 so

let test_classify_categories () =
  let open Handlers.Error_inject in
  let golden = ("d", "s") in
  check Alcotest.bool "masked" true
    (classify ~reference:golden (fun () -> ("d", "s")) = Masked);
  check Alcotest.bool "sdc output" true
    (classify ~reference:golden (fun () -> ("x", "s")) = Sdc_output);
  check Alcotest.bool "sdc stdout" true
    (classify ~reference:golden (fun () -> ("d", "x")) = Sdc_stdout);
  check Alcotest.bool "hang" true
    (classify ~reference:golden (fun () -> raise (Gpu.Trap.Hang { cycles = 1 }))
     = Hang);
  (match
     classify ~reference:golden (fun () ->
         raise
           (Gpu.Trap.Memory_fault
              { space = Sass.Opcode.Global; addr = 0;
                kind = Gpu.Trap.Out_of_bounds }))
   with
   | Crash _ -> ()
   | o -> Alcotest.failf "expected crash, got %s" (outcome_to_string o));
  (match
     classify ~reference:golden (fun () ->
         raise (Gpu.Trap.Device_assert "bad"))
   with
   | Failure_symptom _ -> ()
   | o -> Alcotest.failf "expected symptom, got %s" (outcome_to_string o))

let edge_suite =
  ("misc.edges",
   [ Alcotest.test_case "value edges" `Quick test_value_edges;
     Alcotest.test_case "campaign tally" `Quick test_campaign_tally;
     Alcotest.test_case "classify" `Quick test_classify_categories ])

let suite =
  [ ("misc.device",
     [ Alcotest.test_case "malloc alignment" `Quick test_malloc_alignment;
       Alcotest.test_case "malloc OOM" `Quick test_malloc_oom;
       Alcotest.test_case "f32/u64 roundtrip" `Quick test_f32_u64_roundtrips;
       Alcotest.test_case "invocation counts" `Quick test_invocation_counts;
       Alcotest.test_case "launch validation" `Quick test_launch_validation;
       Alcotest.test_case "transform cache" `Quick
         test_transform_cache_generation ]);
    ("misc.machine",
     [ Alcotest.test_case "bank conflicts" `Quick test_bank_conflicts;
       Alcotest.test_case "multi-wave scheduling" `Quick
         test_many_blocks_waves;
       Alcotest.test_case "2d grid/block" `Quick test_2d_grid_and_block ]);
    ("misc.runtime",
     [ Alcotest.test_case "site table" `Quick test_runtime_site_table ]);
    ("misc.disasm",
     [ Alcotest.test_case "landmarks" `Quick test_disassembly_landmarks;
       Alcotest.test_case "instrumented landmarks" `Quick
         test_instrumented_disassembly_landmarks ]);
    ("misc.workload-helpers",
     [ Alcotest.test_case "digests" `Quick test_digest_stability;
       Alcotest.test_case "grid_1d" `Quick test_grid_1d ]);
    model_suite;
    edge_suite ]
