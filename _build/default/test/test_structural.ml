(* Tests for the structural instrumentation points (basic-block
   headers, kernel entry/exit) and the block-profile handler. *)

open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

(* if/else kernel: 4 static blocks (entry, then, else, join). *)
let branchy =
  kernel "blk_branchy" ~params:[ ptr "out" ] (fun p ->
      [ let_ "t" tid_x;
        let_ "r" (int_ 0);
        if_ (v "t" <! int_ 8)
          [ set "r" (int_ 1) ]
          [ set "r" (int_ 2) ];
        st_global (p 0 +! (v "t" <<! int_ 2)) (v "r") ])

let test_matches_at () =
  let open Sassi.Select in
  let mov =
    Sass.Instr.make Sass.Opcode.MOV ~dsts:[ Sass.Reg.r 0 ]
      ~srcs:[ Sass.Instr.SImm 0 ]
  in
  let exit_i = Sass.Instr.make Sass.Opcode.EXIT in
  check Alcotest.bool "leader matches basic block" true
    (matches_at (before [ Basic_block ] []) ~pc:5 ~is_leader:true mov);
  check Alcotest.bool "non-leader does not" false
    (matches_at (before [ Basic_block ] []) ~pc:5 ~is_leader:false mov);
  check Alcotest.bool "pc0 is kernel entry" true
    (matches_at (before [ Kernel_entry ] []) ~pc:0 ~is_leader:true mov);
  check Alcotest.bool "pc1 is not entry" false
    (matches_at (before [ Kernel_entry ] []) ~pc:1 ~is_leader:false mov);
  check Alcotest.bool "EXIT matches kernel exit" true
    (matches_at (before [ Kernel_exit ] []) ~pc:9 ~is_leader:false exit_i);
  check Alcotest.bool "MOV does not match exit" false
    (matches_at (before [ Kernel_exit ] []) ~pc:9 ~is_leader:false mov);
  check Alcotest.bool "structural classes are before-only" false
    (matches_at (after [ Basic_block ] []) ~pc:5 ~is_leader:true mov);
  check Alcotest.bool "plain matches rejects structural" false
    (matches (before [ Basic_block ] []) mov)

let test_block_profile_counts () =
  let dev = device () in
  let bp = Handlers.Block_profile.create dev in
  let out = Gpu.Device.malloc dev (4 * 64) in
  let compiled = Kernel.Compile.compile branchy in
  let nwarps = 2 (* one block of 64 threads *) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Block_profile.pairs bp)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(64, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  check Alcotest.int "entries = warps" nwarps
    (Handlers.Block_profile.entries bp);
  check Alcotest.int "exits = warps" nwarps (Handlers.Block_profile.exits bp);
  let blocks = Handlers.Block_profile.blocks bp in
  (* Entry, then, else, join blocks; warp 0 diverges (t<8 splits it),
     warp 1 goes entirely to the else side. *)
  check Alcotest.int "4 static blocks" 4 (List.length blocks);
  let execs =
    List.map (fun b -> b.Handlers.Block_profile.warp_execs) blocks
    |> List.sort Int.compare
  in
  (* then-block: 1 warp; else-block: 2 warps; entry and join: 2 each. *)
  check (Alcotest.list Alcotest.int) "warp execs" [ 1; 2; 2; 2 ] execs;
  let threads =
    List.fold_left
      (fun a b -> a + b.Handlers.Block_profile.thread_execs)
      0 blocks
  in
  (* entry 64 + then 8 + else 56 + join 64 *)
  check Alcotest.int "thread execs" 192 threads

let test_multiple_specs_same_site () =
  (* Block + entry handlers both fire at PC 0. *)
  let dev = device () in
  let hits = ref [] in
  let mk tag =
    Sassi.Handler.make ~name:tag (fun _ -> hits := tag :: !hits)
  in
  let k =
    Kernel.Compile.compile
      (kernel "blk_tiny" ~params:[ ptr "out" ] (fun p ->
           [ st_global (p 0) (int_ 7) ]))
  in
  let out = Gpu.Device.malloc dev 4 in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.before [ Sassi.Select.Basic_block ] [], mk "block");
        (Sassi.Select.before [ Sassi.Select.Kernel_entry ] [], mk "entry") ]
      (fun _ ->
        Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  check Alcotest.bool "both handlers fired" true
    (List.mem "block" !hits && List.mem "entry" !hits);
  check Alcotest.int "result still correct" 7 (Gpu.Device.read_i32 dev out)

let test_loop_block_counts () =
  (* A loop body block must be counted once per iteration per warp. *)
  let dev = device () in
  let bp = Handlers.Block_profile.create dev in
  let k =
    Kernel.Compile.compile
      (kernel "blk_loop" ~params:[ ptr "out" ] (fun p ->
           [ let_ "acc" (int_ 0);
             for_ "i" (int_ 0) (int_ 5)
               [ set "acc" (v "acc" +! v "i") ];
             st_global (p 0 +! (tid_x <<! int_ 2)) (v "acc") ]))
  in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Block_profile.pairs bp)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  let blocks = Handlers.Block_profile.blocks bp in
  check Alcotest.bool "some block executed 5 times (loop body)" true
    (List.exists
       (fun b -> b.Handlers.Block_profile.warp_execs = 5)
       blocks);
  check Alcotest.int "loop result" 10 (Gpu.Device.read_i32 dev out)

(* --- Memory trace + cache explorer (paper Sec. 9.4) -------------------- *)

let test_mem_trace_collection () =
  let dev = device () in
  let tr = Handlers.Mem_trace.create () in
  let k =
    Kernel.Compile.compile
      (kernel "trace_me" ~params:[ ptr "a"; ptr "out" ] (fun p ->
           [ let_ "t" tid_x;
             let_ "x" (ldg (p 0 +! (v "t" <<! int_ 2)));
             st_global (p 1 +! (v "t" <<! int_ 2)) (v "x" +! int_ 1) ]))
  in
  let a = Gpu.Device.malloc dev (4 * 32) in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Mem_trace.pairs tr)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr out ])
  in
  let trace = Handlers.Mem_trace.trace tr in
  check Alcotest.int "one load + one store traced" 2 (List.length trace);
  (match trace with
   | [ load; store ] ->
     check Alcotest.bool "load first" false load.Handlers.Mem_trace.a_write;
     check Alcotest.bool "store second" true store.Handlers.Mem_trace.a_write;
     check Alcotest.int "32 lanes" 32
       (Array.length load.Handlers.Mem_trace.a_addrs);
     check Alcotest.int "load base addr" a load.Handlers.Mem_trace.a_addrs.(0);
     check Alcotest.int "store base addr" out
       store.Handlers.Mem_trace.a_addrs.(0)
   | _ -> Alcotest.fail "unexpected trace shape")

let test_cache_explorer_monotone () =
  (* Replay a strided trace: bigger caches cannot miss more. *)
  let dev = device () in
  let tr = Handlers.Mem_trace.create () in
  let k =
    Kernel.Compile.compile
      (kernel "trace_stride" ~params:[ ptr "a"; ptr "out" ] (fun p ->
           [ let_ "gid" (global_tid_x ());
             let_ "acc" (int_ 0);
             for_ "i" (int_ 0) (int_ 8)
               [ set "acc"
                   (v "acc"
                    +! ldg (p 0 +! (((v "gid" *! int_ 8) +! v "i") <<! int_ 2))) ];
             st_global (p 1 +! (v "gid" <<! int_ 2)) (v "acc") ]))
  in
  let a = Gpu.Device.malloc dev (4 * 8 * 256) in
  let out = Gpu.Device.malloc dev (4 * 256) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Mem_trace.pairs tr)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:k ~grid:(4, 1) ~block:(64, 1)
          ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr out ])
  in
  let trace = Handlers.Mem_trace.trace tr in
  check Alcotest.bool "trace nonempty" true (List.length trace >= 72);
  let small =
    Handlers.Cache_explorer.replay trace
      { Handlers.Cache_explorer.c_size_bytes = 1024; c_assoc = 4;
        c_line_bytes = 32 }
  in
  let large =
    Handlers.Cache_explorer.replay trace
      { Handlers.Cache_explorer.c_size_bytes = 256 * 1024; c_assoc = 4;
        c_line_bytes = 32 }
  in
  check Alcotest.bool "same transactions" true
    (small.Handlers.Cache_explorer.r_transactions
     = large.Handlers.Cache_explorer.r_transactions);
  check Alcotest.bool "bigger cache misses no more" true
    (large.Handlers.Cache_explorer.r_misses
     <= small.Handlers.Cache_explorer.r_misses);
  check Alcotest.bool "hits + misses = transactions" true
    (small.Handlers.Cache_explorer.r_hits
     + small.Handlers.Cache_explorer.r_misses
     = small.Handlers.Cache_explorer.r_transactions)

let test_trace_capacity () =
  let tr = Handlers.Mem_trace.create ~capacity:1 () in
  let dev = device () in
  let k =
    Kernel.Compile.compile
      (kernel "trace_cap" ~params:[ ptr "out" ] (fun p ->
           [ st_global (p 0) (int_ 1);
             st_global (p 0 +! int_ 4) (int_ 2) ]))
  in
  let out = Gpu.Device.malloc dev 64 in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Mem_trace.pairs tr)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  check Alcotest.int "capacity respected" 1 (Handlers.Mem_trace.length tr);
  check Alcotest.int "dropped counted" 1 (Handlers.Mem_trace.dropped tr)

let trace_suite =
  ("sassi.memtrace",
   [ Alcotest.test_case "collection" `Quick test_mem_trace_collection;
     Alcotest.test_case "cache explorer" `Quick test_cache_explorer_monotone;
     Alcotest.test_case "capacity" `Quick test_trace_capacity ])

(* --- UVM sharing profile (paper Sec. 9.4 heterogeneous analysis) ------- *)

let test_uvm_profile () =
  let dev = device () in
  let uvm = Handlers.Uvm_profile.create ~page_bytes:4096 dev in
  let k =
    Kernel.Compile.compile
      (kernel "uvm_k" ~params:[ ptr "a"; ptr "out" ] (fun p ->
           [ let_ "t" tid_x;
             st_global (p 1 +! (v "t" <<! int_ 2))
               (ldg (p 0 +! (v "t" <<! int_ 2)) +! int_ 1) ]))
  in
  let a = Gpu.Device.malloc dev 4096 in
  let out = Gpu.Device.malloc dev 4096 in
  (* CPU writes input. *)
  Gpu.Device.write_i32s dev ~addr:a (Array.init 32 (fun i -> i));
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Uvm_profile.pairs uvm)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:k ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr out ])
  in
  (* CPU reads the output back. *)
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  Handlers.Uvm_profile.detach_host uvm;
  check Alcotest.int "result" 1 result.(0);
  let s = Handlers.Uvm_profile.summary uvm in
  (* Input page: CPU write then GPU read -> shared, 1 migration.
     Output page: GPU write then CPU read -> shared, 1 migration. *)
  check Alcotest.int "two shared pages" 2 s.Handlers.Uvm_profile.shared;
  check Alcotest.int "two migrations" 2
    s.Handlers.Uvm_profile.total_migrations;
  let ps = Handlers.Uvm_profile.pages uvm in
  check Alcotest.int "two pages tracked" 2 (List.length ps);
  (* After detaching, host accesses are no longer recorded. *)
  let _ = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  check Alcotest.int "detached"
    s.Handlers.Uvm_profile.total_migrations
    (Handlers.Uvm_profile.summary uvm).Handlers.Uvm_profile.total_migrations

let uvm_suite =
  ("sassi.uvm",
   [ Alcotest.test_case "page sharing + migrations" `Quick test_uvm_profile ])

let suite =
  [ ("sassi.structural",
     [ Alcotest.test_case "matches_at" `Quick test_matches_at;
       Alcotest.test_case "block profile counts" `Quick
         test_block_profile_counts;
       Alcotest.test_case "multiple specs per site" `Quick
         test_multiple_specs_same_site;
       Alcotest.test_case "loop block counts" `Quick test_loop_block_counts ]);
    trace_suite;
    uvm_suite ]
