(* Re-exports workload-internal dataset constructions for host
   reference computations in tests. *)

let bfs_graph variant = Workloads.Wl_bfs_parboil.graph_of_variant variant
