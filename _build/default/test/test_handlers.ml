(* Tests for the CUPTI substrate and the four case-study handler
   libraries, checking their measurements against ground truth the
   machine statistics provide. *)

open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

let vadd =
  kernel "h_vadd" ~params:[ ptr "a"; ptr "b"; ptr "out"; int "n" ] (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 3);
        let_ "off" (v "gid" <<! int_ 2);
        let_ "s" (ldg (p 0 +! v "off") +! ldg (p 1 +! v "off"));
        st_global (p 2 +! v "off") (v "s") ])

let run_vadd dev n =
  let a = Gpu.Device.malloc dev (4 * n) in
  let b = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i));
  Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> i * 2));
  Gpu.Device.launch dev ~kernel:(Kernel.Compile.compile vadd)
    ~grid:((n + 63) / 64, 1)
    ~block:(64, 1)
    ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr out;
            Gpu.Device.I32 n ]

(* --- CUPTI -------------------------------------------------------------- *)

let test_counters_roundtrip () =
  let dev = device () in
  let c = Cupti.Counters.alloc dev ~slots:4 in
  check (Alcotest.array Alcotest.int) "zeroed" [| 0; 0; 0; 0 |]
    (Cupti.Counters.read c);
  Gpu.Device.write_u64 dev (Cupti.Counters.addr ~slot:2 c) 77;
  check Alcotest.int "slot 2" 77 (Cupti.Counters.read c).(2);
  let v = Cupti.Counters.read_and_zero c in
  check Alcotest.int "read_and_zero returns" 77 v.(2);
  check Alcotest.int "then zero" 0 (Cupti.Counters.read c).(2)

let test_callbacks_fire () =
  let dev = device () in
  let launches = ref [] in
  let exits = ref [] in
  let sub =
    Cupti.Callback.subscribe dev Cupti.Callback.Kernel_launch (fun info ->
        launches := (info.Cupti.Callback.kernel_name,
                     info.Cupti.Callback.invocation) :: !launches)
  in
  let _ =
    Cupti.Callback.subscribe dev Cupti.Callback.Kernel_exit (fun info ->
        exits := info.Cupti.Callback.kernel_name :: !exits)
  in
  let _ = run_vadd dev 64 in
  let _ = run_vadd dev 64 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "launch callbacks with invocation ids"
    [ ("h_vadd", 1); ("h_vadd", 0) ]
    !launches;
  check Alcotest.int "exit callbacks" 2 (List.length !exits);
  Cupti.Callback.unsubscribe dev sub;
  let _ = run_vadd dev 64 in
  check Alcotest.int "unsubscribed" 2 (List.length !launches)

(* --- Opcode histogram (Figure 3) ---------------------------------------- *)

let test_opcode_hist () =
  let dev = device () in
  let hist = Handlers.Opcode_hist.create dev in
  let n = 128 in
  let stats =
    Sassi.Runtime.with_instrumentation dev (Handlers.Opcode_hist.pairs hist)
      (fun _ -> run_vadd dev n)
  in
  let counts = Handlers.Opcode_hist.read hist in
  (* vadd: 3 memory ops per thread. *)
  check Alcotest.int "memory = 3n" (3 * n)
    counts.Handlers.Opcode_hist.memory;
  check Alcotest.int "no texture" 0 counts.Handlers.Opcode_hist.texture;
  check Alcotest.int "no wide accesses" 0
    counts.Handlers.Opcode_hist.extended_memory;
  check Alcotest.bool "sync >= 0 and control > 0" true
    (counts.Handlers.Opcode_hist.control > 0);
  (* Total thread-level instructions must match the machine's count of
     executed thread instructions for original (non-injected) code.
     The machine counts issued lanes including masked-off warps'
     instructions, so the handler count (guard-respecting) is <=. *)
  check Alcotest.bool "total близко to machine" true
    (counts.Handlers.Opcode_hist.total <= stats.Gpu.Stats.thread_instrs);
  check Alcotest.bool "total positive" true
    (counts.Handlers.Opcode_hist.total > 0)

(* --- Branch stats (Case Study I) ----------------------------------------- *)

let branchy =
  kernel "h_branchy" ~params:[ ptr "out"; int "n" ] (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 1);
        let_ "r" (int_ 0);
        (* Divergent branch: half a warp each way. *)
        if_ (v "gid" %! int_ 2 ==! int_ 0)
          [ set "r" (int_ 1) ]
          [ set "r" (int_ 2) ];
        (* Uniform branch: all threads agree. *)
        if_ (p 1 >! int_ 0) [ set "r" (v "r" +! int_ 10) ] [];
        st_global (p 0 +! (v "gid" <<! int_ 2)) (v "r") ])

let test_branch_stats () =
  let dev = device () in
  let bs = Handlers.Branch_stats.create dev in
  let n = 256 in
  let out = Gpu.Device.malloc dev (4 * n) in
  let stats =
    Sassi.Runtime.with_instrumentation dev (Handlers.Branch_stats.pairs bs)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:(Kernel.Compile.compile branchy)
          ~grid:(n / 64, 1) ~block:(64, 1)
          ~args:[ Gpu.Device.Ptr out; Gpu.Device.I32 n ])
  in
  let s = Handlers.Branch_stats.summary bs in
  (* Handler's dynamic divergence must agree with the machine's own
     divergent-branch counter. *)
  check Alcotest.int "handler divergence = machine divergence"
    stats.Gpu.Stats.divergent_branches
    s.Handlers.Branch_stats.dynamic_divergent;
  check Alcotest.int "handler branches = machine cond branches"
    stats.Gpu.Stats.branches s.Handlers.Branch_stats.dynamic_branches;
  (* The mod-2 branch diverges in every warp; the n>0 and gid>=n
     branches never do. *)
  check Alcotest.bool "some divergent static branch" true
    (s.Handlers.Branch_stats.static_divergent >= 1);
  check Alcotest.bool "some non-divergent static branch" true
    (s.Handlers.Branch_stats.static_branches
     > s.Handlers.Branch_stats.static_divergent);
  (* Per-branch records. *)
  let bl = Handlers.Branch_stats.branches bs in
  check Alcotest.bool "sorted by weight" true
    (let rec sorted = function
       | a :: (b :: _ as rest) ->
         a.Handlers.Branch_stats.total >= b.Handlers.Branch_stats.total
         && sorted rest
       | _ -> true
     in
     sorted bl);
  List.iter
    (fun b ->
       check Alcotest.int "taken + not_taken = active"
         b.Handlers.Branch_stats.active
         (b.Handlers.Branch_stats.taken + b.Handlers.Branch_stats.not_taken))
    bl

(* --- Memory divergence (Case Study II) ----------------------------------- *)

let stride_kernel name stride =
  kernel name ~params:[ ptr "data"; ptr "out" ] (fun p ->
      [ let_ "gid" (global_tid_x ());
        let_ "x" (ldg (p 0 +! (v "gid" *! int_ (4 * stride))));
        st_global (p 1 +! (v "gid" <<! int_ 2)) (v "x") ])

let run_memdiv stride =
  let dev = device () in
  let md = Handlers.Mem_divergence.create dev in
  let data = Gpu.Device.malloc dev (4 * 32 * 64) in
  let out = Gpu.Device.malloc dev (4 * 64) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Mem_divergence.pairs md)
      (fun _ ->
        Gpu.Device.launch dev
          ~kernel:(Kernel.Compile.compile (stride_kernel "h_stride" stride))
          ~grid:(2, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr data; Gpu.Device.Ptr out ])
  in
  md

let test_mem_divergence_unit_stride () =
  let md = run_memdiv 1 in
  let pmf = Handlers.Mem_divergence.pmf md in
  (* Unit stride, 4B elements, 32B lines: loads touch 4 unique lines;
     the unit-stride stores to out touch 4 as well. All mass at u=4. *)
  check (Alcotest.float 1e-9) "all accesses at 4 unique lines" 1.0 pmf.(3);
  let m = Handlers.Mem_divergence.matrix md in
  check Alcotest.bool "full warps" true (m.(31).(3) > 0)

let test_mem_divergence_full_divergence () =
  let md = run_memdiv 32 in
  let pmf = Handlers.Mem_divergence.pmf md in
  (* The strided loads are fully diverged (32 unique lines); the
     stores are still unit-stride (4 lines). Loads and stores are
     issued in equal numbers, so each gets half the thread accesses. *)
  check (Alcotest.float 1e-9) "half of accesses fully diverged" 0.5 pmf.(31);
  check (Alcotest.float 1e-9) "half at 4 lines" 0.5 pmf.(3);
  check Alcotest.bool "diverged fraction" true
    (Handlers.Mem_divergence.fully_diverged_fraction md >= 0.49)

(* --- Value profile (Case Study III) -------------------------------------- *)

let test_value_profile () =
  let dev = device () in
  let vp = Handlers.Value_profile.create dev in
  (* x = 5 is scalar with all bits constant; y = tid is neither. *)
  let k =
    kernel "h_values" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          let_ "x" (int_ 5 +! (v "t" *! int_ 0));
          let_ "y" (v "t" +! int_ 0);
          st_global (p 0 +! (v "t" <<! int_ 2)) (v "x" +! v "y") ])
  in
  let compiled =
    Kernel.Compile.compile
      ~options:{ Kernel.Compile.max_regs = 63; opt_level = 0 }
      k
  in
  let out = Gpu.Device.malloc dev (4 * 64) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Value_profile.pairs vp)
      (fun _ ->
        Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(64, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  let profiles = Handlers.Value_profile.profiles vp in
  check Alcotest.bool "profiles collected" true (profiles <> []);
  (* Find a scalar all-constant write (the x = 5 MOV) and a
     non-scalar one (the tid S2R). *)
  let scalar_const =
    List.exists
      (fun p ->
         p.Handlers.Value_profile.num_dsts > 0
         && p.Handlers.Value_profile.is_scalar.(0)
         && Handlers.Value_profile.constant_bit_count p 0 = 32)
      profiles
  in
  let varying =
    List.exists
      (fun p ->
         p.Handlers.Value_profile.num_dsts > 0
         && not p.Handlers.Value_profile.is_scalar.(0))
      profiles
  in
  check Alcotest.bool "found scalar constant write" true scalar_const;
  check Alcotest.bool "found varying write" true varying;
  let s = Handlers.Value_profile.summary vp in
  check Alcotest.bool "const bits pct sane" true
    (s.Handlers.Value_profile.dynamic_const_bits_pct > 0.0
     && s.Handlers.Value_profile.dynamic_const_bits_pct <= 100.0);
  check Alcotest.bool "scalar pct sane" true
    (s.Handlers.Value_profile.static_scalar_pct > 0.0
     && s.Handlers.Value_profile.static_scalar_pct <= 100.0)

let test_value_profile_tid_bits () =
  (* A warp's tid values 0..63 use 6 low bits: the 26 high bits are
     constant zero and the write is non-scalar. *)
  let dev = device () in
  let vp = Handlers.Value_profile.create dev in
  let k =
    kernel "h_tidbits" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          st_global (p 0 +! (v "t" <<! int_ 2)) (v "t") ])
  in
  let out = Gpu.Device.malloc dev (4 * 64) in
  let _ =
    Sassi.Runtime.with_instrumentation dev (Handlers.Value_profile.pairs vp)
      (fun _ ->
        Gpu.Device.launch dev
          ~kernel:
            (Kernel.Compile.compile
               ~options:{ Kernel.Compile.max_regs = 63; opt_level = 0 }
               k)
          ~grid:(1, 1) ~block:(64, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  let tid_profile =
    List.find_opt
      (fun p ->
         p.Handlers.Value_profile.num_dsts > 0
         && (not p.Handlers.Value_profile.is_scalar.(0))
         && Handlers.Value_profile.constant_bit_count p 0 = 26)
      (Handlers.Value_profile.profiles vp)
  in
  check Alcotest.bool "tid write: 26 constant bits, non-scalar" true
    (tid_profile <> None)

(* --- Error injection (Case Study IV) -------------------------------------- *)

let digest_output dev addr n =
  Digest.to_hex (Digest.string (String.concat ","
    (Array.to_list (Array.map string_of_int
       (Gpu.Device.read_i32s dev ~addr ~n)))))

let test_error_injection_profile_and_pick () =
  let dev = device () in
  let profile = Handlers.Error_inject.Profile.create () in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      (Handlers.Error_inject.Profile.pairs profile)
      (fun _ -> run_vadd dev 64)
  in
  let total = Handlers.Error_inject.Profile.total_dynamic_instrs profile in
  check Alcotest.bool "profiled dynamic instrs" true (total > 64);
  let targets =
    Handlers.Error_inject.Profile.pick_targets profile ~seed:42 ~n:10
  in
  check Alcotest.int "10 targets" 10 (List.length targets);
  let targets' =
    Handlers.Error_inject.Profile.pick_targets profile ~seed:42 ~n:10
  in
  check Alcotest.bool "deterministic picks" true (targets = targets');
  List.iter
    (fun t ->
       check Alcotest.string "kernel name" "h_vadd"
         t.Handlers.Error_inject.t_kernel;
       check Alcotest.bool "thread in range" true
         (t.Handlers.Error_inject.t_thread >= 0
          && t.Handlers.Error_inject.t_thread < 64))
    targets

let test_error_injection_flips () =
  (* Golden run. *)
  let n = 64 in
  let dev0 = device () in
  let _ = run_vadd dev0 n in
  (* Profile on a fresh device. *)
  let devp = device () in
  let profile = Handlers.Error_inject.Profile.create () in
  let _ =
    Sassi.Runtime.with_instrumentation devp
      (Handlers.Error_inject.Profile.pairs profile)
      (fun _ -> run_vadd devp n)
  in
  let targets =
    Handlers.Error_inject.Profile.pick_targets profile ~seed:7 ~n:20
  in
  let fired = ref 0 in
  let outcomes =
    List.map
      (fun target ->
         let injected = ref false in
         let dev = device () in
         let a = Gpu.Device.malloc dev (4 * n) in
         let b = Gpu.Device.malloc dev (4 * n) in
         let out = Gpu.Device.malloc dev (4 * n) in
         Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i));
         Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> i * 2));
         let run () =
           let _ =
             Sassi.Runtime.with_instrumentation dev
               (Handlers.Error_inject.injection_pairs target ~injected)
               (fun _ ->
                 Gpu.Device.launch dev ~kernel:(Kernel.Compile.compile vadd)
                   ~grid:((n + 63) / 64, 1)
                   ~block:(64, 1)
                   ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b;
                           Gpu.Device.Ptr out; Gpu.Device.I32 n ])
           in
           (digest_output dev out n, "")
         in
         let reference =
           (* Fault-free digest computed on an identical clean device. *)
           let devr = device () in
           let ar = Gpu.Device.malloc devr (4 * n) in
           let br = Gpu.Device.malloc devr (4 * n) in
           let outr = Gpu.Device.malloc devr (4 * n) in
           Gpu.Device.write_i32s devr ~addr:ar (Array.init n (fun i -> i));
           Gpu.Device.write_i32s devr ~addr:br (Array.init n (fun i -> i * 2));
           let _ =
             Gpu.Device.launch devr ~kernel:(Kernel.Compile.compile vadd)
               ~grid:((n + 63) / 64, 1)
               ~block:(64, 1)
               ~args:[ Gpu.Device.Ptr ar; Gpu.Device.Ptr br;
                       Gpu.Device.Ptr outr; Gpu.Device.I32 n ]
           in
           (digest_output devr outr n, "")
         in
         let o = Handlers.Error_inject.classify ~reference run in
         if !injected then incr fired;
         o)
      targets
  in
  check Alcotest.int "every run injected" (List.length targets) !fired;
  let sdc =
    List.length
      (List.filter
         (function
           | Handlers.Error_inject.Sdc_output -> true
           | _ -> false)
         outcomes)
  in
  let masked =
    List.length
      (List.filter (fun o -> o = Handlers.Error_inject.Masked) outcomes)
  in
  (* In a tiny arithmetic kernel most flips of live data registers
     corrupt the output; some flips land in dead bits/registers. *)
  check Alcotest.bool "some corruptions" true (sdc > 0);
  check Alcotest.bool "sdc + masked + others = all" true
    (sdc + masked <= List.length outcomes)

let suite =
  [ ("cupti",
     [ Alcotest.test_case "counters" `Quick test_counters_roundtrip;
       Alcotest.test_case "callbacks" `Quick test_callbacks_fire ]);
    ("handlers.opcode_hist",
     [ Alcotest.test_case "figure 3 handler" `Quick test_opcode_hist ]);
    ("handlers.branch_stats",
     [ Alcotest.test_case "case study I" `Quick test_branch_stats ]);
    ("handlers.mem_divergence",
     [ Alcotest.test_case "unit stride" `Quick test_mem_divergence_unit_stride;
       Alcotest.test_case "full divergence" `Quick
         test_mem_divergence_full_divergence ]);
    ("handlers.value_profile",
     [ Alcotest.test_case "scalar + const bits" `Quick test_value_profile;
       Alcotest.test_case "tid bit profile" `Quick
         test_value_profile_tid_bits ]);
    ("handlers.error_inject",
     [ Alcotest.test_case "profile + pick" `Quick
         test_error_injection_profile_and_pick;
       Alcotest.test_case "flips change outcomes" `Quick
         test_error_injection_flips ]) ]
