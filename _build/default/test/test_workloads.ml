(* Workload validation: host-reference correctness for the exactly
   checkable benchmarks, determinism of output digests, and a smoke
   pass over every registered variant. *)

let check = Alcotest.check

let fresh () = Gpu.Device.create ~cfg:Gpu.Config.default ()

let run_wl w variant =
  w.Workloads.Workload.run (fresh ()) ~variant

(* --- Host references ----------------------------------------------------- *)

let test_bfs_parboil_matches_host () =
  (* Recreate the NY graph and BFS it on the host. *)
  let g = Datasets_access.bfs_graph "NY" in
  let n = g.Workloads.Datasets.num_nodes in
  let host_levels = Array.make n (-1) in
  host_levels.(g.Workloads.Datasets.source) <- 0;
  let q = Queue.create () in
  Queue.add g.Workloads.Datasets.source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for e = g.Workloads.Datasets.row_offsets.(u)
      to g.Workloads.Datasets.row_offsets.(u + 1) - 1 do
      let v = g.Workloads.Datasets.columns.(e) in
      if host_levels.(v) = -1 then begin
        host_levels.(v) <- host_levels.(u) + 1;
        Queue.add v q
      end
    done
  done;
  let host_visited =
    Array.fold_left (fun a l -> if l >= 0 then a + 1 else a) 0 host_levels
  in
  let host_depth = Array.fold_left max 0 host_levels in
  let r = run_wl Workloads.Wl_bfs_parboil.workload "NY" in
  (* Levels of individual nodes can differ between valid BFS orders
     only if the device BFS were wrong — level sync makes them unique,
     so visited count and depth are exact. *)
  check Alcotest.string "bfs stdout matches host"
    (Printf.sprintf "visited=%d depth=%d" host_visited host_depth)
    r.Workloads.Workload.stdout

let test_histo_matches_host () =
  let r = run_wl Workloads.Wl_histo.workload "default" in
  (* Recompute the skewed data exactly as the workload does. *)
  let rng = Workloads.Rng.create ~seed:23 in
  let host = Array.make 256 0 in
  for _ = 1 to 16384 do
    let u = Workloads.Rng.float rng 1.0 in
    let v = int_of_float (u *. u *. 255.0) in
    host.(v) <- host.(v) + 1
  done;
  check Alcotest.string "histo max bin"
    (Printf.sprintf "max_bin=%d" (Array.fold_left max 0 host))
    r.Workloads.Workload.stdout

let test_nw_matches_host () =
  let n = 96 in
  let seq1 = Workloads.Datasets.ints ~seed:1 ~n ~bound:4 in
  let seq2 = Workloads.Datasets.ints ~seed:2 ~n ~bound:4 in
  let w = n + 1 in
  let dp = Array.make (w * w) 0 in
  for k = 0 to n do
    dp.(k) <- -k;
    dp.(k * w) <- -k
  done;
  for i = 1 to n do
    for j = 1 to n do
      let same = if seq1.(i - 1) = seq2.(j - 1) then 2 else -1 in
      dp.((i * w) + j) <-
        max
          (dp.(((i - 1) * w) + j - 1) + same)
          (max (dp.(((i - 1) * w) + j) - 1) (dp.((i * w) + j - 1) - 1))
    done
  done;
  let r = run_wl Workloads.Wl_nw.workload "default" in
  check Alcotest.string "nw score"
    (Printf.sprintf "score=%d" dp.((n * w) + n))
    r.Workloads.Workload.stdout

let test_sgemm_close_to_host () =
  let n = 48 in
  let a = Workloads.Datasets.floats ~seed:5 ~n:(n * n) ~scale:1.0 in
  let b = Workloads.Datasets.floats ~seed:6 ~n:(n * n) ~scale:1.0 in
  let c00 = ref 0.0 and c01 = ref 0.0 in
  for k = 0 to n - 1 do
    c00 := !c00 +. (a.(k) *. b.(k * n));
    c01 := !c01 +. (a.(k) *. b.((k * n) + 1))
  done;
  let r = run_wl Workloads.Wl_sgemm.workload "small" in
  let expect = Printf.sprintf "c00=%.4f c01=%.4f" !c00 !c01 in
  (* f32 accumulation differs from double by < 1e-3 at this scale. *)
  let parse s =
    Scanf.sscanf s "c00=%f c01=%f" (fun x y -> (x, y))
  in
  let gx, gy = parse r.Workloads.Workload.stdout in
  let ex, ey = parse expect in
  check Alcotest.bool "sgemm close" true
    (abs_float (gx -. ex) < 1e-2 && abs_float (gy -. ey) < 1e-2)

let test_minife_variants_agree () =
  (* ELL and CSR encode the same matrix: results must match exactly
     bit-for-bit is too strict (different accumulation order), but the
     printed values agree to 4 decimals. *)
  let rc = run_wl Workloads.Wl_minife.workload "CSR" in
  let re = run_wl Workloads.Wl_minife.workload "ELL" in
  check Alcotest.string "CSR = ELL (to 4 decimals)"
    rc.Workloads.Workload.stdout re.Workloads.Workload.stdout

(* --- Determinism ---------------------------------------------------------- *)

let deterministic name w variant () =
  ignore name;
  let r1 = run_wl w variant in
  let r2 = run_wl w variant in
  check Alcotest.string "same digest" r1.Workloads.Workload.output_digest
    r2.Workloads.Workload.output_digest;
  check Alcotest.string "same stdout" r1.Workloads.Workload.stdout
    r2.Workloads.Workload.stdout

(* --- Smoke: every variant completes with sane stats ----------------------- *)

let test_all_variants_smoke () =
  List.iter
    (fun w ->
       List.iter
         (fun variant ->
            let r = run_wl w variant in
            if r.Workloads.Workload.stats.Gpu.Stats.warp_instrs <= 0 then
              Alcotest.failf "%s/%s %s: no instructions executed"
                w.Workloads.Workload.suite w.Workloads.Workload.name variant;
            if r.Workloads.Workload.launches <= 0 then
              Alcotest.failf "%s/%s %s: no launches"
                w.Workloads.Workload.suite w.Workloads.Workload.name variant)
         w.Workloads.Workload.variants)
    Workloads.Registry.all

let test_registry_lookup () =
  check Alcotest.bool "28 workloads" true
    (List.length Workloads.Registry.all = 28);
  check Alcotest.string "qualified bfs" "parboil"
    (Workloads.Registry.find "parboil/bfs").Workloads.Workload.suite;
  check Alcotest.string "rodinia bfs" "rodinia"
    (Workloads.Registry.find "rodinia/bfs").Workloads.Workload.suite;
  check Alcotest.bool "unknown" true
    (Workloads.Registry.find_opt "nope" = None)

let test_datasets_shapes () =
  let g = Workloads.Datasets.scale_free_graph ~seed:1 ~nodes:500 ~avg_degree:6 in
  check Alcotest.int "offsets length" 501
    (Array.length g.Workloads.Datasets.row_offsets);
  check Alcotest.bool "edges present" true
    (Array.length g.Workloads.Datasets.columns > 500);
  let r = Workloads.Datasets.road_graph ~seed:2 ~width:10 ~height:8 in
  check Alcotest.int "road nodes" 80 r.Workloads.Datasets.num_nodes;
  Array.iter
    (fun c ->
       if c < 0 || c >= 80 then Alcotest.fail "column out of range")
    r.Workloads.Datasets.columns;
  let m = Workloads.Datasets.banded_matrix ~seed:3 ~n:64 ~band:2 in
  let width, idx, vals = Workloads.Datasets.csr_to_ell m in
  check Alcotest.int "ell width" 5 width;
  check Alcotest.int "ell size" (64 * 5) (Array.length idx);
  check Alcotest.int "ell vals" (64 * 5) (Array.length vals);
  (* ELL and CSR must encode the same matrix: check one matvec row. *)
  let x = Array.init 64 (fun i -> float_of_int (i + 1)) in
  let row_csr r =
    let s = ref 0.0 in
    for j = m.Workloads.Datasets.offsets.(r)
      to m.Workloads.Datasets.offsets.(r + 1) - 1 do
      s := !s +. (m.Workloads.Datasets.values.(j)
                  *. x.(m.Workloads.Datasets.indices.(j)))
    done;
    !s
  in
  let row_ell r =
    let s = ref 0.0 in
    for k = 0 to width - 1 do
      s := !s +. (vals.((k * 64) + r) *. x.(idx.((k * 64) + r)))
    done;
    !s
  in
  check (Alcotest.float 1e-9) "row 0" (row_csr 0) (row_ell 0);
  check (Alcotest.float 1e-9) "row 31" (row_csr 31) (row_ell 31)

let test_rng_determinism () =
  let a = Workloads.Rng.create ~seed:5 in
  let b = Workloads.Rng.create ~seed:5 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Workloads.Rng.int a 1000)
      (Workloads.Rng.int b 1000)
  done;
  let c = Workloads.Rng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Workloads.Rng.int a 1000 <> Workloads.Rng.int c 1000 then
      differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let suite =
  [ ("workloads.datasets",
     [ Alcotest.test_case "shapes" `Quick test_datasets_shapes;
       Alcotest.test_case "rng" `Quick test_rng_determinism ]);
    ("workloads.correctness",
     [ Alcotest.test_case "bfs = host bfs" `Quick test_bfs_parboil_matches_host;
       Alcotest.test_case "histo = host histo" `Quick test_histo_matches_host;
       Alcotest.test_case "nw = host dp" `Quick test_nw_matches_host;
       Alcotest.test_case "sgemm ~ host" `Quick test_sgemm_close_to_host;
       Alcotest.test_case "minife ELL = CSR" `Quick test_minife_variants_agree ]);
    ("workloads.determinism",
     [ Alcotest.test_case "spmv" `Quick
         (deterministic "spmv" Workloads.Wl_spmv.workload "small");
       Alcotest.test_case "bfs UT" `Quick
         (deterministic "bfs" Workloads.Wl_bfs_parboil.workload "UT");
       Alcotest.test_case "heartwall" `Quick
         (deterministic "heartwall" Workloads.Wl_heartwall.workload "default");
       Alcotest.test_case "mummergpu" `Quick
         (deterministic "mummergpu" Workloads.Wl_mummer.workload "default") ]);
    ("workloads.registry",
     [ Alcotest.test_case "lookup" `Quick test_registry_lookup;
       Alcotest.test_case "all variants smoke" `Slow test_all_variants_smoke ]) ]
