(* Whole-stack property tests over randomly generated structured
   kernels: compile -> run on the simulator, and check that
   (1) SASSI instrumentation with an empty handler never changes
       results (the pass's central correctness obligation),
   (2) register-constrained compilation (spilling) agrees with
       unconstrained compilation,
   (3) the machine's dynamic warp-instruction count equals the number
       of handler calls under before-All instrumentation. *)

open Kernel.Dsl

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

(* --- Random structured kernel generator -------------------------------- *)

(* Expressions over: gid, a small set of declared variables, constants.
   Statements: assignments, bounded if/else, bounded for loops, global
   stores/loads over a private slice (each thread owns out[gid] and
   in[gid], so random kernels are race-free by construction). *)

let gen_kernel =
  let open QCheck.Gen in
  let var_names = [ "v0"; "v1"; "v2" ] in
  let gen_exp depth =
    fix
      (fun self depth ->
         let leaf =
           oneof
             [ map (fun n -> Kernel.Ast.Int (n - 500)) (int_bound 1000);
               return (Kernel.Ast.Var "gid");
               oneofl (List.map (fun n -> Kernel.Ast.Var n) var_names) ]
         in
         if depth = 0 then leaf
         else
           frequency
             [ (2, leaf);
               (3,
                map3
                  (fun o a b -> Kernel.Ast.Ibin (o, a, b))
                  (oneofl
                     [ Kernel.Ast.Add; Kernel.Ast.Sub; Kernel.Ast.Mul; Kernel.Ast.Min; Kernel.Ast.Max; Kernel.Ast.And;
                       Kernel.Ast.Or; Kernel.Ast.Xor ])
                  (self (depth - 1)) (self (depth - 1)));
               (1,
                map
                  (fun a -> Kernel.Ast.Ibin (Kernel.Ast.Shl, a, Kernel.Ast.Int 1))
                  (self (depth - 1))) ])
      depth
  in
  let gen_cond depth =
    map3
      (fun cmp a b -> Kernel.Ast.Icmp (cmp, a, b))
      (oneofl [ Sass.Opcode.Lt; Sass.Opcode.Le; Sass.Opcode.Gt;
                Sass.Opcode.Eq; Sass.Opcode.Ne ])
      (gen_exp depth) (gen_exp depth)
  in
  let gen_assign =
    map2 (fun name e -> set name e) (oneofl var_names) (gen_exp 2)
  in
  let rec gen_stmt depth =
    if depth = 0 then gen_assign
    else
      frequency
        [ (4, gen_assign);
          (2,
           map3
             (fun c t f -> if_ c t f)
             (gen_cond 1)
             (list_size (int_range 1 3) (gen_stmt (depth - 1)))
             (list_size (int_range 0 2) (gen_stmt (depth - 1))));
          (1,
           map2
             (fun bound body ->
                for_ "i" (int_ 0) (int_ (1 + bound))
                  (body
                   @ [ set "v0" (v "v0" +! v "i") ]))
             (int_bound 5)
             (list_size (int_range 1 2) (gen_stmt 0))) ]
  in
  list_size (int_range 2 6) (gen_stmt 2) >|= fun body ->
  kernel "qk" ~params:[ ptr "inp"; ptr "out" ] (fun p ->
      [ let_ "gid" (global_tid_x ());
        let_ "v0" (ldg (p 0 +! (v "gid" <<! int_ 2)));
        let_ "v1" (v "gid" *! int_ 3);
        let_ "v2" (int_ 7) ]
      @ body
      @ [ st_global (p 1 +! (v "gid" <<! int_ 2))
            ((v "v0" ^! v "v1") +! v "v2") ])

let arb_kernel =
  QCheck.make gen_kernel ~print:(fun k ->
      Format.asprintf "%a" Sass.Program.pp (Kernel.Compile.compile k))

let run_kernel ?options ?instrument k =
  let dev = device () in
  let n = 64 in
  let inp = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:inp (Array.init n (fun i -> (i * 37) + 11));
  let compiled = Kernel.Compile.compile ?options k in
  let launch () =
    Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(n, 1)
      ~args:[ Gpu.Device.Ptr inp; Gpu.Device.Ptr out ]
  in
  let stats =
    match instrument with
    | None -> launch ()
    | Some pairs ->
      Sassi.Runtime.with_instrumentation dev pairs (fun _ -> launch ())
  in
  (Gpu.Device.read_i32s dev ~addr:out ~n, stats)

let prop_instrumentation_preserves_semantics =
  QCheck.Test.make ~name:"noop instrumentation never changes results"
    ~count:40 arb_kernel (fun k ->
      let base, _ = run_kernel k in
      let inst, _ =
        run_kernel
          ~instrument:
            [ (Sassi.Select.before [ Sassi.Select.All ]
                 [ Sassi.Select.Mem_info ],
               Sassi.Handler.noop) ]
          k
      in
      base = inst)

let prop_after_instrumentation_preserves_semantics =
  QCheck.Test.make ~name:"after-reg-writes instrumentation never changes \
                          results"
    ~count:30 arb_kernel (fun k ->
      let base, _ = run_kernel k in
      let inst, _ =
        run_kernel
          ~instrument:
            [ (Sassi.Select.after [ Sassi.Select.Reg_writes ]
                 [ Sassi.Select.Reg_info ],
               Sassi.Handler.noop) ]
          k
      in
      base = inst)

let prop_spilling_equivalence =
  QCheck.Test.make ~name:"register-constrained compilation agrees" ~count:30
    arb_kernel (fun k ->
      let a, _ = run_kernel k in
      let b, _ =
        run_kernel ~options:{ Kernel.Compile.max_regs = 10; opt_level = 1 } k
      in
      a = b)

let prop_hcalls_match_instruction_count =
  QCheck.Test.make ~name:"hcalls = baseline warp instructions" ~count:25
    arb_kernel (fun k ->
      let _, base_stats = run_kernel k in
      let _, inst_stats =
        run_kernel
          ~instrument:
            [ (Sassi.Select.before [ Sassi.Select.All ] [],
               Sassi.Handler.noop) ]
          k
      in
      inst_stats.Gpu.Stats.hcalls = base_stats.Gpu.Stats.warp_instrs)

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"optimize is idempotent on lowered kernels"
    ~count:30 arb_kernel (fun k ->
      let once = Kernel.Compile.compile_vir k in
      let twice = Kernel.Opt.optimize once in
      (* A second full optimization round must not change the code. *)
      twice = once)

let prop_instrumented_kernel_valid =
  QCheck.Test.make ~name:"instrumented kernels always validate" ~count:30
    arb_kernel (fun k ->
      let compiled = Kernel.Compile.compile k in
      let r =
        Sassi.Inject.instrument ~next_id:(ref 0)
          ~specs:
            [ (Sassi.Select.before [ Sassi.Select.All ]
                 [ Sassi.Select.Mem_info ], 0);
              (Sassi.Select.after [ Sassi.Select.Reg_writes ]
                 [ Sassi.Select.Reg_info ], 0) ]
          compiled
      in
      Result.is_ok (Sass.Program.validate r.Sassi.Inject.kernel))

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [ ("properties.whole-stack",
     [ qt prop_instrumentation_preserves_semantics;
       qt prop_after_instrumentation_preserves_semantics;
       qt prop_spilling_equivalence;
       qt prop_hcalls_match_instruction_count;
       qt prop_optimize_idempotent;
       qt prop_instrumented_kernel_valid ]) ]
