(* Tests for the SASSI core: the injection pass, params objects,
   intrinsics, and runtime dispatch. *)

open Kernel.Dsl

let check = Alcotest.check

let device () = Gpu.Device.create ~cfg:Gpu.Config.small ()

let vadd =
  kernel "s_vadd" ~params:[ ptr "a"; ptr "b"; ptr "out"; int "n" ] (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 3);
        let_ "off" (v "gid" <<! int_ 2);
        let_ "s" (ldg (p 0 +! v "off") +! ldg (p 1 +! v "off"));
        st_global (p 2 +! v "off") (v "s") ])

let setup_vadd dev n =
  let a = Gpu.Device.malloc dev (4 * n) in
  let b = Gpu.Device.malloc dev (4 * n) in
  let out = Gpu.Device.malloc dev (4 * n) in
  Gpu.Device.write_i32s dev ~addr:a (Array.init n (fun i -> i * 3));
  Gpu.Device.write_i32s dev ~addr:b (Array.init n (fun i -> i + 7));
  (a, b, out)

let launch_vadd dev compiled (a, b, out) n =
  Gpu.Device.launch dev ~kernel:compiled
    ~grid:((n + 63) / 64, 1)
    ~block:(64, 1)
    ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr out;
            Gpu.Device.I32 n ]

(* --- Select ------------------------------------------------------------- *)

let test_select_matching () =
  let ld =
    Sass.Instr.make (Sass.Opcode.LD (Sass.Opcode.Global, Sass.Opcode.W32))
      ~dsts:[ Sass.Reg.r 0 ]
      ~srcs:[ Sass.Instr.SReg (Sass.Reg.r 2); Sass.Instr.SImm 0 ]
  in
  let bra =
    Sass.Instr.make Sass.Opcode.BRA ~guard:(Sass.Pred.on (Sass.Pred.p 0))
      ~target:3
  in
  let open Sassi.Select in
  check Alcotest.bool "mem matches LD" true (matches (before [ Memory_ops ] []) ld);
  check Alcotest.bool "mem !matches BRA" false
    (matches (before [ Memory_ops ] []) bra);
  check Alcotest.bool "cond matches guarded BRA" true
    (matches (before [ Cond_control ] []) bra);
  check Alcotest.bool "no after on branches" false
    (matches (after [ All ] []) bra);
  check Alcotest.bool "after on LD ok" true (matches (after [ All ] []) ld);
  check Alcotest.bool "reg writes" true
    (matches (after [ Reg_writes ] []) ld);
  check Alcotest.bool "all matches" true (matches (before [ All ] []) ld)

(* --- Semantics preservation -------------------------------------------- *)

let test_instrumentation_preserves_results () =
  let n = 500 in
  let compiled = Kernel.Compile.compile vadd in
  (* Baseline. *)
  let dev1 = device () in
  let bufs1 = setup_vadd dev1 n in
  let base_stats = launch_vadd dev1 compiled bufs1 n in
  let _, _, out1 = bufs1 in
  let expected = Gpu.Device.read_i32s dev1 ~addr:out1 ~n in
  (* Instrumented with a noop handler before every instruction. *)
  let dev2 = device () in
  let bufs2 = setup_vadd dev2 n in
  let inst_stats =
    Sassi.Runtime.with_instrumentation dev2
      [ (Sassi.Select.before [ Sassi.Select.All ] [], Sassi.Handler.noop) ]
      (fun _ -> launch_vadd dev2 compiled bufs2 n)
  in
  let _, _, out2 = bufs2 in
  let got = Gpu.Device.read_i32s dev2 ~addr:out2 ~n in
  check (Alcotest.array Alcotest.int) "results identical" expected got;
  (* One handler call per original warp instruction. *)
  check Alcotest.int "hcalls = baseline warp instrs"
    base_stats.Gpu.Stats.warp_instrs inst_stats.Gpu.Stats.hcalls;
  check Alcotest.bool "instrumentation adds instructions" true
    (inst_stats.Gpu.Stats.warp_instrs > 3 * base_stats.Gpu.Stats.warp_instrs);
  check Alcotest.bool "instrumentation adds cycles" true
    (inst_stats.Gpu.Stats.cycles > base_stats.Gpu.Stats.cycles)

(* Instrumentation must also preserve a spilling, divergent kernel. *)
let spill_div_kernel =
  kernel "s_spilldiv" ~params:[ ptr "out"; int "n" ] (fun p ->
      let decls =
        List.init 20 (fun i ->
            let_ (Printf.sprintf "y%d" i) ((v "gid" +! int_ i) *! int_ (i + 3)))
      in
      let total =
        List.fold_left
          (fun acc i -> acc +! v (Printf.sprintf "y%d" i))
          (int_ 0)
          (List.init 20 (fun i -> i))
      in
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 1);
        let_ "acc" (int_ 0);
        if_ (v "gid" %! int_ 3 ==! int_ 0)
          [ for_ "i" (int_ 0) (v "gid" %! int_ 9)
              [ set "acc" (v "acc" +! v "i") ] ]
          [ set "acc" (v "gid" *! int_ 2) ] ]
      @ decls
      @ [ st_global (p 0 +! (v "gid" <<! int_ 2)) (total +! v "acc") ])

let test_instrumented_spilling_kernel () =
  let n = 128 in
  let compiled =
    Kernel.Compile.compile
      ~options:{ Kernel.Compile.max_regs = 14; opt_level = 1 }
      spill_div_kernel
  in
  let run instrumented =
    let dev = device () in
    let out = Gpu.Device.malloc dev (4 * n) in
    let go () =
      Gpu.Device.launch dev ~kernel:compiled ~grid:(2, 1) ~block:(64, 1)
        ~args:[ Gpu.Device.Ptr out; Gpu.Device.I32 n ]
    in
    let _ =
      if instrumented then
        Sassi.Runtime.with_instrumentation dev
          [ (Sassi.Select.before [ Sassi.Select.All ]
               [ Sassi.Select.Mem_info ],
             Sassi.Handler.noop) ]
          (fun _ -> go ())
      else go ()
    in
    Gpu.Device.read_i32s dev ~addr:out ~n
  in
  check (Alcotest.array Alcotest.int) "spilling kernel preserved" (run false)
    (run true)

(* --- Params objects ------------------------------------------------------ *)

let test_before_params () =
  let n = 64 in
  let compiled = Kernel.Compile.compile vadd in
  let seen_opcodes = ref [] in
  let seen_ids = ref [] in
  let handler =
    Sassi.Handler.make ~name:"probe" (fun ctx ->
        let op = Sassi.Params.Before.opcode ctx in
        seen_opcodes := op :: !seen_opcodes;
        seen_ids := Sassi.Params.Before.id ctx :: !seen_ids;
        (* will_execute must hold for at least the active lanes of an
           unguarded instruction. *)
        if Sass.Pred.is_always
            ctx.Sassi.Hctx.site.Sassi.Select.s_instr.Sass.Instr.guard
        then
          List.iter
            (fun lane ->
               if not (Sassi.Params.Before.will_execute ctx ~lane) then
                 Alcotest.fail "unguarded instr must will_execute")
            (Sassi.Hctx.active_lanes ctx))
  in
  let dev = device () in
  let bufs = setup_vadd dev n in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
           [ Sassi.Select.Mem_info ],
         handler) ]
      (fun _ -> launch_vadd dev compiled bufs n)
  in
  check Alcotest.bool "saw loads" true
    (List.exists
       (fun op -> Sass.Opcode.is_mem_read op)
       !seen_opcodes);
  check Alcotest.bool "saw stores" true
    (List.exists (fun op -> Sass.Opcode.is_mem_write op) !seen_opcodes);
  check Alcotest.bool "site ids reported" true
    (List.for_all (fun id -> id >= 0) !seen_ids)

let test_memory_params_addresses () =
  (* Strided stores: lane l stores to out + 4*gid. The handler checks
     the mp.address field matches. *)
  let n = 64 in
  let compiled = Kernel.Compile.compile vadd in
  let dev = device () in
  let ((a, _, _) as bufs) = setup_vadd dev n in
  ignore a;
  let failures = ref 0 in
  let handler =
    Sassi.Handler.make ~name:"addrcheck" (fun ctx ->
        if Sassi.Params.Memory.is_global ctx then begin
          check Alcotest.int "width" 4 (Sassi.Params.Memory.width ctx);
          let leader = Sassi.Hctx.leader ctx in
          let addr0 = Sassi.Params.Memory.address ctx ~lane:leader in
          (* Unit-stride kernel: consecutive active lanes differ by 4. *)
          List.iter
            (fun lane ->
               let addr = Sassi.Params.Memory.address ctx ~lane in
               if addr - addr0 <> 4 * (lane - leader) then incr failures)
            (Sassi.Hctx.active_lanes ctx)
        end)
  in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
           [ Sassi.Select.Mem_info ],
         handler) ]
      (fun _ -> launch_vadd dev compiled bufs n)
  in
  check Alcotest.int "no address mismatches" 0 !failures

let test_branch_params_direction () =
  (* tid < 16 branch: ballot of directions must have 16 bits set. *)
  let k =
    kernel "s_branch" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          let_ "r" (int_ 0);
          if_ (v "t" <! int_ 16) [ set "r" (int_ 1) ] [ set "r" (int_ 2) ];
          st_global (p 0 +! (v "t" <<! int_ 2)) (v "r") ])
  in
  let compiled = Kernel.Compile.compile k in
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let taken_counts = ref [] in
  let handler =
    Sassi.Handler.make ~name:"brcheck" (fun ctx ->
        let taken =
          Sassi.Intrinsics.ballot ctx (fun lane ->
              Sassi.Params.Cond_branch.direction ctx ~lane)
        in
        taken_counts := Gpu.Value.popc taken :: !taken_counts)
  in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.before [ Sassi.Select.Cond_control ]
           [ Sassi.Select.Branch_info ],
         handler) ]
      (fun _ ->
        Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  (* The compiler emits @!p BRA else for (t < 16): 16 lanes go one way. *)
  check Alcotest.bool "one cond branch seen" true (!taken_counts <> []);
  List.iter
    (fun c -> check Alcotest.int "16 lanes taken" 16 c)
    !taken_counts

let test_register_params_values () =
  (* After reg-writing instructions, check that Registers.value returns
     what actually landed in the register file. *)
  let k =
    kernel "s_regs" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          let_ "x" ((v "t" *! int_ 5) +! int_ 3);
          st_global (p 0 +! (v "t" <<! int_ 2)) (v "x") ])
  in
  let compiled = Kernel.Compile.compile k in
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let mismatches = ref 0 in
  let handler =
    Sassi.Handler.make ~name:"valcheck" (fun ctx ->
        let n = Sassi.Params.Registers.num_gpr_dsts ctx in
        for k = 0 to n - 1 do
          let reg = Sassi.Params.Registers.dst_reg ctx k in
          let idx = Sass.Reg.index reg in
          List.iter
            (fun lane ->
               let from_params = Sassi.Params.Registers.value ctx ~lane k in
               (* Scratch registers R3..R7 are mid-call at handler time;
                  their architectural value lives in the spill slot. *)
               let authoritative =
                 if idx >= 3 && idx <= 7 then
                   Sassi.Hctx.stack_read ctx ~lane
                     ~off:(Sassi.Abi.off_gpr_spill + (4 * idx))
                 else Gpu.State.reg_get ctx.Sassi.Hctx.warp ~lane reg
               in
               if from_params <> authoritative then incr mismatches)
            (Sassi.Hctx.active_lanes ctx)
        done)
  in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.after [ Sassi.Select.Reg_writes ]
           [ Sassi.Select.Reg_info ],
         handler) ]
      (fun _ ->
        Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  check Alcotest.int "register values agree" 0 !mismatches

let test_set_value_persists () =
  (* An after-handler forces the first destination register to 42 for
     lane 7 on the marked instruction; the store must write 42. *)
  let k =
    kernel "s_setval" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          nop_mark 99;
          let_ "x" (v "t" +! int_ 1000);
          st_global (p 0 +! (v "t" <<! int_ 2)) (v "x") ])
  in
  let compiled = Kernel.Compile.compile k in
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let injected = ref false in
  let handler =
    Sassi.Handler.make ~name:"inject42" (fun ctx ->
        (* Target the IADD that computes x = t + 1000. *)
        let i = ctx.Sassi.Hctx.site.Sassi.Select.s_instr in
        let is_target =
          match i.Sass.Instr.op, i.Sass.Instr.srcs with
          | Sass.Opcode.IADD, [ _; Sass.Instr.SImm 1000 ] -> true
          | _ -> false
        in
        if is_target && not !injected then begin
          injected := true;
          Sassi.Params.Registers.set_value ctx ~lane:7 0 42
        end)
  in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.after [ Sassi.Select.Reg_writes ]
           [ Sassi.Select.Reg_info ],
         handler) ]
      (fun _ ->
        Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  check Alcotest.bool "handler fired" true !injected;
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  check Alcotest.int "lane 7 corrupted" 42 result.(7);
  check Alcotest.int "lane 6 clean" 1006 result.(6);
  check Alcotest.int "lane 8 clean" 1008 result.(8)

(* --- Intrinsics + counters ---------------------------------------------- *)

let test_counter_accumulation () =
  (* Count dynamic memory instructions (thread-level) with a device
     counter, Figure 3 style, and compare with machine statistics. *)
  let n = 300 in
  let compiled = Kernel.Compile.compile vadd in
  let dev = device () in
  let bufs = setup_vadd dev n in
  let counter = Gpu.Device.malloc dev 8 in
  Gpu.Device.write_u64 dev counter 0;
  let handler =
    Sassi.Handler.make ~name:"memcount" (fun ctx ->
        if Sassi.Params.Before.is_mem ctx then
          Sassi.Intrinsics.per_lane_atomic_add_u64 ctx (fun lane ->
              if Sassi.Params.Before.will_execute ctx ~lane then (counter, 1)
              else (counter, 0)))
  in
  let stats =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
           [ Sassi.Select.Mem_info ],
         handler) ]
      (fun _ -> launch_vadd dev compiled bufs n)
  in
  (* vadd: 2 loads + 1 store per thread, n threads. *)
  check Alcotest.int "3n memory ops" (3 * n) (Gpu.Device.read_u64 dev counter);
  check Alcotest.bool "handler ops charged" true
    (stats.Gpu.Stats.handler_ops > 0)

let test_inject_sequence_shape () =
  (* The injected code at a memory site must contain the Figure 2
     landmarks: frame push/pop, spills, P2R/R2P, param setup, HCALL. *)
  let compiled = Kernel.Compile.compile vadd in
  let next_id = ref 0 in
  let r =
    Sassi.Inject.instrument ~next_id
      ~specs:[ (Sassi.Select.before [ Sassi.Select.Memory_ops ]
                  [ Sassi.Select.Mem_info ], 0) ]
      compiled
  in
  let k = r.Sassi.Inject.kernel in
  check Alcotest.bool "frame grew" true
    (k.Sass.Program.frame_bytes >= compiled.Sass.Program.frame_bytes + 0x80);
  check Alcotest.int "3 sites (2 loads + 1 store)" 3
    (List.length r.Sassi.Inject.sites);
  let ops = Array.map (fun i -> i.Sass.Instr.op) k.Sass.Program.instrs in
  let count p = Array.fold_left (fun a op -> if p op then a + 1 else a) 0 ops in
  check Alcotest.int "3 HCALLs" 3
    (count (function Sass.Opcode.HCALL _ -> true | _ -> false));
  check Alcotest.int "3 P2R" 3
    (count (fun op -> op = Sass.Opcode.P2R));
  check Alcotest.int "3 R2P" 3
    (count (fun op -> op = Sass.Opcode.R2P));
  check Alcotest.bool "has STL spills" true
    (count Sass.Opcode.is_spill_or_fill > 6);
  (match Sass.Program.validate k with
   | Ok () -> ()
   | Error e -> Alcotest.failf "instrumented kernel invalid: %s" e);
  (* Original instructions survive unchanged (modulo target remap). *)
  List.iter
    (fun s ->
       let orig = s.Sassi.Select.s_instr in
       let now = k.Sass.Program.instrs.(s.Sassi.Select.s_new_pc) in
       check Alcotest.bool "opcode preserved" true
         (now.Sass.Instr.op = orig.Sass.Instr.op))
    r.Sassi.Inject.sites

let test_handler_reg_cap () =
  (match Sassi.Handler.make ~name:"big" ~regs:17 (fun _ -> ()) with
   | _ -> Alcotest.fail "expected rejection"
   | exception Invalid_argument _ -> ());
  let h = Sassi.Handler.make ~name:"ok" ~regs:16 (fun _ -> ()) in
  check Alcotest.int "16 accepted" 16 h.Sassi.Handler.regs

(* Instrumenting a kernel with divergence: handler ballots must see
   partial masks, and reconvergence still works. *)
let test_divergent_instrumentation () =
  let k =
    kernel "s_div" ~params:[ ptr "out" ] (fun p ->
        [ let_ "t" tid_x;
          let_ "r" (int_ 0);
          if_ (v "t" <! int_ 10)
            [ set "r" (v "t" *! int_ 2) ]
            [ set "r" (v "t" +! int_ 100) ];
          st_global (p 0 +! (v "t" <<! int_ 2)) (v "r") ])
  in
  let compiled = Kernel.Compile.compile k in
  let dev = device () in
  let out = Gpu.Device.malloc dev (4 * 32) in
  let masks = ref [] in
  let handler =
    Sassi.Handler.make ~name:"masks" (fun ctx ->
        masks := Sassi.Hctx.num_active ctx :: !masks)
  in
  let _ =
    Sassi.Runtime.with_instrumentation dev
      [ (Sassi.Select.before [ Sassi.Select.All ] [], handler) ]
      (fun _ ->
        Gpu.Device.launch dev ~kernel:compiled ~grid:(1, 1) ~block:(32, 1)
          ~args:[ Gpu.Device.Ptr out ])
  in
  let result = Gpu.Device.read_i32s dev ~addr:out ~n:32 in
  for t = 0 to 31 do
    let expected = if t < 10 then t * 2 else t + 100 in
    check Alcotest.int (Printf.sprintf "div out[%d]" t) expected result.(t)
  done;
  check Alcotest.bool "saw partial masks" true
    (List.exists (fun c -> c = 10) !masks
     && List.exists (fun c -> c = 22) !masks);
  check Alcotest.bool "saw full masks" true
    (List.exists (fun c -> c = 32) !masks)

let suite =
  [ ("sassi.select",
     [ Alcotest.test_case "matching" `Quick test_select_matching ]);
    ("sassi.inject",
     [ Alcotest.test_case "preserves results" `Quick
         test_instrumentation_preserves_results;
       Alcotest.test_case "preserves spilling kernel" `Quick
         test_instrumented_spilling_kernel;
       Alcotest.test_case "sequence shape" `Quick test_inject_sequence_shape;
       Alcotest.test_case "divergent kernel" `Quick
         test_divergent_instrumentation ]);
    ("sassi.params",
     [ Alcotest.test_case "before params" `Quick test_before_params;
       Alcotest.test_case "memory addresses" `Quick
         test_memory_params_addresses;
       Alcotest.test_case "branch direction" `Quick
         test_branch_params_direction;
       Alcotest.test_case "register values" `Quick
         test_register_params_values;
       Alcotest.test_case "set_value persists" `Quick test_set_value_persists ]);
    ("sassi.runtime",
     [ Alcotest.test_case "counters" `Quick test_counter_accumulation;
       Alcotest.test_case "handler reg cap" `Quick test_handler_reg_cap ]) ]
