(* Tiny wrapper exposing a deterministic 2-set x 2-way cache for LRU
   behaviour tests. *)

let make_cache () =
  Gpu.Cache.create ~name:"test" ~size_bytes:128 ~assoc:2 ~line_bytes:32

let miss c addr =
  match Gpu.Cache.access c addr with
  | Gpu.Cache.Miss -> true
  | Gpu.Cache.Hit -> false
