(* Host-reference and conservation-law checks for more workloads:
   each recomputes the expected answer (or an invariant) on the host
   from the same seeded datasets the driver generates. *)

let check = Alcotest.check

let fresh () = Gpu.Device.create ~cfg:Gpu.Config.default ()

(* --- SAD: recompute one (block, candidate) cell ------------------------ *)

let test_sad_against_host () =
  let img = 64 and blk = 8 and offsets = 4 in
  let cur = Workloads.Datasets.ints ~seed:1 ~n:(img * img) ~bound:256 in
  let reff = Workloads.Datasets.ints ~seed:2 ~n:(img * img) ~bound:256 in
  let host_sad block cand =
    let bx = block mod (img / blk) * blk in
    let by = block / (img / blk) * blk in
    let rx = min (bx + cand) (img - blk) in
    let ry = min (by + cand) (img - blk) in
    let s = ref 0 in
    for dy = 0 to blk - 1 do
      for dx = 0 to blk - 1 do
        let c = cur.(((by + dy) * img) + bx + dx) in
        let r = reff.(((ry + dy) * img) + rx + dx) in
        s := !s + abs (c - r)
      done
    done;
    !s
  in
  (* Re-run the workload and pull its output buffer via the digest of
     a re-computed host array: simplest is to recompute the full
     expected array and compare digests through a fresh device run. *)
  let dev = fresh () in
  let r = Workloads.Wl_sad.workload.Workloads.Workload.run dev ~variant:"default" in
  ignore r;
  (* The output buffer address is workload-internal; instead check a
     couple of cells by reproducing the whole expected array and its
     digest against a second device run's digest. *)
  let nblocks = (img / blk) * (img / blk) in
  let expected =
    Array.init (nblocks * offsets) (fun i ->
        host_sad (i / offsets) (i mod offsets))
  in
  let dev2 = fresh () in
  let sads_addr_probe = Workloads.Workload.upload_i32 dev2 expected in
  let expected_digest =
    Workloads.Workload.digest_i32 dev2 ~addr:sads_addr_probe
      ~n:(nblocks * offsets)
  in
  let dev3 = fresh () in
  let r3 =
    Workloads.Wl_sad.workload.Workloads.Workload.run dev3 ~variant:"default"
  in
  check Alcotest.string "sad digest matches host reference" expected_digest
    r3.Workloads.Workload.output_digest

(* --- Pathfinder: full host DP ------------------------------------------ *)

let test_pathfinder_against_host () =
  let cols = 2048 and rows = 16 in
  let wall =
    Array.init rows (fun r ->
        Workloads.Datasets.ints ~seed:(100 + r) ~n:cols ~bound:10)
  in
  let first = Workloads.Datasets.ints ~seed:99 ~n:cols ~bound:10 in
  let prev = ref (Array.copy first) in
  for r = 0 to rows - 1 do
    let next =
      Array.init cols (fun i ->
          let left = !prev.(max (i - 1) 0) in
          let center = !prev.(i) in
          let right = !prev.(min (i + 1) (cols - 1)) in
          wall.(r).(i) + min (min left center) right)
    in
    prev := next
  done;
  let dev = fresh () in
  let expected_addr = Workloads.Workload.upload_i32 dev !prev in
  let expected_digest =
    Workloads.Workload.digest_i32 dev ~addr:expected_addr ~n:cols
  in
  let dev2 = fresh () in
  let r =
    Workloads.Wl_pathfinder.workload.Workloads.Workload.run dev2
      ~variant:"default"
  in
  check Alcotest.string "pathfinder digest matches host DP" expected_digest
    r.Workloads.Workload.output_digest

(* --- Gridding: mass conservation ---------------------------------------- *)

let test_gridding_mass_conservation () =
  (* Every sample scatters its value into exactly 9 cells (clamping
     redirects but never drops), so grid mass = 9 * sum(values). *)
  let n = 2048 in
  let sval = Workloads.Datasets.ints ~seed:3 ~n ~bound:100 in
  let expected_mass = 9 * Array.fold_left ( + ) 0 sval in
  let dev = fresh () in
  let r =
    Workloads.Wl_gridding.workload.Workloads.Workload.run dev
      ~variant:"default"
  in
  check Alcotest.string "gridding mass"
    (Printf.sprintf "mass=%d" expected_mass)
    r.Workloads.Workload.stdout

(* --- kmeans: membership against host ------------------------------------ *)

let test_kmeans_against_host () =
  let n = 1024 and dims = 8 and clusters = 6 in
  let points = Workloads.Datasets.floats ~seed:1 ~n:(n * dims) ~scale:1.0 in
  let centers =
    Workloads.Datasets.floats ~seed:2 ~n:(clusters * dims) ~scale:1.0
  in
  (* Reproduce the kernel's f32 arithmetic: FFMA accumulation. *)
  let f32 x = Gpu.Value.f32_of_bits (Gpu.Value.bits_of_f32 x) in
  let host_assign i =
    let best = ref infinity and bestc = ref 0 in
    for c = 0 to clusters - 1 do
      let d2 = ref 0.0 in
      for d = 0 to dims - 1 do
        let diff = f32 (f32 points.((i * dims) + d) -. f32 centers.((c * dims) + d)) in
        d2 := f32 ((diff *. diff) +. !d2)
      done;
      if !d2 < !best then begin
        best := !d2;
        bestc := c
      end
    done;
    !bestc
  in
  let expected = Array.init n host_assign in
  let dev = fresh () in
  let addr = Workloads.Workload.upload_i32 dev expected in
  let expected_digest = Workloads.Workload.digest_i32 dev ~addr ~n in
  let dev2 = fresh () in
  let r =
    Workloads.Wl_kmeans.workload.Workloads.Workload.run dev2
      ~variant:"default"
  in
  check Alcotest.string "kmeans membership matches host" expected_digest
    r.Workloads.Workload.output_digest

(* --- b+tree: queries against host search -------------------------------- *)

let test_btree_against_host () =
  let order = 8 and levels = 4 in
  let flat, span = Workloads.Wl_btree.build_tree () in
  let nq = 2048 in
  let queries = Workloads.Datasets.ints ~seed:71 ~n:nq ~bound:span in
  let stride = 2 * order in
  let host_search key =
    let node = ref 0 in
    for _ = 1 to levels do
      let slot = ref 0 in
      while
        !slot < order - 1 && key >= flat.((!node * stride) + !slot + 1)
      do
        incr slot
      done;
      node := flat.((!node * stride) + order + !slot)
    done;
    !node
  in
  let expected = Array.map host_search queries in
  let dev = fresh () in
  let addr = Workloads.Workload.upload_i32 dev expected in
  let expected_digest = Workloads.Workload.digest_i32 dev ~addr ~n:nq in
  let dev2 = fresh () in
  let r =
    Workloads.Wl_btree.workload.Workloads.Workload.run dev2 ~variant:"default"
  in
  check Alcotest.string "b+tree answers match host search" expected_digest
    r.Workloads.Workload.output_digest

(* --- LBM: mass conservation ----------------------------------------------- *)

let test_lbm_mass_conservation () =
  (* Both bounce-back and BGK relaxation preserve per-cell mass sums,
     and streaming only permutes values, so total mass is invariant. *)
  let dim = 64 in
  let q = 5 in
  let cells = dim * dim in
  let initial = Workloads.Datasets.floats ~seed:3 ~n:(q * cells) ~scale:1.0 in
  let mass0 = Array.fold_left ( +. ) 0.0 initial in
  (* Run the workload and recover the final distributions through the
     stdout-independent digest is opaque; instead re-run the kernel
     host-side? Simpler: rely on the workload exposing mass via its
     stats? It does not - so re-run device side and read memory
     through a custom driver replicating the workload. *)
  let dev = fresh () in
  let src = Workloads.Workload.upload_f32 dev initial in
  let dst = Workloads.Workload.alloc_i32 dev (q * cells) in
  let rng = Workloads.Rng.create ~seed:19 in
  let obstacle =
    Workloads.Workload.upload_i32 dev
      (Array.init cells (fun _ -> if Workloads.Rng.int rng 100 < 6 then 1 else 0))
  in
  let compiled = Kernel.Compile.compile Workloads.Wl_lbm.kernel_lbm in
  let grid, block = Workloads.Workload.grid_1d ~threads:cells ~block:128 in
  let bufs = ref (src, dst) in
  for _ = 1 to 4 do
    let s, d = !bufs in
    ignore
      (Gpu.Device.launch dev ~kernel:compiled ~grid ~block
         ~args:[ Gpu.Device.Ptr s; Gpu.Device.Ptr d; Gpu.Device.Ptr obstacle;
                 Gpu.Device.I32 dim ]);
    bufs := (d, s)
  done;
  let final, _ = !bufs in
  let final_dist = Gpu.Device.read_f32s dev ~addr:final ~n:(q * cells) in
  let mass1 = Array.fold_left ( +. ) 0.0 final_dist in
  check Alcotest.bool "mass conserved within f32 tolerance" true
    (abs_float (mass1 -. mass0) /. mass0 < 1e-3)

let suite =
  [ ("workloads.host-references",
     [ Alcotest.test_case "sad" `Quick test_sad_against_host;
       Alcotest.test_case "pathfinder" `Quick test_pathfinder_against_host;
       Alcotest.test_case "gridding mass" `Quick
         test_gridding_mass_conservation;
       Alcotest.test_case "kmeans" `Quick test_kmeans_against_host;
       Alcotest.test_case "b+tree" `Quick test_btree_against_host;
       Alcotest.test_case "lbm mass conservation" `Quick
         test_lbm_mass_conservation ]) ]
