(** Static checks for kernel ASTs: variable scoping and types,
    parameter indices, shared-array names, space legality (the
    constant bank is read-only, textures cannot be stored to), and
    the no-[Bool]-locals rule (booleans live in predicate registers
    and may not be stored in variables; materialize them with
    [Select]). *)

type error = {
  where : string;  (** enclosing kernel and statement context *)
  message : string;
}

val check : Ast.kernel -> (unit, error) result

val error_to_string : error -> string

val type_of_exp :
  params:(string * Ast.ty) list ->
  shared:(string * int) list ->
  locals:(string * Ast.ty) list ->
  Ast.exp ->
  (Ast.ty, string) result
(** Exposed for tests. *)
