(** The backend's virtual-register IR (the PTX analogue): SASS opcodes
    over unbounded virtual registers and virtual predicates, with
    symbolic labels. Lowering produces it; optimization and register
    allocation rewrite it; {!Emit} turns it into SASS. *)

type vsrc =
  | VReg of int
  | VImm of int
  | VParam of int  (** byte offset in the constant bank *)
  | VPred of int

type guard = {
  g_pred : int option;  (** [None]: always execute *)
  g_neg : bool;
}

val always : guard

type vinstr = {
  vop : Sass.Opcode.t;
  vguard : guard;
  vdsts : int list;  (** virtual registers written *)
  vpdsts : int list;  (** virtual predicates written *)
  vsrcs : vsrc list;
  vtarget : string option;  (** branch target label *)
}

type item =
  | Label of string
  | Ins of vinstr

val ins :
  ?guard:guard ->
  ?dsts:int list ->
  ?pdsts:int list ->
  ?srcs:vsrc list ->
  ?target:string ->
  Sass.Opcode.t ->
  item

val reg_uses : vinstr -> int list

val pred_uses : vinstr -> int list

val has_side_effect : vinstr -> bool
(** Memory writes, atomics, control flow, barriers: instructions DCE
    must keep even if their results are dead. *)

(** {1 CFG and liveness over item arrays} *)

type cfg

val build_cfg : item array -> cfg

val block_count : cfg -> int

val block_range : cfg -> int -> int * int
(** Item-index range (first, last) of a block, inclusive. *)

val block_succs : cfg -> int -> int list

val block_of_item : cfg -> int -> int

type liveness

val liveness : item array -> cfg -> liveness

val live_out_regs : liveness -> block:int -> int list

val live_out_preds : liveness -> block:int -> int list

val reg_live_ranges : item array -> cfg -> liveness -> (int * (int * int)) list
(** Conservative live interval (first, last item index) per virtual
    register, suitable for linear-scan allocation. *)

val pred_live_ranges : item array -> cfg -> liveness -> (int * (int * int)) list

val pp_item : Format.formatter -> item -> unit

val pp_items : Format.formatter -> item array -> unit
