lib/kernel/lower.mli: Ast Vir
