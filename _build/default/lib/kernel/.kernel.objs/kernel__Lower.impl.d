lib/kernel/lower.ml: Array Ast Gpu Hashtbl List Printf Sass Vir
