lib/kernel/emit.ml: Array Gpu Hashtbl List Option Printf Sass Vir
