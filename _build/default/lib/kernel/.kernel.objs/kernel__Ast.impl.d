lib/kernel/ast.ml: Format Sass
