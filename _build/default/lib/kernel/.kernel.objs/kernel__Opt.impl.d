lib/kernel/opt.ml: Array Gpu Hashtbl List Sass Vir
