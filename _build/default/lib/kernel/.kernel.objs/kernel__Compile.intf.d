lib/kernel/compile.mli: Ast Sass Vir
