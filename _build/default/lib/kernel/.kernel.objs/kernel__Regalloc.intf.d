lib/kernel/regalloc.mli: Vir
