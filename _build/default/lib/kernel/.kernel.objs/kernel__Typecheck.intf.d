lib/kernel/typecheck.mli: Ast
