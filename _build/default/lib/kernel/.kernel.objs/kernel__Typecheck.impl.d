lib/kernel/typecheck.ml: Ast Format List Printf Result Sass
