lib/kernel/vir.mli: Format Sass
