lib/kernel/ast.mli: Format Sass
