lib/kernel/regalloc.ml: Array Hashtbl List Printf Sass Vir
