lib/kernel/vir.ml: Array Format Hashtbl Int List Printf Sass Set
