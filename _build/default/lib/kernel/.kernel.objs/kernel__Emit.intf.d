lib/kernel/emit.mli: Sass Vir
