lib/kernel/compile.ml: Ast Emit Lower Opt Printf Regalloc Sass Typecheck
