lib/kernel/dsl.ml: Ast List Printf Sass
