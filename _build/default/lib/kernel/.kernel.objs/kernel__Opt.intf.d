lib/kernel/opt.mli: Vir
