exception Emit_error of string

let to_sass_guard (g : Vir.guard) =
  match g.Vir.g_pred with
  | None -> Sass.Pred.always
  | Some p ->
    { Sass.Pred.pred = Sass.Pred.p p; Sass.Pred.negated = g.Vir.g_neg }

let to_sass_src = function
  | Vir.VReg n -> Sass.Instr.SReg (if n = 255 then Sass.Reg.RZ else Sass.Reg.r n)
  | Vir.VImm i -> Sass.Instr.SImm i
  | Vir.VParam off -> Sass.Instr.SParam off
  | Vir.VPred p -> Sass.Instr.SPred (Sass.Pred.p p)

let emit ~name ~nparams ~shared_bytes ~frame_bytes items =
  let prologue = frame_bytes > 0 in
  let base = if prologue then 1 else 0 in
  (* First pass: label positions in final instruction indices. *)
  let labels = Hashtbl.create 16 in
  let pos = ref base in
  Array.iter
    (fun it ->
       match it with
       | Vir.Label l ->
         if Hashtbl.mem labels l then
           raise (Emit_error (Printf.sprintf "duplicate label %s" l));
         Hashtbl.replace labels l !pos
       | Vir.Ins _ -> incr pos)
    items;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some p -> p
    | None -> raise (Emit_error (Printf.sprintf "undefined label %s" l))
  in
  let out = ref [] in
  if prologue then
    out :=
      [ Sass.Instr.make Sass.Opcode.IADD ~dsts:[ Sass.Reg.sp ]
          ~srcs:[ Sass.Instr.SReg Sass.Reg.sp;
                  Sass.Instr.SImm (Gpu.Value.of_signed (-frame_bytes)) ] ];
  Array.iter
    (fun it ->
       match it with
       | Vir.Label _ -> ()
       | Vir.Ins i ->
         let target = Option.map resolve i.Vir.vtarget in
         let instr =
           Sass.Instr.make i.Vir.vop
             ~guard:(to_sass_guard i.Vir.vguard)
             ~dsts:(List.map (fun d -> Sass.Reg.r d) i.Vir.vdsts)
             ~pdsts:(List.map Sass.Pred.p i.Vir.vpdsts)
             ~srcs:(List.map to_sass_src i.Vir.vsrcs)
             ?target
         in
         out := instr :: !out)
    items;
  let instrs = Array.of_list (List.rev !out) in
  let kernel =
    Sass.Program.make ~name ~param_bytes:(4 * nparams) ~frame_bytes
      ~shared_bytes instrs
  in
  Sass.Program.annotate_reconvergence kernel
