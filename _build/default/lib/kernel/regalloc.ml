open Vir

exception Alloc_error of string

type result = {
  items : Vir.item array;
  frame_bytes : int;
  regs_used : int;
  spilled : int;
}

let scratch_count = 4

(* Linear scan over sorted intervals. Returns (assignment, spilled). *)
let scan ~pool intervals =
  let assignment : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let spilled : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let free = ref pool in
  (* active: (end, vreg, phys) sorted by end ascending *)
  let active = ref [] in
  let expire start =
    let rec go = function
      | (e, _, phys) :: rest when e < start ->
        free := phys :: !free;
        go rest
      | rest -> rest
    in
    active := go !active
  in
  let insert_active entry =
    let rec go = function
      | [] -> [ entry ]
      | ((e, _, _) as hd) :: rest ->
        let e_new, _, _ = entry in
        if e_new <= e then entry :: hd :: rest else hd :: go rest
    in
    active := go !active
  in
  List.iter
    (fun (v, (start, stop)) ->
       expire start;
       match !free with
       | phys :: rest ->
         free := rest;
         Hashtbl.replace assignment v phys;
         insert_active (stop, v, phys)
       | [] ->
         (* Spill the interval that ends last. *)
         (match List.rev !active with
          | (e_last, v_last, phys_last) :: _ when e_last > stop ->
            Hashtbl.remove assignment v_last;
            Hashtbl.replace spilled v_last ();
            active :=
              List.filter (fun (_, v', _) -> v' <> v_last) !active;
            Hashtbl.replace assignment v phys_last;
            insert_active (stop, v, phys_last)
          | _ -> Hashtbl.replace spilled v ()))
    intervals;
  (assignment, spilled)

let allocate ?(max_regs = 63) items =
  if max_regs < 8 then
    raise (Alloc_error "max_regs must be at least 8");
  let cfg = build_cfg items in
  let lv = liveness items cfg in
  let reg_ranges = reg_live_ranges items cfg lv in
  let pred_ranges = pred_live_ranges items cfg lv in
  (* Physical GPR pool: R0, R2..R(max-1), minus the top scratch_count
     registers reserved for spill code. *)
  let all_regs =
    0 :: List.init (max_regs - 2) (fun i -> i + 2)
  in
  let rec split_at n l =
    if n = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: rest ->
        let a, b = split_at (n - 1) rest in
        (x :: a, b)
  in
  let nalloc = List.length all_regs - scratch_count in
  if nalloc < 1 then raise (Alloc_error "no allocatable registers");
  let pool, scratch = split_at nalloc all_regs in
  let scratch = Array.of_list scratch in
  let assignment, spilled_tbl = scan ~pool reg_ranges in
  let pred_pool = [ 0; 1; 2; 3; 4; 5; 6 ] in
  let pred_assignment, pred_spilled = scan ~pool:pred_pool pred_ranges in
  if Hashtbl.length pred_spilled > 0 then
    raise
      (Alloc_error
         "predicate pressure exceeds 7 physical predicates; restructure \
          the kernel");
  (* Frame slots for spilled vregs. *)
  let slot_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_slot = ref 0 in
  Hashtbl.iter
    (fun v () ->
       Hashtbl.replace slot_of v !next_slot;
       incr next_slot)
    spilled_tbl;
  let frame_bytes = (!next_slot * 4 + 15) land lnot 15 in
  let phys_of v =
    match Hashtbl.find_opt assignment v with
    | Some p -> p
    | None -> raise (Alloc_error (Printf.sprintf "virtual v%d unallocated" v))
  in
  let ppred_of p =
    match Hashtbl.find_opt pred_assignment p with
    | Some q -> q
    | None -> raise (Alloc_error (Printf.sprintf "predicate vp%d unallocated" p))
  in
  let is_spilled v = Hashtbl.mem slot_of v in
  let regs_used = ref 2 (* R0,R1 at least *) in
  let see_phys p = if p + 1 > !regs_used then regs_used := p + 1 in
  let out = ref [] in
  let emit it = out := it :: !out in
  Array.iter
    (fun it ->
       match it with
       | Label _ -> emit it
       | Ins i ->
         (* Fill spilled sources into scratch registers. *)
         let next_scratch = ref 0 in
         let take_scratch () =
           if !next_scratch >= Array.length scratch then
             raise (Alloc_error "too many spilled operands in one instruction");
           let s = scratch.(!next_scratch) in
           incr next_scratch;
           s
         in
         let srcs =
           List.map
             (fun s ->
                match s with
                | VReg v when is_spilled v ->
                  let slot = Hashtbl.find slot_of v in
                  let sc = take_scratch () in
                  see_phys sc;
                  emit
                    (ins (Sass.Opcode.LD (Sass.Opcode.Local, Sass.Opcode.W32))
                       ~dsts:[ sc ]
                       ~srcs:[ VReg 1; VImm (slot * 4) ]);
                  VReg sc
                | VReg v ->
                  let p = phys_of v in
                  see_phys p;
                  VReg p
                | VPred p -> VPred (ppred_of p)
                | VImm _ | VParam _ -> s)
             i.vsrcs
         in
         let guard =
           match i.vguard.g_pred with
           | None -> i.vguard
           | Some p -> { i.vguard with g_pred = Some (ppred_of p) }
         in
         let spill_after = ref [] in
         let dsts =
           List.map
             (fun d ->
                if is_spilled d then begin
                  let slot = Hashtbl.find slot_of d in
                  let sc = scratch.(0) in
                  see_phys sc;
                  spill_after :=
                    ins (Sass.Opcode.ST (Sass.Opcode.Local, Sass.Opcode.W32))
                      ~guard
                      ~srcs:[ VReg 1; VImm (slot * 4); VReg sc ]
                    :: !spill_after;
                  sc
                end
                else begin
                  let p = phys_of d in
                  see_phys p;
                  p
                end)
             i.vdsts
         in
         let pdsts = List.map ppred_of i.vpdsts in
         emit (Ins { i with vguard = guard; vdsts = dsts; vpdsts = pdsts;
                     vsrcs = srcs });
         List.iter emit (List.rev !spill_after))
    items;
  { items = Array.of_list (List.rev !out);
    frame_bytes;
    regs_used = !regs_used;
    spilled = Hashtbl.length spilled_tbl }
