(** Builder combinators for the kernel AST. Workloads [open Dsl] and
    write kernels in a CUDA-like style:

    {[
      let vadd =
        Dsl.kernel "vadd" ~params:[ ptr "a"; ptr "b"; ptr "out"; int "n" ]
          (fun p ->
             [ let_ "gid" (global_tid_x ());
               exit_if (v "gid" >=! p 3);
               let_ "off" (v "gid" *! int_ 4);
               let_f "s" (ldg_f (p 0 +! v "off") +.. ldg_f (p 1 +! v "off"));
               st_global_f (p 2 +! v "off") (vf "s") ])
    ]}

    Integer operators are suffixed with [!] and float operators with
    [..]; comparisons yield booleans usable in [if_], [while_],
    [exit_if], and [select]. *)

open Ast

(* --- Parameter declaration -------------------------------------------- *)

let ptr name = (name, I32)

let int name = (name, I32)

let flt name = (name, F32)

(* --- Expressions -------------------------------------------------------- *)

let int_ n = Int n

let f32 x = Float x

let v name = Var name

let vf name = Var name

let tid_x = Special Sass.Opcode.Sr_tid_x

let tid_y = Special Sass.Opcode.Sr_tid_y

let ntid_x = Special Sass.Opcode.Sr_ntid_x

let ntid_y = Special Sass.Opcode.Sr_ntid_y

let ctaid_x = Special Sass.Opcode.Sr_ctaid_x

let ctaid_y = Special Sass.Opcode.Sr_ctaid_y

let nctaid_x = Special Sass.Opcode.Sr_nctaid_x

let nctaid_y = Special Sass.Opcode.Sr_nctaid_y

let laneid = Special Sass.Opcode.Sr_laneid

let warpid = Special Sass.Opcode.Sr_warpid

let global_tid_x () =
  Ibin (Add, Ibin (Mul, ctaid_x, ntid_x), tid_x)

(* Integer ops *)
let ( +! ) a b = Ibin (Add, a, b)

let ( -! ) a b = Ibin (Sub, a, b)

let ( *! ) a b = Ibin (Mul, a, b)

let ( /! ) a b = Ibin (Div, a, b)

let ( %! ) a b = Ibin (Rem, a, b)

let ( <<! ) a b = Ibin (Shl, a, b)

let ( >>! ) a b = Ibin (Shr, a, b)

let ( >>>! ) a b = Ibin (Ashr, a, b)

let ( &! ) a b = Ibin (And, a, b)

let ( |! ) a b = Ibin (Or, a, b)

let ( ^! ) a b = Ibin (Xor, a, b)

let imin a b = Ibin (Min, a, b)

let imax a b = Ibin (Max, a, b)

let udiv a b = Ibin (Udiv, a, b)

let urem a b = Ibin (Urem, a, b)

(* Integer comparisons *)
let ( <! ) a b = Icmp (Sass.Opcode.Lt, a, b)

let ( <=! ) a b = Icmp (Sass.Opcode.Le, a, b)

let ( >! ) a b = Icmp (Sass.Opcode.Gt, a, b)

let ( >=! ) a b = Icmp (Sass.Opcode.Ge, a, b)

let ( ==! ) a b = Icmp (Sass.Opcode.Eq, a, b)

let ( <>! ) a b = Icmp (Sass.Opcode.Ne, a, b)

(* Float ops *)
let ( +.. ) a b = Fbin (Fadd, a, b)

let ( -.. ) a b = Fbin (Fsub, a, b)

let ( *.. ) a b = Fbin (Fmul, a, b)

let ( /.. ) a b = Fbin (Fdiv, a, b)

let fmin a b = Fbin (Fmin, a, b)

let fmax a b = Fbin (Fmax, a, b)

let ffma a b c = Ffma (a, b, c)

let sqrt_ a = Funary (Sass.Opcode.Sqrt, a)

let rsqrt a = Funary (Sass.Opcode.Rsq, a)

let rcp a = Funary (Sass.Opcode.Rcp, a)

let exp2 a = Funary (Sass.Opcode.Ex2, a)

let log2 a = Funary (Sass.Opcode.Lg2, a)

let sin_ a = Funary (Sass.Opcode.Sin, a)

let cos_ a = Funary (Sass.Opcode.Cos, a)

let fabs a = Fbin (Fmax, a, Fbin (Fsub, Float 0.0, a))

(* Float comparisons *)
let ( <.. ) a b = Fcmp (Sass.Opcode.Lt, a, b)

let ( <=.. ) a b = Fcmp (Sass.Opcode.Le, a, b)

let ( >.. ) a b = Fcmp (Sass.Opcode.Gt, a, b)

let ( >=.. ) a b = Fcmp (Sass.Opcode.Ge, a, b)

let ( ==.. ) a b = Fcmp (Sass.Opcode.Eq, a, b)

(* Booleans *)
let not_ a = Not a

let ( &&? ) a b = Andb (a, b)

let ( ||? ) a b = Orb (a, b)

let select c a b = Select (c, a, b)

(* Conversions *)
let i2f a = I2f a

let u2f a = U2f a

let f2i a = F2i a

let popc a = Popc a

let brev a = Brev a

let ffs a = Ffs a

let ballot c = Ballot c

let shfl_idx v lane = Shfl (Sass.Opcode.S_idx, v, lane)

let shfl_down v delta = Shfl (Sass.Opcode.S_down, v, delta)

let shfl_up v delta = Shfl (Sass.Opcode.S_up, v, delta)

let shfl_bfly v mask = Shfl (Sass.Opcode.S_bfly, v, mask)

(* Memory *)
let ldg addr = Load (Sass.Opcode.Global, I32, addr)

let ldg_f addr = Load (Sass.Opcode.Global, F32, addr)

let ldg8 addr = Load8 (Sass.Opcode.Global, addr)

let lds addr = Load (Sass.Opcode.Shared, I32, addr)

let lds_f addr = Load (Sass.Opcode.Shared, F32, addr)

let tex_i idx = Tex (I32, idx)

let tex_f idx = Tex (F32, idx)

let shared_base name = Shared_base name

(* --- Statements --------------------------------------------------------- *)

let let_ name e = Let (name, I32, e)

let let_f name e = Let (name, F32, e)

let set name e = Set (name, e)

let st_global addr value = Store (Sass.Opcode.Global, addr, value)

let st_global_f addr value = Store (Sass.Opcode.Global, addr, value)

let st_global8 addr value = Store8 (Sass.Opcode.Global, addr, value)

let st_shared addr value = Store (Sass.Opcode.Shared, addr, value)

let st_shared_f addr value = Store (Sass.Opcode.Shared, addr, value)

let if_ c then_s else_s = If (c, then_s, else_s)

let when_ c then_s = If (c, then_s, [])

let while_ c body = While (c, body)

let for_ name lo hi body = For (name, lo, hi, body)

let atomic_add addr value = Atomic (Aadd, Sass.Opcode.Global, addr, value)

let atomic_max addr value = Atomic (Amax, Sass.Opcode.Global, addr, value)

let atomic_min addr value = Atomic (Amin, Sass.Opcode.Global, addr, value)

let atomic_add_shared addr value = Atomic (Aadd, Sass.Opcode.Shared, addr, value)

let atomic_add_ret dst addr value =
  Atomic_ret (dst, Aadd, Sass.Opcode.Global, addr, value)

let atomic_exch_ret dst addr value =
  Atomic_ret (dst, Aexch, Sass.Opcode.Global, addr, value)

let atomic_cas dst addr compare swap =
  Atomic_cas (dst, Sass.Opcode.Global, addr, compare, swap)

let sync = Sync

let exit_if c = Exit_if c

let nop_mark id = Nop_mark id

(* --- Kernels ------------------------------------------------------------ *)

let kernel name ~params ?(shared = []) body_fn =
  let param i =
    if i >= List.length params then
      invalid_arg (Printf.sprintf "%s: parameter %d out of range" name i);
    Param i
  in
  { k_name = name; k_params = params; k_shared = shared;
    k_body = body_fn param }
