(** The kernel language: a typed, CUDA-like shader AST.

    This plays the role of the front-end output (PTX-producing
    languages in the paper): workloads are written in this language
    and compiled by the backend ({!Compile}) down to SASS, with the
    SASSI pass running last.

    Scalars are 32-bit; [F32] expressions carry IEEE-754 single
    bit patterns in the same 32-bit registers as [I32]. Addresses are
    [I32] byte offsets within an explicit memory space. *)

type ty =
  | I32
  | F32
  | Bool  (** predicate-valued; only from comparisons and logic *)

type ibin =
  | Add
  | Sub
  | Mul
  | Div  (** signed *)
  | Rem  (** signed *)
  | Udiv
  | Urem
  | Min
  | Max
  | Shl
  | Shr  (** logical *)
  | Ashr  (** arithmetic *)
  | And
  | Or
  | Xor

type fbin =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv  (** emitted as MUFU.RCP + FMUL *)
  | Fmin
  | Fmax

type exp =
  | Int of int
  | Float of float
  | Var of string
  | Param of int  (** i-th kernel parameter (4-byte slot) *)
  | Special of Sass.Opcode.special
  | Shared_base of string  (** byte offset of a declared shared array *)
  | Ibin of ibin * exp * exp
  | Fbin of fbin * exp * exp
  | Ffma of exp * exp * exp  (** a*b + c, single rounding *)
  | Icmp of Sass.Opcode.cmp * exp * exp  (** signed compare *)
  | Ucmp of Sass.Opcode.cmp * exp * exp  (** unsigned compare *)
  | Fcmp of Sass.Opcode.cmp * exp * exp
  | Not of exp
  | Andb of exp * exp
  | Orb of exp * exp
  | Select of exp * exp * exp  (** Select (cond, if_true, if_false) *)
  | I2f of exp
  | F2i of exp
  | U2f of exp
  | Funary of Sass.Opcode.mufu * exp
  | Popc of exp
  | Brev of exp
  | Ffs of exp  (** 1-based lowest set bit; 0 for zero (CUDA [__ffs]) *)
  | Load of Sass.Opcode.space * ty * exp  (** 4-byte load *)
  | Load8 of Sass.Opcode.space * exp  (** byte load, zero-extended *)
  | Tex of ty * exp  (** texture fetch by element index *)
  | Ballot of exp  (** warp ballot of a boolean *)
  | Shfl of Sass.Opcode.shfl * exp * exp  (** value, lane/delta *)

type atom =
  | Aadd
  | Amin
  | Amax
  | Aexch
  | Aand
  | Aor
  | Axor

type stmt =
  | Let of string * ty * exp  (** declare-and-init a mutable local *)
  | Set of string * exp
  | Store of Sass.Opcode.space * exp * exp  (** 4-byte store: addr, value *)
  | Store8 of Sass.Opcode.space * exp * exp
  | If of exp * stmt list * stmt list
  | While of exp * stmt list
  | For of string * exp * exp * stmt list
      (** [For (i, lo, hi, body)]: signed [i] from [lo] while [i < hi],
          step 1 *)
  | Atomic of atom * Sass.Opcode.space * exp * exp  (** no result *)
  | Atomic_ret of string * atom * Sass.Opcode.space * exp * exp
      (** old value assigned to an already-declared variable *)
  | Atomic_cas of string * Sass.Opcode.space * exp * exp * exp
      (** [Atomic_cas (old, addr, compare, swap)] *)
  | Sync  (** __syncthreads *)
  | Exit_if of exp  (** guarded thread exit *)
  | Nop_mark of int
      (** no-op carrying a marker id, useful for instrumentation tests *)

type kernel = {
  k_name : string;
  k_params : (string * ty) list;
  k_shared : (string * int) list;  (** shared arrays: name, size in bytes *)
  k_body : stmt list;
}

val atom_to_sass : atom -> Sass.Opcode.atom_op

val exp_equal : exp -> exp -> bool

val pp_ty : Format.formatter -> ty -> unit
