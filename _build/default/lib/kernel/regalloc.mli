(** Linear-scan register allocation.

    Maps virtual registers to physical GPRs ([R0], [R2..Rmax]; [R1] is
    the ABI stack pointer) and virtual predicates to [P0..P6].
    Intervals that do not fit are spilled to the thread's local-memory
    frame, with fills/spills through reserved scratch registers.

    After allocation, every [VReg n] in the returned items denotes the
    physical register [Rn] and every [VPred n] the physical [Pn]. *)

exception Alloc_error of string

type result = {
  items : Vir.item array;
  frame_bytes : int;  (** spill area, 16-byte rounded *)
  regs_used : int;
  spilled : int;  (** number of spilled virtual registers *)
}

val allocate : ?max_regs:int -> Vir.item array -> result
(** @raise Alloc_error when predicate pressure exceeds the 7 physical
    predicates (predicates are not spillable here), or when [max_regs]
    leaves no allocatable registers. *)
