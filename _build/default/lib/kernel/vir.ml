type vsrc =
  | VReg of int
  | VImm of int
  | VParam of int
  | VPred of int

type guard = {
  g_pred : int option;
  g_neg : bool;
}

let always = { g_pred = None; g_neg = false }

type vinstr = {
  vop : Sass.Opcode.t;
  vguard : guard;
  vdsts : int list;
  vpdsts : int list;
  vsrcs : vsrc list;
  vtarget : string option;
}

type item =
  | Label of string
  | Ins of vinstr

let ins ?(guard = always) ?(dsts = []) ?(pdsts = []) ?(srcs = []) ?target op =
  Ins { vop = op; vguard = guard; vdsts = dsts; vpdsts = pdsts;
        vsrcs = srcs; vtarget = target }

let reg_uses i =
  List.filter_map
    (function
      | VReg r -> Some r
      | VImm _ | VParam _ | VPred _ -> None)
    i.vsrcs

let pred_uses i =
  let srcs =
    List.filter_map
      (function
        | VPred p -> Some p
        | VReg _ | VImm _ | VParam _ -> None)
      i.vsrcs
  in
  match i.vguard.g_pred with
  | Some p -> p :: srcs
  | None -> srcs

let has_side_effect i =
  let open Sass.Opcode in
  is_mem_write i.vop || is_atomic i.vop || is_control i.vop || is_sync i.vop
  || (match i.vop with
      | NOP -> i.vsrcs <> []  (* marker NOPs are kept *)
      | _ -> false)

(* --- CFG ---------------------------------------------------------------- *)

type cfg = {
  firsts : int array;  (* first item index per block *)
  lasts : int array;
  succs : int list array;
  item_block : int array;
}

let build_cfg items =
  let n = Array.length items in
  let label_pos = Hashtbl.create 16 in
  Array.iteri
    (fun idx it ->
       match it with
       | Label l -> Hashtbl.replace label_pos l idx
       | Ins _ -> ())
    items;
  let leader = Array.make n false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun idx it ->
       match it with
       | Label _ -> leader.(idx) <- true
       | Ins i ->
         (match i.vop with
          | Sass.Opcode.BRA | Sass.Opcode.EXIT | Sass.Opcode.RET ->
            if idx + 1 < n then leader.(idx + 1) <- true
          | _ -> ()))
    items;
  let firsts = ref [] in
  for idx = n - 1 downto 0 do
    if leader.(idx) then firsts := idx :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let nb = Array.length firsts in
  let lasts =
    Array.init nb (fun b ->
        (if b + 1 < nb then firsts.(b + 1) else n) - 1)
  in
  let item_block = Array.make n (-1) in
  Array.iteri
    (fun b first ->
       for idx = first to lasts.(b) do
         item_block.(idx) <- b
       done)
    firsts;
  let block_of_label l =
    match Hashtbl.find_opt label_pos l with
    | Some idx -> item_block.(idx)
    | None -> invalid_arg (Printf.sprintf "Vir: unknown label %s" l)
  in
  let succs =
    Array.init nb (fun b ->
        let last = lasts.(b) in
        let fallthrough = if b + 1 < nb then [ b + 1 ] else [] in
        match items.(last) with
        | Label _ -> fallthrough
        | Ins i ->
          (match i.vop with
           | Sass.Opcode.EXIT | Sass.Opcode.RET ->
             (* Guarded EXIT falls through for the surviving lanes. *)
             if i.vguard.g_pred = None then [] else fallthrough
           | Sass.Opcode.BRA ->
             let t =
               match i.vtarget with
               | Some l -> block_of_label l
               | None -> invalid_arg "Vir: BRA without label"
             in
             if i.vguard.g_pred = None then [ t ]
             else List.sort_uniq Int.compare (t :: fallthrough)
           | _ -> fallthrough))
  in
  { firsts; lasts; succs; item_block }

let block_count c = Array.length c.firsts

let block_range c b = (c.firsts.(b), c.lasts.(b))

let block_succs c b = c.succs.(b)

let block_of_item c idx = c.item_block.(idx)

(* --- Liveness ----------------------------------------------------------- *)

module ISet = Set.Make (Int)

type liveness = {
  out_regs : ISet.t array;
  out_preds : ISet.t array;
}

let transfer_block items cfg b (live_r, live_p) =
  let first, last = block_range cfg b in
  let live_r = ref live_r and live_p = ref live_p in
  for idx = last downto first do
    match items.(idx) with
    | Label _ -> ()
    | Ins i ->
      if i.vguard.g_pred = None then begin
        List.iter (fun d -> live_r := ISet.remove d !live_r) i.vdsts;
        List.iter (fun d -> live_p := ISet.remove d !live_p) i.vpdsts
      end;
      List.iter (fun u -> live_r := ISet.add u !live_r) (reg_uses i);
      List.iter (fun u -> live_p := ISet.add u !live_p) (pred_uses i)
  done;
  (!live_r, !live_p)

let liveness items cfg =
  let nb = block_count cfg in
  let in_r = Array.make nb ISet.empty in
  let in_p = Array.make nb ISet.empty in
  let out_r = Array.make nb ISet.empty in
  let out_p = Array.make nb ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      let o_r =
        List.fold_left
          (fun acc s -> ISet.union acc in_r.(s))
          ISet.empty (block_succs cfg b)
      in
      let o_p =
        List.fold_left
          (fun acc s -> ISet.union acc in_p.(s))
          ISet.empty (block_succs cfg b)
      in
      out_r.(b) <- o_r;
      out_p.(b) <- o_p;
      let i_r, i_p = transfer_block items cfg b (o_r, o_p) in
      if not (ISet.equal i_r in_r.(b)) then begin
        in_r.(b) <- i_r;
        changed := true
      end;
      if not (ISet.equal i_p in_p.(b)) then begin
        in_p.(b) <- i_p;
        changed := true
      end
    done
  done;
  { out_regs = out_r; out_preds = out_p }

let live_out_regs lv ~block = ISet.elements lv.out_regs.(block)

let live_out_preds lv ~block = ISet.elements lv.out_preds.(block)

let ranges_generic items cfg ~defs ~uses ~live_out =
  let table : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let extend v idx =
    match Hashtbl.find_opt table v with
    | None -> Hashtbl.replace table v (idx, idx)
    | Some (lo, hi) -> Hashtbl.replace table v (min lo idx, max hi idx)
  in
  Array.iteri
    (fun idx it ->
       match it with
       | Label _ -> ()
       | Ins i ->
         List.iter (fun v -> extend v idx) (defs i);
         List.iter (fun v -> extend v idx) (uses i))
    items;
  (* Values live out of a block are live through the whole block. *)
  for b = 0 to block_count cfg - 1 do
    let first, last = block_range cfg b in
    List.iter
      (fun v ->
         extend v last;
         (* If live-out without a def in this block, it is live from
            the top of the block. *)
         extend v first)
      (live_out b)
  done;
  Hashtbl.fold (fun v r acc -> (v, r) :: acc) table []
  |> List.sort (fun (_, (a, _)) (_, (b, _)) -> Int.compare a b)

let reg_live_ranges items cfg lv =
  ranges_generic items cfg
    ~defs:(fun i -> i.vdsts)
    ~uses:reg_uses
    ~live_out:(fun b -> live_out_regs lv ~block:b)

let pred_live_ranges items cfg lv =
  ranges_generic items cfg
    ~defs:(fun i -> i.vpdsts)
    ~uses:pred_uses
    ~live_out:(fun b -> live_out_preds lv ~block:b)

(* --- Printing ----------------------------------------------------------- *)

let pp_vsrc ppf = function
  | VReg r -> Format.fprintf ppf "v%d" r
  | VImm i -> Format.fprintf ppf "0x%x" (i land 0xffffffff)
  | VParam o -> Format.fprintf ppf "c[0x%x]" o
  | VPred p -> Format.fprintf ppf "vp%d" p

let pp_item ppf = function
  | Label l -> Format.fprintf ppf "%s:" l
  | Ins i ->
    (match i.vguard.g_pred with
     | Some p ->
       Format.fprintf ppf "@@%svp%d " (if i.vguard.g_neg then "!" else "") p
     | None -> ());
    Sass.Opcode.pp ppf i.vop;
    List.iter (fun d -> Format.fprintf ppf " v%d" d) i.vdsts;
    List.iter (fun d -> Format.fprintf ppf " vp%d" d) i.vpdsts;
    List.iter (fun s -> Format.fprintf ppf " %a" pp_vsrc s) i.vsrcs;
    (match i.vtarget with
     | Some l -> Format.fprintf ppf " -> %s" l
     | None -> ())

let pp_items ppf items =
  Array.iteri (fun idx it -> Format.fprintf ppf "%3d: %a@." idx pp_item it) items
