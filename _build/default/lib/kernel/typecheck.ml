open Ast

type error = {
  where : string;
  message : string;
}

let error_to_string e = Printf.sprintf "%s: %s" e.where e.message

let ( let* ) = Result.bind

let rec type_of_exp ~params ~shared ~locals e =
  let recur e = type_of_exp ~params ~shared ~locals e in
  let expect want e what =
    let* t = recur e in
    if t = want then Ok ()
    else
      Error
        (Format.asprintf "%s must be %a, got %a" what pp_ty want pp_ty t)
  in
  match e with
  | Int _ -> Ok I32
  | Float _ -> Ok F32
  | Var v ->
    (match List.assoc_opt v locals with
     | Some t -> Ok t
     | None -> Error (Printf.sprintf "unbound variable %s" v))
  | Param i ->
    (match List.nth_opt params i with
     | Some (_, t) when t <> Bool -> Ok t
     | Some (n, _) -> Error (Printf.sprintf "parameter %s cannot be bool" n)
     | None -> Error (Printf.sprintf "parameter index %d out of range" i))
  | Special _ -> Ok I32
  | Shared_base name ->
    if List.mem_assoc name shared then Ok I32
    else Error (Printf.sprintf "unknown shared array %s" name)
  | Ibin (_, a, b) ->
    let* () = expect I32 a "integer operand" in
    let* () = expect I32 b "integer operand" in
    Ok I32
  | Fbin (_, a, b) ->
    let* () = expect F32 a "float operand" in
    let* () = expect F32 b "float operand" in
    Ok F32
  | Ffma (a, b, c) ->
    let* () = expect F32 a "ffma operand" in
    let* () = expect F32 b "ffma operand" in
    let* () = expect F32 c "ffma operand" in
    Ok F32
  | Icmp (_, a, b) | Ucmp (_, a, b) ->
    let* () = expect I32 a "compare operand" in
    let* () = expect I32 b "compare operand" in
    Ok Bool
  | Fcmp (_, a, b) ->
    let* () = expect F32 a "compare operand" in
    let* () = expect F32 b "compare operand" in
    Ok Bool
  | Not a ->
    let* () = expect Bool a "logic operand" in
    Ok Bool
  | Andb (a, b) | Orb (a, b) ->
    let* () = expect Bool a "logic operand" in
    let* () = expect Bool b "logic operand" in
    Ok Bool
  | Select (c, a, b) ->
    let* () = expect Bool c "select condition" in
    let* ta = recur a in
    let* tb = recur b in
    if ta = Bool then Error "select arms cannot be bool"
    else if ta = tb then Ok ta
    else Error "select arms must have the same type"
  | I2f a | U2f a ->
    let* () = expect I32 a "conversion operand" in
    Ok F32
  | F2i a ->
    let* () = expect F32 a "conversion operand" in
    Ok I32
  | Funary (_, a) ->
    let* () = expect F32 a "mufu operand" in
    Ok F32
  | Popc a | Brev a | Ffs a ->
    let* () = expect I32 a "bit operand" in
    Ok I32
  | Load (space, t, addr) ->
    let* () = expect I32 addr "address" in
    (match space, t with
     | _, Bool -> Error "cannot load bool"
     | Sass.Opcode.Tex, _ -> Error "use Tex for texture fetches"
     | _, _ -> Ok t)
  | Load8 (space, addr) ->
    let* () = expect I32 addr "address" in
    (match space with
     | Sass.Opcode.Tex -> Error "use Tex for texture fetches"
     | _ -> Ok I32)
  | Tex (t, idx) ->
    let* () = expect I32 idx "texture index" in
    if t = Bool then Error "cannot fetch bool texture" else Ok t
  | Ballot a ->
    let* () = expect Bool a "ballot operand" in
    Ok I32
  | Shfl (_, v, lane) ->
    let* tv = recur v in
    let* () = expect I32 lane "shuffle lane" in
    if tv = Bool then Error "cannot shuffle bool" else Ok tv

let check k =
  let params = k.k_params in
  let shared = k.k_shared in
  let fail where message = Error { where; message } in
  let rec check_stmts ~locals ~where stmts =
    match stmts with
    | [] -> Ok locals
    | s :: rest ->
      let* locals = check_stmt ~locals ~where s in
      check_stmts ~locals ~where rest
  and check_exp ~locals ~where want e what =
    match type_of_exp ~params ~shared ~locals e with
    | Error m -> fail where m
    | Ok t ->
      if t = want then Ok ()
      else
        fail where
          (Format.asprintf "%s must be %a, got %a" what pp_ty want pp_ty t)
  and check_value_exp ~locals ~where e what =
    match type_of_exp ~params ~shared ~locals e with
    | Error m -> fail where m
    | Ok Bool -> fail where (what ^ " cannot be bool")
    | Ok t -> Ok t
  and check_stmt ~locals ~where s =
    match s with
    | Let (v, t, e) ->
      if t = Bool then
        fail where
          (Printf.sprintf
             "local %s: bool locals are not allowed (use Select)" v)
      else if List.mem_assoc v locals then
        fail where (Printf.sprintf "variable %s already declared" v)
      else (
        match type_of_exp ~params ~shared ~locals e with
        | Error m -> fail where m
        | Ok te ->
          if te = t then Ok ((v, t) :: locals)
          else
            fail where
              (Format.asprintf "let %s: declared %a but initializer is %a" v
                 pp_ty t pp_ty te))
    | Set (v, e) ->
      (match List.assoc_opt v locals with
       | None -> fail where (Printf.sprintf "assignment to unbound %s" v)
       | Some t ->
         let* () = check_exp ~locals ~where t e ("assignment to " ^ v) in
         Ok locals)
    | Store (space, addr, v) ->
      (match space with
       | Sass.Opcode.Param -> fail where "the constant bank is read-only"
       | Sass.Opcode.Tex -> fail where "textures cannot be stored to"
       | _ ->
         let* () = check_exp ~locals ~where I32 addr "store address" in
         let* _ = check_value_exp ~locals ~where v "stored value" in
         Ok locals)
    | Store8 (space, addr, v) ->
      (match space with
       | Sass.Opcode.Param -> fail where "the constant bank is read-only"
       | Sass.Opcode.Tex -> fail where "textures cannot be stored to"
       | _ ->
         let* () = check_exp ~locals ~where I32 addr "store address" in
         let* () = check_exp ~locals ~where I32 v "stored byte" in
         Ok locals)
    | If (c, t, f) ->
      let* () = check_exp ~locals ~where Bool c "if condition" in
      let* _ = check_stmts ~locals ~where:(where ^ "/if-then") t in
      let* _ = check_stmts ~locals ~where:(where ^ "/if-else") f in
      Ok locals
    | While (c, body) ->
      let* () = check_exp ~locals ~where Bool c "while condition" in
      let* _ = check_stmts ~locals ~where:(where ^ "/while") body in
      Ok locals
    | For (v, lo, hi, body) ->
      let* () = check_exp ~locals ~where I32 lo "for lower bound" in
      let* () = check_exp ~locals ~where I32 hi "for upper bound" in
      if List.mem_assoc v locals then
        fail where (Printf.sprintf "for variable %s shadows a local" v)
      else
        let* _ =
          check_stmts ~locals:((v, I32) :: locals) ~where:(where ^ "/for") body
        in
        Ok locals
    | Atomic (_, space, addr, v) ->
      (match space with
       | Sass.Opcode.Global | Sass.Opcode.Shared ->
         let* () = check_exp ~locals ~where I32 addr "atomic address" in
         let* () = check_exp ~locals ~where I32 v "atomic operand" in
         Ok locals
       | _ -> fail where "atomics require global or shared space")
    | Atomic_ret (dst, _, space, addr, v) ->
      (match space with
       | Sass.Opcode.Global | Sass.Opcode.Shared ->
         (match List.assoc_opt dst locals with
          | Some I32 ->
            let* () = check_exp ~locals ~where I32 addr "atomic address" in
            let* () = check_exp ~locals ~where I32 v "atomic operand" in
            Ok locals
          | Some _ -> fail where "atomic result variable must be i32"
          | None ->
            fail where (Printf.sprintf "atomic result %s is unbound" dst))
       | _ -> fail where "atomics require global or shared space")
    | Atomic_cas (dst, space, addr, cmp, swap) ->
      (match space with
       | Sass.Opcode.Global | Sass.Opcode.Shared ->
         (match List.assoc_opt dst locals with
          | Some I32 ->
            let* () = check_exp ~locals ~where I32 addr "cas address" in
            let* () = check_exp ~locals ~where I32 cmp "cas compare" in
            let* () = check_exp ~locals ~where I32 swap "cas swap" in
            Ok locals
          | Some _ -> fail where "cas result variable must be i32"
          | None -> fail where (Printf.sprintf "cas result %s is unbound" dst))
       | _ -> fail where "atomics require global or shared space")
    | Sync -> Ok locals
    | Exit_if c ->
      let* () = check_exp ~locals ~where Bool c "exit condition" in
      Ok locals
    | Nop_mark _ -> Ok locals
  in
  let* _ = check_stmts ~locals:[] ~where:k.k_name k.k_body in
  Ok ()
