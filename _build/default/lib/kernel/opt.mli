(** Backend optimizations over the virtual-register IR:
    integer/float constant folding, block-local copy and constant
    propagation, and liveness-based dead-code elimination. Run before
    register allocation; all passes preserve semantics for any lane
    mask (guarded instructions are treated as barriers to killing). *)

val constant_fold : Vir.item array -> Vir.item array

val cse : Vir.item array -> Vir.item array
(** Block-local common-subexpression elimination by value numbering
    over pure operations (including non-volatile special-register
    reads, so repeated S2Rs collapse). *)

val copy_propagate : Vir.item array -> Vir.item array

val dead_code_eliminate : Vir.item array -> Vir.item array

val optimize : ?level:int -> Vir.item array -> Vir.item array
(** [level 0]: nothing; [level 1] (default): fold + propagate + DCE to
    a fixpoint (bounded). *)
