open Vir

let fold_int_op op a b =
  let open Sass.Opcode in
  match op with
  | IADD -> Some (Gpu.Value.add a b)
  | ISUB -> Some (Gpu.Value.sub a b)
  | IMUL -> Some (Gpu.Value.mul a b)
  | IDIV sign -> Some (Gpu.Value.div ~sign a b)
  | IMOD sign -> Some (Gpu.Value.rem ~sign a b)
  | IMNMX cmp -> Some (Gpu.Value.min_max ~cmp a b)
  | SHL -> Some (Gpu.Value.shl a b)
  | SHR sign -> Some (Gpu.Value.shr ~sign a b)
  | LOP l -> Some (Gpu.Value.logic l a b)
  | FADD -> Some (Gpu.Value.fadd a b)
  | FSUB -> Some (Gpu.Value.fsub a b)
  | FMUL -> Some (Gpu.Value.fmul a b)
  | FMNMX cmp -> Some (Gpu.Value.fmin_max ~cmp a b)
  | _ -> None

let fold_unary_op op a =
  let open Sass.Opcode in
  match op with
  | BREV -> Some (Gpu.Value.brev a)
  | POPC -> Some (Gpu.Value.popc a)
  | FLO -> Some (Gpu.Value.flo a)
  | I2F sign -> Some (Gpu.Value.i2f ~sign a)
  | F2I sign -> Some (Gpu.Value.f2i ~sign a)
  | MUFU f -> Some (Gpu.Value.mufu f a)
  | MOV -> Some a
  | _ -> None

let constant_fold items =
  Array.map
    (fun it ->
       match it with
       | Label _ -> it
       | Ins i ->
         if i.vguard.g_pred <> None then it
         else (
           match i.vdsts, i.vsrcs with
           | [ d ], [ VImm a; VImm b ] ->
             (match fold_int_op i.vop a b with
              | Some v ->
                Ins { i with vop = Sass.Opcode.MOV; vdsts = [ d ];
                      vsrcs = [ VImm v ] }
              | None -> it)
           | [ d ], [ VImm a ] ->
             (match fold_unary_op i.vop a with
              | Some v ->
                Ins { i with vop = Sass.Opcode.MOV; vdsts = [ d ];
                      vsrcs = [ VImm v ] }
              | None -> it)
           | _ -> it))
    items

(* Identity simplifications: x+0, x*1, x*0, x<<0, x|0, x&0. *)
let strength_reduce items =
  Array.map
    (fun it ->
       match it with
       | Label _ -> it
       | Ins i when i.vguard.g_pred <> None -> it
       | Ins i ->
         let mov d s =
           Ins { i with vop = Sass.Opcode.MOV; vdsts = [ d ]; vsrcs = [ s ] }
         in
         (match i.vop, i.vdsts, i.vsrcs with
          | Sass.Opcode.IADD, [ d ], [ s; VImm 0 ]
          | Sass.Opcode.IADD, [ d ], [ VImm 0; s ]
          | Sass.Opcode.ISUB, [ d ], [ s; VImm 0 ]
          | Sass.Opcode.IMUL, [ d ], [ s; VImm 1 ]
          | Sass.Opcode.IMUL, [ d ], [ VImm 1; s ]
          | Sass.Opcode.SHL, [ d ], [ s; VImm 0 ]
          | Sass.Opcode.SHR _, [ d ], [ s; VImm 0 ]
          | Sass.Opcode.LOP Sass.Opcode.L_or, [ d ], [ s; VImm 0 ] ->
            mov d s
          | Sass.Opcode.IMUL, [ d ], [ _; VImm 0 ]
          | Sass.Opcode.IMUL, [ d ], [ VImm 0; _ ]
          | Sass.Opcode.LOP Sass.Opcode.L_and, [ d ], [ _; VImm 0 ] ->
            mov d (VImm 0)
          | _ -> it))
    items

(* Block-local common-subexpression elimination by value numbering:
   pure, unguarded, single-destination operations with identical
   operands reuse the earlier result (a later copy-propagation/DCE
   round removes the introduced MOVs). Loads, atomics, volatile
   specials (the clock) and anything with side effects are excluded. *)
let pure_for_cse (i : vinstr) =
  let open Sass.Opcode in
  match i.vop with
  | IADD | ISUB | IMUL | IMAD | IDIV _ | IMOD _ | IMNMX _ | SHL | SHR _
  | LOP _ | BREV | POPC | FLO | FADD | FSUB | FMUL | FFMA | FMNMX _
  | MUFU _ | I2F _ | F2I _ -> true
  | S2R Sr_clock -> false
  | S2R _ -> true
  (* SEL reads a predicate; predicate redefinitions are not tracked
     by the value-numbering table, so SEL must not be memoized. *)
  | SEL | ISETP _ | FSETP _ | MOV | P2R | R2P | PSETP _ | LD _ | ST _
  | ATOM _ | RED _ | TLD _ | MEMBAR | VOTE _ | SHFL _ | BRA | CAL | RET
  | EXIT | BAR | NOP | HCALL _ -> false

let cse items =
  let items = Array.copy items in
  let table : (Sass.Opcode.t * vsrc list, int) Hashtbl.t = Hashtbl.create 32 in
  let invalidate_reg r =
    let stale =
      Hashtbl.fold
        (fun ((_, srcs) as key) d acc ->
           if d = r || List.exists (fun s -> s = VReg r) srcs then key :: acc
           else acc)
        table []
    in
    List.iter (Hashtbl.remove table) stale
  in
  Array.iteri
    (fun idx it ->
       match it with
       | Label _ -> Hashtbl.reset table
       | Ins i ->
         if Sass.Opcode.is_control i.vop then Hashtbl.reset table;
         (match i.vdsts, i.vpdsts with
          | [ d ], [] when i.vguard.g_pred = None && pure_for_cse i ->
            let key = (i.vop, i.vsrcs) in
            (match Hashtbl.find_opt table key with
             | Some prev ->
               items.(idx) <-
                 Ins { i with vop = Sass.Opcode.MOV;
                       vsrcs = [ VReg prev ] };
               invalidate_reg d;
               (* The new MOV makes d an alias; don't register it. *)
               ()
             | None ->
               List.iter invalidate_reg i.vdsts;
               (* Self-referencing ops (d = f(d, ...)) cannot be
                  memoized: the key's source value is overwritten. *)
               if List.for_all (fun s -> s <> VReg d) i.vsrcs then
                 Hashtbl.replace table key d)
          | _ -> List.iter invalidate_reg i.vdsts))
    items;
  items

let copy_propagate items =
  let items = Array.copy items in
  let n = Array.length items in
  let copies : (int, vsrc) Hashtbl.t = Hashtbl.create 32 in
  let invalidate_reg r =
    Hashtbl.remove copies r;
    (* Drop any mapping whose source is r. *)
    let stale =
      Hashtbl.fold
        (fun d s acc ->
           match s with
           | VReg r' when r' = r -> d :: acc
           | _ -> acc)
        copies []
    in
    List.iter (Hashtbl.remove copies) stale
  in
  for idx = 0 to n - 1 do
    match items.(idx) with
    | Label _ -> Hashtbl.reset copies
    | Ins i ->
      (* Block boundary at control flow too. *)
      if Sass.Opcode.is_control i.vop then Hashtbl.reset copies;
      let subst s =
        match s with
        | VReg r ->
          (match Hashtbl.find_opt copies r with
           | Some replacement -> replacement
           | None -> s)
        | _ -> s
      in
      let i = { i with vsrcs = List.map subst i.vsrcs } in
      items.(idx) <- Ins i;
      List.iter invalidate_reg i.vdsts;
      if i.vguard.g_pred = None then (
        match i.vop, i.vdsts, i.vsrcs with
        | Sass.Opcode.MOV, [ d ], [ (VReg _ | VImm _ | VParam _) as s ] ->
          if s <> VReg d then Hashtbl.replace copies d s
        | _ -> ())
  done;
  items

let dead_code_eliminate items =
  let cfg = build_cfg items in
  let lv = liveness items cfg in
  let keep = Array.make (Array.length items) true in
  for b = 0 to block_count cfg - 1 do
    let first, last = block_range cfg b in
    let live_r =
      ref (List.fold_left (fun s r -> r :: s) [] (live_out_regs lv ~block:b))
    in
    let live_p =
      ref (List.fold_left (fun s p -> p :: s) [] (live_out_preds lv ~block:b))
    in
    for idx = last downto first do
      match items.(idx) with
      | Label _ -> ()
      | Ins i ->
        let defs_live =
          List.exists (fun d -> List.mem d !live_r) i.vdsts
          || List.exists (fun d -> List.mem d !live_p) i.vpdsts
        in
        if (not (has_side_effect i)) && not defs_live
           && (i.vdsts <> [] || i.vpdsts <> [])
        then keep.(idx) <- false
        else begin
          if i.vguard.g_pred = None then begin
            live_r := List.filter (fun r -> not (List.mem r i.vdsts)) !live_r;
            live_p := List.filter (fun p -> not (List.mem p i.vpdsts)) !live_p
          end;
          List.iter
            (fun u -> if not (List.mem u !live_r) then live_r := u :: !live_r)
            (reg_uses i);
          List.iter
            (fun u -> if not (List.mem u !live_p) then live_p := u :: !live_p)
            (pred_uses i)
        end
    done
  done;
  let out = ref [] in
  for idx = Array.length items - 1 downto 0 do
    if keep.(idx) then out := items.(idx) :: !out
  done;
  Array.of_list !out

let optimize ?(level = 1) items =
  if level <= 0 then items
  else begin
    let pass items =
      items
      |> constant_fold
      |> strength_reduce
      |> cse
      |> copy_propagate
      |> dead_code_eliminate
    in
    (* Iterate to a fixpoint: each pass can expose work for the others
       (a folded constant enables propagation enables dead code). The
       bound is a safety net; lowered kernels settle in 2-4 rounds. *)
    let rec go items fuel =
      let items' = pass items in
      if fuel = 0 || items' = items then items'
      else go items' (fuel - 1)
    in
    go items 8
  end
