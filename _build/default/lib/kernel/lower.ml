open Ast
open Vir

exception Lower_error of string

type result = {
  items : Vir.item array;
  shared_bytes : int;
  nparams : int;
}

type env = {
  mutable code : item list;  (* reversed *)
  vars : (string, int) Hashtbl.t;
  shared_off : (string, int) Hashtbl.t;
  mutable next_reg : int;
  mutable next_pred : int;
  mutable next_label : int;
}

let emit env it = env.code <- it :: env.code

let fresh_reg env =
  let r = env.next_reg in
  env.next_reg <- r + 1;
  r

let fresh_pred env =
  let p = env.next_pred in
  env.next_pred <- p + 1;
  p

let fresh_label env prefix =
  let l = env.next_label in
  env.next_label <- l + 1;
  Printf.sprintf ".L%s_%d" prefix l

let f32imm f = VImm (Gpu.Value.bits_of_f32 f)

let open_of_ibin = function
  | Add -> Sass.Opcode.IADD
  | Sub -> Sass.Opcode.ISUB
  | Mul -> Sass.Opcode.IMUL
  | Div -> Sass.Opcode.IDIV Sass.Opcode.Signed
  | Rem -> Sass.Opcode.IMOD Sass.Opcode.Signed
  | Udiv -> Sass.Opcode.IDIV Sass.Opcode.Unsigned
  | Urem -> Sass.Opcode.IMOD Sass.Opcode.Unsigned
  | Min -> Sass.Opcode.IMNMX Sass.Opcode.Lt
  | Max -> Sass.Opcode.IMNMX Sass.Opcode.Gt
  | Shl -> Sass.Opcode.SHL
  | Shr -> Sass.Opcode.SHR Sass.Opcode.Unsigned
  | Ashr -> Sass.Opcode.SHR Sass.Opcode.Signed
  | And -> Sass.Opcode.LOP Sass.Opcode.L_and
  | Or -> Sass.Opcode.LOP Sass.Opcode.L_or
  | Xor -> Sass.Opcode.LOP Sass.Opcode.L_xor

(* Lower an expression to a value source. Boolean expressions must go
   through [lower_cond]. *)
let rec lower_exp env e : vsrc =
  match e with
  | Int n -> VImm (n land Gpu.Value.mask)
  | Float f -> f32imm f
  | Var v ->
    (match Hashtbl.find_opt env.vars v with
     | Some r -> VReg r
     | None -> raise (Lower_error (Printf.sprintf "unbound variable %s" v)))
  | Param i -> VParam (4 * i)
  | Special s ->
    let d = fresh_reg env in
    emit env (ins (Sass.Opcode.S2R s) ~dsts:[ d ]);
    VReg d
  | Shared_base name ->
    (match Hashtbl.find_opt env.shared_off name with
     | Some off -> VImm off
     | None ->
       raise (Lower_error (Printf.sprintf "unknown shared array %s" name)))
  | Ibin (op, a, b) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let d = fresh_reg env in
    emit env (ins (open_of_ibin op) ~dsts:[ d ] ~srcs:[ va; vb ]);
    VReg d
  | Fbin (Fdiv, a, b) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let rcp = fresh_reg env in
    emit env (ins (Sass.Opcode.MUFU Sass.Opcode.Rcp) ~dsts:[ rcp ] ~srcs:[ vb ]);
    let d = fresh_reg env in
    emit env (ins Sass.Opcode.FMUL ~dsts:[ d ] ~srcs:[ va; VReg rcp ]);
    VReg d
  | Fbin (op, a, b) ->
    let sass_op =
      match op with
      | Fadd -> Sass.Opcode.FADD
      | Fsub -> Sass.Opcode.FSUB
      | Fmul -> Sass.Opcode.FMUL
      | Fmin -> Sass.Opcode.FMNMX Sass.Opcode.Lt
      | Fmax -> Sass.Opcode.FMNMX Sass.Opcode.Gt
      | Fdiv -> assert false
    in
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let d = fresh_reg env in
    emit env (ins sass_op ~dsts:[ d ] ~srcs:[ va; vb ]);
    VReg d
  | Ffma (a, b, c) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let vc = lower_exp env c in
    let d = fresh_reg env in
    emit env (ins Sass.Opcode.FFMA ~dsts:[ d ] ~srcs:[ va; vb; vc ]);
    VReg d
  | Icmp _ | Ucmp _ | Fcmp _ | Not _ | Andb _ | Orb _ ->
    raise (Lower_error "boolean expression in value context")
  | Select (c, a, b) ->
    let p = lower_cond env c in
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let d = fresh_reg env in
    emit env (ins Sass.Opcode.SEL ~dsts:[ d ] ~srcs:[ va; vb; VPred p ]);
    VReg d
  | I2f a ->
    let va = lower_exp env a in
    let d = fresh_reg env in
    emit env (ins (Sass.Opcode.I2F Sass.Opcode.Signed) ~dsts:[ d ] ~srcs:[ va ]);
    VReg d
  | U2f a ->
    let va = lower_exp env a in
    let d = fresh_reg env in
    emit env
      (ins (Sass.Opcode.I2F Sass.Opcode.Unsigned) ~dsts:[ d ] ~srcs:[ va ]);
    VReg d
  | F2i a ->
    let va = lower_exp env a in
    let d = fresh_reg env in
    emit env (ins (Sass.Opcode.F2I Sass.Opcode.Signed) ~dsts:[ d ] ~srcs:[ va ]);
    VReg d
  | Funary (f, a) ->
    let va = lower_exp env a in
    let d = fresh_reg env in
    emit env (ins (Sass.Opcode.MUFU f) ~dsts:[ d ] ~srcs:[ va ]);
    VReg d
  | Popc a ->
    let va = lower_exp env a in
    let d = fresh_reg env in
    emit env (ins Sass.Opcode.POPC ~dsts:[ d ] ~srcs:[ va ]);
    VReg d
  | Brev a ->
    let va = lower_exp env a in
    let d = fresh_reg env in
    emit env (ins Sass.Opcode.BREV ~dsts:[ d ] ~srcs:[ va ]);
    VReg d
  | Ffs a ->
    (* __ffs: BREV; FLO; 32 - flo; 0 when input is 0 (flo = -1). *)
    let va = lower_exp env a in
    let rev = fresh_reg env in
    emit env (ins Sass.Opcode.BREV ~dsts:[ rev ] ~srcs:[ va ]);
    let fl = fresh_reg env in
    emit env (ins Sass.Opcode.FLO ~dsts:[ fl ] ~srcs:[ VReg rev ]);
    let p = fresh_pred env in
    emit env
      (ins (Sass.Opcode.ISETP (Sass.Opcode.Eq, Sass.Opcode.Signed))
         ~pdsts:[ p ]
         ~srcs:[ VReg fl; VImm Gpu.Value.mask ]);
    let d = fresh_reg env in
    emit env (ins Sass.Opcode.ISUB ~dsts:[ d ] ~srcs:[ VImm 32; VReg fl ]);
    emit env (ins Sass.Opcode.SEL ~dsts:[ d ] ~srcs:[ VImm 0; VReg d; VPred p ]);
    VReg d
  | Load (space, _ty, addr) ->
    let base, off = lower_addr env addr in
    let d = fresh_reg env in
    emit env
      (ins (Sass.Opcode.LD (space, Sass.Opcode.W32)) ~dsts:[ d ]
         ~srcs:[ base; off ]);
    VReg d
  | Load8 (space, addr) ->
    let base, off = lower_addr env addr in
    let d = fresh_reg env in
    emit env
      (ins (Sass.Opcode.LD (space, Sass.Opcode.W8)) ~dsts:[ d ]
         ~srcs:[ base; off ]);
    VReg d
  | Tex (_ty, idx) ->
    let vi = lower_exp env idx in
    let d = fresh_reg env in
    emit env (ins (Sass.Opcode.TLD Sass.Opcode.W32) ~dsts:[ d ] ~srcs:[ vi ]);
    VReg d
  | Ballot c ->
    let p = lower_cond env c in
    let d = fresh_reg env in
    emit env
      (ins (Sass.Opcode.VOTE Sass.Opcode.V_ballot) ~dsts:[ d ]
         ~srcs:[ VPred p ]);
    VReg d
  | Shfl (mode, v, lane) ->
    let vv = lower_exp env v in
    let vl = lower_exp env lane in
    let d = fresh_reg env in
    emit env (ins (Sass.Opcode.SHFL mode) ~dsts:[ d ] ~srcs:[ vv; vl ]);
    VReg d

(* Addressing peephole: Add(a, b) splits into base + offset operands. *)
and lower_addr env addr =
  match addr with
  | Ibin (Add, a, b) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    (va, vb)
  | _ ->
    let va = lower_exp env addr in
    (va, VImm 0)

(* Lower a boolean expression to a virtual predicate. *)
and lower_cond env c : int =
  match c with
  | Icmp (cmp, a, b) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let p = fresh_pred env in
    emit env
      (ins (Sass.Opcode.ISETP (cmp, Sass.Opcode.Signed)) ~pdsts:[ p ]
         ~srcs:[ va; vb ]);
    p
  | Ucmp (cmp, a, b) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let p = fresh_pred env in
    emit env
      (ins (Sass.Opcode.ISETP (cmp, Sass.Opcode.Unsigned)) ~pdsts:[ p ]
         ~srcs:[ va; vb ]);
    p
  | Fcmp (cmp, a, b) ->
    let va = lower_exp env a in
    let vb = lower_exp env b in
    let p = fresh_pred env in
    emit env (ins (Sass.Opcode.FSETP cmp) ~pdsts:[ p ] ~srcs:[ va; vb ]);
    p
  | Not a ->
    let pa = lower_cond env a in
    let p = fresh_pred env in
    emit env
      (ins (Sass.Opcode.PSETP Sass.Opcode.L_not) ~pdsts:[ p ]
         ~srcs:[ VPred pa ]);
    p
  | Andb (a, b) ->
    let pa = lower_cond env a in
    let pb = lower_cond env b in
    let p = fresh_pred env in
    emit env
      (ins (Sass.Opcode.PSETP Sass.Opcode.L_and) ~pdsts:[ p ]
         ~srcs:[ VPred pa; VPred pb ]);
    p
  | Orb (a, b) ->
    let pa = lower_cond env a in
    let pb = lower_cond env b in
    let p = fresh_pred env in
    emit env
      (ins (Sass.Opcode.PSETP Sass.Opcode.L_or) ~pdsts:[ p ]
         ~srcs:[ VPred pa; VPred pb ]);
    p
  | _ -> raise (Lower_error "value expression in boolean context")

let assign_var env v src =
  let d =
    match Hashtbl.find_opt env.vars v with
    | Some r -> r
    | None ->
      let r = fresh_reg env in
      Hashtbl.replace env.vars v r;
      r
  in
  emit env (ins Sass.Opcode.MOV ~dsts:[ d ] ~srcs:[ src ])

let rec lower_stmt env s =
  match s with
  | Let (v, _ty, e) ->
    let src = lower_exp env e in
    (* A fresh register per declaration (shadowing-safe). *)
    Hashtbl.remove env.vars v;
    assign_var env v src
  | Set (v, e) ->
    let src = lower_exp env e in
    (match Hashtbl.find_opt env.vars v with
     | Some d -> emit env (ins Sass.Opcode.MOV ~dsts:[ d ] ~srcs:[ src ])
     | None -> raise (Lower_error (Printf.sprintf "assignment to unbound %s" v)))
  | Store (space, addr, v) ->
    let base, off = lower_addr env addr in
    let vv = lower_exp env v in
    emit env
      (ins (Sass.Opcode.ST (space, Sass.Opcode.W32)) ~srcs:[ base; off; vv ])
  | Store8 (space, addr, v) ->
    let base, off = lower_addr env addr in
    let vv = lower_exp env v in
    emit env
      (ins (Sass.Opcode.ST (space, Sass.Opcode.W8)) ~srcs:[ base; off; vv ])
  | If (c, then_s, else_s) ->
    let p = lower_cond env c in
    let l_end = fresh_label env "endif" in
    (match else_s with
     | [] ->
       emit env
         (ins Sass.Opcode.BRA
            ~guard:{ g_pred = Some p; g_neg = true }
            ~target:l_end);
       List.iter (lower_stmt env) then_s;
       emit env (Label l_end)
     | _ ->
       let l_else = fresh_label env "else" in
       emit env
         (ins Sass.Opcode.BRA
            ~guard:{ g_pred = Some p; g_neg = true }
            ~target:l_else);
       List.iter (lower_stmt env) then_s;
       emit env (ins Sass.Opcode.BRA ~target:l_end);
       emit env (Label l_else);
       List.iter (lower_stmt env) else_s;
       emit env (Label l_end))
  | While (c, body) ->
    let l_head = fresh_label env "while" in
    let l_end = fresh_label env "endwhile" in
    emit env (Label l_head);
    let p = lower_cond env c in
    emit env
      (ins Sass.Opcode.BRA
         ~guard:{ g_pred = Some p; g_neg = true }
         ~target:l_end);
    List.iter (lower_stmt env) body;
    emit env (ins Sass.Opcode.BRA ~target:l_head);
    emit env (Label l_end)
  | For (v, lo, hi, body) ->
    lower_stmt env (Let (v, I32, lo));
    lower_stmt env
      (While
         ( Icmp (Sass.Opcode.Lt, Var v, hi),
           body @ [ Set (v, Ibin (Add, Var v, Int 1)) ] ))
  | Atomic (aop, space, addr, v) ->
    let base, off = lower_addr env addr in
    let vv = lower_exp env v in
    emit env
      (ins (Sass.Opcode.RED (space, atom_to_sass aop, Sass.Opcode.W32))
         ~srcs:[ base; off; vv ])
  | Atomic_ret (dst, aop, space, addr, v) ->
    let base, off = lower_addr env addr in
    let vv = lower_exp env v in
    let d =
      match Hashtbl.find_opt env.vars dst with
      | Some r -> r
      | None -> raise (Lower_error (Printf.sprintf "unbound %s" dst))
    in
    emit env
      (ins (Sass.Opcode.ATOM (space, atom_to_sass aop, Sass.Opcode.W32))
         ~dsts:[ d ]
         ~srcs:[ base; off; vv ])
  | Atomic_cas (dst, space, addr, cmp, swap) ->
    let base, off = lower_addr env addr in
    let vc = lower_exp env cmp in
    let vs = lower_exp env swap in
    let d =
      match Hashtbl.find_opt env.vars dst with
      | Some r -> r
      | None -> raise (Lower_error (Printf.sprintf "unbound %s" dst))
    in
    emit env
      (ins (Sass.Opcode.ATOM (space, Sass.Opcode.A_cas, Sass.Opcode.W32))
         ~dsts:[ d ]
         ~srcs:[ base; off; vc; vs ])
  | Sync -> emit env (ins Sass.Opcode.BAR)
  | Exit_if c ->
    let p = lower_cond env c in
    emit env
      (ins Sass.Opcode.EXIT ~guard:{ g_pred = Some p; g_neg = false })
  | Nop_mark id -> emit env (ins Sass.Opcode.NOP ~srcs:[ VImm id ])

let lower (k : kernel) =
  let env =
    { code = [];
      vars = Hashtbl.create 32;
      shared_off = Hashtbl.create 8;
      next_reg = 0;
      next_pred = 0;
      next_label = 0 }
  in
  let shared_bytes =
    List.fold_left
      (fun off (name, bytes) ->
         Hashtbl.replace env.shared_off name off;
         (* 8-byte align each array. *)
         off + ((bytes + 7) land lnot 7))
      0 k.k_shared
  in
  List.iter (lower_stmt env) k.k_body;
  emit env (ins Sass.Opcode.EXIT);
  { items = Array.of_list (List.rev env.code);
    shared_bytes;
    nparams = List.length k.k_params }
