type ty =
  | I32
  | F32
  | Bool

type ibin =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Udiv
  | Urem
  | Min
  | Max
  | Shl
  | Shr
  | Ashr
  | And
  | Or
  | Xor

type fbin =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmin
  | Fmax

type exp =
  | Int of int
  | Float of float
  | Var of string
  | Param of int
  | Special of Sass.Opcode.special
  | Shared_base of string
  | Ibin of ibin * exp * exp
  | Fbin of fbin * exp * exp
  | Ffma of exp * exp * exp
  | Icmp of Sass.Opcode.cmp * exp * exp
  | Ucmp of Sass.Opcode.cmp * exp * exp
  | Fcmp of Sass.Opcode.cmp * exp * exp
  | Not of exp
  | Andb of exp * exp
  | Orb of exp * exp
  | Select of exp * exp * exp
  | I2f of exp
  | F2i of exp
  | U2f of exp
  | Funary of Sass.Opcode.mufu * exp
  | Popc of exp
  | Brev of exp
  | Ffs of exp
  | Load of Sass.Opcode.space * ty * exp
  | Load8 of Sass.Opcode.space * exp
  | Tex of ty * exp
  | Ballot of exp
  | Shfl of Sass.Opcode.shfl * exp * exp

type atom =
  | Aadd
  | Amin
  | Amax
  | Aexch
  | Aand
  | Aor
  | Axor

type stmt =
  | Let of string * ty * exp
  | Set of string * exp
  | Store of Sass.Opcode.space * exp * exp
  | Store8 of Sass.Opcode.space * exp * exp
  | If of exp * stmt list * stmt list
  | While of exp * stmt list
  | For of string * exp * exp * stmt list
  | Atomic of atom * Sass.Opcode.space * exp * exp
  | Atomic_ret of string * atom * Sass.Opcode.space * exp * exp
  | Atomic_cas of string * Sass.Opcode.space * exp * exp * exp
  | Sync
  | Exit_if of exp
  | Nop_mark of int

type kernel = {
  k_name : string;
  k_params : (string * ty) list;
  k_shared : (string * int) list;
  k_body : stmt list;
}

let atom_to_sass = function
  | Aadd -> Sass.Opcode.A_add
  | Amin -> Sass.Opcode.A_min
  | Amax -> Sass.Opcode.A_max
  | Aexch -> Sass.Opcode.A_exch
  | Aand -> Sass.Opcode.A_and
  | Aor -> Sass.Opcode.A_or
  | Axor -> Sass.Opcode.A_xor

let exp_equal (a : exp) (b : exp) = a = b

let pp_ty ppf = function
  | I32 -> Format.pp_print_string ppf "i32"
  | F32 -> Format.pp_print_string ppf "f32"
  | Bool -> Format.pp_print_string ppf "bool"
