(** Lowering from the kernel AST to the virtual-register IR.

    Assumes the kernel already passed {!Typecheck.check}. Booleans
    lower to virtual predicates; [For] desugars to [While] with a
    C-style re-evaluated bound; a trailing [EXIT] is appended. *)

exception Lower_error of string

type result = {
  items : Vir.item array;
  shared_bytes : int;  (** total static shared memory *)
  nparams : int;
}

val lower : Ast.kernel -> result
