(** Final SASS emission: physical-register VIR items to a
    {!Sass.Program.kernel}, with label resolution, the stack-frame
    prologue, and reconvergence-point annotation. *)

exception Emit_error of string

val emit :
  name:string ->
  nparams:int ->
  shared_bytes:int ->
  frame_bytes:int ->
  Vir.item array ->
  Sass.Program.kernel
