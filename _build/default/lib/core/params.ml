let read ctx lane off =
  Hctx.charge ctx ~ops:1 ~cycles:2;
  Hctx.stack_read ctx ~lane ~off

let read_leader ctx off = read ctx (Hctx.leader ctx) off

module Before = struct
  let id ctx = read_leader ctx Abi.off_id

  let will_execute ctx ~lane = read ctx lane Abi.off_will_execute <> 0

  let fn_addr ctx = read_leader ctx Abi.off_fn_addr

  let ins_offset ctx = read_leader ctx Abi.off_ins_offset

  let ins_addr ctx = fn_addr ctx + ins_offset ctx

  let ins_encoding ctx = read_leader ctx Abi.off_ins_encoding

  let opcode ctx = ctx.Hctx.site.Select.s_instr.Sass.Instr.op

  let is_mem ctx = Sass.Opcode.is_mem (opcode ctx)

  let is_mem_read ctx = Sass.Opcode.is_mem_read (opcode ctx)

  let is_mem_write ctx = Sass.Opcode.is_mem_write (opcode ctx)

  let is_spill_or_fill ctx = Sass.Opcode.is_spill_or_fill (opcode ctx)

  let is_control_xfer ctx = Sass.Opcode.is_control (opcode ctx)

  let is_cond_control_xfer ctx =
    Sass.Instr.is_cond_branch ctx.Hctx.site.Select.s_instr

  let is_sync ctx = Sass.Opcode.is_sync (opcode ctx)

  let is_numeric ctx = Sass.Opcode.is_numeric (opcode ctx)

  let is_texture ctx = Sass.Opcode.is_texture (opcode ctx)

  let is_atomic ctx = Sass.Opcode.is_atomic (opcode ctx)
end

module Memory = struct
  let address ctx ~lane = read ctx lane (Abi.aux_base + Abi.mem_off_address_lo)

  let properties ctx = read_leader ctx (Abi.aux_base + Abi.mem_off_properties)

  let space ctx =
    match
      Abi.space_of_tag (properties ctx lsr Abi.prop_space_shift land 0xF)
    with
    | Some s -> s
    | None -> Sass.Opcode.Global

  let is_global ctx = space ctx = Sass.Opcode.Global

  let is_load ctx = properties ctx land Abi.prop_is_load <> 0

  let is_store ctx = properties ctx land Abi.prop_is_store <> 0

  let is_atomic ctx = properties ctx land Abi.prop_is_atomic <> 0

  let width ctx = read_leader ctx (Abi.aux_base + Abi.mem_off_width)
end

module Cond_branch = struct
  let direction ctx ~lane =
    read ctx lane (Abi.aux_base + Abi.branch_off_direction) <> 0

  let target ctx = read_leader ctx (Abi.aux_base + Abi.branch_off_target)
end

module Registers = struct
  let num_gpr_dsts ctx = read_leader ctx (Abi.aux_base + Abi.reg_off_num_dsts)

  let dst_reg ctx k =
    let reg_off, _ = Abi.reg_off_entry k in
    Sass.Reg.of_index (read_leader ctx (Abi.aux_base + reg_off))

  let value ctx ~lane k =
    let _, val_off = Abi.reg_off_entry k in
    read ctx lane (Abi.aux_base + val_off)

  let set_value ctx ~lane k v =
    Hctx.charge ctx ~ops:2 ~cycles:4;
    let reg = dst_reg ctx k in
    let _, val_off = Abi.reg_off_entry k in
    Hctx.stack_write ctx ~lane ~off:(Abi.aux_base + val_off) v;
    (* Update the live register and, when the register is caller-saved
       and therefore restored after the call, its spill slot. *)
    Gpu.State.reg_set ctx.Hctx.warp ~lane reg v;
    let idx = Sass.Reg.index reg in
    if idx < Abi.gpr_spill_slots then
      Hctx.stack_write ctx ~lane ~off:(Abi.off_gpr_spill + (4 * idx)) v

  let num_pred_dsts ctx = read_leader ctx (Abi.aux_base + Abi.reg_off_num_pdsts)

  let pred_dst ctx =
    if num_pred_dsts ctx = 0 then
      invalid_arg "Registers.pred_dst: no predicate destination";
    Sass.Pred.of_index (read_leader ctx (Abi.aux_base + Abi.reg_off_pdst 0))

  let pred_value ctx ~lane =
    let p = Sass.Pred.index (pred_dst ctx) in
    let spill = read ctx lane Abi.off_pr_spill in
    spill land (1 lsl p) <> 0

  let set_pred_value ctx ~lane v =
    Hctx.charge ctx ~ops:2 ~cycles:4;
    let pred = pred_dst ctx in
    let p = Sass.Pred.index pred in
    (* Flip both the live predicate and the PR spill word so the R2P
       restore keeps the change. *)
    Gpu.State.pred_set ctx.Hctx.warp ~lane pred v;
    let spill = Hctx.stack_read ctx ~lane ~off:Abi.off_pr_spill in
    let spill' =
      if v then spill lor (1 lsl p) else spill land lnot (1 lsl p)
    in
    Hctx.stack_write ctx ~lane ~off:Abi.off_pr_spill spill'
end
