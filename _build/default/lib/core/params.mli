(** Typed views of the params objects the injected call materialized
    on the stack — the [SASSIBeforeParams] / [SASSIMemoryParams] /
    [SASSICondBranchParams] / [SASSIRegisterParams] C++ classes of the
    paper (Figure 2b/2c), as OCaml accessors over the simulated
    thread stack.

    Static queries (opcode classes, widths) come from the site table;
    dynamic per-lane values (instrWillExecute, addresses, directions,
    register values) read the object fields the injected SASS wrote. *)

module Before : sig
  val id : Hctx.t -> int

  val will_execute : Hctx.t -> lane:int -> bool
  (** The guard predicate held for this lane (per-lane field). *)

  val fn_addr : Hctx.t -> int

  val ins_offset : Hctx.t -> int

  val ins_addr : Hctx.t -> int
  (** [fn_addr + ins_offset]. *)

  val ins_encoding : Hctx.t -> int

  val opcode : Hctx.t -> Sass.Opcode.t

  val is_mem : Hctx.t -> bool

  val is_mem_read : Hctx.t -> bool

  val is_mem_write : Hctx.t -> bool

  val is_spill_or_fill : Hctx.t -> bool

  val is_control_xfer : Hctx.t -> bool

  val is_cond_control_xfer : Hctx.t -> bool

  val is_sync : Hctx.t -> bool

  val is_numeric : Hctx.t -> bool

  val is_texture : Hctx.t -> bool

  val is_atomic : Hctx.t -> bool
end

module Memory : sig
  val address : Hctx.t -> lane:int -> int
  (** The lane's effective address (the low word of the generic
      pointer the injected code computed). *)

  val space : Hctx.t -> Sass.Opcode.space

  val is_global : Hctx.t -> bool
  (** The [__isGlobal] filter from the paper's Figure 6 handler. *)

  val is_load : Hctx.t -> bool

  val is_store : Hctx.t -> bool

  val is_atomic : Hctx.t -> bool

  val width : Hctx.t -> int
  (** Access width in bytes. *)
end

module Cond_branch : sig
  val direction : Hctx.t -> lane:int -> bool
  (** True if this lane will take the branch (Figure 4's
      [GetDirection]). *)

  val target : Hctx.t -> int
  (** Branch target address (byte units). *)
end

module Registers : sig
  val num_gpr_dsts : Hctx.t -> int

  val dst_reg : Hctx.t -> int -> Sass.Reg.t

  val value : Hctx.t -> lane:int -> int -> int
  (** Value the instruction wrote to destination [k] in this lane
      (read from the params object, where the injected code stored
      the post-execution register). *)

  val set_value : Hctx.t -> lane:int -> int -> int -> unit
  (** Overwrite destination [k]'s value in this lane: updates the
      live register file and the spill slot so the rewrite survives
      the call's register restore. This is the state-modification
      capability the error-injection study relies on (Section 8). *)

  val num_pred_dsts : Hctx.t -> int

  val pred_dst : Hctx.t -> Sass.Pred.t
  (** First predicate destination.
      @raise Invalid_argument if there is none. *)

  val pred_value : Hctx.t -> lane:int -> bool
  (** Post-execution value of the predicate destination, read from
      the PR spill word. *)

  val set_pred_value : Hctx.t -> lane:int -> bool -> unit
end
