(** The SASSI runtime: owns the cross-kernel site table, installs the
    instrumentation pass as the device's kernel transform (the
    "SASSI-enabled ptxas" swap from Section 4), and dispatches
    [HCALL] traps to the registered handlers. *)

type t

val create : unit -> t

val attach : t -> Gpu.Device.t -> (Select.spec * Handler.t) list -> unit
(** Installs the transform and the trap hook. Kernels launched after
    this are instrumented (and cached per transform generation). *)

val detach : Gpu.Device.t -> unit
(** Removes instrumentation; subsequent launches run the original
    kernels. *)

val site : t -> int -> Select.site
(** Look up a site by id. *)

val sites_for_kernel : t -> string -> Select.site list

val with_instrumentation :
  Gpu.Device.t -> (Select.spec * Handler.t) list -> (t -> 'a) -> 'a
(** [with_instrumentation device pairs f] attaches a fresh runtime,
    runs [f], and detaches (even on exceptions). *)
