lib/core/select.mli: Format Sass
