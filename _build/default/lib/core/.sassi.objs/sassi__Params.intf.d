lib/core/params.mli: Hctx Sass
