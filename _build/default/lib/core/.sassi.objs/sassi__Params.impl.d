lib/core/params.ml: Abi Gpu Hctx Sass Select
