lib/core/inject.mli: Sass Select
