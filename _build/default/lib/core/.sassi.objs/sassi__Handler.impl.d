lib/core/handler.ml: Abi Hctx Printf
