lib/core/hctx.ml: Gpu Sass Select
