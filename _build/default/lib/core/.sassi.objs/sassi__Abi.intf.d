lib/core/abi.mli: Sass
