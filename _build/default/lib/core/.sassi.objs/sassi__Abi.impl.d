lib/core/abi.ml: Sass
