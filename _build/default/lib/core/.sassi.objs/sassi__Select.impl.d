lib/core/select.ml: Format List Sass String
