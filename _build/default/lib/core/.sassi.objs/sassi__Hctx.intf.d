lib/core/hctx.mli: Gpu Select
