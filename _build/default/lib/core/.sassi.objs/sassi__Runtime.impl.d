lib/core/runtime.ml: Array Fun Gpu Handler Hashtbl Hctx Inject Int List Printf Select
