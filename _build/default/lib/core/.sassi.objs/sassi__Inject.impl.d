lib/core/inject.ml: Abi Array Cfg Gpu Hashtbl Instr Int List Liveness Opcode Option Pred Program Reg Sass Select
