lib/core/runtime.mli: Gpu Handler Select
