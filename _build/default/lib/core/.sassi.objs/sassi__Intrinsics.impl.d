lib/core/intrinsics.ml: Gpu Hctx List Sass
