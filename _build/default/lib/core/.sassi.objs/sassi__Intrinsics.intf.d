lib/core/intrinsics.mli: Hctx
