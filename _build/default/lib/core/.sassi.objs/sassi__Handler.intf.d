lib/core/handler.mli: Hctx
