(** Stack-frame layout of the injected ABI-compliant call, mirroring
    the paper's Figure 2 byte-for-byte where it is specified.

    The injected sequence allocates a [frame_bytes] frame below the
    thread's stack pointer (R1). The [SASSIBeforeParams]/
    [SASSIAfterParams] object occupies [\[0x00, 0x60)]; the auxiliary
    object (memory / branch / register params) lives at [aux_base].

    Handler parameter passing follows the compute ABI: a generic
    64-bit pointer to the base object in R4:R5 and to the auxiliary
    object in R6:R7, where the high word is the memory-space tag that
    makes the pointer "generic". *)

val frame_bytes : int
(** 0x80, as in Figure 2's [IADD R1, R1, -0x80]. *)

val local_space_tag : int
(** High word of a generic pointer into local memory. *)

(** Field offsets of the base params object (SASSIBeforeParams). *)

val off_id : int

val off_will_execute : int

val off_fn_addr : int

val off_ins_offset : int

val off_pr_spill : int

val off_cc_spill : int

val off_gpr_spill : int
(** Start of the 16-slot GPR spill array; slot [k] holds [Rk]. *)

val gpr_spill_slots : int

val off_ins_encoding : int

val aux_base : int
(** 0x60: start of the auxiliary params object. *)

(** Auxiliary object layouts (offsets relative to [aux_base]). *)

val mem_off_address_lo : int

val mem_off_address_hi : int

val mem_off_properties : int

val mem_off_width : int

val branch_off_direction : int

val branch_off_target : int

val reg_off_num_dsts : int

val reg_off_entry : int -> int * int
(** [(reg_num_offset, value_offset)] of destination slot [k]. *)

val reg_max_dsts : int

val reg_off_num_pdsts : int

val reg_off_pdst : int -> int

(** Memory-access property bits stored in [mem_off_properties]. *)

val prop_is_load : int

val prop_is_store : int

val prop_is_atomic : int

val prop_space_shift : int
(** The space tag is stored in bits [prop_space_shift..]. *)

val space_tag : Sass.Opcode.space -> int

val space_of_tag : int -> Sass.Opcode.space option

(** Handler parameter registers (compute ABI). *)

val param_regs : Sass.Reg.t list
(** [R4; R5; R6; R7]. *)

val max_handler_regs : int
(** 16: the [-maxrregcount] cap imposed on handlers (Section 3.2). *)

val spillable_regs : int
(** Registers [R0..R15] are caller-saved around a handler call; live
    ones are spilled to the GPR spill array. *)
