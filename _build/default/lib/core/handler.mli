(** Instrumentation handlers: the user-provided functions the injected
    calls transfer to. A handler body uses {!Params} to inspect the
    instrumented instruction and {!Intrinsics} for warp-wide and
    memory operations, exactly as the paper's CUDA handlers do.

    Handlers declare a register footprint; footprints above 16 are
    rejected, mirroring the [-maxrregcount=16] cap SASSI imposes so
    that worst-case spill cost stays bounded (Section 3.2). *)

type t = private {
  name : string;
  regs : int;
  fn : Hctx.t -> unit;
}

val make : ?regs:int -> name:string -> (Hctx.t -> unit) -> t
(** [regs] defaults to 16.
    @raise Invalid_argument if [regs > Abi.max_handler_regs]. *)

val noop : t
(** Empty handler ("stub"), used to measure the bare ABI/spill cost of
    instrumentation (the paper's Section 9.1 experiment). *)
