type point =
  | Before
  | After

type instr_class =
  | All
  | Memory_ops
  | Control_xfer
  | Cond_control
  | Reg_writes
  | Reg_reads
  | Pred_writes
  | Basic_block
  | Kernel_entry
  | Kernel_exit

type what =
  | Mem_info
  | Branch_info
  | Reg_info

type spec = {
  point : point;
  classes : instr_class list;
  what : what list;
}

let before classes what = { point = Before; classes; what }

let after classes what = { point = After; classes; what }

let class_matches cls (i : Sass.Instr.t) =
  match cls with
  | All -> true
  | Memory_ops -> Sass.Opcode.is_mem i.Sass.Instr.op
  | Control_xfer -> Sass.Opcode.is_control i.Sass.Instr.op
  | Cond_control -> Sass.Instr.is_cond_branch i
  | Reg_writes -> Sass.Instr.writes_gpr i
  | Reg_reads -> Sass.Instr.reads_gpr i
  | Pred_writes -> Sass.Instr.writes_pred i
  | Basic_block | Kernel_entry | Kernel_exit ->
    (* Positional classes are resolved by the injector, which knows
       the CFG; they never match through the instruction alone. *)
    false

let structural_matches cls ~pc ~is_leader (i : Sass.Instr.t) =
  match cls with
  | Basic_block -> is_leader
  | Kernel_entry -> pc = 0
  | Kernel_exit ->
    (match i.Sass.Instr.op with
     | Sass.Opcode.EXIT | Sass.Opcode.RET -> true
     | _ -> false)
  | All | Memory_ops | Control_xfer | Cond_control | Reg_writes
  | Reg_reads | Pred_writes -> class_matches cls i

let matches spec (i : Sass.Instr.t) =
  let is_hcall =
    match i.Sass.Instr.op with
    | Sass.Opcode.HCALL _ -> true
    | _ -> false
  in
  (not is_hcall)
  && (match spec.point with
      | Before -> true
      | After -> not (Sass.Opcode.is_control i.Sass.Instr.op))
  && List.exists (fun c -> class_matches c i) spec.classes

let matches_at spec ~pc ~is_leader (i : Sass.Instr.t) =
  let is_hcall =
    match i.Sass.Instr.op with
    | Sass.Opcode.HCALL _ -> true
    | _ -> false
  in
  let point_ok =
    match spec.point with
    | Before -> true
    | After -> not (Sass.Opcode.is_control i.Sass.Instr.op)
  in
  let structural_needs_before c =
    match c with
    | Basic_block | Kernel_entry | Kernel_exit -> spec.point = Before
    | All | Memory_ops | Control_xfer | Cond_control | Reg_writes
    | Reg_reads | Pred_writes -> true
  in
  (not is_hcall) && point_ok
  && List.exists
       (fun c ->
          structural_needs_before c
          && structural_matches c ~pc ~is_leader i)
       spec.classes

type site = {
  s_id : int;
  s_kernel : string;
  s_old_pc : int;
  s_new_pc : int;
  s_instr : Sass.Instr.t;
  s_point : point;
  s_what : what list;
  s_handler : int;
}

let string_of_class = function
  | All -> "all"
  | Memory_ops -> "memory"
  | Control_xfer -> "control"
  | Cond_control -> "cond-control"
  | Reg_writes -> "reg-writes"
  | Reg_reads -> "reg-reads"
  | Pred_writes -> "pred-writes"
  | Basic_block -> "basic-block"
  | Kernel_entry -> "kernel-entry"
  | Kernel_exit -> "kernel-exit"

let string_of_what = function
  | Mem_info -> "mem-info"
  | Branch_info -> "branch-info"
  | Reg_info -> "reg-info"

let pp_spec ppf s =
  Format.fprintf ppf "%s:%s:%s"
    (match s.point with Before -> "before" | After -> "after")
    (String.concat "," (List.map string_of_class s.classes))
    (String.concat "," (List.map string_of_what s.what))
