(** Handler execution context: what an instrumentation handler sees
    when its injected call fires. The handler body is host-resident
    (OCaml) but every device-API operation it performs is charged to
    the simulated machine through {!charge}, so instrumentation
    overhead is emergent rather than assumed. *)

type t = {
  device : Gpu.State.device;
  launch : Gpu.State.launch;
  sm : Gpu.State.sm;
  warp : Gpu.State.warp;
  site : Select.site;
  mask : int;  (** active mask at the call *)
}

val active_lanes : t -> int list

val lane_active : t -> int -> bool

val num_active : t -> int

val leader : t -> int
(** First active lane (the [__ffs(__ballot(1)) - 1] idiom). *)

val lane_tid : t -> lane:int -> int
(** Linear thread index within the block. *)

val lane_global_tid : t -> lane:int -> int

val charge : t -> ops:int -> cycles:int -> unit
(** Account handler work: [ops] device-API operations and [cycles]
    of added warp latency. *)

val stack_read : t -> lane:int -> off:int -> int
(** Read a 32-bit word of the injected call's stack frame (the params
    objects), at byte offset [off] from the lane's stack pointer. *)

val stack_write : t -> lane:int -> off:int -> int -> unit
