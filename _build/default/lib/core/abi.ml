let frame_bytes = 0x80

let local_space_tag = 0x5

let off_id = 0x00

let off_will_execute = 0x04

let off_fn_addr = 0x08

let off_ins_offset = 0x0c

let off_pr_spill = 0x10

let off_cc_spill = 0x14

let off_gpr_spill = 0x18

let gpr_spill_slots = 16

let off_ins_encoding = 0x58

let aux_base = 0x60

let mem_off_address_lo = 0x00

let mem_off_address_hi = 0x04

let mem_off_properties = 0x08

let mem_off_width = 0x0c

let branch_off_direction = 0x00

let branch_off_target = 0x04

let reg_off_num_dsts = 0x00

let reg_max_dsts = 2

let reg_off_entry k = (0x04 + (8 * k), 0x08 + (8 * k))

let reg_off_num_pdsts = 0x14

let reg_off_pdst _k = 0x18

let prop_is_load = 0x1

let prop_is_store = 0x2

let prop_is_atomic = 0x4

let prop_space_shift = 4

let space_tag = function
  | Sass.Opcode.Global -> 1
  | Sass.Opcode.Shared -> 2
  | Sass.Opcode.Local -> 3
  | Sass.Opcode.Param -> 4
  | Sass.Opcode.Tex -> 5

let space_of_tag = function
  | 1 -> Some Sass.Opcode.Global
  | 2 -> Some Sass.Opcode.Shared
  | 3 -> Some Sass.Opcode.Local
  | 4 -> Some Sass.Opcode.Param
  | 5 -> Some Sass.Opcode.Tex
  | _ -> None

let param_regs = [ Sass.Reg.r 4; Sass.Reg.r 5; Sass.Reg.r 6; Sass.Reg.r 7 ]

let max_handler_regs = 16

let spillable_regs = 16
