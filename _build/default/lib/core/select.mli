(** Instrumentation selection: the "where" and "what" of SASSI
    (paper, Section 3.1-3.2).

    - {e where}: before or after instructions, filtered by instruction
      class (all instructions, memory ops, control transfers,
      conditional branches, register reads/writes, ...). "After"
      instrumentation of control transfers is rejected, as in SASSI.
    - {e what}: which parameter objects the injected call materializes
      on the stack and passes to the handler, in addition to the
      always-present [SASSIBeforeParams]/[SASSIAfterParams] analogue. *)

type point =
  | Before
  | After

type instr_class =
  | All
  | Memory_ops
  | Control_xfer
  | Cond_control
  | Reg_writes
  | Reg_reads
  | Pred_writes
  | Basic_block  (** first instruction of every basic block *)
  | Kernel_entry  (** the kernel's first instruction *)
  | Kernel_exit  (** every [EXIT]/[RET] *)

type what =
  | Mem_info  (** effective address, width, access properties *)
  | Branch_info  (** per-lane direction and target of a cond branch *)
  | Reg_info  (** destination registers and their (new) values *)

type spec = {
  point : point;
  classes : instr_class list;  (** union; instruction matches any *)
  what : what list;
}

val before : instr_class list -> what list -> spec

val after : instr_class list -> what list -> spec

val class_matches : instr_class -> Sass.Instr.t -> bool

val matches : spec -> Sass.Instr.t -> bool
(** Class match AND point legality (no [After] on control transfers,
    no instrumentation of [HCALL] itself). Structural classes
    ([Basic_block], [Kernel_entry], [Kernel_exit]) never match here —
    they need CFG position and are resolved through {!matches_at}. *)

val matches_at : spec -> pc:int -> is_leader:bool -> Sass.Instr.t -> bool
(** Full matching as the injector performs it, with the instruction's
    position: [is_leader] marks basic-block headers. Structural
    classes are [Before]-only. *)

(** {1 Sites}

    One instrumentation site = one injected handler call. The site
    table is built by the injector and consulted by the runtime to
    reconstruct static information for params objects. *)

type site = {
  s_id : int;
  s_kernel : string;
  s_old_pc : int;  (** PC in the uninstrumented kernel *)
  s_new_pc : int;  (** PC of the original instruction after injection *)
  s_instr : Sass.Instr.t;  (** the instrumented (original) instruction *)
  s_point : point;
  s_what : what list;
  s_handler : int;  (** index into the runtime's handler table *)
}

val pp_spec : Format.formatter -> spec -> unit
