(** The SASSI instrumentation pass: rewrites a compiled kernel,
    inserting an ABI-compliant call to an instrumentation handler at
    every site matched by the given specs (paper, Figure 2).

    The pass runs after register allocation (it is installed as the
    device's kernel transform, playing the "last pass of ptxas" role)
    and never renumbers or reorders the original instructions; it only
    inserts the call sequences and remaps branch targets and
    reconvergence points.

    Each injected sequence:
    + allocates a 0x80-byte stack frame ([IADD R1, R1, -0x80]);
    + spills the live caller-saved registers (R0..R15) into the
      frame's GPR spill array, and the predicate file via [P2R]/[STL];
    + materializes the auxiliary params object (memory address and
      properties, branch direction, or register destinations/values);
    + materializes the base params object (site id, instrWillExecute,
      fnAddr, insOffset, insEncoding);
    + passes generic 64-bit pointers to both objects in R4:R5 and
      R6:R7 per the compute ABI, and calls the handler ([HCALL]);
    + restores predicates and spilled registers and pops the frame. *)

type result = {
  kernel : Sass.Program.kernel;
  sites : Select.site list;  (** in increasing [s_id] order *)
}

val instrument :
  next_id:int ref ->
  specs:(Select.spec * int) list ->
  Sass.Program.kernel ->
  result
(** [instrument ~next_id ~specs kernel] injects calls for every
    (spec, handler index) pair. [next_id] is the shared site-id
    counter, incremented per site so that ids are unique across all
    kernels instrumented by one runtime. Every matching spec fires, in
    list order, so multiple handlers can observe the same site (e.g. a
    basic-block counter plus a kernel-entry counter at PC 0). *)

val sequence_length : Select.spec -> Sass.Instr.t -> live:int -> int
(** Number of instructions the injected sequence would contain at a
    site with [live] spilled registers; exposed for overhead tests. *)
