(** The warp-wide and memory device API available to handler bodies:
    the CUDA intrinsics the paper's handlers are built from
    ([__ballot], [__popc], [__ffs], [__shfl], [__all], [atomicAdd],
    [atomicAnd], ...). Every call charges simulated cost through the
    handler context, and handler memory traffic flows through the real
    memory system (caches, transaction counters). *)

val ballot : Hctx.t -> (int -> bool) -> int
(** [ballot ctx f] evaluates [f lane] for every active lane and
    returns the mask (CUDA [__ballot]). *)

val all : Hctx.t -> (int -> bool) -> bool

val any : Hctx.t -> (int -> bool) -> bool

val popc : Hctx.t -> int -> int

val ffs : Hctx.t -> int -> int

val shfl : Hctx.t -> (int -> int) -> src_lane:int -> int
(** Broadcast the value of [src_lane] (CUDA [__shfl]); if the source
    lane is inactive the leader's value is returned. *)

(** {1 Global-memory operations}

    Handlers keep their counters in device global memory; CUPTI-style
    callbacks copy them to the host. Single-lane variants model an
    elected leader performing the access; per-lane variants model all
    active threads issuing it (e.g. Figure 3's per-thread
    [atomicAdd]). *)

val read_u32 : Hctx.t -> int -> int

val write_u32 : Hctx.t -> int -> int -> unit

val read_u64 : Hctx.t -> int -> int

val write_u64 : Hctx.t -> int -> int -> unit

val atomic_add_u64 : Hctx.t -> int -> int -> unit
(** Leader-style single 64-bit [atomicAdd]. *)

val atomic_add_u32 : Hctx.t -> int -> int -> int
(** Returns the old value. *)

val atomic_and_u32 : Hctx.t -> int -> int -> unit

val atomic_or_u32 : Hctx.t -> int -> int -> unit

val atomic_cas_u32 : Hctx.t -> int -> compare:int -> swap:int -> int
(** Returns the old value. *)

val per_lane_atomic_add_u64 : Hctx.t -> (int -> int * int) -> unit
(** [per_lane_atomic_add_u64 ctx f]: every active lane [l] performs
    [atomicAdd(addr, v)] where [(addr, v) = f l]. Charged with the
    serialization cost of same-address atomics. *)

val per_lane_atomic_and_u32 : Hctx.t -> (int -> int * int) -> unit

val per_lane_atomic_or_u32 : Hctx.t -> (int -> int * int) -> unit
