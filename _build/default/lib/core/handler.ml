type t = {
  name : string;
  regs : int;
  fn : Hctx.t -> unit;
}

let make ?(regs = Abi.max_handler_regs) ~name fn =
  if regs > Abi.max_handler_regs then
    invalid_arg
      (Printf.sprintf
         "Handler.make %s: %d registers exceed the %d-register cap \
          (compile handlers with -maxrregcount=%d)"
         name regs Abi.max_handler_regs Abi.max_handler_regs);
  { name; regs; fn }

let noop = make ~name:"noop" ~regs:0 (fun _ -> ())
