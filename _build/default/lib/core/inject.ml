open Sass

type result = {
  kernel : Sass.Program.kernel;
  sites : Select.site list;
}

let sreg r = Instr.SReg r

let imm i = Instr.SImm (i land Gpu.Value.mask)

let r1 = Reg.sp

let stl off src =
  Instr.make (Opcode.ST (Opcode.Local, Opcode.W32))
    ~srcs:[ sreg r1; imm off; src ]

let ldl dst off =
  Instr.make (Opcode.LD (Opcode.Local, Opcode.W32)) ~dsts:[ dst ]
    ~srcs:[ sreg r1; imm off ]

let iadd ?guard dst a b = Instr.make Opcode.IADD ?guard ~dsts:[ dst ] ~srcs:[ a; b ]

let mov32i dst v = Instr.make Opcode.MOV ~dsts:[ dst ] ~srcs:[ imm v ]

(* Store 0/1 depending on the original instruction's guard into [dst]
   then to stack offset [off] — the instrWillExecute / direction idiom
   of Figure 2 (the @P0 IADD / @!P0 IADD pair). *)
let guarded_flag (guard : Pred.guard) dst off =
  if Pred.is_always guard then [ iadd dst (sreg Reg.RZ) (imm 1); stl off (sreg dst) ]
  else
    let inverse = { guard with Pred.negated = not guard.Pred.negated } in
    [ iadd ~guard dst (sreg Reg.RZ) (imm 1);
      iadd ~guard:inverse dst (sreg Reg.RZ) (imm 0);
      stl off (sreg dst) ]

let r3 = Reg.r 3

let r4 = Reg.r 4

let r5 = Reg.r 5

let r6 = Reg.r 6

let r7 = Reg.r 7

let fn_addr_of kernel_name = (Hashtbl.hash kernel_name land 0xFFFF) lsl 12

(* Properties word for the memory params object. *)
let mem_properties op =
  let open Opcode in
  (if is_mem_read op then Abi.prop_is_load else 0)
  lor (if is_mem_write op then Abi.prop_is_store else 0)
  lor (if is_atomic op then Abi.prop_is_atomic else 0)
  lor
  (match mem_space op with
   | Some s -> Abi.space_tag s lsl Abi.prop_space_shift
   | None -> 0)

let aux_fields what (orig : Instr.t) =
  match what with
  | Select.Mem_info ->
    let space =
      match Opcode.mem_space orig.Instr.op with
      | Some s -> s
      | None -> Opcode.Global
    in
    let width =
      match Opcode.mem_width orig.Instr.op with
      | Some w -> Opcode.bytes_of_width w
      | None -> 0
    in
    let addr_srcs =
      match orig.Instr.srcs with
      | a :: b :: _ when orig.Instr.op <> Opcode.TLD Opcode.W32
                      && orig.Instr.op <> Opcode.TLD Opcode.W64 -> (a, b)
      | a :: _ -> (a, imm 0)
      | [] -> (imm 0, imm 0)
    in
    let a, b = addr_srcs in
    [ iadd r6 a b;
      stl (Abi.aux_base + Abi.mem_off_address_lo) (sreg r6);
      iadd r7 (sreg Reg.RZ) (imm (Abi.space_tag space));
      stl (Abi.aux_base + Abi.mem_off_address_hi) (sreg r7);
      mov32i r6 (mem_properties orig.Instr.op);
      stl (Abi.aux_base + Abi.mem_off_properties) (sreg r6);
      mov32i r6 width;
      stl (Abi.aux_base + Abi.mem_off_width) (sreg r6) ]
  | Select.Branch_info ->
    let target =
      match orig.Instr.target with
      | Some t -> t * 8
      | None -> 0
    in
    guarded_flag orig.Instr.guard r6 (Abi.aux_base + Abi.branch_off_direction)
    @ [ mov32i r6 target;
        stl (Abi.aux_base + Abi.branch_off_target) (sreg r6) ]
  | Select.Reg_info ->
    let dsts = Instr.defs orig in
    let dsts =
      if List.length dsts > Abi.reg_max_dsts then
        List.filteri (fun i _ -> i < Abi.reg_max_dsts) dsts
      else dsts
    in
    let pdsts = Instr.pdefs orig in
    (* Destination values are stored first, before any scratch
       register could clobber a destination that happens to be R6. *)
    List.mapi
      (fun k d ->
         let _, val_off = Abi.reg_off_entry k in
         stl (Abi.aux_base + val_off) (sreg d))
      dsts
    @ [ mov32i r6 (List.length dsts);
        stl (Abi.aux_base + Abi.reg_off_num_dsts) (sreg r6) ]
    @ List.concat
        (List.mapi
           (fun k d ->
              let reg_off, _ = Abi.reg_off_entry k in
              [ mov32i r6 (Reg.index d);
                stl (Abi.aux_base + reg_off) (sreg r6) ])
           dsts)
    @ [ mov32i r6 (List.length pdsts);
        stl (Abi.aux_base + Abi.reg_off_num_pdsts) (sreg r6) ]
    @ (match pdsts with
       | p :: _ ->
         [ mov32i r6 (Pred.index p);
           stl (Abi.aux_base + Abi.reg_off_pdst 0) (sreg r6) ]
       | [] -> [])

let call_sequence ~site_id ~kernel_name ~pc ~what ~spills (orig : Instr.t) =
  let push = iadd r1 (sreg r1) (imm (Gpu.Value.of_signed (-Abi.frame_bytes))) in
  let spill_code =
    List.map
      (fun k -> stl (Abi.off_gpr_spill + (4 * k)) (sreg (Reg.r k)))
      spills
  in
  let pred_spill =
    [ Instr.make Opcode.P2R ~dsts:[ r3 ];
      stl Abi.off_pr_spill (sreg r3) ]
  in
  let aux = List.concat_map (fun w -> aux_fields w orig) what in
  let bp =
    [ iadd r4 (sreg Reg.RZ) (imm site_id);
      stl Abi.off_id (sreg r4) ]
    @ guarded_flag orig.Instr.guard r4 Abi.off_will_execute
    @ [ mov32i r5 (fn_addr_of kernel_name);
        stl Abi.off_fn_addr (sreg r5);
        mov32i r4 (pc * 8);
        stl Abi.off_ins_offset (sreg r4);
        mov32i r5 (Opcode.encode orig.Instr.op);
        stl Abi.off_ins_encoding (sreg r5) ]
  in
  let params =
    [ iadd r4 (sreg r1) (imm 0);
      iadd r5 (sreg Reg.RZ) (imm Abi.local_space_tag);
      iadd r6 (sreg r1) (imm Abi.aux_base);
      iadd r7 (sreg Reg.RZ) (imm Abi.local_space_tag) ]
  in
  let call =
    [ Instr.make (Opcode.HCALL site_id)
        ~srcs:[ sreg r4; sreg r5; sreg r6; sreg r7 ] ]
  in
  let restore =
    [ ldl r3 Abi.off_pr_spill;
      Instr.make Opcode.R2P ~srcs:[ sreg r3 ] ]
    @ List.rev_map
        (fun k -> ldl (Reg.r k) (Abi.off_gpr_spill + (4 * k)))
        spills
    @ [ iadd r1 (sreg r1) (imm Abi.frame_bytes) ]
  in
  (* Order matters: the auxiliary fields read the original
     instruction's operand and destination registers, so they are
     materialized before P2R clobbers R3 or the bp setup clobbers
     R4/R5. Spills (STL) do not modify registers. *)
  (push :: spill_code) @ aux @ pred_spill @ bp @ params @ call @ restore

let spill_set live_regs =
  live_regs
  |> List.filter_map (fun r ->
      let k = Reg.index r in
      if k <> 1 && k < Abi.spillable_regs then Some k else None)
  |> List.sort_uniq Int.compare

let instrument ~next_id ~specs (k : Program.kernel) =
  let instrs = k.Program.instrs in
  let n = Array.length instrs in
  let liveness = Liveness.analyze instrs in
  let cfg = Cfg.build instrs in
  let is_leader = Array.make n false in
  Array.iter
    (fun b -> is_leader.(b.Cfg.first) <- true)
    cfg.Cfg.blocks;
  let all_matches point pc i =
    List.filter
      (fun (spec, _) ->
         spec.Select.point = point
         && Select.matches_at spec ~pc ~is_leader:is_leader.(pc) i)
      specs
  in
  let out = ref [] in
  let out_len = ref 0 in
  let emit instr =
    out := instr :: !out;
    incr out_len
  in
  let new_start = Array.make n 0 in
  let new_self = Array.make n 0 in
  let sites = ref [] in
  for pc = 0 to n - 1 do
    let orig = instrs.(pc) in
    new_start.(pc) <- !out_len;
    List.iter
      (fun (spec, handler) ->
         let id = !next_id in
         incr next_id;
         let spills = spill_set (Liveness.live_gprs_before liveness pc) in
         List.iter emit
           (call_sequence ~site_id:id ~kernel_name:k.Program.name ~pc
              ~what:spec.Select.what ~spills orig);
         sites :=
           { Select.s_id = id;
             s_kernel = k.Program.name;
             s_old_pc = pc;
             s_new_pc = 0;  (* patched below *)
             s_instr = orig;
             s_point = Select.Before;
             s_what = spec.Select.what;
             s_handler = handler }
           :: !sites)
      (all_matches Select.Before pc orig);
    new_self.(pc) <- !out_len;
    emit orig;
    List.iter
      (fun (spec, handler) ->
         let id = !next_id in
         incr next_id;
         let spills = spill_set (Liveness.live_gprs_after liveness pc) in
         List.iter emit
           (call_sequence ~site_id:id ~kernel_name:k.Program.name ~pc
              ~what:spec.Select.what ~spills orig);
         sites :=
           { Select.s_id = id;
             s_kernel = k.Program.name;
             s_old_pc = pc;
             s_new_pc = 0;
             s_instr = orig;
             s_point = Select.After;
             s_what = spec.Select.what;
             s_handler = handler }
           :: !sites)
      (all_matches Select.After pc orig)
  done;
  let new_instrs = Array.of_list (List.rev !out) in
  (* Remap branch targets and reconvergence points of the original
     instructions (injected sequences contain no control flow except
     HCALL, which carries no target). *)
  let is_original = Array.make (Array.length new_instrs) false in
  Array.iter (fun idx -> is_original.(idx) <- true) new_self;
  Array.iteri
    (fun idx instr ->
       if is_original.(idx) then begin
         let remap = Option.map (fun t -> new_start.(t)) in
         new_instrs.(idx) <-
           { instr with
             Instr.target = remap instr.Instr.target;
             Instr.reconv = remap instr.Instr.reconv }
       end)
    new_instrs;
  let any_site = !sites <> [] in
  let sites =
    List.rev_map
      (fun s -> { s with Select.s_new_pc = new_self.(s.Select.s_old_pc) })
      !sites
  in
  let kernel =
    { k with
      Program.instrs = new_instrs;
      Program.frame_bytes =
        (k.Program.frame_bytes + if any_site then Abi.frame_bytes else 0);
      Program.regs_used = max k.Program.regs_used 8 }
  in
  { kernel; sites }

let sequence_length spec instr ~live =
  let seq =
    call_sequence ~site_id:0 ~kernel_name:"probe" ~pc:0
      ~what:spec.Select.what
      ~spills:(List.init (min live Abi.spillable_regs) (fun i -> i))
      instr
  in
  List.length seq
