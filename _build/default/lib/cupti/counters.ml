type t = {
  device : Gpu.Device.t;
  base : int;
  n : int;
}

let alloc device ~slots =
  let base = Gpu.Device.malloc device (8 * slots) in
  Gpu.Device.memset device ~addr:base ~len:(8 * slots) '\000';
  { device; base; n = slots }

let slots t = t.n

let addr ?(slot = 0) t =
  if slot < 0 || slot >= t.n then invalid_arg "Counters.addr: slot out of range";
  t.base + (8 * slot)

let zero t = Gpu.Device.memset t.device ~addr:t.base ~len:(8 * t.n) '\000'

let read t = Gpu.Device.read_u64s t.device ~addr:t.base ~n:t.n

let read_and_zero t =
  let v = read t in
  zero t;
  v

let zero_on_launch t device ~kernel =
  Callback.subscribe device Callback.Kernel_launch (fun info ->
      if kernel = "*" || info.Callback.kernel_name = kernel then zero t)
