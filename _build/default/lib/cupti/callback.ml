type domain =
  | Kernel_launch
  | Kernel_exit

type subscription = int

type kernel_info = {
  kernel_name : string;
  invocation : int;
  launch_id : int;
  grid : int * int;
  block : int * int;
  launch : Gpu.State.launch;
}

let info_of_launch (l : Gpu.State.launch) =
  { kernel_name = l.Gpu.State.l_kernel.Sass.Program.name;
    invocation = l.Gpu.State.l_invocation;
    launch_id = l.Gpu.State.l_id;
    grid = (l.Gpu.State.l_grid_x, l.Gpu.State.l_grid_y);
    block = (l.Gpu.State.l_block_x, l.Gpu.State.l_block_y);
    launch = l }

let subscribe device domain f =
  let wrapped l = f (info_of_launch l) in
  match domain with
  | Kernel_launch -> Gpu.Device.on_launch device wrapped
  | Kernel_exit -> Gpu.Device.on_exit device wrapped

let unsubscribe device sub = Gpu.Device.unsubscribe device sub
