(** Device-resident 64-bit counter arrays, the idiom every case-study
    handler uses: allocate once, zero on kernel launch (via a
    {!Callback} subscription or explicitly), update from handlers with
    charged atomics, and copy back to the host on kernel exit. *)

type t

val alloc : Gpu.Device.t -> slots:int -> t
(** Allocates and zeroes [slots] 64-bit counters in device global
    memory. *)

val slots : t -> int

val addr : ?slot:int -> t -> int
(** Device address of the given slot (default 0), to hand to handler
    atomics. *)

val zero : t -> unit

val read : t -> int array
(** Host copy of all slots (a [cudaMemcpy] analogue). *)

val read_and_zero : t -> int array

val zero_on_launch : t -> Gpu.Device.t -> kernel:string -> Callback.subscription
(** Convenience: subscribe a launch callback that zeroes the counters
    whenever the named kernel launches (["*"] matches any kernel). *)
