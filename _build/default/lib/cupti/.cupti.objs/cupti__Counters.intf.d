lib/cupti/counters.mli: Callback Gpu
