lib/cupti/callback.mli: Gpu
