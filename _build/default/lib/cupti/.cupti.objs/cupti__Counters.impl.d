lib/cupti/counters.ml: Callback Gpu
