lib/cupti/callback.ml: Gpu Sass
