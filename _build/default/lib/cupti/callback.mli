(** The CUPTI callback substrate (paper, Section 3.3): host-side code
    subscribes to kernel-launch and kernel-exit events to initialize
    and collect device-side counters. The copy APIs serialize with
    kernel execution exactly because launches here are synchronous,
    matching the [cudaMemcpy] serialization the paper relies on to
    avoid counter races. *)

type domain =
  | Kernel_launch  (** fired before the kernel starts executing *)
  | Kernel_exit  (** fired after the kernel has completed *)

type subscription

(** Information handed to callbacks, mirroring what CUPTI exposes. *)
type kernel_info = {
  kernel_name : string;
  invocation : int;  (** per-kernel-name invocation count, from 0 *)
  launch_id : int;  (** global launch sequence number *)
  grid : int * int;
  block : int * int;
  launch : Gpu.State.launch;  (** full launch record *)
}

val subscribe : Gpu.Device.t -> domain -> (kernel_info -> unit) -> subscription

val unsubscribe : Gpu.Device.t -> subscription -> unit
