(* Liveness as bitsets: 256 GPR bits in four ints is overkill — use
   a simple int array of 4 words for GPRs and one int for predicates. *)

module Bits = struct
  type t = { w : int array }  (* 4 x 64-bit words covering 256 regs *)

  let create () = { w = Array.make 4 0 }

  let copy t = { w = Array.copy t.w }

  let set t i = t.w.(i lsr 6) <- t.w.(i lsr 6) lor (1 lsl (i land 63))

  let clear t i = t.w.(i lsr 6) <- t.w.(i lsr 6) land lnot (1 lsl (i land 63))

  let mem t i = t.w.(i lsr 6) land (1 lsl (i land 63)) <> 0

  let union_into ~into t =
    let changed = ref false in
    for k = 0 to 3 do
      let v = into.w.(k) lor t.w.(k) in
      if v <> into.w.(k) then begin
        into.w.(k) <- v;
        changed := true
      end
    done;
    !changed

  let elements t =
    let out = ref [] in
    for i = 255 downto 0 do
      if mem t i then out := i :: !out
    done;
    !out
end

type t = {
  live_in : Bits.t array;  (* GPR live-in per pc *)
  live_out : Bits.t array;
  plive_in : int array;  (* predicate live-in bitmask per pc *)
  plive_out : int array;
}

let transfer instrs pc live plive =
  (* Given live/plive *after* pc, produce live/plive *before* pc. *)
  let i = instrs.(pc) in
  let live = Bits.copy live in
  let plive = ref plive in
  let unconditional = Pred.is_always i.Instr.guard in
  if unconditional then begin
    List.iter (fun r -> Bits.clear live (Reg.index r)) (Instr.defs i);
    List.iter
      (fun p -> plive := !plive land lnot (1 lsl Pred.index p))
      (Instr.pdefs i)
  end;
  List.iter (fun r -> Bits.set live (Reg.index r)) (Instr.uses i);
  List.iter (fun p -> plive := !plive lor (1 lsl Pred.index p)) (Instr.puses i);
  (live, !plive)

let analyze instrs =
  let n = Array.length instrs in
  let cfg = Cfg.build instrs in
  let nb = Array.length cfg.Cfg.blocks in
  let blk_live_in = Array.init nb (fun _ -> Bits.create ()) in
  let blk_plive_in = Array.make nb 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      let blk = cfg.Cfg.blocks.(b) in
      let live = Bits.create () in
      let plive = ref 0 in
      List.iter
        (fun s ->
           ignore (Bits.union_into ~into:live blk_live_in.(s));
           plive := !plive lor blk_plive_in.(s))
        blk.Cfg.succs;
      let live = ref live in
      for pc = blk.Cfg.last downto blk.Cfg.first do
        let l, p = transfer instrs pc !live !plive in
        live := l;
        plive := p
      done;
      if Bits.union_into ~into:blk_live_in.(b) !live then changed := true;
      let merged = blk_plive_in.(b) lor !plive in
      if merged <> blk_plive_in.(b) then begin
        blk_plive_in.(b) <- merged;
        changed := true
      end
    done
  done;
  (* Second pass: record per-instruction live-in/out. *)
  let live_in = Array.init n (fun _ -> Bits.create ()) in
  let live_out = Array.init n (fun _ -> Bits.create ()) in
  let plive_in = Array.make n 0 in
  let plive_out = Array.make n 0 in
  Array.iter
    (fun blk ->
       let live = Bits.create () in
       let plive = ref 0 in
       List.iter
         (fun s ->
            ignore (Bits.union_into ~into:live blk_live_in.(s));
            plive := !plive lor blk_plive_in.(s))
         blk.Cfg.succs;
       let live = ref live in
       for pc = blk.Cfg.last downto blk.Cfg.first do
         live_out.(pc) <- Bits.copy !live;
         plive_out.(pc) <- !plive;
         let l, p = transfer instrs pc !live !plive in
         live := l;
         plive := p;
         live_in.(pc) <- Bits.copy l;
         plive_in.(pc) <- p
       done)
    cfg.Cfg.blocks;
  { live_in; live_out; plive_in; plive_out }

let gprs_of_bits bits =
  Bits.elements bits
  |> List.filter (fun i -> i <> 255)
  |> List.map Reg.of_index

let preds_of_mask mask =
  List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3; 4; 5; 6 ]
  |> List.map Pred.p

let live_gprs_before t pc = gprs_of_bits t.live_in.(pc)

let live_preds_before t pc = preds_of_mask t.plive_in.(pc)

let live_gprs_after t pc = gprs_of_bits t.live_out.(pc)

let live_preds_after t pc = preds_of_mask t.plive_out.(pc)
