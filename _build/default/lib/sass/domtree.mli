(** Post-dominator analysis, used to compute SIMT reconvergence points.

    The immediate post-dominator of a conditional branch's block is the
    earliest program point through which every path from the branch to
    kernel exit must pass — exactly where NVIDIA's divergence stack
    reconverges the warp (paper, Section 5). *)

type t

val post_dominators : Cfg.t -> t
(** Computes immediate post-dominators with the iterative
    Cooper-Harvey-Kennedy algorithm over the reversed CFG, using a
    virtual exit node that all exit blocks reach. *)

val ipdom : t -> int -> int option
(** [ipdom t b] is the immediate post-dominator block of block [b], or
    [None] if only the virtual exit post-dominates [b]. *)

val post_dominates : t -> int -> int -> bool
(** [post_dominates t a b] is true iff block [a] post-dominates
    block [b] (reflexive). *)

val reconvergence_pc : Cfg.t -> t -> int -> int option
(** [reconvergence_pc cfg t pc] is the reconvergence PC for a
    conditional branch at [pc]: the first instruction of the branch
    block's immediate post-dominator. *)
