type cmp =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type logic =
  | L_and
  | L_or
  | L_xor
  | L_not

type sign =
  | Signed
  | Unsigned

type mufu =
  | Rcp
  | Sqrt
  | Rsq
  | Ex2
  | Lg2
  | Sin
  | Cos

type space =
  | Global
  | Shared
  | Local
  | Param
  | Tex

type width =
  | W8
  | W16
  | W32
  | W64

type atom_op =
  | A_add
  | A_min
  | A_max
  | A_exch
  | A_cas
  | A_and
  | A_or
  | A_xor

type vote =
  | V_ballot
  | V_any
  | V_all

type shfl =
  | S_idx
  | S_up
  | S_down
  | S_bfly

type special =
  | Sr_tid_x
  | Sr_tid_y
  | Sr_ntid_x
  | Sr_ntid_y
  | Sr_ctaid_x
  | Sr_ctaid_y
  | Sr_nctaid_x
  | Sr_nctaid_y
  | Sr_laneid
  | Sr_warpid
  | Sr_smid
  | Sr_clock

type t =
  | IADD
  | ISUB
  | IMUL
  | IMAD
  | IDIV of sign
  | IMOD of sign
  | IMNMX of cmp
  | SHL
  | SHR of sign
  | LOP of logic
  | BREV
  | POPC
  | FLO
  | ISETP of cmp * sign
  | FADD
  | FSUB
  | FMUL
  | FFMA
  | FMNMX of cmp
  | MUFU of mufu
  | FSETP of cmp
  | I2F of sign
  | F2I of sign
  | MOV
  | SEL
  | S2R of special
  | P2R
  | R2P
  | PSETP of logic
  | LD of space * width
  | ST of space * width
  | ATOM of space * atom_op * width
  | RED of space * atom_op * width
  | TLD of width
  | MEMBAR
  | VOTE of vote
  | SHFL of shfl
  | BRA
  | CAL
  | RET
  | EXIT
  | BAR
  | NOP
  | HCALL of int

let is_mem = function
  | LD _ | ST _ | ATOM _ | RED _ | TLD _ -> true
  | IADD | ISUB | IMUL | IMAD | IDIV _ | IMOD _ | IMNMX _ | SHL | SHR _
  | LOP _ | BREV | POPC | FLO | ISETP _ | FADD | FSUB | FMUL | FFMA
  | FMNMX _ | MUFU _ | FSETP _ | I2F _ | F2I _ | MOV | SEL | S2R _ | P2R
  | R2P | PSETP _ | MEMBAR | VOTE _ | SHFL _ | BRA | CAL | RET | EXIT
  | BAR | NOP | HCALL _ -> false

let is_mem_read = function
  | LD _ | ATOM _ | TLD _ -> true
  | _ -> false

let is_mem_write = function
  | ST _ | ATOM _ | RED _ -> true
  | _ -> false

let is_atomic = function
  | ATOM _ | RED _ -> true
  | _ -> false

let is_spill_or_fill = function
  | LD (Local, _) | ST (Local, _) -> true
  | _ -> false

let is_texture = function
  | TLD _ | LD (Tex, _) -> true
  | _ -> false

let is_control = function
  | BRA | CAL | RET | EXIT | HCALL _ -> true
  | _ -> false

let is_branch = function
  | BRA -> true
  | _ -> false

let is_sync = function
  | BAR | MEMBAR -> true
  | _ -> false

let is_numeric = function
  | IADD | ISUB | IMUL | IMAD | IDIV _ | IMOD _ | IMNMX _ | SHL | SHR _
  | LOP _ | BREV | POPC | FLO | ISETP _ | FADD | FSUB | FMUL | FFMA
  | FMNMX _ | MUFU _ | FSETP _ | I2F _ | F2I _ -> true
  | MOV | SEL | S2R _ | P2R | R2P | PSETP _ | LD _ | ST _ | ATOM _
  | RED _ | TLD _ | MEMBAR | VOTE _ | SHFL _ | BRA | CAL | RET | EXIT
  | BAR | NOP | HCALL _ -> false

let is_warp_wide = function
  | VOTE _ | SHFL _ -> true
  | _ -> false

let mem_space = function
  | LD (s, _) | ST (s, _) | ATOM (s, _, _) | RED (s, _, _) -> Some s
  | TLD _ -> Some Tex
  | _ -> None

let mem_width = function
  | LD (_, w) | ST (_, w) | ATOM (_, _, w) | RED (_, _, w) | TLD w -> Some w
  | _ -> None

let bytes_of_width = function
  | W8 -> 1
  | W16 -> 2
  | W32 -> 4
  | W64 -> 8

(* A compact, stable encoding: class bits in the high nibble so that
   handlers can recover coarse classes from [insEncoding] alone. *)
let encode t =
  let base = function
    | IADD -> 1 | ISUB -> 2 | IMUL -> 3 | IMAD -> 4
    | IDIV _ -> 5 | IMOD _ -> 6 | IMNMX _ -> 7 | SHL -> 8 | SHR _ -> 9
    | LOP _ -> 10 | BREV -> 11 | POPC -> 12 | FLO -> 13 | ISETP _ -> 14
    | FADD -> 15 | FSUB -> 16 | FMUL -> 17 | FFMA -> 18 | FMNMX _ -> 19
    | MUFU _ -> 20 | FSETP _ -> 21 | I2F _ -> 22 | F2I _ -> 23
    | MOV -> 24 | SEL -> 25 | S2R _ -> 26 | P2R -> 27 | R2P -> 28
    | PSETP _ -> 29 | LD _ -> 30 | ST _ -> 31 | ATOM _ -> 32 | RED _ -> 33
    | TLD _ -> 34 | MEMBAR -> 35 | VOTE _ -> 36 | SHFL _ -> 37
    | BRA -> 38 | CAL -> 39 | RET -> 40 | EXIT -> 41 | BAR -> 42
    | NOP -> 43 | HCALL _ -> 44
  in
  let class_bits =
    (if is_mem t then 0x100 else 0)
    lor (if is_control t then 0x200 else 0)
    lor (if is_sync t then 0x400 else 0)
    lor (if is_numeric t then 0x800 else 0)
    lor (if is_texture t then 0x1000 else 0)
    lor (if is_mem_read t then 0x2000 else 0)
    lor (if is_mem_write t then 0x4000 else 0)
    lor (if is_atomic t then 0x8000 else 0)
  in
  class_bits lor base t

let string_of_cmp = function
  | Lt -> "LT"
  | Le -> "LE"
  | Gt -> "GT"
  | Ge -> "GE"
  | Eq -> "EQ"
  | Ne -> "NE"

let string_of_logic = function
  | L_and -> "AND"
  | L_or -> "OR"
  | L_xor -> "XOR"
  | L_not -> "NOT"

let string_of_sign = function
  | Signed -> ""
  | Unsigned -> ".U32"

let string_of_mufu = function
  | Rcp -> "RCP"
  | Sqrt -> "SQRT"
  | Rsq -> "RSQ"
  | Ex2 -> "EX2"
  | Lg2 -> "LG2"
  | Sin -> "SIN"
  | Cos -> "COS"

let string_of_space = function
  | Global -> "E"
  | Shared -> "S"
  | Local -> "L"
  | Param -> "C"
  | Tex -> "T"

let string_of_width = function
  | W8 -> ".8"
  | W16 -> ".16"
  | W32 -> ""
  | W64 -> ".64"

let string_of_atom = function
  | A_add -> "ADD"
  | A_min -> "MIN"
  | A_max -> "MAX"
  | A_exch -> "EXCH"
  | A_cas -> "CAS"
  | A_and -> "AND"
  | A_or -> "OR"
  | A_xor -> "XOR"

let string_of_special = function
  | Sr_tid_x -> "SR_TID.X"
  | Sr_tid_y -> "SR_TID.Y"
  | Sr_ntid_x -> "SR_NTID.X"
  | Sr_ntid_y -> "SR_NTID.Y"
  | Sr_ctaid_x -> "SR_CTAID.X"
  | Sr_ctaid_y -> "SR_CTAID.Y"
  | Sr_nctaid_x -> "SR_NCTAID.X"
  | Sr_nctaid_y -> "SR_NCTAID.Y"
  | Sr_laneid -> "SR_LANEID"
  | Sr_warpid -> "SR_WARPID"
  | Sr_smid -> "SR_SMID"
  | Sr_clock -> "SR_CLOCK"

let to_string = function
  | IADD -> "IADD"
  | ISUB -> "ISUB"
  | IMUL -> "IMUL"
  | IMAD -> "IMAD"
  | IDIV s -> "IDIV" ^ string_of_sign s
  | IMOD s -> "IMOD" ^ string_of_sign s
  | IMNMX c -> "IMNMX." ^ string_of_cmp c
  | SHL -> "SHL"
  | SHR s -> "SHR" ^ string_of_sign s
  | LOP l -> "LOP." ^ string_of_logic l
  | BREV -> "BREV"
  | POPC -> "POPC"
  | FLO -> "FLO"
  | ISETP (c, s) -> "ISETP." ^ string_of_cmp c ^ string_of_sign s
  | FADD -> "FADD"
  | FSUB -> "FSUB"
  | FMUL -> "FMUL"
  | FFMA -> "FFMA"
  | FMNMX c -> "FMNMX." ^ string_of_cmp c
  | MUFU f -> "MUFU." ^ string_of_mufu f
  | FSETP c -> "FSETP." ^ string_of_cmp c
  | I2F s -> "I2F" ^ string_of_sign s
  | F2I s -> "F2I" ^ string_of_sign s
  | MOV -> "MOV"
  | SEL -> "SEL"
  | S2R s -> "S2R." ^ string_of_special s
  | P2R -> "P2R"
  | R2P -> "R2P"
  | PSETP l -> "PSETP." ^ string_of_logic l
  | LD (s, w) -> "LD" ^ string_of_space s ^ string_of_width w
  | ST (s, w) -> "ST" ^ string_of_space s ^ string_of_width w
  | ATOM (s, a, w) ->
    "ATOM" ^ string_of_space s ^ "." ^ string_of_atom a ^ string_of_width w
  | RED (s, a, w) ->
    "RED" ^ string_of_space s ^ "." ^ string_of_atom a ^ string_of_width w
  | TLD w -> "TLD" ^ string_of_width w
  | MEMBAR -> "MEMBAR"
  | VOTE V_ballot -> "VOTE.BALLOT"
  | VOTE V_any -> "VOTE.ANY"
  | VOTE V_all -> "VOTE.ALL"
  | SHFL S_idx -> "SHFL.IDX"
  | SHFL S_up -> "SHFL.UP"
  | SHFL S_down -> "SHFL.DOWN"
  | SHFL S_bfly -> "SHFL.BFLY"
  | BRA -> "BRA"
  | CAL -> "CAL"
  | RET -> "RET"
  | EXIT -> "EXIT"
  | BAR -> "BAR.SYNC"
  | NOP -> "NOP"
  | HCALL id -> Printf.sprintf "JCAL sassi_handler_%d" id

let pp ppf t = Format.pp_print_string ppf (to_string t)

let pp_space ppf s = Format.pp_print_string ppf (string_of_space s)

let pp_width ppf w = Format.pp_print_string ppf (string_of_width w)
