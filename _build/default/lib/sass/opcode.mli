(** Opcodes of the SASS-like ISA, with the instruction-class taxonomy
    that SASSI exposes to instrumentation handlers ([IsMem],
    [IsControlXfer], [IsNumeric], ...).

    The ISA is a Kepler-flavoured subset: 32-bit integer and
    single-precision float arithmetic, predicate-setting compares,
    warp-wide vote/shuffle operations, loads/stores over explicit
    memory spaces, atomics, and SIMT control flow. Two documented
    simplifications relative to real SASS: [IDIV]/[IMOD] exist as
    single opcodes (real Kepler expands division inline), and
    texture access is the single [TLD] opcode reading a bound
    texture buffer. *)

(** Comparison operators for [ISETP]/[FSETP]/[IMNMX]. *)
type cmp =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

(** Bitwise logic operators for [LOP]. *)
type logic =
  | L_and
  | L_or
  | L_xor
  | L_not  (** unary: second source ignored *)

(** Signedness of shifts, compares and conversions. *)
type sign =
  | Signed
  | Unsigned

(** Hardware transcendental unit functions ([MUFU]). *)
type mufu =
  | Rcp
  | Sqrt
  | Rsq
  | Ex2
  | Lg2
  | Sin
  | Cos

(** Memory spaces. [Param] is the constant bank holding kernel
    parameters; [Tex] is the texture path. *)
type space =
  | Global
  | Shared
  | Local
  | Param
  | Tex

(** Access widths in bytes. [W64] reads/writes a register pair. *)
type width =
  | W8
  | W16
  | W32
  | W64

(** Atomic operations. *)
type atom_op =
  | A_add
  | A_min
  | A_max
  | A_exch
  | A_cas
  | A_and
  | A_or
  | A_xor

(** Warp-vote modes. *)
type vote =
  | V_ballot
  | V_any
  | V_all

(** Warp-shuffle modes. *)
type shfl =
  | S_idx
  | S_up
  | S_down
  | S_bfly

(** Special registers readable through [S2R]. *)
type special =
  | Sr_tid_x
  | Sr_tid_y
  | Sr_ntid_x
  | Sr_ntid_y
  | Sr_ctaid_x
  | Sr_ctaid_y
  | Sr_nctaid_x
  | Sr_nctaid_y
  | Sr_laneid
  | Sr_warpid
  | Sr_smid
  | Sr_clock

type t =
  (* Integer arithmetic *)
  | IADD
  | ISUB
  | IMUL
  | IMAD  (** d = a*b + c *)
  | IDIV of sign
  | IMOD of sign
  | IMNMX of cmp  (** min/max selected by [Lt]/[Gt] *)
  | SHL
  | SHR of sign
  | LOP of logic
  | BREV  (** bit reverse *)
  | POPC
  | FLO  (** find leading one (highest set bit index, -1 if none) *)
  | ISETP of cmp * sign
  (* Float arithmetic *)
  | FADD
  | FSUB
  | FMUL
  | FFMA
  | FMNMX of cmp
  | MUFU of mufu
  | FSETP of cmp
  | I2F of sign
  | F2I of sign
  (* Data movement *)
  | MOV
  | SEL  (** d = pred ? a : b *)
  | S2R of special
  | P2R  (** pack predicate file into a register *)
  | R2P  (** unpack a register into the predicate file *)
  | PSETP of logic  (** predicate logic *)
  (* Memory *)
  | LD of space * width
  | ST of space * width
  | ATOM of space * atom_op * width
  | RED of space * atom_op * width  (** reduction: atomic without return *)
  | TLD of width  (** texture load *)
  | MEMBAR
  (* Warp-wide *)
  | VOTE of vote
  | SHFL of shfl
  (* Control *)
  | BRA
  | CAL
  | RET
  | EXIT
  | BAR  (** block-wide barrier (__syncthreads) *)
  | NOP
  | HCALL of int
      (** SASSI handler call: transfers to instrumentation handler
          [id]. Disassembles as [JCAL sassi_handler_<id>]. *)

(** {1 Instruction classes (the SASSI taxonomy)} *)

val is_mem : t -> bool
(** Touches memory (loads, stores, atomics, texture). *)

val is_mem_read : t -> bool

val is_mem_write : t -> bool

val is_atomic : t -> bool

val is_spill_or_fill : t -> bool
(** Local-space load/store (the ABI uses local memory for spills). *)

val is_texture : t -> bool

val is_control : t -> bool
(** Transfers control: [BRA], [CAL], [RET], [EXIT], [HCALL]. *)

val is_branch : t -> bool

val is_sync : t -> bool
(** Synchronization: [BAR], [MEMBAR]. *)

val is_numeric : t -> bool
(** Integer/float arithmetic and conversions. *)

val is_warp_wide : t -> bool
(** Vote/shuffle operations. *)

val mem_space : t -> space option

val mem_width : t -> width option

val bytes_of_width : width -> int

val encode : t -> int
(** Stable small integer encoding, used as the static
    [insEncoding] field of SASSI params objects. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val pp_space : Format.formatter -> space -> unit

val pp_width : Format.formatter -> width -> unit
