(** Register liveness over SASS programs.

    The SASSI injector uses this to spill exactly the live registers
    at each instrumentation site — "the compiler knows exactly which
    registers to spill" (paper, Section 3.2). *)

type t

val analyze : Instr.t array -> t
(** Backward dataflow over the CFG. Guarded (predicated) instructions
    are treated as may-writes: their definitions do not kill. *)

val live_gprs_before : t -> int -> Reg.t list
(** GPRs live immediately before the instruction at the given PC,
    sorted by register index. *)

val live_preds_before : t -> int -> Pred.t list

val live_gprs_after : t -> int -> Reg.t list

val live_preds_after : t -> int -> Pred.t list
