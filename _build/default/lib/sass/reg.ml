type t =
  | R of int
  | RZ

let r i =
  if i < 0 || i > 254 then invalid_arg "Reg.r: register out of range";
  R i

let sp = R 1

let index = function
  | R i -> i
  | RZ -> 255

let of_index i =
  if i = 255 then RZ
  else r i

let is_zero = function
  | RZ -> true
  | R _ -> false

let equal a b = index a = index b

let compare a b = Int.compare (index a) (index b)

let to_string = function
  | R i -> Printf.sprintf "R%d" i
  | RZ -> "RZ"

let pp ppf t = Format.pp_print_string ppf (to_string t)
