type t =
  | P of int
  | PT

let p i =
  if i < 0 || i > 6 then invalid_arg "Pred.p: predicate out of range";
  P i

let index = function
  | P i -> i
  | PT -> 7

let of_index i =
  if i = 7 then PT
  else p i

let is_true = function
  | PT -> true
  | P _ -> false

let equal a b = index a = index b

let compare a b = Int.compare (index a) (index b)

let to_string = function
  | P i -> Printf.sprintf "P%d" i
  | PT -> "PT"

let pp ppf t = Format.pp_print_string ppf (to_string t)

type guard = {
  pred : t;
  negated : bool;
}

let always = { pred = PT; negated = false }

let on pred = { pred; negated = false }

let on_not pred = { pred; negated = true }

let is_always g = is_true g.pred && not g.negated

let pp_guard ppf g =
  if is_always g then ()
  else Format.fprintf ppf "@@%s%s " (if g.negated then "!" else "") (to_string g.pred)
