(** Compiled kernels: the unit the backend compiler emits, the SASSI
    pass rewrites, and the GPU loads. *)

type kernel = {
  name : string;
  instrs : Instr.t array;
  param_bytes : int;  (** size of the kernel-parameter constant bank *)
  frame_bytes : int;  (** per-thread local stack frame (spills + SASSI) *)
  shared_bytes : int;  (** static shared memory per thread block *)
  regs_used : int;  (** highest GPR index used + 1 *)
}

val make :
  name:string ->
  ?param_bytes:int ->
  ?frame_bytes:int ->
  ?shared_bytes:int ->
  Instr.t array ->
  kernel
(** Builds a kernel; [regs_used] is computed from the instructions. *)

val annotate_reconvergence : kernel -> kernel
(** Fills the [reconv] field of every conditional branch with its
    immediate post-dominator PC (the backend compiler's reconvergence
    analysis). Idempotent. *)

val validate : kernel -> (unit, string) result
(** Structural checks: resolved branch targets in range, terminating
    [EXIT] reachable, register indices in range. *)

val instruction_count : kernel -> int

val pp : Format.formatter -> kernel -> unit
(** Full disassembly listing. *)
