(** Control-flow graph over an instruction array.

    PCs are instruction indices. Basic blocks are maximal straight-line
    ranges; [CAL] and [HCALL] are treated as straight-line (they return
    to the following instruction). *)

type block = {
  id : int;
  first : int;  (** PC of first instruction *)
  last : int;  (** PC of last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
  preds : int list;  (** predecessor block ids *)
}

type t = {
  blocks : block array;
  block_of_pc : int array;  (** PC -> block id *)
}

val instr_successors : Instr.t array -> int -> int list
(** Successor PCs of the instruction at the given PC. *)

val build : Instr.t array -> t

val block_at : t -> int -> block
(** Block containing the given PC. *)

val exit_blocks : t -> int list
(** Ids of blocks with no successors. *)

val pp : Format.formatter -> t -> unit
