(* Immediate post-dominators via Cooper-Harvey-Kennedy on the reversed
   CFG. Nodes are block ids 0..n-1 plus a virtual exit node [n] that
   every exit block points to (in the reversed graph, the virtual exit
   is the root). *)

type t = {
  idom : int array;  (* immediate post-dominator; n = virtual exit *)
  virtual_exit : int;
}

let post_dominators (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.blocks in
  let virtual_exit = n in
  (* Reversed graph: edges succ -> pred become pred lists = succs of the
     original, so "predecessors" of node b in the reversed graph are the
     original successors of b... We need, for the dominator algorithm
     rooted at virtual_exit, preds(b) in the reversed graph = original
     successors of b (plus virtual_exit for exit blocks). *)
  let rev_preds b =
    if b = virtual_exit then []
    else
      let succs = cfg.Cfg.blocks.(b).Cfg.succs in
      if succs = [] then [ virtual_exit ] else succs
  in
  (* Reverse postorder of the reversed graph starting from the root
     (virtual exit): DFS following reversed edges, i.e. original
     predecessor edges, plus edges from virtual_exit to exit blocks. *)
  let rev_succs b =
    if b = virtual_exit then Cfg.exit_blocks cfg
    else cfg.Cfg.blocks.(b).Cfg.preds
  in
  let visited = Array.make (n + 1) false in
  let postorder = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (rev_succs b);
      postorder := b :: !postorder
    end
  in
  dfs virtual_exit;
  let rpo = Array.of_list !postorder in
  let rpo_number = Array.make (n + 1) (-1) in
  Array.iteri (fun i b -> rpo_number.(b) <- i) rpo;
  let idom = Array.make (n + 1) (-1) in
  idom.(virtual_exit) <- virtual_exit;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_number.(!f1) > rpo_number.(!f2) do f1 := idom.(!f1) done;
      while rpo_number.(!f2) > rpo_number.(!f1) do f2 := idom.(!f2) done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
         if b <> virtual_exit && rpo_number.(b) >= 0 then begin
           let preds =
             List.filter (fun p -> idom.(p) <> -1 && rpo_number.(p) >= 0)
               (rev_preds b)
           in
           match preds with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  { idom; virtual_exit }

let ipdom t b =
  let d = t.idom.(b) in
  if d = t.virtual_exit || d = -1 then None else Some d

let post_dominates t a b =
  let rec walk x =
    if x = a then true
    else if x = t.virtual_exit || x = -1 then a = t.virtual_exit
    else
      let next = t.idom.(x) in
      if next = x then x = a
      else walk next
  in
  walk b

let reconvergence_pc cfg t pc =
  let b = cfg.Cfg.block_of_pc.(pc) in
  match ipdom t b with
  | None -> None
  | Some d -> Some cfg.Cfg.blocks.(d).Cfg.first
