type kernel = {
  name : string;
  instrs : Instr.t array;
  param_bytes : int;
  frame_bytes : int;
  shared_bytes : int;
  regs_used : int;
}

let compute_regs_used instrs =
  let hi = ref 0 in
  let see = function
    | Reg.R i -> if i + 1 > !hi then hi := i + 1
    | Reg.RZ -> ()
  in
  Array.iter
    (fun i ->
       List.iter see i.Instr.dsts;
       List.iter
         (function
           | Instr.SReg r -> see r
           | Instr.SImm _ | Instr.SParam _ | Instr.SPred _ -> ())
         i.Instr.srcs)
    instrs;
  !hi

let make ~name ?(param_bytes = 0) ?(frame_bytes = 0) ?(shared_bytes = 0)
    instrs =
  { name; instrs; param_bytes; frame_bytes; shared_bytes;
    regs_used = compute_regs_used instrs }

let annotate_reconvergence k =
  let cfg = Cfg.build k.instrs in
  let pdom = Domtree.post_dominators cfg in
  let instrs =
    Array.mapi
      (fun pc i ->
         if Instr.is_cond_branch i then
           { i with Instr.reconv = Domtree.reconvergence_pc cfg pdom pc }
         else i)
      k.instrs
  in
  { k with instrs }

let validate k =
  let n = Array.length k.instrs in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  if n = 0 then fail "kernel %s is empty" k.name;
  Array.iteri
    (fun pc i ->
       (match i.Instr.op with
        | Opcode.BRA | Opcode.CAL ->
          (match i.Instr.target with
           | None -> fail "pc %d: unresolved control target" pc
           | Some t ->
             if t < 0 || t >= n then fail "pc %d: target %d out of range" pc t)
        | _ -> ());
       (match i.Instr.reconv with
        | Some r when r < 0 || r >= n ->
          fail "pc %d: reconvergence point %d out of range" pc r
        | Some _ | None -> ()))
    k.instrs;
  let has_exit =
    Array.exists (fun i -> i.Instr.op = Opcode.EXIT) k.instrs
  in
  if not has_exit then fail "kernel %s has no EXIT" k.name;
  match !err with
  | Some e -> Error e
  | None -> Ok ()

let instruction_count k = Array.length k.instrs

let pp ppf k =
  Format.fprintf ppf "// kernel %s: %d instrs, %d regs, %d param bytes, \
                      %d frame bytes, %d shared bytes@."
    k.name (Array.length k.instrs) k.regs_used k.param_bytes k.frame_bytes
    k.shared_bytes;
  Array.iteri
    (fun pc i -> Format.fprintf ppf "  /*%04x*/ %a@." (pc * 8) Instr.pp i)
    k.instrs
