(** Predicate registers and instruction guards.

    The ISA has seven writable 1-bit predicate registers [P0..P6] and
    the hardwired true predicate [PT]. Every instruction carries a
    guard ([@P3], [@!P0], ...) selecting the lanes that execute it. *)

type t =
  | P of int  (** [P i] with [0 <= i <= 6] *)
  | PT  (** hardwired true *)

val p : int -> t
(** @raise Invalid_argument if out of range. *)

val index : t -> int
(** Dense index in [0, 7]; [PT] maps to 7. *)

val of_index : int -> t

val is_true : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** {1 Guards} *)

type guard = {
  pred : t;
  negated : bool;
}

val always : guard
(** Guard that never masks a lane ([@PT]). *)

val on : t -> guard

val on_not : t -> guard

val is_always : guard -> bool

val pp_guard : Format.formatter -> guard -> unit
