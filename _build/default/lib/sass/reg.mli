(** General-purpose registers of the SASS-like ISA.

    Registers are 32 bits wide. [RZ] is the hardwired zero register:
    reads return 0 and writes are discarded, mirroring NVIDIA's
    [R255]/[RZ] convention. [R 1] is reserved by the ABI as the stack
    pointer into thread-local memory. *)

type t =
  | R of int  (** [R i] with [0 <= i <= 254] *)
  | RZ  (** hardwired zero *)

val r : int -> t
(** [r i] is [R i]. @raise Invalid_argument if [i] is out of range. *)

val sp : t
(** The ABI stack pointer, [R 1]. *)

val index : t -> int
(** Dense index in [0, 255]; [RZ] maps to 255. *)

val of_index : int -> t
(** Inverse of {!index}. *)

val is_zero : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
