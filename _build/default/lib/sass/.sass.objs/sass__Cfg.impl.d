lib/sass/cfg.ml: Array Format Instr Int List Opcode Pred
