lib/sass/reg.mli: Format
