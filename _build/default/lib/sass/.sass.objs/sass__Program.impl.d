lib/sass/program.ml: Array Cfg Domtree Format Instr List Opcode Printf Reg
