lib/sass/reg.ml: Format Int Printf
