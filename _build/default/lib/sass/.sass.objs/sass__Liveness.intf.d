lib/sass/liveness.mli: Instr Pred Reg
