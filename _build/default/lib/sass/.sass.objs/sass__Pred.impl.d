lib/sass/pred.ml: Format Int Printf
