lib/sass/domtree.ml: Array Cfg List
