lib/sass/cfg.mli: Format Instr
