lib/sass/liveness.ml: Array Cfg Instr List Pred Reg
