lib/sass/opcode.mli: Format
