lib/sass/domtree.mli: Cfg
