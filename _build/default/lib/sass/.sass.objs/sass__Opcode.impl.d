lib/sass/opcode.ml: Format Printf
