lib/sass/pred.mli: Format
