lib/sass/instr.mli: Format Opcode Pred Reg
