lib/sass/program.mli: Format Instr
