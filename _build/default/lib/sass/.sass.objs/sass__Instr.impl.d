lib/sass/instr.ml: Format List Opcode Pred Reg
