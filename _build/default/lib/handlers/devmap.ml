type t = {
  device : Gpu.Device.t;
  base : int;
  capacity : int;
  val_slots : int;
  stride : int;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let create device ~capacity ~val_slots =
  let capacity = round_pow2 capacity in
  let stride = 8 * (1 + val_slots) in
  let base = Gpu.Device.malloc device (capacity * stride) in
  Gpu.Device.memset device ~addr:base ~len:(capacity * stride) '\000';
  { device; base; capacity; val_slots; stride }

let capacity t = t.capacity

let entry_addr t i = t.base + (i * t.stride)

let find_or_insert t ~ctx ~key ~init =
  if key = 0 then invalid_arg "Devmap: key must be nonzero";
  let mask = t.capacity - 1 in
  let h = (key * 0x9E3779B1) land Gpu.Value.mask in
  let rec probe i tries =
    if tries > t.capacity then failwith "Devmap: table full";
    let ea = entry_addr t (i land mask) in
    (* One charged CAS per probe, as a device implementation pays. *)
    let seen =
      Sassi.Intrinsics.atomic_cas_u32 ctx ea ~compare:0 ~swap:key
    in
    if seen = 0 then begin
      (* Freshly inserted: write initial values. *)
      Array.iteri
        (fun k v -> Sassi.Intrinsics.write_u64 ctx (ea + 8 + (8 * k)) v)
        init;
      ea + 8
    end
    else if seen = key then ea + 8
    else probe (i + 1) (tries + 1)
  in
  probe (h land mask) 0

let zero t =
  Gpu.Device.memset t.device ~addr:t.base ~len:(t.capacity * t.stride) '\000'

let entries t =
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let ea = entry_addr t i in
    let key = Gpu.Device.read_u64 t.device ea in
    if key <> 0 then begin
      let values =
        Array.init t.val_slots (fun k ->
            Gpu.Device.read_u64 t.device (ea + 8 + (8 * k)))
      in
      out := (key, values) :: !out
    end
  done;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !out
