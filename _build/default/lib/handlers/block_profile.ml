type t = {
  table : Devmap.t;
  entry_exit : Cupti.Counters.t;  (** slot 0: entries, slot 1: exits *)
}

type block_count = {
  ins_addr : int;
  warp_execs : int;
  thread_execs : int;
}

let create device =
  { table = Devmap.create device ~capacity:4096 ~val_slots:2;
    entry_exit = Cupti.Counters.alloc device ~slots:2 }

let block_handler t =
  Sassi.Handler.make ~name:"block_profile" (fun ctx ->
      let open Sassi in
      let stats =
        Devmap.find_or_insert t.table ~ctx
          ~key:(Params.Before.ins_addr ctx)
          ~init:[| 0; 0 |]
      in
      Intrinsics.atomic_add_u64 ctx stats 1;
      Intrinsics.atomic_add_u64 ctx (stats + 8) (Hctx.num_active ctx))

let entry_handler t =
  Sassi.Handler.make ~name:"kernel_entry" (fun ctx ->
      Sassi.Intrinsics.atomic_add_u64 ctx
        (Cupti.Counters.addr ~slot:0 t.entry_exit)
        1)

let exit_handler t =
  Sassi.Handler.make ~name:"kernel_exit" (fun ctx ->
      Sassi.Intrinsics.atomic_add_u64 ctx
        (Cupti.Counters.addr ~slot:1 t.entry_exit)
        1)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Basic_block ] [], block_handler t);
    (Sassi.Select.before [ Sassi.Select.Kernel_entry ] [], entry_handler t);
    (Sassi.Select.before [ Sassi.Select.Kernel_exit ] [], exit_handler t) ]

let blocks t =
  Devmap.entries t.table
  |> List.map (fun (key, values) ->
      { ins_addr = key; warp_execs = values.(0); thread_execs = values.(1) })
  |> List.sort (fun a b -> Int.compare b.warp_execs a.warp_execs)

let entries t = (Cupti.Counters.read t.entry_exit).(0)

let exits t = (Cupti.Counters.read t.entry_exit).(1)

let reset t =
  Devmap.zero t.table;
  Cupti.Counters.zero t.entry_exit
