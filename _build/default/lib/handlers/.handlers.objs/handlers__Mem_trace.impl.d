lib/handlers/mem_trace.ml: Array Hctx List Params Sassi
