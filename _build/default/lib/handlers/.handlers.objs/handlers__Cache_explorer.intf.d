lib/handlers/cache_explorer.mli: Format Mem_trace
