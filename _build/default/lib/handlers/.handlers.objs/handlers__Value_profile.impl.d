lib/handlers/value_profile.ml: Array Devmap Format Gpu Hctx Intrinsics List Params Sass Sassi String
