lib/handlers/opcode_hist.ml: Cupti Sassi
