lib/handlers/error_inject.mli: Sassi
