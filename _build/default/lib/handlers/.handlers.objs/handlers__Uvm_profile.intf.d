lib/handlers/uvm_profile.mli: Gpu Sassi
