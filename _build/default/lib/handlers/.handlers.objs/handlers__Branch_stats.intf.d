lib/handlers/branch_stats.mli: Gpu Sassi
