lib/handlers/mem_trace.mli: Sassi
