lib/handlers/block_profile.mli: Gpu Sassi
