lib/handlers/devmap.ml: Array Gpu Int List Sassi
