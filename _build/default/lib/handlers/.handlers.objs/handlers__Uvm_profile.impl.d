lib/handlers/uvm_profile.ml: Gpu Hashtbl Hctx Int List Params Sassi
