lib/handlers/opcode_hist.mli: Gpu Sassi
