lib/handlers/value_profile.mli: Format Gpu Sassi
