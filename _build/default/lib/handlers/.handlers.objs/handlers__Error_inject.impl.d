lib/handlers/error_inject.ml: Gpu Hashtbl Hctx List Option Params Random Sass Sassi
