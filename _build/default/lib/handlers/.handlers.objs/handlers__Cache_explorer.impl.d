lib/handlers/cache_explorer.ml: Array Format Gpu List Mem_trace
