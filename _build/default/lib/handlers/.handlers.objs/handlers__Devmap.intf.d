lib/handlers/devmap.mli: Gpu Sassi
