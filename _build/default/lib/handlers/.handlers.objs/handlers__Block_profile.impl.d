lib/handlers/block_profile.ml: Array Cupti Devmap Hctx Int Intrinsics List Params Sassi
