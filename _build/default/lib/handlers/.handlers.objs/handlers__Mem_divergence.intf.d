lib/handlers/mem_divergence.mli: Gpu Sassi
