lib/handlers/mem_divergence.ml: Array Cupti Intrinsics Params Sassi
