lib/handlers/branch_stats.ml: Array Devmap Hctx Int Intrinsics List Params Sassi
