(** Basic-block execution profiling, built on SASSI's structural
    instrumentation points (paper Section 3.1: "SASSI supports
    instrumenting basic block headers as well as kernel entries and
    exits"). Counts warp- and thread-level executions per block
    header, plus kernel entries/exits — enough to reconstruct an
    execution-weighted CFG. *)

type t

type block_count = {
  ins_addr : int;  (** address of the block's first instruction *)
  warp_execs : int;
  thread_execs : int;
}

val create : Gpu.Device.t -> t

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val blocks : t -> block_count list
(** Sorted by decreasing warp executions. *)

val entries : t -> int
(** Warp-level kernel entries observed. *)

val exits : t -> int

val reset : t -> unit
