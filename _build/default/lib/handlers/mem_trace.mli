(** Memory-trace collection (paper Section 9.4, "Driving other
    simulators"): a SASSI handler that records every global-memory
    warp access — PC, read/write, width, and the per-lane effective
    addresses — into a host-side trace that separate tools (such as
    {!Cache_explorer}) replay. *)

type access = {
  a_pc : int;  (** instruction address *)
  a_write : bool;
  a_width : int;  (** bytes per lane *)
  a_addrs : int array;  (** effective address of each executing lane *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the trace (default 1_000_000 accesses); further
    accesses are counted but not stored. *)

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val trace : t -> access list
(** In execution order. *)

val length : t -> int

val dropped : t -> int
(** Accesses beyond capacity. *)

val clear : t -> unit
