(** Case Study IV (paper Section 8): transient-error injection.

    Three steps, as in the paper:
    + {b Profile}: instrument after every instruction that writes a
      general-purpose or predicate register (excluding predicated-off
      lanes) and count dynamic instructions per thread;
    + {b Select}: statistically pick injection sites — tuples of
      (kernel, dynamic invocation, thread, dynamic instruction index,
      destination seed, bit seed) — on the host;
    + {b Inject}: re-run with a handler that flips one bit in one
      destination register (GPR or predicate) of the selected dynamic
      instruction, then classify the run's outcome.

    Per-thread profile tallies live host-side (they are written by the
    handler and only ever read after the kernel completes); each
    update is charged to the simulated machine like the device atomic
    it stands for. *)

type target = {
  t_kernel : string;
  t_invocation : int;
  t_thread : int;  (** flat global thread id *)
  t_instr : int;  (** 0-based dynamic instruction index in that thread *)
  t_dst_seed : int;
  t_bit_seed : int;
}

type outcome =
  | Masked  (** outputs identical to the fault-free run *)
  | Crash of string  (** architectural trap (bad address, ...) *)
  | Hang
  | Failure_symptom of string  (** device-detected failure *)
  | Sdc_stdout  (** only the secondary (stdout-like) output differs *)
  | Sdc_output  (** the primary output file differs *)

val outcome_to_string : outcome -> string

(** {1 Profiling pass} *)

module Profile : sig
  type t

  val create : unit -> t

  val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

  val total_dynamic_instrs : t -> int

  val pick_targets : t -> seed:int -> n:int -> target list
  (** Uniform over the dynamic-instruction population, with fresh
      destination and bit seeds per target. *)
end

(** {1 Injection pass} *)

val injection_pairs :
  target -> injected:bool ref -> (Sassi.Select.spec * Sassi.Handler.t) list
(** Handler that fires once at the target site, flipping one bit of a
    randomly selected destination (GPR value bit, or a predicate
    destination). Sets [injected] when the flip happened. *)

(** {1 Outcome classification} *)

val classify :
  reference:string * string -> (unit -> string * string) -> outcome
(** [classify ~reference run] executes [run] (which returns
    (primary output digest, secondary output digest)), mapping traps
    to crash/hang/failure-symptom outcomes and output differences to
    SDC categories. *)
