type t = { counters : Cupti.Counters.t }

let line_bytes = 32

let offset_bits = 5

let create device =
  { counters = Cupti.Counters.alloc device ~slots:(32 * 32) }

(* Figure 6's handler: filter predicated-off lanes, filter non-global
   accesses, compute each lane's line address, then iteratively elect
   a leader and retire all lanes matching its line — counting unique
   lines — and finally tally into the occupancy x divergence matrix. *)
let handler t =
  Sassi.Handler.make ~name:"mem_divergence" (fun ctx ->
      let open Sassi in
      if Params.Memory.is_global ctx then begin
        let workset =
          Intrinsics.ballot ctx (fun lane ->
              Params.Before.will_execute ctx ~lane)
        in
        if workset <> 0 then begin
          let line lane =
            Params.Memory.address ctx ~lane lsr offset_bits
          in
          let num_active = Intrinsics.popc ctx workset in
          let rec count_unique workset unique =
            if workset = 0 then unique
            else begin
              let leader = Intrinsics.ffs ctx workset - 1 in
              let leaders_line = Intrinsics.shfl ctx line ~src_lane:leader in
              let not_matching =
                Intrinsics.ballot ctx (fun lane -> line lane <> leaders_line)
              in
              count_unique (workset land not_matching) (unique + 1)
            end
          in
          let unique = count_unique workset 0 in
          let slot = ((num_active - 1) * 32) + (unique - 1) in
          Intrinsics.atomic_add_u64 ctx
            (Cupti.Counters.addr ~slot t.counters)
            1
        end
      end)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ],
     handler t) ]

let matrix t =
  let flat = Cupti.Counters.read t.counters in
  Array.init 32 (fun a -> Array.init 32 (fun u -> flat.((a * 32) + u)))

let pmf t =
  let m = matrix t in
  let per_unique = Array.make 32 0.0 in
  let total = ref 0.0 in
  for a = 0 to 31 do
    for u = 0 to 31 do
      let thread_accesses = float_of_int ((a + 1) * m.(a).(u)) in
      per_unique.(u) <- per_unique.(u) +. thread_accesses;
      total := !total +. thread_accesses
    done
  done;
  if !total > 0.0 then Array.map (fun x -> x /. !total) per_unique
  else per_unique

let fully_diverged_fraction t =
  let m = matrix t in
  let diag = ref 0.0 in
  let total = ref 0.0 in
  for a = 0 to 31 do
    for u = 0 to 31 do
      let thread_accesses = float_of_int ((a + 1) * m.(a).(u)) in
      total := !total +. thread_accesses;
      if u = a then diag := !diag +. thread_accesses
    done
  done;
  if !total > 0.0 then !diag /. !total else 0.0

let reset t = Cupti.Counters.zero t.counters
