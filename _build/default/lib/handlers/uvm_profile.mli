(** Heterogeneous (CPU + GPU) sharing analysis, the paper's Section
    9.4 Unified-Virtual-Memory prototype: device-side SASSI
    instrumentation traces the pages GPU threads touch while a
    host-side hook traces the pages the CPU touches (the memcpy
    traffic); correlating the streams yields per-page sharing and an
    estimate of page migrations in a UVM system that moves a page on
    first touch by the other processor. *)

type page_stats = {
  page : int;  (** page number *)
  cpu_reads : int;
  cpu_writes : int;
  gpu_reads : int;
  gpu_writes : int;
  migrations : int;  (** ownership changes after first touch *)
}

type summary = {
  page_bytes : int;
  cpu_only : int;  (** pages touched only by the CPU *)
  gpu_only : int;
  shared : int;  (** pages touched by both processors *)
  total_migrations : int;
}

type t

val create : ?page_bytes:int -> Gpu.Device.t -> t
(** Installs the host-access hook immediately; GPU-side tracing comes
    from attaching {!pairs}. [page_bytes] defaults to 4096. *)

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val detach_host : t -> unit
(** Removes the host-access hook. *)

val pages : t -> page_stats list
(** Sorted by decreasing migration count, then by total touches. *)

val summary : t -> summary

val reset : t -> unit
