(** Case Study III (paper Section 7): value profiling, the Figure 9
    handler. After every register-writing instruction it tracks, per
    static instruction and destination register:
    - which bits of the written values were constant across the whole
      run ([constantOnes] / [constantZeros] via atomic AND), and
    - whether the write was scalar (all threads in the warp wrote the
      same value). *)

type t

type instr_profile = {
  ins_addr : int;
  weight : int;  (** dynamic executions (warp level) *)
  num_dsts : int;
  reg_nums : int array;
  constant_ones : int array;  (** bits always 1, per destination *)
  constant_zeros : int array;  (** bits always 0 *)
  is_scalar : bool array;
}

(** Table 2 aggregates (percentages in [0, 100]). *)
type summary = {
  dynamic_const_bits_pct : float;
  dynamic_scalar_pct : float;
  static_const_bits_pct : float;
  static_scalar_pct : float;
}

val create : Gpu.Device.t -> t

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val profiles : t -> instr_profile list

val summary : t -> summary

val constant_bit_count : instr_profile -> int -> int
(** Bits of destination [k] that never varied. *)

val pp_register_profile : Format.formatter -> instr_profile -> unit
(** The per-register [00000000000000TTTT...] rendering from
    Section 7.2. *)

val reset : t -> unit
