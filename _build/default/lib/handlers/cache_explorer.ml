type config = {
  c_size_bytes : int;
  c_assoc : int;
  c_line_bytes : int;
}

type result = {
  r_config : config;
  r_accesses : int;
  r_transactions : int;
  r_hits : int;
  r_misses : int;
}

let miss_rate r =
  if r.r_transactions = 0 then 0.0
  else float_of_int r.r_misses /. float_of_int r.r_transactions

let replay trace config =
  let cache =
    Gpu.Cache.create ~name:"explorer" ~size_bytes:config.c_size_bytes
      ~assoc:config.c_assoc ~line_bytes:config.c_line_bytes
  in
  let accesses = ref 0 in
  let transactions = ref 0 in
  List.iter
    (fun (a : Mem_trace.access) ->
       incr accesses;
       let pairs =
         Array.to_list a.Mem_trace.a_addrs
         |> List.map (fun addr -> (addr, a.Mem_trace.a_width))
       in
       let lines =
         Gpu.Memsys.coalesce ~line_bytes:config.c_line_bytes pairs
       in
       List.iter
         (fun line ->
            incr transactions;
            ignore (Gpu.Cache.access cache (line * config.c_line_bytes)))
         lines)
    trace;
  { r_config = config;
    r_accesses = !accesses;
    r_transactions = !transactions;
    r_hits = Gpu.Cache.hits cache;
    r_misses = Gpu.Cache.misses cache }

let sweep trace configs = List.map (replay trace) configs

let default_sweep =
  List.map
    (fun kib -> { c_size_bytes = kib * 1024; c_assoc = 4; c_line_bytes = 32 })
    [ 4; 8; 16; 32; 64; 128 ]
  @ List.map
      (fun assoc -> { c_size_bytes = 32 * 1024; c_assoc = assoc; c_line_bytes = 32 })
      [ 1; 2; 8; 16 ]

let pp_result ppf r =
  Format.fprintf ppf
    "%3dKiB %2d-way %2dB lines: %7d accesses, %8d transactions, miss rate \
     %5.1f%%"
    (r.r_config.c_size_bytes / 1024)
    r.r_config.c_assoc r.r_config.c_line_bytes r.r_accesses r.r_transactions
    (100.0 *. miss_rate r)
