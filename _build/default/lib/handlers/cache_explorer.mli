(** A standalone memory-hierarchy simulator driven by SASSI-collected
    traces — the paper's Section 9.4 suggestion realized: sweep cache
    configurations offline over one recorded execution instead of
    re-running the application. *)

type config = {
  c_size_bytes : int;
  c_assoc : int;
  c_line_bytes : int;
}

type result = {
  r_config : config;
  r_accesses : int;  (** warp-level accesses replayed *)
  r_transactions : int;  (** after per-warp coalescing *)
  r_hits : int;
  r_misses : int;
}

val miss_rate : result -> float

val replay : Mem_trace.access list -> config -> result
(** Coalesces each warp access at the configuration's line size, then
    probes a single cache level (LRU, allocate-on-miss). *)

val sweep : Mem_trace.access list -> config list -> result list

val default_sweep : config list
(** Cache sizes 4..128 KiB at 4-way/32 B, plus associativity 1..16 at
    32 KiB. *)

val pp_result : Format.formatter -> result -> unit
