(** Case Study II (paper Section 6): memory address divergence, the
    Figure 6 handler. For every global-memory warp access the handler
    counts the unique 32-byte cache lines requested and tallies a
    32x32 (active-threads x unique-lines) matrix — the data behind
    Figures 7 and 8. *)

type t

val line_bytes : int
(** 32, the granularity the paper uses. *)

val create : Gpu.Device.t -> t

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val matrix : t -> int array array
(** [m.(active-1).(unique-1)]: number of warp-level accesses with that
    occupancy and divergence (Figure 8's plot). *)

val pmf : t -> float array
(** [pmf.(u-1)]: fraction of {e thread-level} accesses issued from
    warps requesting [u] unique lines (Figure 7's distribution). *)

val fully_diverged_fraction : t -> float
(** Fraction of thread-level accesses from warps where every active
    thread requested a distinct line. *)

val reset : t -> unit
