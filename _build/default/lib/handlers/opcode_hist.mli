(** The pedagogical handler of the paper's Figure 3: classify every
    dynamic instruction into six overlapping categories with
    per-thread [atomicAdd]s into a device counter array. *)

type t

type counts = {
  memory : int;
  extended_memory : int;  (** memory accesses wider than 4 bytes *)
  control : int;
  sync : int;
  numeric : int;
  texture : int;
  total : int;
}

val create : Gpu.Device.t -> t
(** Allocates the device counters. *)

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list
(** Instrumentation to pass to {!Sassi.Runtime.attach}: before all
    instructions, with memory info. *)

val read : t -> counts
(** Copy the counters to the host (thread-level dynamic counts). *)

val reset : t -> unit
