type access = {
  a_pc : int;
  a_write : bool;
  a_width : int;
  a_addrs : int array;
}

type t = {
  capacity : int;
  mutable entries : access list;  (* reversed *)
  mutable n : int;
  mutable dropped : int;
}

let create ?(capacity = 1_000_000) () =
  { capacity; entries = []; n = 0; dropped = 0 }

let handler t =
  Sassi.Handler.make ~name:"mem_trace" (fun ctx ->
      let open Sassi in
      if Params.Memory.is_global ctx then begin
        let lanes =
          List.filter
            (fun lane -> Params.Before.will_execute ctx ~lane)
            (Hctx.active_lanes ctx)
        in
        if lanes <> [] then begin
          if t.n >= t.capacity then t.dropped <- t.dropped + 1
          else begin
            let access =
              { a_pc = Params.Before.ins_addr ctx;
                a_write = Params.Memory.is_store ctx;
                a_width = Params.Memory.width ctx;
                a_addrs =
                  Array.of_list
                    (List.map
                       (fun lane -> Params.Memory.address ctx ~lane)
                       lanes) }
            in
            t.entries <- access :: t.entries;
            t.n <- t.n + 1
          end
        end
      end)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ],
     handler t) ]

let trace t = List.rev t.entries

let length t = t.n

let dropped t = t.dropped

let clear t =
  t.entries <- [];
  t.n <- 0;
  t.dropped <- 0
