type owner =
  | Cpu
  | Gpu_owner

type page_record = {
  mutable cpu_reads : int;
  mutable cpu_writes : int;
  mutable gpu_reads : int;
  mutable gpu_writes : int;
  mutable migrations : int;
  mutable owner : owner;
}

type page_stats = {
  page : int;
  cpu_reads : int;
  cpu_writes : int;
  gpu_reads : int;
  gpu_writes : int;
  migrations : int;
}

type summary = {
  page_bytes : int;
  cpu_only : int;
  gpu_only : int;
  shared : int;
  total_migrations : int;
}

type t = {
  device : Gpu.Device.t;
  page_bytes : int;
  table : (int, page_record) Hashtbl.t;
}

let record t page owner_side ~write =
  let r =
    match Hashtbl.find_opt t.table page with
    | Some r -> r
    | None ->
      let r =
        { cpu_reads = 0; cpu_writes = 0; gpu_reads = 0; gpu_writes = 0;
          migrations = 0; owner = owner_side }
      in
      Hashtbl.replace t.table page r;
      r
  in
  if r.owner <> owner_side then begin
    (* First-touch migration: the page moves to the toucher. *)
    r.migrations <- r.migrations + 1;
    r.owner <- owner_side
  end;
  (match owner_side, write with
   | Cpu, false -> r.cpu_reads <- r.cpu_reads + 1
   | Cpu, true -> r.cpu_writes <- r.cpu_writes + 1
   | Gpu_owner, false -> r.gpu_reads <- r.gpu_reads + 1
   | Gpu_owner, true -> r.gpu_writes <- r.gpu_writes + 1)

let create ?(page_bytes = 4096) device =
  let t = { device; page_bytes; table = Hashtbl.create 256 } in
  Gpu.Device.set_host_access_hook device
    (Some
       (fun ~addr ~bytes ~write ->
          let first = addr / page_bytes in
          let last = (addr + max 1 bytes - 1) / page_bytes in
          for p = first to last do
            record t p Cpu ~write
          done));
  t

(* Device side: one charged page-touch record per unique page a warp
   access covers (the real prototype logs to a device buffer; we
   charge equivalently and correlate host-side). *)
let handler t =
  Sassi.Handler.make ~name:"uvm_profile" (fun ctx ->
      let open Sassi in
      if Params.Memory.is_global ctx then begin
        let write = Params.Memory.is_store ctx in
        let pages = ref [] in
        List.iter
          (fun lane ->
             if Params.Before.will_execute ctx ~lane then begin
               let p = Params.Memory.address ctx ~lane / t.page_bytes in
               if not (List.mem p !pages) then pages := p :: !pages
             end)
          (Hctx.active_lanes ctx);
        Hctx.charge ctx ~ops:(List.length !pages) ~cycles:4;
        List.iter (fun p -> record t p Gpu_owner ~write) !pages
      end)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ],
     handler t) ]

let detach_host t = Gpu.Device.set_host_access_hook t.device None

let pages t =
  Hashtbl.fold
    (fun page (r : page_record) acc ->
       { page;
         cpu_reads = r.cpu_reads;
         cpu_writes = r.cpu_writes;
         gpu_reads = r.gpu_reads;
         gpu_writes = r.gpu_writes;
         migrations = r.migrations }
       :: acc)
    t.table []
  |> List.sort (fun a b ->
      match Int.compare b.migrations a.migrations with
      | 0 ->
        Int.compare
          (b.cpu_reads + b.cpu_writes + b.gpu_reads + b.gpu_writes)
          (a.cpu_reads + a.cpu_writes + a.gpu_reads + a.gpu_writes)
      | c -> c)

let summary t =
  let cpu_only = ref 0 and gpu_only = ref 0 and shared = ref 0 in
  let migrations = ref 0 in
  Hashtbl.iter
    (fun _ (r : page_record) ->
       let cpu = r.cpu_reads + r.cpu_writes > 0 in
       let gpu = r.gpu_reads + r.gpu_writes > 0 in
       (match cpu, gpu with
        | true, true -> incr shared
        | true, false -> incr cpu_only
        | false, true -> incr gpu_only
        | false, false -> ());
       migrations := !migrations + r.migrations)
    t.table;
  { page_bytes = t.page_bytes;
    cpu_only = !cpu_only;
    gpu_only = !gpu_only;
    shared = !shared;
    total_migrations = !migrations }

let reset t = Hashtbl.reset t.table
