type t = { table : Devmap.t }

type instr_profile = {
  ins_addr : int;
  weight : int;
  num_dsts : int;
  reg_nums : int array;
  constant_ones : int array;
  constant_zeros : int array;
  is_scalar : bool array;
}

type summary = {
  dynamic_const_bits_pct : float;
  dynamic_scalar_pct : float;
  static_const_bits_pct : float;
  static_scalar_pct : float;
}

(* Value slots per entry: weight, numDsts, then per destination
   (max 2): regNum, constantOnes, constantZeros, isScalar. *)
let slots_per_dst = 4

let val_slots = 2 + (2 * slots_per_dst)

let slot_weight = 0

let slot_num_dsts = 1

let dst_slot k field = 2 + (k * slots_per_dst) + field

let create device =
  { table = Devmap.create device ~capacity:8192 ~val_slots }

(* Figure 9's handler. *)
let handler t =
  Sassi.Handler.make ~name:"value_profile" (fun ctx ->
      let open Sassi in
      (* Only lanes whose guard held actually produced a value. *)
      let executed =
        Intrinsics.ballot ctx (fun lane ->
            Params.Before.will_execute ctx ~lane)
      in
      let num_dsts = Params.Registers.num_gpr_dsts ctx in
      if num_dsts > 0 && executed <> 0 then begin
        let leader = Intrinsics.ffs ctx executed - 1 in
        let executed_lane lane = executed land (1 lsl lane) <> 0 in
        let init = Array.make val_slots 0 in
        init.(slot_num_dsts) <- num_dsts;
        for d = 0 to num_dsts - 1 do
          init.(dst_slot d 0) <-
            Sass.Reg.index (Params.Registers.dst_reg ctx d);
          init.(dst_slot d 1) <- 0xFFFFFFFF;  (* constantOnes *)
          init.(dst_slot d 2) <- 0xFFFFFFFF;  (* constantZeros *)
          init.(dst_slot d 3) <- 1  (* isScalar *)
        done;
        let stats =
          Devmap.find_or_insert t.table ~ctx
            ~key:(Params.Before.ins_addr ctx)
            ~init
        in
        Intrinsics.atomic_add_u64 ctx (stats + (8 * slot_weight)) 1;
        for d = 0 to num_dsts - 1 do
          (* Read each lane's value once, as the CUDA handler's
             valueInReg register read does (Figure 9). *)
          let values = Array.make 32 0xFFFFFFFF in
          List.iter
            (fun lane ->
               if executed_lane lane then
                 values.(lane) <- Params.Registers.value ctx ~lane d)
            (Hctx.active_lanes ctx);
          (* Atomic ANDs track constant bits across every thread;
             masked lanes contribute the AND identity. *)
          Intrinsics.per_lane_atomic_and_u32 ctx (fun lane ->
              (stats + (8 * dst_slot d 1), values.(lane)));
          Intrinsics.per_lane_atomic_and_u32 ctx (fun lane ->
              ( stats + (8 * dst_slot d 2),
                if executed_lane lane then
                  lnot values.(lane) land Gpu.Value.mask
                else 0xFFFFFFFF ));
          (* Scalar check: do all executed lanes agree with the leader? *)
          let leader_value = values.(leader) in
          let all_same =
            Intrinsics.all ctx (fun lane ->
                (not (executed_lane lane)) || values.(lane) = leader_value)
          in
          Intrinsics.atomic_and_u32 ctx
            (stats + (8 * dst_slot d 3))
            (if all_same then 1 else 0)
        done
      end)

let pairs t =
  [ (Sassi.Select.after [ Sassi.Select.Reg_writes ] [ Sassi.Select.Reg_info ],
     handler t) ]

let profiles t =
  Devmap.entries t.table
  |> List.map (fun (key, values) ->
      let num_dsts = min 2 values.(slot_num_dsts) in
      { ins_addr = key;
        weight = values.(slot_weight);
        num_dsts;
        reg_nums = Array.init num_dsts (fun d -> values.(dst_slot d 0));
        constant_ones =
          Array.init num_dsts (fun d -> values.(dst_slot d 1) land 0xFFFFFFFF);
        constant_zeros =
          Array.init num_dsts (fun d -> values.(dst_slot d 2) land 0xFFFFFFFF);
        is_scalar = Array.init num_dsts (fun d -> values.(dst_slot d 3) <> 0) })

let constant_bit_count p k =
  Gpu.Value.popc (p.constant_ones.(k) lor p.constant_zeros.(k))

let summary t =
  let ps = profiles t in
  let dyn_bits = ref 0.0 and dyn_const = ref 0.0 in
  let dyn_writes = ref 0.0 and dyn_scalar = ref 0.0 in
  let st_bits = ref 0.0 and st_const = ref 0.0 in
  let st_writes = ref 0.0 and st_scalar = ref 0.0 in
  List.iter
    (fun p ->
       let w = float_of_int p.weight in
       for d = 0 to p.num_dsts - 1 do
         let const = float_of_int (constant_bit_count p d) in
         dyn_bits := !dyn_bits +. (32.0 *. w);
         dyn_const := !dyn_const +. (const *. w);
         st_bits := !st_bits +. 32.0;
         st_const := !st_const +. const;
         dyn_writes := !dyn_writes +. w;
         st_writes := !st_writes +. 1.0;
         if p.is_scalar.(d) then begin
           dyn_scalar := !dyn_scalar +. w;
           st_scalar := !st_scalar +. 1.0
         end
       done)
    ps;
  let pct num den = if den > 0.0 then 100.0 *. num /. den else 0.0 in
  { dynamic_const_bits_pct = pct !dyn_const !dyn_bits;
    dynamic_scalar_pct = pct !dyn_scalar !dyn_writes;
    static_const_bits_pct = pct !st_const !st_bits;
    static_scalar_pct = pct !st_scalar !st_writes }

let pp_register_profile ppf p =
  for d = 0 to p.num_dsts - 1 do
    let scalar_mark = if p.is_scalar.(d) then "*" else "" in
    let bits =
      String.init 32 (fun i ->
          let bit = 31 - i in
          let one = p.constant_ones.(d) land (1 lsl bit) <> 0 in
          let zero = p.constant_zeros.(d) land (1 lsl bit) <> 0 in
          if one then '1' else if zero then '0' else 'T')
    in
    Format.fprintf ppf "R%d%s <- [%s]@." p.reg_nums.(d) scalar_mark bits
  done

let reset t = Devmap.zero t.table
