(** Case Study I (paper Section 5): per-branch SIMT control-flow
    statistics, the Figure 4 handler. For every conditional branch the
    handler records how often it executed, how many threads were
    active / took it / fell through, and how often it split the warp. *)

type t

(** Per-branch counters, keyed by static branch address. *)
type branch = {
  ins_addr : int;
  total : int;  (** dynamic executions (warp level) *)
  active : int;  (** sum of active threads *)
  taken : int;
  not_taken : int;
  divergent : int;  (** executions that split the warp *)
}

(** Table 1 aggregates. *)
type summary = {
  static_branches : int;
  static_divergent : int;
  dynamic_branches : int;
  dynamic_divergent : int;
}

val create : Gpu.Device.t -> t

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val branches : t -> branch list
(** Sorted by decreasing dynamic execution count (Figure 5's order). *)

val summary : t -> summary

val reset : t -> unit
