type t = { table : Devmap.t }

type branch = {
  ins_addr : int;
  total : int;
  active : int;
  taken : int;
  not_taken : int;
  divergent : int;
}

type summary = {
  static_branches : int;
  static_divergent : int;
  dynamic_branches : int;
  dynamic_divergent : int;
}

let slot_total = 0

let slot_active = 1

let slot_taken = 2

let slot_not_taken = 3

let slot_divergent = 4

let create device =
  { table = Devmap.create device ~capacity:4096 ~val_slots:5 }

(* The Figure 4 handler, step for step: per-lane direction, warp-wide
   ballots, and leader-elected counter updates. *)
let handler t =
  Sassi.Handler.make ~name:"branch_stats" (fun ctx ->
      let open Sassi in
      let taken =
        Intrinsics.ballot ctx (fun lane ->
            Params.Cond_branch.direction ctx ~lane)
      in
      let active = ctx.Hctx.mask in
      let ntaken = active land lnot taken in
      let num_active = Intrinsics.popc ctx active in
      let num_taken = Intrinsics.popc ctx taken in
      let num_not_taken = Intrinsics.popc ctx ntaken in
      (* The first active thread writes the results. *)
      let stats =
        Devmap.find_or_insert t.table ~ctx
          ~key:(Params.Before.ins_addr ctx)
          ~init:[| 0; 0; 0; 0; 0 |]
      in
      Intrinsics.atomic_add_u64 ctx (stats + (8 * slot_total)) 1;
      Intrinsics.atomic_add_u64 ctx (stats + (8 * slot_active)) num_active;
      Intrinsics.atomic_add_u64 ctx (stats + (8 * slot_taken)) num_taken;
      Intrinsics.atomic_add_u64 ctx (stats + (8 * slot_not_taken))
        num_not_taken;
      if num_taken <> num_active && num_not_taken <> num_active then
        Intrinsics.atomic_add_u64 ctx (stats + (8 * slot_divergent)) 1)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Cond_control ]
       [ Sassi.Select.Branch_info ],
     handler t) ]

let branches t =
  Devmap.entries t.table
  |> List.map (fun (key, values) ->
      { ins_addr = key;
        total = values.(slot_total);
        active = values.(slot_active);
        taken = values.(slot_taken);
        not_taken = values.(slot_not_taken);
        divergent = values.(slot_divergent) })
  |> List.sort (fun a b -> Int.compare b.total a.total)

let summary t =
  let bs = branches t in
  { static_branches = List.length bs;
    static_divergent =
      List.length (List.filter (fun b -> b.divergent > 0) bs);
    dynamic_branches = List.fold_left (fun a b -> a + b.total) 0 bs;
    dynamic_divergent = List.fold_left (fun a b -> a + b.divergent) 0 bs }

let reset t = Devmap.zero t.table
