type t = { counters : Cupti.Counters.t }

type counts = {
  memory : int;
  extended_memory : int;
  control : int;
  sync : int;
  numeric : int;
  texture : int;
  total : int;
}

let create device = { counters = Cupti.Counters.alloc device ~slots:7 }

(* The handler mirrors Figure 3: all active threads bump each matching
   category. *)
let handler t =
  Sassi.Handler.make ~name:"opcode_hist" (fun ctx ->
      let bump slot =
        Sassi.Intrinsics.per_lane_atomic_add_u64 ctx (fun lane ->
            if Sassi.Params.Before.will_execute ctx ~lane then
              (Cupti.Counters.addr ~slot t.counters, 1)
            else (Cupti.Counters.addr ~slot t.counters, 0))
      in
      if Sassi.Params.Before.is_mem ctx then begin
        bump 0;
        if Sassi.Params.Memory.width ctx > 4 then bump 1
      end;
      if Sassi.Params.Before.is_control_xfer ctx then bump 2;
      if Sassi.Params.Before.is_sync ctx then bump 3;
      if Sassi.Params.Before.is_numeric ctx then bump 4;
      if Sassi.Params.Before.is_texture ctx then bump 5;
      bump 6)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.All ] [ Sassi.Select.Mem_info ],
     handler t) ]

let read t =
  match Cupti.Counters.read t.counters with
  | [| memory; extended_memory; control; sync; numeric; texture; total |] ->
    { memory; extended_memory; control; sync; numeric; texture; total }
  | _ -> assert false

let reset t = Cupti.Counters.zero t.counters
