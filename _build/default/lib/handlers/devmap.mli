(** A device-global open-addressing hash table keyed by instruction
    address — the [find(bp->GetInsAddr())] used by the paper's
    per-branch (Figure 4) and value-profiling (Figure 9) handlers.

    Each entry is a 64-bit key slot followed by [val_slots] 64-bit
    value slots. Lookup linearly probes with a charged CAS per probe,
    as a CUDA implementation would. Keys must be nonzero. *)

type t

val create : Gpu.Device.t -> capacity:int -> val_slots:int -> t
(** [capacity] is rounded up to a power of two. *)

val find_or_insert : t -> ctx:Sassi.Hctx.t -> key:int -> init:int array -> int
(** Returns the device address of the entry's value area, inserting
    with the given initial slot values (length <= [val_slots]) when
    the key is new.
    @raise Failure when the table is full. *)

val zero : t -> unit
(** Clears all entries. *)

val entries : t -> (int * int array) list
(** Host-side scan: (key, values) for every occupied entry, sorted by
    key. *)

val capacity : t -> int
