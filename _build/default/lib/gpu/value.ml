open Sass

let mask = 0xFFFFFFFF

let wrap x = x land mask

let signed x = if x land 0x80000000 <> 0 then x - 0x100000000 else x

let of_signed x = x land mask

let add a b = wrap (a + b)

let sub a b = wrap (a - b)

let mul a b = wrap (a * b)

let mad a b c = wrap ((a * b) + c)

let div ~sign a b =
  if b = 0 then mask
  else
    match sign with
    | Opcode.Unsigned -> wrap (a / b)
    | Opcode.Signed ->
      let sa = signed a and sb = signed b in
      (* OCaml division truncates toward zero, matching C/CUDA. *)
      of_signed (sa / sb)

let rem ~sign a b =
  if b = 0 then mask
  else
    match sign with
    | Opcode.Unsigned -> wrap (a mod b)
    | Opcode.Signed -> of_signed (signed a mod signed b)

let min_max ~cmp a b =
  let sa = signed a and sb = signed b in
  match cmp with
  | Opcode.Lt | Opcode.Le -> if sa < sb then a else b
  | Opcode.Gt | Opcode.Ge -> if sa > sb then a else b
  | Opcode.Eq | Opcode.Ne -> invalid_arg "Value.min_max: Eq/Ne"

let shl a n =
  let n = n land 0xFF in
  if n >= 32 then 0 else wrap (a lsl n)

let shr ~sign a n =
  let n = n land 0xFF in
  match sign with
  | Opcode.Unsigned -> if n >= 32 then 0 else a lsr n
  | Opcode.Signed ->
    if n >= 32 then if a land 0x80000000 <> 0 then mask else 0
    else of_signed (signed a asr n)

let logic op a b =
  match op with
  | Opcode.L_and -> a land b
  | Opcode.L_or -> a lor b
  | Opcode.L_xor -> a lxor b
  | Opcode.L_not -> wrap (lnot a)

let brev a =
  let r = ref 0 in
  for i = 0 to 31 do
    if a land (1 lsl i) <> 0 then r := !r lor (1 lsl (31 - i))
  done;
  !r

let popc a =
  let rec go a n = if a = 0 then n else go (a land (a - 1)) (n + 1) in
  go (wrap a) 0

let flo a =
  let a = wrap a in
  if a = 0 then mask
  else
    let rec go i = if a land (1 lsl i) <> 0 then i else go (i - 1) in
    go 31

let ffs a =
  let a = wrap a in
  if a = 0 then 0
  else
    let rec go i = if a land (1 lsl i) <> 0 then i + 1 else go (i + 1) in
    go 0

let compare_int ~cmp ~sign a b =
  let a, b =
    match sign with
    | Opcode.Signed -> (signed a, signed b)
    | Opcode.Unsigned -> (a, b)
  in
  match cmp with
  | Opcode.Lt -> a < b
  | Opcode.Le -> a <= b
  | Opcode.Gt -> a > b
  | Opcode.Ge -> a >= b
  | Opcode.Eq -> a = b
  | Opcode.Ne -> a <> b

let f32_of_bits bits = Int32.float_of_bits (Int32.of_int (signed bits))

let bits_of_f32 f = Int32.to_int (Int32.bits_of_float f) land mask

let round32 f = f32_of_bits (bits_of_f32 f)

let fadd a b = bits_of_f32 (f32_of_bits a +. f32_of_bits b)

let fsub a b = bits_of_f32 (f32_of_bits a -. f32_of_bits b)

let fmul a b = bits_of_f32 (f32_of_bits a *. f32_of_bits b)

let ffma a b c =
  (* Fused: a single rounding at the end, like the hardware FFMA. *)
  bits_of_f32 ((f32_of_bits a *. f32_of_bits b) +. f32_of_bits c)

let fmin_max ~cmp a b =
  let fa = f32_of_bits a and fb = f32_of_bits b in
  match cmp with
  | Sass.Opcode.Lt | Sass.Opcode.Le -> if fa < fb then a else b
  | Sass.Opcode.Gt | Sass.Opcode.Ge -> if fa > fb then a else b
  | Sass.Opcode.Eq | Sass.Opcode.Ne -> invalid_arg "Value.fmin_max: Eq/Ne"

let mufu op a =
  let f = f32_of_bits a in
  let r =
    match op with
    | Opcode.Rcp -> 1.0 /. f
    | Opcode.Sqrt -> sqrt f
    | Opcode.Rsq -> 1.0 /. sqrt f
    | Opcode.Ex2 -> Float.exp2 f
    | Opcode.Lg2 -> Float.log2 f
    | Opcode.Sin -> sin f
    | Opcode.Cos -> cos f
  in
  bits_of_f32 (round32 r)

let compare_f32 ~cmp a b =
  let fa = f32_of_bits a and fb = f32_of_bits b in
  match cmp with
  | Opcode.Lt -> fa < fb
  | Opcode.Le -> fa <= fb
  | Opcode.Gt -> fa > fb
  | Opcode.Ge -> fa >= fb
  | Opcode.Eq -> fa = fb
  | Opcode.Ne -> fa <> fb

let i2f ~sign a =
  let v =
    match sign with
    | Opcode.Signed -> float_of_int (signed a)
    | Opcode.Unsigned -> float_of_int a
  in
  bits_of_f32 v

let f2i ~sign a =
  (* Saturating conversion, clamped in the float domain so that huge
     magnitudes cannot overflow int_of_float. *)
  let f = f32_of_bits a in
  if Float.is_nan f then 0
  else
    match sign with
    | Opcode.Signed ->
      if f >= 2147483647.0 then 0x7FFFFFFF
      else if f <= -2147483648.0 then of_signed (-0x80000000)
      else of_signed (int_of_float (Float.trunc f))
    | Opcode.Unsigned ->
      if f >= 4294967295.0 then mask
      else if f <= 0.0 then 0
      else int_of_float (Float.trunc f)
