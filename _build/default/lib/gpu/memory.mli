(** Flat byte-addressed memory with little-endian multi-byte access.
    Used for global memory, shared memory, local (stack) memory, and
    the kernel-parameter constant bank. *)

type t

val create : space:Sass.Opcode.space -> int -> t
(** Zero-initialized memory of the given size; [space] labels faults. *)

val size : t -> int

val space : t -> Sass.Opcode.space

val read : t -> width:Sass.Opcode.width -> int -> int
(** Little-endian load. [W8]/[W16]/[W32] return the zero-extended
    pattern; [W64] returns the full 64-bit pattern in an OCaml int
    (63-bit overflow is tolerated for counter use).
    @raise Trap.Memory_fault on out-of-bounds access. *)

val write : t -> width:Sass.Opcode.width -> int -> int -> unit

val read_u64 : t -> int -> int

val write_u64 : t -> int -> int -> unit

val blit_from_bytes : t -> dst:int -> Bytes.t -> unit

val blit_to_bytes : t -> src:int -> Bytes.t -> unit

val fill : t -> pos:int -> len:int -> char -> unit
