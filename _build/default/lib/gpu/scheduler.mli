(** Block dispatch and per-SM warp scheduling.

    Blocks are assigned to SMs round-robin; each SM runs waves of
    resident blocks (bounded by the residency limit) with a
    round-robin ready-warp scheduler issuing [issue_width]
    instructions per cycle. SMs are simulated one after another —
    valid for CUDA's forward-progress model, where blocks may not
    depend on each other except through atomics. *)

val run : State.launch -> unit
(** Runs the launch to completion and fills [l_stats.cycles] with the
    maximum SM cycle count (the kernel time).

    @raise Trap.Hang if the watchdog expires or all live warps are
    blocked at an unreleasable barrier. *)
