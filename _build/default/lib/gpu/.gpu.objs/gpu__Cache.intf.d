lib/gpu/cache.mli:
