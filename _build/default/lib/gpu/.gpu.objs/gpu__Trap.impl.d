lib/gpu/trap.ml: Format Printf Sass
