lib/gpu/value.mli: Sass
