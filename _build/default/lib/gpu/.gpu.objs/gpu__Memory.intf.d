lib/gpu/memory.mli: Bytes Sass
