lib/gpu/device.ml: Array Config Hashtbl List Memory Memsys Printf Sass Scheduler State Stats Value
