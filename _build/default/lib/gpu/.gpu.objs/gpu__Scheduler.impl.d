lib/gpu/scheduler.ml: Array Config Exec List Memory Sass State Stats Trap
