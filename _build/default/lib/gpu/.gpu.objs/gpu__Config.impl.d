lib/gpu/config.ml: Format
