lib/gpu/memory.ml: Bytes Char Int32 Int64 Opcode Sass Trap Value
