lib/gpu/memsys.ml: Array Cache Config Hashtbl Int List Printf Stats
