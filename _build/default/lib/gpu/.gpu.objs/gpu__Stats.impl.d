lib/gpu/stats.ml: Format Sass
