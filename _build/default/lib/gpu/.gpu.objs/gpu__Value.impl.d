lib/gpu/value.ml: Float Int32 Opcode Sass
