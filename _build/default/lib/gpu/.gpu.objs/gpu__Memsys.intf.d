lib/gpu/memsys.mli: Config Stats
