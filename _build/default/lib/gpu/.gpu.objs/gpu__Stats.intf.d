lib/gpu/stats.mli: Format Sass
