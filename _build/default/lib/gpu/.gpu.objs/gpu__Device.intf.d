lib/gpu/device.mli: Config Sass State Stats
