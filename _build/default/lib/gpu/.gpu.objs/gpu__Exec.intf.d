lib/gpu/exec.mli: State
