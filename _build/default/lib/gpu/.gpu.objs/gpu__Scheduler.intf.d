lib/gpu/scheduler.mli: State
