lib/gpu/state.mli: Config Hashtbl Memory Memsys Sass Stats
