lib/gpu/exec.ml: Array Config Instr Lazy List Memory Memsys Opcode Pred Program Sass State Stats Trap Value
