lib/gpu/config.mli: Format
