lib/gpu/state.ml: Array Config Hashtbl Memory Memsys Sass Stats Value
