lib/gpu/cache.ml: Array
