lib/gpu/trap.mli: Sass
