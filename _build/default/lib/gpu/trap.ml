type fault_kind =
  | Out_of_bounds
  | Misaligned
  | Invalid_instruction

exception Memory_fault of {
    space : Sass.Opcode.space;
    addr : int;
    kind : fault_kind;
  }

exception Hang of { cycles : int }

exception Device_assert of string

let fault_kind_to_string = function
  | Out_of_bounds -> "out-of-bounds"
  | Misaligned -> "misaligned"
  | Invalid_instruction -> "invalid-instruction"

let describe = function
  | Memory_fault { space; addr; kind } ->
    Some
      (Printf.sprintf "memory fault: %s access at %s:0x%x"
         (fault_kind_to_string kind)
         (Format.asprintf "%a" Sass.Opcode.pp_space space)
         addr)
  | Hang { cycles } -> Some (Printf.sprintf "hang after %d cycles" cycles)
  | Device_assert msg -> Some (Printf.sprintf "device assert: %s" msg)
  | _ -> None
