type outcome =
  | Hit
  | Miss

type t = {
  name : string;
  sets : int;
  assoc : int;
  line_bytes : int;
  tags : int array;  (* sets * assoc; -1 = invalid *)
  stamps : int array;  (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~size_bytes ~assoc ~line_bytes =
  let lines = max 1 (size_bytes / line_bytes) in
  let sets = max 1 (lines / assoc) in
  { name;
    sets;
    assoc;
    line_bytes;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    tick = 0;
    hits = 0;
    misses = 0 }

let set_of t addr =
  let line = addr / t.line_bytes in
  line mod t.sets

let tag_of t addr = addr / t.line_bytes

let access t addr =
  t.tick <- t.tick + 1;
  let s = set_of t addr in
  let tag = tag_of t addr in
  let base = s * t.assoc in
  let found = ref (-1) in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = tag then found := w
  done;
  if !found >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(base + !found) <- t.tick;
    Hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Fill: evict the LRU way. *)
    let victim = ref 0 in
    for w = 1 to t.assoc - 1 do
      if t.stamps.(base + w) < t.stamps.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.tick;
    Miss
  end

let probe t addr =
  let s = set_of t addr in
  let tag = tag_of t addr in
  let base = s * t.assoc in
  let found = ref false in
  for w = 0 to t.assoc - 1 do
    if t.tags.(base + w) = tag then found := true
  done;
  !found

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let hits t = t.hits

let misses t = t.misses

let name t = t.name

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
