(** Bit-accurate 32-bit register values, stored in native [int]s in
    the range [0, 2{^32}). Float operations round to IEEE-754 single
    precision after every operation, matching single-precision GPU
    datapaths. *)

val mask : int
(** [0xFFFFFFFF]. *)

val wrap : int -> int
(** Truncate to 32 bits. *)

val signed : int -> int
(** Reinterpret a 32-bit pattern as a signed integer. *)

val of_signed : int -> int
(** Inverse of {!signed}. *)

val add : int -> int -> int

val sub : int -> int -> int

val mul : int -> int -> int

val mad : int -> int -> int -> int

val div : sign:Sass.Opcode.sign -> int -> int -> int
(** Division by zero yields [0xFFFFFFFF] (matching PTX). *)

val rem : sign:Sass.Opcode.sign -> int -> int -> int

val min_max : cmp:Sass.Opcode.cmp -> int -> int -> int
(** Signed min ([Lt]) or max ([Gt]). *)

val shl : int -> int -> int
(** Shift amounts >= 32 yield 0. *)

val shr : sign:Sass.Opcode.sign -> int -> int -> int

val logic : Sass.Opcode.logic -> int -> int -> int

val brev : int -> int

val popc : int -> int

val flo : int -> int
(** Index of the highest set bit; [0xFFFFFFFF] when the input is 0. *)

val ffs : int -> int
(** 1-based index of the lowest set bit; 0 when the input is 0
    (CUDA [__ffs] semantics). *)

val compare_int : cmp:Sass.Opcode.cmp -> sign:Sass.Opcode.sign -> int -> int -> bool

(** {1 Single-precision floats} *)

val f32_of_bits : int -> float

val bits_of_f32 : float -> int

val fadd : int -> int -> int

val fsub : int -> int -> int

val fmul : int -> int -> int

val ffma : int -> int -> int -> int

val fmin_max : cmp:Sass.Opcode.cmp -> int -> int -> int

val mufu : Sass.Opcode.mufu -> int -> int

val compare_f32 : cmp:Sass.Opcode.cmp -> int -> int -> bool

val i2f : sign:Sass.Opcode.sign -> int -> int

val f2i : sign:Sass.Opcode.sign -> int -> int
