(** The SIMT interpreter: executes one warp instruction at a time,
    maintaining the PDOM divergence stack, barrier state, memory
    system timing, and statistics.

    Divergence follows the classic post-dominator stack scheme: a
    divergent conditional branch replaces the top-of-stack entry with
    a continuation entry at the reconvergence PC plus one entry per
    path; an entry pops when its PC reaches its reconvergence PC. *)

val step : State.sm -> State.warp -> unit
(** Executes the instruction at the warp's current PC. Updates the
    warp's divergence stack, status, ready time, the SM cycle
    bookkeeping, and the launch statistics.

    @raise Trap.Memory_fault on an out-of-bounds or misaligned access.
    @raise Trap.Device_assert if an [HCALL] executes with no handler
    runtime installed. *)

val release_barrier_if_ready : State.block -> unit
(** Releases all warps waiting at the block barrier once every alive
    warp has arrived. Exposed for the scheduler and tests. *)
