open Sass

type t = {
  data : Bytes.t;
  space : Opcode.space;
}

let create ~space n = { data = Bytes.make n '\000'; space }

let size t = Bytes.length t.data

let space t = t.space

let check t addr bytes =
  if addr < 0 || addr + bytes > Bytes.length t.data then
    raise (Trap.Memory_fault
             { space = t.space; addr; kind = Trap.Out_of_bounds })

let read t ~width addr =
  match width with
  | Opcode.W8 ->
    check t addr 1;
    Char.code (Bytes.unsafe_get t.data addr)
  | Opcode.W16 ->
    check t addr 2;
    Bytes.get_uint16_le t.data addr
  | Opcode.W32 ->
    check t addr 4;
    Int32.to_int (Bytes.get_int32_le t.data addr) land Value.mask
  | Opcode.W64 ->
    check t addr 8;
    Int64.to_int (Bytes.get_int64_le t.data addr)

let write t ~width addr v =
  match width with
  | Opcode.W8 ->
    check t addr 1;
    Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))
  | Opcode.W16 ->
    check t addr 2;
    Bytes.set_uint16_le t.data addr (v land 0xFFFF)
  | Opcode.W32 ->
    check t addr 4;
    Bytes.set_int32_le t.data addr (Int32.of_int (Value.signed (v land Value.mask)))
  | Opcode.W64 ->
    check t addr 8;
    Bytes.set_int64_le t.data addr (Int64.of_int v)

let read_u64 t addr = read t ~width:Opcode.W64 addr

let write_u64 t addr v = write t ~width:Opcode.W64 addr v

let blit_from_bytes t ~dst src =
  check t dst (Bytes.length src);
  Bytes.blit src 0 t.data dst (Bytes.length src)

let blit_to_bytes t ~src dst =
  check t src (Bytes.length dst);
  Bytes.blit t.data src dst 0 (Bytes.length dst)

let fill t ~pos ~len c =
  check t pos len;
  Bytes.fill t.data pos len c
