(** Architectural traps raised by the simulated machine. These are the
    observable failure modes the error-injection case study classifies
    (crash, hang, failure symptom). *)

type fault_kind =
  | Out_of_bounds
  | Misaligned
  | Invalid_instruction

exception Memory_fault of {
    space : Sass.Opcode.space;
    addr : int;
    kind : fault_kind;
  }

exception Hang of { cycles : int }
(** The per-launch watchdog expired. *)

exception Device_assert of string
(** A kernel-detected failure (the "failure symptom" outcome). *)

val fault_kind_to_string : fault_kind -> string

val describe : exn -> string option
(** Short description for trap exceptions, [None] for other
    exceptions. *)
