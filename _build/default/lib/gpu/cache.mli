(** Set-associative tag-array cache model with LRU replacement.
    Tracks hits and misses for the timing model; data always lives in
    the backing {!Memory.t}, so only tags are modeled. *)

type t

type outcome =
  | Hit
  | Miss

val create : name:string -> size_bytes:int -> assoc:int -> line_bytes:int -> t

val access : t -> int -> outcome
(** Look up the line containing the address; on a miss the line is
    filled (allocate-on-miss for reads and writes alike). *)

val probe : t -> int -> bool
(** Non-updating lookup. *)

val invalidate_all : t -> unit

val hits : t -> int

val misses : t -> int

val name : t -> string

val reset_stats : t -> unit
