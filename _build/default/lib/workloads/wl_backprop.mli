(** Rodinia BACKPROP: one hidden-layer forward pass plus weight
    adjustment. *)

val workload : Workload.t
