(* Rodinia LAVAMD (structurally): particles in a 2-D box grid
   interacting with neighbours inside a cutoff. One thread per
   particle, loops over the 3x3 neighbour boxes and their particles,
   with the cutoff test splitting warps on particle positions. *)

open Kernel.Dsl

let boxes = 6  (* boxes per side *)

let per_box = 16

let kernel_lavamd =
  kernel "lavamd"
    ~params:[ ptr "px"; ptr "py"; ptr "charge"; ptr "force"; int "n";
              flt "cutoff2" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 4);
        let_f "xi" (ldg_f (p 0 +! (v "i" <<! int_ 2)));
        let_f "yi" (ldg_f (p 1 +! (v "i" <<! int_ 2)));
        let_ "bx" (f2i (v "xi" *.. f32 (float_of_int boxes)));
        let_ "by" (f2i (v "yi" *.. f32 (float_of_int boxes)));
        let_f "acc" (f32 0.0);
        for_ "nb" (int_ 0) (int_ 9)
          [ let_ "ox" ((v "nb" %! int_ 3) -! int_ 1);
            let_ "oy" ((v "nb" /! int_ 3) -! int_ 1);
            let_ "cx" (imin (imax (v "bx" +! v "ox") (int_ 0)) (int_ (boxes - 1)));
            let_ "cy" (imin (imax (v "by" +! v "oy") (int_ 0)) (int_ (boxes - 1)));
            let_ "base" ((((v "cy" *! int_ boxes) +! v "cx") *! int_ per_box));
            for_ "k" (int_ 0) (int_ per_box)
              [ let_ "j" (v "base" +! v "k");
                let_f "dx" (ldg_f (p 0 +! (v "j" <<! int_ 2)) -.. v "xi");
                let_f "dy" (ldg_f (p 1 +! (v "j" <<! int_ 2)) -.. v "yi");
                let_f "r2" (ffma (v "dx") (v "dx") (v "dy" *.. v "dy"));
                when_ ((v "r2" <.. p 5) &&? (v "r2" >.. f32 0.000001))
                  [ set "acc"
                      (ffma
                         (ldg_f (p 2 +! (v "j" <<! int_ 2)))
                         (rcp (v "r2" +.. f32 0.01))
                         (v "acc")) ] ] ];
        st_global_f (p 3 +! (v "i" <<! int_ 2)) (v "acc") ])

let run device ~variant =
  ignore variant;
  let n = boxes * boxes * per_box in
  let compiled = Kernel.Compile.compile kernel_lavamd in
  let acc, count = Workload.launcher device in
  (* Particles laid out box-major so each box's slice is contiguous. *)
  let rng = Rng.create ~seed:83 in
  let px = Array.make n 0.0 and py = Array.make n 0.0 in
  for b = 0 to (boxes * boxes) - 1 do
    let bx = b mod boxes and by = b / boxes in
    for k = 0 to per_box - 1 do
      let i = (b * per_box) + k in
      px.(i) <- (float_of_int bx +. Rng.float rng 1.0) /. float_of_int boxes;
      py.(i) <- (float_of_int by +. Rng.float rng 1.0) /. float_of_int boxes
    done
  done;
  let dpx = Workload.upload_f32 device px in
  let dpy = Workload.upload_f32 device py in
  let charge = Workload.upload_f32 device (Datasets.floats ~seed:84 ~n ~scale:1.0) in
  let force = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr dpx; Gpu.Device.Ptr dpy; Gpu.Device.Ptr charge;
            Gpu.Device.Ptr force; Gpu.Device.I32 n;
            Gpu.Device.F32 0.05 ];
  { Workload.output_digest = Workload.digest_f32 device ~addr:force ~n;
    stdout = "done";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"lavaMD" ~suite:"rodinia" run
