(** Rodinia NN: nearest-neighbour distance computation (tiny
    kernel, launch bound). *)

val workload : Workload.t
