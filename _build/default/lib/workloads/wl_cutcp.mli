(** Parboil CUTCP: cutoff Coulombic potential with a
    data-dependent cutoff branch. *)

val workload : Workload.t
