(** Parboil TPACF: two-point angular correlation with a
    data-dependent histogram bin search (highly divergent). *)

val workload : Workload.t
