(** Rodinia BFS: level-synchronous node-per-thread traversal. *)

val workload : Workload.t
