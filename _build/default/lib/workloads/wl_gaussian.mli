(** Rodinia GAUSSIAN: elimination with Fan1/Fan2/Fan3 kernels
    launched per pivot (launch-bound). *)

val workload : Workload.t
