type graph = {
  num_nodes : int;
  row_offsets : int array;
  columns : int array;
  source : int;
}

let graph_of_adjacency num_nodes adj source =
  let row_offsets = Array.make (num_nodes + 1) 0 in
  for v = 0 to num_nodes - 1 do
    row_offsets.(v + 1) <- row_offsets.(v) + List.length adj.(v)
  done;
  let columns = Array.make (max 1 row_offsets.(num_nodes)) 0 in
  for v = 0 to num_nodes - 1 do
    List.iteri
      (fun i u -> columns.(row_offsets.(v) + i) <- u)
      (List.rev adj.(v))
  done;
  { num_nodes; row_offsets; columns; source }

let scale_free_graph ~seed ~nodes ~avg_degree =
  let rng = Rng.create ~seed in
  let adj = Array.make nodes [] in
  let n_endpoints = ref 2 in
  let endpoint_arr = Array.make (nodes * (avg_degree + 2) * 2) 0 in
  for v = 1 to nodes - 1 do
    let degree = 1 + Rng.geometric rng ~p:(1.0 /. float_of_int avg_degree) in
    for _ = 1 to degree do
      (* Preferential attachment: pick an endpoint seen before. *)
      let u = endpoint_arr.(Rng.int rng !n_endpoints) mod v in
      adj.(v) <- u :: adj.(v);
      adj.(u) <- v :: adj.(u);
      if !n_endpoints + 2 < Array.length endpoint_arr then begin
        endpoint_arr.(!n_endpoints) <- u;
        endpoint_arr.(!n_endpoints + 1) <- v;
        n_endpoints := !n_endpoints + 2
      end
    done
  done;
  graph_of_adjacency nodes adj 0

let road_graph ~seed ~width ~height =
  let rng = Rng.create ~seed in
  let nodes = width * height in
  let adj = Array.make nodes [] in
  let id x y = (y * width) + x in
  let add a b =
    adj.(a) <- b :: adj.(a);
    adj.(b) <- a :: adj.(b)
  in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      (* Keep ~85% of grid edges; add sparse diagonals ("highways"). *)
      if x + 1 < width && Rng.int rng 100 < 85 then add (id x y) (id (x + 1) y);
      if y + 1 < height && Rng.int rng 100 < 85 then add (id x y) (id x (y + 1));
      if x + 1 < width && y + 1 < height && Rng.int rng 100 < 4 then
        add (id x y) (id (x + 1) (y + 1))
    done
  done;
  graph_of_adjacency nodes adj (id (width / 2) (height / 2))

type csr = {
  rows : int;
  cols : int;
  offsets : int array;
  indices : int array;
  values : float array;
}

let banded_matrix ~seed ~n ~band =
  let rng = Rng.create ~seed in
  let offsets = Array.make (n + 1) 0 in
  let idx = ref [] in
  let vals = ref [] in
  let count = ref 0 in
  for r = 0 to n - 1 do
    for d = -band to band do
      let c = r + d in
      if c >= 0 && c < n then begin
        idx := c :: !idx;
        vals := (1.0 +. Rng.float rng 1.0) :: !vals;
        incr count
      end
    done;
    offsets.(r + 1) <- !count
  done;
  { rows = n;
    cols = n;
    offsets;
    indices = Array.of_list (List.rev !idx);
    values = Array.of_list (List.rev !vals) }

let irregular_matrix ~seed ~n ~avg_nnz =
  let rng = Rng.create ~seed in
  let offsets = Array.make (n + 1) 0 in
  let idx = ref [] in
  let vals = ref [] in
  let count = ref 0 in
  for r = 0 to n - 1 do
    (* Skewed row lengths: most rows short, a few very long. *)
    let len =
      let base = 1 + Rng.int rng avg_nnz in
      if Rng.int rng 20 = 0 then base * 8 else base
    in
    let cols = Array.init len (fun _ -> Rng.int rng n) in
    Array.sort Int.compare cols;
    Array.iter
      (fun c ->
         idx := c :: !idx;
         vals := (0.5 +. Rng.float rng 1.5) :: !vals;
         incr count)
      cols;
    offsets.(r + 1) <- !count
  done;
  { rows = n;
    cols = n;
    offsets;
    indices = Array.of_list (List.rev !idx);
    values = Array.of_list (List.rev !vals) }

let csr_to_ell m =
  let width = ref 0 in
  for r = 0 to m.rows - 1 do
    width := max !width (m.offsets.(r + 1) - m.offsets.(r))
  done;
  let width = max 1 !width in
  let indices = Array.make (m.rows * width) 0 in
  let values = Array.make (m.rows * width) 0.0 in
  for r = 0 to m.rows - 1 do
    let len = m.offsets.(r + 1) - m.offsets.(r) in
    let last_col =
      if len > 0 then m.indices.(m.offsets.(r + 1) - 1) else 0
    in
    for k = 0 to width - 1 do
      (* Column-major layout: element k of row r at [k * rows + r]. *)
      let slot = (k * m.rows) + r in
      if k < len then begin
        indices.(slot) <- m.indices.(m.offsets.(r) + k);
        values.(slot) <- m.values.(m.offsets.(r) + k)
      end
      else begin
        indices.(slot) <- last_col;
        values.(slot) <- 0.0
      end
    done
  done;
  (width, indices, values)

let floats ~seed ~n ~scale =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Rng.float rng scale)

let ints ~seed ~n ~bound =
  let rng = Rng.create ~seed in
  Array.init n (fun _ -> Rng.int rng bound)

let points2d ~seed ~n =
  let rng = Rng.create ~seed in
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  (xs, ys)
