(* Rodinia MUMMERGPU (structurally): DNA read alignment. The reference
   string is bound as a texture (the real code's distinguishing
   feature); each thread extends one query against a candidate
   reference position until a mismatch — a data-dependent loop with
   texture loads. *)

open Kernel.Dsl

let ref_len = 4096

let query_len = 16

let kernel_mummer =
  kernel "mummer"
    ~params:[ ptr "queries"; ptr "starts"; ptr "lengths"; int "nq";
              int "reflen" ]
    (fun p ->
      [ let_ "q" (global_tid_x ());
        exit_if (v "q" >=! p 3);
        let_ "start" (ldg (p 1 +! (v "q" <<! int_ 2)));
        let_ "matched" (int_ 0);
        let_ "going" (int_ 1);
        while_ ((v "matched" <! int_ query_len) &&? (v "going" ==! int_ 1))
          [ let_ "pos" (v "start" +! v "matched");
            if_ (v "pos" >=! p 4)
              [ set "going" (int_ 0) ]
              [ (* Reference comes through the texture path. *)
                let_ "rc" (tex_i (v "pos"));
                let_ "qc"
                  (ldg (p 0 +! (((v "q" *! int_ query_len) +! v "matched")
                                <<! int_ 2)));
                if_ (v "rc" ==! v "qc")
                  [ set "matched" (v "matched" +! int_ 1) ]
                  [ set "going" (int_ 0) ] ] ];
        st_global (p 2 +! (v "q" <<! int_ 2)) (v "matched") ])

let run device ~variant =
  ignore variant;
  let nq = 1024 in
  let compiled = Kernel.Compile.compile kernel_mummer in
  let acc, count = Workload.launcher device in
  let reference = Datasets.ints ~seed:1 ~n:ref_len ~bound:4 in
  let ref_addr = Workload.upload_i32 device reference in
  Gpu.Device.bind_texture device ~addr:ref_addr ~bytes:(4 * ref_len);
  let rng = Rng.create ~seed:91 in
  (* Queries copy a reference substring then mutate a random suffix,
     giving a realistic spread of match lengths. *)
  let starts = Array.init nq (fun _ -> Rng.int rng (ref_len - query_len)) in
  let queries =
    Array.init (nq * query_len) (fun i ->
        let q = i / query_len and k = i mod query_len in
        let faithful = Rng.int rng query_len in
        if k < faithful then reference.(starts.(q) + k) else Rng.int rng 4)
  in
  let dq = Workload.upload_i32 device queries in
  let ds = Workload.upload_i32 device starts in
  let lengths = Workload.alloc_i32 device nq in
  let grid, block = Workload.grid_1d ~threads:nq ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr dq; Gpu.Device.Ptr ds; Gpu.Device.Ptr lengths;
            Gpu.Device.I32 nq; Gpu.Device.I32 ref_len ];
  let l = Gpu.Device.read_i32s device ~addr:lengths ~n:nq in
  let avg = float_of_int (Array.fold_left ( + ) 0 l) /. float_of_int nq in
  { Workload.output_digest = Workload.digest_i32 device ~addr:lengths ~n:nq;
    stdout = Printf.sprintf "avg_match=%.2f" avg;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"mummergpu" ~suite:"rodinia" run
