let all =
  [ (* Parboil *)
    Wl_bfs_parboil.workload;
    Wl_sgemm.workload;
    Wl_spmv.workload;
    Wl_tpacf.workload;
    Wl_mriq.workload;
    Wl_gridding.workload;
    Wl_cutcp.workload;
    Wl_histo.workload;
    Wl_stencil.workload;
    Wl_sad.workload;
    Wl_lbm.workload;
    (* Rodinia *)
    Wl_bfs_rodinia.workload;
    Wl_gaussian.workload;
    Wl_heartwall.workload;
    Wl_srad.v1;
    Wl_srad.v2;
    Wl_streamcluster.workload;
    Wl_nn.workload;
    Wl_hotspot.workload;
    Wl_lud.workload;
    Wl_btree.workload;
    Wl_pathfinder.workload;
    Wl_backprop.workload;
    Wl_kmeans.workload;
    Wl_lavamd.workload;
    Wl_nw.workload;
    Wl_mummer.workload;
    (* miniFE *)
    Wl_minife.workload ]

let qualified w = w.Workload.suite ^ "/" ^ w.Workload.name

let find_opt name =
  let by_qualified = List.find_opt (fun w -> qualified w = name) all in
  match by_qualified with
  | Some w -> Some w
  | None -> List.find_opt (fun w -> w.Workload.name = name) all

let find name =
  match find_opt name with
  | Some w -> w
  | None -> raise Not_found

let names () = List.map qualified all
