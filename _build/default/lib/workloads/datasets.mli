(** Synthetic dataset generators standing in for the paper's inputs.

    The BFS graphs match the structural features that drive the
    paper's divergence numbers: the "1M"-style input is a scale-free
    random graph (skewed degrees, small diameter, wide frontiers);
    NY/SF/UT are road-network-like grid graphs (degree <= 4, huge
    diameter, narrow frontiers). Sparse matrices come in a banded,
    uniform-row-length flavour (ELL-friendly) and an irregular
    random-row-length flavour (CSR-typical). *)

(** Graph in CSR form. *)
type graph = {
  num_nodes : int;
  row_offsets : int array;  (** length num_nodes + 1 *)
  columns : int array;
  source : int;
}

val scale_free_graph : seed:int -> nodes:int -> avg_degree:int -> graph
(** Preferential-attachment-flavoured random graph ("1M"-like). *)

val road_graph : seed:int -> width:int -> height:int -> graph
(** Grid graph with random edge deletions and a few diagonals
    (NY/SF/UT-like). *)

(** Sparse matrix in CSR form. *)
type csr = {
  rows : int;
  cols : int;
  offsets : int array;
  indices : int array;
  values : float array;
}

val banded_matrix : seed:int -> n:int -> band:int -> csr
(** Fixed-bandwidth matrix: near-uniform row lengths (ELL-friendly). *)

val irregular_matrix : seed:int -> n:int -> avg_nnz:int -> csr
(** Skewed random row lengths and scattered columns. *)

val csr_to_ell : csr -> int * int array * float array
(** [(width, indices, values)] in column-major ELL layout with
    zero-padding; indices of padded slots repeat the row's last valid
    column (the standard trick to keep accesses in range). *)

val floats : seed:int -> n:int -> scale:float -> float array

val ints : seed:int -> n:int -> bound:int -> int array

val points2d : seed:int -> n:int -> float array * float array
