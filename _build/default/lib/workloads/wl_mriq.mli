(** Parboil MRI-Q: per-voxel cos/sin accumulation over k-space
    samples (uniform, transcendental heavy). *)

val workload : Workload.t
