(** Rodinia LUD: LU decomposition, one trailing-submatrix update
    kernel per pivot. *)

val workload : Workload.t
