type tally = {
  masked : int;
  crashes : int;
  hangs : int;
  failure_symptoms : int;
  sdc_stdout : int;
  sdc_output : int;
  total : int;
}

let tally_of_outcomes outcomes =
  let t =
    ref { masked = 0; crashes = 0; hangs = 0; failure_symptoms = 0;
          sdc_stdout = 0; sdc_output = 0; total = 0 }
  in
  List.iter
    (fun o ->
       let c = !t in
       t :=
         (match o with
          | Handlers.Error_inject.Masked -> { c with masked = c.masked + 1 }
          | Handlers.Error_inject.Crash _ -> { c with crashes = c.crashes + 1 }
          | Handlers.Error_inject.Hang -> { c with hangs = c.hangs + 1 }
          | Handlers.Error_inject.Failure_symptom _ ->
            { c with failure_symptoms = c.failure_symptoms + 1 }
          | Handlers.Error_inject.Sdc_stdout ->
            { c with sdc_stdout = c.sdc_stdout + 1 }
          | Handlers.Error_inject.Sdc_output ->
            { c with sdc_output = c.sdc_output + 1 });
       t := { !t with total = !t.total + 1 })
    outcomes;
  !t

let run ?(cfg = Gpu.Config.default) ?(seed = 2025) ~injections w ~variant =
  (* Step 0: golden reference. *)
  let golden =
    let dev = Gpu.Device.create ~cfg () in
    let r = w.Workload.run dev ~variant in
    (r.Workload.output_digest, r.Workload.stdout)
  in
  (* Step 1: profiling run (Section 8.1 step 1). *)
  let profile = Handlers.Error_inject.Profile.create () in
  let devp = Gpu.Device.create ~cfg () in
  let _ =
    Sassi.Runtime.with_instrumentation devp
      (Handlers.Error_inject.Profile.pairs profile)
      (fun _ -> w.Workload.run devp ~variant)
  in
  (* Step 2: statistical site selection on the host. *)
  let targets =
    Handlers.Error_inject.Profile.pick_targets profile ~seed ~n:injections
  in
  (* Step 3: one injection per run, classify the outcome. *)
  let outcomes =
    List.map
      (fun target ->
         let injected = ref false in
         Handlers.Error_inject.classify ~reference:golden (fun () ->
             let dev = Gpu.Device.create ~cfg () in
             let r =
               Sassi.Runtime.with_instrumentation dev
                 (Handlers.Error_inject.injection_pairs target ~injected)
                 (fun _ -> w.Workload.run dev ~variant)
             in
             (r.Workload.output_digest, r.Workload.stdout)))
      targets
  in
  tally_of_outcomes outcomes

let fractions t =
  let f x = if t.total = 0 then 0.0 else float_of_int x /. float_of_int t.total in
  (f t.masked, f t.crashes, f t.hangs, f t.failure_symptoms,
   f t.sdc_stdout, f t.sdc_output)

let pp ppf t =
  let m, c, h, s, so, sf = fractions t in
  Format.fprintf ppf
    "masked %.1f%%  crash %.1f%%  hang %.1f%%  symptom %.1f%%  \
     sdc-stdout %.1f%%  sdc-output %.1f%%  (n=%d)"
    (100. *. m) (100. *. c) (100. *. h) (100. *. s) (100. *. so)
    (100. *. sf) t.total
