(* Rodinia KMEANS: the assignment kernel — each point scans all
   centers over all dimensions, tracking the nearest. Uniform loops;
   only the running-min select differs per lane. *)

open Kernel.Dsl

let dims = 8

let clusters = 6

let kernel_kmeans =
  kernel "kmeans_assign"
    ~params:[ ptr "points"; ptr "centers"; ptr "membership"; int "n" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 3);
        let_f "best" (f32 1e30);
        let_ "bestc" (int_ 0);
        for_ "c" (int_ 0) (int_ clusters)
          [ let_f "d2" (f32 0.0);
            for_ "d" (int_ 0) (int_ dims)
              [ let_f "diff"
                  (ldg_f (p 0 +! (((v "i" *! int_ dims) +! v "d") <<! int_ 2))
                   -.. ldg_f
                         (p 1 +! (((v "c" *! int_ dims) +! v "d") <<! int_ 2)));
                set "d2" (ffma (v "diff") (v "diff") (v "d2")) ];
            set "bestc" (select (v "d2" <.. v "best") (v "c") (v "bestc"));
            set "best" (fmin (v "d2") (v "best")) ];
        st_global (p 2 +! (v "i" <<! int_ 2)) (v "bestc") ])

let run device ~variant =
  ignore variant;
  let n = 1024 in
  let compiled = Kernel.Compile.compile kernel_kmeans in
  let acc, count = Workload.launcher device in
  let points =
    Workload.upload_f32 device (Datasets.floats ~seed:1 ~n:(n * dims) ~scale:1.0)
  in
  let centers =
    Workload.upload_f32 device
      (Datasets.floats ~seed:2 ~n:(clusters * dims) ~scale:1.0)
  in
  let membership = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  (* A few host-side refinement rounds relaunch the assignment. *)
  for _ = 1 to 3 do
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr points; Gpu.Device.Ptr centers;
              Gpu.Device.Ptr membership; Gpu.Device.I32 n ]
  done;
  { Workload.output_digest = Workload.digest_i32 device ~addr:membership ~n;
    stdout = Printf.sprintf "clusters=%d" clusters;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"kmeans" ~suite:"rodinia" run
