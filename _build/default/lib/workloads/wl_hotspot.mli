(** Rodinia HOTSPOT: thermal stencil with shared-memory tiles and
    halo branches. *)

val workload : Workload.t
