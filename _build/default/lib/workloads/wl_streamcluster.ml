(* Rodinia STREAMCLUSTER: online clustering. The hot kernel computes,
   for each point, the cost of switching to a candidate center —
   uniform loops over dimensions, re-launched for many candidates
   (the paper records >11k launches and 0% divergence). *)

open Kernel.Dsl

let dims = 8

let kernel_sc =
  kernel "streamcluster"
    ~params:[ ptr "points"; ptr "center"; ptr "assign_cost"; int "npoints" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 3);
        let_f "d2" (f32 0.0);
        for_ "d" (int_ 0) (int_ dims)
          [ let_f "diff"
              (ldg_f (p 0 +! (((v "i" *! int_ dims) +! v "d") <<! int_ 2))
               -.. ldg_f (p 1 +! (v "d" <<! int_ 2)));
            set "d2" (ffma (v "diff") (v "diff") (v "d2")) ];
        (* Keep the min cost seen so far. *)
        let_f "old" (ldg_f (p 2 +! (v "i" <<! int_ 2)));
        st_global_f (p 2 +! (v "i" <<! int_ 2)) (fmin (v "old") (v "d2")) ])

let run device ~variant =
  ignore variant;
  let npoints = 1024 in
  let ncenters = 24 in
  let compiled = Kernel.Compile.compile kernel_sc in
  let acc, count = Workload.launcher device in
  let points =
    Workload.upload_f32 device
      (Datasets.floats ~seed:3 ~n:(npoints * dims) ~scale:1.0)
  in
  let cost =
    Workload.upload_f32 device (Array.make npoints 1e30)
  in
  let grid, block = Workload.grid_1d ~threads:npoints ~block:128 in
  let rng = Rng.create ~seed:55 in
  for _ = 1 to ncenters do
    let center =
      Workload.upload_f32 device
        (Array.init dims (fun _ -> Rng.float rng 1.0))
    in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr points; Gpu.Device.Ptr center;
              Gpu.Device.Ptr cost; Gpu.Device.I32 npoints ]
  done;
  { Workload.output_digest = Workload.digest_f32 device ~addr:cost ~n:npoints;
    stdout = Printf.sprintf "centers=%d" ncenters;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"streamcluster" ~suite:"rodinia" run
