(* Parboil SAD: sum-of-absolute-differences block matching from the
   H.264 encoder. One thread per (block, candidate offset) pair,
   fully regular 8x8 inner loops. *)

open Kernel.Dsl

let img = 64  (* square frame *)

let blk = 8

let offsets = 4  (* candidate displacements per block *)

let kernel_sad =
  kernel "sad"
    ~params:[ ptr "cur"; ptr "ref"; ptr "sads"; int "nblocks" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! (p 3 *! int_ offsets));
        let_ "block" (v "i" /! int_ offsets);
        let_ "cand" (v "i" %! int_ offsets);
        let_ "bx" ((v "block" %! int_ (img / blk)) *! int_ blk);
        let_ "by" ((v "block" /! int_ (img / blk)) *! int_ blk);
        (* Candidate displacement: right/down by cand pixels (clamped). *)
        let_ "rx" (imin (v "bx" +! v "cand") (int_ (img - blk)));
        let_ "ry" (imin (v "by" +! v "cand") (int_ (img - blk)));
        let_ "sum" (int_ 0);
        for_ "dy" (int_ 0) (int_ blk)
          [ for_ "dx" (int_ 0) (int_ blk)
              [ let_ "c"
                  (ldg
                     (p 0
                      +! ((((v "by" +! v "dy") *! int_ img) +! v "bx"
                           +! v "dx")
                          <<! int_ 2)));
                let_ "r"
                  (ldg
                     (p 1
                      +! ((((v "ry" +! v "dy") *! int_ img) +! v "rx"
                           +! v "dx")
                          <<! int_ 2)));
                set "sum" (v "sum" +! imax (v "c" -! v "r") (v "r" -! v "c")) ] ];
        st_global (p 2 +! (v "i" <<! int_ 2)) (v "sum") ])

let run device ~variant =
  ignore variant;
  let nblocks = (img / blk) * (img / blk) in
  let compiled = Kernel.Compile.compile kernel_sad in
  let acc, count = Workload.launcher device in
  let cur = Workload.upload_i32 device (Datasets.ints ~seed:1 ~n:(img * img) ~bound:256) in
  let reff = Workload.upload_i32 device (Datasets.ints ~seed:2 ~n:(img * img) ~bound:256) in
  let sads = Workload.alloc_i32 device (nblocks * offsets) in
  let grid, block = Workload.grid_1d ~threads:(nblocks * offsets) ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr cur; Gpu.Device.Ptr reff; Gpu.Device.Ptr sads;
            Gpu.Device.I32 nblocks ];
  { Workload.output_digest =
      Workload.digest_i32 device ~addr:sads ~n:(nblocks * offsets);
    stdout = "done";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"sad" ~suite:"parboil" run
