(** Parboil STENCIL: 2-D 5-point Jacobi iterations with boundary
    guards. *)

val workload : Workload.t
