(** Parboil SGEMM: 16x16 shared-memory tiled matrix multiply
    (variants "small"/"medium"; fully convergent control flow). *)

val workload : Workload.t
