(** Parboil HISTO: skewed histogramming with atomics, launched in
    many small chunks. *)

val workload : Workload.t
