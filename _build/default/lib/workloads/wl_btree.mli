(** Rodinia B+TREE: batched key lookups over a shared shallow tree
    (scalar-value heavy). *)

val workload : Workload.t

val build_tree : unit -> int array * int
(** The flattened node array and root key span; exposed so tests can
    run the host-side reference search. *)
