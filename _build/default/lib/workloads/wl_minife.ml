(* miniFE: the finite-element mini-app's CG solver inner loop, with
   the sparse matrix stored either in CSR (threads walk disjoint row
   segments — highly address divergent) or column-major ELL
   (consecutive threads read consecutive words — well coalesced).
   This pair generates the paper's Figure 7/8 contrast. *)

open Kernel.Dsl

let kernel_matvec_csr =
  kernel "minife_csr"
    ~params:[ ptr "offsets"; ptr "indices"; ptr "values"; ptr "x"; ptr "y";
              int "n" ]
    (fun p ->
      [ let_ "row" (global_tid_x ());
        exit_if (v "row" >=! p 5);
        let_ "start" (ldg (p 0 +! (v "row" <<! int_ 2)));
        let_ "stop" (ldg (p 0 +! (v "row" <<! int_ 2) +! int_ 4));
        let_f "sum" (f32 0.0);
        for_ "j" (v "start") (v "stop")
          [ set "sum"
              (ffma
                 (ldg_f (p 2 +! (v "j" <<! int_ 2)))
                 (ldg_f
                    (p 3 +! (ldg (p 1 +! (v "j" <<! int_ 2)) <<! int_ 2)))
                 (v "sum")) ];
        st_global_f (p 4 +! (v "row" <<! int_ 2)) (v "sum") ])

let kernel_matvec_ell =
  kernel "minife_ell"
    ~params:[ ptr "indices"; ptr "values"; ptr "x"; ptr "y"; int "n";
              int "width" ]
    (fun p ->
      [ let_ "row" (global_tid_x ());
        exit_if (v "row" >=! p 4);
        let_f "sum" (f32 0.0);
        for_ "k" (int_ 0) (p 5)
          [ let_ "slot" ((v "k" *! p 4) +! v "row");
            set "sum"
              (ffma
                 (ldg_f (p 1 +! (v "slot" <<! int_ 2)))
                 (ldg_f
                    (p 2 +! (ldg (p 0 +! (v "slot" <<! int_ 2)) <<! int_ 2)))
                 (v "sum")) ];
        st_global_f (p 3 +! (v "row" <<! int_ 2)) (v "sum") ])

(* y = y + alpha * x, used between matvecs like the CG update. *)
let kernel_axpy =
  kernel "minife_axpy"
    ~params:[ ptr "y"; ptr "x"; flt "alpha"; int "n" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 3);
        st_global_f (p 0 +! (v "i" <<! int_ 2))
          (ffma (p 2)
             (ldg_f (p 1 +! (v "i" <<! int_ 2)))
             (ldg_f (p 0 +! (v "i" <<! int_ 2)))) ])

let run device ~variant =
  let n = 2048 in
  let m = Datasets.banded_matrix ~seed:8 ~n ~band:3 in
  let acc, count = Workload.launcher device in
  let x = Workload.upload_f32 device (Datasets.floats ~seed:10 ~n ~scale:1.0) in
  let y = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  let iterations = 4 in
  (match variant with
   | "CSR" ->
     let compiled = Kernel.Compile.compile kernel_matvec_csr in
     let offsets = Workload.upload_i32 device m.Datasets.offsets in
     let indices = Workload.upload_i32 device m.Datasets.indices in
     let values = Workload.upload_f32 device m.Datasets.values in
     for _ = 1 to iterations do
       Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
         ~args:[ Gpu.Device.Ptr offsets; Gpu.Device.Ptr indices;
                 Gpu.Device.Ptr values; Gpu.Device.Ptr x; Gpu.Device.Ptr y;
                 Gpu.Device.I32 n ]
     done
   | "ELL" ->
     let width, eidx, evals = Datasets.csr_to_ell m in
     let compiled = Kernel.Compile.compile kernel_matvec_ell in
     let indices = Workload.upload_i32 device eidx in
     let values = Workload.upload_f32 device evals in
     for _ = 1 to iterations do
       Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
         ~args:[ Gpu.Device.Ptr indices; Gpu.Device.Ptr values;
                 Gpu.Device.Ptr x; Gpu.Device.Ptr y; Gpu.Device.I32 n;
                 Gpu.Device.I32 width ]
     done
   | v -> invalid_arg ("minife: unknown variant " ^ v));
  let axpy = Kernel.Compile.compile kernel_axpy in
  Workload.launch ~acc ~count device ~kernel:axpy ~grid ~block
    ~args:[ Gpu.Device.Ptr x; Gpu.Device.Ptr y; Gpu.Device.F32 0.5;
            Gpu.Device.I32 n ];
  let s = Gpu.Device.read_f32s device ~addr:y ~n:2 in
  { Workload.output_digest =
      Workload.combine_digests
        [ Workload.digest_f32 device ~addr:y ~n;
          Workload.digest_f32 device ~addr:x ~n ];
    stdout = Printf.sprintf "y0=%.4f y1=%.4f" s.(0) s.(1);
    stats = acc;
    launches = !count }

let workload =
  Workload.make ~name:"miniFE" ~suite:"minife" ~variants:[ "ELL"; "CSR" ]
    ~default_variant:"ELL" run
