(* Rodinia LUD: LU decomposition. One kernel per pivot updates the
   trailing submatrix (the perimeter/internal split of the real code
   collapsed into a single triangular-guard kernel — divergence at the
   triangle boundary, shrinking launches). *)

open Kernel.Dsl

let kernel_lud_step =
  kernel "lud_step"
    ~params:[ ptr "a"; int "n"; int "k" ]
    (fun p ->
      [ let_ "gid" (global_tid_x ());
        let_ "span" (p 1 -! p 2 -! int_ 1);
        exit_if (v "gid" >=! (v "span" *! v "span"));
        let_ "i" ((v "gid" /! v "span") +! p 2 +! int_ 1);
        let_ "j" ((v "gid" %! v "span") +! p 2 +! int_ 1);
        let_f "pivot" (ldg_f (p 0 +! (((p 2 *! p 1) +! p 2) <<! int_ 2)));
        let_f "lik"
          (ldg_f (p 0 +! (((v "i" *! p 1) +! p 2) <<! int_ 2))
           /.. v "pivot");
        (* First column of the step stores the L factor. *)
        when_ (v "j" ==! (p 2 +! int_ 1))
          [ st_global_f (p 0 +! (((v "i" *! p 1) +! p 2) <<! int_ 2))
              (v "lik") ];
        st_global_f (p 0 +! (((v "i" *! p 1) +! v "j") <<! int_ 2))
          (ldg_f (p 0 +! (((v "i" *! p 1) +! v "j") <<! int_ 2))
           -.. (v "lik"
                *.. ldg_f (p 0 +! (((p 2 *! p 1) +! v "j") <<! int_ 2)))) ])

let run device ~variant =
  ignore variant;
  let n = 48 in
  let compiled = Kernel.Compile.compile kernel_lud_step in
  let acc, count = Workload.launcher device in
  let rng = Rng.create ~seed:61 in
  let a_host =
    Array.init (n * n) (fun i ->
        let r = i / n and c = i mod n in
        if r = c then 8.0 +. Rng.float rng 2.0 else Rng.float rng 1.0)
  in
  let a = Workload.upload_f32 device a_host in
  for k = 0 to n - 2 do
    let span = n - k - 1 in
    let grid, block = Workload.grid_1d ~threads:(span * span) ~block:64 in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.I32 n; Gpu.Device.I32 k ]
  done;
  { Workload.output_digest = Workload.digest_f32 device ~addr:a ~n:(n * n);
    stdout = Printf.sprintf "steps=%d" (n - 1);
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"lud" ~suite:"rodinia" run
