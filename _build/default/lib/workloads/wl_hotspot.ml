(* Rodinia HOTSPOT: thermal simulation — a 2-D stencil on temperature
   with a power term, tiled through shared memory. *)

open Kernel.Dsl

let dim = 96

let tile = 16

let kernel_hotspot =
  kernel "hotspot"
    ~params:[ ptr "temp"; ptr "power"; ptr "out"; int "dim" ]
    ~shared:[ ("ts", (tile * tile * 4)) ]
    (fun p ->
      let clamp e lo hi = imin (imax e lo) hi in
      let shared_at sx sy =
        lds_f (shared_base "ts" +! (((sy *! int_ tile) +! sx) <<! int_ 2))
      in
      let global_at gx gy =
        ldg_f
          (p 0
           +! (((clamp gy (int_ 0) (p 3 -! int_ 1) *! p 3)
                +! clamp gx (int_ 0) (p 3 -! int_ 1))
               <<! int_ 2))
      in
      [ let_ "tx" tid_x;
        let_ "ty" tid_y;
        let_ "x" ((ctaid_x *! int_ tile) +! v "tx");
        let_ "y" ((ctaid_y *! int_ tile) +! v "ty");
        let_ "i" ((v "y" *! p 3) +! v "x");
        (* Stage the tile. *)
        st_shared_f
          (shared_base "ts" +! (((v "ty" *! int_ tile) +! v "tx") <<! int_ 2))
          (ldg_f (p 0 +! (v "i" <<! int_ 2)));
        sync;
        (* Interior lanes read the staged tile; halo lanes branch to
           clamped global reads — the boundary divergence the real
           kernel exhibits. *)
        let_f "c" (shared_at (v "tx") (v "ty"));
        let_f "n" (f32 0.0);
        if_ (v "ty" >! int_ 0)
          [ set "n" (shared_at (v "tx") (v "ty" -! int_ 1)) ]
          [ set "n" (global_at (v "x") (v "y" -! int_ 1)) ];
        let_f "s" (f32 0.0);
        if_ (v "ty" <! int_ (tile - 1))
          [ set "s" (shared_at (v "tx") (v "ty" +! int_ 1)) ]
          [ set "s" (global_at (v "x") (v "y" +! int_ 1)) ];
        let_f "w" (f32 0.0);
        if_ (v "tx" >! int_ 0)
          [ set "w" (shared_at (v "tx" -! int_ 1) (v "ty")) ]
          [ set "w" (global_at (v "x" -! int_ 1) (v "y")) ];
        let_f "e" (f32 0.0);
        if_ (v "tx" <! int_ (tile - 1))
          [ set "e" (shared_at (v "tx" +! int_ 1) (v "ty")) ]
          [ set "e" (global_at (v "x" +! int_ 1) (v "y")) ];
        let_f "pw" (ldg_f (p 1 +! (v "i" <<! int_ 2)));
        st_global_f (p 2 +! (v "i" <<! int_ 2))
          (v "c"
           +.. (f32 0.2
                *.. (v "n" +.. v "s" +.. v "w" +.. v "e"
                     -.. (f32 4.0 *.. v "c") +.. v "pw"))) ])

let run device ~variant =
  ignore variant;
  let n = dim * dim in
  let compiled = Kernel.Compile.compile kernel_hotspot in
  let acc, count = Workload.launcher device in
  let temp = Workload.upload_f32 device (Datasets.floats ~seed:41 ~n ~scale:80.0) in
  let power = Workload.upload_f32 device (Datasets.floats ~seed:42 ~n ~scale:2.0) in
  let out = Workload.alloc_i32 device n in
  let bufs = ref (temp, out) in
  for _ = 1 to 4 do
    let src, dst = !bufs in
    Workload.launch ~acc ~count device ~kernel:compiled
      ~grid:(dim / tile, dim / tile)
      ~block:(tile, tile)
      ~args:[ Gpu.Device.Ptr src; Gpu.Device.Ptr power; Gpu.Device.Ptr dst;
              Gpu.Device.I32 dim ];
    bufs := (dst, src)
  done;
  let final, _ = !bufs in
  { Workload.output_digest = Workload.digest_f32 device ~addr:final ~n;
    stdout = "iters=4";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"hotspot" ~suite:"rodinia" run
