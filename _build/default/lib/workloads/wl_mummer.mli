(** Rodinia MUMMERGPU (structurally): query extension against a
    texture-bound reference string (data-dependent match loops). *)

val workload : Workload.t
