(* Rodinia HEARTWALL (structurally): ultrasound wall tracking. Each
   thread tracks one sample point: it searches a neighbourhood with an
   early-exit correlation loop whose trip count depends on the local
   image data. Nested data-dependent branches make this the paper's
   most divergent benchmark (~42% dynamic). *)

open Kernel.Dsl

let img = 96

let kernel_heartwall =
  kernel "heartwall"
    ~params:[ ptr "image"; ptr "px"; ptr "py"; ptr "out"; int "npoints";
              int "dim" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 4);
        let_ "x" (ldg (p 1 +! (v "i" <<! int_ 2)));
        let_ "y" (ldg (p 2 +! (v "i" <<! int_ 2)));
        let_ "best" (int_ 0x7FFFFFFF);
        let_ "bestpos" (int_ 0);
        let_ "center"
          (ldg (p 0 +! (((v "y" *! p 5) +! v "x") <<! int_ 2)));
        (* Search a 5x5 window around the point. *)
        for_ "dy" (int_ 0) (int_ 5)
          [ for_ "dx" (int_ 0) (int_ 5)
              [ let_ "cx"
                  (imin (imax (v "x" +! v "dx" -! int_ 2) (int_ 0))
                     (p 5 -! int_ 1));
                let_ "cy"
                  (imin (imax (v "y" +! v "dy" -! int_ 2) (int_ 0))
                     (p 5 -! int_ 1));
                let_ "cost" (int_ 0);
                let_ "k" (int_ 0);
                (* Early-exit correlation walk: trip count depends on
                   accumulated mismatch, i.e. on the data. *)
                while_ ((v "k" <! int_ 12) &&? (v "cost" <! v "best"))
                  [ let_ "sx" ((v "cx" +! (v "k" %! int_ 4)) %! p 5);
                    let_ "sy" ((v "cy" +! (v "k" /! int_ 4)) %! p 5);
                    let_ "pix"
                      (ldg (p 0 +! (((v "sy" *! p 5) +! v "sx") <<! int_ 2)));
                    set "cost"
                      (v "cost"
                       +! imax (v "pix" -! v "center")
                            (v "center" -! v "pix"));
                    set "k" (v "k" +! int_ 1) ];
                when_ (v "cost" <! v "best")
                  [ set "best" (v "cost");
                    set "bestpos" ((v "cy" *! p 5) +! v "cx") ] ] ];
        st_global (p 3 +! (v "i" <<! int_ 2)) (v "bestpos") ])

let run device ~variant =
  ignore variant;
  let npoints = 512 in
  let compiled = Kernel.Compile.compile kernel_heartwall in
  let acc, count = Workload.launcher device in
  let image =
    Workload.upload_i32 device
      (Datasets.ints ~seed:7 ~n:(img * img) ~bound:255)
  in
  let px = Workload.upload_i32 device (Datasets.ints ~seed:8 ~n:npoints ~bound:img) in
  let py = Workload.upload_i32 device (Datasets.ints ~seed:9 ~n:npoints ~bound:img) in
  let out = Workload.alloc_i32 device npoints in
  let grid, block = Workload.grid_1d ~threads:npoints ~block:128 in
  (* The real code tracks across frames: iterate a few times. *)
  for _ = 1 to 3 do
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr image; Gpu.Device.Ptr px; Gpu.Device.Ptr py;
              Gpu.Device.Ptr out; Gpu.Device.I32 npoints;
              Gpu.Device.I32 img ]
  done;
  { Workload.output_digest = Workload.digest_i32 device ~addr:out ~n:npoints;
    stdout = "frames=3";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"heartwall" ~suite:"rodinia" run
