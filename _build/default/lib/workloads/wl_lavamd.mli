(** Rodinia LAVAMD (structurally): boxed particles interacting
    within a cutoff. *)

val workload : Workload.t
