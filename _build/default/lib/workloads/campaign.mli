(** Error-injection campaign driver (paper Section 8's experimental
    flow): golden run, profiling run, statistical site selection, then
    one injection per run with outcome classification. *)

type tally = {
  masked : int;
  crashes : int;
  hangs : int;
  failure_symptoms : int;
  sdc_stdout : int;
  sdc_output : int;
  total : int;
}

val run :
  ?cfg:Gpu.Config.t ->
  ?seed:int ->
  injections:int ->
  Workload.t ->
  variant:string ->
  tally
(** Runs the full three-step flow on fresh devices. Each injection run
    re-executes the workload with exactly one bit flip. *)

val tally_of_outcomes : Handlers.Error_inject.outcome list -> tally

val pp : Format.formatter -> tally -> unit

val fractions : tally -> float * float * float * float * float * float
(** (masked, crash, hang, symptom, sdc-stdout, sdc-output) as
    fractions of total. *)
