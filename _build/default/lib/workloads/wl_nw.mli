(** Rodinia NW: Needleman-Wunsch score matrix filled along
    anti-diagonals, one launch per diagonal. *)

val workload : Workload.t
