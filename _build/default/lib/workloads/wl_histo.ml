(* Parboil HISTO: histogramming with a heavily skewed input
   distribution, so many threads update the same bins — atomic
   contention plus address divergence. The paper notes histo launches
   tens of thousands of small kernels; we model that with many small
   chunked launches. *)

open Kernel.Dsl

let bins = 256

let kernel_histo =
  kernel "histo"
    ~params:[ ptr "input"; ptr "hist"; int "offset"; int "n" ]
    (fun p ->
      [ let_ "i" ((global_tid_x ()) +! p 2);
        exit_if (v "i" >=! p 3);
        let_ "value" (ldg (p 0 +! (v "i" <<! int_ 2)));
        atomic_add (p 1 +! (v "value" <<! int_ 2)) (int_ 1) ])

let run device ~variant =
  ignore variant;
  let n = 16384 in
  let chunk = 1024 in
  let compiled = Kernel.Compile.compile kernel_histo in
  let acc, count = Workload.launcher device in
  (* Skewed distribution: square a uniform variate. *)
  let rng = Rng.create ~seed:23 in
  let data =
    Array.init n (fun _ ->
        let u = Rng.float rng 1.0 in
        int_of_float (u *. u *. float_of_int (bins - 1)))
  in
  let input = Workload.upload_i32 device data in
  let hist = Workload.alloc_i32 device bins in
  let offset = ref 0 in
  while !offset < n do
    let grid, block = Workload.grid_1d ~threads:chunk ~block:128 in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr input; Gpu.Device.Ptr hist;
              Gpu.Device.I32 !offset; Gpu.Device.I32 n ];
    offset := !offset + chunk
  done;
  let h = Gpu.Device.read_i32s device ~addr:hist ~n:bins in
  { Workload.output_digest = Workload.digest_i32 device ~addr:hist ~n:bins;
    stdout = Printf.sprintf "max_bin=%d" (Array.fold_left max 0 h);
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"histo" ~suite:"parboil" run
