(* Parboil SpMV: scalar CSR kernel, one thread per row. Row-length
   variance drives both control divergence (loop trip counts) and
   memory address divergence (threads walk disjoint row segments). *)

open Kernel.Dsl

let kernel_spmv =
  kernel "spmv"
    ~params:[ ptr "offsets"; ptr "indices"; ptr "values"; ptr "x"; ptr "y";
              int "n" ]
    (fun p ->
      [ let_ "row" (global_tid_x ());
        exit_if (v "row" >=! p 5);
        let_ "start" (ldg (p 0 +! (v "row" <<! int_ 2)));
        let_ "stop" (ldg (p 0 +! (v "row" <<! int_ 2) +! int_ 4));
        let_f "sum" (f32 0.0);
        for_ "j" (v "start") (v "stop")
          [ let_ "col" (ldg (p 1 +! (v "j" <<! int_ 2)));
            set "sum"
              (ffma
                 (ldg_f (p 2 +! (v "j" <<! int_ 2)))
                 (ldg_f (p 3 +! (v "col" <<! int_ 2)))
                 (v "sum")) ];
        st_global_f (p 4 +! (v "row" <<! int_ 2)) (v "sum") ])

let matrix_of_variant = function
  | "small" -> Datasets.irregular_matrix ~seed:3 ~n:1024 ~avg_nnz:5
  | "medium" -> Datasets.irregular_matrix ~seed:4 ~n:2048 ~avg_nnz:8
  | "large" -> Datasets.irregular_matrix ~seed:5 ~n:4096 ~avg_nnz:10
  | v -> invalid_arg ("spmv: unknown variant " ^ v)

let run device ~variant =
  let m = matrix_of_variant variant in
  let compiled = Kernel.Compile.compile kernel_spmv in
  let acc, count = Workload.launcher device in
  let n = m.Datasets.rows in
  let offsets = Workload.upload_i32 device m.Datasets.offsets in
  let indices = Workload.upload_i32 device m.Datasets.indices in
  let values = Workload.upload_f32 device m.Datasets.values in
  let x = Workload.upload_f32 device (Datasets.floats ~seed:9 ~n ~scale:1.0) in
  let y = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr offsets; Gpu.Device.Ptr indices;
            Gpu.Device.Ptr values; Gpu.Device.Ptr x; Gpu.Device.Ptr y;
            Gpu.Device.I32 n ];
  let s = Gpu.Device.read_f32s device ~addr:y ~n:2 in
  { Workload.output_digest = Workload.digest_f32 device ~addr:y ~n;
    stdout = Printf.sprintf "y0=%.4f y1=%.4f" s.(0) s.(1);
    stats = acc;
    launches = !count }

let workload =
  Workload.make ~name:"spmv" ~suite:"parboil"
    ~variants:[ "small"; "medium"; "large" ]
    ~default_variant:"small" run
