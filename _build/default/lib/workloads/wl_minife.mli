(** miniFE: CG-style sparse mat-vec in CSR or column-major ELL
    (variants "CSR"/"ELL") plus an axpy kernel. *)

val workload : Workload.t
