(** Parboil SpMV: scalar CSR kernel, one thread per row
    (variants "small"/"medium"/"large"). *)

val workload : Workload.t
