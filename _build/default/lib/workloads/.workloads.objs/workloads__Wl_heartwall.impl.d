lib/workloads/wl_heartwall.ml: Datasets Gpu Kernel Workload
