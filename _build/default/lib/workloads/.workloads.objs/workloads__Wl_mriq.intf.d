lib/workloads/wl_mriq.mli: Workload
