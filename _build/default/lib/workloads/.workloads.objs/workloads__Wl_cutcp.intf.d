lib/workloads/wl_cutcp.mli: Workload
