lib/workloads/wl_backprop.ml: Datasets Gpu Kernel Workload
