lib/workloads/campaign.ml: Format Gpu Handlers List Sassi Workload
