lib/workloads/wl_gaussian.mli: Workload
