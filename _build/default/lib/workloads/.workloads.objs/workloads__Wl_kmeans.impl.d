lib/workloads/wl_kmeans.ml: Datasets Gpu Kernel Printf Workload
