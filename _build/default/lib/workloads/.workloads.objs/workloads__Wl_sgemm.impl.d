lib/workloads/wl_sgemm.ml: Array Datasets Gpu Kernel Printf Workload
