lib/workloads/wl_lbm.ml: Array Datasets Gpu Kernel Rng Workload
