lib/workloads/wl_bfs_rodinia.mli: Workload
