lib/workloads/wl_pathfinder.mli: Workload
