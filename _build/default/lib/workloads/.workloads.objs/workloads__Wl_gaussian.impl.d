lib/workloads/wl_gaussian.ml: Array Datasets Gpu Kernel Printf Rng Workload
