lib/workloads/wl_lbm.mli: Kernel Workload
