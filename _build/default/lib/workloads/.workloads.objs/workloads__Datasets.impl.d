lib/workloads/datasets.ml: Array Int List Rng
