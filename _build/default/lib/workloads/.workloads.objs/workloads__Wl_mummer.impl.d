lib/workloads/wl_mummer.ml: Array Datasets Gpu Kernel Printf Rng Workload
