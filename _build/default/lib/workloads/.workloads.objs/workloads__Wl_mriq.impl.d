lib/workloads/wl_mriq.ml: Array Datasets Gpu Kernel Printf Workload
