lib/workloads/wl_cutcp.ml: Datasets Gpu Kernel Workload
