lib/workloads/wl_btree.ml: Array Datasets Gpu Kernel List Printf Workload
