lib/workloads/workload.mli: Gpu Sass
