lib/workloads/campaign.mli: Format Gpu Handlers Workload
