lib/workloads/wl_stencil.ml: Datasets Gpu Kernel Workload
