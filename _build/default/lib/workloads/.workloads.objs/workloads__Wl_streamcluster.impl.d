lib/workloads/wl_streamcluster.ml: Array Datasets Gpu Kernel Printf Rng Workload
