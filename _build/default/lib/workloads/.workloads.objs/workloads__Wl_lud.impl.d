lib/workloads/wl_lud.ml: Array Gpu Kernel Printf Rng Workload
