lib/workloads/wl_nn.mli: Workload
