lib/workloads/wl_srad.mli: Workload
