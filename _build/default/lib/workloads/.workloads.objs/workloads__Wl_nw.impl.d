lib/workloads/wl_nw.ml: Array Datasets Gpu Kernel Printf Workload
