lib/workloads/wl_btree.mli: Workload
