lib/workloads/wl_gridding.mli: Workload
