lib/workloads/wl_lud.mli: Workload
