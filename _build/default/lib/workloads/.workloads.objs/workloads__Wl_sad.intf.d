lib/workloads/wl_sad.mli: Workload
