lib/workloads/wl_lavamd.mli: Workload
