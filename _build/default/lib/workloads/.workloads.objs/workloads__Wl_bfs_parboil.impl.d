lib/workloads/wl_bfs_parboil.ml: Array Datasets Gpu Kernel Printf Workload
