lib/workloads/wl_sgemm.mli: Workload
