lib/workloads/datasets.mli:
