lib/workloads/wl_minife.mli: Workload
