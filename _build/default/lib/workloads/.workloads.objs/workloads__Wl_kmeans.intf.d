lib/workloads/wl_kmeans.mli: Workload
