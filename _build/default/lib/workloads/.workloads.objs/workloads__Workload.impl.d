lib/workloads/workload.ml: Array Buffer Digest Gpu Int32 String
