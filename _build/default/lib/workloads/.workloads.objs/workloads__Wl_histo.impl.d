lib/workloads/wl_histo.ml: Array Gpu Kernel Printf Rng Workload
