lib/workloads/wl_streamcluster.mli: Workload
