lib/workloads/wl_spmv.ml: Array Datasets Gpu Kernel Printf Workload
