lib/workloads/wl_hotspot.mli: Workload
