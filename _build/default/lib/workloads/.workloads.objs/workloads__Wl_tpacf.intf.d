lib/workloads/wl_tpacf.mli: Workload
