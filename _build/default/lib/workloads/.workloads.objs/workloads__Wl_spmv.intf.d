lib/workloads/wl_spmv.mli: Workload
