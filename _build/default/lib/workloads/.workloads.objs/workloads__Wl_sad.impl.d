lib/workloads/wl_sad.ml: Datasets Gpu Kernel Workload
