lib/workloads/wl_pathfinder.ml: Array Datasets Gpu Kernel Printf Workload
