lib/workloads/wl_heartwall.mli: Workload
