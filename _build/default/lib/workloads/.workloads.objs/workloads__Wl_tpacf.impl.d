lib/workloads/wl_tpacf.ml: Array Gpu Kernel Printf Rng Workload
