lib/workloads/wl_histo.mli: Workload
