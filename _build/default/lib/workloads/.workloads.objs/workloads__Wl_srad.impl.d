lib/workloads/wl_srad.ml: Array Gpu Kernel Rng Workload
