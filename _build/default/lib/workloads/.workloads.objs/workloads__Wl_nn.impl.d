lib/workloads/wl_nn.ml: Array Datasets Gpu Kernel Printf Workload
