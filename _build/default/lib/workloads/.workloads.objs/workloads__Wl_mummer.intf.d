lib/workloads/wl_mummer.mli: Workload
