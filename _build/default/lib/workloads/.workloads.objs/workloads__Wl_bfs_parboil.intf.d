lib/workloads/wl_bfs_parboil.mli: Datasets Kernel Workload
