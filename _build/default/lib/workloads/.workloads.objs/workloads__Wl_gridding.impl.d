lib/workloads/wl_gridding.ml: Array Datasets Gpu Kernel Printf Workload
