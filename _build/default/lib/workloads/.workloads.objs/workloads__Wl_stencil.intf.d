lib/workloads/wl_stencil.mli: Workload
