lib/workloads/rng.mli:
