lib/workloads/wl_bfs_rodinia.ml: Array Datasets Gpu Kernel Printf Workload
