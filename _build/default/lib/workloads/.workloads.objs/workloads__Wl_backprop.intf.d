lib/workloads/wl_backprop.mli: Workload
