lib/workloads/wl_minife.ml: Array Datasets Gpu Kernel Printf Workload
