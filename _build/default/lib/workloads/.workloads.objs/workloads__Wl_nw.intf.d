lib/workloads/wl_nw.mli: Workload
