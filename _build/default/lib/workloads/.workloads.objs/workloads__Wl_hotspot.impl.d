lib/workloads/wl_hotspot.ml: Datasets Gpu Kernel Workload
