lib/workloads/wl_lavamd.ml: Array Datasets Gpu Kernel Rng Workload
