(* Parboil MRI-Q: non-Cartesian MRI reconstruction, Q computation.
   Each thread owns one voxel and accumulates cos/sin contributions
   from every k-space sample — uniform control flow, transcendental
   heavy. *)

open Kernel.Dsl

let kernel_mriq =
  kernel "mriq"
    ~params:[ ptr "kx"; ptr "ky"; ptr "phi"; ptr "x"; ptr "y"; ptr "qr";
              ptr "qi"; int "numx"; int "numk" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 7);
        let_f "xi" (ldg_f (p 3 +! (v "i" <<! int_ 2)));
        let_f "yi" (ldg_f (p 4 +! (v "i" <<! int_ 2)));
        let_f "sumr" (f32 0.0);
        let_f "sumi" (f32 0.0);
        for_ "k" (int_ 0) (p 8)
          [ let_f "arg"
              (ffma
                 (ldg_f (p 0 +! (v "k" <<! int_ 2)))
                 (v "xi")
                 (ldg_f (p 1 +! (v "k" <<! int_ 2)) *.. v "yi"));
            let_f "mag" (ldg_f (p 2 +! (v "k" <<! int_ 2)));
            set "sumr" (ffma (v "mag") (cos_ (v "arg")) (v "sumr"));
            set "sumi" (ffma (v "mag") (sin_ (v "arg")) (v "sumi")) ];
        st_global_f (p 5 +! (v "i" <<! int_ 2)) (v "sumr");
        st_global_f (p 6 +! (v "i" <<! int_ 2)) (v "sumi") ])

let run device ~variant =
  ignore variant;
  let numx = 2048 and numk = 48 in
  let compiled = Kernel.Compile.compile kernel_mriq in
  let acc, count = Workload.launcher device in
  let up seed n = Workload.upload_f32 device (Datasets.floats ~seed ~n ~scale:3.0) in
  let kx = up 1 numk and ky = up 2 numk and phi = up 3 numk in
  let x = up 4 numx and y = up 5 numx in
  let qr = Workload.alloc_i32 device numx in
  let qi = Workload.alloc_i32 device numx in
  let grid, block = Workload.grid_1d ~threads:numx ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr kx; Gpu.Device.Ptr ky; Gpu.Device.Ptr phi;
            Gpu.Device.Ptr x; Gpu.Device.Ptr y; Gpu.Device.Ptr qr;
            Gpu.Device.Ptr qi; Gpu.Device.I32 numx; Gpu.Device.I32 numk ];
  let s = Gpu.Device.read_f32s device ~addr:qr ~n:1 in
  { Workload.output_digest =
      Workload.combine_digests
        [ Workload.digest_f32 device ~addr:qr ~n:numx;
          Workload.digest_f32 device ~addr:qi ~n:numx ];
    stdout = Printf.sprintf "qr0=%.4f" s.(0);
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"mri-q" ~suite:"parboil" run
