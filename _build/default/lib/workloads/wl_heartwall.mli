(** Rodinia HEARTWALL (structurally): window search with
    early-exit correlation loops (most divergent benchmark). *)

val workload : Workload.t
