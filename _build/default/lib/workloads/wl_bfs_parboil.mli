(** Parboil BFS: frontier-queue breadth-first search over CSR graphs.
    Variants select graph structure: "1M" scale-free, "NY"/"SF"/"UT"
    road-network-like grids. *)

val workload : Workload.t

val kernel_bfs : Kernel.Ast.kernel

val graph_of_variant : string -> Datasets.graph
