(* Rodinia NN: nearest neighbour — one distance per record, a single
   tiny kernel dominated by launch overhead (the paper's smallest
   workload: k = 0.1 ms). *)

open Kernel.Dsl

let kernel_nn =
  kernel "nn"
    ~params:[ ptr "lat"; ptr "lon"; ptr "dist"; flt "tlat"; flt "tlon";
              int "n" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 5);
        let_f "dlat" (ldg_f (p 0 +! (v "i" <<! int_ 2)) -.. p 3);
        let_f "dlon" (ldg_f (p 1 +! (v "i" <<! int_ 2)) -.. p 4);
        st_global_f (p 2 +! (v "i" <<! int_ 2))
          (sqrt_ (ffma (v "dlat") (v "dlat") (v "dlon" *.. v "dlon"))) ])

let run device ~variant =
  ignore variant;
  let n = 2048 in
  let compiled = Kernel.Compile.compile kernel_nn in
  let acc, count = Workload.launcher device in
  let lat = Workload.upload_f32 device (Datasets.floats ~seed:1 ~n ~scale:90.0) in
  let lon = Workload.upload_f32 device (Datasets.floats ~seed:2 ~n ~scale:180.0) in
  let dist = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr lat; Gpu.Device.Ptr lon; Gpu.Device.Ptr dist;
            Gpu.Device.F32 45.0; Gpu.Device.F32 90.0; Gpu.Device.I32 n ];
  let d = Gpu.Device.read_f32s device ~addr:dist ~n in
  let best = Array.fold_left min d.(0) d in
  { Workload.output_digest = Workload.digest_f32 device ~addr:dist ~n;
    stdout = Printf.sprintf "best=%.4f" best;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"nn" ~suite:"rodinia" run
