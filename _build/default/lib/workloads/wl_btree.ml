(* Rodinia B+TREE: batched key lookups walking a B+ tree. All threads
   descend the same shallow tree, so node addresses and fanout
   computations are identical across a warp — the paper's strongest
   scalar-value benchmark (76% dynamic scalar). *)

open Kernel.Dsl

let order = 8  (* keys per node *)

let levels = 4

(* Node layout: order keys then order child indices (i32 each). *)
let kernel_btree =
  kernel "btree"
    ~params:[ ptr "nodes"; ptr "queries"; ptr "answers"; int "nq" ]
    (fun p ->
      let node_stride = 2 * order * 4 in
      [ let_ "q" (global_tid_x ());
        exit_if (v "q" >=! p 3);
        let_ "key" (ldg (p 1 +! (v "q" <<! int_ 2)));
        let_ "node" (int_ 0);
        for_ "level" (int_ 0) (int_ levels)
          [ (* Scan keys in the node to find the child slot. *)
            let_ "slot" (int_ 0);
            while_
              ((v "slot" <! int_ (order - 1))
               &&? (v "key"
                    >=! ldg
                          (p 0
                           +! (v "node" *! int_ node_stride)
                           +! ((v "slot" +! int_ 1) <<! int_ 2))))
              [ set "slot" (v "slot" +! int_ 1) ];
            set "node"
              (ldg
                 (p 0
                  +! (v "node" *! int_ node_stride)
                  +! int_ (order * 4)
                  +! (v "slot" <<! int_ 2))) ];
        st_global (p 2 +! (v "q" <<! int_ 2)) (v "node") ])

(* A complete [order]-way tree with sorted key ranges; internal nodes
   store child ids, last-level nodes store their range base as the
   answer payload. Ids are assigned in preorder and written as data,
   so layout order does not matter. *)
let build_tree () =
  let span_root = 1 lsl 20 in
  let entries_per_node = 2 * order in
  let nodes_acc = ref [] in
  let node_count = ref 0 in
  let rec build lo hi depth =
    let id = !node_count in
    incr node_count;
    let slot = Array.make entries_per_node 0 in
    nodes_acc := (id, slot) :: !nodes_acc;
    let width = max 1 ((hi - lo) / order) in
    for k = 0 to order - 1 do
      slot.(k) <- lo + (k * width)
    done;
    if depth + 1 < levels then
      for c = 0 to order - 1 do
        slot.(order + c) <-
          build (lo + (c * width)) (lo + ((c + 1) * width)) (depth + 1)
      done
    else
      for c = 0 to order - 1 do
        slot.(order + c) <- lo + (c * width)
      done;
    id
  in
  ignore (build 0 span_root 0);
  let n = !node_count in
  let flat = Array.make (n * entries_per_node) 0 in
  List.iter
    (fun (id, slot) ->
       Array.blit slot 0 flat (id * entries_per_node) entries_per_node)
    !nodes_acc;
  (flat, span_root)

let run device ~variant =
  ignore variant;
  let nq = 2048 in
  let compiled = Kernel.Compile.compile kernel_btree in
  let acc, count = Workload.launcher device in
  let flat, span = build_tree () in
  let nodes = Workload.upload_i32 device flat in
  let queries = Workload.upload_i32 device (Datasets.ints ~seed:71 ~n:nq ~bound:span) in
  let answers = Workload.alloc_i32 device nq in
  let grid, block = Workload.grid_1d ~threads:nq ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr nodes; Gpu.Device.Ptr queries;
            Gpu.Device.Ptr answers; Gpu.Device.I32 nq ];
  { Workload.output_digest = Workload.digest_i32 device ~addr:answers ~n:nq;
    stdout = Printf.sprintf "queries=%d" nq;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"b+tree" ~suite:"rodinia" run
