(* Parboil SGEMM: square single-precision matrix multiply with 16x16
   shared-memory tiling. Fully uniform control flow — the paper's
   exemplar of a 0%-divergence benchmark. *)

open Kernel.Dsl

let tile = 16

let kernel_sgemm =
  kernel "sgemm"
    ~params:[ ptr "a"; ptr "b"; ptr "c"; int "n" ]
    ~shared:[ ("as_", tile * tile * 4); ("bs", tile * tile * 4) ]
    (fun p ->
      [ let_ "tx" tid_x;
        let_ "ty" tid_y;
        let_ "row" ((ctaid_y *! int_ tile) +! v "ty");
        let_ "col" ((ctaid_x *! int_ tile) +! v "tx");
        let_f "acc" (f32 0.0);
        let_ "ntiles" (p 3 /! int_ tile);
        for_ "t" (int_ 0) (v "ntiles")
          [ (* Load one A and one B element into the tiles. *)
            st_shared_f
              (shared_base "as_"
               +! (((v "ty" *! int_ tile) +! v "tx") <<! int_ 2))
              (ldg_f
                 (p 0
                  +! (((v "row" *! p 3) +! (v "t" *! int_ tile) +! v "tx")
                      <<! int_ 2)));
            st_shared_f
              (shared_base "bs"
               +! (((v "ty" *! int_ tile) +! v "tx") <<! int_ 2))
              (ldg_f
                 (p 1
                  +! (((((v "t" *! int_ tile) +! v "ty") *! p 3) +! v "col")
                      <<! int_ 2)));
            sync;
            for_ "k" (int_ 0) (int_ tile)
              [ set "acc"
                  (ffma
                     (lds_f
                        (shared_base "as_"
                         +! (((v "ty" *! int_ tile) +! v "k") <<! int_ 2)))
                     (lds_f
                        (shared_base "bs"
                         +! (((v "k" *! int_ tile) +! v "tx") <<! int_ 2)))
                     (v "acc")) ];
            sync ];
        st_global_f (p 2 +! (((v "row" *! p 3) +! v "col") <<! int_ 2))
          (v "acc") ])

let size_of_variant = function
  | "small" -> 48
  | "medium" -> 80
  | v -> invalid_arg ("sgemm: unknown variant " ^ v)

let run device ~variant =
  let n = size_of_variant variant in
  let compiled = Kernel.Compile.compile kernel_sgemm in
  let acc, count = Workload.launcher device in
  let a = Workload.upload_f32 device (Datasets.floats ~seed:5 ~n:(n * n) ~scale:1.0) in
  let b = Workload.upload_f32 device (Datasets.floats ~seed:6 ~n:(n * n) ~scale:1.0) in
  let c = Workload.alloc_i32 device (n * n) in
  Workload.launch ~acc ~count device ~kernel:compiled
    ~grid:(n / tile, n / tile)
    ~block:(tile, tile)
    ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr b; Gpu.Device.Ptr c;
            Gpu.Device.I32 n ];
  let sample = Gpu.Device.read_f32s device ~addr:c ~n:4 in
  { Workload.output_digest = Workload.digest_f32 device ~addr:c ~n:(n * n);
    stdout = Printf.sprintf "c00=%.4f c01=%.4f" sample.(0) sample.(1);
    stats = acc;
    launches = !count }

let workload =
  Workload.make ~name:"sgemm" ~suite:"parboil"
    ~variants:[ "small"; "medium" ]
    ~default_variant:"small" run
