(** Rodinia PATHFINDER: row-by-row dynamic programming with
    clamped neighbour reads. *)

val workload : Workload.t
