type result = {
  output_digest : string;
  stdout : string;
  stats : Gpu.Stats.t;
  launches : int;
}

type t = {
  name : string;
  suite : string;
  variants : string list;
  default_variant : string;
  run : Gpu.Device.t -> variant:string -> result;
}

let make ~name ~suite ?(variants = [ "default" ]) ?default_variant run =
  let default_variant =
    match default_variant with
    | Some v -> v
    | None ->
      (match variants with
       | v :: _ -> v
       | [] -> invalid_arg "Workload.make: no variants")
  in
  { name; suite; variants; default_variant; run }

let digest_i32 device ~addr ~n =
  let values = Gpu.Device.read_i32s device ~addr ~n in
  let b = Buffer.create (n * 4) in
  Array.iter (fun v -> Buffer.add_int32_le b (Int32.of_int v)) values;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes b))

let digest_f32 device ~addr ~n = digest_i32 device ~addr ~n

let combine_digests ds = Digest.to_hex (Digest.string (String.concat "|" ds))

let upload_i32 device values =
  let addr = Gpu.Device.malloc device (4 * max 1 (Array.length values)) in
  Gpu.Device.write_i32s device ~addr values;
  addr

let upload_f32 device values =
  let addr = Gpu.Device.malloc device (4 * max 1 (Array.length values)) in
  Gpu.Device.write_f32s device ~addr values;
  addr

let alloc_i32 device n =
  let addr = Gpu.Device.malloc device (4 * max 1 n) in
  Gpu.Device.memset device ~addr ~len:(4 * max 1 n) '\000';
  addr

let launcher _device = (Gpu.Stats.create (), ref 0)

let launch ~acc ~count device ~kernel ~grid ~block ~args =
  let stats = Gpu.Device.launch device ~kernel ~grid ~block ~args in
  Gpu.Stats.accumulate ~into:acc stats;
  incr count

let grid_1d ~threads ~block =
  (((threads + block - 1) / block, 1), (block, 1))
