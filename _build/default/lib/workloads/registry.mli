(** All registered workloads, addressable by suite-qualified name. *)

val all : Workload.t list
(** Every benchmark, in (suite, name) order. *)

val find : string -> Workload.t
(** Lookup by ["name"] or ["suite/name"]; Parboil and Rodinia both
    ship a "bfs", so the bare name resolves Parboil first.
    @raise Not_found if unknown. *)

val find_opt : string -> Workload.t option

val names : unit -> string list
(** Suite-qualified names of every workload. *)
