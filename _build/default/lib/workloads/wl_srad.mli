(** Rodinia SRAD v1/v2: anisotropic diffusion; v1 is branch-free
    in the interior, v2 gates updates on image content. *)


val v1 : Workload.t

val v2 : Workload.t
