(* Parboil MRI-Gridding (structurally): each thread scatters one
   k-space sample into a neighbourhood of grid cells with atomics.
   Sample coordinates are random, so the scatter is address-divergent
   and atomic-heavy — the paper lists mri-gridding among the most
   memory-divergent codes. *)

open Kernel.Dsl

let grid_dim = 64

let kernel_gridding =
  kernel "mri_gridding"
    ~params:[ ptr "sx"; ptr "sy"; ptr "sval"; ptr "grid"; int "n" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 4);
        let_ "gx" (ldg (p 0 +! (v "i" <<! int_ 2)));
        let_ "gy" (ldg (p 1 +! (v "i" <<! int_ 2)));
        let_ "value" (ldg (p 2 +! (v "i" <<! int_ 2)));
        (* 3x3 neighbourhood scatter with clamping. *)
        for_ "dy" (int_ 0) (int_ 3)
          [ for_ "dx" (int_ 0) (int_ 3)
              [ let_ "cx"
                  (imin (imax (v "gx" +! v "dx" -! int_ 1) (int_ 0))
                     (int_ (grid_dim - 1)));
                let_ "cy"
                  (imin (imax (v "gy" +! v "dy" -! int_ 1) (int_ 0))
                     (int_ (grid_dim - 1)));
                atomic_add
                  (p 3 +! (((v "cy" *! int_ grid_dim) +! v "cx") <<! int_ 2))
                  (v "value") ] ] ])

let run device ~variant =
  ignore variant;
  let n = 2048 in
  let compiled = Kernel.Compile.compile kernel_gridding in
  let acc, count = Workload.launcher device in
  let sx = Workload.upload_i32 device (Datasets.ints ~seed:1 ~n ~bound:grid_dim) in
  let sy = Workload.upload_i32 device (Datasets.ints ~seed:2 ~n ~bound:grid_dim) in
  let sval = Workload.upload_i32 device (Datasets.ints ~seed:3 ~n ~bound:100) in
  let grid_buf = Workload.alloc_i32 device (grid_dim * grid_dim) in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr sx; Gpu.Device.Ptr sy; Gpu.Device.Ptr sval;
            Gpu.Device.Ptr grid_buf; Gpu.Device.I32 n ];
  let total =
    Array.fold_left ( + ) 0
      (Gpu.Device.read_i32s device ~addr:grid_buf ~n:(grid_dim * grid_dim))
  in
  { Workload.output_digest =
      Workload.digest_i32 device ~addr:grid_buf ~n:(grid_dim * grid_dim);
    stdout = Printf.sprintf "mass=%d" total;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"mri-gridding" ~suite:"parboil" run
