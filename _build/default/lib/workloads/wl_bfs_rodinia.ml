(* Rodinia-style BFS: level-synchronous, node-per-thread. Every thread
   checks whether its node is in the current frontier mask; frontier
   threads relax all neighbours. A different implementation of the
   same problem than the Parboil queue version — the paper uses the
   pair to show divergence depends on implementation, not just
   algorithm. *)

open Kernel.Dsl

let kernel_bfs =
  kernel "bfs_rodinia"
    ~params:
      [ ptr "row_offsets"; ptr "columns"; ptr "mask"; ptr "next_mask";
        ptr "visited"; ptr "cost"; int "n"; ptr "changed" ]
    (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 6);
        when_ (ldg (p 2 +! (v "gid" <<! int_ 2)) ==! int_ 1)
          [ st_global (p 2 +! (v "gid" <<! int_ 2)) (int_ 0);
            let_ "my_cost" (ldg (p 5 +! (v "gid" <<! int_ 2)));
            let_ "start" (ldg (p 0 +! (v "gid" <<! int_ 2)));
            let_ "stop" (ldg (p 0 +! (v "gid" <<! int_ 2) +! int_ 4));
            let_ "old" (int_ 0);
            for_ "i" (v "start") (v "stop")
              [ let_ "nbr" (ldg (p 1 +! (v "i" <<! int_ 2)));
                atomic_cas "old" (p 4 +! (v "nbr" <<! int_ 2)) (int_ 0)
                  (int_ 1);
                when_ (v "old" ==! int_ 0)
                  [ st_global (p 5 +! (v "nbr" <<! int_ 2))
                      (v "my_cost" +! int_ 1);
                    st_global (p 3 +! (v "nbr" <<! int_ 2)) (int_ 1);
                    atomic_add (p 7) (int_ 1) ] ] ] ])

let run device ~variant =
  ignore variant;
  let g = Datasets.scale_free_graph ~seed:77 ~nodes:4096 ~avg_degree:6 in
  let compiled = Kernel.Compile.compile kernel_bfs in
  let acc, count = Workload.launcher device in
  let n = g.Datasets.num_nodes in
  let row_offsets = Workload.upload_i32 device g.Datasets.row_offsets in
  let columns = Workload.upload_i32 device g.Datasets.columns in
  let mask_init = Array.make n 0 in
  mask_init.(g.Datasets.source) <- 1;
  let mask = Workload.upload_i32 device mask_init in
  let next_mask = Workload.alloc_i32 device n in
  let visited_init = Array.make n 0 in
  visited_init.(g.Datasets.source) <- 1;
  let visited = Workload.upload_i32 device visited_init in
  let cost = Workload.alloc_i32 device n in
  let changed = Workload.alloc_i32 device 1 in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  let rec loop current next iters =
    Gpu.Device.write_i32 device changed 0;
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:
        [ Gpu.Device.Ptr row_offsets; Gpu.Device.Ptr columns;
          Gpu.Device.Ptr current; Gpu.Device.Ptr next;
          Gpu.Device.Ptr visited; Gpu.Device.Ptr cost; Gpu.Device.I32 n;
          Gpu.Device.Ptr changed ];
    if Gpu.Device.read_i32 device changed > 0 && iters < n then
      loop next current (iters + 1)
    else iters
  in
  let iters = loop mask next_mask 0 in
  { Workload.output_digest = Workload.digest_i32 device ~addr:cost ~n;
    stdout = Printf.sprintf "iterations=%d" iters;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"bfs" ~suite:"rodinia" run
