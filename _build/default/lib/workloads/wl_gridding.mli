(** Parboil MRI-Gridding (structurally): atomic 3x3 scatter of
    samples into a grid (address divergent). *)

val workload : Workload.t
