(** The common workload interface: every benchmark registers a name,
    suite, dataset variants, and a driver that allocates its inputs on
    a device, launches its kernels (through {!Gpu.Device.launch}, so
    installed instrumentation applies), and returns a digest of its
    outputs for correctness and SDC comparison. *)

type result = {
  output_digest : string;  (** primary output buffer(s) *)
  stdout : string;  (** short textual summary (the "stdout" channel) *)
  stats : Gpu.Stats.t;  (** accumulated over all kernel launches *)
  launches : int;
}

type t = {
  name : string;
  suite : string;  (** "parboil", "rodinia" or "minife" *)
  variants : string list;
  default_variant : string;
  run : Gpu.Device.t -> variant:string -> result;
}

val make :
  name:string ->
  suite:string ->
  ?variants:string list ->
  ?default_variant:string ->
  (Gpu.Device.t -> variant:string -> result) ->
  t

(** {1 Driver helpers} *)

val digest_i32 : Gpu.Device.t -> addr:int -> n:int -> string

val digest_f32 : Gpu.Device.t -> addr:int -> n:int -> string
(** Digests the bit patterns: deterministic and rounding-exact. *)

val combine_digests : string list -> string

val upload_i32 : Gpu.Device.t -> int array -> int
(** malloc + write; returns the device address. *)

val upload_f32 : Gpu.Device.t -> float array -> int

val alloc_i32 : Gpu.Device.t -> int -> int
(** Zeroed device array of n 32-bit words. *)

val launcher : Gpu.Device.t -> Gpu.Stats.t * int ref
(** [(acc, count)] to pass to {!launch}: accumulated statistics and a
    launch counter. *)

val launch :
  acc:Gpu.Stats.t ->
  count:int ref ->
  Gpu.Device.t ->
  kernel:Sass.Program.kernel ->
  grid:int * int ->
  block:int * int ->
  args:Gpu.Device.arg list ->
  unit

val grid_1d : threads:int -> block:int -> (int * int) * (int * int)
(** Grid/block shape covering [threads] with 1-D blocks of [block]. *)
