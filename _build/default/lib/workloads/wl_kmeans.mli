(** Rodinia KMEANS: cluster-assignment kernel over all
    centers/dimensions. *)

val workload : Workload.t
