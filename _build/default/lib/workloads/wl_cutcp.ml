(* Parboil CUTCP: cutoff Coulombic potential. Each thread owns one
   lattice point and loops over the atom list, accumulating charge
   only inside the cutoff radius — a data-dependent branch nested in a
   uniform loop. *)

open Kernel.Dsl

let lattice = 48

let kernel_cutcp =
  kernel "cutcp"
    ~params:[ ptr "ax"; ptr "ay"; ptr "aq"; ptr "potential"; int "natoms";
              flt "cutoff2" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! int_ (lattice * lattice));
        let_f "px" (i2f (v "i" %! int_ lattice) *.. f32 (1.0 /. 8.0));
        let_f "py" (i2f (v "i" /! int_ lattice) *.. f32 (1.0 /. 8.0));
        let_f "energy" (f32 0.0);
        for_ "a" (int_ 0) (p 4)
          [ let_f "dx" (ldg_f (p 0 +! (v "a" <<! int_ 2)) -.. v "px");
            let_f "dy" (ldg_f (p 1 +! (v "a" <<! int_ 2)) -.. v "py");
            let_f "r2" (ffma (v "dx") (v "dx") (v "dy" *.. v "dy"));
            when_ (v "r2" <.. p 5)
              [ set "energy"
                  (v "energy"
                   +.. (ldg_f (p 2 +! (v "a" <<! int_ 2))
                        *.. rsqrt (v "r2" +.. f32 0.01))) ] ];
        st_global_f (p 3 +! (v "i" <<! int_ 2)) (v "energy") ])

let run device ~variant =
  ignore variant;
  let natoms = 96 in
  let compiled = Kernel.Compile.compile kernel_cutcp in
  let acc, count = Workload.launcher device in
  let scale = float_of_int lattice /. 8.0 in
  let ax = Workload.upload_f32 device (Datasets.floats ~seed:1 ~n:natoms ~scale) in
  let ay = Workload.upload_f32 device (Datasets.floats ~seed:2 ~n:natoms ~scale) in
  let aq = Workload.upload_f32 device (Datasets.floats ~seed:3 ~n:natoms ~scale:2.0) in
  let potential = Workload.alloc_i32 device (lattice * lattice) in
  let grid, block = Workload.grid_1d ~threads:(lattice * lattice) ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr ax; Gpu.Device.Ptr ay; Gpu.Device.Ptr aq;
            Gpu.Device.Ptr potential; Gpu.Device.I32 natoms;
            Gpu.Device.F32 1.5 ];
  { Workload.output_digest =
      Workload.digest_f32 device ~addr:potential ~n:(lattice * lattice);
    stdout = "done";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"cutcp" ~suite:"parboil" run
