(** Parboil LBM: D2Q5 lattice-Boltzmann step with obstacle
    bounce-back. *)

val workload : Workload.t

val kernel_lbm : Kernel.Ast.kernel
(** Exposed for conservation-law tests. *)
