(* Rodinia NW: Needleman-Wunsch sequence alignment. The score matrix
   fills along anti-diagonals, one kernel launch per diagonal, with
   threads covering the diagonal cells. *)

open Kernel.Dsl

let seqlen = 96

let kernel_nw_diag =
  kernel "nw_diag"
    ~params:[ ptr "score"; ptr "seq1"; ptr "seq2"; int "n"; int "diag";
              int "penalty" ]
    (fun p ->
      [ let_ "t" (global_tid_x ());
        (* Cells (i, j) with i + j = diag, 1 <= i, j <= n. *)
        let_ "i" (imax (int_ 1) (p 4 -! p 3) +! v "t");
        let_ "j" (p 4 -! v "i");
        exit_if ((v "i" >! p 3) ||? (v "j" <! int_ 1) ||? (v "j" >! p 3));
        let_ "w" (p 3 +! int_ 1);
        let_ "m"
          (ldg (p 0 +! ((((v "i" -! int_ 1) *! v "w") +! v "j" -! int_ 1)
                        <<! int_ 2)));
        let_ "del"
          (ldg (p 0 +! ((((v "i" -! int_ 1) *! v "w") +! v "j") <<! int_ 2)));
        let_ "ins"
          (ldg (p 0 +! (((v "i" *! v "w") +! v "j" -! int_ 1) <<! int_ 2)));
        let_ "same"
          (select
             (ldg (p 1 +! ((v "i" -! int_ 1) <<! int_ 2))
              ==! ldg (p 2 +! ((v "j" -! int_ 1) <<! int_ 2)))
             (int_ 2) (int_ (-1)));
        st_global (p 0 +! (((v "i" *! v "w") +! v "j") <<! int_ 2))
          (imax (v "m" +! v "same")
             (imax (v "del" -! p 5) (v "ins" -! p 5))) ])

let run device ~variant =
  ignore variant;
  let n = seqlen in
  let w = n + 1 in
  let compiled = Kernel.Compile.compile kernel_nw_diag in
  let acc, count = Workload.launcher device in
  let score_init = Array.make (w * w) 0 in
  for k = 0 to n do
    score_init.(k) <- -k;  (* first row *)
    score_init.(k * w) <- -k  (* first column *)
  done;
  let score =
    Workload.upload_i32 device
      (Array.map (fun x -> x land Gpu.Value.mask) score_init)
  in
  let seq1 = Workload.upload_i32 device (Datasets.ints ~seed:1 ~n ~bound:4) in
  let seq2 = Workload.upload_i32 device (Datasets.ints ~seed:2 ~n ~bound:4) in
  for diag = 2 to 2 * n do
    let cells = min (diag - 1) (min n ((2 * n) - diag + 1)) in
    let grid, block = Workload.grid_1d ~threads:cells ~block:64 in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr score; Gpu.Device.Ptr seq1;
              Gpu.Device.Ptr seq2; Gpu.Device.I32 n; Gpu.Device.I32 diag;
              Gpu.Device.I32 1 ]
  done;
  let final_score =
    Gpu.Value.signed (Gpu.Device.read_i32 device (score + (4 * ((n * w) + n))))
  in
  { Workload.output_digest = Workload.digest_i32 device ~addr:score ~n:(w * w);
    stdout = Printf.sprintf "score=%d" final_score;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"nw" ~suite:"rodinia" run
