(* Rodinia BACKPROP: one hidden-layer feed-forward pass plus a weight
   adjustment pass — dense dot products, uniform control flow. The
   sigmoid uses the hardware EX2 unit. *)

open Kernel.Dsl

let inputs = 256

let hidden = 64

let kernel_forward =
  kernel "backprop_forward"
    ~params:[ ptr "in"; ptr "w"; ptr "hid"; int "nin"; int "nhid" ]
    (fun p ->
      [ let_ "j" (global_tid_x ());
        exit_if (v "j" >=! p 4);
        let_f "sum" (f32 0.0);
        for_ "i" (int_ 0) (p 3)
          [ set "sum"
              (ffma
                 (ldg_f (p 0 +! (v "i" <<! int_ 2)))
                 (ldg_f (p 1 +! (((v "i" *! p 4) +! v "j") <<! int_ 2)))
                 (v "sum")) ];
        (* sigmoid(x) ~ 1 / (1 + 2^(-1.4427 x)) *)
        st_global_f (p 2 +! (v "j" <<! int_ 2))
          (rcp (f32 1.0 +.. exp2 (f32 0.0 -.. (v "sum" *.. f32 1.4427)))) ])

let kernel_adjust =
  kernel "backprop_adjust"
    ~params:[ ptr "w"; ptr "in"; ptr "delta"; int "nin"; int "nhid";
              flt "eta" ]
    (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! (p 3 *! p 4));
        let_ "i" (v "gid" /! p 4);
        let_ "j" (v "gid" %! p 4);
        st_global_f (p 0 +! (v "gid" <<! int_ 2))
          (ffma (p 5)
             (ldg_f (p 1 +! (v "i" <<! int_ 2))
              *.. ldg_f (p 2 +! (v "j" <<! int_ 2)))
             (ldg_f (p 0 +! (v "gid" <<! int_ 2)))) ])

let run device ~variant =
  ignore variant;
  let fwd = Kernel.Compile.compile kernel_forward in
  let adj = Kernel.Compile.compile kernel_adjust in
  let acc, count = Workload.launcher device in
  let input = Workload.upload_f32 device (Datasets.floats ~seed:1 ~n:inputs ~scale:1.0) in
  let w =
    Workload.upload_f32 device
      (Datasets.floats ~seed:2 ~n:(inputs * hidden) ~scale:0.1)
  in
  let hid = Workload.alloc_i32 device hidden in
  let delta = Workload.upload_f32 device (Datasets.floats ~seed:3 ~n:hidden ~scale:0.1) in
  let gridf, blockf = Workload.grid_1d ~threads:hidden ~block:64 in
  Workload.launch ~acc ~count device ~kernel:fwd ~grid:gridf ~block:blockf
    ~args:[ Gpu.Device.Ptr input; Gpu.Device.Ptr w; Gpu.Device.Ptr hid;
            Gpu.Device.I32 inputs; Gpu.Device.I32 hidden ];
  let grida, blocka = Workload.grid_1d ~threads:(inputs * hidden) ~block:128 in
  Workload.launch ~acc ~count device ~kernel:adj ~grid:grida ~block:blocka
    ~args:[ Gpu.Device.Ptr w; Gpu.Device.Ptr input; Gpu.Device.Ptr delta;
            Gpu.Device.I32 inputs; Gpu.Device.I32 hidden;
            Gpu.Device.F32 0.3 ];
  { Workload.output_digest =
      Workload.combine_digests
        [ Workload.digest_f32 device ~addr:hid ~n:hidden;
          Workload.digest_f32 device ~addr:w ~n:(inputs * hidden) ];
    stdout = "passes=2";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"backprop" ~suite:"rodinia" run
