(* Parboil LBM: lattice-Boltzmann fluid step, D2Q5 flavour. Each cell
   gathers its five distribution values, relaxes them toward
   equilibrium and streams the result — wide, float-heavy, and
   branch-light except for the obstacle test. *)

open Kernel.Dsl

let dim = 64

let q = 5  (* rest, +x, -x, +y, -y *)

let kernel_lbm =
  kernel "lbm"
    ~params:[ ptr "src"; ptr "dst"; ptr "obstacle"; int "dim" ]
    (fun p ->
      let f k idx = ldg_f (p 0 +! (((int_ k *! (p 3 *! p 3)) +! idx) <<! int_ 2)) in
      let stf k idx value =
        st_global_f (p 1 +! (((int_ k *! (p 3 *! p 3)) +! idx) <<! int_ 2)) value
      in
      let relax fi feq = ffma (f32 0.6) (feq -.. fi) fi in
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! (p 3 *! p 3));
        let_ "x" (v "i" %! p 3);
        let_ "y" (v "i" /! p 3);
        (* Gather with periodic wrap. *)
        let_ "xe" ((v "x" +! int_ 1) %! p 3);
        let_ "xw" ((v "x" +! p 3 -! int_ 1) %! p 3);
        let_ "yn" ((v "y" +! int_ 1) %! p 3);
        let_ "ys" ((v "y" +! p 3 -! int_ 1) %! p 3);
        let_f "f0" (f 0 (v "i"));
        let_f "f1" (f 1 ((v "y" *! p 3) +! v "xw"));
        let_f "f2" (f 2 ((v "y" *! p 3) +! v "xe"));
        let_f "f3" (f 3 ((v "ys" *! p 3) +! v "x"));
        let_f "f4" (f 4 ((v "yn" *! p 3) +! v "x"));
        if_ (ldg (p 2 +! (v "i" <<! int_ 2)) ==! int_ 1)
          [ (* Obstacle: bounce-back. *)
            stf 0 (v "i") (v "f0");
            stf 1 (v "i") (v "f2");
            stf 2 (v "i") (v "f1");
            stf 3 (v "i") (v "f4");
            stf 4 (v "i") (v "f3") ]
          [ let_f "rho"
              (v "f0" +.. v "f1" +.. v "f2" +.. v "f3" +.. v "f4");
            let_f "ux" ((v "f1" -.. v "f2") /.. (v "rho" +.. f32 0.001));
            let_f "uy" ((v "f3" -.. v "f4") /.. (v "rho" +.. f32 0.001));
            let_f "feq0" (v "rho" *.. f32 0.2);
            let_f "feq1" (v "rho" *.. (f32 0.2 +.. (f32 0.1 *.. v "ux")));
            let_f "feq2" (v "rho" *.. (f32 0.2 -.. (f32 0.1 *.. v "ux")));
            let_f "feq3" (v "rho" *.. (f32 0.2 +.. (f32 0.1 *.. v "uy")));
            let_f "feq4" (v "rho" *.. (f32 0.2 -.. (f32 0.1 *.. v "uy")));
            stf 0 (v "i") (relax (v "f0") (v "feq0"));
            stf 1 (v "i") (relax (v "f1") (v "feq1"));
            stf 2 (v "i") (relax (v "f2") (v "feq2"));
            stf 3 (v "i") (relax (v "f3") (v "feq3"));
            stf 4 (v "i") (relax (v "f4") (v "feq4")) ] ])

let run device ~variant =
  ignore variant;
  let cells = dim * dim in
  let compiled = Kernel.Compile.compile kernel_lbm in
  let acc, count = Workload.launcher device in
  let src = Workload.upload_f32 device (Datasets.floats ~seed:3 ~n:(q * cells) ~scale:1.0) in
  let dst = Workload.alloc_i32 device (q * cells) in
  let rng = Rng.create ~seed:19 in
  let obstacle =
    Workload.upload_i32 device
      (Array.init cells (fun _ -> if Rng.int rng 100 < 6 then 1 else 0))
  in
  let grid, block = Workload.grid_1d ~threads:cells ~block:128 in
  let bufs = ref (src, dst) in
  for _ = 1 to 4 do
    let s, d = !bufs in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr s; Gpu.Device.Ptr d; Gpu.Device.Ptr obstacle;
              Gpu.Device.I32 dim ];
    bufs := (d, s)
  done;
  let final, _ = !bufs in
  { Workload.output_digest =
      Workload.digest_f32 device ~addr:final ~n:(q * cells);
    stdout = "steps=4";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"lbm" ~suite:"parboil" run
