(* Rodinia SRAD: speckle-reducing anisotropic diffusion, both
   implementations the paper contrasts. v1 clamps boundary indices so
   its only branch is near-uniform (<1% divergence in the paper); v2
   gates the diffusion update on a per-pixel data threshold, so warps
   split on image content (~21% in the paper). *)

open Kernel.Dsl

let dim = 96

let clampi e lo hi = imin (imax e lo) hi

(* Shared gradient/diffusion step; [gate] controls whether the update
   is applied under a data-dependent branch. *)
let srad_kernel name ~gated =
  kernel name
    ~params:[ ptr "src"; ptr "dst"; int "dim"; flt "lambda" ]
    (fun p ->
      let at ix iy = ldg_f (p 0 +! (((iy *! p 2) +! ix) <<! int_ 2)) in
      let body_update =
        [ let_f "dn" (v "north" -.. v "c");
          let_f "ds" (v "south" -.. v "c");
          let_f "dw" (v "west" -.. v "c");
          let_f "de" (v "east" -.. v "c");
          let_f "g2"
            ((v "dn" *.. v "dn") +.. (v "ds" *.. v "ds")
             +.. (v "dw" *.. v "dw") +.. (v "de" *.. v "de"));
          let_f "coeff" (rcp (f32 1.0 +.. v "g2"));
          st_global_f (p 1 +! (v "i" <<! int_ 2))
            (ffma (p 3)
               (v "coeff" *.. (v "dn" +.. v "ds" +.. v "dw" +.. v "de"))
               (v "c")) ]
      in
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! (p 2 *! p 2));
        let_ "x" (v "i" %! p 2);
        let_ "y" (v "i" /! p 2);
        let_f "c" (at (v "x") (v "y"));
        let_f "north" (at (v "x") (clampi (v "y" -! int_ 1) (int_ 0) (p 2 -! int_ 1)));
        let_f "south" (at (v "x") (clampi (v "y" +! int_ 1) (int_ 0) (p 2 -! int_ 1)));
        let_f "west" (at (clampi (v "x" -! int_ 1) (int_ 0) (p 2 -! int_ 1)) (v "y"));
        let_f "east" (at (clampi (v "x" +! int_ 1) (int_ 0) (p 2 -! int_ 1)) (v "y")) ]
      @
      (if gated then
         [ (* v2: only diffuse sufficiently speckled pixels — a
              data-dependent warp split. *)
           if_ (fabs (v "north" +.. v "south" -.. (f32 2.0 *.. v "c"))
                >.. f32 0.3)
             body_update
             [ st_global_f (p 1 +! (v "i" <<! int_ 2)) (v "c") ] ]
       else body_update))

let kernel_v1 = srad_kernel "srad_v1" ~gated:false

let kernel_v2 = srad_kernel "srad_v2" ~gated:true

(* A spatially smooth ultrasound-like image with localized speckle
   patches: most warps see uniform data (no split at v2's gate), while
   patch boundaries diverge — reproducing the paper's ~20% v2 rate. *)
let speckle_image () =
  let rng = Rng.create ~seed:33 in
  let img = Array.make (dim * dim) 0.0 in
  for y = 0 to dim - 1 do
    for x = 0 to dim - 1 do
      img.((y * dim) + x) <-
        0.5
        +. (0.3 *. sin (float_of_int x /. 9.0))
        +. (0.2 *. cos (float_of_int y /. 7.0))
    done
  done;
  for _ = 1 to 16 do
    let cx = Rng.int rng dim and cy = Rng.int rng dim in
    for dy = -2 to 2 do
      for dx = -2 to 2 do
        let x = cx + dx and y = cy + dy in
        if x >= 0 && x < dim && y >= 0 && y < dim then
          img.((y * dim) + x) <-
            img.((y * dim) + x) +. Rng.float rng 0.8
      done
    done
  done;
  img

let run_version kernel device =
  let n = dim * dim in
  let compiled = Kernel.Compile.compile kernel in
  let acc, count = Workload.launcher device in
  let a = Workload.upload_f32 device (speckle_image ()) in
  let b = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  let bufs = ref (a, b) in
  for _ = 1 to 4 do
    let src, dst = !bufs in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr src; Gpu.Device.Ptr dst; Gpu.Device.I32 dim;
              Gpu.Device.F32 0.125 ];
    bufs := (dst, src)
  done;
  let final, _ = !bufs in
  { Workload.output_digest = Workload.digest_f32 device ~addr:final ~n;
    stdout = "iters=4";
    stats = acc;
    launches = !count }

let v1 =
  Workload.make ~name:"srad_v1" ~suite:"rodinia" (fun device ~variant ->
      ignore variant;
      run_version kernel_v1 device)

let v2 =
  Workload.make ~name:"srad_v2" ~suite:"rodinia" (fun device ~variant ->
      ignore variant;
      run_version kernel_v2 device)
