(** Parboil SAD: 8x8 block sum-of-absolute-differences matching. *)

val workload : Workload.t
