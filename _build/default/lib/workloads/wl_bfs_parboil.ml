(* Parboil-style BFS: frontier-queue traversal. Each thread dequeues a
   node, scans its CSR adjacency list (degree-dependent loop — the
   divergence source), claims unvisited neighbours with an atomic CAS
   and appends them to the next frontier through an atomic counter.
   The host iterates until the frontier is empty.

   Variants map to the paper's datasets by structure: "1M" is a
   scale-free random graph (wide frontiers, skewed degrees); NY/SF/UT
   are road-network-like grids (narrow frontiers, huge diameter). *)

open Kernel.Dsl

let kernel_bfs =
  kernel "bfs_parboil"
    ~params:
      [ ptr "row_offsets"; ptr "columns"; ptr "levels"; ptr "frontier_in";
        int "in_count"; ptr "frontier_out"; ptr "out_count"; int "level" ]
    (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! p 4);
        let_ "node" (ldg (p 3 +! (v "gid" <<! int_ 2)));
        let_ "start" (ldg (p 0 +! (v "node" <<! int_ 2)));
        let_ "stop" (ldg (p 0 +! (v "node" <<! int_ 2) +! int_ 4));
        let_ "old" (int_ 0);
        let_ "idx" (int_ 0);
        for_ "i" (v "start") (v "stop")
          [ let_ "nbr" (ldg (p 1 +! (v "i" <<! int_ 2)));
            (* Cheap unvisited test first, as the real code does. *)
            if_ (ldg (p 2 +! (v "nbr" <<! int_ 2)) ==! int_ (-1))
              [ atomic_cas "old"
                  (p 2 +! (v "nbr" <<! int_ 2))
                  (int_ (-1)) (p 7);
                when_ (v "old" ==! int_ (-1))
                  [ atomic_add_ret "idx" (p 6) (int_ 1);
                    st_global (p 5 +! (v "idx" <<! int_ 2)) (v "nbr") ] ]
              [] ] ])

let graph_of_variant variant =
  match variant with
  | "1M" -> Datasets.scale_free_graph ~seed:11 ~nodes:6144 ~avg_degree:8
  | "NY" -> Datasets.road_graph ~seed:21 ~width:56 ~height:44
  | "SF" -> Datasets.road_graph ~seed:31 ~width:72 ~height:52
  | "UT" -> Datasets.road_graph ~seed:41 ~width:48 ~height:40
  | v -> invalid_arg ("bfs: unknown variant " ^ v)

let run device ~variant =
  let g = graph_of_variant variant in
  let compiled = Kernel.Compile.compile kernel_bfs in
  let acc, count = Workload.launcher device in
  let n = g.Datasets.num_nodes in
  let row_offsets = Workload.upload_i32 device g.Datasets.row_offsets in
  let columns = Workload.upload_i32 device g.Datasets.columns in
  let levels_init = Array.make n (-1) in
  levels_init.(g.Datasets.source) <- 0;
  let levels = Workload.upload_i32 device levels_init in
  let max_frontier = n in
  let frontier_a = Workload.alloc_i32 device max_frontier in
  let frontier_b = Workload.alloc_i32 device max_frontier in
  let out_count = Workload.alloc_i32 device 1 in
  Gpu.Device.write_i32 device frontier_a g.Datasets.source;
  let rec loop fin fout in_count level =
    if in_count > 0 && level < n then begin
      Gpu.Device.write_i32 device out_count 0;
      let grid, block = Workload.grid_1d ~threads:in_count ~block:64 in
      Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
        ~args:
          [ Gpu.Device.Ptr row_offsets; Gpu.Device.Ptr columns;
            Gpu.Device.Ptr levels; Gpu.Device.Ptr fin;
            Gpu.Device.I32 in_count; Gpu.Device.Ptr fout;
            Gpu.Device.Ptr out_count; Gpu.Device.I32 (level + 1) ];
      let produced = Gpu.Device.read_i32 device out_count in
      loop fout fin (min produced max_frontier) (level + 1)
    end
    else level
  in
  let rounds = loop frontier_a frontier_b 1 0 in
  let depth = max 0 (rounds - 1) in
  let final_levels = Gpu.Device.read_i32s device ~addr:levels ~n in
  let visited =
    Array.fold_left
      (fun a l -> if Gpu.Value.signed l >= 0 then a + 1 else a)
      0 final_levels
  in
  { Workload.output_digest = Workload.digest_i32 device ~addr:levels ~n;
    stdout = Printf.sprintf "visited=%d depth=%d" visited depth;
    stats = acc;
    launches = !count }

let workload =
  Workload.make ~name:"bfs" ~suite:"parboil"
    ~variants:[ "1M"; "NY"; "SF"; "UT" ]
    ~default_variant:"NY" run
