(* Parboil TPACF: two-point angular correlation. Each thread owns one
   point, loops over the whole set computing dot products, and walks a
   bin-edge table with a data-dependent loop before updating a shared
   histogram atomically — the paper's most divergent Parboil code. *)

open Kernel.Dsl

let nbins = 16

let kernel_tpacf =
  kernel "tpacf"
    ~params:[ ptr "xs"; ptr "ys"; ptr "zs"; ptr "binb"; ptr "hist"; int "n" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 5);
        let_f "xi" (ldg_f (p 0 +! (v "i" <<! int_ 2)));
        let_f "yi" (ldg_f (p 1 +! (v "i" <<! int_ 2)));
        let_f "zi" (ldg_f (p 2 +! (v "i" <<! int_ 2)));
        for_ "j" (v "i" +! int_ 1) (p 5)
          [ let_f "dot"
              (ffma (v "xi")
                 (ldg_f (p 0 +! (v "j" <<! int_ 2)))
                 (ffma (v "yi")
                    (ldg_f (p 1 +! (v "j" <<! int_ 2)))
                    (v "zi" *.. ldg_f (p 2 +! (v "j" <<! int_ 2)))));
            (* Data-dependent bin search over the edge table. *)
            let_ "bin" (int_ 0);
            while_
              ((v "bin" <! int_ (nbins - 1))
               &&? (v "dot" <.. ldg_f (p 3 +! (v "bin" <<! int_ 2))))
              [ set "bin" (v "bin" +! int_ 1) ];
            atomic_add (p 4 +! (v "bin" <<! int_ 2)) (int_ 1) ] ])

let run device ~variant =
  ignore variant;
  let n = 512 in
  let compiled = Kernel.Compile.compile kernel_tpacf in
  let acc, count = Workload.launcher device in
  (* Unit vectors on the sphere. *)
  let rng = Rng.create ~seed:13 in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 and zs = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let theta = Rng.float rng 6.2831853 in
    let u = Rng.float rng 2.0 -. 1.0 in
    let r = sqrt (1.0 -. (u *. u)) in
    xs.(i) <- r *. cos theta;
    ys.(i) <- r *. sin theta;
    zs.(i) <- u
  done;
  let binb =
    Array.init nbins (fun b ->
        cos (float_of_int (b + 1) *. 3.14159265 /. float_of_int nbins))
  in
  let dxs = Workload.upload_f32 device xs in
  let dys = Workload.upload_f32 device ys in
  let dzs = Workload.upload_f32 device zs in
  let dbinb = Workload.upload_f32 device binb in
  let hist = Workload.alloc_i32 device nbins in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
    ~args:[ Gpu.Device.Ptr dxs; Gpu.Device.Ptr dys; Gpu.Device.Ptr dzs;
            Gpu.Device.Ptr dbinb; Gpu.Device.Ptr hist; Gpu.Device.I32 n ];
  let h = Gpu.Device.read_i32s device ~addr:hist ~n:nbins in
  let total = Array.fold_left ( + ) 0 h in
  { Workload.output_digest = Workload.digest_i32 device ~addr:hist ~n:nbins;
    stdout = Printf.sprintf "pairs=%d bin0=%d" total h.(0);
    stats = acc;
    launches = !count }

let workload =
  Workload.make ~name:"tpacf" ~suite:"parboil" ~variants:[ "small" ] run
