(* Rodinia GAUSSIAN: gaussian elimination with the Fan1/Fan2 kernel
   pair launched once per pivot — hundreds of tiny launches, mostly
   CPU/launch-bound, exactly the profile the paper's Table 3 shows
   (large T amplification on a small k). *)

open Kernel.Dsl

(* Fan1: multipliers m[i] = a[i][t] / a[t][t] for rows i > t. *)
let kernel_fan1 =
  kernel "gaussian_fan1"
    ~params:[ ptr "a"; ptr "m"; int "n"; int "t" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! (p 2 -! p 3 -! int_ 1));
        let_ "row" (v "i" +! p 3 +! int_ 1);
        st_global_f (p 1 +! (v "row" <<! int_ 2))
          (ldg_f (p 0 +! (((v "row" *! p 2) +! p 3) <<! int_ 2))
           /.. ldg_f (p 0 +! (((p 3 *! p 2) +! p 3) <<! int_ 2))) ])

(* Fan2: eliminate column t from the trailing submatrix. *)
let kernel_fan2 =
  kernel "gaussian_fan2"
    ~params:[ ptr "a"; ptr "m"; int "n"; int "t" ]
    (fun p ->
      [ let_ "gid" (global_tid_x ());
        let_ "span" (p 2 -! p 3 -! int_ 1);
        exit_if (v "gid" >=! (v "span" *! v "span"));
        let_ "i" ((v "gid" /! v "span") +! p 3 +! int_ 1);
        let_ "j" ((v "gid" %! v "span") +! p 3 +! int_ 1);
        let_f "mult" (ldg_f (p 1 +! (v "i" <<! int_ 2)));
        (* Skip near-zero multipliers — almost always uniformly taken,
           like the real code's bounds branches (paper: 0.2% dynamic
           divergence). *)
        when_ (fabs (v "mult") >.. f32 1e-6)
          [ st_global_f (p 0 +! (((v "i" *! p 2) +! v "j") <<! int_ 2))
              (ldg_f (p 0 +! (((v "i" *! p 2) +! v "j") <<! int_ 2))
               -.. (v "mult"
                    *.. ldg_f (p 0 +! (((p 3 *! p 2) +! v "j") <<! int_ 2)))) ] ])

(* Fan3: update the right-hand side for rows below the pivot. *)
let kernel_fan3 =
  kernel "gaussian_fan3"
    ~params:[ ptr "b"; ptr "m"; int "n"; int "t" ]
    (fun p ->
      [ let_ "gid" (global_tid_x ());
        exit_if (v "gid" >=! (p 2 -! p 3 -! int_ 1));
        let_ "i" (v "gid" +! p 3 +! int_ 1);
        st_global_f (p 0 +! (v "i" <<! int_ 2))
          (ldg_f (p 0 +! (v "i" <<! int_ 2))
           -.. (ldg_f (p 1 +! (v "i" <<! int_ 2))
                *.. ldg_f (p 0 +! (p 3 <<! int_ 2)))) ])

let run device ~variant =
  ignore variant;
  let n = 48 in
  let fan1 = Kernel.Compile.compile kernel_fan1 in
  let fan2 = Kernel.Compile.compile kernel_fan2 in
  let fan3 = Kernel.Compile.compile kernel_fan3 in
  let acc, count = Workload.launcher device in
  (* Diagonally dominant system for stability. *)
  let rng = Rng.create ~seed:29 in
  let a_host =
    Array.init (n * n) (fun i ->
        let r = i / n and c = i mod n in
        if r = c then 10.0 +. Rng.float rng 2.0 else Rng.float rng 1.0)
  in
  let a = Workload.upload_f32 device a_host in
  let b = Workload.upload_f32 device (Datasets.floats ~seed:30 ~n ~scale:5.0) in
  let m = Workload.alloc_i32 device n in
  for t = 0 to n - 2 do
    let rows = n - t - 1 in
    let grid1, block1 = Workload.grid_1d ~threads:rows ~block:64 in
    Workload.launch ~acc ~count device ~kernel:fan1 ~grid:grid1 ~block:block1
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr m; Gpu.Device.I32 n;
              Gpu.Device.I32 t ];
    let grid2, block2 = Workload.grid_1d ~threads:(rows * rows) ~block:64 in
    Workload.launch ~acc ~count device ~kernel:fan2 ~grid:grid2 ~block:block2
      ~args:[ Gpu.Device.Ptr a; Gpu.Device.Ptr m; Gpu.Device.I32 n;
              Gpu.Device.I32 t ];
    Workload.launch ~acc ~count device ~kernel:fan3 ~grid:grid1 ~block:block1
      ~args:[ Gpu.Device.Ptr b; Gpu.Device.Ptr m; Gpu.Device.I32 n;
              Gpu.Device.I32 t ]
  done;
  { Workload.output_digest =
      Workload.combine_digests
        [ Workload.digest_f32 device ~addr:a ~n:(n * n);
          Workload.digest_f32 device ~addr:b ~n ];
    stdout = Printf.sprintf "pivots=%d" (n - 1);
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"gaussian" ~suite:"rodinia" run
