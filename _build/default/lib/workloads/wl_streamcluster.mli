(** Rodinia STREAMCLUSTER: per-point distance to candidate
    centers, relaunched per center (convergent). *)

val workload : Workload.t
