(* Rodinia PATHFINDER: dynamic programming over a grid, one kernel per
   row; each thread extends the best path through its column with
   clamped neighbour reads. *)

open Kernel.Dsl

let cols = 2048

let rows = 16

let kernel_pathfinder =
  kernel "pathfinder"
    ~params:[ ptr "wall_row"; ptr "prev"; ptr "next"; int "cols" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 3);
        let_ "left"
          (ldg (p 1 +! (imax (v "i" -! int_ 1) (int_ 0) <<! int_ 2)));
        let_ "center" (ldg (p 1 +! (v "i" <<! int_ 2)));
        let_ "right"
          (ldg (p 1 +! (imin (v "i" +! int_ 1) (p 3 -! int_ 1) <<! int_ 2)));
        st_global (p 2 +! (v "i" <<! int_ 2))
          (ldg (p 0 +! (v "i" <<! int_ 2))
           +! imin (imin (v "left") (v "center")) (v "right")) ])

let run device ~variant =
  ignore variant;
  let compiled = Kernel.Compile.compile kernel_pathfinder in
  let acc, count = Workload.launcher device in
  let wall =
    Array.init rows (fun r ->
        Workload.upload_i32 device
          (Datasets.ints ~seed:(100 + r) ~n:cols ~bound:10))
  in
  let a = Workload.upload_i32 device (Datasets.ints ~seed:99 ~n:cols ~bound:10) in
  let b = Workload.alloc_i32 device cols in
  let grid, block = Workload.grid_1d ~threads:cols ~block:128 in
  let bufs = ref (a, b) in
  for r = 0 to rows - 1 do
    let prev, next = !bufs in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr wall.(r); Gpu.Device.Ptr prev;
              Gpu.Device.Ptr next; Gpu.Device.I32 cols ];
    bufs := (next, prev)
  done;
  let final, _ = !bufs in
  { Workload.output_digest = Workload.digest_i32 device ~addr:final ~n:cols;
    stdout = Printf.sprintf "rows=%d" rows;
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"pathfinder" ~suite:"rodinia" run
