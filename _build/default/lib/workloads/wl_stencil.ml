(* Parboil STENCIL: 2-D 5-point Jacobi iteration, ping-ponging two
   grids over many launches. Regular, coalesced, boundary-guarded. *)

open Kernel.Dsl

let dim = 96

let kernel_stencil =
  kernel "stencil"
    ~params:[ ptr "src"; ptr "dst"; int "dim" ]
    (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! (p 2 *! p 2));
        let_ "x" (v "i" %! p 2);
        let_ "y" (v "i" /! p 2);
        if_
          ((v "x" ==! int_ 0) ||? (v "y" ==! int_ 0)
           ||? (v "x" ==! (p 2 -! int_ 1))
           ||? (v "y" ==! (p 2 -! int_ 1)))
          [ st_global_f (p 1 +! (v "i" <<! int_ 2))
              (ldg_f (p 0 +! (v "i" <<! int_ 2))) ]
          [ let_f "c" (ldg_f (p 0 +! (v "i" <<! int_ 2)));
            let_f "nn" (ldg_f (p 0 +! ((v "i" -! p 2) <<! int_ 2)));
            let_f "ss" (ldg_f (p 0 +! ((v "i" +! p 2) <<! int_ 2)));
            let_f "ww" (ldg_f (p 0 +! ((v "i" -! int_ 1) <<! int_ 2)));
            let_f "ee" (ldg_f (p 0 +! ((v "i" +! int_ 1) <<! int_ 2)));
            st_global_f (p 1 +! (v "i" <<! int_ 2))
              (ffma (f32 0.5) (v "c")
                 (f32 0.125 *.. (v "nn" +.. v "ss" +.. v "ww" +.. v "ee"))) ] ])

let run device ~variant =
  ignore variant;
  let n = dim * dim in
  let compiled = Kernel.Compile.compile kernel_stencil in
  let acc, count = Workload.launcher device in
  let a = Workload.upload_f32 device (Datasets.floats ~seed:17 ~n ~scale:10.0) in
  let b = Workload.alloc_i32 device n in
  let grid, block = Workload.grid_1d ~threads:n ~block:128 in
  let bufs = ref (a, b) in
  for _ = 1 to 6 do
    let src, dst = !bufs in
    Workload.launch ~acc ~count device ~kernel:compiled ~grid ~block
      ~args:[ Gpu.Device.Ptr src; Gpu.Device.Ptr dst; Gpu.Device.I32 dim ];
    bufs := (dst, src)
  done;
  let final, _ = !bufs in
  { Workload.output_digest = Workload.digest_f32 device ~addr:final ~n;
    stdout = "iters=6";
    stats = acc;
    launches = !count }

let workload = Workload.make ~name:"stencil" ~suite:"parboil" run
