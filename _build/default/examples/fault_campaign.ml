(* Case Study IV demo: a transient-fault injection campaign on one
   workload — profile, pick N sites statistically, inject one bit flip
   per run, and classify outcomes (Figure 10, one bar).

   Run with: dune exec examples/fault_campaign.exe [workload] [n] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "spmv" in
  let n =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 40
  in
  let w = Workloads.Registry.find name in
  Format.printf "Injecting %d single-bit register faults into %s/%s...@." n
    w.Workloads.Workload.suite w.Workloads.Workload.name;
  let tally =
    Workloads.Campaign.run ~injections:n w
      ~variant:w.Workloads.Workload.default_variant
  in
  Format.printf "%a@." Workloads.Campaign.pp tally;
  let m, c, h, s, so, sf = Workloads.Campaign.fractions tally in
  let bar frac = String.make (int_of_float (frac *. 50.0)) '#' in
  Format.printf "@.  masked          %s@." (bar m);
  Format.printf "  crash           %s@." (bar c);
  Format.printf "  hang            %s@." (bar h);
  Format.printf "  failure symptom %s@." (bar s);
  Format.printf "  sdc (stdout)    %s@." (bar so);
  Format.printf "  sdc (output)    %s@." (bar sf)
