(* Case Study I demo: per-branch SIMT divergence profiling of graph
   BFS (the paper's Figure 4 handler and Figure 5 plot, as text).

   Run with: dune exec examples/branch_profile.exe [variant]
   where variant is one of 1M, NY, SF, UT (default NY). *)

let () =
  let variant = if Array.length Sys.argv > 1 then Sys.argv.(1) else "NY" in
  let device = Gpu.Device.create () in
  let bs = Handlers.Branch_stats.create device in
  let w = Workloads.Wl_bfs_parboil.workload in
  Format.printf "Profiling parboil/bfs (%s) conditional branches...@." variant;
  let result =
    Sassi.Runtime.with_instrumentation device (Handlers.Branch_stats.pairs bs)
      (fun _ -> w.Workloads.Workload.run device ~variant)
  in
  Format.printf "workload says: %s@.@." result.Workloads.Workload.stdout;
  let branches = Handlers.Branch_stats.branches bs in
  Format.printf
    "%-12s %12s %12s %12s %10s  per-branch divergence@."
    "ins addr" "executions" "divergent" "active thr" "avg occ";
  List.iter
    (fun b ->
       let open Handlers.Branch_stats in
       let bar =
         let frac =
           if b.total = 0 then 0.0
           else float_of_int b.divergent /. float_of_int b.total
         in
         String.make (int_of_float (frac *. 40.0)) '#'
       in
       Format.printf "0x%08x %12d %12d %12d %10.1f  %s@." b.ins_addr b.total
         b.divergent b.active
         (if b.total = 0 then 0.0
          else float_of_int b.active /. float_of_int b.total)
         bar)
    branches;
  let s = Handlers.Branch_stats.summary bs in
  let open Handlers.Branch_stats in
  Format.printf
    "@.static: %d branches, %d divergent (%.0f%%)@.dynamic: %d executions, \
     %d divergent (%.1f%%)@."
    s.static_branches s.static_divergent
    (100.0 *. float_of_int s.static_divergent
     /. float_of_int (max 1 s.static_branches))
    s.dynamic_branches s.dynamic_divergent
    (100.0 *. float_of_int s.dynamic_divergent
     /. float_of_int (max 1 s.dynamic_branches))
