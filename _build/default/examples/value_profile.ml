(* Case Study III demo: value profiling (constant bits and scalar
   writes) of a workload, including the per-register bit rendering
   from Section 7.2 (0/1 constant, T varying, * scalar).

   Run with: dune exec examples/value_profile.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "b+tree" in
  let w = Workloads.Registry.find name in
  let device = Gpu.Device.create () in
  let vp = Handlers.Value_profile.create device in
  Format.printf "Value-profiling %s/%s...@." w.Workloads.Workload.suite
    w.Workloads.Workload.name;
  let _ =
    Sassi.Runtime.with_instrumentation device (Handlers.Value_profile.pairs vp)
      (fun _ ->
        w.Workloads.Workload.run device
          ~variant:w.Workloads.Workload.default_variant)
  in
  let profiles = Handlers.Value_profile.profiles vp in
  let heaviest =
    List.sort
      (fun a b ->
         Int.compare b.Handlers.Value_profile.weight
           a.Handlers.Value_profile.weight)
      profiles
  in
  Format.printf "@.hottest register-writing instructions:@.";
  List.iteri
    (fun i p ->
       if i < 10 then begin
         Format.printf "@.ins 0x%08x (executed %d times):@."
           p.Handlers.Value_profile.ins_addr p.Handlers.Value_profile.weight;
         Handlers.Value_profile.pp_register_profile Format.std_formatter p
       end)
    heaviest;
  let s = Handlers.Value_profile.summary vp in
  let open Handlers.Value_profile in
  Format.printf
    "@.summary (Table 2 row): dynamic const bits %.0f%%, dynamic scalar \
     %.0f%%, static const bits %.0f%%, static scalar %.0f%%@."
    s.dynamic_const_bits_pct s.dynamic_scalar_pct s.static_const_bits_pct
    s.static_scalar_pct
