(* Heterogeneous CPU+GPU sharing analysis (paper Section 9.4): SASSI
   device-side tracing correlated with a host-side access hook shows
   which Unified-Virtual-Memory pages ping-pong between processors.
   BFS is the classic case: the host reads the frontier counter after
   every launch, so its page migrates back and forth each iteration.

   Run with: dune exec examples/uvm_sharing.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "parboil/bfs" in
  let w = Workloads.Registry.find name in
  let device = Gpu.Device.create () in
  let uvm = Handlers.Uvm_profile.create device in
  Format.printf "Tracing CPU and GPU page touches of %s/%s...@."
    w.Workloads.Workload.suite w.Workloads.Workload.name;
  let _ =
    Sassi.Runtime.with_instrumentation device (Handlers.Uvm_profile.pairs uvm)
      (fun _ ->
        w.Workloads.Workload.run device
          ~variant:w.Workloads.Workload.default_variant)
  in
  Handlers.Uvm_profile.detach_host uvm;
  let s = Handlers.Uvm_profile.summary uvm in
  let open Handlers.Uvm_profile in
  Format.printf
    "@.%d-byte pages: %d CPU-only, %d GPU-only, %d shared; %d estimated \
     first-touch migrations@."
    s.page_bytes s.cpu_only s.gpu_only s.shared s.total_migrations;
  Format.printf "@.hottest migrating pages:@.";
  Format.printf "%-10s %9s %9s %9s %9s %11s@." "page" "cpu-rd" "cpu-wr"
    "gpu-rd" "gpu-wr" "migrations";
  List.iteri
    (fun i p ->
       if i < 10 && p.migrations > 0 then
         Format.printf "0x%08x %9d %9d %9d %9d %11d@." p.page p.cpu_reads
           p.cpu_writes p.gpu_reads p.gpu_writes p.migrations)
    (Handlers.Uvm_profile.pages uvm)
