(* Case Study II demo: memory address divergence of the two miniFE
   matrix formats (the paper's Figure 7/8 contrast), printed as a
   distribution and a compact occupancy x divergence heat map.

   Run with: dune exec examples/memdiv_profile.exe *)

let profile variant =
  let device = Gpu.Device.create () in
  let md = Handlers.Mem_divergence.create device in
  let w = Workloads.Wl_minife.workload in
  let _ =
    Sassi.Runtime.with_instrumentation device (Handlers.Mem_divergence.pairs md)
      (fun _ -> w.Workloads.Workload.run device ~variant)
  in
  md

let print_pmf name md =
  Format.printf "@.miniFE-%s: unique 32B lines per warp access (PMF)@." name;
  let pmf = Handlers.Mem_divergence.pmf md in
  Array.iteri
    (fun u frac ->
       if frac > 0.004 then
         Format.printf "  %2d lines: %5.1f%% %s@." (u + 1) (100.0 *. frac)
           (String.make (int_of_float (frac *. 60.0)) '#'))
    pmf;
  Format.printf "  fully diverged: %.1f%% of thread accesses@."
    (100.0 *. Handlers.Mem_divergence.fully_diverged_fraction md)

let print_matrix name md =
  Format.printf "@.miniFE-%s occupancy (rows) x unique lines (cols), log scale@."
    name;
  let m = Handlers.Mem_divergence.matrix md in
  let glyph v =
    if v = 0 then '.'
    else if v < 10 then '1'
    else if v < 100 then '2'
    else if v < 1000 then '3'
    else if v < 10000 then '4'
    else '5'
  in
  for a = 31 downto 0 do
    if Array.exists (fun x -> x > 0) m.(a) then begin
      Format.printf "  %2d | " (a + 1);
      for u = 0 to 31 do
        Format.print_char (glyph m.(a).(u))
      done;
      Format.print_newline ()
    end
  done

let () =
  let ell = profile "ELL" in
  let csr = profile "CSR" in
  print_pmf "ELL" ell;
  print_pmf "CSR" csr;
  print_matrix "ELL" ell;
  print_matrix "CSR" csr
