examples/branch_profile.ml: Array Format Gpu Handlers List Sassi String Sys Workloads
