examples/fault_campaign.ml: Array Format String Sys Workloads
