examples/uvm_sharing.ml: Array Format Gpu Handlers List Sassi Sys Workloads
