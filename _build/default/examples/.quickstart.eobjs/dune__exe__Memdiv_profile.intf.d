examples/memdiv_profile.mli:
