examples/value_profile.mli:
