examples/memdiv_profile.ml: Array Format Gpu Handlers Sassi String Workloads
