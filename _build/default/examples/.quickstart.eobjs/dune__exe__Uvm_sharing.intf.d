examples/uvm_sharing.mli:
