examples/quickstart.ml: Array Format Gpu Handlers Kernel Sass Sassi Workloads
