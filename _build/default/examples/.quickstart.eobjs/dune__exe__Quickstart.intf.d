examples/quickstart.mli:
