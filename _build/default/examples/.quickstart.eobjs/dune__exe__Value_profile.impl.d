examples/value_profile.ml: Array Format Gpu Handlers Int List Sassi Sys Workloads
