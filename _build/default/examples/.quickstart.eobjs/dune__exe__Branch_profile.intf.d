examples/branch_profile.mli:
