(* Quickstart: write a kernel, compile it, run it, then re-run it with
   the paper's Figure 3 handler injected before every instruction and
   print the dynamic instruction-category histogram.

   Run with: dune exec examples/quickstart.exe *)

open Kernel.Dsl

(* A small saxpy-with-a-twist kernel: y[i] = a*x[i] + y[i], but only
   for even i — giving the histogram some branches to count. *)
let saxpy =
  kernel "saxpy" ~params:[ ptr "x"; ptr "y"; flt "a"; int "n" ] (fun p ->
      [ let_ "i" (global_tid_x ());
        exit_if (v "i" >=! p 3);
        when_ (v "i" %! int_ 2 ==! int_ 0)
          [ let_ "off" (v "i" <<! int_ 2);
            st_global_f (p 1 +! v "off")
              (ffma (p 2) (ldg_f (p 0 +! v "off")) (ldg_f (p 1 +! v "off"))) ] ])

let () =
  let n = 1024 in
  let device = Gpu.Device.create () in
  let compiled = Kernel.Compile.compile saxpy in
  Format.printf "=== Compiled SASS ===@.%a@." Sass.Program.pp compiled;

  (* Plain run. *)
  let x = Workloads.Workload.upload_f32 device (Array.init n float_of_int) in
  let y = Workloads.Workload.upload_f32 device (Array.make n 1.0) in
  let grid, block = Workloads.Workload.grid_1d ~threads:n ~block:128 in
  let args =
    [ Gpu.Device.Ptr x; Gpu.Device.Ptr y; Gpu.Device.F32 2.0;
      Gpu.Device.I32 n ]
  in
  let stats = Gpu.Device.launch device ~kernel:compiled ~grid ~block ~args in
  Format.printf "=== Baseline run ===@.%a@.@." Gpu.Stats.pp stats;

  (* Instrumented run: the Figure 3 opcode histogram, before every
     instruction. Reset y so both runs compute the same thing. *)
  Gpu.Device.write_f32s device ~addr:y (Array.make n 1.0);
  let hist = Handlers.Opcode_hist.create device in
  let stats' =
    Sassi.Runtime.with_instrumentation device (Handlers.Opcode_hist.pairs hist)
      (fun _ -> Gpu.Device.launch device ~kernel:compiled ~grid ~block ~args)
  in
  let c = Handlers.Opcode_hist.read hist in
  Format.printf "=== Instrumented run (before all instructions) ===@.";
  Format.printf "dynamic thread-level instruction categories:@.";
  Format.printf "  memory            %8d@." c.Handlers.Opcode_hist.memory;
  Format.printf "  extended memory   %8d@."
    c.Handlers.Opcode_hist.extended_memory;
  Format.printf "  control transfer  %8d@." c.Handlers.Opcode_hist.control;
  Format.printf "  synchronization   %8d@." c.Handlers.Opcode_hist.sync;
  Format.printf "  numeric           %8d@." c.Handlers.Opcode_hist.numeric;
  Format.printf "  texture           %8d@." c.Handlers.Opcode_hist.texture;
  Format.printf "  total executed    %8d@." c.Handlers.Opcode_hist.total;
  Format.printf "@.slowdown: %.1fx kernel cycles (%d -> %d)@."
    (float_of_int stats'.Gpu.Stats.cycles /. float_of_int stats.Gpu.Stats.cycles)
    stats.Gpu.Stats.cycles stats'.Gpu.Stats.cycles;
  let first = Gpu.Device.read_f32s device ~addr:y ~n:6 in
  Format.printf "y[0..5] = %.1f %.1f %.1f %.1f %.1f %.1f@."
    first.(0) first.(1) first.(2) first.(3) first.(4) first.(5)
