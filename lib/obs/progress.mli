(** A one-line live progress meter for long campaigns: jobs done /
    total, throughput, ETA, plus a caller-supplied tail (e.g. the
    pool's steal count), redrawn in place with carriage returns.

    The meter only ever draws when [enabled] was requested {e and} the
    sink is an interactive terminal: piping stderr to a file, or any
    batch/bench context, silently disables it, so redirected output
    and recorded manifests stay byte-identical whether or not the flag
    was passed. *)

type t

val create :
  ?out:out_channel -> ?tty:bool -> enabled:bool -> total:int -> unit -> t
(** [out] defaults to [stderr]; [tty] overrides the [Unix.isatty]
    probe on [stderr] (for tests). A meter with [enabled:false],
    a non-tty sink, or [total <= 0] never writes a byte. *)

val active : t -> bool

val step : ?tail:string -> t -> unit
(** Mark one more job done and redraw. *)

val finish : t -> unit
(** Erase the meter line (so the next print starts on a clean line).
    Idempotent. *)
