(* Per-domain buffers keyed through Domain.DLS: after a one-time
   registration (under [st_lock]) every write touches only the
   domain's own buffer, so tracing adds no cross-domain contention to
   the pool's hot path. A generation counter ties buffers to one
   enable/disable cycle; a stale buffer left in DLS by a previous
   trace is simply replaced on first use. *)

type open_span = {
  os_seq : int;
  os_name : string;
  os_cat : string;
  os_ts_us : int;
  os_attrs : (string * Span.attr) list;
}

type buffer = {
  b_gen : int;
  b_track : int;
  mutable b_seq : int;
  mutable b_spans : Span.t list;  (* newest first; reversed at drain *)
  mutable b_stack : open_span list;  (* innermost open span first *)
}

type state = {
  st_gen : int;
  st_t0 : float;  (* Clock.now_s at enable; span ts are relative *)
  st_lock : Mutex.t;
  mutable st_buffers : buffer list;
}

let current : state option Atomic.t = Atomic.make None

let generation = Atomic.make 0

(* The preferred track id is sticky per domain and independent of the
   tracer's lifecycle, so Par.Pool workers can claim their track at
   spawn time even if tracing is enabled only later. *)
let track_key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let buffer_key : buffer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_track i = Domain.DLS.set track_key (Some i)

let is_enabled () = Atomic.get current <> None

let enable () =
  let st =
    { st_gen = 1 + Atomic.fetch_and_add generation 1;
      st_t0 = Clock.now_s ();
      st_lock = Mutex.create ();
      st_buffers = [] }
  in
  Atomic.set current (Some st)

let now_us st = int_of_float ((Clock.now_s () -. st.st_t0) *. 1e6)

let buffer_for st =
  match Domain.DLS.get buffer_key with
  | Some b when b.b_gen = st.st_gen -> b
  | _ ->
    let track = Option.value ~default:0 (Domain.DLS.get track_key) in
    let b =
      { b_gen = st.st_gen;
        b_track = track;
        b_seq = 0;
        b_spans = [];
        b_stack = [] }
    in
    Mutex.lock st.st_lock;
    st.st_buffers <- b :: st.st_buffers;
    Mutex.unlock st.st_lock;
    Domain.DLS.set buffer_key (Some b);
    b

let begin_span ?(attrs = []) ~cat name =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    let b = buffer_for st in
    b.b_stack <-
      { os_seq = b.b_seq;
        os_name = name;
        os_cat = cat;
        os_ts_us = now_us st;
        os_attrs = attrs }
      :: b.b_stack;
    b.b_seq <- b.b_seq + 1

(* Closing is factored so drain can force-close leftover spans with an
   "unfinished" marker without duplicating the record construction. *)
let close_open st b (os : open_span) ~extra_attrs =
  let depth = List.length b.b_stack in
  b.b_spans <-
    { Span.sp_track = b.b_track;
      sp_seq = os.os_seq;
      sp_name = os.os_name;
      sp_cat = os.os_cat;
      sp_ts_us = os.os_ts_us;
      sp_depth = depth;
      sp_kind = Span.Complete (max 0 (now_us st - os.os_ts_us));
      sp_attrs = os.os_attrs @ extra_attrs }
    :: b.b_spans

let end_span ?(attrs = []) () =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    let b = buffer_for st in
    (match b.b_stack with
     | [] -> ()
     | os :: rest ->
       b.b_stack <- rest;
       close_open st b os ~extra_attrs:attrs)

let with_span ?attrs ~cat name f =
  match Atomic.get current with
  | None -> f ()
  | Some _ ->
    begin_span ?attrs ~cat name;
    Fun.protect ~finally:(fun () -> end_span ()) f

let emit_leaf kind ?(attrs = []) ~cat name =
  match Atomic.get current with
  | None -> ()
  | Some st ->
    let b = buffer_for st in
    b.b_spans <-
      { Span.sp_track = b.b_track;
        sp_seq = b.b_seq;
        sp_name = name;
        sp_cat = cat;
        sp_ts_us = now_us st;
        sp_depth = List.length b.b_stack;
        sp_kind = kind;
        sp_attrs = attrs }
      :: b.b_spans;
    b.b_seq <- b.b_seq + 1

let instant ?attrs ~cat name = emit_leaf Span.Instant ?attrs ~cat name

let counter ~cat name values = emit_leaf (Span.Counter values) ~cat name

let drain () =
  match Atomic.get current with
  | None -> []
  | Some st ->
    Atomic.set current None;
    Mutex.lock st.st_lock;
    let buffers = st.st_buffers in
    st.st_buffers <- [];
    Mutex.unlock st.st_lock;
    List.iter
      (fun b ->
         let rec close () =
           match b.b_stack with
           | [] -> ()
           | os :: rest ->
             b.b_stack <- rest;
             close_open st b os
               ~extra_attrs:[ ("unfinished", Span.Bool true) ];
             close ()
         in
         close ())
      buffers;
    List.concat_map (fun b -> List.rev b.b_spans) buffers
    |> List.sort Span.order
