type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind =
  | Complete of int
  | Instant
  | Counter of (string * float) list

type t = {
  sp_track : int;
  sp_seq : int;
  sp_name : string;
  sp_cat : string;
  sp_ts_us : int;
  sp_depth : int;
  sp_kind : kind;
  sp_attrs : (string * attr) list;
}

let attr_to_json = function
  | Str s -> Trace.Json.Str s
  | Int i -> Trace.Json.Int i
  | Float f -> Trace.Json.Float f
  | Bool b -> Trace.Json.Bool b

let order a b =
  match Int.compare a.sp_track b.sp_track with
  | 0 -> Int.compare a.sp_seq b.sp_seq
  | c -> c

let duration_us t =
  match t.sp_kind with
  | Complete d -> d
  | Instant | Counter _ -> 0
