(** The one wall-clock timing helper for the host side. Every
    wall-time bracket in the repo — span durations, `--manifest` wall
    time, bench experiment timing — goes through here, so "what does a
    second mean" has exactly one answer. *)

val now_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)

val with_wall_time : (unit -> 'a) -> 'a * float
(** Run the thunk and return its result with the elapsed wall-clock
    seconds. Exceptions propagate unclocked. *)
