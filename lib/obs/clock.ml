let now_s = Unix.gettimeofday

let with_wall_time f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)
