type t = {
  p_out : out_channel;
  p_total : int;
  p_active : bool;
  p_t0 : float;
  mutable p_done : int;
  mutable p_last_len : int;  (* width of the previous draw, to erase *)
}

let create ?(out = stderr) ?tty ~enabled ~total () =
  let is_tty =
    match tty with
    | Some b -> b
    | None -> (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)
  in
  { p_out = out;
    p_total = total;
    p_active = enabled && is_tty && total > 0;
    p_t0 = Clock.now_s ();
    p_done = 0;
    p_last_len = 0 }

let active t = t.p_active

let draw t line =
  (* Pad with spaces to overwrite any longer previous draw. *)
  let pad = max 0 (t.p_last_len - String.length line) in
  output_string t.p_out ("\r" ^ line ^ String.make pad ' ');
  t.p_last_len <- String.length line;
  flush t.p_out

let step ?(tail = "") t =
  if t.p_active then begin
    t.p_done <- min t.p_total (t.p_done + 1);
    let elapsed = max 1e-9 (Clock.now_s () -. t.p_t0) in
    let rate = float_of_int t.p_done /. elapsed in
    let eta =
      if t.p_done >= t.p_total then 0.0
      else float_of_int (t.p_total - t.p_done) /. max 1e-9 rate
    in
    let line =
      Printf.sprintf "[%d/%d] %3.0f%% | %.2f jobs/s | eta %.0fs%s%s"
        t.p_done t.p_total
        (100.0 *. float_of_int t.p_done /. float_of_int t.p_total)
        rate eta
        (if tail = "" then "" else " | ")
        tail
    in
    draw t line
  end

let finish t =
  if t.p_active && t.p_last_len > 0 then begin
    output_string t.p_out ("\r" ^ String.make t.p_last_len ' ' ^ "\r");
    t.p_last_len <- 0;
    flush t.p_out
  end
