let host_pid = 1

let track_name = function
  | 0 -> "main"
  | n -> Printf.sprintf "worker %d" (n - 1)

let args_json attrs =
  Trace.Json.Obj (List.map (fun (k, a) -> (k, Span.attr_to_json a)) attrs)

let event_json (s : Span.t) =
  let base ph =
    [ ("name", Trace.Json.Str s.Span.sp_name);
      ("cat", Trace.Json.Str s.Span.sp_cat);
      ("ph", Trace.Json.Str ph);
      ("ts", Trace.Json.Int s.Span.sp_ts_us);
      ("pid", Trace.Json.Int host_pid);
      ("tid", Trace.Json.Int s.Span.sp_track) ]
  in
  match s.Span.sp_kind with
  | Span.Complete dur ->
    Trace.Json.Obj
      (base "X"
       @ [ ("dur", Trace.Json.Int (max 1 dur)) ]
       @
       match s.Span.sp_attrs with
       | [] -> []
       | attrs -> [ ("args", args_json attrs) ])
  | Span.Instant ->
    Trace.Json.Obj
      (base "i"
       @ [ ("s", Trace.Json.Str "t") ]
       @
       match s.Span.sp_attrs with
       | [] -> []
       | attrs -> [ ("args", args_json attrs) ])
  | Span.Counter values ->
    Trace.Json.Obj
      (base "C"
       @ [ ( "args",
             Trace.Json.Obj
               (List.map (fun (k, v) -> (k, Trace.Json.Float v)) values) ) ])

let metadata_events spans =
  let tracks =
    List.sort_uniq Int.compare (List.map (fun s -> s.Span.sp_track) spans)
  in
  let meta name tid args =
    Trace.Json.Obj
      [ ("name", Trace.Json.Str name);
        ("cat", Trace.Json.Str "__metadata");
        ("ph", Trace.Json.Str "M");
        ("ts", Trace.Json.Int 0);
        ("pid", Trace.Json.Int host_pid);
        ("tid", Trace.Json.Int tid);
        ("args", Trace.Json.Obj args) ]
  in
  meta "process_name" 0 [ ("name", Trace.Json.Str "sassi host") ]
  :: List.concat_map
       (fun t ->
          [ meta "thread_name" t [ ("name", Trace.Json.Str (track_name t)) ];
            (* Keep chrome's track order = domain order, not first-event
               time. *)
            meta "thread_sort_index" t [ ("sort_index", Trace.Json.Int t) ] ])
       tracks

let to_json spans =
  Trace.Json.Obj
    [ ("displayTimeUnit", Trace.Json.Str "ms");
      ( "traceEvents",
        Trace.Json.List (metadata_events spans @ List.map event_json spans) ) ]

let to_string spans = Trace.Json.to_string (to_json spans)

let write_file path spans = Trace.Json.write_file path (to_json spans)

let summary spans =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
       let cat = s.Span.sp_cat in
       if not (Hashtbl.mem tbl cat) then begin
         Hashtbl.add tbl cat (0, 0);
         order := cat :: !order
       end;
       let n, d = Hashtbl.find tbl cat in
       Hashtbl.replace tbl cat (n + 1, d + Span.duration_us s))
    spans;
  List.rev_map (fun cat -> let n, d = Hashtbl.find tbl cat in (cat, n, d))
    !order

let pp_summary ppf spans =
  List.iter
    (fun (cat, n, dur_us) ->
       Format.fprintf ppf "  %-10s %6d span(s) %10.1f ms@." cat n
         (float_of_int dur_us /. 1e3))
    (summary spans)
