(** Chrome trace_event export for host spans, built on the shared
    {!Trace.Json} document type so escaping and number formatting
    agree with every other JSON sink in the repo. The emitted document
    loads directly in [chrome://tracing] / Perfetto: one process
    ("sassi host"), one thread track per domain, [X] events for
    complete spans, [i] for instants, and [C] counter charts. *)

val track_name : int -> string
(** ["main"] for track 0, ["worker N"] for pool workers. *)

val to_json : Span.t list -> Trace.Json.t

val to_string : Span.t list -> string

val write_file : string -> Span.t list -> unit
(** @raise Sys_error on unwritable paths. *)

val summary : Span.t list -> (string * int * int) list
(** Per-category rollup [(cat, span_count, total_duration_us)], in
    first-appearance order of the (track, seq)-sorted input. *)

val pp_summary : Format.formatter -> Span.t list -> unit
