(** The ambient host-side span tracer.

    One process-global tracer, off by default. When disabled, every
    emission point costs a single atomic load and nothing else — the
    instrumented code (campaign runner, compile pipeline, device
    launch) never pays for observability it did not ask for, and spans
    never touch simulation state, so traced runs produce bit-identical
    results to untraced ones.

    When enabled, each domain records into its own private buffer
    (created lazily on first emission, registered once under a lock,
    then written lock-free), with begin/end nesting tracked per
    domain. {!drain} stops tracing and merges every buffer into one
    list ordered by [(track, seq)] — deterministic for a given set of
    spans regardless of scheduling.

    Contract: call {!drain} only after every traced task has been
    joined (e.g. after [Par.Pool] futures are awaited); a domain still
    emitting during the drain may lose its in-flight span. *)

val enable : unit -> unit
(** Start a fresh trace; any spans from a previous enable are
    discarded. *)

val is_enabled : unit -> bool

val drain : unit -> Span.t list
(** Stop tracing and return every recorded span in [(track, seq)]
    order. Spans still open are closed at drain time and tagged with
    an [("unfinished", Bool true)] attribute. Returns [[]] when the
    tracer was not enabled. *)

val set_track : int -> unit
(** Pin the calling domain's track id (0 = main; [Par.Pool] workers
    use [worker_index + 1]). Sticky across enable/disable cycles;
    domains that never call this record on track 0. *)

val begin_span : ?attrs:(string * Span.attr) list -> cat:string -> string -> unit
(** Open a span on the calling domain's track; nests under the
    domain's innermost open span. No-op when disabled. *)

val end_span : ?attrs:(string * Span.attr) list -> unit -> unit
(** Close the innermost open span, appending [attrs] to the ones given
    at begin. No-op when disabled or when no span is open. *)

val with_span :
  ?attrs:(string * Span.attr) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [begin_span]; run; [end_span] (also on exception). The thunk runs
    unconditionally — disabled tracing never changes control flow. *)

val instant : ?attrs:(string * Span.attr) list -> cat:string -> string -> unit
(** A zero-duration marker event. No-op when disabled. *)

val counter : cat:string -> string -> (string * float) list -> unit
(** Sample named counter values (rendered as a chart track in
    [chrome://tracing]). No-op when disabled. *)
