(** Host-side span records: the pure data layer under {!Tracer}.

    A span is one timed (or instantaneous) event on a host {e track} —
    one track per domain, so a campaign's trace opens in
    [chrome://tracing] with the main domain and every pool worker on
    its own row. Ordering is deterministic: spans sort by
    [(track, seq)], where [seq] is the per-track begin order, so the
    merged list from a traced run depends only on what ran, never on
    how the scheduler interleaved it. *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type kind =
  | Complete of int  (** duration in microseconds *)
  | Instant
  | Counter of (string * float) list
      (** sampled counter values (Chrome "C" phase: one chart track) *)

type t = {
  sp_track : int;  (** 0 = main domain, [i+1] = pool worker [i] *)
  sp_seq : int;  (** begin order within the track *)
  sp_name : string;
  sp_cat : string;  (** e.g. ["campaign"], ["job"], ["compile"], ["launch"] *)
  sp_ts_us : int;  (** microseconds since tracing was enabled *)
  sp_depth : int;  (** nesting depth at begin (0 = top level) *)
  sp_kind : kind;
  sp_attrs : (string * attr) list;
}

val attr_to_json : attr -> Trace.Json.t

val order : t -> t -> int
(** Total order by [(track, seq)] — the deterministic merge order. *)

val duration_us : t -> int
(** [Complete] duration; 0 for instants and counters. *)
