(** Chrome [trace_event] JSON export: the resulting file loads in
    [chrome://tracing] and in Perfetto's legacy-trace importer.

    Track layout: kernels live in process 0 (one thread per launch
    id); each SM is a process ([pid = sm + 1]) whose threads are the
    launch-unique warp ids. Warp stalls are duration ("X") events;
    issues, memory transactions, cache probes, handler calls, and
    faults are instants. Timestamps are simulated cycles, exported as
    microseconds. *)

val to_buffer : Buffer.t -> Record.t list -> unit

val to_string : Record.t list -> string

val to_channel : out_channel -> Record.t list -> unit

val write_file : string -> Record.t list -> unit
