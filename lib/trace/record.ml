type category =
  | Kernel
  | Block
  | Warp
  | Mem
  | Cache
  | Handler
  | Fault

let all_categories = [ Kernel; Block; Warp; Mem; Cache; Handler; Fault ]

let category_to_string = function
  | Kernel -> "kernel"
  | Block -> "block"
  | Warp -> "warp"
  | Mem -> "mem"
  | Cache -> "cache"
  | Handler -> "handler"
  | Fault -> "fault"

let category_of_string s =
  match String.lowercase_ascii s with
  | "kernel" -> Some Kernel
  | "block" -> Some Block
  | "warp" -> Some Warp
  | "mem" -> Some Mem
  | "cache" -> Some Cache
  | "handler" -> Some Handler
  | "fault" -> Some Fault
  | _ -> None

let category_bit = function
  | Kernel -> 1
  | Block -> 2
  | Warp -> 4
  | Mem -> 8
  | Cache -> 16
  | Handler -> 32
  | Fault -> 64

type mem_space =
  | Sp_global
  | Sp_shared
  | Sp_local
  | Sp_texture

let mem_space_to_string = function
  | Sp_global -> "global"
  | Sp_shared -> "shared"
  | Sp_local -> "local"
  | Sp_texture -> "texture"

type stall_reason =
  | Stall_memory
  | Stall_barrier
  | Stall_exec

let stall_reason_to_string = function
  | Stall_memory -> "memory"
  | Stall_barrier -> "barrier"
  | Stall_exec -> "exec"

type cache_level =
  | L1
  | L2

let cache_level_to_string = function
  | L1 -> "L1"
  | L2 -> "L2"

type payload =
  | Kernel_launch of {
      name : string;
      launch_id : int;
      grid : int * int;
      block : int * int;
    }
  | Kernel_exit of {
      name : string;
      launch_id : int;
      cycles : int;
    }
  | Block_dispatch of {
      block : int;
      warps : int;
    }
  | Warp_issue of {
      pc : int;
      op : string;
      active : int;
    }
  | Warp_stall of {
      reason : stall_reason;
      cycles : int;
    }
  | Warp_barrier of {
      pc : int;
      arrived : int;
    }
  | Mem_access of {
      space : mem_space;
      write : bool;
      bytes : int;
      lanes : int;
      transactions : int;
    }
  | Cache_access of {
      level : cache_level;
      hit : bool;
    }
  | Handler_invoke of {
      site : int;
      pc : int;
    }
  | Fault_inject of {
      thread : int;
      bit : int;
      target : string;
    }

type t = {
  cycle : int;
  sm : int;
  warp : int;
  payload : payload;
}

let make ~cycle ~sm ~warp payload = { cycle; sm; warp; payload }

let category t =
  match t.payload with
  | Kernel_launch _ | Kernel_exit _ -> Kernel
  | Block_dispatch _ -> Block
  | Warp_issue _ | Warp_stall _ | Warp_barrier _ -> Warp
  | Mem_access _ -> Mem
  | Cache_access _ -> Cache
  | Handler_invoke _ -> Handler
  | Fault_inject _ -> Fault

let name t =
  match t.payload with
  | Kernel_launch { name; _ } -> "kernel_launch:" ^ name
  | Kernel_exit { name; _ } -> "kernel:" ^ name
  | Block_dispatch { block; _ } -> Printf.sprintf "block_dispatch:%d" block
  | Warp_issue { op; _ } -> "warp_issue:" ^ op
  | Warp_stall { reason; _ } -> "stall:" ^ stall_reason_to_string reason
  | Warp_barrier _ -> "barrier"
  | Mem_access { space; write; _ } ->
    Printf.sprintf "mem_%s:%s" (if write then "st" else "ld")
      (mem_space_to_string space)
  | Cache_access { level; hit } ->
    Printf.sprintf "%s_%s" (cache_level_to_string level)
      (if hit then "hit" else "miss")
  | Handler_invoke { site; _ } -> Printf.sprintf "handler:%d" site
  | Fault_inject { target; _ } -> "fault_inject:" ^ target
