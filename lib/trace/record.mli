(** The activity-record taxonomy: typed, cycle-stamped events mirroring
    CUPTI's Activity API records. Every record carries the simulated
    cycle at which it happened plus the SM and warp it belongs to
    ([-1] when the event is not tied to an SM or warp, e.g. kernel
    launches observed from the host). *)

type category =
  | Kernel  (** kernel launch / exit *)
  | Block  (** thread-block dispatch *)
  | Warp  (** warp issue / stall / barrier *)
  | Mem  (** warp-level memory transactions *)
  | Cache  (** L1/L2 hit and miss events *)
  | Handler  (** SASSI handler invocations *)
  | Fault  (** fault-injection events *)

val all_categories : category list

val category_to_string : category -> string

val category_of_string : string -> category option
(** Case-insensitive; returns [None] for unknown names. *)

val category_bit : category -> int
(** Distinct power of two per category, for mask-based filtering. *)

type mem_space =
  | Sp_global
  | Sp_shared
  | Sp_local
  | Sp_texture

val mem_space_to_string : mem_space -> string

type stall_reason =
  | Stall_memory  (** waiting on the memory hierarchy *)
  | Stall_barrier  (** waiting at a block-wide barrier *)
  | Stall_exec  (** long-latency execution pipe (MUFU, IDIV, ...) *)

val stall_reason_to_string : stall_reason -> string

type cache_level =
  | L1
  | L2

val cache_level_to_string : cache_level -> string

type payload =
  | Kernel_launch of {
      name : string;
      launch_id : int;
      grid : int * int;
      block : int * int;
    }
  | Kernel_exit of {
      name : string;
      launch_id : int;
      cycles : int;  (** total simulated kernel cycles *)
    }
  | Block_dispatch of {
      block : int;  (** flat block index *)
      warps : int;  (** warps carved out of the block *)
    }
  | Warp_issue of {
      pc : int;
      op : string;  (** opcode mnemonic *)
      active : int;  (** active lanes at issue *)
    }
  | Warp_stall of {
      reason : stall_reason;
      cycles : int;  (** stall duration in cycles *)
    }
  | Warp_barrier of {
      pc : int;
      arrived : int;  (** warps arrived at the barrier, this one included *)
    }
  | Mem_access of {
      space : mem_space;
      write : bool;
      bytes : int;  (** bytes per lane *)
      lanes : int;  (** lanes participating *)
      transactions : int;  (** coalesced transactions generated *)
    }
  | Cache_access of {
      level : cache_level;
      hit : bool;
    }
  | Handler_invoke of {
      site : int;  (** SASSI site id *)
      pc : int;
    }
  | Fault_inject of {
      thread : int;  (** global thread id targeted *)
      bit : int;  (** flipped bit, [-1] for predicate flips *)
      target : string;  (** "register" or "predicate" *)
    }

type t = {
  cycle : int;
  sm : int;
  warp : int;
  payload : payload;
}

val make : cycle:int -> sm:int -> warp:int -> payload -> t

val category : t -> category

val name : t -> string
(** Short event name for display and Chrome export, e.g.
    ["warp_issue:IADD"]. *)
