(** Minimal JSON document builder: the single escaping/serialization
    helper behind every JSON emitter in the tree (trace sinks,
    profiler reports, bench summaries, [--stats-json]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN and infinities serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape_to : Buffer.t -> string -> unit
(** Append the JSON string-escaped form of the argument (without
    surrounding quotes). *)

val escape : string -> string

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Serialize to a file with a trailing newline.
    @raise Sys_error on unwritable paths. *)
