(** Minimal JSON document builder: the single escaping/serialization
    helper behind every JSON emitter in the tree (trace sinks,
    profiler reports, bench summaries, [--stats-json]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN and infinities serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape_to : Buffer.t -> string -> unit
(** Append the JSON string-escaped form of the argument (without
    surrounding quotes). *)

val escape : string -> string

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

val to_channel : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Serialize to a file with a trailing newline.
    @raise Sys_error on unwritable paths. *)

val of_string : string -> (t, string) result
(** Parse one JSON document. Integer literals without a fraction or
    exponent parse as [Int] (falling back to [Float] when out of
    native range); [\uXXXX] escapes decode to UTF-8, including
    surrogate pairs (lone surrogates are rejected). The whole input
    must be consumed. *)

val parse_file : string -> (t, string) result
(** {!of_string} on a whole file.
    @raise Sys_error on unreadable paths. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing keys and non-objects. *)
