(** A bounded ring buffer, the storage backend of the activity tracer
    (and of any other bounded collection, e.g. {!Handlers.Mem_trace}).
    Saturation is observable, never silent: whichever overflow policy
    is active, {!dropped} and {!flushed} account for every element
    that did not stay resident. *)

type 'a overflow =
  | Drop_oldest  (** overwrite the oldest resident element *)
  | Drop_newest  (** refuse the incoming element *)
  | Flush_callback of ('a array -> unit)
      (** hand the full buffer (oldest first) to the callback, empty
          it, then store the incoming element *)

type 'a t

val create : ?policy:'a overflow -> capacity:int -> unit -> 'a t
(** [capacity] must be positive. Default policy is [Drop_oldest]. *)

val capacity : 'a t -> int

val policy : 'a t -> 'a overflow

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Resident elements, [<= capacity]. *)

val pushed : 'a t -> int
(** Total elements ever offered via {!push}. *)

val dropped : 'a t -> int
(** Elements lost to [Drop_oldest] overwrites or [Drop_newest]
    refusals. Always [0] under [Flush_callback]. *)

val flushed : 'a t -> int
(** Elements handed to the [Flush_callback] (0 under other
    policies). [pushed t = length t + dropped t + flushed t]. *)

val to_list : 'a t -> 'a list
(** Resident elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val flush : 'a t -> 'a list
(** Return resident elements (oldest first) and empty the buffer;
    drop/flush counters are preserved. *)

val clear : 'a t -> unit
(** Empty the buffer and reset all counters. *)
