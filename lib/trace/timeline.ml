type side_stats = {
  mutable issues : int;
  mutable stall_events : int array;
  mutable stall_cycles : int array;
  mutable mem_accesses : int;
  mutable mem_transactions : int;
  mutable barriers : int;
  mutable first_cycle : int;
  mutable last_cycle : int;
  mutable blocks : int;
}

type t = {
  kernels : (string * int * int) list;
  sms : (int * side_stats) list;
  warps : ((int * int) * side_stats) list;
  total : side_stats;
  cache_probes : (int * int) * (int * int);
  handler_invokes : int;
  faults : int;
}

let reason_index = function
  | Record.Stall_memory -> 0
  | Record.Stall_barrier -> 1
  | Record.Stall_exec -> 2

let reasons = [| Record.Stall_memory; Record.Stall_barrier; Record.Stall_exec |]

let n_reasons = Array.length reasons

let fresh () =
  { issues = 0;
    stall_events = Array.make n_reasons 0;
    stall_cycles = Array.make n_reasons 0;
    mem_accesses = 0;
    mem_transactions = 0;
    barriers = 0;
    first_cycle = max_int;
    last_cycle = 0;
    blocks = 0 }

let touch s cycle =
  if cycle < s.first_cycle then s.first_cycle <- cycle;
  if cycle > s.last_cycle then s.last_cycle <- cycle

let build records =
  let sms = Hashtbl.create 16 in
  let warps = Hashtbl.create 256 in
  let total = fresh () in
  let kernels = ref [] in
  let l1h = ref 0 and l1m = ref 0 and l2h = ref 0 and l2m = ref 0 in
  let handlers = ref 0 and faults = ref 0 in
  let get tbl key =
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None ->
      let s = fresh () in
      Hashtbl.replace tbl key s;
      s
  in
  let sides (r : Record.t) =
    let ss =
      if r.Record.sm >= 0 then [ get sms r.Record.sm ] else []
    in
    let ss =
      if r.Record.sm >= 0 && r.Record.warp >= 0 then
        get warps (r.Record.sm, r.Record.warp) :: ss
      else ss
    in
    total :: ss
  in
  List.iter
    (fun (r : Record.t) ->
       let apply f = List.iter f (sides r) in
       (match r.Record.payload with
        | Record.Kernel_launch _ -> ()
        | Record.Kernel_exit { name; launch_id; cycles } ->
          kernels := (name, launch_id, cycles) :: !kernels
        | Record.Block_dispatch _ -> apply (fun s -> s.blocks <- s.blocks + 1)
        | Record.Warp_issue _ -> apply (fun s -> s.issues <- s.issues + 1)
        | Record.Warp_stall { reason; cycles } ->
          let i = reason_index reason in
          apply (fun s ->
              s.stall_events.(i) <- s.stall_events.(i) + 1;
              s.stall_cycles.(i) <- s.stall_cycles.(i) + cycles)
        | Record.Warp_barrier _ ->
          apply (fun s -> s.barriers <- s.barriers + 1)
        | Record.Mem_access { transactions; _ } ->
          apply (fun s ->
              s.mem_accesses <- s.mem_accesses + 1;
              s.mem_transactions <- s.mem_transactions + transactions)
        | Record.Cache_access { level; hit } ->
          (match (level, hit) with
           | Record.L1, true -> incr l1h
           | Record.L1, false -> incr l1m
           | Record.L2, true -> incr l2h
           | Record.L2, false -> incr l2m)
        | Record.Handler_invoke _ -> incr handlers
        | Record.Fault_inject _ -> incr faults);
       apply (fun s -> touch s r.Record.cycle))
    records;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { kernels = List.rev !kernels;
    sms = sorted sms;
    warps = sorted warps;
    total;
    cache_probes = ((!l1h, !l1m), (!l2h, !l2m));
    handler_invokes = !handlers;
    faults = !faults }

let stall_breakdown t =
  Array.to_list reasons
  |> List.map (fun r ->
      let i = reason_index r in
      (r, t.total.stall_events.(i), t.total.stall_cycles.(i)))
  |> List.sort (fun (_, _, a) (_, _, b) -> Int.compare b a)

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, id, cycles) ->
       Format.fprintf ppf "kernel %-24s launch %-3d %10d cycles@." name id
         cycles)
    t.kernels;
  Format.fprintf ppf "stall breakdown:@.";
  List.iter
    (fun (r, events, cycles) ->
       Format.fprintf ppf "  %-8s %10d events %12d warp-cycles@."
         (Record.stall_reason_to_string r)
         events cycles)
    (stall_breakdown t);
  let (l1h, l1m), (l2h, l2m) = t.cache_probes in
  Format.fprintf ppf
    "issues %d, mem accesses %d (%d transactions), barriers %d@."
    t.total.issues t.total.mem_accesses t.total.mem_transactions
    t.total.barriers;
  if l1h + l1m + l2h + l2m > 0 then
    Format.fprintf ppf "cache probes: L1 %d/%d, L2 %d/%d (hits/misses)@." l1h
      l1m l2h l2m;
  if t.handler_invokes > 0 then
    Format.fprintf ppf "handler invocations: %d@." t.handler_invokes;
  if t.faults > 0 then Format.fprintf ppf "faults injected: %d@." t.faults;
  List.iter
    (fun (sm, s) ->
       Format.fprintf ppf
         "SM %-2d: %6d issues %5d blocks, cycles %d..%d, stalls \
          m/b/e %d/%d/%d@."
         sm s.issues s.blocks
         (if s.first_cycle = max_int then 0 else s.first_cycle)
         s.last_cycle s.stall_cycles.(0) s.stall_cycles.(1)
         s.stall_cycles.(2))
    t.sms;
  Format.fprintf ppf "@]"

let render_warps ?(width = 64) ?(sm = 0) ?(max_warps = 24) records =
  let records =
    List.filter (fun (r : Record.t) -> r.Record.sm = sm) records
  in
  let lo = ref max_int and hi = ref 0 in
  List.iter
    (fun (r : Record.t) ->
       if r.Record.cycle < !lo then lo := r.Record.cycle;
       let last =
         match r.Record.payload with
         | Record.Warp_stall { cycles; _ } -> r.Record.cycle + cycles
         | _ -> r.Record.cycle
       in
       if last > !hi then hi := last)
    records;
  if !lo > !hi then Printf.sprintf "(no records for SM %d)\n" sm
  else begin
    let span = max 1 (!hi - !lo + 1) in
    let bucket c = min (width - 1) ((c - !lo) * width / span) in
    (* Per warp, per bucket: issue count and stall cycles by reason. *)
    let rows = Hashtbl.create 64 in
    let get w =
      match Hashtbl.find_opt rows w with
      | Some a -> a
      | None ->
        let a = Array.make_matrix width (1 + n_reasons) 0 in
        Hashtbl.replace rows w a;
        a
    in
    List.iter
      (fun (r : Record.t) ->
         if r.Record.warp >= 0 then
           let a = get r.Record.warp in
           match r.Record.payload with
           | Record.Warp_issue _ ->
             let b = bucket r.Record.cycle in
             a.(b).(0) <- a.(b).(0) + 1
           | Record.Warp_stall { reason; cycles } ->
             let i = 1 + reason_index reason in
             let b0 = bucket r.Record.cycle in
             let b1 = bucket (r.Record.cycle + cycles) in
             for b = b0 to b1 do
               a.(b).(i) <- a.(b).(i) + max 1 (cycles / max 1 (b1 - b0 + 1))
             done
           | _ -> ())
      records;
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "SM %d, cycles %d..%d (%d cycles per column); # issue, M mem \
          stall, B barrier, E exec stall\n"
         sm !lo !hi (span / width));
    let warps =
      Hashtbl.fold (fun w _ acc -> w :: acc) rows [] |> List.sort Int.compare
    in
    List.iteri
      (fun i w ->
         if i < max_warps then begin
           let a = Hashtbl.find rows w in
           Buffer.add_string buf (Printf.sprintf "  warp %3d |" w);
           Array.iter
             (fun cell ->
                let issue = cell.(0) in
                let mstall = cell.(1) and bstall = cell.(2) in
                let estall = cell.(3) in
                let stall = mstall + bstall + estall in
                let c =
                  if issue = 0 && stall = 0 then '.'
                  else if stall > issue * 4 then
                    if mstall >= bstall && mstall >= estall then 'M'
                    else if bstall >= estall then 'B'
                    else 'E'
                  else '#'
                in
                Buffer.add_char buf c)
             a;
           Buffer.add_string buf "|\n"
         end)
      warps;
    if List.length warps > max_warps then
      Buffer.add_string buf
        (Printf.sprintf "  ... %d more warps not shown\n"
           (List.length warps - max_warps));
    Buffer.contents buf
  end
