(** Trace-driven analysis: fold a stream of activity records into
    per-SM and per-warp timelines, stall breakdowns, and an ASCII
    rendering of warp activity — the in-memory counterpart of the
    Chrome/Perfetto export. *)

type side_stats = {
  mutable issues : int;
  mutable stall_events : int array;  (** indexed by {!reason_index} *)
  mutable stall_cycles : int array;
  mutable mem_accesses : int;
  mutable mem_transactions : int;
  mutable barriers : int;
  mutable first_cycle : int;  (** [max_int] when no event seen *)
  mutable last_cycle : int;
  mutable blocks : int;  (** block dispatches (SM timelines only) *)
}

type t = {
  kernels : (string * int * int) list;
      (** (name, launch id, cycles), in completion order *)
  sms : (int * side_stats) list;  (** sorted by SM id *)
  warps : ((int * int) * side_stats) list;  (** keyed by (sm, warp) *)
  total : side_stats;
  cache_probes : (int * int) * (int * int);
      (** ((l1 hits, l1 misses), (l2 hits, l2 misses)) *)
  handler_invokes : int;
  faults : int;
}

val reason_index : Record.stall_reason -> int

val reasons : Record.stall_reason array
(** Inverse of {!reason_index}. *)

val build : Record.t list -> t

val stall_breakdown : t -> (Record.stall_reason * int * int) list
(** (reason, events, cycles), every reason present, sorted by cycles
    descending. *)

val pp_summary : Format.formatter -> t -> unit

val render_warps :
  ?width:int -> ?sm:int -> ?max_warps:int -> Record.t list -> string
(** ASCII timeline, one row per warp: ['#'] issuing, ['M'] memory
    stall, ['B'] barrier stall, ['E'] execution-pipe stall, ['.']
    idle. [width] buckets (default 64) span the traced cycle range;
    [sm] restricts to one SM (default 0); at most [max_warps] rows
    (default 24). *)
