type t = {
  mask : int;
  ring : Record.t Ring.t;
}

let mask_of_categories cats =
  List.fold_left (fun m c -> m lor Record.category_bit c) 0 cats

let create ?(capacity = 262144) ?(policy = Ring.Drop_oldest)
    ?(categories = Record.all_categories) () =
  { mask = mask_of_categories categories;
    ring = Ring.create ~policy ~capacity () }

let wants t cat = t.mask land Record.category_bit cat <> 0

let mask t = t.mask

let emit t r = Ring.push t.ring r

let emit_if t r = if wants t (Record.category r) then Ring.push t.ring r

let records t = Ring.to_list t.ring

let length t = Ring.length t.ring

let pushed t = Ring.pushed t.ring

let dropped t = Ring.dropped t.ring

let flushed t = Ring.flushed t.ring

let flush t = Ring.flush t.ring

let clear t = Ring.clear t.ring

let ring t = t.ring
