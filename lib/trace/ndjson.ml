(* All string escaping goes through the shared Json helper so every
   sink agrees on what a valid JSON string is. *)
let escape = Json.escape

let record_to_string (r : Record.t) =
  let common =
    Printf.sprintf "\"kind\":%S,\"cycle\":%d,\"sm\":%d,\"warp\":%d"
      (Record.category_to_string (Record.category r))
      r.Record.cycle r.Record.sm r.Record.warp
  in
  let rest =
    match r.Record.payload with
    | Record.Kernel_launch { name; launch_id; grid = gx, gy; block = bx, by }
      ->
      Printf.sprintf
        "\"event\":\"kernel_launch\",\"name\":\"%s\",\"launch\":%d,\"grid\":[%d,%d],\"block\":[%d,%d]"
        (escape name) launch_id gx gy bx by
    | Record.Kernel_exit { name; launch_id; cycles } ->
      Printf.sprintf
        "\"event\":\"kernel_exit\",\"name\":\"%s\",\"launch\":%d,\"cycles\":%d"
        (escape name) launch_id cycles
    | Record.Block_dispatch { block; warps } ->
      Printf.sprintf "\"event\":\"block_dispatch\",\"block\":%d,\"warps\":%d"
        block warps
    | Record.Warp_issue { pc; op; active } ->
      Printf.sprintf
        "\"event\":\"warp_issue\",\"pc\":%d,\"op\":\"%s\",\"active\":%d" pc
        (escape op) active
    | Record.Warp_stall { reason; cycles } ->
      Printf.sprintf "\"event\":\"warp_stall\",\"reason\":%S,\"cycles\":%d"
        (Record.stall_reason_to_string reason)
        cycles
    | Record.Warp_barrier { pc; arrived } ->
      Printf.sprintf "\"event\":\"warp_barrier\",\"pc\":%d,\"arrived\":%d" pc
        arrived
    | Record.Mem_access { space; write; bytes; lanes; transactions } ->
      Printf.sprintf
        "\"event\":\"mem_access\",\"space\":%S,\"write\":%b,\"bytes\":%d,\"lanes\":%d,\"transactions\":%d"
        (Record.mem_space_to_string space)
        write bytes lanes transactions
    | Record.Cache_access { level; hit } ->
      Printf.sprintf "\"event\":\"cache_access\",\"level\":%S,\"hit\":%b"
        (Record.cache_level_to_string level)
        hit
    | Record.Handler_invoke { site; pc } ->
      Printf.sprintf "\"event\":\"handler_invoke\",\"site\":%d,\"pc\":%d" site
        pc
    | Record.Fault_inject { thread; bit; target } ->
      Printf.sprintf
        "\"event\":\"fault_inject\",\"thread\":%d,\"bit\":%d,\"target\":%S"
        thread bit target
  in
  "{" ^ common ^ "," ^ rest ^ "}"

let to_channel oc records =
  List.iter
    (fun r ->
       output_string oc (record_to_string r);
       output_char oc '\n')
    records

let write_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel oc records)

let sink oc batch =
  Array.iter
    (fun r ->
       output_string oc (record_to_string r);
       output_char oc '\n')
    batch
