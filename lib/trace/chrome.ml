(* All string escaping goes through the shared Json helper so every
   sink agrees on what a valid JSON string is. *)
let escape b s = Json.escape_to b s

let kernel_pid = 0

let pid_of r = if r.Record.sm < 0 then kernel_pid else r.Record.sm + 1

let tid_of r =
  match r.Record.payload with
  | Record.Kernel_launch { launch_id; _ } | Record.Kernel_exit { launch_id; _ }
    -> launch_id
  | _ -> max 0 r.Record.warp

(* One trace event. [ph] is the Chrome phase; [dur] only applies to
   "X" events. [args] are extra key/value pairs, values pre-rendered
   as JSON. *)
let event b ~first ~name ~cat ~ph ~ts ?dur ~pid ~tid ~args () =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b "{\"name\":\"";
  escape b name;
  Buffer.add_string b "\",\"cat\":\"";
  escape b cat;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b (Printf.sprintf "\",\"ts\":%d" ts);
  (match dur with
   | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%d" d)
   | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
  (match args with
   | [] -> ()
   | args ->
     Buffer.add_string b ",\"args\":{";
     List.iteri
       (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          Buffer.add_string b v)
       args;
     Buffer.add_char b '}');
  (match ph with
   | "i" -> Buffer.add_string b ",\"s\":\"t\"}"
   | _ -> Buffer.add_char b '}')

let str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_buffer b records =
  let first = ref true in
  Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  (* Name the processes and threads we are about to reference. *)
  let pids = Hashtbl.create 16 in
  let tids = Hashtbl.create 64 in
  List.iter
    (fun r ->
       Hashtbl.replace pids (pid_of r) ();
       Hashtbl.replace tids (pid_of r, tid_of r) ())
    records;
  let sorted_pids =
    Hashtbl.fold (fun p () acc -> p :: acc) pids [] |> List.sort Int.compare
  in
  List.iter
    (fun pid ->
       let pname =
         if pid = kernel_pid then "kernels"
         else Printf.sprintf "SM %d" (pid - 1)
       in
       event b ~first ~name:"process_name" ~cat:"__metadata" ~ph:"M" ~ts:0
         ~pid ~tid:0 ~args:[ ("name", str pname) ] ())
    sorted_pids;
  let sorted_tids =
    Hashtbl.fold (fun k () acc -> k :: acc) tids [] |> List.sort compare
  in
  List.iter
    (fun (pid, tid) ->
       let tname =
         if pid = kernel_pid then Printf.sprintf "launch %d" tid
         else Printf.sprintf "warp %d" tid
       in
       event b ~first ~name:"thread_name" ~cat:"__metadata" ~ph:"M" ~ts:0
         ~pid ~tid ~args:[ ("name", str tname) ] ())
    sorted_tids;
  List.iter
    (fun r ->
       let cat = Record.category_to_string (Record.category r) in
       let name = Record.name r in
       let ts = r.Record.cycle in
       let pid = pid_of r in
       let tid = tid_of r in
       let ev = event b ~first ~name ~cat ~pid ~tid in
       match r.Record.payload with
       | Record.Kernel_launch { grid = gx, gy; block = bx, by; _ } ->
         ev ~ph:"i" ~ts
           ~args:
             [ ("grid", Printf.sprintf "[%d,%d]" gx gy);
               ("block", Printf.sprintf "[%d,%d]" bx by) ]
           ()
       | Record.Kernel_exit { cycles; _ } ->
         (* The exit record is stamped at the end of the launch; the
            kernel span covers the preceding [cycles]. *)
         ev ~ph:"X" ~ts:(max 0 (ts - cycles)) ~dur:(max 1 cycles)
           ~args:[ ("cycles", string_of_int cycles) ]
           ()
       | Record.Block_dispatch { block; warps } ->
         ev ~ph:"i" ~ts
           ~args:
             [ ("block", string_of_int block);
               ("warps", string_of_int warps) ]
           ()
       | Record.Warp_issue { pc; active; _ } ->
         ev ~ph:"i" ~ts
           ~args:
             [ ("pc", string_of_int pc); ("active", string_of_int active) ]
           ()
       | Record.Warp_stall { cycles; reason } ->
         ev ~ph:"X" ~ts ~dur:(max 1 cycles)
           ~args:[ ("reason", str (Record.stall_reason_to_string reason)) ]
           ()
       | Record.Warp_barrier { pc; arrived } ->
         ev ~ph:"i" ~ts
           ~args:
             [ ("pc", string_of_int pc); ("arrived", string_of_int arrived) ]
           ()
       | Record.Mem_access { bytes; lanes; transactions; _ } ->
         ev ~ph:"i" ~ts
           ~args:
             [ ("bytes", string_of_int bytes);
               ("lanes", string_of_int lanes);
               ("transactions", string_of_int transactions) ]
           ()
       | Record.Cache_access _ -> ev ~ph:"i" ~ts ~args:[] ()
       | Record.Handler_invoke { site; pc } ->
         ev ~ph:"i" ~ts
           ~args:[ ("site", string_of_int site); ("pc", string_of_int pc) ]
           ()
       | Record.Fault_inject { thread; bit; _ } ->
         ev ~ph:"i" ~ts
           ~args:
             [ ("thread", string_of_int thread); ("bit", string_of_int bit) ]
           ())
    records;
  Buffer.add_string b "\n]}\n"

let to_string records =
  let b = Buffer.create 65536 in
  to_buffer b records;
  Buffer.contents b

let to_channel oc records =
  let b = Buffer.create 65536 in
  to_buffer b records;
  Buffer.output_buffer oc b

let write_file path records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel oc records)
