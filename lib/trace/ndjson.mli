(** Newline-delimited JSON: one self-describing object per activity
    record, suitable for streaming consumers ([jq], log shippers) and
    for incremental flushing via {!Ring.Flush_callback}. *)

val record_to_string : Record.t -> string
(** One JSON object, no trailing newline. *)

val to_channel : out_channel -> Record.t list -> unit

val write_file : string -> Record.t list -> unit

val sink : out_channel -> Record.t array -> unit
(** A ready-made [Flush_callback]: writes each record of the batch as
    one line. *)
