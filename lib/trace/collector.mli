(** The live end of the tracer: a category mask deciding what gets
    recorded and a {!Ring} holding what was. Emission sites in the
    simulator guard on {!wants} (a single bit test) so that a
    disabled category — or a disabled tracer — costs nothing. *)

type t

val create :
  ?capacity:int ->
  ?policy:Record.t Ring.overflow ->
  ?categories:Record.category list ->
  unit ->
  t
(** Default capacity 262144 records, policy [Drop_oldest], all
    categories enabled. *)

val wants : t -> Record.category -> bool

val mask : t -> int

val emit : t -> Record.t -> unit
(** Unconditionally records; call {!wants} first at emission sites
    that construct records lazily. *)

val emit_if : t -> Record.t -> unit
(** Records only when the record's category is enabled. *)

val records : t -> Record.t list
(** Resident records, oldest first. *)

val length : t -> int

val pushed : t -> int

val dropped : t -> int

val flushed : t -> int

val flush : t -> Record.t list

val clear : t -> unit

val ring : t -> Record.t Ring.t
