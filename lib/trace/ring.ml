type 'a overflow =
  | Drop_oldest
  | Drop_newest
  | Flush_callback of ('a array -> unit)

type 'a t = {
  cap : int;
  pol : 'a overflow;
  buf : 'a option array;
  mutable head : int;  (* index of the oldest resident element *)
  mutable len : int;
  mutable pushed : int;
  mutable dropped : int;
  mutable flushed : int;
}

let create ?(policy = Drop_oldest) ~capacity () =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { cap = capacity;
    pol = policy;
    buf = Array.make capacity None;
    head = 0;
    len = 0;
    pushed = 0;
    dropped = 0;
    flushed = 0 }

let capacity t = t.cap

let policy t = t.pol

let length t = t.len

let pushed t = t.pushed

let dropped t = t.dropped

let flushed t = t.flushed

let resident t =
  Array.init t.len (fun i ->
      match t.buf.((t.head + i) mod t.cap) with
      | Some x -> x
      | None -> assert false)

let empty t =
  Array.fill t.buf 0 t.cap None;
  t.head <- 0;
  t.len <- 0

let store t x =
  t.buf.((t.head + t.len) mod t.cap) <- Some x;
  t.len <- t.len + 1

let push t x =
  t.pushed <- t.pushed + 1;
  if t.len < t.cap then store t x
  else
    match t.pol with
    | Drop_oldest ->
      t.buf.(t.head) <- Some x;
      t.head <- (t.head + 1) mod t.cap;
      t.dropped <- t.dropped + 1
    | Drop_newest -> t.dropped <- t.dropped + 1
    | Flush_callback f ->
      let batch = resident t in
      empty t;
      t.flushed <- t.flushed + Array.length batch;
      f batch;
      store t x

let to_list t = Array.to_list (resident t)

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod t.cap) with
    | Some x -> f x
    | None -> assert false
  done

let flush t =
  let xs = to_list t in
  empty t;
  xs

let clear t =
  empty t;
  t.pushed <- 0;
  t.dropped <- 0;
  t.flushed <- 0
