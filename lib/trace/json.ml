(* Minimal JSON document builder shared by every JSON-emitting sink
   (NDJSON and Chrome trace sinks, the profiler report writer, bench
   summaries, --stats-json). One escaping routine, one number
   formatter, so all emitters agree on validity. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to b s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  escape_to b s;
  Buffer.contents b

(* JSON has no NaN/infinity literals; map them to null. *)
let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | _ -> Printf.sprintf "%.12g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
    Buffer.add_char b '"';
    escape_to b s;
    Buffer.add_char b '"'
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char b ',';
         to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_char b '"';
         escape_to b k;
         Buffer.add_string b "\":";
         to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ---------- parsing ---------- *)

exception Parse_error of string

let utf8_of_code b code =
  (* Re-encode a decoded \uXXXX code point as UTF-8 bytes. *)
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then fail "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    let g = next () in
    if g <> c then fail (Printf.sprintf "expected '%c', got '%c'" c g)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let hex4 () =
    let d c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let a = d (next ()) in
    let b = d (next ()) in
    let c = d (next ()) in
    let e = d (next ()) in
    (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor e
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
        (match next () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           let code = hex4 () in
           (* Surrogate pair: a high surrogate must be followed by a
              low one; combine them into one code point. *)
           if code >= 0xD800 && code <= 0xDBFF then begin
             expect '\\';
             expect 'u';
             let lo = hex4 () in
             if lo < 0xDC00 || lo > 0xDFFF then fail "unpaired surrogate";
             utf8_of_code b
               (0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00))
           end
           else if code >= 0xDC00 && code <= 0xDFFF then
             (* A low surrogate with no preceding high one: reject it
                rather than emit WTF-8 no other reader accepts. *)
             fail "unpaired surrogate"
           else utf8_of_code b code
         | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "unescaped control character"
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit
    in
    if is_float then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None ->
        (* Integer literal out of native range: keep it as a float. *)
        (match float_of_string_opt lit with
         | Some f -> Float f
         | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        expect '}';
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        expect ']';
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match next () with
          | ',' -> elements (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string contents

(* ---------- accessors ---------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_channel oc v =
  let b = Buffer.create 4096 in
  to_buffer b v;
  Buffer.output_buffer oc b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       to_channel oc v;
       output_char oc '\n')
