(* Minimal JSON document builder shared by every JSON-emitting sink
   (NDJSON and Chrome trace sinks, the profiler report writer, bench
   summaries, --stats-json). One escaping routine, one number
   formatter, so all emitters agree on validity. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to b s =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  escape_to b s;
  Buffer.contents b

(* JSON has no NaN/infinity literals; map them to null. *)
let float_repr f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite -> "null"
  | _ -> Printf.sprintf "%.12g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
    Buffer.add_char b '"';
    escape_to b s;
    Buffer.add_char b '"'
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char b ',';
         to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_char b '"';
         escape_to b k;
         Buffer.add_string b "\":";
         to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let to_channel oc v =
  let b = Buffer.create 4096 in
  to_buffer b v;
  Buffer.output_buffer oc b

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       to_channel oc v;
       output_char oc '\n')
