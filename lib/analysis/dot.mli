(** Graphviz export of a kernel CFG, optionally annotated with
    per-block live-in/live-out register sets. *)

val render :
  ?live:Sass.Liveness.t ->
  name:string ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  string
(** A [digraph]: one box per basic block listing its instructions
    (elided past 12), dashed boxes for blocks unreachable from the
    entry, and, when [live] is given, live-in/live-out GPR lines. *)
