(** Integer intervals with infinite endpoints, the base layer of the
    abstract-interpretation stack ({!Affine}, {!Absdom}).

    [min_int]/[max_int] are the -oo/+oo sentinels; every operation
    saturates toward them, so overflow degrades to "unbounded" rather
    than wrapping. The lattice has infinite ascending chains —
    {!widen} jumps a growing bound straight to its sentinel and is
    what the {!Dataflow} solver applies at loop heads. *)

type t = private {
  lo : int;  (** [min_int] means unbounded below *)
  hi : int;  (** [max_int] means unbounded above *)
}

val top : t

val point : int -> t

val make : int -> int -> t
(** [make lo hi]; @raise Invalid_argument if [lo > hi]. *)

val below : int -> t
(** [[-oo, hi]]. *)

val above : int -> t
(** [[lo, +oo]]. *)

val is_top : t -> bool

val is_point : t -> bool

val equal : t -> t -> bool

val mem : int -> t -> bool

val join : t -> t -> t

val widen : t -> t -> t
(** [widen old next]: keep a stable bound, jump a moving one to its
    sentinel. [widen a (join a b)] stabilizes in at most two steps. *)

val add : t -> t -> t

val neg : t -> t

val sub : t -> t -> t

val mul_const : int -> t -> t

val mul : t -> t -> t

val disjoint : t -> t -> bool
(** No common point. *)

val sat_add : int -> int -> int
(** Saturating scalar addition (sentinels absorb). *)

val sat_mul : int -> int -> int

val pp : Format.formatter -> t -> unit
