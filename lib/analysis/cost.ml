open Sass

type site = {
  c_id : int;
  c_pc : int;
  c_point : Sassi.Select.point;
  c_what : Sassi.Select.what list;
  c_live : int;
  c_spills : int;
  c_seq : int;
}

type t = {
  c_kernel : string;
  c_sites : site list;
  c_static_instrs : int;
  c_frame_bytes : int;
}

(* The injector's spill filter: caller-saved R0..R15 minus the stack
   pointer R1 (Core.Inject.spill_set). *)
let spill_count regs =
  List.length
    (List.filter
       (fun r ->
          let k = Reg.index r in
          k <> 1 && k < Sassi.Abi.spillable_regs)
       regs)

let price ~id ~pc ~point ~what instr live_regs =
  let spills = spill_count live_regs in
  let spec =
    { Sassi.Select.point; classes = [ Sassi.Select.All ]; what }
  in
  { c_id = id;
    c_pc = pc;
    c_point = point;
    c_what = what;
    c_live = List.length live_regs;
    c_spills = spills;
    c_seq = Sassi.Inject.sequence_length spec instr ~live:spills }

let finish kernel sites =
  { c_kernel = kernel;
    c_sites = sites;
    c_static_instrs = List.fold_left (fun a s -> a + s.c_seq) 0 sites;
    c_frame_bytes = (if sites = [] then 0 else Sassi.Abi.frame_bytes) }

let analyze ~specs (k : Program.kernel) =
  let instrs = k.Program.instrs in
  let n = Array.length instrs in
  let live = Liveness.analyze instrs in
  let cfg = Cfg.build instrs in
  let is_leader = Array.make n false in
  Array.iter (fun b -> is_leader.(b.Cfg.first) <- true) cfg.Cfg.blocks;
  let sites = ref [] in
  let id = ref 0 in
  let consider point pc =
    List.iter
      (fun (spec : Sassi.Select.spec) ->
         if
           spec.Sassi.Select.point = point
           && Sassi.Select.matches_at spec ~pc ~is_leader:is_leader.(pc)
                instrs.(pc)
         then begin
           let regs =
             match point with
             | Sassi.Select.Before -> Liveness.live_gprs_before live pc
             | Sassi.Select.After -> Liveness.live_gprs_after live pc
           in
           sites :=
             price ~id:!id ~pc ~point ~what:spec.Sassi.Select.what
               instrs.(pc) regs
             :: !sites;
           incr id
         end)
      specs
  in
  for pc = 0 to n - 1 do
    consider Sassi.Select.Before pc;
    consider Sassi.Select.After pc
  done;
  finish k.Program.name (List.rev !sites)

let of_sites (k : Program.kernel) (sites : Sassi.Select.site list) =
  let live = Liveness.analyze k.Program.instrs in
  let priced =
    List.map
      (fun (s : Sassi.Select.site) ->
         let pc = s.Sassi.Select.s_old_pc in
         let regs =
           match s.Sassi.Select.s_point with
           | Sassi.Select.Before -> Liveness.live_gprs_before live pc
           | Sassi.Select.After -> Liveness.live_gprs_after live pc
         in
         price ~id:s.Sassi.Select.s_id ~pc ~point:s.Sassi.Select.s_point
           ~what:s.Sassi.Select.s_what s.Sassi.Select.s_instr regs)
      sites
  in
  finish k.Program.name priced

let predict_extra_instrs t ~counts =
  List.fold_left
    (fun acc s ->
       match List.assoc_opt s.c_id counts with
       | Some invocations -> acc + (s.c_seq * invocations)
       | None -> acc)
    0 t.c_sites

let to_json t =
  let site_json s =
    Trace.Json.Obj
      [ ("id", Trace.Json.Int s.c_id);
        ("pc", Trace.Json.Int s.c_pc);
        ( "point",
          Trace.Json.Str
            (match s.c_point with
             | Sassi.Select.Before -> "before"
             | Sassi.Select.After -> "after") );
        ("live", Trace.Json.Int s.c_live);
        ("spills", Trace.Json.Int s.c_spills);
        ("seq_instrs", Trace.Json.Int s.c_seq) ]
  in
  Trace.Json.Obj
    [ ("kernel", Trace.Json.Str t.c_kernel);
      ("sites", Trace.Json.List (List.map site_json t.c_sites));
      ("static_instrs", Trace.Json.Int t.c_static_instrs);
      ("frame_bytes", Trace.Json.Int t.c_frame_bytes) ]
