type severity =
  | Error
  | Warning
  | Info

type kind =
  | Uninit_read
  | Maybe_uninit_read
  | Divergent_barrier
  | Loop_barrier
  | Shared_race
  | Out_of_bounds
  | Unreachable_code
  | Dead_store

type t = {
  f_kernel : string;
  f_pc : int;
  f_kind : kind;
  f_severity : severity;
  f_msg : string;
}

let make ~kernel ~pc kind severity msg =
  { f_kernel = kernel; f_pc = pc; f_kind = kind; f_severity = severity;
    f_msg = msg }

let kind_name = function
  | Uninit_read -> "uninit-read"
  | Maybe_uninit_read -> "maybe-uninit-read"
  | Divergent_barrier -> "divergent-barrier"
  | Loop_barrier -> "loop-barrier"
  | Shared_race -> "shared-race"
  | Out_of_bounds -> "out-of-bounds"
  | Unreachable_code -> "unreachable-code"
  | Dead_store -> "dead-store"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.f_severity) (severity_rank b.f_severity) in
  if c <> 0 then c
  else
    let c = Int.compare a.f_pc b.f_pc in
    if c <> 0 then c else Stdlib.compare a.f_kind b.f_kind

let errors fs = List.filter (fun f -> f.f_severity = Error) fs

let pp ppf f =
  Format.fprintf ppf "%s:%d: %s: %s: %s" f.f_kernel f.f_pc
    (severity_name f.f_severity) (kind_name f.f_kind) f.f_msg

let to_json f =
  Trace.Json.Obj
    [ ("kernel", Trace.Json.Str f.f_kernel);
      ("pc", Trace.Json.Int f.f_pc);
      ("kind", Trace.Json.Str (kind_name f.f_kind));
      ("severity", Trace.Json.Str (severity_name f.f_severity));
      ("message", Trace.Json.Str f.f_msg) ]
