(** Generic worklist dataflow over {!Sass.Cfg}.

    The solver iterates block-level states to a fixpoint in
    reverse-postorder (postorder for backward problems), then expands
    the solution to per-PC states in one final pass. All blocks are
    solved, including blocks unreachable from the entry: because a
    reachable block never has an unreachable predecessor (see
    [cfg.mli]), unreachable state can never leak into reachable code,
    and must-style analyses that seed interior blocks with top simply
    stay silent there. *)

type direction =
  | Forward
  | Backward

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Merge at control-flow confluences (set union for may-analyses,
      intersection for must-analyses). *)

  val widen : t -> t -> t
  (** [widen old next] accelerates convergence at loop heads: from the
      second sweep on, a block with a retreating in-edge receives
      [widen previous_input joined_input] instead of the plain join.
      Finite-height domains can use [let widen = join]; domains with
      infinite ascending chains (intervals) must jump unstable bounds
      to a sentinel. *)

  val transfer : pc:int -> Sass.Instr.t -> t -> t
  (** Effect of one instruction. For [Backward] problems the input is
      the state {e after} the instruction and the result the state
      before it. *)
end

module Make (D : DOMAIN) : sig
  type result = {
    before : D.t array;  (** per-PC state before the instruction *)
    after : D.t array;  (** per-PC state after the instruction *)
    passes : int;  (** sweeps over the block list until fixpoint *)
  }

  val solve :
    direction:direction ->
    boundary:D.t ->
    init:D.t ->
    Sass.Instr.t array ->
    Sass.Cfg.t ->
    result
  (** [boundary] is the state at the kernel entry ([Forward]) or at
      every exit block ([Backward]); [init] seeds all other block
      inputs (use the lattice top for must-analyses, bottom for
      may-analyses). *)
end
