open Sass

let check ~kernel instrs (cfg : Cfg.t) uni =
  let pdom = Domtree.post_dominators cfg in
  let dom = Domtree.dominators cfg in
  let nb = Array.length cfg.Cfg.blocks in
  let bars = Array.make nb [] in
  Array.iteri
    (fun pc (i : Instr.t) ->
       if i.Instr.op = Opcode.BAR then begin
         let b = cfg.Cfg.block_of_pc.(pc) in
         bars.(b) <- pc :: bars.(b)
       end)
    instrs;
  let seen = Hashtbl.create 16 in
  let findings = ref [] in
  let report pc kind sev msg =
    if not (Hashtbl.mem seen (pc, kind)) then begin
      Hashtbl.add seen (pc, kind) ();
      findings := Finding.make ~kernel ~pc kind sev msg :: !findings
    end
  in
  Array.iteri
    (fun pc (i : Instr.t) ->
       let b = cfg.Cfg.block_of_pc.(pc) in
       if
         Instr.is_cond_branch i
         && Cfg.reachable_block cfg b
         && Uniformity.divergent_branch uni pc
       then begin
         (* Divergent region: blocks reachable from the branch's
            successors without passing through its reconvergence
            point (immediate post-dominator). *)
         let stop = Domtree.ipdom pdom b in
         let visited = Array.make nb false in
         let region = ref [] in
         let rec dfs d =
           if (match stop with Some s -> d <> s | None -> true)
              && not visited.(d)
           then begin
             visited.(d) <- true;
             region := d :: !region;
             List.iter dfs cfg.Cfg.blocks.(d).Cfg.succs
           end
         in
         List.iter dfs cfg.Cfg.blocks.(b).Cfg.succs;
         List.iter
           (fun d ->
              List.iter
                (fun bar_pc ->
                   if Domtree.dominates dom d b then
                     report bar_pc Finding.Loop_barrier Finding.Warning
                       (Printf.sprintf
                          "BAR inside a loop controlled by the divergent \
                           branch at pc %d; deadlocks if lanes run \
                           different trip counts"
                          pc)
                   else
                     report bar_pc Finding.Divergent_barrier Finding.Error
                       (Printf.sprintf
                          "BAR reachable on one arm of the divergent \
                           branch at pc %d (reconvergence %s); lanes on \
                           the other arm never arrive"
                          pc
                          (match stop with
                           | Some s ->
                             Printf.sprintf "at pc %d"
                               cfg.Cfg.blocks.(s).Cfg.first
                           | None -> "at exit")))
                bars.(d))
           !region
       end)
    instrs;
  List.rev !findings
