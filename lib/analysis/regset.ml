(* 256-bit sets packed into five native-int words of 52 bits each.
   Treated immutably: every operation copies. Word count and width are
   chosen so shifts stay well inside OCaml's 63-bit ints. *)

let bits = 52
let words = 5
let word_mask = (1 lsl bits) - 1

type t = int array

let empty = Array.make words 0

let full =
  Array.init words (fun w ->
      let lo = w * bits in
      let n = min bits (256 - lo) in
      if n <= 0 then 0 else (1 lsl n) - 1)

let check i =
  if i < 0 || i > 255 then invalid_arg "Regset: index out of range"

let add i s =
  check i;
  let s' = Array.copy s in
  s'.(i / bits) <- s'.(i / bits) lor (1 lsl (i mod bits));
  s'

let remove i s =
  check i;
  let s' = Array.copy s in
  s'.(i / bits) <- s'.(i / bits) land lnot (1 lsl (i mod bits)) land word_mask;
  s'

let mem i s =
  check i;
  s.(i / bits) land (1 lsl (i mod bits)) <> 0

let union a b = Array.init words (fun w -> a.(w) lor b.(w))
let inter a b = Array.init words (fun w -> a.(w) land b.(w))

let equal a b =
  let rec go w = w >= words || (a.(w) = b.(w) && go (w + 1)) in
  go 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s

let elements s =
  let out = ref [] in
  for i = 255 downto 0 do
    if mem i s then out := i :: !out
  done;
  !out

let of_list l = List.fold_left (fun s i -> add i s) empty l
