(** Immutable sets of register indices in [0, 256), used as the
    lattice elements of the register dataflow analyses. Indices follow
    {!Sass.Reg.index} / {!Sass.Pred.index} conventions (so [RZ] is 255
    and fits, though analyses normally exclude it). *)

type t

val empty : t

val full : t
(** All 256 indices — the top element of must-style lattices. *)

val add : int -> t -> t

val remove : int -> t -> t

val mem : int -> t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val equal : t -> t -> bool

val cardinal : t -> int

val elements : t -> int list
(** Ascending order. *)

val of_list : int list -> t
