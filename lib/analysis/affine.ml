type geom = {
  g_block_x : int;
  g_block_y : int;
  g_grid_x : int;
  g_grid_y : int;
}

let assumed_geom =
  { g_block_x = 1024; g_block_y = 1024; g_grid_x = 65535; g_grid_y = 65535 }

type t = {
  a_base : int;
  a_tx : int;
  a_ty : int;
  a_cx : int;
  a_cy : int;
  a_par : (int * int) list;
  a_res : Interval.t;
  a_mod : int;
  a_var : bool;
}

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Normalization: a point-zero residue carries stride 0 ("exactly
   {0}"), which is the gcd identity. *)
let norm t =
  if Interval.equal t.a_res (Interval.point 0) then { t with a_mod = 0 }
  else if t.a_mod < 0 then { t with a_mod = -t.a_mod }
  else t

let const n =
  { a_base = n; a_tx = 0; a_ty = 0; a_cx = 0; a_cy = 0; a_par = [];
    a_res = Interval.point 0; a_mod = 0; a_var = false }

let zero = const 0

let tid_x = { zero with a_tx = 1 }

let tid_y = { zero with a_ty = 1 }

let ctaid_x = { zero with a_cx = 1 }

let ctaid_y = { zero with a_cy = 1 }

let param off = { zero with a_par = [ (off, 1) ] }

let of_interval ?(var = false) iv =
  norm { zero with a_res = iv; a_mod = 1; a_var = var }

let unknown ~var = { zero with a_res = Interval.top; a_mod = 1; a_var = var }

let is_const t =
  if t.a_tx = 0 && t.a_ty = 0 && t.a_cx = 0 && t.a_cy = 0 && t.a_par = []
     && (not t.a_var)
     && Interval.is_point t.a_res
  then Some (t.a_base + t.a_res.Interval.lo)
  else None

let is_exact t = Interval.is_point t.a_res && not t.a_var

let has_tid t = t.a_tx <> 0 || t.a_ty <> 0

let equal a b =
  a.a_base = b.a_base && a.a_tx = b.a_tx && a.a_ty = b.a_ty
  && a.a_cx = b.a_cx && a.a_cy = b.a_cy && a.a_par = b.a_par
  && Interval.equal a.a_res b.a_res
  && a.a_mod = b.a_mod && a.a_var = b.a_var

(* Exact scalar ops that degrade the whole form to top on overflow
   instead of wrapping. *)
exception Overflow

let xadd a b =
  let s = Interval.sat_add a b in
  if s = min_int || s = max_int then raise Overflow else s

let xmul a b =
  let p = Interval.sat_mul a b in
  if (p = min_int || p = max_int) && a <> 0 && b <> 0 then raise Overflow
  else p

let merge_par pa pb =
  let rec go pa pb =
    match (pa, pb) with
    | [], p | p, [] -> p
    | (oa, ca) :: ta, (ob, cb) :: tb ->
      if oa < ob then (oa, ca) :: go ta pb
      else if ob < oa then (ob, cb) :: go pa tb
      else
        let c = xadd ca cb in
        if c = 0 then go ta tb else (oa, c) :: go ta tb
  in
  go pa pb

let add a b =
  try
    norm
      { a_base = xadd a.a_base b.a_base;
        a_tx = xadd a.a_tx b.a_tx;
        a_ty = xadd a.a_ty b.a_ty;
        a_cx = xadd a.a_cx b.a_cx;
        a_cy = xadd a.a_cy b.a_cy;
        a_par = merge_par a.a_par b.a_par;
        a_res = Interval.add a.a_res b.a_res;
        a_mod = gcd a.a_mod b.a_mod;
        a_var = a.a_var || b.a_var }
  with Overflow -> unknown ~var:(a.a_var || b.a_var)

let neg a =
  { a_base = -a.a_base; a_tx = -a.a_tx; a_ty = -a.a_ty; a_cx = -a.a_cx;
    a_cy = -a.a_cy;
    a_par = List.map (fun (o, c) -> (o, -c)) a.a_par;
    a_res = Interval.neg a.a_res;
    a_mod = a.a_mod;
    a_var = a.a_var }

let sub a b = add a (neg b)

let mul_const k a =
  if k = 0 then const 0
  else
    try
      norm
        { a_base = xmul k a.a_base;
          a_tx = xmul k a.a_tx;
          a_ty = xmul k a.a_ty;
          a_cx = xmul k a.a_cx;
          a_cy = xmul k a.a_cy;
          a_par = List.map (fun (o, c) -> (o, xmul k c)) a.a_par;
          a_res = Interval.mul_const k a.a_res;
          a_mod = (if a.a_mod = 0 then 0 else xmul (abs k) a.a_mod);
          a_var = a.a_var }
    with Overflow -> unknown ~var:a.a_var

(* Symbol ranges under a geometry. *)
let r_tx g = Interval.make 0 (max 0 (g.g_block_x - 1))
let r_ty g = Interval.make 0 (max 0 (g.g_block_y - 1))
let r_cx g = Interval.make 0 (max 0 (g.g_grid_x - 1))
let r_cy g = Interval.make 0 (max 0 (g.g_grid_y - 1))

let to_interval ~geom t =
  let ( + ) = Interval.add in
  let k = Interval.mul_const in
  Interval.point t.a_base
  + k t.a_tx (r_tx geom) + k t.a_ty (r_ty geom)
  + k t.a_cx (r_cx geom) + k t.a_cy (r_cy geom)
  + List.fold_left
      (fun acc (_, c) ->
         if c = 0 then acc else acc + k c Interval.top)
      (Interval.point 0) t.a_par
  + t.a_res

let collapse ~geom t =
  let syms = to_interval ~geom { t with a_base = 0 } in
  let stride =
    List.fold_left gcd
      (gcd t.a_mod (gcd t.a_tx (gcd t.a_ty (gcd t.a_cx t.a_cy))))
      (List.map snd t.a_par)
  in
  norm
    { zero with
      a_base = t.a_base;
      a_res = syms;
      a_mod = stride;
      a_var = t.a_var || has_tid t }

let same_shape a b =
  a.a_tx = b.a_tx && a.a_ty = b.a_ty && a.a_cx = b.a_cx && a.a_cy = b.a_cy
  && a.a_par = b.a_par

let combine iv_op ~geom a b =
  let a, b =
    if same_shape a b then (a, b) else (collapse ~geom a, collapse ~geom b)
  in
  let d = b.a_base - a.a_base in
  norm
    { a with
      a_res = iv_op a.a_res (Interval.add b.a_res (Interval.point d));
      a_mod = gcd (gcd a.a_mod b.a_mod) d;
      a_var = a.a_var || b.a_var }

let join ~geom a b = combine Interval.join ~geom a b

let widen ~geom a b = combine Interval.widen ~geom a b

let mul ~geom a b =
  match (is_const a, is_const b) with
  | Some k, _ -> mul_const k b
  | _, Some k -> mul_const k a
  | None, None ->
    let iv = Interval.mul (to_interval ~geom a) (to_interval ~geom b) in
    norm
      { zero with
        a_res = iv;
        a_mod = 1;
        a_var = a.a_var || b.a_var || has_tid a || has_tid b }

let div_const ~geom k a =
  match is_const a with
  | Some v when k <> 0 -> const (v / k)
  | _ ->
    if k = 0 then unknown ~var:a.a_var
    else
      let iv = to_interval ~geom a in
      let d n =
        if n = min_int || n = max_int then n else n / k
      in
      let lo = d iv.Interval.lo and hi = d iv.Interval.hi in
      let lo, hi = if k > 0 then (lo, hi) else (hi, lo) in
      norm
        { zero with
          a_res = Interval.make lo hi;
          a_mod = 1;
          a_var = a.a_var || has_tid a }

(* ------------------------------------------------------------------ *)
(* Cross-thread overlap decision procedure.

   For threads t <> u of one block, D = A1(t) - A2(u). With equal tid
   coefficients (p, q) and equal parameter/ctaid coefficients, the
   launch-uniform parts cancel and

     D = db + p*dx + q*dy + rho,    rho in F (strided interval),

   where dx in [-X, X], dy in [-Y, Y], (dx, dy) <> (0, 0). The byte
   ranges overlap iff D lies in the open window (-bytes2, bytes1).
   We enumerate dy (blocks are at most 1024 wide per axis), solve the
   dx window analytically, and decide each candidate with a combined
   interval + congruence hit test. *)

let cdiv a b = if (a > 0) = (b > 0) && a mod b <> 0 then (a / b) + 1 else a / b
let fdiv a b = if (a > 0) <> (b > 0) && a mod b <> 0 then (a / b) - 1 else a / b

(* Is there a value w in [wlo, whi] with w ≡ k (mod g), w - k in
   [f.lo, f.hi]? g = 0 means the residue set is exactly {f.lo}. *)
let window_hit ~wlo ~whi k (f : Interval.t) g =
  let a = max wlo (Interval.sat_add k f.Interval.lo) in
  let b = min whi (Interval.sat_add k f.Interval.hi) in
  if a > b then false
  else if g = 0 then true
  else
    let r = ((k - a) mod g + g) mod g in
    a + r <= b

let enum_budget = 8192

let cross_thread_overlap ~geom a1 ~bytes1 a2 ~bytes2 =
  let interval_fallback () =
    let i1 =
      Interval.add (to_interval ~geom a1) (Interval.make 0 (bytes1 - 1))
    in
    let i2 =
      Interval.add (to_interval ~geom a2) (Interval.make 0 (bytes2 - 1))
    in
    if Interval.disjoint i1 i2 then `Disjoint else `May
  in
  if
    a1.a_par <> a2.a_par
    || a1.a_tx <> a2.a_tx || a1.a_ty <> a2.a_ty
  then interval_fallback ()
  else begin
    let p = a1.a_tx and q = a1.a_ty in
    let bx = max 1 geom.g_block_x and by = max 1 geom.g_block_y in
    (* Residue difference plus the (same-block) ctaid contribution
       when the block coefficients differ. *)
    let dcx = a1.a_cx - a2.a_cx and dcy = a1.a_cy - a2.a_cy in
    let f =
      Interval.add
        (Interval.sub a1.a_res a2.a_res)
        (Interval.add
           (Interval.mul_const dcx (r_cx geom))
           (Interval.mul_const dcy (r_cy geom)))
    in
    let g = gcd (gcd a1.a_mod a2.a_mod) (gcd dcx dcy) in
    let db = a1.a_base - a2.a_base in
    let wlo = -bytes2 + 1 and whi = bytes1 - 1 in
    (* Enumerate the narrower thread axis; within it, candidate
       deltas on the other axis come from the analytic window. *)
    let p, q, bx, by, swapped =
      if by <= bx then (p, q, bx, by, false) else (q, p, by, bx, true)
    in
    ignore swapped;
    let x = bx - 1 and y = by - 1 in
    let f_bounded =
      f.Interval.lo <> min_int && f.Interval.hi <> max_int
    in
    let exception Hit in
    let may = ref false in
    (try
       for dy = -y to y do
         let k = db + (q * dy) in
         let dx_min_valid = if dy = 0 then 1 else 0 in
         (* dx = 0 is excluded only when dy = 0; an |dx| >= 1 always
            exists when bx >= 2. *)
         let check dx =
           if (dx <> 0 || dy <> 0) && abs dx <= x then
             if window_hit ~wlo ~whi (k + (p * dx)) f g then raise Hit
         in
         if p = 0 then begin
           if x >= dx_min_valid && window_hit ~wlo ~whi k f g then raise Hit
         end
         else if f_bounded then begin
           let lo = cdiv (wlo - k - f.Interval.hi) p in
           let hi = fdiv (whi - k - f.Interval.lo) p in
           let lo, hi = if p > 0 then (lo, hi) else (hi, lo) in
           let lo = max lo (-x) and hi = min hi x in
           if hi - lo > enum_budget then may := true
           else
             for dx = lo to hi do
               check dx
             done
         end
         else begin
           (* Residue unbounded on at least one side. When F is
              unbounded on both sides the hit test depends only on
              the congruence class of k + p*dx, which cycles with
              period g/gcd(p,g), so one period's worth of dx covers
              every class. With exactly one finite bound (the shape
              loop widening produces) the window is also clipped by
              the magnitude of k' = k + p*dx: dx then splits into a
              boundary band, scanned exactly, and a deep region where
              the finite bound is saturated away and the test is
              again purely congruential. *)
           if g = 0 then may := true (* unreachable: g=0 => bounded *)
           else begin
             let period = g / gcd p g in
             if period > enum_budget then may := true
             else begin
               let scan lo hi =
                 let lo = max lo (-x) and hi = min hi x in
                 if hi - lo > enum_budget then may := true
                 else
                   for dx = lo to hi do
                     check dx
                   done
               in
               (* One period of dx inside the deep region [lo, hi];
                  if the excluded (0,0) pair fell in the scanned
                  window, probe another member of its congruence
                  class instead. *)
               let scan_period lo hi =
                 let lo = max lo (-x) and hi = min hi x in
                 if lo <= hi then begin
                   let hi' = min hi (lo + period - 1) in
                   for dx = lo to hi' do
                     check dx
                   done;
                   if dy = 0 && lo <= 0 && 0 <= hi' then begin
                     if period <= hi then check period
                     else if -period >= lo then check (-period)
                   end
                 end
               in
               (* dx ranges solving p*dx <= c / p*dx >= c, where the
                  threshold c is saturating (sentinels mean the
                  constraint is vacuous or unsatisfiable). *)
               let dx_le c =
                 if c = max_int then (-x, x)
                 else if c = min_int then (1, 0)
                 else if p > 0 then (-x, fdiv c p)
                 else (cdiv c p, x)
               in
               let dx_ge c =
                 if c = min_int then (-x, x)
                 else if c = max_int then (1, 0)
                 else if p > 0 then (cdiv c p, x)
                 else (-x, fdiv c p)
               in
               let isect (a, b) (c, d) = (max a c, min b d) in
               let ssub a b =
                 if b = min_int then max_int
                 else if b = max_int then min_int
                 else Interval.sat_add a (-b)
               in
               let flo = f.Interval.lo and fhi = f.Interval.hi in
               if flo = min_int && fhi = max_int then scan_period (-x) x
               else if fhi = max_int then begin
                 (* Hit window is [k' + flo, whi]: clipped while
                    k' + flo > wlo, purely congruential once
                    k' + flo <= wlo, empty past k' + flo > whi. *)
                 let blo, bhi =
                   isect
                     (dx_ge (ssub (Interval.sat_add (ssub wlo flo) 1) k))
                     (dx_le (ssub (ssub whi flo) k))
                 in
                 scan blo bhi;
                 let dlo, dhi = dx_le (ssub (ssub wlo flo) k) in
                 scan_period dlo dhi
               end
               else begin
                 (* Mirror image: hit window is [wlo, k' + fhi]. *)
                 let blo, bhi =
                   isect
                     (dx_ge (ssub (ssub wlo fhi) k))
                     (dx_le (ssub (Interval.sat_add (ssub whi fhi) (-1)) k))
                 in
                 scan blo bhi;
                 let dlo, dhi = dx_ge (ssub (ssub whi fhi) k) in
                 scan_period dlo dhi
               end
             end
           end
         end
       done
     with Hit -> may := true);
    if not !may then `Disjoint
    else if
      (* A guaranteed overlap needs exact forms: the difference D is
         then a known affine function of (dx, dy) and a witness pair
         of distinct threads is a proof. *)
      is_exact a1 && is_exact a2 && a1.a_cx = a2.a_cx && a1.a_cy = a2.a_cy
    then begin
      let db =
        db + a1.a_res.Interval.lo - a2.a_res.Interval.lo
      in
      let witness = ref false in
      (try
         for dy = -y to y do
           let k = db + (q * dy) in
           if p = 0 then begin
             if wlo <= k && k <= whi && (dy <> 0 || x >= 1) then begin
               witness := true;
               raise Exit
             end
           end
           else begin
             let lo = cdiv (wlo - k) p and hi = fdiv (whi - k) p in
             let lo, hi = if p > 0 then (lo, hi) else (hi, lo) in
             let lo = max lo (-x) and hi = min hi x in
             if lo <= hi then
               if dy <> 0 || lo <> 0 || hi <> 0 then begin
                 (* some candidate dx other than (0,0) exists *)
                 witness := true;
                 raise Exit
               end
           end
         done
       with Exit -> ());
      if !witness then `Overlap else `May
    end
    else `May
  end

let pp ppf t =
  let term ppf (c, name) =
    if c <> 0 then Format.fprintf ppf " + %d*%s" c name
  in
  Format.fprintf ppf "%d%a%a%a%a" t.a_base term (t.a_tx, "tid.x") term
    (t.a_ty, "tid.y") term (t.a_cx, "ctaid.x") term (t.a_cy, "ctaid.y");
  List.iter (fun (o, c) -> Format.fprintf ppf " + %d*param[%d]" c o) t.a_par;
  if not (Interval.equal t.a_res (Interval.point 0)) then
    Format.fprintf ppf " + %a%s%s" Interval.pp t.a_res
      (if t.a_mod > 1 then Printf.sprintf "/%d" t.a_mod else "")
      (if t.a_var then "?" else "")
