open Sass

let verify (k : Program.kernel) =
  let instrs = k.Program.instrs in
  let kernel = k.Program.name in
  let cfg = Cfg.build instrs in
  let live = Liveness.analyze instrs in
  let uni = Uniformity.analyze instrs cfg in
  let findings =
    Init_check.check ~kernel instrs cfg
    @ Barrier_check.check ~kernel instrs cfg uni
    @ Race_check.check ~kernel instrs cfg uni
    @ Dead_check.check ~kernel instrs cfg live
  in
  List.sort Finding.compare findings

let summary findings =
  List.fold_left
    (fun (e, w, i) (f : Finding.t) ->
       match f.Finding.f_severity with
       | Finding.Error -> (e + 1, w, i)
       | Finding.Warning -> (e, w + 1, i)
       | Finding.Info -> (e, w, i + 1))
    (0, 0, 0) findings

let gate k =
  match Finding.errors (verify k) with
  | [] -> Ok ()
  | errs ->
    Error
      (String.concat "; "
         (List.map (fun f -> Format.asprintf "%a" Finding.pp f) errs))

let findings_json k =
  Trace.Json.List (List.map Finding.to_json (verify k))
