open Sass

let verify_ctx ?ctx ?(concrete = false) ?heap_bytes (k : Program.kernel) =
  let instrs = k.Program.instrs in
  let ctx =
    match ctx with Some c -> c | None -> Absdom.static_for instrs
  in
  let kernel = k.Program.name in
  let cfg = Cfg.build instrs in
  let live = Liveness.analyze instrs in
  let uni = Uniformity.analyze instrs cfg in
  let states = Absdom.analyze ctx instrs cfg in
  let findings =
    Init_check.check ~kernel instrs cfg
    @ Barrier_check.check ~kernel instrs cfg uni
    @ Race_check.check ~kernel ~concrete instrs cfg states
    @ Oob_check.check ~kernel ~concrete ?heap_bytes
        ~shared_bytes:k.Program.shared_bytes
        ~frame_bytes:k.Program.frame_bytes instrs cfg states
    @ Dead_check.check ~kernel instrs cfg live
  in
  List.sort Finding.compare findings

let verify k = verify_ctx k

let race_sites ?ctx ?(concrete = false) (k : Program.kernel) =
  let instrs = k.Program.instrs in
  let ctx =
    match ctx with Some c -> c | None -> Absdom.static_for instrs
  in
  let cfg = Cfg.build instrs in
  let states = Absdom.analyze ctx instrs cfg in
  Race_check.sites ~concrete instrs cfg states

let summary findings =
  List.fold_left
    (fun (e, w, i) (f : Finding.t) ->
       match f.Finding.f_severity with
       | Finding.Error -> (e + 1, w, i)
       | Finding.Warning -> (e, w + 1, i)
       | Finding.Info -> (e, w, i + 1))
    (0, 0, 0) findings

let gate k =
  match Finding.errors (verify k) with
  | [] -> Ok ()
  | errs ->
    Error
      (String.concat "; "
         (List.map (fun f -> Format.asprintf "%a" Finding.pp f) errs))

let findings_json k =
  Trace.Json.List (List.map Finding.to_json (verify k))
