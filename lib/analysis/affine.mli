(** Affine thread-index forms: the address domain of the
    abstract-interpretation layer.

    A value is [base + tx*tid.x + ty*tid.y + cx*ctaid.x + cy*ctaid.y
    + sum(coeff_i * param_i) + residue], where the residue is an
    interval of multiples of a stride ([a_mod]) and [a_var] records
    whether the residue can differ across the threads of a block
    (loaded data, lane ids, shuffles). This is exactly the shape of
    well-behaved GPU address arithmetic: thread/block coordinates
    scaled by constants plus loop counters (the strided residue) plus
    kernel parameters.

    The stride is what makes the predictors exact on loop-carried
    addresses: a residue like [64*t, t in [0,n)] keeps [a_mod = 64],
    so a 32-byte-line coalescing pattern or a 4-byte-bank conflict
    pattern is provably invariant under the residue and can be
    evaluated at a single representative.

    Two proof procedures close the loop for the race checker:
    {!cross_thread_overlap} decides, for two accesses made by two
    {e distinct} threads of the same block, whether their byte ranges
    can overlap ([`Disjoint] and [`Overlap] are proofs, [`May] is an
    honest "unknown"). *)

type geom = {
  g_block_x : int;
  g_block_y : int;
  g_grid_x : int;
  g_grid_y : int;
}

val assumed_geom : geom
(** Worst-case geometry used when the launch shape is unknown
    (compile-time verification): 1024x1024 blocks on a 65535^2 grid.
    Proofs under it hold for every launchable geometry. *)

type t = {
  a_base : int;  (** exact constant part *)
  a_tx : int;  (** tid.x coefficient *)
  a_ty : int;  (** tid.y coefficient *)
  a_cx : int;  (** ctaid.x coefficient *)
  a_cy : int;  (** ctaid.y coefficient *)
  a_par : (int * int) list;
      (** [(byte offset, coeff)] over unresolved kernel parameters,
          sorted by offset, coefficients non-zero *)
  a_res : Interval.t;  (** residue; every value is a multiple of [a_mod] *)
  a_mod : int;  (** 0 = residue is exactly [{0}]; else the stride *)
  a_var : bool;  (** residue may differ across threads of a block *)
}

val const : int -> t

val tid_x : t

val tid_y : t

val ctaid_x : t

val ctaid_y : t

val param : int -> t
(** Symbolic kernel parameter at the given byte offset. *)

val of_interval : ?var:bool -> Interval.t -> t

val unknown : var:bool -> t
(** Top residue: any value; [var] marks per-thread variability. *)

val is_const : t -> int option

val is_exact : t -> bool
(** Point residue and thread-invariant residue: the value is an exact
    affine function of [tid]/[ctaid]/params. *)

val has_tid : t -> bool

val equal : t -> t -> bool

val add : t -> t -> t

val neg : t -> t

val sub : t -> t -> t

val mul_const : int -> t -> t

val mul : geom:geom -> t -> t -> t

val div_const : geom:geom -> int -> t -> t
(** Conservative truncating division; exact only on constants. *)

val collapse : geom:geom -> t -> t
(** Fold the coefficient part into the residue (keeping the combined
    stride), leaving a pure [base + residue] form. *)

val join : geom:geom -> t -> t -> t

val widen : geom:geom -> t -> t -> t

val to_interval : geom:geom -> t -> Interval.t
(** Range of the value over all threads of the grid. *)

val cross_thread_overlap :
  geom:geom -> t -> bytes1:int -> t -> bytes2:int ->
  [ `Disjoint | `Overlap | `May ]
(** Can accesses [[a1, a1+bytes1)] by thread [t] and [[a2, a2+bytes2)]
    by a {e different} thread [u] of the same block overlap?
    [`Disjoint]: provably never, for any distinct pair and any
    residue values. [`Overlap]: provably yes for some distinct pair —
    only claimed when both forms are exact ({!is_exact}) with equal
    parameter and block coefficients, so the overlap is
    geometry-guaranteed. [`May]: neither provable. *)

val pp : Format.formatter -> t -> unit
