(** Analysis findings: what the checkers report, with a severity that
    drives CLI exit codes and the compile gate. *)

type severity =
  | Error  (** definite bug; fails [lint] and the compile gate *)
  | Warning  (** likely or input-dependent bug; printed, never fatal *)
  | Info

type kind =
  | Uninit_read  (** register read with no prior definition on any path *)
  | Maybe_uninit_read  (** defined on some paths / under a predicate only *)
  | Divergent_barrier  (** [BAR] reachable under divergent control flow *)
  | Loop_barrier  (** [BAR] in a loop whose trip count may diverge *)
  | Shared_race  (** conflicting shared accesses with no barrier between *)
  | Out_of_bounds  (** access range outside its space's declared extent *)
  | Unreachable_code
  | Dead_store

type t = {
  f_kernel : string;
  f_pc : int;
  f_kind : kind;
  f_severity : severity;
  f_msg : string;
}

val make : kernel:string -> pc:int -> kind -> severity -> string -> t

val kind_name : kind -> string

val severity_name : severity -> string

val compare : t -> t -> int
(** Orders by severity (errors first), then PC, then kind. *)

val errors : t list -> t list

val pp : Format.formatter -> t -> unit
(** One line: [kernel:pc: severity: kind: message]. *)

val to_json : t -> Trace.Json.t
