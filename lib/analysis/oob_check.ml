open Sass

let check ~kernel ?(concrete = false) ?heap_bytes ~shared_bytes ~frame_bytes
    instrs (cfg : Cfg.t) (states : Absdom.t array) =
  let findings = ref [] in
  let report pc sev msg =
    findings := Finding.make ~kernel ~pc Finding.Out_of_bounds sev msg :: !findings
  in
  Array.iteri
    (fun pc (i : Instr.t) ->
       match Instr.mem_access i with
       | Some m when Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(pc) ->
         let extent =
           match m.Instr.m_space with
           | Opcode.Shared -> Some ("shared", shared_bytes)
           | Opcode.Local -> Some ("local", frame_bytes)
           | Opcode.Global ->
             Option.map (fun h -> ("global", h)) heap_bytes
           | Opcode.Param | Opcode.Tex -> None
         in
         (match extent with
          | None -> ()
          | Some (space, extent) ->
            let geom = Absdom.geom states.(pc) in
            let addr =
              Affine.to_interval ~geom (Absdom.address states.(pc) m)
            in
            let bytes = Opcode.bytes_of_width m.Instr.m_width in
            let lo = addr.Interval.lo in
            let hi = Interval.sat_add addr.Interval.hi (bytes - 1) in
            let bounded = lo <> min_int && hi <> max_int in
            if bounded then begin
              if lo >= extent || hi < 0 then
                report pc Finding.Error
                  (Printf.sprintf
                     "%s %s at [%d, %d] is entirely outside the %d-byte \
                      extent: faults on every execution"
                     space
                     (if m.Instr.m_is_store then "store" else "load")
                     lo hi extent)
              else if concrete && (lo < 0 || hi >= extent) then
                report pc Finding.Warning
                  (Printf.sprintf
                     "%s %s address range [%d, %d] can exceed the %d-byte \
                      extent for this launch"
                     space
                     (if m.Instr.m_is_store then "store" else "load")
                     lo hi extent)
            end)
       | _ -> ())
    instrs;
  List.rev !findings
