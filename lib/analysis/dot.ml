open Sass

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\l"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let regs_line label regs =
  Printf.sprintf "%s: %s" label
    (if regs = [] then "-"
     else String.concat "," (List.map Reg.to_string regs))

let max_shown = 12

let render ?live ~name instrs (cfg : Cfg.t) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "digraph \"%s\" {\n" (escape name);
  Buffer.add_string b "  node [shape=box fontname=\"monospace\"];\n";
  Printf.bprintf b "  label=\"%s\";\n" (escape name);
  Array.iter
    (fun (blk : Cfg.block) ->
       let lines = ref [] in
       let add l = lines := l :: !lines in
       add (Printf.sprintf "B%d [%d..%d]" blk.Cfg.id blk.Cfg.first blk.Cfg.last);
       (match live with
        | Some lv -> add (regs_line "live-in" (Liveness.live_gprs_before lv blk.Cfg.first))
        | None -> ());
       let count = blk.Cfg.last - blk.Cfg.first + 1 in
       for pc = blk.Cfg.first to min blk.Cfg.last (blk.Cfg.first + max_shown - 1) do
         add (Printf.sprintf "%4d: %s" pc (Instr.to_string instrs.(pc)))
       done;
       if count > max_shown then
         add (Printf.sprintf "  ... %d more" (count - max_shown));
       (match live with
        | Some lv -> add (regs_line "live-out" (Liveness.live_gprs_after lv blk.Cfg.last))
        | None -> ());
       let label =
         String.concat "\\l" (List.rev_map escape !lines) ^ "\\l"
       in
       let style =
         if Cfg.reachable_block cfg blk.Cfg.id then "" else " style=dashed"
       in
       Printf.bprintf b "  b%d [label=\"%s\"%s];\n" blk.Cfg.id label style)
    cfg.Cfg.blocks;
  Array.iter
    (fun (blk : Cfg.block) ->
       List.iter
         (fun s -> Printf.bprintf b "  b%d -> b%d;\n" blk.Cfg.id s)
         blk.Cfg.succs)
    cfg.Cfg.blocks;
  Buffer.add_string b "}\n";
  Buffer.contents b
