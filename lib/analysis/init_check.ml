open Sass
module IM = Map.Make (Int)

(* Guard encoding: predicate index * 2 + negation bit. The complement
   of a code flips the low bit. *)
let guard_code (g : Pred.guard) =
  (Pred.index g.Pred.pred * 2) + if g.Pred.negated then 1 else 0

module D = struct
  type t = {
    must : Regset.t;  (* definitely initialized GPRs *)
    may : Regset.t;  (* possibly initialized GPRs *)
    must_p : int;  (* bitmasks over P0..P6 *)
    may_p : int;
    gmap : int IM.t;  (* GPR -> guard code of its latest guarded def *)
    gmap_p : int IM.t;
  }

  let equal a b =
    Regset.equal a.must b.must && Regset.equal a.may b.may
    && a.must_p = b.must_p && a.may_p = b.may_p
    && IM.equal Int.equal a.gmap b.gmap
    && IM.equal Int.equal a.gmap_p b.gmap_p

  (* Meet: keep only what holds on both paths. Guard bindings that
     disagree are dropped, which at worst turns a suppressed warning
     back into a warning. *)
  let join a b =
    let merge_g =
      IM.merge (fun _ x y ->
          match (x, y) with
          | Some u, Some v when u = v -> Some u
          | _ -> None)
    in
    { must = Regset.inter a.must b.must;
      may = Regset.union a.may b.may;
      must_p = a.must_p land b.must_p;
      may_p = a.may_p lor b.may_p;
      gmap = merge_g a.gmap b.gmap;
      gmap_p = merge_g a.gmap_p b.gmap_p }

  let widen = join

  let transfer ~pc:_ (i : Instr.t) st =
    let guarded = not (Pred.is_always i.Instr.guard) in
    let gcode = guard_code i.Instr.guard in
    let def_reg st r =
      match r with
      | Reg.RZ -> st
      | Reg.R k ->
        if not guarded then
          { st with
            must = Regset.add k st.must;
            may = Regset.add k st.may;
            gmap = IM.remove k st.gmap }
        else
          (* A def under @P followed by one under @!P covers every
             lane: promote to definitely-initialized. *)
          let promoted =
            match IM.find_opt k st.gmap with
            | Some c -> c = gcode lxor 1
            | None -> false
          in
          { st with
            must = (if promoted then Regset.add k st.must else st.must);
            may = Regset.add k st.may;
            gmap = IM.add k gcode st.gmap }
    in
    let def_pred st p =
      match p with
      | Pred.PT -> st
      | Pred.P k ->
        let bit = 1 lsl k in
        if not guarded then
          { st with
            must_p = st.must_p lor bit;
            may_p = st.may_p lor bit;
            gmap_p = IM.remove k st.gmap_p }
        else
          let promoted =
            match IM.find_opt k st.gmap_p with
            | Some c -> c = gcode lxor 1
            | None -> false
          in
          { st with
            must_p = (if promoted then st.must_p lor bit else st.must_p);
            may_p = st.may_p lor bit;
            gmap_p = IM.add k gcode st.gmap_p }
    in
    let st = List.fold_left def_reg st (Instr.defs i) in
    List.fold_left def_pred st (Instr.pdefs i)
end

module Solver = Dataflow.Make (D)

let entry_state =
  { D.must = Regset.add 1 Regset.empty;  (* R1: ABI stack pointer *)
    may = Regset.add 1 Regset.empty;
    must_p = 0;
    may_p = 0;
    gmap = IM.empty;
    gmap_p = IM.empty }

(* Optimistic seed: must descends from full, may ascends from empty. *)
let top_state =
  { D.must = Regset.full;
    may = Regset.empty;
    must_p = 0x7f;
    may_p = 0;
    gmap = IM.empty;
    gmap_p = IM.empty }

let check ~kernel instrs (cfg : Cfg.t) =
  let res =
    Solver.solve ~direction:Dataflow.Forward ~boundary:entry_state
      ~init:top_state instrs cfg
  in
  let findings = ref [] in
  let report pc kind sev msg =
    findings := Finding.make ~kernel ~pc kind sev msg :: !findings
  in
  Array.iteri
    (fun pc (i : Instr.t) ->
       if Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(pc) then begin
         let st = res.Solver.before.(pc) in
         let use_code =
           if Pred.is_always i.Instr.guard then None
           else Some (guard_code i.Instr.guard)
         in
         List.iter
           (fun r ->
              match r with
              | Reg.RZ -> ()
              | Reg.R k ->
                if not (Regset.mem k st.D.may) then
                  report pc Finding.Uninit_read Finding.Error
                    (Printf.sprintf
                       "%s read by %s but never written on any path"
                       (Reg.to_string r) (Opcode.to_string i.Instr.op))
                else if not (Regset.mem k st.D.must) then begin
                  let suppressed =
                    match (use_code, IM.find_opt k st.D.gmap) with
                    | Some u, Some d -> u = d
                    | _ -> false
                  in
                  if not suppressed then
                    report pc Finding.Maybe_uninit_read Finding.Warning
                      (Printf.sprintf
                         "%s read by %s but only written on some paths \
                          or under a predicate"
                         (Reg.to_string r) (Opcode.to_string i.Instr.op))
                end)
           (List.sort_uniq Reg.compare (Instr.uses i));
         (* P2R deliberately reads the whole predicate file (the
            injector uses it to spill); checking it would flag every
            physical pred-file save. *)
         if i.Instr.op <> Opcode.P2R then
           List.iter
             (fun p ->
                match p with
                | Pred.PT -> ()
                | Pred.P k ->
                  let bit = 1 lsl k in
                  if st.D.may_p land bit = 0 then
                    report pc Finding.Uninit_read Finding.Error
                      (Printf.sprintf
                         "%s read by %s but never written on any path"
                         (Pred.to_string p) (Opcode.to_string i.Instr.op))
                  else if st.D.must_p land bit = 0 then begin
                    let suppressed =
                      match (use_code, IM.find_opt k st.D.gmap_p) with
                      | Some u, Some d -> u = d
                      | _ -> false
                    in
                    if not suppressed then
                      report pc Finding.Maybe_uninit_read Finding.Warning
                        (Printf.sprintf
                           "%s read by %s but only written on some paths \
                            or under a predicate"
                           (Pred.to_string p) (Opcode.to_string i.Instr.op))
                  end)
             (List.sort_uniq Pred.compare (Instr.puses i))
       end)
    instrs;
  List.rev !findings
