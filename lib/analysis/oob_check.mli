(** Static out-of-bounds checker.

    Bounds every memory access's byte range with the {!Absdom} address
    interval and compares it against the declared extent of its space:
    shared against the kernel's static [shared_bytes], local against
    the per-thread [frame_bytes] (local addresses are frame-relative,
    mirroring the runtime trap), global against the device heap
    watermark when the caller supplies one.

    A range provably outside the extent is an [Error] (the runtime
    would trap on every execution); a range that merely {e can} exceed
    it is a [Warning], reported only under a concrete launch shape —
    under the worst-case {!Affine.assumed_geom} nearly every
    tid-scaled address looks potentially out of range, so static
    verification only reports definite violations. Unbounded
    (data-dependent) addresses are never reported. *)

val check :
  kernel:string ->
  ?concrete:bool ->
  ?heap_bytes:int ->
  shared_bytes:int ->
  frame_bytes:int ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Absdom.t array ->
  Finding.t list
