(** Analysis-guided instrumentation cost model.

    SASSI's injector spills exactly the live caller-saved registers at
    each site ("the compiler knows exactly which registers to spill",
    paper Section 3.2), so per-site overhead is a pure function of the
    liveness analysis and the selection spec — computable without
    running anything. This module reproduces the injector's site
    enumeration and sequence-length arithmetic so that:

    - [analyze] predicts, per site, the injected sequence length and
      spill count a given spec set would incur on a kernel;
    - [of_sites] prices the concrete site table an actual
      instrumentation run produced;
    - [predict_extra_instrs] combines static per-site costs with
      measured per-site invocation counts ([Cupti.Telemetry]'s
      handler-overhead counters) to predict the total extra
      warp-instruction count — cross-checkable against the measured
      [warp_instrs] delta between instrumented and plain runs. *)

type site = {
  c_id : int;  (** site id ([s_id] for real sites, dense for static) *)
  c_pc : int;  (** PC in the uninstrumented kernel *)
  c_point : Sassi.Select.point;
  c_what : Sassi.Select.what list;
  c_live : int;  (** live GPRs at the site *)
  c_spills : int;  (** registers the injector would spill *)
  c_seq : int;  (** instructions in the injected call sequence *)
}

type t = {
  c_kernel : string;
  c_sites : site list;  (** in injection order *)
  c_static_instrs : int;  (** total injected instructions, [sum c_seq] *)
  c_frame_bytes : int;  (** extra stack frame the kernel gains *)
}

val analyze : specs:Sassi.Select.spec list -> Sass.Program.kernel -> t
(** Static prediction: enumerates the sites the injector would create
    for [specs] (every spec fires per matching instruction, in list
    order, [Before] sites first — mirroring [Core.Inject]). *)

val of_sites : Sass.Program.kernel -> Sassi.Select.site list -> t
(** Prices an actual site table against the {e uninstrumented} kernel
    the sites refer to ([s_old_pc] PCs). *)

val predict_extra_instrs : t -> counts:(int * int) list -> int
(** [predict_extra_instrs t ~counts] with [counts] as
    [(site id, invocations)]: predicted total extra warp instructions,
    [sum (c_seq * invocations)] over sites appearing in [counts]. *)

val to_json : t -> Trace.Json.t
