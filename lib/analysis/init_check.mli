(** Uninitialized-register-read checker.

    Forward dataflow tracking, per register and predicate, whether it
    is definitely initialized (must, intersection at joins) or possibly
    initialized (may, union). A read outside the may set is an
    [Error]; a read outside the must set is a [Warning] unless the
    read is guarded by the same predicate that guarded the sole
    definition (the compiler's standard conditional-def/conditional-use
    pattern). Complementary guarded definitions ([@P0] then [@!P0])
    promote to fully initialized. At kernel entry only [R1] (the ABI
    stack pointer) is defined; the simulator's zero-filled register
    file makes such reads deterministic, not correct. *)

val check :
  kernel:string -> Sass.Instr.t array -> Sass.Cfg.t -> Finding.t list
(** Findings for reachable code only, in PC order. *)
