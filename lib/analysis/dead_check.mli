(** Unreachable-code and dead-store checks.

    - [Unreachable_code]: one warning per block not reachable from the
      kernel entry (reported at the block's first PC).
    - [Dead_store]: an unguarded instruction whose only effect is
      writing GPRs that {!Sass.Liveness} proves dead afterwards.
      Memory, control, sync and predicate-writing instructions are
      exempt (they have effects beyond the register file). *)

val check :
  kernel:string ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Sass.Liveness.t ->
  Finding.t list
