(** Shared-memory race hints.

    Flags pairs of shared-memory accesses, at least one a store, that
    can execute with no [BAR] between them on some CFG path and whose
    address expressions do not obviously refer to each thread's own
    disjoint slot. Heuristic suppressions keep the common tiled-kernel
    idioms quiet:

    - syntactically identical address operands (the write-your-slot /
      read-your-slot pattern — same thread, same location);
    - same base register with distinct immediate offsets whose access
      ranges cannot overlap;
    - both addresses warp-uniform {e and} ... at least one address must
      be thread-variant for a cross-thread conflict to be plausible.

    These are hints, never errors: within a warp the SIMT lockstep
    order actually serializes the pair; across warps it is a real
    race. Atomics are exempt by definition. *)

val check :
  kernel:string ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Uniformity.t ->
  Finding.t list
