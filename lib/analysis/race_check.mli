(** Shared-memory race analysis: barrier-interval may-happen-in-parallel
    plus affine disjointness proofs.

    Two shared accesses by distinct threads of a block may happen in
    parallel iff their backward barrier-free regions intersect — some
    common program point reaches both with no [BAR] on the way (this
    covers both arms of a diamond, loop-carried pairs, and an access
    racing against itself in another thread). Each MHP pair with at
    least one store is then decided by
    {!Affine.cross_thread_overlap} on the {!Absdom} address forms:

    - [`Disjoint] on every pair: the site is {e proven safe} — e.g. the
      write-your-slot tile stores of sgemm, whose per-thread addresses
      provably never collide for distinct [tid]s.
    - [`Overlap]: a witness pair of distinct threads collides. With a
      concrete launch shape (>= 2 threads/block), unguarded accesses
      whose blocks dominate every exit, that is a {e proven race}.
    - otherwise the site is {e unknown} (data-dependent or unresolved
      addressing) and reported as the old-style hint.

    Read/read pairs are never reported: two loads cannot race. Pairs
    of atomics are exempt by definition; an atomic against a plain
    access is still decided by the address proof. *)

type classification =
  | Proven_safe
  | Proven_race
  | Unknown

val classification_name : classification -> string

type site = {
  s_pc : int;
  s_store : bool;
  s_class : classification;
  s_partner : int option;  (** PC of the access that decided the class *)
  s_note : string;
}

val sites :
  ?concrete:bool ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Absdom.t array ->
  site list
(** Classification of every reachable shared-memory access.
    [concrete] asserts the {!Absdom} states were computed from a real
    launch shape, enabling [Proven_race] (an overlap witness under the
    worst-case {!Affine.assumed_geom} need not exist for a smaller
    launch, so static verification never claims a proven race). *)

val check :
  kernel:string ->
  ?concrete:bool ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Absdom.t array ->
  Finding.t list
(** Findings per conflicting pair: proven races are [Error] under a
    concrete launch and [Warning] otherwise; unknowns are [Warning]
    hints. Proven-safe sites are silent. *)
