open Sass

type ctx = {
  c_geom : Affine.geom;
  c_param : int -> int option;
  c_concrete : bool;
}

let static_ctx =
  { c_geom = Affine.assumed_geom; c_param = (fun _ -> None);
    c_concrete = false }

let concrete_ctx ?(param = fun _ -> None) geom =
  { c_geom = geom; c_param = param; c_concrete = true }

(* A kernel that never reads a [tid.y]/[ctaid.y]-family special is
   written for 1D launches; analyzing it under the 2D worst case
   would make every thread of a y-column alias every address. *)
let static_for instrs =
  let uses_y =
    Array.exists
      (fun (i : Sass.Instr.t) ->
         match i.Sass.Instr.op with
         | Sass.Opcode.S2R
             ( Sass.Opcode.Sr_tid_y | Sass.Opcode.Sr_ntid_y
             | Sass.Opcode.Sr_ctaid_y | Sass.Opcode.Sr_nctaid_y ) ->
           true
         | _ -> false)
      instrs
  in
  if uses_y then static_ctx
  else
    { static_ctx with
      c_geom = { Affine.assumed_geom with Affine.g_block_y = 1;
                 Affine.g_grid_y = 1 } }

module IM = Map.Make (Int)

(* [Bot] is unreachable state (the join identity); a register absent
   from the map is unknown with per-thread variability — the sound
   default for uninitialized or clobbered registers. *)
type t =
  | Bot
  | St of st

and st = {
  s_ctx : ctx;
  s_regs : Affine.t IM.t;
}

let unknown_var = Affine.unknown ~var:true

let geom = function
  | Bot -> Affine.assumed_geom
  | St s -> s.s_ctx.c_geom

let reg t r =
  match t with
  | Bot -> unknown_var
  | St s ->
    (match r with
     | Reg.RZ -> Affine.const 0
     | Reg.R i ->
       (match IM.find_opt i s.s_regs with
        | Some a -> a
        | None -> unknown_var))

(* Immediates are stored in [0, 2^32); address arithmetic uses
   negative offsets encoded as large values, so read them signed. *)
let simm_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let src t s =
  match t with
  | Bot -> unknown_var
  | St st ->
    (match s with
     | Instr.SReg r -> reg t r
     | Instr.SImm v -> Affine.const (simm_signed v)
     | Instr.SParam off ->
       (match st.s_ctx.c_param off with
        | Some v -> Affine.const (simm_signed (v land 0xffffffff))
        | None -> Affine.param off)
     | Instr.SPred _ -> unknown_var)

let address t (m : Instr.mem) = Affine.add (src t m.Instr.m_base) (src t m.Instr.m_off)

(* A value that differs between threads of one block: explicit tid
   dependence or a thread-variant residue. (ctaid/param terms are
   uniform within a block and stay out of this.) *)
let varish (a : Affine.t) = a.Affine.a_var || Affine.has_tid a

module D = struct
  type nonrec t = t

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | St a, St b -> IM.equal Affine.equal a.s_regs b.s_regs
    | Bot, St _ | St _, Bot -> false

  let merge affop a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | St sa, St sb ->
      let geom = sa.s_ctx.c_geom in
      St
        { sa with
          s_regs =
            IM.merge
              (fun _ x y ->
                 match (x, y) with
                 | Some x, Some y -> Some (affop ~geom x y)
                 | _ -> None)
              sa.s_regs sb.s_regs }

  let join a b = merge Affine.join a b

  let widen a b = merge Affine.widen a b

  let transfer ~pc:_ (i : Instr.t) t =
    match t with
    | Bot -> Bot
    | St st ->
      let geom = st.s_ctx.c_geom in
      let ev s = src t s in
      let var_of srcs =
        List.exists (fun s -> varish (ev s)) srcs
      in
      let unk srcs = Affine.unknown ~var:(var_of srcs) in
      let open Opcode in
      let results =
        match (i.Instr.op, i.Instr.srcs) with
        | MOV, [ a ] -> [ ev a ]
        | IADD, [ a; b ] -> [ Affine.add (ev a) (ev b) ]
        | ISUB, [ a; b ] -> [ Affine.sub (ev a) (ev b) ]
        | IMUL, [ a; b ] -> [ Affine.mul ~geom (ev a) (ev b) ]
        | IMAD, [ a; b; c ] ->
          [ Affine.add (Affine.mul ~geom (ev a) (ev b)) (ev c) ]
        | SHL, [ a; b ] ->
          (match Affine.is_const (ev b) with
           | Some k when k >= 0 && k < 31 ->
             [ Affine.mul_const (1 lsl k) (ev a) ]
           | _ -> [ unk [ a; b ] ])
        | SHR _, [ a; b ] ->
          (* Exact as division only when the value is provably
             non-negative (sign/zero extension agree). *)
          let va = ev a in
          (match Affine.is_const (ev b) with
           | Some k
             when k >= 0 && k < 31
                  && (Affine.to_interval ~geom va).Interval.lo >= 0 ->
             [ Affine.div_const ~geom (1 lsl k) va ]
           | _ -> [ unk [ a; b ] ])
        | LOP L_and, [ a; b ] ->
          (* Masking with 2^k - 1 bounds the result; other logic
             degrades. *)
          let masked x m =
            if m >= 0 && m land (m + 1) = 0 then
              Some
                (Affine.of_interval ~var:(varish x) (Interval.make 0 m))
            else None
          in
          let va = ev a and vb = ev b in
          (match (Affine.is_const va, Affine.is_const vb) with
           | _, Some m when masked va m <> None -> [ Option.get (masked va m) ]
           | Some m, _ when masked vb m <> None -> [ Option.get (masked vb m) ]
           | _ -> [ unk [ a; b ] ])
        | IMNMX _, [ a; b ] ->
          (* The result is one of the operands. *)
          [ Affine.join ~geom (ev a) (ev b) ]
        | SEL, ((a :: b :: _) as srcs) ->
          (* The selecting predicate picks per-thread which operand
             is read, so its variance taints the result even when
             both values are uniform; predicates are untracked here
             (SPred evaluates to unknown), so a predicated SEL is
             conservatively variant unless the operands agree. *)
          let va = ev a and vb = ev b in
          let j = Affine.join ~geom va vb in
          [ (if Affine.equal va vb || not (var_of srcs) then j
             else { j with Affine.a_var = true }) ]
        | IMOD Unsigned, [ a; b ] ->
          let va = ev a in
          (match Affine.is_const (ev b) with
           | Some k
             when k > 0 && (Affine.to_interval ~geom va).Interval.lo >= 0 ->
             [ Affine.of_interval ~var:(varish va) (Interval.make 0 (k - 1)) ]
           | _ -> [ unk [ a; b ] ])
        | IDIV _, [ a; b ] ->
          let va = ev a in
          (match Affine.is_const (ev b) with
           | Some k
             when k > 0 && (Affine.to_interval ~geom va).Interval.lo >= 0 ->
             [ Affine.div_const ~geom k va ]
           | _ -> [ unk [ a; b ] ])
        | S2R sp, _ ->
          [ (match sp with
             | Sr_tid_x -> Affine.tid_x
             | Sr_tid_y -> Affine.tid_y
             | Sr_ctaid_x -> Affine.ctaid_x
             | Sr_ctaid_y -> Affine.ctaid_y
             (* Launch dimensions are exact constants only under a
                concrete launch; statically they are just bounded
                uniform values. *)
             | Sr_ntid_x ->
               if st.s_ctx.c_concrete then Affine.const geom.Affine.g_block_x
               else Affine.of_interval (Interval.make 1 geom.Affine.g_block_x)
             | Sr_ntid_y ->
               if st.s_ctx.c_concrete then Affine.const geom.Affine.g_block_y
               else Affine.of_interval (Interval.make 1 geom.Affine.g_block_y)
             | Sr_nctaid_x ->
               if st.s_ctx.c_concrete then Affine.const geom.Affine.g_grid_x
               else Affine.of_interval (Interval.make 1 geom.Affine.g_grid_x)
             | Sr_nctaid_y ->
               if st.s_ctx.c_concrete then Affine.const geom.Affine.g_grid_y
               else Affine.of_interval (Interval.make 1 geom.Affine.g_grid_y)
             | Sr_laneid ->
               Affine.of_interval ~var:true (Interval.make 0 31)
             | Sr_warpid | Sr_smid | Sr_clock -> unknown_var) ]
        | (LD _ | TLD _ | ATOM _), _ ->
          (* Loaded data (and atomic return values) is opaque and
             potentially thread-variant. *)
          List.map (fun _ -> unknown_var) i.Instr.dsts
        | (SHFL _ | VOTE _ | P2R), _ ->
          List.map (fun _ -> unknown_var) i.Instr.dsts
        | _, srcs -> List.map (fun _ -> unk srcs) i.Instr.dsts
      in
      let guarded = not (Pred.is_always i.Instr.guard) in
      let bind regs dst value =
        match dst with
        | Reg.RZ -> regs
        | Reg.R idx ->
          let value =
            if guarded then
              (* May-write: the old value survives on the other side
                 of the guard. *)
              Affine.join ~geom (reg t dst) value
            else value
          in
          IM.add idx value regs
      in
      let rec apply regs dsts values =
        match (dsts, values) with
        | [], _ -> regs
        | d :: ds, v :: vs -> apply (bind regs d v) ds vs
        | d :: ds, [] -> apply (bind regs d unknown_var) ds []
      in
      St { st with s_regs = apply st.s_regs i.Instr.dsts results }
end

module Solver = Dataflow.Make (D)

let analyze ctx instrs cfg =
  let boundary = St { s_ctx = ctx; s_regs = IM.empty } in
  let r =
    Solver.solve ~direction:Dataflow.Forward ~boundary ~init:Bot instrs cfg
  in
  r.Solver.before

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "<unreachable>"
  | St s ->
    Format.fprintf ppf "@[<v>";
    IM.iter
      (fun i a -> Format.fprintf ppf "R%d = %a@," i Affine.pp a)
      s.s_regs;
    Format.fprintf ppf "@]"
