(** Static shared-memory bank-conflict and global-coalescing
    predictors.

    For every shared/global access site whose {!Absdom} address is a
    resolved affine function of the thread coordinates, enumerate the
    warps of the launch exactly as the simulator forms them (lane [l]
    of warp [w] is linear thread [w*32 + l]; [tx = linear mod bx],
    [ty = linear / bx]) and replay the machine's own counting rules:
    shared accesses hit 32 four-byte-wide banks and cost the maximum
    number of {e distinct words} mapped to one bank; global accesses
    cost the number of distinct [line_bytes] lines covered by
    [[addr, addr+width)] over the active lanes.

    A site is {e exact} ([p_exact]) when the prediction is provably
    the count the simulator will charge for every dynamic execution of
    the site: unguarded, thread-invariant residue, and a residue
    stride that shifts the whole warp by bank-size (shared) or
    line-size (global) multiples — loop-carried addresses like
    [tile + 64*t] stay exact because a uniform multiple-of-64 shift
    permutes banks and translates lines without changing counts.
    Inexact sites still carry the interval observed over the
    enumerated warps. *)

type prediction = {
  p_pc : int;
  p_space : Sass.Opcode.space;  (** [Shared] or [Global] *)
  p_store : bool;
  p_bytes : int;
  p_min : int;
  p_max : int;
      (** per-warp-access cost over all enumerated warps: bank-conflict
          degree (shared) or line transactions (global) *)
  p_exact : bool;
  p_note : string;  (** why the site is not exact, or [""] *)
}

val predict :
  geom:Affine.geom ->
  line_bytes:int ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Absdom.t array ->
  prediction list
(** One entry per reachable shared/global [LD]/[ST]/[ATOM]/[RED] site,
    in PC order. *)
