(** Thread-variance (uniformity) analysis.

    Forward may-analysis computing, per program point, which registers
    and predicates can hold values that differ across the threads of a
    warp. Variance is seeded by the inherently per-thread sources
    ([S2R] of tid/laneid/warpid/clock, atomic return values, local
    loads) and propagates through data dependencies; warp-wide [VOTE]
    results are uniform by construction. A conditional branch whose
    guard predicate is variant is a {e divergent branch} — the
    condition the barrier checker cares about. *)

type t

val analyze : Sass.Instr.t array -> Sass.Cfg.t -> t

val variant_gpr_before : t -> int -> Sass.Reg.t -> bool
(** May the register differ across lanes just before the given PC? *)

val variant_pred_before : t -> int -> Sass.Pred.t -> bool

val variant_src_before : t -> int -> Sass.Instr.src -> bool
(** Variance of one operand; immediates and parameters are uniform. *)

val divergent_branch : t -> int -> bool
(** True iff the instruction at the PC is a conditional branch whose
    guard is variant (may split the warp). *)

val passes : t -> int
(** Fixpoint sweeps used — exposed for the bench experiment. *)
