(** Kernel verifier: runs every checker over a compiled kernel.

    Used three ways (the three wiring layers of the subsystem):
    [sassi_run lint] reports findings per workload kernel,
    [Kernel.Compile] calls {!gate} after register allocation so the
    DSL compiler sanitizes its own output, and tests feed it
    deliberately broken kernels. *)

val verify : Sass.Program.kernel -> Finding.t list
(** All findings, sorted errors-first then by PC. *)

val summary : Finding.t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val gate : Sass.Program.kernel -> (unit, string) result
(** Fails on definite-bug findings ([Error] severity: uninitialized
    reads, divergent barriers). Warnings never fail the gate — the
    compiler must stay permissive about input-dependent hints. *)

val findings_json : Sass.Program.kernel -> Trace.Json.t
