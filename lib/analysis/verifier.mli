(** Kernel verifier: runs every checker over a compiled kernel.

    Used three ways (the three wiring layers of the subsystem):
    [sassi_run lint] reports findings per workload kernel,
    [Kernel.Compile] calls {!gate} after register allocation so the
    DSL compiler sanitizes its own output, and tests feed it
    deliberately broken kernels. *)

val verify : Sass.Program.kernel -> Finding.t list
(** All findings under the static context ({!Absdom.static_ctx}:
    worst-case geometry, symbolic parameters), sorted errors-first
    then by PC. *)

val verify_ctx :
  ?ctx:Absdom.ctx ->
  ?concrete:bool ->
  ?heap_bytes:int ->
  Sass.Program.kernel ->
  Finding.t list
(** {!verify} under a caller-supplied abstract context. [concrete]
    asserts the context reflects a real launch (geometry and resolved
    parameters): race overlaps become proven races ([Error]) and
    may-out-of-bounds warnings are enabled. [heap_bytes] bounds global
    accesses against the device allocation watermark. *)

val race_sites :
  ?ctx:Absdom.ctx ->
  ?concrete:bool ->
  Sass.Program.kernel ->
  Race_check.site list
(** Per-access race classification (see {!Race_check.sites}), the
    surface the [lint --prove-races] registry gate consumes. *)

val summary : Finding.t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val gate : Sass.Program.kernel -> (unit, string) result
(** Fails on definite-bug findings ([Error] severity: uninitialized
    reads, divergent barriers, provable out-of-bounds). Warnings never
    fail the gate — the compiler must stay permissive about
    input-dependent hints. *)

val findings_json : Sass.Program.kernel -> Trace.Json.t
