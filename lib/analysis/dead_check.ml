open Sass

let check ~kernel instrs (cfg : Cfg.t) live =
  let findings = ref [] in
  Array.iter
    (fun (blk : Cfg.block) ->
       if not (Cfg.reachable_block cfg blk.Cfg.id) then
         findings :=
           Finding.make ~kernel ~pc:blk.Cfg.first Finding.Unreachable_code
             Finding.Warning
             (Printf.sprintf
                "block B%d [%d..%d] is unreachable from the kernel entry"
                blk.Cfg.id blk.Cfg.first blk.Cfg.last)
           :: !findings)
    cfg.Cfg.blocks;
  Array.iteri
    (fun pc (i : Instr.t) ->
       if Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(pc) then begin
         let defs = Instr.defs i in
         if
           Pred.is_always i.Instr.guard
           && defs <> []
           && Instr.pdefs i = []
           && (not (Opcode.is_mem i.Instr.op))
           && (not (Opcode.is_control i.Instr.op))
           && not (Opcode.is_sync i.Instr.op)
         then begin
           let after = Liveness.live_gprs_after live pc in
           if List.for_all (fun r -> not (List.mem r after)) defs then
             findings :=
               Finding.make ~kernel ~pc Finding.Dead_store Finding.Warning
                 (Printf.sprintf "%s result %s is never read"
                    (Opcode.to_string i.Instr.op)
                    (String.concat ","
                       (List.map Reg.to_string defs)))
               :: !findings
         end
       end)
    instrs;
  List.rev !findings
