open Sass

type access = {
  a_pc : int;
  a_store : bool;
  a_base : Instr.src;
  a_off : Instr.src;
  a_bytes : int;
}

let access_of pc (i : Instr.t) =
  match i.Instr.op with
  | Opcode.LD (Opcode.Shared, w) -> (
      match i.Instr.srcs with
      | base :: off :: _ ->
        Some
          { a_pc = pc; a_store = false; a_base = base; a_off = off;
            a_bytes = Opcode.bytes_of_width w }
      | _ -> None)
  | Opcode.ST (Opcode.Shared, w) -> (
      match i.Instr.srcs with
      | base :: off :: _ ->
        Some
          { a_pc = pc; a_store = true; a_base = base; a_off = off;
            a_bytes = Opcode.bytes_of_width w }
      | _ -> None)
  | _ -> None

let check ~kernel instrs (cfg : Cfg.t) uni =
  let n = Array.length instrs in
  let nb = Array.length cfg.Cfg.blocks in
  let acc = Array.init n (fun pc -> access_of pc instrs.(pc)) in
  let is_bar = Array.map (fun (i : Instr.t) -> i.Instr.op = Opcode.BAR) instrs in
  let seen = Hashtbl.create 16 in
  let findings = ref [] in
  let variant a =
    Uniformity.variant_src_before uni a.a_pc a.a_base
    || Uniformity.variant_src_before uni a.a_pc a.a_off
  in
  (* Address = sum of the two operands; split it into its constant
     part and its (sorted) non-immediate operands so that [x + 0x0]
     vs [x + 0x400] compares as same-symbol, different-constant
     regardless of which operand slot holds the immediate. *)
  let split a =
    List.fold_left
      (fun (imm, others) s ->
         match s with
         | Instr.SImm v -> (imm + v, others)
         | s -> (imm, s :: others))
      (0, [])
      [ a.a_base; a.a_off ]
    |> fun (imm, others) -> (imm, List.sort Stdlib.compare others)
  in
  let consider a1 a2 =
    if (a1.a_store || a2.a_store) && not (Hashtbl.mem seen (a1.a_pc, a2.a_pc))
    then begin
      let imm1, sym1 = split a1 and imm2, sym2 = split a2 in
      let same_symbols = sym1 = sym2 in
      (* Same symbolic part, same constant: each thread hits its own
         slot (write-your-slot / read-your-slot). *)
      let identical = same_symbols && imm1 = imm2 in
      (* Same symbolic part, constants far enough apart: disjoint
         regions (e.g. the A-tile at 0x0 and B-tile at 0x400). *)
      let disjoint =
        same_symbols
        && (imm1 + a1.a_bytes <= imm2 || imm2 + a2.a_bytes <= imm1)
      in
      if (not identical) && (not disjoint) && (variant a1 || variant a2)
      then begin
        Hashtbl.add seen (a1.a_pc, a2.a_pc) ();
        findings :=
          Finding.make ~kernel ~pc:a2.a_pc Finding.Shared_race Finding.Warning
            (Printf.sprintf
               "shared %s may conflict with the shared %s at pc %d \
                with no BAR between them"
               (if a2.a_store then "store" else "load")
               (if a1.a_store then "store" else "load")
               a1.a_pc)
          :: !findings
      end
    end
  in
  (* From each access, scan every barrier-free path forward and pair
     it with the shared accesses encountered. *)
  Array.iter
    (fun a1_opt ->
       match a1_opt with
       | None -> ()
       | Some a1 ->
         let b1 = cfg.Cfg.block_of_pc.(a1.a_pc) in
         if Cfg.reachable_block cfg b1 then begin
           let blk = cfg.Cfg.blocks.(b1) in
           let stopped = ref false in
           let pc = ref (a1.a_pc + 1) in
           while (not !stopped) && !pc <= blk.Cfg.last do
             if is_bar.(!pc) then stopped := true
             else
               (match acc.(!pc) with
                | Some a2 -> consider a1 a2
                | None -> ());
             incr pc
           done;
           if not !stopped then begin
             let visited = Array.make nb false in
             let rec dfs b =
               if not visited.(b) then begin
                 visited.(b) <- true;
                 let blk = cfg.Cfg.blocks.(b) in
                 let stopped = ref false in
                 let pc = ref blk.Cfg.first in
                 while (not !stopped) && !pc <= blk.Cfg.last do
                   if is_bar.(!pc) then stopped := true
                   else
                     (match acc.(!pc) with
                      | Some a2 -> consider a1 a2
                      | None -> ());
                   incr pc
                 done;
                 if not !stopped then List.iter dfs blk.Cfg.succs
               end
             in
             List.iter dfs blk.Cfg.succs
           end
         end)
    acc;
  List.rev !findings
