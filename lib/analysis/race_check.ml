open Sass

type classification =
  | Proven_safe
  | Proven_race
  | Unknown

let classification_name = function
  | Proven_safe -> "proven-safe"
  | Proven_race -> "proven-race"
  | Unknown -> "unknown"

type site = {
  s_pc : int;
  s_store : bool;
  s_class : classification;
  s_partner : int option;
  s_note : string;
}

type acc = {
  a_pc : int;
  a_mem : Instr.mem;
  a_guarded : bool;
}

let shared_accesses instrs (cfg : Cfg.t) =
  let out = ref [] in
  Array.iteri
    (fun pc (i : Instr.t) ->
       match Instr.mem_access i with
       | Some m
         when m.Instr.m_space = Opcode.Shared
              && Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(pc) ->
         out :=
           { a_pc = pc; a_mem = m;
             a_guarded = not (Pred.is_always i.Instr.guard) }
           :: !out
       | _ -> ())
    instrs;
  List.rev !out

(* Backward barrier-free region of a PC: every PC from which the
   access is reachable without crossing a [BAR]. Two accesses may
   happen in parallel (distinct threads of one block) iff their
   regions share a point — a common program point both threads can
   pass after their last common barrier. This covers both arms of a
   diamond, loop-carried pairs, and an access racing with itself. *)
let region instrs (cfg : Cfg.t) pc =
  let n = Array.length instrs in
  let nb = Array.length cfg.Cfg.blocks in
  let mark = Array.make n false in
  let visited = Array.make nb false in
  let is_bar p = instrs.(p).Instr.op = Opcode.BAR in
  (* Mark [hi] down to the block's first PC, stopping at a BAR;
     returns true if the walk reached the block start. *)
  let walk_down b hi =
    let blk = cfg.Cfg.blocks.(b) in
    let p = ref hi and open_ = ref true in
    while !open_ && !p >= blk.Cfg.first do
      if is_bar !p then open_ := false
      else begin
        mark.(!p) <- true;
        decr p
      end
    done;
    !open_
  in
  let rec visit b =
    if not visited.(b) then begin
      visited.(b) <- true;
      if walk_down b cfg.Cfg.blocks.(b).Cfg.last then
        List.iter visit cfg.Cfg.blocks.(b).Cfg.preds
    end
  in
  let b0 = cfg.Cfg.block_of_pc.(pc) in
  mark.(pc) <- true;
  if pc > cfg.Cfg.blocks.(b0).Cfg.first then begin
    if walk_down b0 (pc - 1) then
      List.iter visit cfg.Cfg.blocks.(b0).Cfg.preds
  end
  else List.iter visit cfg.Cfg.blocks.(b0).Cfg.preds;
  mark

let regions_intersect r1 r2 =
  let n = Array.length r1 in
  let rec go i = i < n && ((r1.(i) && r2.(i)) || go (i + 1)) in
  go 0

let bytes_of (m : Instr.mem) = Opcode.bytes_of_width m.Instr.m_width

(* An [`Overlap] witness only certifies a race when both accesses
   provably execute for at least two distinct threads: unguarded, in
   blocks that dominate every exit (no divergent path around them),
   and a launch shape with >= 2 threads per block. *)
let certainly_executed (cfg : Cfg.t) dom a =
  (not a.a_guarded)
  &&
  let b = cfg.Cfg.block_of_pc.(a.a_pc) in
  List.for_all (fun e -> Domtree.dominates dom b e) (Cfg.exit_blocks cfg)

let sites ?(concrete = false) instrs (cfg : Cfg.t) (states : Absdom.t array) =
  let accs = shared_accesses instrs cfg in
  if accs = [] then []
  else begin
    let dom = Domtree.dominators cfg in
    let geom =
      match accs with
      | a :: _ -> Absdom.geom states.(a.a_pc)
      | [] -> Affine.assumed_geom
    in
    let threads = geom.Affine.g_block_x * geom.Affine.g_block_y in
    let regions =
      List.map (fun a -> (a.a_pc, region instrs cfg a.a_pc)) accs
    in
    let region_of pc = List.assoc pc regions in
    let addr a = Absdom.address states.(a.a_pc) a.a_mem in
    let verdict_of a1 a2 =
      (* Atomics never race with each other; an atomic against a
         plain access is still an unordered pair. *)
      if a1.a_mem.Instr.m_is_atomic && a2.a_mem.Instr.m_is_atomic then
        `Disjoint
      else
        Affine.cross_thread_overlap ~geom (addr a1) ~bytes1:(bytes_of a1.a_mem)
          (addr a2) ~bytes2:(bytes_of a2.a_mem)
    in
    let mhp a1 a2 =
      a1.a_pc = a2.a_pc || regions_intersect (region_of a1.a_pc) (region_of a2.a_pc)
    in
    List.map
      (fun a ->
         let cls = ref Proven_safe and partner = ref None and note = ref "" in
         let consider b =
           if (a.a_mem.Instr.m_is_store || b.a_mem.Instr.m_is_store)
              && mhp a b
           then
             match verdict_of a b with
             | `Disjoint -> ()
             | `Overlap ->
               let proven =
                 concrete && threads >= 2
                 && certainly_executed cfg dom a
                 && certainly_executed cfg dom b
               in
               if proven then begin
                 cls := Proven_race;
                 partner := Some b.a_pc;
                 note := "overlapping addresses for distinct threads"
               end
               else if !cls <> Proven_race then begin
                 cls := Unknown;
                 partner := Some b.a_pc;
                 note := "addresses can overlap across threads"
               end
             | `May ->
               if !cls <> Proven_race then begin
                 cls := Unknown;
                 partner := Some b.a_pc;
                 note := "address overlap not provably disjoint"
               end
         in
         List.iter (fun b -> consider b) accs;
         { s_pc = a.a_pc;
           s_store = a.a_mem.Instr.m_is_store;
           s_class = !cls;
           s_partner = !partner;
           s_note = !note })
      accs
  end

let check ~kernel ?(concrete = false) instrs cfg states =
  let sites = sites ~concrete instrs cfg states in
  let seen = Hashtbl.create 16 in
  (* Report once per pair, at the later access (matching the old
     forward-scan convention: the second access is where the missing
     BAR would go). *)
  List.filter_map
    (fun s ->
       let partner = Option.value s.s_partner ~default:s.s_pc in
       let lo = min s.s_pc partner and hi = max s.s_pc partner in
       match s.s_class with
       | Proven_safe -> None
       | _ when Hashtbl.mem seen (lo, hi) -> None
       | Proven_race ->
         Hashtbl.add seen (lo, hi) ();
         Some
           (Finding.make ~kernel ~pc:hi Finding.Shared_race
              (if concrete then Finding.Error else Finding.Warning)
              (Printf.sprintf
                 "provable shared-memory race with the access at pc %d: %s \
                  and no BAR orders them"
                 lo s.s_note))
       | Unknown ->
         Hashtbl.add seen (lo, hi) ();
         Some
           (Finding.make ~kernel ~pc:hi Finding.Shared_race
              Finding.Warning
              (Printf.sprintf
                 "shared %s may conflict with the shared access at pc %d \
                  with no BAR between them (%s)"
                 (if s.s_store then "store" else "load")
                 lo s.s_note)))
    sites
