(** Barrier-divergence deadlock checker.

    A [BAR] (block-wide barrier) executed while the warp is split is
    undefined behaviour on real hardware and a deadlock in the PDOM
    model: lanes parked on the divergence stack never arrive. For each
    divergent conditional branch (variant guard, per {!Uniformity})
    this checker walks the divergent region — blocks reachable from
    the branch's successors before its immediate post-dominator — and
    classifies every barrier found there:

    - barrier block {e dominates} the branch: the barrier sits in a
      loop whose trip count may differ across lanes — [Warning]
      ([Loop_barrier]);
    - otherwise the barrier lies on one arm of the divergence —
      [Error] ([Divergent_barrier]). *)

val check :
  kernel:string ->
  Sass.Instr.t array ->
  Sass.Cfg.t ->
  Uniformity.t ->
  Finding.t list
