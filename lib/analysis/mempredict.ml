open Sass

type prediction = {
  p_pc : int;
  p_space : Opcode.space;
  p_store : bool;
  p_bytes : int;
  p_min : int;
  p_max : int;
  p_exact : bool;
  p_note : string;
}

let banks = 32
let bank_bytes = 4
let warp_size = 32

(* Mirror of [Gpu.Memsys.shared_access]: distinct words per bank,
   conflict degree = max over banks (>= 1). *)
let shared_degree addrs =
  let per_bank = Hashtbl.create banks in
  List.iter
    (fun addr ->
       let word = addr / bank_bytes in
       let bank = word mod banks in
       let words =
         match Hashtbl.find_opt per_bank bank with None -> [] | Some ws -> ws
       in
       if not (List.mem word words) then
         Hashtbl.replace per_bank bank (word :: words))
    addrs;
  Hashtbl.fold (fun _ ws acc -> max acc (List.length ws)) per_bank 1

(* Mirror of [Gpu.Memsys.coalesce]: distinct lines covered by
   [[addr, addr+width)]. *)
let global_lines ~line_bytes pairs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (addr, w) ->
       let first = addr / line_bytes and last = (addr + w - 1) / line_bytes in
       for l = first to last do
         Hashtbl.replace tbl l ()
       done)
    pairs;
  Hashtbl.length tbl

(* Warps enumerated per site before giving up on full-grid
   enumeration and requiring block invariance instead. *)
let warp_budget = 1 lsl 16

let predict ~geom ~line_bytes instrs (cfg : Cfg.t) (states : Absdom.t array) =
  let bx = max 1 geom.Affine.g_block_x and by = max 1 geom.Affine.g_block_y in
  let gx = max 1 geom.Affine.g_grid_x and gy = max 1 geom.Affine.g_grid_y in
  let threads = bx * by in
  let warps = (threads + warp_size - 1) / warp_size in
  let out = ref [] in
  Array.iteri
    (fun pc (i : Instr.t) ->
       match Instr.mem_access i with
       | Some m
         when (m.Instr.m_space = Opcode.Shared
               || m.Instr.m_space = Opcode.Global)
              && Cfg.reachable_block cfg cfg.Cfg.block_of_pc.(pc) ->
         let a = Absdom.address states.(pc) m in
         let bytes = Opcode.bytes_of_width m.Instr.m_width in
         let align =
           if m.Instr.m_space = Opcode.Shared then bank_bytes else line_bytes
         in
         let note = ref "" in
         let fail msg = if !note = "" then note := msg in
         if a.Affine.a_var then fail "thread-variant (data-dependent) address";
         if a.Affine.a_par <> [] then fail "unresolved kernel parameter";
         let res_ok =
           Interval.is_point a.Affine.a_res
           || (a.Affine.a_mod <> 0 && a.Affine.a_mod mod align = 0
               && a.Affine.a_res.Interval.lo <> min_int)
         in
         if not res_ok then
           fail "loop-carried stride not bank/line aligned";
         if not (Pred.is_always i.Instr.guard) then
           fail "guarded access (partial warp)";
         (* Every block, or one representative block if the block
            coefficients only shift by count-preserving multiples. *)
         let block_invariant =
           a.Affine.a_cx mod align = 0 && a.Affine.a_cy mod align = 0
         in
         let ncx, ncy =
           if gx * gy * warps <= warp_budget then (gx, gy)
           else if block_invariant then (1, 1)
           else begin
             fail "grid too large to enumerate, block-variant pattern";
             (1, 1)
           end
         in
         let res0 =
           if Interval.is_point a.Affine.a_res
              || a.Affine.a_res.Interval.lo <> min_int
           then a.Affine.a_res.Interval.lo
           else 0
         in
         let lo = ref max_int and hi = ref 0 in
         for cx = 0 to ncx - 1 do
           for cy = 0 to ncy - 1 do
             for w = 0 to warps - 1 do
               let addrs = ref [] in
               for l = warp_size - 1 downto 0 do
                 let linear = (w * warp_size) + l in
                 if linear < threads then begin
                   let tx = linear mod bx and ty = linear / bx in
                   let addr =
                     a.Affine.a_base + (a.Affine.a_tx * tx)
                     + (a.Affine.a_ty * ty) + (a.Affine.a_cx * cx)
                     + (a.Affine.a_cy * cy) + res0
                   in
                   addrs := addr :: !addrs
                 end
               done;
               let cost =
                 if m.Instr.m_space = Opcode.Shared then shared_degree !addrs
                 else
                   global_lines ~line_bytes
                     (List.map (fun a -> (a, bytes)) !addrs)
               in
               if cost < !lo then lo := cost;
               if cost > !hi then hi := cost
             done
           done
         done;
         let lo = if !lo = max_int then 0 else !lo in
         out :=
           { p_pc = pc; p_space = m.Instr.m_space;
             p_store = m.Instr.m_is_store; p_bytes = bytes; p_min = lo;
             p_max = !hi; p_exact = !note = ""; p_note = !note }
           :: !out
       | _ -> ())
    instrs;
  List.rev !out
