open Sass

module D = struct
  type t = {
    regs : Regset.t;  (* may-variant GPR indices *)
    preds : int;  (* may-variant predicate bitmask, bits 0..6 *)
  }

  let equal a b = Regset.equal a.regs b.regs && a.preds = b.preds

  let join a b =
    { regs = Regset.union a.regs b.regs; preds = a.preds lor b.preds }

  let widen = join

  let pred_variant st = function
    | Pred.PT -> false
    | Pred.P i -> st.preds land (1 lsl i) <> 0

  let reg_variant st = function
    | Reg.RZ -> false
    | Reg.R i -> Regset.mem i st.regs

  let src_variant st = function
    | Instr.SReg r -> reg_variant st r
    | Instr.SImm _ | Instr.SParam _ -> false
    | Instr.SPred p -> pred_variant st p

  (* Values that differ across lanes no matter what they read. *)
  let inherently_variant : Opcode.t -> bool = function
    | Opcode.S2R
        ( Opcode.Sr_tid_x | Opcode.Sr_tid_y | Opcode.Sr_laneid
        | Opcode.Sr_warpid | Opcode.Sr_clock ) ->
      true
    | Opcode.ATOM _ -> true  (* returned old value is per-thread *)
    | Opcode.LD (Opcode.Local, _) -> true  (* local memory is per-thread *)
    | _ -> false

  let transfer ~pc:_ (i : Instr.t) st =
    let guarded = not (Pred.is_always i.Instr.guard) in
    let guard_v = guarded && pred_variant st i.Instr.guard.Pred.pred in
    let srcs_v = List.exists (src_variant st) i.Instr.srcs in
    let v =
      match i.Instr.op with
      (* Vote results are identical across the warp by construction;
         only a variant guard (inactive lanes keep their old value)
         can make the destination variant. *)
      | Opcode.VOTE _ -> guard_v
      | Opcode.P2R -> st.preds <> 0 || guard_v
      | op -> inherently_variant op || srcs_v || guard_v
    in
    (* A def under a guard is a may-write: lanes masked off keep the
       old value, so guarded defs add variance but never clear it. *)
    let set_reg regs r =
      match r with
      | Reg.RZ -> regs
      | Reg.R k ->
        if v then Regset.add k regs
        else if guarded then regs
        else Regset.remove k regs
    in
    let regs = List.fold_left set_reg st.regs (Instr.defs i) in
    let set_pred preds p =
      match p with
      | Pred.PT -> preds
      | Pred.P k ->
        if v then preds lor (1 lsl k)
        else if guarded then preds
        else preds land lnot (1 lsl k) land 0x7f
    in
    let preds = List.fold_left set_pred st.preds (Instr.pdefs i) in
    { regs; preds }
end

module Solver = Dataflow.Make (D)

type t = {
  res : Solver.result;
  instrs : Instr.t array;
}

let analyze instrs cfg =
  let bottom = { D.regs = Regset.empty; preds = 0 } in
  let res =
    Solver.solve ~direction:Dataflow.Forward ~boundary:bottom ~init:bottom
      instrs cfg
  in
  { res; instrs }

let variant_gpr_before t pc r = D.reg_variant t.res.Solver.before.(pc) r
let variant_pred_before t pc p = D.pred_variant t.res.Solver.before.(pc) p
let variant_src_before t pc s = D.src_variant t.res.Solver.before.(pc) s

let divergent_branch t pc =
  let i = t.instrs.(pc) in
  Instr.is_cond_branch i && variant_pred_before t pc i.Instr.guard.Pred.pred

let passes t = t.res.Solver.passes
