open Sass

type direction =
  | Forward
  | Backward

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val transfer : pc:int -> Instr.t -> t -> t
end

module Make (D : DOMAIN) = struct
  type result = {
    before : D.t array;
    after : D.t array;
    passes : int;
  }

  (* Reverse-postorder over the forward edges from the entry block,
     with each unreachable component's local RPO appended, so that one
     sweep propagates acyclic flow in one pass and every block — even
     unreachable ones — reaches a fixpoint. *)
  let order_for (cfg : Cfg.t) =
    let blocks = cfg.Cfg.blocks in
    let n = Array.length blocks in
    let visited = Array.make n false in
    let acc = ref [] in
    let rec dfs b =
      if not visited.(b) then begin
        visited.(b) <- true;
        List.iter dfs blocks.(b).Cfg.succs;
        acc := b :: !acc
      end
    in
    let components = ref [] in
    dfs cfg.Cfg.block_of_pc.(0);
    components := !acc;
    acc := [];
    for b = 0 to n - 1 do
      if not visited.(b) then begin
        dfs b;
        components := !components @ !acc;
        acc := []
      end
    done;
    Array.of_list !components

  let solve ~direction ~boundary ~init instrs (cfg : Cfg.t) =
    let blocks = cfg.Cfg.blocks in
    let nb = Array.length blocks in
    let order = order_for cfg in
    let order =
      match direction with
      | Forward -> order
      | Backward ->
        let m = Array.length order in
        Array.init m (fun i -> order.(m - 1 - i))
    in
    let entry = cfg.Cfg.block_of_pc.(0) in
    (* [input.(b)] is the state at the block's flow entry: block start
       for Forward, block end for Backward. *)
    let input = Array.make nb init in
    let output = Array.make nb init in
    let edges_in b =
      match direction with
      | Forward -> blocks.(b).Cfg.preds
      | Backward -> blocks.(b).Cfg.succs
    in
    let is_boundary b =
      match direction with
      | Forward -> b = entry
      | Backward -> blocks.(b).Cfg.succs = []
    in
    let flow b st =
      let first = blocks.(b).Cfg.first and last = blocks.(b).Cfg.last in
      let st = ref st in
      (match direction with
       | Forward ->
         for pc = first to last do
           st := D.transfer ~pc instrs.(pc) !st
         done
       | Backward ->
         for pc = last downto first do
           st := D.transfer ~pc instrs.(pc) !st
         done);
      !st
    in
    (* A block whose (direction-adjusted) in-edge comes from a block
       at the same or a later position in the sweep order heads a
       cycle: states there are widened from the second pass on, so
       domains with infinite ascending chains still terminate. *)
    let pos = Array.make nb 0 in
    Array.iteri (fun i b -> pos.(b) <- i) order;
    let loop_head = Array.make nb false in
    Array.iter
      (fun b ->
         if List.exists (fun p -> pos.(p) >= pos.(b)) (edges_in b) then
           loop_head.(b) <- true)
      order;
    let passes = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      incr passes;
      Array.iter
        (fun b ->
           let base = if is_boundary b then Some boundary else None in
           let inb =
             List.fold_left
               (fun acc p ->
                  match acc with
                  | None -> Some output.(p)
                  | Some s -> Some (D.join s output.(p)))
               base (edges_in b)
           in
           let inb = Option.value inb ~default:init in
           let inb =
             if loop_head.(b) && !passes > 1 then D.widen input.(b) inb
             else inb
           in
           input.(b) <- inb;
           let outb = flow b inb in
           if not (D.equal outb output.(b)) then begin
             output.(b) <- outb;
             changed := true
           end)
        order
    done;
    let n = Array.length instrs in
    let before = Array.make n init and after = Array.make n init in
    Array.iteri
      (fun b blk ->
         match direction with
         | Forward ->
           let st = ref input.(b) in
           for pc = blk.Cfg.first to blk.Cfg.last do
             before.(pc) <- !st;
             st := D.transfer ~pc instrs.(pc) !st;
             after.(pc) <- !st
           done
         | Backward ->
           let st = ref input.(b) in
           for pc = blk.Cfg.last downto blk.Cfg.first do
             after.(pc) <- !st;
             st := D.transfer ~pc instrs.(pc) !st;
             before.(pc) <- !st
           done)
      blocks;
    { before; after; passes = !passes }
end
