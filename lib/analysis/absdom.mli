(** Abstract interpretation of register contents over {!Sass.Cfg}:
    every general-purpose register is mapped to an {!Affine} form and
    propagated to a fixpoint by the {!Dataflow} solver (with interval
    widening at loop heads).

    The analysis is context-parameterised: with a concrete launch
    ([geom] from the launch shape, [param] resolving kernel-parameter
    words to their actual values) address expressions become fully
    concrete affine functions of [tid]/[ctaid]; without one, proofs
    fall back to {!Affine.assumed_geom} and symbolic parameters. *)

type ctx = {
  c_geom : Affine.geom;
  c_param : int -> int option;
      (** Resolved 32-bit kernel-parameter word at a byte offset;
          [None] leaves the parameter symbolic. *)
  c_concrete : bool;
      (** The geometry is a real launch shape (so [ntid]/[nctaid]
          reads fold to constants), not the worst-case assumption. *)
}

val static_ctx : ctx
(** No launch information: {!Affine.assumed_geom}, all parameters
    symbolic. *)

val static_for : Sass.Instr.t array -> ctx
(** {!static_ctx}, with the y dimensions collapsed to 1 for kernels
    that never read a [.y] special register (1D kernels analyzed
    under a 2D worst case would alias whole thread columns). This is
    what the compile-time gate uses. *)

val concrete_ctx : ?param:(int -> int option) -> Affine.geom -> ctx

type t
(** Abstract register state at one program point. *)

val analyze : ctx -> Sass.Instr.t array -> Sass.Cfg.t -> t array
(** Per-PC state {e before} each instruction. *)

val geom : t -> Affine.geom

val reg : t -> Sass.Reg.t -> Affine.t

val src : t -> Sass.Instr.src -> Affine.t
(** Evaluate an operand; [SImm] is reinterpreted as a signed 32-bit
    value (negative offsets are encoded as large immediates). *)

val address : t -> Sass.Instr.mem -> Affine.t
(** Effective byte address [base + offset] of a memory operand. *)

val pp : Format.formatter -> t -> unit
