type t = {
  lo : int;
  hi : int;
}

let ninf = min_int

let pinf = max_int

let top = { lo = ninf; hi = pinf }

let point n = { lo = n; hi = n }

let make lo hi =
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let below hi = { lo = ninf; hi }

let above lo = { lo; hi = pinf }

let is_top t = t.lo = ninf && t.hi = pinf

let is_point t = t.lo = t.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

let mem n t = t.lo <= n && n <= t.hi

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let widen old next =
  { lo = (if next.lo < old.lo then ninf else old.lo);
    hi = (if next.hi > old.hi then pinf else old.hi) }

(* Saturating scalar ops: the sentinels absorb, and any finite
   overflow lands on a sentinel instead of wrapping. *)
let sat_add a b =
  if a = ninf || b = ninf then ninf
  else if a = pinf || b = pinf then pinf
  else
    let s = a + b in
    if b > 0 && s < a then pinf else if b < 0 && s > a then ninf else s

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else
    let inf_in = a = ninf || a = pinf || b = ninf || b = pinf in
    let sign_neg = a < 0 <> (b < 0) in
    if inf_in then if sign_neg then ninf else pinf
    else
      let p = a * b in
      if p / b <> a then (if sign_neg then ninf else pinf) else p

let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }

let neg t =
  { lo = (if t.hi = pinf then ninf else if t.hi = ninf then pinf else -t.hi);
    hi = (if t.lo = ninf then pinf else if t.lo = pinf then ninf else -t.lo) }

let sub a b = add a (neg b)

let mul_const k t =
  if k = 0 then point 0
  else if k > 0 then { lo = sat_mul k t.lo; hi = sat_mul k t.hi }
  else { lo = sat_mul k t.hi; hi = sat_mul k t.lo }

let mul a b =
  let cands =
    [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo;
      sat_mul a.hi b.hi ]
  in
  { lo = List.fold_left min pinf cands; hi = List.fold_left max ninf cands }

let disjoint a b = a.hi < b.lo || b.hi < a.lo

let pp ppf t =
  let b ppf n =
    if n = ninf then Format.pp_print_string ppf "-oo"
    else if n = pinf then Format.pp_print_string ppf "+oo"
    else Format.pp_print_int ppf n
  in
  Format.fprintf ppf "[%a,%a]" b t.lo b t.hi
