(** Log2-bucketed histogram of non-negative integers. Bucket 0 holds
    the value 0; bucket [k >= 1] holds values in [2^(k-1), 2^k - 1].
    {!observe} is O(1) and allocation-free; quantiles are interpolated
    from the buckets and clamped to the exact observed [min]/[max].
    Negative observations are clamped to 0. *)

type t

type summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

val num_buckets : int

val create : unit -> t

val observe : t -> int -> unit

val count : t -> int

val sum : t -> int

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int

val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1] (clamped); 0 when empty. *)

val summarize : t -> summary

val buckets : t -> int array
(** Copy of the per-bucket counts, length {!num_buckets}. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] value range of a bucket index. *)

val copy : t -> t
(** Independent point-in-time copy; further {!observe}s on the
    original never move the copy. The capture reads each field once,
    so exporters working from a copy see one consistent histogram
    even while another domain keeps observing. *)

val clear : t -> unit

val merge : into:t -> t -> unit

val pp : Format.formatter -> t -> unit

val render : t -> string
(** Multi-line ASCII bar chart of the non-empty buckets. *)
