(* Exporters over a registry: Prometheus text exposition format 0.0.4
   and JSON (through the shared Trace.Json serializer). Histograms
   export cumulative buckets with power-of-two upper bounds, which is
   exactly the native bucket layout, so no re-binning happens. *)

let sanitize_name s =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
       | _ -> '_')
    s

let escape_label_value s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string b "\\\\"
       | '"' -> Buffer.add_string b "\\\""
       | '\n' -> Buffer.add_string b "\\n"
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
              Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                (escape_label_value v))
           labels)
    ^ "}"

(* Extra labels merge after the spec's own (e.g. the [le] of a
   histogram bucket). *)
let render_labels2 labels extra = render_labels (labels @ extra)

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let prometheus_to_buffer b registry =
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    (* One HELP/TYPE pair per metric name even when several labeled
       series share it. *)
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s : Registry.spec) ->
       let name = sanitize_name s.Registry.sp_name in
       match s.Registry.sp_instrument with
       | Registry.Counter read ->
         header name "counter" s.Registry.sp_help;
         Buffer.add_string b
           (Printf.sprintf "%s%s %d\n" name
              (render_labels s.Registry.sp_labels)
              (read ()))
       | Registry.Gauge read ->
         header name "gauge" s.Registry.sp_help;
         let v = read () in
         let repr =
           match Float.classify_float v with
           | Float.FP_nan -> "NaN"
           | Float.FP_infinite -> if v > 0. then "+Inf" else "-Inf"
           | _ -> float_repr v
         in
         Buffer.add_string b
           (Printf.sprintf "%s%s %s\n" name
              (render_labels s.Registry.sp_labels)
              repr)
       | Registry.Histogram h ->
         header name "histogram" s.Registry.sp_help;
         let buckets = Hist.buckets h in
         let cum = ref 0 in
         let top =
           (* Highest non-empty bucket: buckets above it add nothing
              but noise to the exposition. *)
           let t = ref (-1) in
           Array.iteri (fun i c -> if c > 0 then t := i) buckets;
           !t
         in
         for k = 0 to top do
           cum := !cum + buckets.(k);
           let _, hi = Hist.bucket_bounds k in
           Buffer.add_string b
             (Printf.sprintf "%s_bucket%s %d\n" name
                (render_labels2 s.Registry.sp_labels
                   [ ("le", string_of_int hi) ])
                !cum)
         done;
         Buffer.add_string b
           (Printf.sprintf "%s_bucket%s %d\n" name
              (render_labels2 s.Registry.sp_labels [ ("le", "+Inf") ])
              (Hist.count h));
         Buffer.add_string b
           (Printf.sprintf "%s_sum%s %d\n" name
              (render_labels s.Registry.sp_labels)
              (Hist.sum h));
         Buffer.add_string b
           (Printf.sprintf "%s_count%s %d\n" name
              (render_labels s.Registry.sp_labels)
              (Hist.count h)))
    (Registry.specs registry)

(* Both expositions walk a Registry.snapshot, never the live registry:
   the old direct walk read histogram buckets, +Inf count, sum and
   count at four different instants, so a device thread observing
   mid-export could leave `_count` disagreeing with the +Inf bucket. *)
let prometheus registry =
  let b = Buffer.create 4096 in
  prometheus_to_buffer b (Registry.snapshot registry);
  Buffer.contents b

let summary_to_json (s : Hist.summary) =
  Trace.Json.Obj
    [ ("count", Trace.Json.Int s.Hist.s_count);
      ("sum", Trace.Json.Int s.Hist.s_sum);
      ("min", Trace.Json.Int s.Hist.s_min);
      ("max", Trace.Json.Int s.Hist.s_max);
      ("mean", Trace.Json.Float s.Hist.s_mean);
      ("p50", Trace.Json.Float s.Hist.s_p50);
      ("p90", Trace.Json.Float s.Hist.s_p90);
      ("p99", Trace.Json.Float s.Hist.s_p99) ]

let spec_to_json (s : Registry.spec) =
  let value =
    match s.Registry.sp_instrument with
    | Registry.Counter read ->
      [ ("type", Trace.Json.Str "counter"); ("value", Trace.Json.Int (read ())) ]
    | Registry.Gauge read ->
      [ ("type", Trace.Json.Str "gauge"); ("value", Trace.Json.Float (read ())) ]
    | Registry.Histogram h ->
      [ ("type", Trace.Json.Str "histogram");
        ("summary", summary_to_json (Hist.summarize h)) ]
  in
  Trace.Json.Obj
    (( "name", Trace.Json.Str s.Registry.sp_name )
     :: ( "labels",
          Trace.Json.Obj
            (List.map (fun (k, v) -> (k, Trace.Json.Str v))
               s.Registry.sp_labels) )
     :: ("help", Trace.Json.Str s.Registry.sp_help)
     :: value)

let to_json registry =
  Trace.Json.List
    (List.map spec_to_json (Registry.specs (Registry.snapshot registry)))

let write_file path registry =
  if Filename.check_suffix path ".json" then
    Trace.Json.write_file path (to_json registry)
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (prometheus registry))
  end
