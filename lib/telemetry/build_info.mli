(** Build and host provenance, embedded in run manifests so compared
    runs are stamped with what produced them. *)

type t = {
  bi_version : string;
  bi_profile : string;  (** dune build profile, baked in at build time *)
  bi_ocaml : string;  (** compiler version, baked in at build time *)
  bi_host : string;
  bi_os : string;
  bi_word_size : int;
}

val version : string

val collect : unit -> t

val to_json : t -> Trace.Json.t

val of_json : Trace.Json.t -> t
(** Tolerant: missing fields read as ["unknown"] / [0]. *)

val pp : Format.formatter -> t -> unit
