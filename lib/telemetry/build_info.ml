(* Provenance stamp embedded in run manifests and printed by
   [sassi_run --build-info]: comparing two runs is only meaningful
   when you know what built them and where they ran. The dune profile
   and compiler version are baked in at build time (see the rule
   generating [build_env.ml]); the host is read at run time. *)

type t = {
  bi_version : string;
  bi_profile : string;
  bi_ocaml : string;
  bi_host : string;
  bi_os : string;
  bi_word_size : int;
}

let version = "1.0"

let host () =
  try Unix.gethostname () with
  | _ ->
    (match Sys.getenv_opt "HOSTNAME" with
     | Some h -> h
     | None -> "unknown")

let collect () =
  { bi_version = version;
    bi_profile = Build_env.profile;
    bi_ocaml = Build_env.ocaml_version;
    bi_host = host ();
    bi_os = Sys.os_type;
    bi_word_size = Sys.word_size }

let to_json t =
  Trace.Json.Obj
    [ ("version", Trace.Json.Str t.bi_version);
      ("profile", Trace.Json.Str t.bi_profile);
      ("ocaml", Trace.Json.Str t.bi_ocaml);
      ("host", Trace.Json.Str t.bi_host);
      ("os", Trace.Json.Str t.bi_os);
      ("word_size", Trace.Json.Int t.bi_word_size) ]

let str_field j key =
  match Trace.Json.member key j with
  | Some (Trace.Json.Str s) -> s
  | _ -> "unknown"

let of_json j =
  { bi_version = str_field j "version";
    bi_profile = str_field j "profile";
    bi_ocaml = str_field j "ocaml";
    bi_host = str_field j "host";
    bi_os = str_field j "os";
    bi_word_size =
      (match Trace.Json.member "word_size" j with
       | Some (Trace.Json.Int n) -> n
       | _ -> 0) }

let pp ppf t =
  Format.fprintf ppf
    "sassi_run %s (dune profile %s, ocaml %s, %d-bit %s, host %s)"
    t.bi_version t.bi_profile t.bi_ocaml t.bi_word_size t.bi_os t.bi_host
