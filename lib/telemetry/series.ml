(* Bounded time series of gauge snapshots: one row per (cycle, sm)
   sampling point, fixed column set. Rows beyond the capacity drop the
   oldest first (and are counted), mirroring the activity ring's
   accounting discipline so truncation is never silent. *)

type row = {
  r_cycle : int;
  r_sm : int;
  r_values : float array;
}

type t = {
  columns : string array;
  interval : int;
  capacity : int;
  mutable rows : row list; (* newest first *)
  mutable length : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) ~interval columns =
  if interval <= 0 then invalid_arg "Telemetry.Series: interval must be positive";
  if capacity <= 0 then invalid_arg "Telemetry.Series: capacity must be positive";
  { columns = Array.copy columns; interval; capacity; rows = []; length = 0;
    dropped = 0 }

let columns t = Array.copy t.columns

let interval t = t.interval

let sample t ~cycle ~sm values =
  if Array.length values <> Array.length t.columns then
    invalid_arg "Telemetry.Series.sample: column arity mismatch";
  t.rows <- { r_cycle = cycle; r_sm = sm; r_values = Array.copy values } :: t.rows;
  if t.length >= t.capacity then begin
    (* Drop the oldest row; rows is newest-first, so that is the last
       element. Rare (only past capacity), so the O(n) tail drop is
       acceptable next to the export cost. *)
    (match List.rev t.rows with
     | _ :: rest -> t.rows <- List.rev rest
     | [] -> ());
    t.dropped <- t.dropped + 1
  end
  else t.length <- t.length + 1

let capacity t = t.capacity

let absorb ~into t =
  if into.columns <> t.columns then
    invalid_arg "Telemetry.Series.absorb: column mismatch";
  if into.interval <> t.interval then
    invalid_arg "Telemetry.Series.absorb: interval mismatch";
  (* Replaying through [sample] keeps the capacity/dropped accounting
     of the destination exact: rows the source already dropped are
     carried over as dropped, rows that overflow the destination are
     dropped there. *)
  into.dropped <- into.dropped + t.dropped;
  List.iter
    (fun r -> sample into ~cycle:r.r_cycle ~sm:r.r_sm r.r_values)
    (List.rev t.rows)

let length t = t.length

let dropped t = t.dropped

let rows t = List.rev t.rows

let to_json t =
  Trace.Json.Obj
    [ ("interval", Trace.Json.Int t.interval);
      ("columns",
       Trace.Json.List
         (Array.to_list (Array.map (fun c -> Trace.Json.Str c) t.columns)));
      ("dropped", Trace.Json.Int t.dropped);
      ( "rows",
        Trace.Json.List
          (List.map
             (fun r ->
                Trace.Json.List
                  (Trace.Json.Int r.r_cycle :: Trace.Json.Int r.r_sm
                   :: Array.to_list
                        (Array.map (fun v -> Trace.Json.Float v) r.r_values)))
             (rows t)) ) ]
